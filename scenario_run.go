package vavg

import (
	"errors"
	"fmt"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/metrics"
	"vavg/internal/scenario"
)

// runScenario executes alg under an adversarial scenario: the compiled
// crash/drop adversary rides the base run inside the engine, and dynamic
// edge events trigger incremental repair epochs afterwards. Degraded
// outputs are a measurement here, not a failure — hard validation is
// replaced by conflict counting, and a run that exhausts its round budget
// is reported as a non-converged data point rather than an error.
func (alg Algorithm) runScenario(g *Graph, p Params) (Report, error) {
	// Clone first: Compile/Epochs canonicalize the spec in place, and the
	// caller's Spec may be shared across concurrent sweep points.
	spec := p.Scenario.Clone()
	adv, err := spec.Compile(g.N(), p.Seed)
	if err != nil {
		return Report{}, fmt.Errorf("vavg: %s on %s: %w", alg.Name, g.Name, err)
	}
	epochs, err := spec.Epochs(g.N())
	if err != nil {
		return Report{}, fmt.Errorf("vavg: %s on %s: %w", alg.Name, g.Name, err)
	}

	// Only the base run uses the relabeled view: repair epochs re-execute
	// on dynamically edited graphs (fresh structures with no cached view,
	// and a tiny affected region), and all their indexing is original-ID.
	rg, err := relabelFor(g, p)
	if err != nil {
		return Report{}, fmt.Errorf("vavg: %s on %s: %w", alg.Name, g.Name, err)
	}
	eng := engine.Spec{Program: alg.program(p)}
	if alg.step != nil {
		eng.Step = alg.step(p)
	}
	res, err := engine.RunSpec(rg, eng, engine.Options{
		Seed: p.Seed, MaxRounds: p.MaxRounds, Backend: p.Backend, Adv: adv, StepShards: p.StepShards,
	})
	converged := true
	if err != nil {
		if res == nil || !errors.Is(err, engine.ErrMaxRounds) {
			return Report{}, fmt.Errorf("vavg: %s on %s: %w", alg.Name, g.Name, err)
		}
		converged = false
	}

	// Dynamic epochs: apply each batch of edge events and re-execute the
	// affected vertices against frozen survivors (see repairEpoch). Repair
	// costs accrue to the affected region only; whatever invariants the
	// one-shot repair cannot restore surface as residual conflicts below.
	cur := g
	for i, ep := range epochs {
		cur = scenario.Apply(cur, ep.Events)
		if !repairEpoch(alg, cur, p, spec, i, ep, res) {
			converged = false
		}
	}

	rep := metrics.FromResult(alg.Name, cur.Name, cur.N(), cur.M(), p.Arboricity, p.Seed, res)
	rep.Converged = converged
	if !p.SkipValidation {
		alg.degradedAudit(cur, res, &rep)
	}
	return rep, nil
}

// repairBudget bounds a repair epoch's rounds: generous relative to the
// base run, but finite — repairs that livelock against frozen neighbors
// are DNF data points, not hangs.
func repairBudget(base int) int {
	b := 4 * base
	if b < 256 {
		b = 256
	}
	return b
}

// repairEpoch re-executes one epoch's affected vertices on the updated
// graph. Every other vertex is frozen: its program immediately returns
// its prior output, so it terminates in one round after re-broadcasting
// that output to its (possibly new) neighbors — the surviving state the
// affected region recomputes against. Crashed-forever vertices stay
// frozen at nil. The repair reuses the scenario's drop probability with
// an epoch-derived seed, so losses stay i.i.d. across epochs yet the
// whole dynamic run remains a pure function of (seeds, spec).
//
// Accounting merges into res: affected vertices' outputs and added
// rounds, the epoch's full message and loss traffic, and the worst-case
// round count. It reports false when the repair itself failed to
// converge (affected vertices then keep their prior outputs).
func repairEpoch(alg Algorithm, cur *Graph, p Params, spec *scenario.Spec, i int, ep scenario.Epoch, res *engine.Result) bool {
	n := cur.N()
	frozen := make([]bool, n)
	for v := range frozen {
		frozen[v] = true
	}
	for _, v := range ep.Affected {
		if res.Crashed == nil || !res.Crashed[v] {
			frozen[v] = false
		}
	}
	prior := res.Output
	prog := alg.program(p)
	base := func(api *engine.API) any {
		if frozen[api.ID()] {
			//lint:ignore payloadwire frozen vertices replay prior Result.Output values, whose concrete types were certified at their original entry sites in the epoch that produced them
			return prior[api.ID()]
		}
		return prog(api)
	}

	epochSeed := spec.EpochSeed(p.Seed, i)
	var radv *engine.Adversary
	if spec.Drop > 0 {
		ds := &scenario.Spec{Drop: spec.Drop, Seed: spec.Seed}
		var err error
		if radv, err = ds.Compile(n, epochSeed); err != nil {
			return false
		}
	}
	rres, err := engine.RunSpec(cur, engine.Spec{Program: base}, engine.Options{
		Seed: epochSeed, MaxRounds: repairBudget(res.TotalRounds), Backend: p.Backend, Adv: radv, StepShards: p.StepShards,
	})
	if rres == nil {
		return false
	}
	ok := err == nil

	for _, v := range ep.Affected {
		if frozen[v] {
			continue
		}
		if rres.Output[v] != nil || ok {
			res.Output[v] = rres.Output[v]
		}
		res.Rounds[v] += rres.Rounds[v]
		res.RoundSum += int64(rres.Rounds[v])
		if int(res.Rounds[v]) > res.TotalRounds {
			res.TotalRounds = int(res.Rounds[v])
		}
	}
	res.Messages += rres.Messages
	res.Dropped += rres.Dropped
	res.LostToCrash += rres.LostToCrash
	return ok
}

// degradedAudit fills the degradation measurements of a scenario run:
// distinct colors / output size over the assigned vertices, and the
// residual-conflict count for the output kinds with a counting checker
// (-1 for the rest). Unassigned outputs (crashed or non-converged
// vertices) are tolerated everywhere.
func (alg Algorithm) degradedAudit(g *Graph, res *engine.Result, rep *Report) {
	switch alg.Kind {
	case KindVertexColoring:
		cols := make([]int, g.N())
		for v, o := range res.Output {
			if c, ok := o.(int); ok && c >= 0 {
				cols[v] = c
			} else {
				cols[v] = -1
			}
		}
		distinct := map[int]bool{}
		for _, c := range cols {
			if c >= 0 {
				distinct[c] = true
			}
		}
		rep.Colors = len(distinct)
		rep.ResidualConflicts = check.ColoringConflicts(g, cols)
	case KindMIS:
		in := make([]bool, g.N())
		assigned := make([]bool, g.N())
		size := 0
		for v, o := range res.Output {
			if b, ok := o.(bool); ok {
				in[v], assigned[v] = b, true
				if b {
					size++
				}
			}
		}
		rep.Size = size
		rep.ResidualConflicts = check.MISConflicts(g, in, assigned)
	case KindMatching:
		m := make([]int32, g.N())
		assigned := make([]bool, g.N())
		size := 0
		for v, o := range res.Output {
			if w, ok := o.(int32); ok {
				m[v], assigned[v] = w, true
				if w >= 0 {
					size++
				}
			}
		}
		rep.Size = size / 2
		rep.ResidualConflicts = check.MatchingConflicts(g, m, assigned)
	}
}
