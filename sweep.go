package vavg

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"vavg/internal/metrics"
	"vavg/internal/parallel"
)

// SweepPoint is one measurement of a size sweep.
type SweepPoint struct {
	N         int     `json:"n"`
	M         int     `json:"m"`
	VertexAvg float64 `json:"vertexAvg"`
	WorstCase int     `json:"worstCase"`
	Colors    int     `json:"colors,omitempty"`
	Size      int     `json:"size,omitempty"`
	Messages  int64   `json:"messages"`
}

// SweepResult is a size sweep of one algorithm over one graph family.
type SweepResult struct {
	Algorithm string       `json:"algorithm"`
	Family    string       `json:"family"`
	Points    []SweepPoint `json:"points"`
}

// Sweep measures alg across the given sizes, generating each graph with
// gen and reporting medians over seeds (nil seeds means {1,2,3}). Sweeps
// are how the paper's tables are checked empirically; the result exposes
// the growth-shape diagnostics used by EXPERIMENTS.md. p.Backend selects
// the engine execution backend for every point of the sweep; the default
// "auto" switches to the active-set pool backend at large n, which is
// what makes million-vertex sweep points affordable.
//
// The (size, seed) run points are independent, so they are fanned out
// across p.SweepWorkers goroutines (0 means GOMAXPROCS; see CachedGen for
// sharing graphs across sweeps). Parallel and serial sweeps produce
// byte-identical results: each point derives its PRNG streams from its
// own seed, graphs are generated serially before dispatch (gen may be
// stateful), and results are collected by (size, seed) index, never by
// completion order.
func Sweep(alg Algorithm, gen func(n int) *Graph, sizes []int, seeds []int64, p Params) (*SweepResult, error) {
	if gen == nil {
		return nil, fmt.Errorf("vavg: sweep %s: nil graph generator", alg.Name)
	}
	if len(sizes) == 0 {
		return nil, fmt.Errorf("vavg: sweep %s: empty size list", alg.Name)
	}
	if len(seeds) == 0 {
		seeds = []int64{1, 2, 3}
	}
	graphs := make([]*Graph, len(sizes))
	for i, n := range sizes {
		if graphs[i] = gen(n); graphs[i] == nil {
			return nil, fmt.Errorf("vavg: sweep %s: generator returned nil graph at n=%d", alg.Name, n)
		}
	}
	total := len(sizes) * len(seeds)
	runs := make([]Report, total)
	errs := make([]error, total)
	workers := parallel.Workers(p.SweepWorkers, total)
	parallel.ForEach(workers, total, func(i int) {
		si := i / len(seeds)
		pp := p
		pp.Seed = seeds[i%len(seeds)]
		rep, err := alg.Run(graphs[si], pp)
		if err != nil {
			errs[i] = fmt.Errorf("vavg: sweep %s at n=%d: %w", alg.Name, sizes[si], err)
			return
		}
		runs[i] = rep
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := &SweepResult{Algorithm: alg.Name, Family: graphs[0].Name}
	for si, n := range sizes {
		med := metrics.Median(runs[si*len(seeds) : (si+1)*len(seeds)])
		out.Points = append(out.Points, SweepPoint{
			N:         n,
			M:         graphs[si].M(),
			VertexAvg: med.VertexAvg,
			WorstCase: med.WorstCase,
			Colors:    med.Colors,
			Size:      med.Size,
			Messages:  med.Messages,
		})
	}
	return out, nil
}

// VertexAvgGrowth fits vertexAvg ~ c * (log n)^e over the sweep and
// returns e: a flat (O(1)-like) series fits e near 0, a Theta(log n)
// series fits e near 1.
func (s *SweepResult) VertexAvgGrowth() float64 {
	xs := make([]float64, len(s.Points))
	ys := make([]float64, len(s.Points))
	for i, pt := range s.Points {
		xs[i] = math.Log2(float64(pt.N))
		ys[i] = pt.VertexAvg
	}
	return metrics.GrowthExponent(xs, ys)
}

// WriteCSV emits the sweep as CSV with a header row.
func (s *SweepResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"algorithm", "family", "n", "m", "vertex_avg", "worst_case", "colors", "size", "messages"}); err != nil {
		return err
	}
	for _, pt := range s.Points {
		rec := []string{
			s.Algorithm, s.Family,
			fmt.Sprint(pt.N), fmt.Sprint(pt.M),
			fmt.Sprintf("%.4f", pt.VertexAvg), fmt.Sprint(pt.WorstCase),
			fmt.Sprint(pt.Colors), fmt.Sprint(pt.Size), fmt.Sprint(pt.Messages),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON emits the sweep as indented JSON.
func (s *SweepResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
