package vavg

// Benchmarks: one per evaluation artifact of the paper (see the
// per-experiment index in DESIGN.md). Each benchmark runs the algorithm
// on a fixed bounded-arboricity graph and reports, besides ns/op, the two
// measures the paper contrasts as custom metrics: vertex-averaged rounds
// ("vavg-rounds") and worst-case rounds ("worst-rounds"), plus palette
// sizes where applicable. Baselines appear as sub-benchmarks so the
// separation is visible directly in `go test -bench=.` output.

import (
	"fmt"
	"os"
	"testing"

	"vavg/internal/coloring"
)

const (
	benchN    = 4096
	benchArb  = 3
	benchSeed = 17
)

func benchGraph() *Graph { return ForestUnion(benchN, benchArb, benchSeed) }

func benchAlg(b *testing.B, g *Graph, name string, p Params) {
	b.Helper()
	alg, err := ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	p.SkipValidation = true
	if p.Arboricity == 0 {
		p.Arboricity = benchArb
	}
	var rep Report
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		rep, err = alg.Run(g, p)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.VertexAvg, "vavg-rounds")
	b.ReportMetric(float64(rep.WorstCase), "worst-rounds")
	if rep.Colors >= 0 {
		b.ReportMetric(float64(rep.Colors), "colors")
	}
}

// BenchmarkPartition regenerates E0 (Lemma 6.1 / Theorem 6.3).
func BenchmarkPartition(b *testing.B) {
	g := benchGraph()
	b.Run("ours", func(b *testing.B) { benchAlg(b, g, "partition", Params{}) })
}

// BenchmarkForestDecomposition regenerates E1 (Section 7.1, Theorem 7.1).
func BenchmarkForestDecomposition(b *testing.B) {
	g := benchGraph()
	b.Run("ours", func(b *testing.B) { benchAlg(b, g, "forest-decomp", Params{}) })
	b.Run("baseline", func(b *testing.B) { benchAlg(b, g, "forest-decomp-wc", Params{}) })
}

// BenchmarkArbLinialO1 regenerates E2 (Table 1 row O(a^2 log n) / O(1)).
func BenchmarkArbLinialO1(b *testing.B) {
	g := benchGraph()
	b.Run("ours", func(b *testing.B) { benchAlg(b, g, "arblinial-o1", Params{}) })
	b.Run("baseline", func(b *testing.B) { benchAlg(b, g, "arblinial-wc", Params{}) })
}

// BenchmarkColoringKA2 regenerates E3 (Table 1 rows O(a^2)/O(loglog n) and
// O(k a^2)/O(log^(k) n)).
func BenchmarkColoringKA2(b *testing.B) {
	g := benchGraph()
	b.Run("a2-loglog", func(b *testing.B) { benchAlg(b, g, "a2-loglog", Params{}) })
	b.Run("ka2-k2", func(b *testing.B) { benchAlg(b, g, "ka2", Params{K: 2}) })
	b.Run("ka2-k3", func(b *testing.B) { benchAlg(b, g, "ka2", Params{K: 3}) })
	b.Run("baseline", func(b *testing.B) { benchAlg(b, g, "iterated-arblinial-wc", Params{}) })
}

// BenchmarkColoringA2LogStar regenerates E4 (Table 1 row O(a^2 log* n) /
// O(log* n), the k = rho(n) instance).
func BenchmarkColoringA2LogStar(b *testing.B) {
	g := benchGraph()
	benchAlg(b, g, "ka2", Params{K: coloring.Rho(benchN)})
}

// BenchmarkColoringKA regenerates E5 (Table 1 rows O(a)/O(a loglog n) and
// O(ka)/O(a log^(k) n)).
func BenchmarkColoringKA(b *testing.B) {
	g := benchGraph()
	b.Run("a-loglog", func(b *testing.B) { benchAlg(b, g, "a-loglog", Params{}) })
	b.Run("ka-k2", func(b *testing.B) { benchAlg(b, g, "ka", Params{K: 2}) })
	b.Run("baseline", func(b *testing.B) { benchAlg(b, g, "arbcolor-wc", Params{}) })
}

// BenchmarkColoringALogStar regenerates E6 (Table 1 row O(a log* n) /
// O(a log* n), the k = rho(n) instance).
func BenchmarkColoringALogStar(b *testing.B) {
	g := benchGraph()
	benchAlg(b, g, "ka", Params{K: coloring.Rho(benchN)})
}

// BenchmarkOnePlusEta regenerates E7 (Table 1 row O(a^{1+eta}) /
// O(log a loglog n)).
func BenchmarkOnePlusEta(b *testing.B) {
	g := benchGraph()
	benchAlg(b, g, "one-plus-eta", Params{})
}

// BenchmarkDeltaPlus1Det regenerates E8 (Table 1 row Delta+1 (Det.)): the
// star-forest sub-benchmark grows Delta at constant arboricity, showing
// the a-not-Delta dependence.
func BenchmarkDeltaPlus1Det(b *testing.B) {
	b.Run("forests", func(b *testing.B) { benchAlg(b, benchGraph(), "deltaplus1-det", Params{}) })
	b.Run("stars-delta64", func(b *testing.B) {
		benchAlg(b, StarForest(benchN, 64), "deltaplus1-det", Params{Arboricity: 2})
	})
}

// BenchmarkDeltaPlus1Rand regenerates E9 (Table 1 row Delta+1 (Rand.) O(1)).
func BenchmarkDeltaPlus1Rand(b *testing.B) {
	benchAlg(b, benchGraph(), "deltaplus1-rand", Params{})
}

// BenchmarkRandALogLog regenerates E10 (Table 1 row O(a loglog n) (Rand.)
// O(1)).
func BenchmarkRandALogLog(b *testing.B) {
	benchAlg(b, benchGraph(), "aloglog-rand", Params{})
}

// BenchmarkMIS regenerates E11 (Table 2 row MIS).
func BenchmarkMIS(b *testing.B) {
	g := benchGraph()
	b.Run("ours", func(b *testing.B) { benchAlg(b, g, "mis", Params{}) })
	b.Run("baseline-det", func(b *testing.B) { benchAlg(b, g, "mis-wc", Params{}) })
	b.Run("baseline-luby", func(b *testing.B) { benchAlg(b, g, "mis-luby", Params{}) })
}

// BenchmarkEdgeColoring regenerates E12 (Table 2 row (2Delta-1)-edge-
// coloring).
func BenchmarkEdgeColoring(b *testing.B) {
	benchAlg(b, benchGraph(), "edgecolor", Params{})
}

// BenchmarkMaximalMatching regenerates E13 (Table 2 row MM).
func BenchmarkMaximalMatching(b *testing.B) {
	benchAlg(b, benchGraph(), "matching", Params{})
}

// BenchmarkSegmentation regenerates E14 (Figure 1): the full rho(n)-segment
// scheme end to end.
func BenchmarkSegmentation(b *testing.B) {
	g := benchGraph()
	b.Run("ka2-rho", func(b *testing.B) { benchAlg(b, g, "ka2", Params{K: coloring.Rho(benchN)}) })
}

// BenchmarkRingReference regenerates E15 (the Feuilloley reference points
// the paper departs from).
func BenchmarkRingReference(b *testing.B) {
	b.Run("3color", func(b *testing.B) { benchAlg(b, Ring(benchN), "ring-3color", Params{Arboricity: 2}) })
	// Leader election relays until the completion wave has circled the
	// ring, so a run costs Theta(n^2) vertex-rounds; keep the ring small.
	b.Run("leader", func(b *testing.B) {
		benchAlg(b, Ring(512), "leader-ring", Params{Arboricity: 2, MaxRounds: 64 * 512})
	})
}

// BenchmarkEngine measures the raw simulator: message rounds per second on
// a flood pattern, for capacity planning of larger sweeps.
func BenchmarkEngine(b *testing.B) {
	g := benchGraph()
	alg, _ := ByName("partition")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := alg.Run(g, Params{Seed: int64(i + 1), SkipValidation: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackends compares the engine execution backends on the same
// workloads: "partition" exercises early termination, "ka2" the §7.5
// Idle-window schedule where the pool's active-set scheduler skips parked
// vertices. Sizes stay moderate by default; set VAVG_BENCH_MILLION=1 to
// add the n=1,000,000 ring and forest-union points (minutes per run, and
// gigabytes of goroutine stacks — the capacity the pool backend exists
// for).
func BenchmarkBackends(b *testing.B) {
	sizes := []int{1 << 12, 1 << 16}
	if os.Getenv("VAVG_BENCH_MILLION") != "" {
		sizes = append(sizes, 1_000_000)
	}
	families := []struct {
		name string
		arb  int
		gen  func(n int) *Graph
	}{
		{"forests", benchArb, func(n int) *Graph { return ForestUnion(n, benchArb, benchSeed) }},
		{"ring", 2, func(n int) *Graph { return Ring(n) }},
	}
	for _, fam := range families {
		for _, n := range sizes {
			g := fam.gen(n)
			for _, algName := range []string{"partition", "ka2"} {
				for _, backend := range Backends() {
					name := fmt.Sprintf("%s/%s/n%d/%s", algName, fam.name, n, backend)
					b.Run(name, func(b *testing.B) {
						benchAlg(b, g, algName, Params{Arboricity: fam.arb, Backend: backend})
					})
				}
			}
		}
	}
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

// BenchmarkAblationEps sweeps the Procedure Partition slack: a tighter
// threshold (smaller eps) trades palette size for slower decay.
func BenchmarkAblationEps(b *testing.B) {
	g := benchGraph()
	for _, eps := range []float64{0.25, 1, 2} {
		b.Run(fmtEps(eps), func(b *testing.B) {
			benchAlg(b, g, "arblinial-o1", Params{Eps: eps})
		})
	}
}

func fmtEps(eps float64) string {
	switch eps {
	case 0.25:
		return "eps-0.25"
	case 1:
		return "eps-1"
	default:
		return "eps-2"
	}
}

// BenchmarkAblationK sweeps the segment count of the Section 7.5 scheme:
// more segments cut the vertex-averaged rounds at the price of more
// palette blocks.
func BenchmarkAblationK(b *testing.B) {
	g := benchGraph()
	for k := 2; k <= coloring.Rho(benchN); k++ {
		k := k
		b.Run("ka2-k"+string(rune('0'+k)), func(b *testing.B) {
			benchAlg(b, g, "ka2", Params{K: k})
		})
	}
}

// BenchmarkAblationC sweeps the Section 7.8 recursion constant: larger C
// means fewer recursion levels but a larger leaf palette.
func BenchmarkAblationC(b *testing.B) {
	g := benchGraph()
	for _, c := range []int{3, 4, 6} {
		c := c
		b.Run("C"+string(rune('0'+c)), func(b *testing.B) {
			benchAlg(b, g, "one-plus-eta", Params{C: c})
		})
	}
}
