package vavg

import (
	"strings"
	"testing"

	"vavg/internal/graph"
)

// awkwardGraphs are degenerate shapes every general algorithm must survive:
// a single vertex, a single edge, isolated vertices, and multiple
// components of different densities.
func awkwardGraphs() []*Graph {
	single := graph.FromEdges(1, nil)
	single.Name = "single-vertex"
	single.ArborBound = 1

	edge := graph.FromEdges(2, []Edge{{U: 0, V: 1}})
	edge.Name = "single-edge"
	edge.ArborBound = 1

	isolated := graph.FromEdges(6, []Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	isolated.Name = "isolated-vertices"
	isolated.ArborBound = 1

	b := graph.NewBuilder(12)
	// Component 1: triangle. Component 2: path. Vertices 7..11 isolated.
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	multi := b.Build()
	multi.Name = "multi-component"
	multi.ArborBound = 2

	return []*Graph{single, edge, isolated, multi}
}

// TestRegistryOnAwkwardGraphs runs every general algorithm (everything
// except the ring-specific references) on the degenerate shapes and
// demands validated outputs.
func TestRegistryOnAwkwardGraphs(t *testing.T) {
	for _, alg := range Algorithms() {
		if strings.Contains(alg.Name, "ring") || alg.Kind == KindReference {
			continue
		}
		alg := alg
		for _, g := range awkwardGraphs() {
			g := g
			t.Run(alg.Name+"/"+g.Name, func(t *testing.T) {
				if _, err := alg.Run(g, Params{Arboricity: g.ArborBound, MaxRounds: 1 << 16}); err != nil {
					t.Errorf("%s on %s: %v", alg.Name, g.Name, err)
				}
			})
		}
	}
}

// TestRegistryOnDenseAndSkewedFamilies covers the stress families: a
// clique embedded in a forest (dense core), a hypercube (log-arboricity),
// and a random graph with only a degeneracy certificate.
func TestRegistryOnDenseAndSkewedFamilies(t *testing.T) {
	graphs := []*Graph{
		CliquePlusForest(120, 12, 3),
		Hypercube(6),
		Gnm(150, 600, 5),
	}
	names := []string{"arblinial-o1", "a2-loglog", "mis", "matching", "edgecolor", "deltaplus1-det", "aloglog-rand"}
	for _, g := range graphs {
		for _, name := range names {
			alg, err := ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := alg.Run(g, Params{MaxRounds: 1 << 18}); err != nil {
				t.Errorf("%s on %s: %v", name, g.Name, err)
			}
		}
	}
}

// TestUnderestimatedArboricityAborts documents the failure mode of lying
// about the arboricity: with a threshold below the true density, Procedure
// Partition can stall and the engine's round guard must fire rather than
// hang.
func TestUnderestimatedArboricityAborts(t *testing.T) {
	g := Clique(32) // arboricity 16
	alg, _ := ByName("partition")
	_, err := alg.Run(g, Params{Arboricity: 2, Eps: 0.5, MaxRounds: 2000})
	if err == nil {
		t.Fatal("expected partition with a gross arboricity underestimate to fail")
	}
}

// TestGeneralPartitionSurvivesUnknownArboricity contrasts the above: the
// doubling-threshold variant needs no estimate at all.
func TestGeneralPartitionSurvivesUnknownArboricity(t *testing.T) {
	g := Clique(32)
	alg, _ := ByName("general-partition")
	rep, err := alg.Run(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WorstCase <= 0 {
		t.Fatal("no rounds recorded")
	}
}

// TestCommitReporting checks the Feuilloley-first-definition plumbing end
// to end on the leader election reference.
func TestCommitReporting(t *testing.T) {
	g := RingShuffled(128, 7)
	p := Params{Arboricity: 2, MaxRounds: 1 << 16}
	res, err := Simulate(g, mustProgram(t, "leader-ring", p), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.CommitAverage() >= float64(res.MaxCommit()) {
		t.Errorf("commit average %.1f not below max %d", res.CommitAverage(), res.MaxCommit())
	}
	// Vertices that never call Commit default to their termination round.
	for v, c := range res.CommitRounds {
		if c == 0 || c > res.Rounds[v] {
			t.Fatalf("vertex %d commit round %d out of range (terminated %d)", v, c, res.Rounds[v])
		}
	}
}

func mustProgram(t *testing.T, name string, p Params) Program {
	t.Helper()
	alg, err := ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return alg.program(p.withDefaults(nil))
}
