package vavg

import (
	"fmt"
	"sort"

	"vavg/internal/arbdefect"
	"vavg/internal/baseline"
	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/extend"
	"vavg/internal/forest"
	"vavg/internal/graph"
	"vavg/internal/hpartition"
	"vavg/internal/randcolor"
	"vavg/internal/segment"
)

// collectEdgeColors adapts extend.CollectEdgeColors for the audit.
func collectEdgeColors(g *Graph, outputs []any) (map[graph.Edge]int, error) {
	return extend.CollectEdgeColors(g, outputs)
}

var registry = []Algorithm{
	{
		Name:           "partition",
		Description:    "Procedure Partition: H-partition with exponentially decaying active set",
		Paper:          "§6.1",
		Kind:           KindPartition,
		Deterministic:  true,
		VertexAvgBound: "O(1)",
		program: func(p Params) engine.Program {
			return hpartition.Program(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return hpartition.StepProgram(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "general-partition",
		Description:    "Partition with unknown arboricity (doubling thresholds)",
		Paper:          "§6.1 / [8]",
		Kind:           KindPartition,
		Deterministic:  true,
		VertexAvgBound: "O(log² a)",
		program: func(p Params) engine.Program {
			return hpartition.GeneralProgram(p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return hpartition.GeneralStepProgram(p.Eps)
		},
	},
	{
		Name:           "forest-decomp",
		Description:    "Parallelized-Forest-Decomposition: O(a) forests",
		Paper:          "§7.1",
		Kind:           KindForest,
		Deterministic:  true,
		VertexAvgBound: "O(1)",
		program: func(p Params) engine.Program {
			return forest.Program(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return forest.StepProgram(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "forest-decomp-wc",
		Description:    "Classical Forest-Decomposition (worst-case baseline)",
		Paper:          "baseline [8]",
		Kind:           KindForest,
		Deterministic:  true,
		VertexAvgBound: "Θ(log n)",
		program: func(p Params) engine.Program {
			return baseline.ForestDecompositionWC(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return baseline.ForestDecompositionWCStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "arblinial-o1",
		Description:    "One-step Arb-Linial coloring upon H-set formation",
		Paper:          "§7.2",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "O(1)",
		ColorBound:     "O(a² log² n)",
		Palette: func(n int, p Params) int {
			return coloring.ArbLinialO1Palette(n, p.Arboricity, p.Eps)
		},
		program: func(p Params) engine.Program {
			return coloring.ArbLinialO1(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return coloring.ArbLinialO1Step(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "arblinial-wc",
		Description:    "One-step Arb-Linial after full decomposition (worst-case baseline)",
		Paper:          "baseline [8]",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "Θ(log n)",
		ColorBound:     "O(a² log² n)",
		Palette: func(n int, p Params) int {
			return coloring.ArbLinialO1Palette(n, p.Arboricity, p.Eps)
		},
		program: func(p Params) engine.Program {
			return baseline.ArbLinialWC(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return baseline.ArbLinialWCStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "a2-loglog",
		Description:    "Two-phase O(a²)-coloring",
		Paper:          "§7.3",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "O(log log n)",
		ColorBound:     "O(a²)",
		Palette: func(n int, p Params) int {
			return 2 * coloring.TwoPhaseA2PhasePalette(n, p.Arboricity, p.Eps)
		},
		program: func(p Params) engine.Program {
			return coloring.TwoPhaseA2(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return coloring.TwoPhaseA2Step(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "iterated-arblinial-wc",
		Description:    "Full Arb-Linial-Coloring after full decomposition (worst-case baseline)",
		Paper:          "baseline [8]",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "Θ(log n)",
		ColorBound:     "O(a²)",
		Palette: func(n int, p Params) int {
			return coloring.LinialFinalPalette(n, hpartition.ParamA(p.Arboricity, p.Eps))
		},
		program: func(p Params) engine.Program {
			return baseline.IteratedArbLinialWC(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return baseline.IteratedArbLinialWCStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "a-loglog",
		Description:    "Two-phase O(a)-coloring",
		Paper:          "§7.4",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "O(a log log n)",
		ColorBound:     "O(a)",
		Palette: func(n int, p Params) int {
			return coloring.AColorPalette(p.Arboricity, p.Eps)
		},
		program: func(p Params) engine.Program {
			return coloring.AColorLogLog(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return coloring.AColorLogLogStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "arbcolor-wc",
		Description:    "Procedure Arb-Color: O(a)-coloring (worst-case baseline)",
		Paper:          "baseline [8]",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "Θ(a log n)",
		ColorBound:     "O(a)",
		Palette: func(n int, p Params) int {
			return hpartition.ParamA(p.Arboricity, p.Eps) + 1
		},
		program: func(p Params) engine.Program {
			return baseline.ArbColorWC(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return baseline.ArbColorWCStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "ka2",
		Description:    "Segmentation scheme: O(k·a²)-coloring",
		Paper:          "§7.6",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "O(log^(k) n)",
		ColorBound:     "O(k·a²)",
		Palette: func(n int, p Params) int {
			return segment.KA2Palette(n, p.Arboricity, p.K, p.Eps)
		},
		program: func(p Params) engine.Program {
			return segment.KA2Coloring(p.Arboricity, p.K, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return segment.KA2Step(p.Arboricity, p.K, p.Eps)
		},
	},
	{
		Name:           "ka",
		Description:    "Segmentation scheme: O(k·a)-coloring",
		Paper:          "§7.7",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "O(a log^(k) n)",
		ColorBound:     "O(k·a)",
		Palette: func(n int, p Params) int {
			return segment.KAPalette(n, p.Arboricity, p.K, p.Eps)
		},
		program: func(p Params) engine.Program {
			return segment.KAColoring(p.Arboricity, p.K, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return segment.KAStep(p.Arboricity, p.K, p.Eps)
		},
	},
	{
		Name:           "one-plus-eta",
		Description:    "One-Plus-Eta-Arb-Col: O(a^{1+η})-coloring",
		Paper:          "§7.8",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "O(log a · log log n)",
		ColorBound:     "O(a^{1+η})",
		Palette: func(n int, p Params) int {
			return arbdefect.Palette(n, arbdefect.Params{A: p.Arboricity, Eps: p.Eps, C: p.C})
		},
		program: func(p Params) engine.Program {
			return arbdefect.OnePlusEta(p.Arboricity, p.Eps, p.C)
		},
		step: func(p Params) engine.StepProgram {
			return arbdefect.OnePlusEtaStep(p.Arboricity, p.Eps, p.C)
		},
	},
	{
		Name:           "legal-coloring-wc",
		Description:    "Procedure Legal-Coloring of [5] after a full partition (worst-case baseline for §7.8)",
		Paper:          "baseline [5]",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "Θ(poly(a) log n)",
		ColorBound:     "O(a^{1+η})",
		Palette: func(n int, p Params) int {
			return arbdefect.LegalColoringWCPalette(n, arbdefect.Params{A: p.Arboricity, Eps: p.Eps, C: p.C})
		},
		program: func(p Params) engine.Program {
			return arbdefect.LegalColoringWC(p.Arboricity, p.Eps, p.C)
		},
		step: func(p Params) engine.StepProgram {
			return arbdefect.LegalColoringWCStep(p.Arboricity, p.Eps, p.C)
		},
	},
	{
		Name:           "deltaplus1-det",
		Description:    "(Δ+1)-coloring via extension framework",
		Paper:          "Cor 8.3",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "O(a log a + log* n)",
		ColorBound:     "Δ+1",
		program: func(p Params) engine.Program {
			return extend.DeltaPlus1(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return extend.DeltaPlus1Step(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "deltaplus1-rand",
		Description:    "Rand-Delta-Plus1: randomized (Δ+1)-coloring",
		Paper:          "§9.2",
		Kind:           KindVertexColoring,
		Deterministic:  false,
		VertexAvgBound: "O(1) w.h.p.",
		ColorBound:     "Δ+1",
		program: func(Params) engine.Program {
			return randcolor.DeltaPlus1()
		},
		step: func(Params) engine.StepProgram {
			return randcolor.DeltaPlus1Step()
		},
	},
	{
		Name:           "aloglog-rand",
		Description:    "Randomized O(a log log n)-coloring",
		Paper:          "§9.3",
		Kind:           KindVertexColoring,
		Deterministic:  false,
		VertexAvgBound: "O(1) w.h.p.",
		ColorBound:     "O(a log log n)",
		Palette: func(n int, p Params) int {
			return randcolor.ALogLogPalette(n, p.Arboricity, p.Eps)
		},
		program: func(p Params) engine.Program {
			return randcolor.ALogLog(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return randcolor.ALogLogStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "mis",
		Description:    "MIS via extension framework",
		Paper:          "Cor 8.4",
		Kind:           KindMIS,
		Deterministic:  true,
		VertexAvgBound: "O(a log a + log* n)",
		program: func(p Params) engine.Program {
			return extend.MIS(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return extend.MISStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "mis-wc",
		Description:    "Deterministic MIS via worst-case coloring (baseline)",
		Paper:          "baseline",
		Kind:           KindMIS,
		Deterministic:  true,
		VertexAvgBound: "Θ(log n + a²)",
		program: func(p Params) engine.Program {
			return baseline.MISByColoringWC(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return baseline.MISByColoringWCStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "mis-luby",
		Description:    "Luby's randomized MIS (reference)",
		Paper:          "baseline [22]",
		Kind:           KindMIS,
		Deterministic:  false,
		VertexAvgBound: "O(log n) w.h.p.",
		program: func(Params) engine.Program {
			return baseline.LubyMIS()
		},
		step: func(Params) engine.StepProgram {
			return baseline.LubyMISStep()
		},
	},
	{
		Name:           "edgecolor",
		Description:    "(2Δ-1)-edge-coloring via extension framework",
		Paper:          "Cor 8.6",
		Kind:           KindEdgeColoring,
		Deterministic:  true,
		VertexAvgBound: "O(a + log* n)",
		ColorBound:     "2Δ-1",
		program: func(p Params) engine.Program {
			return extend.EdgeColoring(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return extend.EdgeColoringStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "matching",
		Description:    "Maximal matching via extension framework",
		Paper:          "Cor 8.8",
		Kind:           KindMatching,
		Deterministic:  true,
		VertexAvgBound: "O(a + log* n)",
		program: func(p Params) engine.Program {
			return extend.MaximalMatching(p.Arboricity, p.Eps)
		},
		step: func(p Params) engine.StepProgram {
			return extend.MaximalMatchingStep(p.Arboricity, p.Eps)
		},
	},
	{
		Name:           "ring-3color",
		Description:    "Cole-Vishkin 3-coloring of a ring (Feuilloley negative example)",
		Paper:          "reference [12]",
		Kind:           KindVertexColoring,
		Deterministic:  true,
		VertexAvgBound: "Θ(log* n)",
		ColorBound:     "3",
		Palette:        func(int, Params) int { return 3 },
		program: func(Params) engine.Program {
			return baseline.Ring3Coloring()
		},
		step: func(Params) engine.StepProgram {
			return baseline.Ring3ColoringStep()
		},
	},
	{
		Name:           "leader-ring",
		Description:    "Ring leader election (Feuilloley positive example)",
		Paper:          "reference [12]",
		Kind:           KindReference,
		Deterministic:  true,
		VertexAvgBound: "O(log n) commitment",
		program: func(Params) engine.Program {
			return baseline.LeaderElectionRing()
		},
		step: func(Params) engine.StepProgram {
			return baseline.LeaderElectionRingStep()
		},
	},
}

// Algorithms returns the registry sorted by name.
func Algorithms() []Algorithm {
	out := append([]Algorithm(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByName looks up a registry entry.
func ByName(name string) (Algorithm, error) {
	for _, a := range registry {
		if a.Name == name {
			return a, nil
		}
	}
	return Algorithm{}, fmt.Errorf("vavg: unknown algorithm %q", name)
}

// Generator re-exports, so downstream users need only this package.
var (
	Ring             = graph.Ring
	RingShuffled     = graph.RingShuffled
	Path             = graph.Path
	Star             = graph.Star
	StarForest       = graph.StarForest
	CompleteBinTree  = graph.CompleteBinaryTree
	RandomTree       = graph.RandomTree
	Grid             = graph.Grid
	TriangulatedGrid = graph.TriangulatedGrid
	ForestUnion      = graph.ForestUnion
	Gnm              = graph.Gnm
	Clique           = graph.Clique
	CliquePlusForest = graph.CliquePlusForest
	Hypercube        = graph.Hypercube
	Caterpillar      = graph.Caterpillar
	KaryTree         = graph.KaryTree
	Degeneracy       = graph.Degeneracy
)

// Graph-file re-exports: the binary CSR store, so tools and tests can
// materialize, load, and audit on-disk graphs through this package alone.
var (
	// MakeFamily constructs a graph family by its CLI name — the single
	// construction path shared by every tool, so a materialized file is
	// always interchangeable with its generator.
	MakeFamily = graph.MakeFamily
	// GraphFamilies lists the family names MakeFamily accepts.
	GraphFamilies = graph.Families
	// WriteGraphFile writes a graph to the binary CSR format (raw layout
	// mmaps zero-copy; compressed trades load-time decode for ~2-4x
	// smaller files).
	WriteGraphFile = graph.WriteCSRFile
	// LoadGraph loads a CSR graph file; raw-layout files come back as one
	// shared read-only mapping on unix hosts.
	LoadGraph = graph.LoadCSR
	// VerifyGraphFile audits a CSR file end to end: checksum, size
	// accounting, and the full structural contract.
	VerifyGraphFile = graph.VerifyCSRFile
	// ReadGraphInfo reads a CSR file's header without decoding sections.
	ReadGraphInfo = graph.ReadCSRInfo
)
