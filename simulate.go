package vavg

import (
	"fmt"

	"vavg/internal/engine"
	"vavg/internal/extend"
	"vavg/internal/metrics"
)

// The simulator's vertex-side types, re-exported so downstream users can
// write their own vertex programs against the LOCAL model and measure
// their vertex-averaged complexity with the same accounting as the
// paper's algorithms.
type (
	// API is the per-vertex interface of the simulator: identity,
	// neighborhood, per-round message exchange, deterministic randomness.
	API = engine.API
	// Program is per-vertex code; its return value is the vertex output,
	// broadcast to neighbors in one final counted round.
	Program = engine.Program
	// Msg is a received message; integer payloads sent on the
	// allocation-free fast lane (API.SendInt / API.BroadcastInt) are
	// read with Msg.AsInt, boxed payloads through Msg.Data.
	Msg = engine.Msg
	// Final is the payload of a terminating neighbor's last broadcast.
	Final = engine.Final
	// SimResult is the raw engine outcome with per-vertex round counts.
	SimResult = engine.Result
)

// Simulate runs a custom vertex Program on g in the synchronous
// message-passing model and returns the raw result; Report-style
// accounting can be derived with NewReport.
func Simulate(g *Graph, prog Program, p Params) (*SimResult, error) {
	p = p.withDefaults(g)
	return engine.Run(g, prog, engine.Options{Seed: p.Seed, MaxRounds: p.MaxRounds, Backend: p.Backend, StepShards: p.StepShards})
}

// NewReport derives the paper's measurements from a raw simulation result.
func NewReport(name string, g *Graph, p Params, res *SimResult) Report {
	p = p.withDefaults(g)
	return metrics.FromResult(name, g.Name, g.N(), g.M(), p.Arboricity, p.Seed, res)
}

// ListColoring solves the (deg+1)-list-coloring problem of Section 8.2
// through the general extension framework (Theorem 8.2): every vertex v
// ends with a color from list(v), which must contain at least deg(v)+1
// colors, adjacent vertices differ, and the vertex-averaged complexity is
// a function of the arboricity rather than of Delta. The outputs are
// validated before returning.
func ListColoring(g *Graph, p Params, list func(v int) []int) (Report, []int, error) {
	p = p.withDefaults(g)
	res, err := Simulate(g, extend.ListColoring(p.Arboricity, p.Eps, list), p)
	if err != nil {
		return Report{}, nil, err
	}
	rep := NewReport("list-coloring", g, p, res)
	cols := extend.Colors(res.Output)
	rep.Colors = len(distinctInts(cols))
	if !p.SkipValidation {
		if err := auditListColoring(g, cols, list); err != nil {
			return rep, cols, err
		}
	}
	return rep, cols, nil
}

func distinctInts(xs []int) map[int]bool {
	m := map[int]bool{}
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func auditListColoring(g *Graph, cols []int, list func(v int) []int) error {
	for v, c := range cols {
		ok := false
		for _, lc := range list(v) {
			if lc == c {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("vavg: vertex %d color %d outside its list", v, c)
		}
		for _, w := range g.Neighbors(v) {
			if cols[w] == c {
				return fmt.Errorf("vavg: edge {%d,%d} monochromatic", v, w)
			}
		}
	}
	return nil
}
