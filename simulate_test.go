package vavg

import "testing"

func TestSimulateCustomProgram(t *testing.T) {
	// A user-written vertex program: 2-round neighborhood max.
	g := ForestUnion(200, 2, 5)
	prog := func(api *API) any {
		best := api.ID()
		for i := 0; i < 2; i++ {
			api.Broadcast(best)
			for _, m := range api.Next() {
				if v, ok := m.Data.(int); ok && v > best {
					best = v
				}
			}
		}
		return best
	}
	res, err := Simulate(g, prog, Params{})
	if err != nil {
		t.Fatal(err)
	}
	rep := NewReport("custom", g, Params{}, res)
	if rep.VertexAvg != 3 || rep.WorstCase != 3 {
		t.Errorf("custom program accounting wrong: %+v", rep)
	}
}

func TestListColoringPublicAPI(t *testing.T) {
	g := TriangulatedGrid(10, 10)
	list := func(v int) []int {
		out := make([]int, g.Degree(v)+1)
		for i := range out {
			out[i] = 100 + 2*i // even colors only
		}
		return out
	}
	rep, cols, err := ListColoring(g, Params{}, list)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Colors < 2 {
		t.Errorf("suspicious color count %d", rep.Colors)
	}
	for _, c := range cols {
		if c%2 != 0 || c < 100 {
			t.Fatalf("color %d not from the supplied lists", c)
		}
	}
}
