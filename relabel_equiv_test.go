package vavg

import (
	"reflect"
	gort "runtime"
	"strings"
	"testing"

	"vavg/internal/engine"
	"vavg/internal/graph"
)

// TestRelabelEquivalenceRegistry is the relabeling contract (DESIGN.md
// §11): running any registered algorithm on the RCM-relabeled view of a
// graph must produce a Result byte-identical to the unrelabeled run —
// after the engine's index unmapping — on every backend at every worker
// and shard count, faultless and under a drop+crash+restart scenario.
// Vertex IDs are observable in the LOCAL model (PRNG streams, ID
// tie-breaks, inbox order, adversary decisions), so this only holds
// because the view keeps every observable in original-ID space; any
// translation gap surfaces here as a diff. CI runs the suite under -race
// at GOMAXPROCS=4.
//
// The unrelabeled baseline is computed once per (algorithm, fault,
// backend): the cross-backend contract only covers converged runs — a
// budget-exhausted (DNF) abort snapshots backend-specific partial-round
// bookkeeping — so relabeled runs compare against their own backend's
// base, and worker invariance (gated separately) covers the P axis of
// that base.
func TestRelabelEquivalenceRegistry(t *testing.T) {
	forest := ForestUnion(160, 3, 7)
	ring := Ring(160)
	views := map[*Graph]*Graph{
		forest: graph.Relabel(forest),
		ring:   graph.Relabel(ring),
	}
	sc := &Scenario{Drop: 0.1, CrashFrac: 0.03, CrashRound: 4, RestartAfter: 8, Seed: 9,
		Crashes: []Crash{{V: 1, Round: 2}, {V: 5, Round: 5, Restart: 9}}}
	points := []int{1, 4, 8}
	backends := engine.Backends()
	if testing.Short() {
		points = []int{1, 4}
		backends = []string{"step"}
	}
	for _, alg := range Algorithms() {
		g, a := forest, 3
		if strings.Contains(alg.Name, "ring") || alg.Kind == KindReference {
			g, a = ring, 2
		}
		alg, g, a := alg, g, a
		t.Run(alg.Name, func(t *testing.T) {
			// GOMAXPROCS is process-global: the P axis runs sequentially.
			p := Params{Arboricity: a, Seed: 11, MaxRounds: 1 << 21}.withDefaults(g)
			spec := engine.Spec{Program: alg.program(p)}
			if alg.step != nil {
				spec.Step = alg.step(p)
			}
			for _, fault := range []string{"faultless", "dropcrash"} {
				opts := engine.Options{Seed: p.Seed, MaxRounds: p.MaxRounds}
				if fault == "dropcrash" {
					// The adversary is compiled in ORIGINAL vertex space and
					// shared by both runs; the engine remaps it internally
					// for the view. A budget-exhausted run is a DNF outcome
					// that must also be invariant.
					adv, err := sc.Clone().Compile(g.N(), p.Seed)
					if err != nil {
						t.Fatal(err)
					}
					opts.Adv = adv
					opts.MaxRounds = 4096
				}
				type outcome struct {
					res *engine.Result
					dnf bool
				}
				run := func(rg *Graph, backend string, shards int) outcome {
					o := opts
					o.Backend = backend
					o.StepShards = shards
					res, err := engine.RunSpec(rg, spec, o)
					if res == nil {
						t.Fatalf("%s %s shards=%d: %v", fault, backend, shards, err)
					}
					res.Shards = 0 // layout provenance, excluded from equivalence
					return outcome{res, err != nil}
				}
				for _, backend := range backends {
					base := run(g, backend, 0)
					for _, P := range points {
						old := gort.GOMAXPROCS(P)
						got := run(views[g], backend, P)
						gort.GOMAXPROCS(old)
						if got.dnf != base.dnf || !reflect.DeepEqual(base.res, got.res) {
							t.Errorf("%s backend=%s P=%d: relabeled Result differs from unrelabeled (dnf %v vs %v; messages %d vs %d, roundSum %d vs %d, rounds eq=%v outputs eq=%v)",
								fault, backend, P, got.dnf, base.dnf,
								got.res.Messages, base.res.Messages,
								got.res.RoundSum, base.res.RoundSum,
								reflect.DeepEqual(base.res.Rounds, got.res.Rounds),
								reflect.DeepEqual(base.res.Output, got.res.Output))
						}
					}
				}
			}
		})
	}
}

// TestRelabelParamsReports pins the vavg façade: Params.Relabel="rcm"
// yields a Report identical to the unrelabeled run (audit included, since
// validation sees original-ID outputs), both fault-free and through the
// scenario path, and an unknown mode is a configuration error.
func TestRelabelParamsReports(t *testing.T) {
	g := ForestUnion(300, 3, 7)
	for _, name := range []string{"partition", "arblinial-o1", "mis"} {
		alg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, sc := range []*Scenario{nil, {Drop: 0.2, CrashFrac: 0.02, CrashRound: 3, RestartAfter: 5, Seed: 5}} {
			base, err := alg.Run(g, Params{Arboricity: 3, Scenario: sc})
			if err != nil {
				t.Fatalf("%s base: %v", name, err)
			}
			rel, err := alg.Run(g, Params{Arboricity: 3, Scenario: sc, Relabel: "rcm"})
			if err != nil {
				t.Fatalf("%s relabeled: %v", name, err)
			}
			// StepShards provenance aside, the reports must be identical.
			base.StepShards, rel.StepShards = 0, 0
			if !reflect.DeepEqual(base, rel) {
				t.Errorf("%s (scenario=%v): relabeled report differs:\n base %+v\n rel  %+v", name, sc != nil, base, rel)
			}
		}
	}
	alg, _ := ByName("partition")
	if _, err := alg.Run(g, Params{Relabel: "zorder"}); err == nil {
		t.Error("unknown relabel mode should fail")
	}
	// The memoized view must be dropped with its source graph.
	GraphCachePurge()
}

// TestRelabelViewCache checks the per-graph view memoization: two runs
// over the same *Graph share one view, and purging resets it.
func TestRelabelViewCache(t *testing.T) {
	g := Ring(64)
	v1, err := relabelFor(g, Params{Relabel: "rcm"})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := relabelFor(g, Params{Relabel: "rcm"})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Error("relabeled view not memoized per graph")
	}
	if same, err := relabelFor(g, Params{}); err != nil || same != g {
		t.Errorf("off mode must return the graph itself (got %p, %v)", same, err)
	}
	GraphCachePurge()
	v3, err := relabelFor(g, Params{Relabel: "rcm"})
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Error("GraphCachePurge did not drop the memoized view")
	}
}
