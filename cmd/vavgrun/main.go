// Command vavgrun executes a single algorithm from the registry on a
// generated graph (or a graph file built by vavggraph), validates the
// output, and reports the vertex-averaged measures.
//
// Usage:
//
//	vavgrun -list
//	vavgrun -alg mis -graph forests -n 10000 -a 3
//	vavgrun -alg ka -graph trigrid -n 10000 -k 4 -decay
//	vavgrun -alg partition -graph file:forests.csr
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"vavg"
	"vavg/internal/prof"
)

// stopProfiles finalizes any active pprof profiles; fatal routes through
// it so profiles survive error exits.
var stopProfiles = func() {}

func main() {
	var (
		list    = flag.Bool("list", false, "list algorithms and exit")
		algIn   = flag.String("alg", "forest-decomp", "algorithm name")
		family  = flag.String("graph", "forests", "graph family ("+strings.Join(vavg.GraphFamilies, "|")+") or file:PATH for a CSR file built by vavggraph")
		n       = flag.Int("n", 4096, "number of vertices (ignored for file: graphs)")
		a       = flag.Int("a", 3, "arboricity parameter (and generator density)")
		k       = flag.Int("k", 2, "segment count for the §7.5 scheme")
		c       = flag.Int("c", 4, "constant C for §7.8")
		eps     = flag.Float64("eps", 2, "partition slack in (0,2]")
		seed    = flag.Int64("seed", 1, "run seed")
		backend = flag.String("backend", "", "engine backend: goroutines|pool|step|auto (default auto)")
		shards  = flag.Int("stepshards", 0, "step-backend shard count (0 = autotuned); never changes results")
		relabel = flag.String("relabel", "", "vertex-relabeling layout pass: rcm|off (default off); never changes results")
		decay   = flag.Bool("decay", false, "print the active-vertex decay")
		scen    = flag.String("scenario", "", "adversarial scenario, e.g. 'drop=0.25,crashfrac=0.05,crashround=3' or a JSON spec")
		sweep   = flag.String("sweep", "", "comma-separated sizes: run a size sweep instead of a single run")
		format  = flag.String("format", "csv", "sweep output format: csv|json")
		workers = flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS); never changes results")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var err error
	if stopProfiles, err = prof.Start(*cpuProf, *memProf); err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if *list {
		for _, alg := range vavg.Algorithms() {
			det := "rand"
			if alg.Deterministic {
				det = "det "
			}
			fmt.Printf("%-22s %-14s %s  vertex-avg %s\n", alg.Name, alg.Paper, det, alg.VertexAvgBound)
		}
		return
	}

	alg, err := vavg.ByName(*algIn)
	if err != nil {
		fatal(err)
	}
	var sc *vavg.Scenario
	if *scen != "" {
		if sc, err = vavg.ParseScenario(*scen); err != nil {
			fatal(err)
		}
	}
	if *sweep != "" {
		if err := runSweep(alg, *family, *sweep, *format, *a, *eps, *k, *c, *seed, *backend, *shards, *relabel, *workers, sc); err != nil {
			fatal(err)
		}
		return
	}
	g, err := makeGraph(*family, *n, *a, *seed)
	if err != nil {
		fatal(err)
	}
	rep, err := alg.Run(g, vavg.Params{
		Arboricity: *a, Eps: *eps, K: *k, C: *c, Seed: *seed, Backend: *backend, StepShards: *shards, Relabel: *relabel, Scenario: sc,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("algorithm:     %s (%s, %s)\n", alg.Name, alg.Paper, alg.Description)
	fmt.Printf("graph:         %s  n=%d m=%d a<=%d Δ=%d\n", g.Name, g.N(), g.M(), rep.Arbor, g.MaxDegree())
	if mb := g.MappedBytes(); mb > 0 {
		fmt.Printf("mapped:        %d bytes (read-only file mapping)\n", mb)
	}
	fmt.Printf("vertex-avg:    %.3f rounds   (bound: %s)\n", rep.VertexAvg, alg.VertexAvgBound)
	fmt.Printf("worst-case:    %d rounds\n", rep.WorstCase)
	fmt.Printf("round sum:     %d   messages: %d\n", rep.RoundSum, rep.Messages)
	if rep.Colors >= 0 {
		fmt.Printf("colors used:   %d", rep.Colors)
		if alg.ColorBound != "" {
			fmt.Printf("   (bound: %s)", alg.ColorBound)
		}
		fmt.Println()
	}
	if rep.Size >= 0 {
		fmt.Printf("solution size: %d\n", rep.Size)
	}
	if sc == nil {
		fmt.Println("validation:    ok")
	} else {
		// Under a scenario, hard validation is replaced by the degradation
		// audit: report what the adversary cost instead of asserting a
		// perfect output.
		fmt.Printf("scenario:      %s\n", sc.String())
		conv := "yes"
		if !rep.Converged {
			conv = "no (round budget exhausted)"
		}
		fmt.Printf("converged:     %s\n", conv)
		fmt.Printf("dropped:       %d deliveries   lost to crash: %d\n", rep.Dropped, rep.LostToCrash)
		fmt.Printf("crashed:       %d forever   restarts: %d\n", rep.CrashedForever, rep.Restarts)
		if rep.ResidualConflicts >= 0 {
			fmt.Printf("residual conflicts: %d\n", rep.ResidualConflicts)
		}
	}

	if *decay {
		fmt.Println("\nactive vertices per round:")
		for i, act := range rep.ActivePerRound {
			bar := strings.Repeat("#", int(math.Ceil(60*float64(act)/float64(g.N()))))
			fmt.Printf("%4d %8d %s\n", i+1, act, bar)
		}
	}
}

// runSweep measures the algorithm across a size sweep and emits CSV or
// JSON suitable for plotting.
func runSweep(alg vavg.Algorithm, family, sizesArg, format string, a int, eps float64, k, c int, seed int64, backend string, shards int, relabel string, workers int, sc *vavg.Scenario) error {
	var sizes []int
	gen := graphSource(family, a, seed)
	if strings.HasPrefix(family, "file:") && sizesArg == "file" {
		// `-sweep file` sweeps a file-backed graph at its one native size
		// without the caller having to know it.
		sizes = []int{gen(0).N()}
	} else {
		for _, part := range strings.Split(sizesArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad sweep sizes %q: %w", sizesArg, err)
			}
			sizes = append(sizes, v)
		}
	}
	res, err := vavg.Sweep(alg, gen, sizes, nil, vavg.Params{Arboricity: a, Eps: eps, K: k, C: c, Backend: backend, StepShards: shards, Relabel: relabel, SweepWorkers: workers, Scenario: sc})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vertex-avg growth exponent vs log n: %.3f (0 = flat, 1 = Θ(log n))\n",
		res.VertexAvgGrowth())
	if format == "json" {
		return res.WriteJSON(os.Stdout)
	}
	return res.WriteCSV(os.Stdout)
}

// graphSource resolves -graph into a size-indexed source: a shared-cache
// generator for family names, a shared-mapping file load for file:PATH.
func graphSource(family string, a int, seed int64) func(n int) *vavg.Graph {
	if path, ok := strings.CutPrefix(family, "file:"); ok {
		return vavg.FileGen(path)
	}
	return vavg.CachedGen(family, func(n int) *vavg.Graph {
		g, err := vavg.MakeFamily(family, n, a, seed)
		if err != nil {
			panic(err)
		}
		return g
	}, "a", a, "seed", seed)
}

func makeGraph(family string, n, a int, seed int64) (*vavg.Graph, error) {
	if path, ok := strings.CutPrefix(family, "file:"); ok {
		return vavg.LoadGraph(path)
	}
	return vavg.MakeFamily(family, n, a, seed)
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "vavgrun:", err)
	os.Exit(1)
}
