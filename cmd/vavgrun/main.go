// Command vavgrun executes a single algorithm from the registry on a
// generated graph, validates the output, and reports the vertex-averaged
// measures.
//
// Usage:
//
//	vavgrun -list
//	vavgrun -alg mis -graph forests -n 10000 -a 3
//	vavgrun -alg ka -graph trigrid -n 10000 -k 4 -decay
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"vavg"
	"vavg/internal/prof"
)

// stopProfiles finalizes any active pprof profiles; fatal routes through
// it so profiles survive error exits.
var stopProfiles = func() {}

func main() {
	var (
		list    = flag.Bool("list", false, "list algorithms and exit")
		algIn   = flag.String("alg", "forest-decomp", "algorithm name")
		family  = flag.String("graph", "forests", "graph family: forests|ring|star|starforest|grid|trigrid|tree|gnm|clique|hypercube")
		n       = flag.Int("n", 4096, "number of vertices")
		a       = flag.Int("a", 3, "arboricity parameter (and generator density)")
		k       = flag.Int("k", 2, "segment count for the §7.5 scheme")
		c       = flag.Int("c", 4, "constant C for §7.8")
		eps     = flag.Float64("eps", 2, "partition slack in (0,2]")
		seed    = flag.Int64("seed", 1, "run seed")
		backend = flag.String("backend", "", "engine backend: goroutines|pool|step|auto (default auto)")
		shards  = flag.Int("stepshards", 0, "step-backend shard count (0 = GOMAXPROCS); never changes results")
		decay   = flag.Bool("decay", false, "print the active-vertex decay")
		scen    = flag.String("scenario", "", "adversarial scenario, e.g. 'drop=0.25,crashfrac=0.05,crashround=3' or a JSON spec")
		sweep   = flag.String("sweep", "", "comma-separated sizes: run a size sweep instead of a single run")
		format  = flag.String("format", "csv", "sweep output format: csv|json")
		workers = flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS); never changes results")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	var err error
	if stopProfiles, err = prof.Start(*cpuProf, *memProf); err != nil {
		fatal(err)
	}
	defer stopProfiles()

	if *list {
		for _, alg := range vavg.Algorithms() {
			det := "rand"
			if alg.Deterministic {
				det = "det "
			}
			fmt.Printf("%-22s %-14s %s  vertex-avg %s\n", alg.Name, alg.Paper, det, alg.VertexAvgBound)
		}
		return
	}

	alg, err := vavg.ByName(*algIn)
	if err != nil {
		fatal(err)
	}
	var sc *vavg.Scenario
	if *scen != "" {
		if sc, err = vavg.ParseScenario(*scen); err != nil {
			fatal(err)
		}
	}
	if *sweep != "" {
		if err := runSweep(alg, *family, *sweep, *format, *a, *eps, *k, *c, *seed, *backend, *shards, *workers, sc); err != nil {
			fatal(err)
		}
		return
	}
	g, err := makeGraph(*family, *n, *a, *seed)
	if err != nil {
		fatal(err)
	}
	rep, err := alg.Run(g, vavg.Params{
		Arboricity: *a, Eps: *eps, K: *k, C: *c, Seed: *seed, Backend: *backend, StepShards: *shards, Scenario: sc,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("algorithm:     %s (%s, %s)\n", alg.Name, alg.Paper, alg.Description)
	fmt.Printf("graph:         %s  n=%d m=%d a<=%d Δ=%d\n", g.Name, g.N(), g.M(), rep.Arbor, g.MaxDegree())
	fmt.Printf("vertex-avg:    %.3f rounds   (bound: %s)\n", rep.VertexAvg, alg.VertexAvgBound)
	fmt.Printf("worst-case:    %d rounds\n", rep.WorstCase)
	fmt.Printf("round sum:     %d   messages: %d\n", rep.RoundSum, rep.Messages)
	if rep.Colors >= 0 {
		fmt.Printf("colors used:   %d", rep.Colors)
		if alg.ColorBound != "" {
			fmt.Printf("   (bound: %s)", alg.ColorBound)
		}
		fmt.Println()
	}
	if rep.Size >= 0 {
		fmt.Printf("solution size: %d\n", rep.Size)
	}
	if sc == nil {
		fmt.Println("validation:    ok")
	} else {
		// Under a scenario, hard validation is replaced by the degradation
		// audit: report what the adversary cost instead of asserting a
		// perfect output.
		fmt.Printf("scenario:      %s\n", sc.String())
		conv := "yes"
		if !rep.Converged {
			conv = "no (round budget exhausted)"
		}
		fmt.Printf("converged:     %s\n", conv)
		fmt.Printf("dropped:       %d deliveries   lost to crash: %d\n", rep.Dropped, rep.LostToCrash)
		fmt.Printf("crashed:       %d forever   restarts: %d\n", rep.CrashedForever, rep.Restarts)
		if rep.ResidualConflicts >= 0 {
			fmt.Printf("residual conflicts: %d\n", rep.ResidualConflicts)
		}
	}

	if *decay {
		fmt.Println("\nactive vertices per round:")
		for i, act := range rep.ActivePerRound {
			bar := strings.Repeat("#", int(math.Ceil(60*float64(act)/float64(g.N()))))
			fmt.Printf("%4d %8d %s\n", i+1, act, bar)
		}
	}
}

// runSweep measures the algorithm across a size sweep and emits CSV or
// JSON suitable for plotting.
func runSweep(alg vavg.Algorithm, family, sizesArg, format string, a int, eps float64, k, c int, seed int64, backend string, shards, workers int, sc *vavg.Scenario) error {
	var sizes []int
	for _, part := range strings.Split(sizesArg, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return fmt.Errorf("bad sweep sizes %q: %w", sizesArg, err)
		}
		sizes = append(sizes, v)
	}
	gen := vavg.CachedGen(fmt.Sprintf("%s|a=%d|seed=%d", family, a, seed), func(n int) *vavg.Graph {
		g, err := makeGraph(family, n, a, seed)
		if err != nil {
			panic(err)
		}
		return g
	})
	res, err := vavg.Sweep(alg, gen, sizes, nil, vavg.Params{Arboricity: a, Eps: eps, K: k, C: c, Backend: backend, StepShards: shards, SweepWorkers: workers, Scenario: sc})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "vertex-avg growth exponent vs log n: %.3f (0 = flat, 1 = Θ(log n))\n",
		res.VertexAvgGrowth())
	if format == "json" {
		return res.WriteJSON(os.Stdout)
	}
	return res.WriteCSV(os.Stdout)
}

func makeGraph(family string, n, a int, seed int64) (*vavg.Graph, error) {
	switch family {
	case "forests":
		return vavg.ForestUnion(n, a, seed), nil
	case "ring":
		return vavg.Ring(n), nil
	case "star":
		return vavg.Star(n), nil
	case "starforest":
		return vavg.StarForest(n, 16), nil
	case "grid":
		side := isqrt(n)
		return vavg.Grid(side, side), nil
	case "trigrid":
		side := isqrt(n)
		return vavg.TriangulatedGrid(side, side), nil
	case "tree":
		return vavg.RandomTree(n, seed), nil
	case "gnm":
		return vavg.Gnm(n, a*n, seed), nil
	case "clique":
		return vavg.Clique(n), nil
	case "hypercube":
		d := 1
		for 1<<d < n {
			d++
		}
		return vavg.Hypercube(d), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}

func isqrt(n int) int {
	s := int(math.Sqrt(float64(n)))
	if s < 2 {
		return 2
	}
	return s
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "vavgrun:", err)
	os.Exit(1)
}
