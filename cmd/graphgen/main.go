// Command graphgen generates the library's graph families and reports
// their structural parameters (degeneracy, Nash-Williams bound, degrees,
// components), optionally emitting the edge list or a binary CSR file.
//
// Usage:
//
//	graphgen -graph forests -n 1000 -a 4
//	graphgen -graph trigrid -n 400 -edges > edges.txt
//	graphgen -graph forests -n 1000000 -out forests.csr -compress
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"vavg/internal/graph"
)

func main() {
	var (
		family   = flag.String("graph", "forests", "family: "+strings.Join(graph.Families, "|"))
		n        = flag.Int("n", 1024, "number of vertices")
		a        = flag.Int("a", 3, "density parameter where applicable")
		seed     = flag.Int64("seed", 1, "generator seed")
		edges    = flag.Bool("edges", false, "emit the edge list to stdout")
		out      = flag.String("out", "", "write the graph as a binary CSR file to this path")
		compress = flag.Bool("compress", false, "with -out: delta-varint compress the stored sections")
	)
	flag.Parse()

	g, err := graph.MakeFamily(*family, *n, *a, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}

	_, comps := graph.Components(g)
	fmt.Fprintf(os.Stderr, "name:          %s\n", g.Name)
	fmt.Fprintf(os.Stderr, "vertices:      %d\n", g.N())
	fmt.Fprintf(os.Stderr, "edges:         %d\n", g.M())
	fmt.Fprintf(os.Stderr, "max degree:    %d\n", g.MaxDegree())
	fmt.Fprintf(os.Stderr, "degeneracy:    %d\n", graph.Degeneracy(g))
	fmt.Fprintf(os.Stderr, "NW lower bnd:  %d\n", graph.NashWilliamsLowerBound(g))
	fmt.Fprintf(os.Stderr, "arbor bound:   %d (certified by generator)\n", g.ArborBound)
	fmt.Fprintf(os.Stderr, "components:    %d\n", comps)

	if *out != "" {
		if err := graph.WriteCSRFile(*out, g, *compress); err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		st, err := os.Stat(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "graphgen:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote:         %s (%d bytes)\n", *out, st.Size())
	}

	if *edges {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, e := range g.Edges() {
			fmt.Fprintf(w, "%d %d\n", e.U, e.V)
		}
	}
}
