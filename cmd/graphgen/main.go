// Command graphgen generates the library's graph families and reports
// their structural parameters (degeneracy, Nash-Williams bound, degrees,
// components), optionally emitting the edge list.
//
// Usage:
//
//	graphgen -graph forests -n 1000 -a 4
//	graphgen -graph trigrid -n 400 -edges > edges.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"

	"vavg/internal/graph"
)

func main() {
	var (
		family = flag.String("graph", "forests", "family: forests|ring|path|star|starforest|bintree|tree|grid|trigrid|gnm|clique|cliqueforest|hypercube|caterpillar")
		n      = flag.Int("n", 1024, "number of vertices")
		a      = flag.Int("a", 3, "density parameter where applicable")
		seed   = flag.Int64("seed", 1, "generator seed")
		edges  = flag.Bool("edges", false, "emit the edge list to stdout")
	)
	flag.Parse()

	g, err := make(*family, *n, *a, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "graphgen:", err)
		os.Exit(1)
	}

	_, comps := graph.Components(g)
	fmt.Fprintf(os.Stderr, "name:          %s\n", g.Name)
	fmt.Fprintf(os.Stderr, "vertices:      %d\n", g.N())
	fmt.Fprintf(os.Stderr, "edges:         %d\n", g.M())
	fmt.Fprintf(os.Stderr, "max degree:    %d\n", g.MaxDegree())
	fmt.Fprintf(os.Stderr, "degeneracy:    %d\n", graph.Degeneracy(g))
	fmt.Fprintf(os.Stderr, "NW lower bnd:  %d\n", graph.NashWilliamsLowerBound(g))
	fmt.Fprintf(os.Stderr, "arbor bound:   %d (certified by generator)\n", g.ArborBound)
	fmt.Fprintf(os.Stderr, "components:    %d\n", comps)

	if *edges {
		w := bufio.NewWriter(os.Stdout)
		defer w.Flush()
		for _, e := range g.Edges() {
			fmt.Fprintf(w, "%d %d\n", e.U, e.V)
		}
	}
}

func make(family string, n, a int, seed int64) (*graph.Graph, error) {
	switch family {
	case "forests":
		return graph.ForestUnion(n, a, seed), nil
	case "ring":
		return graph.Ring(n), nil
	case "path":
		return graph.Path(n), nil
	case "star":
		return graph.Star(n), nil
	case "starforest":
		return graph.StarForest(n, a*8), nil
	case "bintree":
		return graph.CompleteBinaryTree(n), nil
	case "tree":
		return graph.RandomTree(n, seed), nil
	case "grid":
		s := side(n)
		return graph.Grid(s, s), nil
	case "trigrid":
		s := side(n)
		return graph.TriangulatedGrid(s, s), nil
	case "gnm":
		return graph.Gnm(n, a*n, seed), nil
	case "clique":
		return graph.Clique(n), nil
	case "cliqueforest":
		return graph.CliquePlusForest(n, a*4, seed), nil
	case "hypercube":
		d := 1
		for 1<<d < n {
			d++
		}
		return graph.Hypercube(d), nil
	case "caterpillar":
		return graph.Caterpillar(n), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}

func side(n int) int {
	s := int(math.Sqrt(float64(n)))
	if s < 2 {
		return 2
	}
	return s
}
