// Command vavglint runs the vavg static-analysis suite (internal/
// analysis) over module packages and reports contract violations:
//
//	go run ./cmd/vavglint ./...
//
// Analyzers: detorder (map-iteration order must not reach results),
// noglobalrand (vertex code draws only from the per-vertex seeded PRNG),
// stepcontract (step-form programs never block), wiretag (fast-lane tags
// come from internal/wire constants), hotpath (//vavg:hotpath functions
// stay allocation-free), plus the interprocedural pair: detflow
// (determinism taint must not reach messages, Results, or adversary
// hashing through any call chain) and payloadwire (every concrete type
// entering the any message lane must be wire-codable). Suppress a
// deliberate exception with //lint:ignore <analyzer> <reason> on or
// directly above the flagged line; //lint:file-ignore covers a whole
// file.
//
// -json emits one JSON object per finding (analyzer, position, message,
// suppression state), suppressed findings included so consumers can audit
// them; text mode prints active findings only. -closure prints the
// any-lane payload type closure the payloadwire analyzer certified.
//
// Exit status: 0 clean, 1 active findings, 2 load or usage errors.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"vavg/internal/analysis"
)

func main() {
	var (
		names   = flag.String("analyzers", "", "comma-separated subset to run (default: all)")
		list    = flag.Bool("list", false, "list analyzers and exit")
		dir     = flag.String("C", ".", "module directory to run in")
		jsonOut = flag.Bool("json", false, "emit findings as JSON Lines (suppressed findings included, marked)")
		workers = flag.Int("workers", 0, "concurrent type-check/analysis workers (0 = GOMAXPROCS)")
		closure = flag.Bool("closure", false, "print the any-lane payload type closure and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vavglint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *names != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*names, ",") {
			a, err := analysis.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	loader.Workers = *workers
	pkgs, err := loader.LoadPackages(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *closure {
		for _, line := range analysis.ComputeFacts(pkgs).LaneClosure() {
			fmt.Println(line)
		}
		return
	}

	diags := analysis.RunAnalyzersN(analyzers, pkgs, *workers)
	active := analysis.Active(diags)
	if *jsonOut {
		baseDir, err := filepath.Abs(*dir)
		if err != nil {
			baseDir = *dir
		}
		w := bufio.NewWriter(os.Stdout)
		if err := analysis.WriteJSON(w, diags, baseDir); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		w.Flush()
	} else {
		for _, d := range active {
			fmt.Println(d)
		}
	}
	if len(active) > 0 {
		fmt.Fprintf(os.Stderr, "vavglint: %d finding(s)\n", len(active))
		os.Exit(1)
	}
}
