// Command vavglint runs the vavg static-analysis suite (internal/
// analysis) over module packages and reports contract violations:
//
//	go run ./cmd/vavglint ./...
//
// Analyzers: detorder (map-iteration order must not reach results),
// noglobalrand (vertex code draws only from the per-vertex seeded PRNG),
// stepcontract (step-form programs never block), wiretag (fast-lane tags
// come from internal/wire constants), and hotpath (//vavg:hotpath
// functions stay allocation-free). Suppress a deliberate exception with
// //lint:ignore <analyzer> <reason> on or directly above the flagged
// line; //lint:file-ignore covers a whole file.
//
// Exit status: 0 clean, 1 findings, 2 load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vavg/internal/analysis"
)

func main() {
	var (
		names = flag.String("analyzers", "", "comma-separated subset to run (default: all)")
		list  = flag.Bool("list", false, "list analyzers and exit")
		dir   = flag.String("C", ".", "module directory to run in")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: vavglint [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *names != "" {
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*names, ",") {
			a, err := analysis.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader, err := analysis.NewLoader(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadPackages(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(analyzers, pkgs)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "vavglint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
