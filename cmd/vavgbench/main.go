// Command vavgbench regenerates the paper's evaluation artifacts: every
// row of Tables 1 and 2, Figure 1, the Lemma 6.1 decay and the Feuilloley
// ring reference points.
//
// Usage:
//
//	vavgbench -list
//	vavgbench -exp all
//	vavgbench -exp t2-mis -sizes 1024,4096,16384 -seeds 1,2,3
//	vavgbench -exp table1 -quick
//	vavgbench -compare BENCH_engine.json -threshold 25
//
// -compare re-measures the backend benchmark and diffs it against a
// committed baseline JSON (the BENCH_engine.json format); it exits
// non-zero when any matched point's wall time or allocation count grew by
// more than -threshold percent.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vavg/internal/experiments"
	"vavg/internal/prof"
)

// stopProfiles finalizes any active pprof profiles; fatal routes through
// it so profiles survive error exits.
var stopProfiles = func() {}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id, or 'all'")
		list      = flag.Bool("list", false, "list experiments and exit")
		sizes     = flag.String("sizes", "", "comma-separated graph sizes (default per experiment)")
		nFlag     = flag.Int("n", 0, "single graph size; shorthand for -sizes n")
		seeds     = flag.String("seeds", "", "comma-separated seeds (default 1,2,3)")
		quick     = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		jsonF     = flag.Bool("json", false, "machine-readable JSON output (supported by -exp backends)")
		workers   = flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS); never changes results")
		shards    = flag.Int("stepshards", 0, "step-backend shard count (0 = GOMAXPROCS); never changes results")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
		compare   = flag.String("compare", "", "baseline JSON (BENCH_engine.json format): rerun the backend benchmark and fail on regressions")
		threshold = flag.Float64("threshold", 25, "regression threshold for -compare, in percent")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %-38s %s\n", e.ID, e.Artifact, e.Claim)
		}
		return
	}

	var err error
	if stopProfiles, err = prof.Start(*cpuProf, *memProf); err != nil {
		fatal(err)
	}
	defer stopProfiles()

	cfg := experiments.Config{W: os.Stdout, Quick: *quick, JSON: *jsonF, Workers: *workers, StepShards: *shards}
	if cfg.Sizes, err = parseInts(*sizes); err != nil {
		fatal(err)
	}
	if *nFlag > 0 {
		if len(cfg.Sizes) > 0 {
			fatal(fmt.Errorf("-n and -sizes are mutually exclusive"))
		}
		cfg.Sizes = []int{*nFlag}
	}
	var seeds64 []int
	if seeds64, err = parseInts(*seeds); err != nil {
		fatal(err)
	}
	for _, s := range seeds64 {
		cfg.Seeds = append(cfg.Seeds, int64(s))
	}

	if *compare != "" {
		if err := runCompare(cfg, *compare, *threshold); err != nil {
			fatal(err)
		}
		return
	}

	run := func(e experiments.Experiment) {
		// JSON mode keeps stdout clean for the machine-readable payload.
		if !cfg.JSON {
			fmt.Printf("== %s — %s\n   claim: %s\n", e.ID, e.Artifact, e.Claim)
		}
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if !cfg.JSON {
			fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		}
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		e, err := experiments.Find(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		run(e)
	}
}

// runCompare re-measures the backend benchmark under cfg and diffs it
// against the baseline file, failing the process when any point regressed
// past the threshold.
func runCompare(cfg experiments.Config, path string, thresholdPct float64) error {
	base, err := experiments.LoadBench(path)
	if err != nil {
		return err
	}
	cfg.JSON = false
	fresh, err := experiments.RunBackendBench(cfg)
	if err != nil {
		return err
	}
	rep := experiments.CompareBenches(base, fresh, thresholdPct)
	rep.Write(os.Stdout)
	if rep.Regressions > 0 {
		return fmt.Errorf("%d benchmark points regressed past %+.0f%%", rep.Regressions, thresholdPct)
	}
	return nil
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "vavgbench:", err)
	os.Exit(1)
}
