// Command vavgbench regenerates the paper's evaluation artifacts: every
// row of Tables 1 and 2, Figure 1, the Lemma 6.1 decay and the Feuilloley
// ring reference points.
//
// Usage:
//
//	vavgbench -list
//	vavgbench -exp all
//	vavgbench -exp t2-mis -sizes 1024,4096,16384 -seeds 1,2,3
//	vavgbench -exp table1 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vavg/internal/experiments"
	"vavg/internal/prof"
)

// stopProfiles finalizes any active pprof profiles; fatal routes through
// it so profiles survive error exits.
var stopProfiles = func() {}

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id, or 'all'")
		list    = flag.Bool("list", false, "list experiments and exit")
		sizes   = flag.String("sizes", "", "comma-separated graph sizes (default per experiment)")
		seeds   = flag.String("seeds", "", "comma-separated seeds (default 1,2,3)")
		quick   = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		jsonF   = flag.Bool("json", false, "machine-readable JSON output (supported by -exp backends)")
		workers = flag.Int("workers", 0, "sweep worker goroutines (0 = GOMAXPROCS); never changes results")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %-38s %s\n", e.ID, e.Artifact, e.Claim)
		}
		return
	}

	var err error
	if stopProfiles, err = prof.Start(*cpuProf, *memProf); err != nil {
		fatal(err)
	}
	defer stopProfiles()

	cfg := experiments.Config{W: os.Stdout, Quick: *quick, JSON: *jsonF, Workers: *workers}
	if cfg.Sizes, err = parseInts(*sizes); err != nil {
		fatal(err)
	}
	var seeds64 []int
	if seeds64, err = parseInts(*seeds); err != nil {
		fatal(err)
	}
	for _, s := range seeds64 {
		cfg.Seeds = append(cfg.Seeds, int64(s))
	}

	run := func(e experiments.Experiment) {
		// JSON mode keeps stdout clean for the machine-readable payload.
		if !cfg.JSON {
			fmt.Printf("== %s — %s\n   claim: %s\n", e.ID, e.Artifact, e.Claim)
		}
		start := time.Now()
		if err := e.Run(cfg); err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if !cfg.JSON {
			fmt.Printf("   (%.1fs)\n\n", time.Since(start).Seconds())
		}
	}

	if *exp == "all" {
		for _, e := range experiments.All() {
			run(e)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		e, err := experiments.Find(strings.TrimSpace(id))
		if err != nil {
			fatal(err)
		}
		run(e)
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer list %q: %w", s, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	stopProfiles()
	fmt.Fprintln(os.Stderr, "vavgbench:", err)
	os.Exit(1)
}
