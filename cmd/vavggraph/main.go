// Command vavggraph manages the library's binary CSR graph store: it
// materializes generator families to disk, inspects file headers without
// decoding the payload, and audits files end to end (checksum, size
// accounting, full structural validation).
//
// Usage:
//
//	vavggraph build -graph forests -n 1000000 -a 3 -seed 7 -out forests.csr
//	vavggraph build -graph ring -n 100000000 -compress -out ring.csr
//	vavggraph relabel -in forests.csr -out forests.rcm.csr
//	vavggraph inspect forests.csr
//	vavggraph verify forests.csr
//
// A built file is interchangeable with its generator: `vavgrun -graph
// file:forests.csr` produces byte-identical results to generating the
// same family in-process, while sharing one read-only mapping across
// every worker (and, for concurrent processes, one page-cache copy).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"vavg/internal/graph"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "build":
		err = runBuild(os.Args[2:])
	case "relabel":
		err = runRelabel(os.Args[2:])
	case "inspect":
		err = runInspect(os.Args[2:])
	case "verify":
		err = runVerify(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "vavggraph: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vavggraph:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  vavggraph build -graph FAMILY -n N [-a A] [-seed S] [-compress] -out PATH
  vavggraph relabel -in PATH [-compress] -out PATH
  vavggraph inspect PATH
  vavggraph verify PATH

build materializes a generator family as a binary CSR file; relabel
rewrites a file in reverse Cuthill-McKee vertex order for cache
locality (an isomorphic graph — vertex IDs change, so use Params.Relabel
/ vavgrun -relabel when results must match the original file); inspect
prints a file's header without decoding sections; verify audits the
checksum, size accounting, and structural contract.
`)
}

func runBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	var (
		family   = fs.String("graph", "forests", "family: "+strings.Join(graph.Families, "|"))
		n        = fs.Int("n", 1024, "number of vertices")
		a        = fs.Int("a", 3, "density parameter where applicable")
		seed     = fs.Int64("seed", 1, "generator seed")
		compress = fs.Bool("compress", false, "delta-varint compress the stored sections")
		out      = fs.String("out", "", "output path (required)")
	)
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("build: -out is required")
	}
	g, err := graph.MakeFamily(*family, *n, *a, *seed)
	if err != nil {
		return err
	}
	if err := graph.WriteCSRFile(*out, g, *compress); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	rawBytes := 4 * (uint64(g.N()) + 1 + 4*uint64(g.M()))
	fmt.Printf("wrote %s: n=%d m=%d arbor=%d layout=%s file=%d bytes (in-memory CSR %d bytes)\n",
		*out, g.N(), g.M(), g.ArborBound, layout(*compress), st.Size(), rawBytes)
	return nil
}

// runRelabel rewrites a CSR file with its vertices renumbered in reverse
// Cuthill-McKee order: neighbors land near each other on disk and in the
// mapped adjacency, shrinking the working set of the engine's sequential
// sweeps. The output is a plain isomorphic relabeling (graph.Permute) —
// a self-contained, verifiable CSR file whose runs are NOT comparable to
// the original file's, because vertex IDs are observable in the LOCAL
// model. For ID-preserving locality, run the original file with
// Params.Relabel="rcm" instead.
func runRelabel(args []string) error {
	fs := flag.NewFlagSet("relabel", flag.ExitOnError)
	var (
		in       = fs.String("in", "", "input CSR file (required)")
		out      = fs.String("out", "", "output path (required)")
		compress = fs.Bool("compress", false, "delta-varint compress the stored sections")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("relabel: -in and -out are required")
	}
	g, err := graph.LoadCSR(*in)
	if err != nil {
		return err
	}
	pg := graph.Permute(g, graph.RCMOrder(g))
	if err := graph.WriteCSRFile(*out, pg, *compress); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s: n=%d m=%d arbor=%d layout=%s file=%d bytes (rcm order)\n",
		*out, pg.N(), pg.M(), pg.ArborBound, layout(*compress), st.Size())
	return nil
}

func layout(compressed bool) string {
	if compressed {
		return "compressed"
	}
	return "raw"
}

func runInspect(args []string) error {
	path, err := oneArg("inspect", args)
	if err != nil {
		return err
	}
	info, err := graph.ReadCSRInfo(path)
	if err != nil {
		return err
	}
	fmt.Printf("path:        %s\n", path)
	fmt.Printf("name:        %s\n", info.Name)
	fmt.Printf("vertices:    %d\n", info.N)
	fmt.Printf("edges:       %d\n", info.M)
	fmt.Printf("arbor bound: %d\n", info.ArborBound)
	fmt.Printf("layout:      %s\n", layout(info.Compressed))
	fmt.Printf("file bytes:  %d\n", info.FileBytes)
	fmt.Printf("checksum:    %016x\n", info.Checksum)
	return nil
}

func runVerify(args []string) error {
	path, err := oneArg("verify", args)
	if err != nil {
		return err
	}
	if err := graph.VerifyCSRFile(path); err != nil {
		return err
	}
	fmt.Printf("%s: OK\n", path)
	return nil
}

func oneArg(cmd string, args []string) (string, error) {
	if len(args) != 1 || strings.HasPrefix(args[0], "-") {
		return "", fmt.Errorf("%s: exactly one file path expected", cmd)
	}
	return args[0], nil
}
