// Simulation: the paper's third motivation (Section 1.2). When a single
// machine simulates a large distributed network (as in big-graph
// analytics), the work is the SUM of rounds over all simulated vertices —
// exactly n times the vertex-averaged complexity — not the worst case.
// This example simulates the same symmetry-breaking task with the paper's
// algorithm and with the classical baseline and reports the simulated
// work and the observed wall-clock advantage.
package main

import (
	"fmt"
	"log"
	"time"

	"vavg"
)

func main() {
	g := vavg.ForestUnion(100000, 3, 3)
	fmt.Printf("simulating a %d-node network (%s, m=%d) on one machine\n\n",
		g.N(), g.Name, g.M())

	type outcome struct {
		name     string
		work     int64
		rounds   int
		wall     time.Duration
		messages int64
	}
	var results []outcome
	for _, name := range []string{"forest-decomp", "forest-decomp-wc"} {
		alg, err := vavg.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		rep, err := alg.Run(g, vavg.Params{Arboricity: 3, SkipValidation: true})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, outcome{
			name:     name,
			work:     rep.RoundSum,
			rounds:   rep.WorstCase,
			wall:     time.Since(start),
			messages: rep.Messages,
		})
	}

	for _, r := range results {
		fmt.Printf("%-18s simulated vertex-rounds: %9d   global rounds: %3d   messages: %9d   wall: %v\n",
			r.name, r.work, r.rounds, r.messages, r.wall.Round(time.Millisecond))
	}
	fmt.Printf("\nsimulated-work ratio (baseline/ours): %.1fx\n",
		float64(results[1].work)/float64(results[0].work))
	fmt.Println("the vertex-averaged algorithm performs O(n) total simulated rounds,")
	fmt.Println("independent of n's logarithm — the quantity that governs big-graph simulators.")
}
