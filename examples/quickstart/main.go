// Quickstart: generate a bounded-arboricity graph, run a vertex-averaged
// algorithm and its worst-case baseline, and compare the two complexity
// measures the paper contrasts.
package main

import (
	"fmt"
	"log"

	"vavg"
)

func main() {
	// A union of three random forests on 20000 vertices: arboricity <= 3,
	// the canonical bounded-arboricity family of the paper.
	g := vavg.ForestUnion(20000, 3, 42)
	fmt.Printf("graph %s: n=%d m=%d Δ=%d degeneracy=%d\n\n",
		g.Name, g.N(), g.M(), g.MaxDegree(), vavg.Degeneracy(g))

	// Section 7.2: O(a² log n)-coloring with O(1) vertex-averaged
	// complexity, against the classical worst-case decomposition-based
	// coloring where every vertex pays Θ(log n) rounds.
	for _, name := range []string{"arblinial-o1", "arblinial-wc"} {
		alg, err := vavg.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := alg.Run(g, vavg.Params{Arboricity: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s (%s)\n", alg.Name, alg.Paper)
		fmt.Printf("  vertex-averaged complexity: %7.2f rounds (bound %s)\n",
			rep.VertexAvg, alg.VertexAvgBound)
		fmt.Printf("  worst-case complexity:      %7d rounds\n", rep.WorstCase)
		fmt.Printf("  colors used:                %7d\n\n", rep.Colors)
	}

	// The same separation for maximal independent set (Corollary 8.4).
	for _, name := range []string{"mis", "mis-wc"} {
		alg, err := vavg.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := alg.Run(g, vavg.Params{Arboricity: 3})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s (%s): vertex-avg %.2f, worst %d, |MIS| = %d\n",
			alg.Name, alg.Paper, rep.VertexAvg, rep.WorstCase, rep.Size)
	}
}
