// Custom: writing your own LOCAL-model algorithm against the simulator
// and measuring its vertex-averaged complexity with the same accounting
// as the paper's algorithms. The example implements a simple "local
// minimum dominating heuristic": every vertex that is a local ID minimum
// among still-active neighbors marks itself and terminates; neighbors of
// marked vertices terminate unmarked; the rest iterate. The active set
// shrinks every round, so the vertex-averaged complexity stays small even
// when a few long dependency chains drive the worst case up.
package main

import (
	"fmt"
	"log"

	"vavg"
)

// markMsg announces that the sender marked itself.
type markMsg struct{}

// aliveMsg announces that the sender is still undecided.
type aliveMsg struct{}

func localMinDominators(api *vavg.API) any {
	active := map[int32]bool{}
	for _, w := range api.NeighborIDs() {
		active[w] = true
	}
	for {
		// Scan neighbors in ID order (NeighborIDs is sorted) rather than
		// ranging over the map: vertex decisions must never depend on
		// map-iteration order.
		isMin := true
		for _, w := range api.NeighborIDs() {
			if active[w] && int(w) < api.ID() {
				isMin = false
				break
			}
		}
		if isMin {
			return true // mark and terminate; Final carries the decision
		}
		api.Broadcast(aliveMsg{})
		for _, m := range api.Next() {
			switch m.Data.(type) {
			case vavg.Final:
				delete(active, m.From)
				if d, ok := m.Data.(vavg.Final); ok {
					if marked, ok := d.Output.(bool); ok && marked {
						return false // dominated
					}
				}
			}
		}
	}
}

func main() {
	g := vavg.ForestUnion(20000, 3, 7)
	res, err := vavg.Simulate(g, localMinDominators, vavg.Params{Arboricity: 3})
	if err != nil {
		log.Fatal(err)
	}
	rep := vavg.NewReport("local-min-dominators", g, vavg.Params{Arboricity: 3}, res)

	marked := 0
	for _, o := range res.Output {
		if o.(bool) {
			marked++
		}
	}
	fmt.Printf("graph: %s (n=%d)\n", g.Name, g.N())
	fmt.Printf("dominating-ish set size: %d\n", marked)
	fmt.Printf("vertex-averaged complexity: %.2f rounds\n", rep.VertexAvg)
	fmt.Printf("worst-case complexity:      %d rounds\n", rep.WorstCase)
	fmt.Printf("messages:                   %d\n", rep.Messages)
	fmt.Println("\nactive-vertex decay:")
	for i, a := range rep.ActivePerRound {
		if i >= 10 {
			fmt.Printf("  ... %d more rounds\n", len(rep.ActivePerRound)-i)
			break
		}
		fmt.Printf("  round %2d: %6d active\n", i+1, a)
	}
}
