// Pipeline: the paper's second motivation (Section 1.2). When a task
// consists of two subtasks A and B executed one after the other, each
// processor can start B the moment it finishes A instead of waiting for
// the global completion of A. If A's vertex-averaged complexity is
// o(worst case), the majority of processors finish the whole pipeline far
// earlier. This example runs the O(1) vertex-averaged coloring of Section
// 7.2 as task A and compares per-vertex pipeline completion under
// asynchronous start against a synchronized barrier.
package main

import (
	"fmt"
	"log"
	"sort"

	"vavg"
)

// taskBRounds is the (uniform) cost of subtask B per vertex.
const taskBRounds = 12

func main() {
	g := vavg.ForestUnion(30000, 3, 11)
	// Task A is the maximal independent set of Corollary 8.4 (think: elect
	// local coordinators, then run task B under them). Its vertex-averaged
	// complexity is half its worst case even at this size, and the gap
	// widens with n.
	alg, err := vavg.ByName("mis")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := alg.Run(g, vavg.Params{Arboricity: 3})
	if err != nil {
		log.Fatal(err)
	}

	// Reconstruct per-vertex completion of task A from the decay profile:
	// ActivePerRound[i] vertices were still running in round i+1, so the
	// number finishing in round r is Active[r-1]-Active[r].
	finishAt := rep.ActivePerRound
	var async []int // pipeline completion per vertex under async start
	for r := 1; r <= len(finishAt); r++ {
		now := finishAt[r-1]
		next := 0
		if r < len(finishAt) {
			next = finishAt[r]
		}
		for i := 0; i < now-next; i++ {
			async = append(async, r+taskBRounds)
		}
	}
	sort.Ints(async)
	barrier := rep.WorstCase + taskBRounds

	fmt.Printf("graph: %s (n=%d)\n", g.Name, g.N())
	fmt.Printf("task A: %s — vertex-avg %.2f rounds, worst-case %d rounds\n",
		alg.Name, rep.VertexAvg, rep.WorstCase)
	fmt.Printf("task B: fixed %d rounds per vertex\n\n", taskBRounds)

	fmt.Println("pipeline completion round (A then B):")
	fmt.Printf("  synchronized barrier start of B:  every vertex at round %d\n", barrier)
	for _, pct := range []int{50, 90, 99} {
		idx := len(async)*pct/100 - 1
		if idx < 0 {
			idx = 0
		}
		fmt.Printf("  asynchronous start, p%-2d vertex:   round %d\n", pct, async[idx])
	}
	fmt.Printf("  asynchronous start, last vertex:  round %d\n", async[len(async)-1])

	var sum int
	for _, r := range async {
		sum += r
	}
	fmt.Printf("\nmean pipeline completion: %.1f rounds asynchronous vs %d with barrier (%.1fx)\n",
		float64(sum)/float64(len(async)), barrier,
		float64(barrier)/(float64(sum)/float64(len(async))))
}
