// Energy: the paper's first motivation (Section 1.2). In a network fed by
// a common energy source, a processor consumes energy only while active;
// once it terminates it goes dark. The vertex-averaged complexity is then
// proportional to the network's total energy bill. This example compares
// the energy profile of the paper's forest decomposition (O(1)
// vertex-averaged) against the classical worst-case procedure on the same
// graph, including the distribution of per-vertex active time.
package main

import (
	"fmt"
	"log"
	"strings"

	"vavg"
)

// joulesPerRound is a nominal per-round energy cost of an active radio.
const joulesPerRound = 0.25

func main() {
	g := vavg.ForestUnion(50000, 4, 7)
	fmt.Printf("network: %s, n=%d, m=%d\n\n", g.Name, g.N(), g.M())

	for _, name := range []string{"forest-decomp", "forest-decomp-wc"} {
		alg, err := vavg.ByName(name)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := alg.Run(g, vavg.Params{Arboricity: 4})
		if err != nil {
			log.Fatal(err)
		}
		energy := float64(rep.RoundSum) * joulesPerRound
		fmt.Printf("%s (%s)\n", alg.Name, alg.Paper)
		fmt.Printf("  total energy:        %10.0f J  (%.2f J per node)\n",
			energy, energy/float64(g.N()))
		fmt.Printf("  completion (rounds): %10d\n", rep.WorstCase)

		// Active-node histogram: how many nodes are still burning energy
		// as rounds pass.
		fmt.Println("  active nodes over time:")
		for i, act := range rep.ActivePerRound {
			if i >= 12 {
				fmt.Printf("    ... (%d more rounds)\n", len(rep.ActivePerRound)-i)
				break
			}
			bar := strings.Repeat("#", int(float64(act)/float64(g.N())*50)+1)
			fmt.Printf("    round %2d: %7d %s\n", i+1, act, bar)
		}
		fmt.Println()
	}

	fmt.Println("Same worst-case completion time; the vertex-averaged algorithm lets")
	fmt.Println("almost the whole network power down after a constant number of rounds.")
}
