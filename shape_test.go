package vavg

import "testing"

// TestVertexAveragedShapes is the reproduction gate for the paper's
// headline claims: across an 8x growth in n, the vertex-averaged
// complexity of every "improved" algorithm must stay essentially flat
// (their bounds are O(1), O(loglog n) or O(log* n), none of which moves
// measurably in this range), while the worst-case baselines must grow by
// at least one round (their Theta(log n) behavior adds three doubling
// levels). A regression in any algorithm's round accounting or scheduling
// shows up here as a shape violation.
func TestVertexAveragedShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape sweep is not short")
	}
	const (
		nSmall = 1024
		nLarge = 8192
		a      = 3
	)
	run := func(name string, n int) float64 {
		t.Helper()
		alg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		g := ForestUnion(n, a, int64(n))
		rep, err := alg.Run(g, Params{Arboricity: a, MaxRounds: 1 << 21})
		if err != nil {
			t.Fatal(err)
		}
		return rep.VertexAvg
	}

	flat := []string{
		"partition", "forest-decomp", "arblinial-o1", "a2-loglog",
		"ka2", "deltaplus1-det", "mis", "edgecolor", "matching",
		"deltaplus1-rand", "aloglog-rand", "a-loglog", "ka", "one-plus-eta",
		"general-partition",
	}
	for _, name := range flat {
		small, large := run(name, nSmall), run(name, nLarge)
		// Allow 10% plus two rounds of slack for loglog/log* growth and
		// randomized noise.
		if large > small*1.10+2 {
			t.Errorf("%s: vertex average grew %.2f -> %.2f across 8x n (want flat shape)", name, small, large)
		}
	}

	growing := []string{"forest-decomp-wc", "arblinial-wc", "iterated-arblinial-wc", "arbcolor-wc", "mis-wc", "legal-coloring-wc"}
	for _, name := range growing {
		small, large := run(name, nSmall), run(name, nLarge)
		if large < small+1 {
			t.Errorf("%s: baseline did not grow (%.2f -> %.2f); expected Theta(log n) shape", name, small, large)
		}
	}
}
