package vavg

import (
	"strings"
	"testing"
)

// TestRegistryRunsEverythingOnCanonicalGraph is the package-level
// integration test: every registry algorithm runs and validates on a
// bounded-arboricity graph (ring algorithms on a ring).
func TestRegistryRunsEverythingOnCanonicalGraph(t *testing.T) {
	forest := ForestUnion(300, 3, 7)
	ring := Ring(64)
	for _, alg := range Algorithms() {
		g := forest
		p := Params{Arboricity: 3}
		if strings.Contains(alg.Name, "ring") || alg.Kind == KindReference {
			g = ring
			p = Params{Arboricity: 2, MaxRounds: 1 << 16}
		}
		rep, err := alg.Run(g, p)
		if err != nil {
			t.Errorf("%s: %v", alg.Name, err)
			continue
		}
		if rep.VertexAvg <= 0 || rep.WorstCase <= 0 {
			t.Errorf("%s: empty report %+v", alg.Name, rep)
		}
		if rep.VertexAvg > float64(rep.WorstCase) {
			t.Errorf("%s: vertex average %.2f exceeds worst case %d", alg.Name, rep.VertexAvg, rep.WorstCase)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("mis"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
}

func TestDefaultsApplied(t *testing.T) {
	g := TriangulatedGrid(8, 8) // certified arboricity 3
	alg, _ := ByName("forest-decomp")
	rep, err := alg.Run(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Arbor != 3 {
		t.Errorf("default arboricity = %d, want certified 3", rep.Arbor)
	}
}

func TestColorBudgetsReported(t *testing.T) {
	g := ForestUnion(200, 2, 3)
	for _, name := range []string{"arblinial-o1", "a2-loglog", "a-loglog", "deltaplus1-det", "aloglog-rand"} {
		alg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := alg.Run(g, Params{Arboricity: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Colors < 1 {
			t.Errorf("%s: colors not reported", name)
		}
	}
}

func TestSeedsChangeRandomizedRuns(t *testing.T) {
	g := Gnm(400, 1600, 3)
	alg, _ := ByName("deltaplus1-rand")
	r1, err := alg.Run(g, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := alg.Run(g, Params{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r1.RoundSum == r2.RoundSum && r1.Messages == r2.Messages {
		t.Error("different seeds produced identical executions (suspicious)")
	}
	r3, err := alg.Run(g, Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.RoundSum != r3.RoundSum {
		t.Error("same seed must reproduce the execution")
	}
}
