// Package vavg is a Go implementation of "Brief Announcement: Distributed
// Symmetry-Breaking with Improved Vertex-Averaged Complexity" (Barenboim &
// Tzur, SPAA 2018): distributed symmetry-breaking algorithms — vertex
// coloring, maximal independent set, edge coloring, maximal matching —
// whose vertex-averaged round complexity (the sum over all vertices of the
// rounds until each terminates, divided by n) is asymptotically below the
// best possible worst-case complexity.
//
// The package simulates the static synchronous message-passing (LOCAL)
// model with one goroutine per vertex and exact per-vertex termination
// accounting. Every algorithm from the paper is available through the
// Algorithms registry together with the classical worst-case baselines its
// tables compare against:
//
//	g := vavg.ForestUnion(10000, 3, 1)       // arboricity <= 3
//	alg, _ := vavg.ByName("mis")             // Corollary 8.4
//	rep, err := alg.Run(g, vavg.Params{Arboricity: 3})
//	fmt.Println(rep.VertexAvg, rep.WorstCase)
//
// See DESIGN.md for the full paper-to-module inventory and EXPERIMENTS.md
// for the reproduced tables.
package vavg

import (
	"fmt"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/forest"
	"vavg/internal/graph"
	"vavg/internal/hpartition"
	"vavg/internal/metrics"
	"vavg/internal/scenario"
)

// Scenario is an adversarial fault specification; see Params.Scenario and
// ParseScenario.
type Scenario = scenario.Spec

// Crash is one scheduled vertex crash inside a Scenario.
type Crash = scenario.Crash

// EdgeEvent is one scheduled dynamic-graph change inside a Scenario.
type EdgeEvent = scenario.EdgeEvent

// ParseScenario reads the compact CLI form of a fault scenario (or its
// JSON form when the string starts with '{'); see scenario.Parse.
func ParseScenario(s string) (*Scenario, error) { return scenario.Parse(s) }

// Graph is the immutable input graph; see the generator functions.
type Graph = graph.Graph

// Edge is an undirected edge with U < V.
type Edge = graph.Edge

// Report records the measurements of one run.
type Report = metrics.Run

// Kind classifies an algorithm's output for validation and reporting.
type Kind int

// Algorithm output kinds.
const (
	KindVertexColoring Kind = iota
	KindEdgeColoring
	KindMIS
	KindMatching
	KindForest
	KindPartition
	KindReference
)

// Params configures a run. The zero value selects sensible defaults:
// eps=2, k=2, C=4, the graph's certified arboricity bound, seed 1.
type Params struct {
	// Arboricity passed to the algorithms (the paper assumes it is known);
	// 0 means use the graph's certified bound, falling back to degeneracy.
	Arboricity int
	// Eps is the Procedure Partition slack in (0, 2]; 0 means 2.
	Eps float64
	// K is the segment count for the Section 7.5 scheme; 0 means 2.
	K int
	// C is the Section 7.8 recursion constant; 0 means 4.
	C int
	// Seed drives the deterministic per-vertex PRNGs; 0 means 1.
	Seed int64
	// MaxRounds guards against livelock; 0 means a generous default.
	MaxRounds int
	// SkipValidation disables output checking (benchmarks).
	SkipValidation bool
	// Backend selects the engine execution backend: "goroutines", "pool",
	// "step", or ""/"auto" to pick automatically (the goroutine-free step
	// backend whenever the algorithm has a step form, otherwise by graph
	// size). Backends are execution strategies only — equal seeds yield
	// identical results on all of them; see engine.Backends for the
	// registered names.
	Backend string
	// StepShards fixes the step backend's shard count regardless of
	// GOMAXPROCS (0 means one shard per core at run start). Results are
	// invariant in both the shard and the worker count; pinning the value
	// reproduces the same shard layout on any machine. Ignored by the
	// other backends.
	StepShards int
	// Relabel selects the engine's vertex-relabeling layout pass: "rcm"
	// runs the engine on a reverse Cuthill–McKee view of the graph for
	// cache locality (DESIGN.md §11), ""/"off"/"none" run the graph as
	// stored. The relabeling is purely physical — vertex IDs, PRNG
	// streams, inbox order, and adversary decisions all stay in
	// original-ID space, and Results are byte-identical to an unrelabeled
	// run. Views are memoized per graph in the shared cache.
	Relabel string
	// SweepWorkers bounds the sweep scheduler's concurrency: Sweep fans
	// its (size, seed) run points across this many goroutines. 0 means
	// runtime.GOMAXPROCS. Worker count never changes results — parallel
	// and serial sweeps are byte-identical by construction.
	SweepWorkers int
	// Scenario is the adversarial fault scenario for the run: seeded
	// message drops, crashes and restarts, dynamic edge schedules. Nil and
	// the zero Spec both select the fault-free path, byte-identical to a
	// scenario-free run. Scenario runs skip hard output validation and
	// report degradation measurements (residual conflicts, losses, DNF)
	// instead; see the Report fields. Scenarios thread through Sweep like
	// every other parameter.
	Scenario *scenario.Spec
}

// Backends lists the registered engine execution backends, in the order
// they can be named in Params.Backend.
func Backends() []string { return engine.Backends() }

func (p Params) withDefaults(g *Graph) Params {
	if p.Eps == 0 {
		p.Eps = 2
	}
	if p.K == 0 {
		p.K = 2
	}
	if p.C == 0 {
		p.C = 4
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Arboricity == 0 {
		p.Arboricity = g.ArborBound
		if p.Arboricity == 0 {
			p.Arboricity = graph.Degeneracy(g)
		}
	}
	if p.Arboricity < 1 {
		p.Arboricity = 1
	}
	if p.MaxRounds == 0 {
		p.MaxRounds = 1 << 21
	}
	return p
}

// Algorithm is a runnable entry of the registry.
type Algorithm struct {
	// Name is the registry key.
	Name string
	// Description summarizes the algorithm.
	Description string
	// Paper locates it in the paper ("§7.2", "Cor 8.4", "baseline", ...).
	Paper string
	// Kind classifies the output.
	Kind Kind
	// Deterministic reports whether the bounds are deterministic or hold
	// w.h.p.
	Deterministic bool
	// VertexAvgBound and ColorBound are the theoretical bounds as printed
	// in the paper's tables (for reports).
	VertexAvgBound string
	// ColorBound is the palette bound as a formula string, if a coloring.
	ColorBound string
	// Palette returns the concrete palette budget for validation, or 0 to
	// skip the budget audit.
	Palette func(n int, p Params) int
	// program builds the per-vertex program.
	program func(p Params) engine.Program
	// step builds the per-round state-machine form of the same program,
	// or is nil for algorithms not yet migrated. When present, runs
	// prefer the goroutine-free step backend; the two forms are
	// byte-identical by construction (the cross-backend equivalence suite
	// enforces it).
	step func(p Params) engine.StepProgram
}

// HasStep reports whether the algorithm has a step (state-machine) form
// and therefore runs goroutine-free on the step backend.
func (alg Algorithm) HasStep() bool { return alg.step != nil }

// Run executes the algorithm on g, validates the output (unless
// disabled), and reports the paper's measures.
func (alg Algorithm) Run(g *Graph, p Params) (Report, error) {
	p = p.withDefaults(g)
	if p.Scenario != nil && !p.Scenario.IsZero() {
		return alg.runScenario(g, p)
	}
	rg, err := relabelFor(g, p)
	if err != nil {
		return Report{}, fmt.Errorf("vavg: %s on %s: %w", alg.Name, g.Name, err)
	}
	spec := engine.Spec{Program: alg.program(p)}
	if alg.step != nil {
		spec.Step = alg.step(p)
	}
	// The engine runs on the (possibly relabeled) view; the audit and the
	// report below keep using g — Results are unmapped to original IDs.
	res, err := engine.RunSpec(rg, spec, engine.Options{Seed: p.Seed, MaxRounds: p.MaxRounds, Backend: p.Backend, StepShards: p.StepShards})
	if err != nil {
		return Report{}, fmt.Errorf("vavg: %s on %s: %w", alg.Name, g.Name, err)
	}
	rep := metrics.FromResult(alg.Name, g.Name, g.N(), g.M(), p.Arboricity, p.Seed, res)
	if err := alg.audit(g, p, res, &rep); err != nil && !p.SkipValidation {
		return rep, fmt.Errorf("vavg: %s on %s: %w", alg.Name, g.Name, err)
	}
	return rep, nil
}

// audit validates outputs by kind and fills the problem-specific report
// fields.
func (alg Algorithm) audit(g *Graph, p Params, res *engine.Result, rep *Report) error {
	switch alg.Kind {
	case KindVertexColoring:
		cols := make([]int, g.N())
		for v, o := range res.Output {
			c, ok := o.(int)
			if !ok {
				return fmt.Errorf("vertex %d output %T, want int", v, o)
			}
			cols[v] = c
		}
		rep.Colors = check.CountColors(cols)
		budget := 0
		if alg.Palette != nil {
			budget = alg.Palette(g.N(), p)
		}
		return check.VertexColoring(g, cols, budget)
	case KindEdgeColoring:
		colors, err := collectEdgeColors(g, res.Output)
		if err != nil {
			return err
		}
		distinct := map[int]bool{}
		for _, c := range colors {
			distinct[c] = true
		}
		rep.Colors = len(distinct)
		budget := 0
		if alg.Palette != nil {
			budget = alg.Palette(g.N(), p)
		}
		if budget == 0 {
			budget = 2*g.MaxDegree() - 1
		}
		return check.EdgeColoring(g, colors, budget)
	case KindMIS:
		in := make([]bool, g.N())
		size := 0
		for v, o := range res.Output {
			b, ok := o.(bool)
			if !ok {
				return fmt.Errorf("vertex %d output %T, want bool", v, o)
			}
			in[v] = b
			if b {
				size++
			}
		}
		rep.Size = size
		return check.MIS(g, in)
	case KindMatching:
		m := make([]int32, g.N())
		size := 0
		for v, o := range res.Output {
			w, ok := o.(int32)
			if !ok {
				return fmt.Errorf("vertex %d output %T, want int32", v, o)
			}
			m[v] = w
			if w >= 0 {
				size++
			}
		}
		rep.Size = size / 2
		return check.MaximalMatching(g, m)
	case KindForest:
		orient, labels, err := forest.Collect(g, res.Output)
		if err != nil {
			return err
		}
		maxLabel := 0
		for _, l := range labels {
			if l > maxLabel {
				maxLabel = l
			}
		}
		rep.Colors = maxLabel
		return check.ForestDecomposition(g, orient, labels, hpartition.ParamA(p.Arboricity, p.Eps))
	case KindPartition:
		h := make([]int, g.N())
		maxLater := hpartition.ParamA(p.Arboricity, p.Eps)
		for v, o := range res.Output {
			switch j := o.(type) {
			case hpartition.Join:
				h[v] = int(j.Index)
			case hpartition.GeneralJoin:
				h[v] = int(j.Index)
				if t := hpartition.GeneralThreshold(int(j.Phase), p.Eps); t > maxLater {
					maxLater = t
				}
			default:
				return fmt.Errorf("vertex %d output %T, want a Join", v, o)
			}
		}
		return check.HPartition(g, h, maxLater)
	default:
		return nil
	}
}
