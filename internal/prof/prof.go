// Package prof wires the standard pprof profilers into the command-line
// tools: a CPU profile that spans the run and a heap profile written at
// shutdown. Both are opt-in via flags and off by default.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins the profiles selected by the (possibly empty) file paths
// and returns a stop function that finalizes them. Stop is safe to call
// more than once — commands call it both on the normal exit path and from
// their fatal-error path — and only the first call does work. The CPU
// profile covers everything between Start and stop; the heap profile is a
// single snapshot taken at stop time, after a final GC so it reflects
// live memory rather than collectable garbage.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: create cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: start cpu profile: %w", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintf(os.Stderr, "prof: create mem profile: %v\n", err)
					return
				}
				defer f.Close()
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintf(os.Stderr, "prof: write mem profile: %v\n", err)
				}
			}
		})
	}, nil
}
