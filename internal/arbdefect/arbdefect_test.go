package arbdefect

import (
	"testing"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
)

func TestOnePlusEtaProper(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		a int
	}{
		{graph.Ring(60), 2},
		{graph.Star(64), 1},
		{graph.ForestUnion(300, 3, 5), 3},
		{graph.TriangulatedGrid(9, 9), 3},
		{graph.Clique(12), 6},
		{graph.ForestUnion(200, 6, 11), 6},
	}
	for _, c := range cases {
		for _, C := range []int{3, 5} {
			res, err := engine.Run(c.g, OnePlusEta(c.a, 2, C), engine.Options{Seed: 1, MaxRounds: 1 << 20})
			if err != nil {
				t.Fatalf("%s C=%d: %v", c.g.Name, C, err)
			}
			cols := make([]int, c.g.N())
			for v, o := range res.Output {
				cols[v] = o.(int)
			}
			prm := Params{A: c.a, Eps: 2, C: C}
			if err := check.VertexColoring(c.g, cols, Palette(c.g.N(), prm)); err != nil {
				t.Errorf("%s C=%d: %v", c.g.Name, C, err)
			}
		}
	}
}

func TestPaletteIndependentOfN(t *testing.T) {
	prm := Params{A: 4, Eps: 2, C: 4}
	p1 := Palette(1000, prm)
	p2 := Palette(1<<20, prm)
	if p2 > 2*p1 {
		t.Errorf("palette grows with n: %d -> %d", p1, p2)
	}
}

func TestLevelsShrink(t *testing.T) {
	prm := Params{A: 64, Eps: 2, C: 4}
	k := prm.classK()
	if k < 5*4 {
		t.Errorf("classK = %d, want (3+eps)*C = 20", k)
	}
	if l := prm.levels(256); l < 1 || l > 3 {
		t.Errorf("levels(256) = %d, want small", l)
	}
	if l := prm.levels(3); l != 0 {
		t.Errorf("levels(3) = %d, want 0 when already below C", l)
	}
}

func TestOnePlusEtaVertexAverageLogLogShape(t *testing.T) {
	// The vertex-averaged complexity must grow far slower than log n.
	var avgs []float64
	for _, n := range []int{512, 4096, 32768} {
		g := graph.ForestUnion(n, 2, 13)
		res, err := engine.Run(g, OnePlusEta(2, 2, 4), engine.Options{Seed: 1, MaxRounds: 1 << 21})
		if err != nil {
			t.Fatal(err)
		}
		avgs = append(avgs, res.VertexAverage())
	}
	// Across a 64x growth in n, loglog grows by ~30%; allow 2x.
	if avgs[2] > 2*avgs[0] {
		t.Errorf("vertex average not loglog-shaped: %v", avgs)
	}
}

func TestLegalColoringWCProperAndWorstCase(t *testing.T) {
	g := graph.ForestUnion(400, 3, 9)
	prm := Params{A: 3, Eps: 2, C: 4}
	res, err := engine.Run(g, LegalColoringWC(3, 2, 4), engine.Options{Seed: 1, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cols := make([]int, g.N())
	for v, o := range res.Output {
		cols[v] = o.(int)
	}
	if err := check.VertexColoring(g, cols, LegalColoringWCPalette(g.N(), prm)); err != nil {
		t.Error(err)
	}
	// Worst-case structure: no vertex finishes before the full partition.
	fast, err := engine.Run(g, OnePlusEta(3, 2, 4), engine.Options{Seed: 1, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if fast.VertexAverage() >= res.VertexAverage() {
		t.Errorf("OnePlusEta (%.1f) should beat LegalColoringWC (%.1f) on vertex average",
			fast.VertexAverage(), res.VertexAverage())
	}
}
