// Package arbdefect implements Section 7.8: Procedure One-Plus-Eta-Arb-Col,
// an O(a^{1+eta})-vertex-coloring whose vertex-averaged complexity grows
// only like log log n in the graph size, against the Omega(log n / ...)
// worst-case lower bound for comparable palettes.
//
// Structure (following the paper, with the substitutions of DESIGN.md):
//
//   - Phase H: run r = ceil(2 loglog n) rounds of Procedure Partition; the
//     vertices that joined form H (all but O(n/log^2 n) of the graph), the
//     rest form the residual R.
//   - Each of H and R is processed by the same coloring stage: every H-set
//     is (A+1)-colored (Delta+1 on the set), edges are oriented toward the
//     later H-set or the higher set color — an acyclic orientation with
//     out-degree at most A and length O(A * #sets) — and then
//     H-Arbdefective-Coloring levels run along that orientation: at each
//     level a vertex waits for its same-class parents and picks the class
//     in {0..k-1} they use least, so its same-class out-degree drops to
//     floor(b/k). After ceil(log_k(A/C)) levels every class subgraph has
//     arboricity below the constant C, and iterated Linial along the
//     inherited orientation finishes with an O(C^2) palette per class.
//   - Palette blocks: classes get disjoint blocks (the paper's color-string
//     prefixes), and R's block follows H's, for a total of
//     O((3+eps)^{log_C a} * a * C^2) = O(a^{1+eta}) colors with
//     eta = O(1/log C).
//
// The paper invokes [5]'s Procedure Legal-Coloring for R and a defective
// coloring inside Procedure Partial-Orientation; both are replaced by the
// machinery above, which preserves the loglog-in-n vertex-averaged shape
// and the n-independent palette (DESIGN.md, substitution 2).
package arbdefect

import (
	"math"
	"sort"

	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/hpartition"
)

// Params collects the knobs of One-Plus-Eta-Arb-Col.
type Params struct {
	// A is the arboricity bound passed to Procedure Partition.
	A int
	// Eps is the partition slack, in (0,2].
	Eps float64
	// C is the paper's "sufficiently large constant": recursion stops when
	// the class arboricity bound drops below C. Larger C means fewer
	// colors per level but a larger leaf palette.
	C int
}

// classK returns k = (3+eps)*C, the number of classes per level.
func (p Params) classK() int { return int(math.Ceil((3 + p.Eps) * float64(p.C))) }

// levels returns how many arbdefective levels run before the class bound
// drops below C, starting from out-degree bound b0.
func (p Params) levels(b0 int) int {
	k, l := p.classK(), 0
	for b := b0; b >= p.C; b = b / k {
		l++
	}
	return l
}

// classMsg announces a vertex's class choice at one arbdefective level.
type classMsg struct {
	Level  int32
	Path   int64 // class path before this level's choice
	Choice int32
}

// stage colors one partition stage (the sets with H-index in (lo, hi]).
// syncStart is the global round at which the per-set Delta+1 colorings
// begin (all stage members are settled by then); base is the first color
// of the stage's palette block. Returns the final color.
func stage(api *engine.API, tr *hpartition.Tracker, prm Params, lo, hi int32, syncStart, base int) int {
	n := api.N()
	A := hpartition.ParamA(prm.A, prm.Eps)
	sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }
	idleUntil(api, tr, syncStart)

	// Per-set (A+1)-coloring, all sets of the stage in parallel.
	i := tr.HIndex
	var members []int
	for k, h := range tr.NbrH {
		if h == i {
			members = append(members, k)
		}
	}
	setColor := coloring.DeltaPlus1OnSet(api, members, A, sink)
	nbrSet := map[int]int{}
	coloring.BroadcastChosen(api, stageKind, int32(setColor))
	for _, m := range api.Next() {
		if c, ok := coloring.AsChosen(m, stageKind); ok {
			nbrSet[api.NeighborIndex(m.From)] = int(c)
			continue
		}
		sink([]engine.Msg{m})
	}

	// Orientation: toward the later H-set, or the higher set color.
	var parents []int
	for k, h := range tr.NbrH {
		if h <= lo || h > hi {
			continue
		}
		if h > i || (h == i && nbrSet[k] > setColor) {
			parents = append(parents, k)
		}
	}
	stageMember := map[int]bool{}
	for k, h := range tr.NbrH {
		if h > lo && h <= hi {
			stageMember[k] = true
		}
	}

	// Arbdefective levels along the orientation.
	k := prm.classK()
	numLevels := prm.levels(A)
	segLen := int(hi - lo)
	waveBudget := numLevels*((A+1)*segLen+3) + 2
	waveEnd := api.Round() + waveBudget

	path := int64(0)
	// choices[k][l] is neighbor k's class choice at level l; paths[k][l]
	// the path it announced alongside.
	choices := make(map[int][]int32, len(stageMember))
	paths := make(map[int][]int64, len(stageMember))
	recv := func(msgs []engine.Msg) {
		for _, m := range msgs {
			cm, ok := m.Data.(classMsg)
			if !ok {
				sink([]engine.Msg{m})
				continue
			}
			kk := api.NeighborIndex(m.From)
			for int(cm.Level) >= len(choices[kk]) {
				choices[kk] = append(choices[kk], -1)
				paths[kk] = append(paths[kk], -1)
			}
			choices[kk][cm.Level] = cm.Choice
			paths[kk][cm.Level] = cm.Path
		}
	}
	for level := 0; level < numLevels; level++ {
		// Wait until every parent still sharing our path has chosen.
		for {
			ready := true
			for _, kk := range parents {
				if len(choices[kk]) <= level || choices[kk][level] < 0 {
					ready = false
					break
				}
			}
			if ready {
				break
			}
			recv(api.Next())
		}
		counts := make([]int, k)
		for _, kk := range parents {
			if paths[kk][level] == path {
				counts[choices[kk][level]]++
			}
		}
		best := 0
		for c := 1; c < k; c++ {
			if counts[c] < counts[best] {
				best = c
			}
		}
		api.Broadcast(classMsg{Level: int32(level), Path: path, Choice: int32(best)})
		recv(api.Next())
		// Keep only parents that end up in our class (same path+choice).
		var keep []int
		for _, kk := range parents {
			if paths[kk][level] == path && choices[kk][level] == int32(best) {
				keep = append(keep, kk)
			}
		}
		// Our own announcement was just made; parents who chose later in
		// wall time still count — they announced before us by wave order,
		// so choices are complete here.
		parents = keep
		path = path*int64(k) + int64(best)
	}

	// Leaf: iterated Linial among the class, along the inherited
	// orientation (out-degree < C), starting at a globally agreed round.
	for api.Round() < waveEnd {
		recv(api.Next())
	}
	// Sorted members: leafMembers parameterizes the iterated-Linial
	// coloring below, so its order must not inherit map-iteration order.
	ordered := make([]int, 0, len(stageMember))
	for kk := range stageMember {
		ordered = append(ordered, kk)
	}
	sort.Ints(ordered)
	var leafMembers []int
	for _, kk := range ordered {
		same := true
		for l := 0; l < numLevels; l++ {
			if len(paths[kk]) <= l || paths[kk][l]*int64(k)+int64(choices[kk][l]) !=
				pathPrefix(path, k, numLevels, l+1) {
				same = false
				break
			}
		}
		if same {
			leafMembers = append(leafMembers, kk)
		}
	}
	leafParents := parents
	c := coloring.IteratedLinial(api, leafMembers, leafParents, prm.C, sink)
	P := coloring.LinialFinalPalette(n, prm.C)
	return base + int(path)*P + c
}

// pathPrefix returns the first `depth` choices of path (which has
// numLevels choices in base k), re-encoded as a path value.
func pathPrefix(path int64, k, numLevels, depth int) int64 {
	for i := depth; i < numLevels; i++ {
		path /= int64(k)
	}
	return path
}

const stageKind = 5

func idleUntil(api *engine.API, tr *hpartition.Tracker, round int) {
	for api.Round() < round {
		tr.Absorb(api, api.Next())
	}
}

// StageBlock returns the palette block size of one stage: k^levels leaf
// classes times the O(C^2) leaf palette.
func StageBlock(n int, prm Params) int {
	k := prm.classK()
	A := hpartition.ParamA(prm.A, prm.Eps)
	block := coloring.LinialFinalPalette(n, prm.C)
	for l := 0; l < prm.levels(A); l++ {
		block *= k
	}
	return block
}

// Palette returns the total color budget of OnePlusEta: two stage blocks.
func Palette(n int, prm Params) int { return 2 * StageBlock(n, prm) }

// OnePlusEta is Procedure One-Plus-Eta-Arb-Col (Theorem 7.21): an
// O(a^{1+eta})-coloring with loglog-in-n vertex-averaged complexity.
func OnePlusEta(a int, eps float64, C int) engine.Program {
	return func(api *engine.API) any {
		n := api.N()
		prm := Params{A: a, Eps: eps, C: C}
		A := hpartition.ParamA(a, eps)
		tr := hpartition.NewTracker(api, a, eps)
		r := int(math.Ceil(2 * math.Log2(math.Max(2, math.Log2(float64(max(n, 4)))))))
		ell := hpartition.EllBound(n, eps)
		if r > ell {
			r = ell
		}
		dp1 := coloring.DeltaPlus1Rounds(n, A)
		numLevels := prm.levels(A)
		block := StageBlock(n, prm)

		// Stage schedules (identical at every vertex).
		hSync := r + 2
		hEnd := hSync + dp1 + 1 + numLevels*((A+1)*r+3) + 2 +
			coloring.IteratedLinialRounds(n, prm.C) + 2
		rSync := maxInt(ell+2, hEnd)

		for int32(api.Round()) < int32(r) && tr.HIndex == 0 {
			tr.Step(api)
		}
		if tr.HIndex != 0 {
			for api.Round() < r {
				tr.Absorb(api, api.Next())
			}
			tr.Absorb(api, api.Next()) // settle
			return stage(api, tr, prm, 0, int32(r), hSync, 0)
		}
		// Residual: finish the partition, then run the same stage.
		for tr.HIndex == 0 {
			tr.Step(api)
		}
		for api.Round() < ell {
			tr.Absorb(api, api.Next())
		}
		tr.Absorb(api, api.Next()) // settle
		return stage(api, tr, prm, int32(r), int32(ell), rSync, block)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LegalColoringWC is the worst-case counterpart of OnePlusEta: Procedure
// Legal-Coloring of [5] (Algorithm 3 in the paper), run on the whole graph
// after a full worst-case H-partition. It uses the same arbdefective
// recursion and leaf palette as OnePlusEta — O(a^{1+eta}) colors — but
// every vertex first waits out the complete Theta(log n) partition, so
// its vertex-averaged complexity equals its worst case. It is the
// baseline the Section 7.8 row improves on.
func LegalColoringWC(a int, eps float64, C int) engine.Program {
	return func(api *engine.API) any {
		n := api.N()
		prm := Params{A: a, Eps: eps, C: C}
		ell := hpartition.EllBound(n, eps)
		tr := hpartition.NewTracker(api, a, eps)
		for tr.HIndex == 0 {
			tr.Step(api)
		}
		for api.Round() < ell {
			tr.Absorb(api, api.Next())
		}
		tr.Absorb(api, api.Next()) // settle
		return stage(api, tr, prm, 0, int32(ell), ell+2, 0)
	}
}

// LegalColoringWCPalette returns the color budget of LegalColoringWC: one
// stage block.
func LegalColoringWCPalette(n int, prm Params) int { return StageBlock(n, prm) }
