package arbdefect

import (
	"math"
	"sort"

	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/hpartition"
)

// Step (state-machine) forms of OnePlusEta and LegalColoringWC. Each
// mirrors its blocking counterpart round for round — the cross-backend
// equivalence suite pins the two forms byte-identical — so the Section
// 7.8 pair runs goroutine-free on the step backend.

// sleepTo parks the vertex until the turn of global round target,
// absorbing the accumulated inbox into the partition tracker on wake.
func sleepTo(api *engine.API, tr *hpartition.Tracker, target int, next func(api *engine.API) engine.Step) engine.Step {
	k := target - api.Round()
	if k < 1 {
		k = 1
	}
	return engine.Sleep(k, func(api *engine.API, inbox []engine.Msg) engine.Step {
		tr.Absorb(api, inbox)
		return next(api)
	})
}

// startStage is the step form of stage. The caller invokes it in the turn
// of global round syncStart with the inbox already absorbed; done fires
// with the final color in the turn the blocking stage returns in.
func startStage(api *engine.API, tr *hpartition.Tracker, prm Params, lo, hi int32, base int, done func(int) engine.Step) engine.Step {
	n := api.N()
	A := hpartition.ParamA(prm.A, prm.Eps)
	sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }

	i := tr.HIndex
	var members []int
	for k, h := range tr.NbrH {
		if h == i {
			members = append(members, k)
		}
	}

	var setColor int
	nbrSet := map[int]int{}
	var parents []int
	stageMember := map[int]bool{}
	kcl := prm.classK()
	numLevels := prm.levels(A)
	segLen := int(hi - lo)
	waveBudget := numLevels*((A+1)*segLen+3) + 2
	var waveEnd int
	path := int64(0)
	level := 0
	var lastBest int32
	choices := make(map[int][]int32)
	paths := make(map[int][]int64)
	recv := func(msgs []engine.Msg) {
		for _, m := range msgs {
			cm, ok := m.Data.(classMsg)
			if !ok {
				sink([]engine.Msg{m})
				continue
			}
			kk := api.NeighborIndex(m.From)
			for int(cm.Level) >= len(choices[kk]) {
				choices[kk] = append(choices[kk], -1)
				paths[kk] = append(paths[kk], -1)
			}
			choices[kk][cm.Level] = cm.Choice
			paths[kk][cm.Level] = cm.Path
		}
	}

	// Leaf: iterated Linial among the class, along the inherited
	// orientation, starting at the globally agreed round waveEnd.
	leaf := func(api *engine.API) engine.Step {
		ordered := make([]int, 0, len(stageMember))
		for kk := range stageMember {
			ordered = append(ordered, kk)
		}
		sort.Ints(ordered)
		var leafMembers []int
		for _, kk := range ordered {
			same := true
			for l := 0; l < numLevels; l++ {
				if len(paths[kk]) <= l || paths[kk][l]*int64(kcl)+int64(choices[kk][l]) !=
					pathPrefix(path, kcl, numLevels, l+1) {
					same = false
					break
				}
			}
			if same {
				leafMembers = append(leafMembers, kk)
			}
		}
		leafParents := parents
		P := coloring.LinialFinalPalette(n, prm.C)
		return coloring.StartIteratedLinial(api, leafMembers, leafParents, prm.C, sink, func(c int) engine.Step {
			return done(base + int(path)*P + c)
		})
	}
	waveWake := func(api *engine.API, inbox []engine.Msg) engine.Step {
		recv(inbox)
		return leaf(api)
	}
	finishLevels := func(api *engine.API) engine.Step {
		if api.Round() < waveEnd {
			return engine.Sleep(waveEnd-api.Round(), waveWake)
		}
		return leaf(api)
	}

	// Arbdefective levels along the orientation.
	var waitReady, afterChoice engine.StepFn
	var checkReady func(api *engine.API) engine.Step
	checkReady = func(api *engine.API) engine.Step {
		for _, kk := range parents {
			if len(choices[kk]) <= level || choices[kk][level] < 0 {
				return engine.Continue(waitReady)
			}
		}
		counts := make([]int, kcl)
		for _, kk := range parents {
			if paths[kk][level] == path {
				counts[choices[kk][level]]++
			}
		}
		best := 0
		for c := 1; c < kcl; c++ {
			if counts[c] < counts[best] {
				best = c
			}
		}
		api.Broadcast(classMsg{Level: int32(level), Path: path, Choice: int32(best)})
		lastBest = int32(best)
		return engine.Continue(afterChoice)
	}
	waitReady = func(api *engine.API, inbox []engine.Msg) engine.Step {
		recv(inbox)
		return checkReady(api)
	}
	afterChoice = func(api *engine.API, inbox []engine.Msg) engine.Step {
		recv(inbox)
		var keep []int
		for _, kk := range parents {
			if paths[kk][level] == path && choices[kk][level] == lastBest {
				keep = append(keep, kk)
			}
		}
		parents = keep
		path = path*int64(kcl) + int64(lastBest)
		level++
		if level < numLevels {
			return checkReady(api)
		}
		return finishLevels(api)
	}

	exch := func(api *engine.API, inbox []engine.Msg) engine.Step {
		for _, m := range inbox {
			if c, ok := coloring.AsChosen(m, stageKind); ok {
				nbrSet[api.NeighborIndex(m.From)] = int(c)
				continue
			}
			sink([]engine.Msg{m})
		}
		// Orientation: toward the later H-set, or the higher set color.
		for k, h := range tr.NbrH {
			if h <= lo || h > hi {
				continue
			}
			if h > i || (h == i && nbrSet[k] > setColor) {
				parents = append(parents, k)
			}
		}
		for k, h := range tr.NbrH {
			if h > lo && h <= hi {
				stageMember[k] = true
			}
		}
		waveEnd = api.Round() + waveBudget
		if level < numLevels {
			return checkReady(api)
		}
		return finishLevels(api)
	}

	// Per-set (A+1)-coloring, all sets of the stage in parallel.
	return coloring.StartDeltaPlus1OnSet(api, members, A, sink, func(c int) engine.Step {
		setColor = c
		coloring.BroadcastChosen(api, stageKind, int32(setColor))
		return engine.Continue(exch)
	})
}

// OnePlusEtaStep is the step form of OnePlusEta.
func OnePlusEtaStep(a int, eps float64, C int) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		n := api.N()
		prm := Params{A: a, Eps: eps, C: C}
		A := hpartition.ParamA(a, eps)
		tr := hpartition.NewTracker(api, a, eps)
		r := int(math.Ceil(2 * math.Log2(math.Max(2, math.Log2(float64(max(n, 4)))))))
		ell := hpartition.EllBound(n, eps)
		if r > ell {
			r = ell
		}
		dp1 := coloring.DeltaPlus1Rounds(n, A)
		numLevels := prm.levels(A)
		block := StageBlock(n, prm)

		hSync := r + 2
		hEnd := hSync + dp1 + 1 + numLevels*((A+1)*r+3) + 2 +
			coloring.IteratedLinialRounds(n, prm.C) + 2
		rSync := maxInt(ell+2, hEnd)

		stageH := func(api *engine.API) engine.Step {
			return startStage(api, tr, prm, 0, int32(r), 0, func(c int) engine.Step {
				return engine.Done(c)
			})
		}
		stageR := func(api *engine.API) engine.Step {
			return startStage(api, tr, prm, int32(r), int32(ell), block, func(c int) engine.Step {
				return engine.Done(c)
			})
		}
		var partH, partR engine.StepFn
		partR = func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			if tr.HIndex != 0 {
				return sleepTo(api, tr, rSync, stageR)
			}
			tr.Advance(api)
			return engine.Continue(partR)
		}
		decide := func(api *engine.API) engine.Step {
			if tr.HIndex != 0 {
				return sleepTo(api, tr, hSync, stageH)
			}
			if api.Round() < r {
				tr.Advance(api)
				return engine.Continue(partH)
			}
			// Residual: finish the partition, then run the same stage.
			tr.Advance(api)
			return engine.Continue(partR)
		}
		partH = func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			return decide(api)
		}
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return decide(api)
		}
	}
}

// LegalColoringWCStep is the step form of LegalColoringWC.
func LegalColoringWCStep(a int, eps float64, C int) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		n := api.N()
		prm := Params{A: a, Eps: eps, C: C}
		ell := hpartition.EllBound(n, eps)
		tr := hpartition.NewTracker(api, a, eps)
		stage := func(api *engine.API) engine.Step {
			return startStage(api, tr, prm, 0, int32(ell), 0, func(c int) engine.Step {
				return engine.Done(c)
			})
		}
		var part engine.StepFn
		part = func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			if tr.HIndex != 0 {
				return sleepTo(api, tr, ell+2, stage)
			}
			tr.Advance(api)
			return engine.Continue(part)
		}
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			tr.Advance(api)
			return engine.Continue(part)
		}
	}
}
