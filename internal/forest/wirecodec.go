package forest

import (
	"fmt"

	"vavg/internal/wire"
)

// maxWireLabels bounds decoded label counts against corrupt input; no
// vertex labels more edges than it has neighbors, and 2^24 exceeds any
// degree the engine's int32 vertex space can produce per adjacency list
// in practice.
const maxWireLabels = 1 << 24

// Output carries a map, which has no canonical byte order of its own, so
// cluster mode needs an explicit codec: ascending-key delta coding makes
// equal Outputs byte-identical on every replica, which is what keeps
// cross-process Results comparable. Registering it is also what licenses
// Output to enter the any message lane under the payloadwire analyzer.
func init() {
	wire.Register(wire.Codec[Output]{
		Name: "forest.Output",
		Encode: func(buf []byte, o Output) []byte {
			buf = wire.AppendUvarint(buf, uint64(uint32(o.H)))
			return wire.AppendSortedInt32Map(buf, o.Labels)
		},
		Decode: func(buf []byte) (Output, int, error) {
			h, n := wire.Uvarint(buf)
			if n <= 0 {
				return Output{}, 0, fmt.Errorf("forest: output H truncated")
			}
			if h > uint64(^uint32(0)>>1) {
				return Output{}, 0, fmt.Errorf("forest: output H %d overflows int32", h)
			}
			labels, ln, err := wire.DecodeSortedInt32Map(buf[n:], maxWireLabels)
			if err != nil {
				return Output{}, 0, err
			}
			return Output{H: int32(h), Labels: labels}, n + ln, nil
		},
	})
}
