// Package forest implements Procedure Parallelized-Forest-Decomposition
// (Section 7.1): an O(a)-forests-decomposition of the input graph's edges
// with O(1) vertex-averaged complexity, against a worst case of
// Theta(log n) for the classical Procedure Forest-Decomposition it
// parallelizes.
//
// The procedure drives Procedure Partition; immediately upon formation of
// H-set H_i, each joining vertex orients its incident edges (toward the
// endpoint in the higher-indexed H-set, or toward the higher ID within the
// same set) and labels its outgoing edges with distinct labels from
// {1,...,outdeg} <= {1,...,A}. Each label class is a forest because every
// vertex has at most one outgoing edge per label and the orientation is
// acyclic.
package forest

import (
	"fmt"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
	"vavg/internal/hpartition"
)

// Output is the per-vertex result of the decomposition.
type Output struct {
	// H is the vertex's H-set index (1-based).
	H int32
	// Labels maps each out-neighbor's vertex ID to the forest label
	// (1-based) this vertex assigned to the connecting edge.
	Labels map[int32]int32
}

// Decomp is the per-vertex composable state: a partition Tracker plus the
// orientation and labels computed at settle time. Composed algorithms
// embed it and call JoinAndSettle (or drive StepJoin/Settle themselves).
type Decomp struct {
	Tr *hpartition.Tracker
	// OutIdx lists neighbor indices of outgoing edges (the "parents" of
	// this vertex under the orientation), ascending.
	OutIdx []int
	// OutLabels[j] is the label of the j-th outgoing edge (j+1 by
	// construction, kept explicit for clarity).
	OutLabels []int32
}

// NewDecomp initializes decomposition state.
func NewDecomp(api *engine.API, a int, eps float64) *Decomp {
	return &Decomp{Tr: hpartition.NewTracker(api, a, eps)}
}

// StepJoin runs one partition round; see hpartition.Tracker.Step.
func (d *Decomp) StepJoin(api *engine.API) (joined bool, msgs []engine.Msg) {
	return d.Tr.Step(api)
}

// Settle runs the settle round that follows joining: it absorbs the
// same-round Join announcements and computes this vertex's outgoing edges
// and labels. Must be called exactly once, in the round right after the
// vertex joined. Returns the settle-round messages for further processing.
func (d *Decomp) Settle(api *engine.API) []engine.Msg {
	msgs := api.Next()
	d.Tr.Absorb(api, msgs)
	d.computeOrientation(api)
	return msgs
}

// computeOrientation classifies each incident edge. Outgoing edges point
// to neighbors in later H-sets (or still active, hence joining later), or
// to same-set neighbors with higher ID.
func (d *Decomp) computeOrientation(api *engine.API) {
	my := d.Tr.HIndex
	ids := api.NeighborIDs()
	for k, h := range d.Tr.NbrH {
		out := false
		switch {
		case h <= 0: // still active (joins later) or terminated foreign
			out = h == 0
		case h > my:
			out = true
		case h == my:
			out = int(ids[k]) > api.ID()
		}
		if out {
			d.OutIdx = append(d.OutIdx, k)
			d.OutLabels = append(d.OutLabels, int32(len(d.OutIdx)))
		}
	}
}

// Out reports whether the k-th incident edge is outgoing, and its label.
func (d *Decomp) Out(k int) (label int32, ok bool) {
	for j, idx := range d.OutIdx {
		if idx == k {
			return d.OutLabels[j], true
		}
	}
	return 0, false
}

// Parents returns the vertex IDs of out-neighbors.
func (d *Decomp) Parents(api *engine.API) []int32 {
	ids := api.NeighborIDs()
	ps := make([]int32, len(d.OutIdx))
	for j, k := range d.OutIdx {
		ps[j] = ids[k]
	}
	return ps
}

// JoinAndSettle runs partition rounds until the vertex joins, then the
// settle round. It returns the number of partition rounds used.
func (d *Decomp) JoinAndSettle(api *engine.API) int {
	for {
		joined, _ := d.StepJoin(api)
		if joined {
			break
		}
	}
	d.Settle(api)
	return d.Tr.RoundsDone()
}

// Output assembles the per-vertex Output of the decomposition.
func (d *Decomp) Output(api *engine.API) Output {
	ids := api.NeighborIDs()
	labels := make(map[int32]int32, len(d.OutIdx))
	for j, k := range d.OutIdx {
		labels[ids[k]] = d.OutLabels[j]
	}
	return Output{H: d.Tr.HIndex, Labels: labels}
}

// Program is standalone Procedure Parallelized-Forest-Decomposition: each
// vertex joins an H-set, settles, and terminates with its Output; its
// final broadcast carries the labels to the edge heads. A vertex joining
// in partition round i terminates in round i+2, so the vertex-averaged
// complexity is O(1) (Theorem 7.1).
func Program(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		d := NewDecomp(api, a, eps)
		d.JoinAndSettle(api)
		return d.Output(api)
	}
}

// Collect reconstructs the global orientation and labeling from the
// per-vertex outputs of a Program run, for validation: every edge is
// oriented away from the vertex that labeled it.
func Collect(g *graph.Graph, outputs []any) (check.Orientation, map[graph.Edge]int, error) {
	orient := make(check.Orientation, g.M())
	labels := make(map[graph.Edge]int, g.M())
	for v := 0; v < g.N(); v++ {
		out, ok := outputs[v].(Output)
		if !ok {
			return nil, nil, fmt.Errorf("forest: vertex %d output %T, want Output", v, outputs[v])
		}
		//lint:ignore detorder any violating edge is a valid error witness; the success path writes one map entry per edge
		for head, label := range out.Labels {
			if !g.HasEdge(v, int(head)) {
				return nil, nil, fmt.Errorf("forest: vertex %d labeled non-edge to %d", v, head)
			}
			e := graph.Edge{U: int32(v), V: head}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			if _, dup := orient[e]; dup {
				return nil, nil, fmt.Errorf("forest: edge {%d,%d} oriented twice", e.U, e.V)
			}
			orient[e] = head
			labels[e] = int(label)
		}
	}
	return orient, labels, nil
}

// HIndexes extracts the per-vertex H-indices from a Program run.
func HIndexes(outputs []any) []int {
	h := make([]int, len(outputs))
	for v, o := range outputs {
		h[v] = int(o.(Output).H)
	}
	return h
}
