package forest

import (
	"testing"
	"testing/quick"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
	"vavg/internal/hpartition"
)

func runFD(t *testing.T, g *graph.Graph, a int, eps float64) (*engine.Result, check.Orientation, map[graph.Edge]int) {
	t.Helper()
	res, err := engine.Run(g, Program(a, eps), engine.Options{Seed: 1})
	if err != nil {
		t.Fatalf("forest decomposition on %s: %v", g.Name, err)
	}
	orient, labels, err := Collect(g, res.Output)
	if err != nil {
		t.Fatalf("collect on %s: %v", g.Name, err)
	}
	return res, orient, labels
}

func TestDecompositionValidOnFamilies(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		a int
	}{
		{graph.Ring(64), 2},
		{graph.Star(80), 1},
		{graph.ForestUnion(400, 3, 9), 3},
		{graph.TriangulatedGrid(10, 10), 3},
		{graph.Clique(16), 8},
		{graph.CompleteBinaryTree(127), 1},
	}
	for _, c := range cases {
		res, orient, labels := runFD(t, c.g, c.a, 2)
		A := hpartition.ParamA(c.a, 2)
		if err := check.ForestDecomposition(c.g, orient, labels, A); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
		outDeg, _, err := check.AcyclicOrientation(c.g, orient, A, 0)
		if err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
		if outDeg > A {
			t.Errorf("%s: out-degree %d exceeds A=%d", c.g.Name, outDeg, A)
		}
		// Every vertex terminates two rounds after joining.
		h := HIndexes(res.Output)
		if err := check.HPartition(c.g, h, A); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
		for v := 0; v < c.g.N(); v++ {
			if int(res.Rounds[v]) != h[v]+2 {
				t.Errorf("%s: vertex %d rounds = %d, want join(%d)+2", c.g.Name, v, res.Rounds[v], h[v])
			}
		}
	}
}

func TestVertexAveragedConstant(t *testing.T) {
	// Theorem 7.1: O(1) vertex-averaged complexity. With eps=2 the partition
	// contributes <= 2 on average plus 2 settle/final rounds.
	for _, n := range []int{500, 2000, 8000} {
		g := graph.ForestUnion(n, 2, 31)
		res, _, _ := runFD(t, g, 2, 2)
		if avg := res.VertexAverage(); avg > 4.5 {
			t.Errorf("n=%d: vertex-averaged %.2f, want <= 4.5", n, avg)
		}
	}
}

func TestNumForestsBounded(t *testing.T) {
	g := graph.ForestUnion(600, 4, 3)
	_, _, labels := runFD(t, g, 4, 1)
	maxLabel := 0
	for _, l := range labels {
		if l > maxLabel {
			maxLabel = l
		}
	}
	if A := hpartition.ParamA(4, 1); maxLabel > A {
		t.Errorf("max label %d exceeds A=%d", maxLabel, A)
	}
}

func TestEveryEdgeLabeledExactlyOnce(t *testing.T) {
	f := func(seed int64, aRaw uint8) bool {
		a := 1 + int(aRaw%3)
		g := graph.ForestUnion(120, a, seed)
		res, err := engine.Run(g, Program(a, 1), engine.Options{Seed: seed})
		if err != nil {
			return false
		}
		orient, labels, err := Collect(g, res.Output)
		if err != nil {
			return false
		}
		return len(orient) == g.M() && len(labels) == g.M() &&
			check.ForestDecomposition(g, orient, labels, hpartition.ParamA(a, 1)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDecompOutHelper(t *testing.T) {
	g := graph.Path(4)
	prog := func(api *engine.API) any {
		d := NewDecomp(api, 1, 2)
		d.JoinAndSettle(api)
		labels := 0
		for k := 0; k < api.Degree(); k++ {
			if _, ok := d.Out(k); ok {
				labels++
			}
		}
		if labels != len(d.OutIdx) {
			t.Errorf("Out() disagrees with OutIdx")
		}
		if len(d.Parents(api)) != len(d.OutIdx) {
			t.Errorf("Parents length mismatch")
		}
		return d.Output(api)
	}
	if _, err := engine.Run(g, prog, engine.Options{}); err != nil {
		t.Fatal(err)
	}
}
