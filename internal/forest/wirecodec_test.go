package forest

import (
	"reflect"
	"testing"

	"vavg/internal/wire"
)

func TestOutputWireRoundTrip(t *testing.T) {
	v := Output{H: 3, Labels: map[int32]int32{9: 1, 2: 4, 5: -1}}
	buf := wire.Encode(nil, v)
	got, n, err := wire.Decode("forest.Output", buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip: got %+v want %+v", got, v)
	}
}

func TestOutputWireRejectsCorrupt(t *testing.T) {
	buf := wire.Encode(nil, Output{H: 1, Labels: map[int32]int32{1: 2}})
	if _, _, err := wire.Decode("forest.Output", buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated Output decoded without error")
	}
	if _, _, err := wire.Decode("forest.Output", nil); err == nil {
		t.Fatal("empty Output decoded without error")
	}
}
