package forest

import "vavg/internal/engine"

// Step (state-machine) forms of the decomposition. Each turn reproduces
// one round of the blocking form, so the two forms are byte-identical on
// every backend.

// Start drives the decomposition as a step sub-machine, mirroring
// JoinAndSettle: the entry turn takes the first partition round, every
// following turn absorbs and takes another until the vertex joins, and the
// two post-join rounds (the join round's tail absorb, then the settle
// round) end with the orientation computed. done runs in the settle turn.
func (d *Decomp) Start(api *engine.API, done func() engine.Step) engine.Step {
	settle2 := func(api *engine.API, inbox []engine.Msg) engine.Step {
		d.Tr.Absorb(api, inbox)
		d.computeOrientation(api)
		return done()
	}
	settle1 := func(api *engine.API, inbox []engine.Msg) engine.Step {
		d.Tr.Absorb(api, inbox)
		return engine.Continue(settle2)
	}
	var join engine.StepFn
	join = func(api *engine.API, inbox []engine.Msg) engine.Step {
		d.Tr.Absorb(api, inbox)
		if d.Tr.Advance(api) {
			return engine.Continue(settle1)
		}
		return engine.Continue(join)
	}
	if d.Tr.Advance(api) {
		return engine.Continue(settle1)
	}
	return engine.Continue(join)
}

// StartWC drives the worst-case schedule of the classical procedure
// (baseline.wcDecomp): partition rounds until the vertex joins, one merged
// sleep to the global bound ell, then the settle round. done runs in the
// settle turn.
func (d *Decomp) StartWC(api *engine.API, ell int, done func() engine.Step) engine.Step {
	settle := func(api *engine.API, inbox []engine.Msg) engine.Step {
		d.Tr.Absorb(api, inbox)
		d.computeOrientation(api)
		return done()
	}
	var join engine.StepFn
	join = func(api *engine.API, inbox []engine.Msg) engine.Step {
		d.Tr.Absorb(api, inbox)
		if d.Tr.HIndex != 0 {
			// The blocking form idles to round ell and settles one round
			// later; a single sleep accumulates the same absorbs.
			k := ell + 1 - api.Round()
			if k < 1 {
				k = 1
			}
			return engine.Sleep(k, settle)
		}
		d.Tr.Advance(api)
		return engine.Continue(join)
	}
	d.Tr.Advance(api)
	return engine.Continue(join)
}

// StepProgram is the step form of Program.
func StepProgram(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			d := NewDecomp(api, a, eps)
			return d.Start(api, func() engine.Step {
				return engine.Done(d.Output(api))
			})
		}
	}
}
