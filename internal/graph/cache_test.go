package graph

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCacheFillsOnceAndShares(t *testing.T) {
	c := NewCache()
	var calls int32
	gen := func() *Graph {
		atomic.AddInt32(&calls, 1)
		return ForestUnion(200, 3, 7)
	}
	g1 := c.Get("forests|n=200|a=3|seed=7", gen)
	g2 := c.Get("forests|n=200|a=3|seed=7", gen)
	if g1 != g2 {
		t.Error("cache returned distinct graphs for one key")
	}
	if calls != 1 {
		t.Errorf("generator ran %d times, want 1", calls)
	}
	g3 := c.Get("forests|n=200|a=3|seed=8", func() *Graph { return ForestUnion(200, 3, 8) })
	if g3 == g1 {
		t.Error("distinct keys must not share a graph")
	}
	if hits, misses := c.Stats(); hits != 1 || misses != 2 {
		t.Errorf("stats = (%d hits, %d misses), want (1, 2)", hits, misses)
	}
	if c.Len() != 2 {
		t.Errorf("Len = %d, want 2", c.Len())
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("Len after Purge = %d, want 0", c.Len())
	}
}

// TestCacheConcurrentReadOnly is the immutability guard for shared cached
// graphs: many goroutines request the same key while concurrently walking
// the returned graph's structure the way algorithm runs do. Under
// `go test -race` any write to the shared graph — a second generator run,
// or a reader mutating adjacency — is reported.
func TestCacheConcurrentReadOnly(t *testing.T) {
	c := NewCache()
	var calls int32
	const goroutines = 24
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := c.Get("shared", func() *Graph {
				atomic.AddInt32(&calls, 1)
				return ForestUnion(300, 3, 11)
			})
			// Structural reads concurrent algorithm runs perform.
			_ = Degeneracy(g)
			_ = g.MaxDegree()
			deg := 0
			for u := 0; u < g.N(); u++ {
				for range g.Neighbors(u) {
					deg++
				}
			}
			if deg != 2*g.M() {
				t.Errorf("adjacency walk saw %d half-edges, want %d", deg, 2*g.M())
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Errorf("generator ran %d times under contention, want 1", calls)
	}
	hits, misses := c.Stats()
	if hits+misses != goroutines || misses != 1 {
		t.Errorf("stats = (%d hits, %d misses), want (%d, 1)", hits, misses, goroutines-1)
	}
}

func TestCacheDistinctKeysFillConcurrently(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	graphs := make([]*Graph, 8)
	for i := range graphs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			graphs[i] = c.Get(fmt.Sprintf("ring|n=%d", 32+i), func() *Graph { return Ring(32 + i) })
		}(i)
	}
	wg.Wait()
	for i, g := range graphs {
		if g.N() != 32+i {
			t.Errorf("key %d produced n=%d, want %d", i, g.N(), 32+i)
		}
	}
}
