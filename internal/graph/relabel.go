// Vertex relabeling for cache locality (DESIGN.md §11).
//
// Random vertex IDs turn every CSR adjacency walk and cross-shard message
// delivery into a cache miss: neighboring vertices live in unrelated cache
// lines. A reverse Cuthill–McKee (RCM) ordering renumbers vertices so that
// neighbors get nearby IDs, which clusters the engine's per-vertex state
// and per-directed-edge message slots the same way the paper's locality
// arguments cluster the algorithmic work.
//
// Two distinct products are built from one RCM order:
//
//   - Permute: a plain isomorphic relabel. The result is a fully valid
//     Graph (ascending adjacency, correct Rev) that can be persisted with
//     WriteCSRFile and passes VerifyCSRFile — this is what `vavggraph
//     relabel` writes. Running on a permuted graph gives a DIFFERENT
//     (isomorphic) execution, because vertex IDs are observable in the
//     LOCAL model: PRNG streams, ID tie-breaks, and inbox order all key on
//     them.
//
//   - Relabel: an engine view that changes only the PHYSICAL layout while
//     keeping every observable in original-ID space, so Results are
//     byte-identical to the unrelabeled run after index unmapping. The
//     view's adjacency is ordered by ORIGINAL neighbor ID within each
//     vertex (so neighbor index k means the same logical neighbor), which
//     means its Adj is generally NOT ascending in view IDs: a view must
//     never be persisted or passed to structural validation.
package graph

import (
	"fmt"
	"sort"
)

// Relabeling carries the translation tables of a relabeled engine view.
// All four slices are indexed as documented; Orig and New are mutual
// inverses.
type Relabeling struct {
	// Orig[new] is the original ID of view vertex new.
	Orig []int32
	// New[old] is the view ID of original vertex old.
	New []int32
	// AdjOrig[p] is the original ID of the neighbor stored at Adj[p].
	// Within each vertex's range it is ascending — the view keeps the
	// original adjacency order — so neighbor-index lookups by original ID
	// binary-search this slice.
	AdjOrig []int32
	// SlotOrig[p] is the original directed-edge position of view slot p.
	// The adversary's per-delivery drop hash is keyed by original slots so
	// faulty runs stay byte-identical under relabeling.
	SlotOrig []int32
}

// RCMOrder returns a reverse Cuthill–McKee ordering: order[i] is the
// original ID of the vertex that receives new ID i. The ordering is
// deterministic: components are discovered by scanning original IDs
// ascending, each component starts its BFS at the minimum-(degree, ID)
// vertex, the BFS visits each frontier in ascending (degree, ID), and the
// concatenated visit order is reversed (the classic RCM bandwidth
// reduction step).
func RCMOrder(g *Graph) []int32 {
	n := g.N()
	order := make([]int32, 0, n)
	// state: 0 unseen, 1 in the current component, 2 placed in the order.
	state := make([]uint8, n)
	var comp []int32
	for scan := 0; scan < n; scan++ {
		if state[scan] != 0 {
			continue
		}
		// Pass 1: collect the component so the start vertex is well-defined.
		comp = append(comp[:0], int32(scan))
		state[scan] = 1
		for qi := 0; qi < len(comp); qi++ {
			for _, w := range g.Neighbors(int(comp[qi])) {
				if state[w] == 0 {
					state[w] = 1
					comp = append(comp, w)
				}
			}
		}
		start := comp[0]
		for _, v := range comp[1:] {
			dv, ds := g.Degree(int(v)), g.Degree(int(start))
			if dv < ds || (dv == ds && v < start) {
				start = v
			}
		}
		// Pass 2: Cuthill–McKee BFS from start, each frontier sorted by
		// (degree, ID). The queue is appended directly onto order.
		head := len(order)
		order = append(order, start)
		state[start] = 2
		for head < len(order) {
			v := order[head]
			head++
			mark := len(order)
			for _, w := range g.Neighbors(int(v)) {
				if state[w] == 1 {
					state[w] = 2
					order = append(order, w)
				}
			}
			frontier := order[mark:]
			sort.Slice(frontier, func(i, j int) bool {
				di, dj := g.Degree(int(frontier[i])), g.Degree(int(frontier[j]))
				if di != dj {
					return di < dj
				}
				return frontier[i] < frontier[j]
			})
		}
	}
	// Reverse: RCM is the Cuthill–McKee order read backwards.
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	return order
}

// invertOrder validates that order is a permutation of [0, g.N()) and
// returns its inverse (newID[old] = new). It panics on malformed input,
// which always indicates a caller bug.
func invertOrder(g *Graph, order []int32) []int32 {
	n := g.N()
	if len(order) != n {
		panic(fmt.Sprintf("graph: relabel order has %d entries for %d vertices", len(order), n))
	}
	newID := make([]int32, n)
	for i := range newID {
		newID[i] = -1
	}
	for i, v := range order {
		if v < 0 || int(v) >= n || newID[v] != -1 {
			panic(fmt.Sprintf("graph: relabel order is not a permutation (entry %d = %d)", i, v))
		}
		newID[v] = int32(i)
	}
	return newID
}

// Permute returns the isomorphic graph obtained by giving original vertex
// order[i] the new ID i. The result is a fully valid heap-resident Graph —
// adjacency ascending in new IDs, Rev rebuilt — suitable for persisting
// with WriteCSRFile. It does NOT carry a Relabeling: running on it is a
// different (isomorphic) execution, not a layout change.
func Permute(g *Graph, order []int32) *Graph {
	n := g.N()
	newID := invertOrder(g, order)
	ng := &Graph{n: n, Name: g.Name, ArborBound: g.ArborBound}
	ng.Off = make([]int32, n+1)
	for v := 0; v < n; v++ {
		ng.Off[v+1] = ng.Off[v] + int32(g.Degree(int(order[v])))
	}
	m2 := len(g.Adj)
	ng.Adj = make([]int32, m2)
	ng.Rev = make([]int32, m2)
	// posNew[p] is the new position of the directed edge stored at original
	// position p; Rev then transports through it.
	posNew := make([]int32, m2)
	var idx []int32
	for v := 0; v < n; v++ {
		u := order[v]
		lo, hi := g.Off[u], g.Off[u+1]
		idx = idx[:0]
		for p := lo; p < hi; p++ {
			idx = append(idx, p)
		}
		sort.Slice(idx, func(i, j int) bool {
			return newID[g.Adj[idx[i]]] < newID[g.Adj[idx[j]]]
		})
		base := ng.Off[v]
		for k, p := range idx {
			np := base + int32(k)
			ng.Adj[np] = newID[g.Adj[p]]
			posNew[p] = np
		}
	}
	for p, np := range posNew {
		ng.Rev[np] = posNew[g.Rev[p]]
	}
	return ng
}

// Relabel returns the RCM engine view of g: vertex and edge storage is
// reordered for locality, but a Relabeling is attached (Graph.Perm) so the
// engine can keep every observable — vertex IDs, PRNG streams, inbox
// order, adversary decisions — in original-ID space and unmap Results.
//
// View invariants:
//
//   - Within each view vertex's range, adjacency keeps the ORIGINAL order
//     (ascending original neighbor ID): the k-th neighbor of view vertex
//     New[u] is the same logical neighbor as the k-th neighbor of u.
//     Consequently Adj is not ascending in view IDs and the view must
//     never be persisted, verified, or passed to NeighborIndex with view
//     IDs.
//   - Rev is a true involution on the view, so the engine's slot slabs
//     work unchanged.
//   - Off/Adj/Rev are fresh heap arrays; the view does not retain a file
//     mapping even when g is mmap-backed (MappedBytes reports 0).
//
// Relabeling an already-relabeled view returns it unchanged.
func Relabel(g *Graph) *Graph {
	if g.Perm != nil {
		return g
	}
	order := RCMOrder(g)
	n := g.N()
	newID := invertOrder(g, order)
	m2 := len(g.Adj)
	pm := &Relabeling{
		Orig:     order,
		New:      newID,
		AdjOrig:  make([]int32, m2),
		SlotOrig: make([]int32, m2),
	}
	ng := &Graph{n: n, Name: g.Name, ArborBound: g.ArborBound, Perm: pm}
	ng.Off = make([]int32, n+1)
	for v := 0; v < n; v++ {
		ng.Off[v+1] = ng.Off[v] + int32(g.Degree(int(order[v])))
	}
	ng.Adj = make([]int32, m2)
	ng.Rev = make([]int32, m2)
	for v := 0; v < n; v++ {
		u := order[v]
		lo, hi := g.Off[u], g.Off[u+1]
		base := ng.Off[v]
		for p := lo; p < hi; p++ {
			np := base + (p - lo)
			w := g.Adj[p]
			ng.Adj[np] = newID[w]
			pm.AdjOrig[np] = w
			pm.SlotOrig[np] = p
			// The reverse slot keeps its within-vertex offset (the view
			// preserves original adjacency order), so it lands at the same
			// offset inside w's new range.
			ng.Rev[np] = ng.Off[newID[w]] + (g.Rev[p] - g.Off[w])
		}
	}
	return ng
}
