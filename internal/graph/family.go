package graph

import (
	"fmt"
	"math"
)

// Families lists the graph-family names MakeFamily accepts, in
// presentation order, for CLI help and error text.
var Families = []string{
	"forests", "ring", "ringshuffled", "path", "star", "starforest",
	"bintree", "tree", "grid", "trigrid", "gnm", "clique", "cliqueforest",
	"hypercube", "caterpillar", "karytree",
}

// MakeFamily constructs a graph family by its CLI name. It is the single
// construction path shared by graphgen, vavgrun, and vavggraph, so every
// tool derives the same graph from the same (family, n, a, seed) triple —
// which is what makes a materialized CSR file interchangeable with its
// generator. The density parameter a feeds the families that take one
// (forest count, gnm edge factor, star sizes); the others ignore it.
func MakeFamily(family string, n, a int, seed int64) (*Graph, error) {
	switch family {
	case "forests":
		return ForestUnion(n, a, seed), nil
	case "ring":
		return Ring(n), nil
	case "ringshuffled":
		return RingShuffled(n, seed), nil
	case "path":
		return Path(n), nil
	case "star":
		return Star(n), nil
	case "starforest":
		return StarForest(n, 8*a), nil
	case "bintree":
		return CompleteBinaryTree(n), nil
	case "tree":
		return RandomTree(n, seed), nil
	case "grid":
		s := gridSide(n)
		return Grid(s, s), nil
	case "trigrid":
		s := gridSide(n)
		return TriangulatedGrid(s, s), nil
	case "gnm":
		return Gnm(n, a*n, seed), nil
	case "clique":
		return Clique(n), nil
	case "cliqueforest":
		return CliquePlusForest(n, 4*a, seed), nil
	case "hypercube":
		d := 1
		for 1<<d < n {
			d++
		}
		return Hypercube(d), nil
	case "caterpillar":
		return Caterpillar(n), nil
	case "karytree":
		k := a
		if k < 2 {
			k = 2
		}
		return KaryTree(n, k), nil
	default:
		return nil, fmt.Errorf("unknown graph family %q (families: %v)", family, Families)
	}
}

func gridSide(n int) int {
	s := int(math.Sqrt(float64(n)))
	if s < 2 {
		return 2
	}
	return s
}
