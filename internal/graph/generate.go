package graph

import (
	"fmt"
	"math/rand"
)

// Ring returns the n-cycle (n >= 3), arboricity 2.
func Ring(n int) *Graph {
	if n < 3 {
		panic("graph: ring needs n >= 3")
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	g := b.Build()
	g.Name = fmt.Sprintf("ring(%d)", n)
	g.ArborBound = 2
	return g
}

// RingShuffled returns an n-cycle visiting the vertices in a random
// order, so vertex labels carry no positional information (unlike Ring,
// where neighbors have consecutive IDs). Arboricity 2.
func RingShuffled(n int, seed int64) *Graph {
	if n < 3 {
		panic("graph: ring needs n >= 3")
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(perm[i], perm[(i+1)%n])
	}
	g := b.Build()
	g.Name = fmt.Sprintf("ringshuffled(%d)", n)
	g.ArborBound = 2
	return g
}

// Path returns the n-vertex path, arboricity 1.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.Build()
	g.Name = fmt.Sprintf("path(%d)", n)
	g.ArborBound = 1
	return g
}

// Star returns the star K_{1,n-1}: arboricity 1, maximum degree n-1. Stars
// are the canonical case where arboricity-dependent bounds beat
// degree-dependent ones.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i)
	}
	g := b.Build()
	g.Name = fmt.Sprintf("star(%d)", n)
	g.ArborBound = 1
	return g
}

// StarForest returns ceil(n/k) stars of k leaves each, linked into one
// component by a path through the centers: arboricity 2, max degree ~k+2.
func StarForest(n, k int) *Graph {
	if k < 1 {
		panic("graph: star forest needs k >= 1")
	}
	b := NewBuilder(n)
	prevCenter := -1
	for c := 0; c < n; c += k + 1 {
		for l := c + 1; l <= c+k && l < n; l++ {
			b.AddEdge(c, l)
		}
		if prevCenter >= 0 {
			b.AddEdge(prevCenter, c)
		}
		prevCenter = c
	}
	g := b.Build()
	g.Name = fmt.Sprintf("starforest(%d,k=%d)", n, k)
	g.ArborBound = 2
	return g
}

// CompleteBinaryTree returns a complete binary tree on n vertices
// (heap-indexed), arboricity 1.
func CompleteBinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, (i-1)/2)
	}
	g := b.Build()
	g.Name = fmt.Sprintf("bintree(%d)", n)
	g.ArborBound = 1
	return g
}

// RandomTree returns a uniform random recursive tree on n vertices:
// vertex i attaches to a uniform earlier vertex. Arboricity 1.
func RandomTree(n int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i))
	}
	g := b.Build()
	g.Name = fmt.Sprintf("randtree(%d)", n)
	g.ArborBound = 1
	return g
}

// Grid returns the w x h grid graph, planar, arboricity <= 2.
func Grid(w, h int) *Graph {
	b := NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("grid(%dx%d)", w, h)
	g.ArborBound = 2
	return g
}

// TriangulatedGrid returns the w x h grid with one diagonal per cell:
// planar, arboricity <= 3. A stand-in for planar triangulations.
func TriangulatedGrid(w, h int) *Graph {
	b := NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
			if x+1 < w && y+1 < h {
				b.AddEdge(id(x, y), id(x+1, y+1))
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("trigrid(%dx%d)", w, h)
	g.ArborBound = 3
	return g
}

// ForestUnion returns the union of a random spanning-structure forests on n
// vertices: each forest is a uniform random recursive tree with an
// independently shuffled vertex order. The result has arboricity <= a and
// roughly a*n edges; it is the canonical bounded-arboricity family used in
// the paper's experiments sweep.
func ForestUnion(n, a int, seed int64) *Graph {
	if a < 1 {
		panic("graph: forest union needs a >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	perm := make([]int, n)
	for f := 0; f < a; f++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := 1; i < n; i++ {
			u, v := perm[i], perm[rng.Intn(i)]
			if u != v {
				b.AddEdge(u, v)
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("forests(%d,a=%d)", n, a)
	g.ArborBound = a
	return g
}

// Gnm returns a uniform random simple graph with n vertices and (up to) m
// edges. Arboricity is not certified (ArborBound is an upper bound from
// degeneracy, computed eagerly).
func Gnm(n, m int, seed int64) *Graph {
	if max := n * (n - 1) / 2; m > max {
		m = max
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	seen := make(map[Edge]bool, m)
	for len(seen) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := Edge{int32(u), int32(v)}
		if !seen[e] {
			seen[e] = true
			b.AddEdge(u, v)
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("gnm(%d,%d)", n, m)
	g.ArborBound = Degeneracy(g) // degeneracy d satisfies a <= d <= 2a-1
	return g
}

// Clique returns the complete graph K_n, arboricity ceil(n/2).
func Clique(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("clique(%d)", n)
	g.ArborBound = (n + 1) / 2
	return g
}

// CliquePlusForest attaches a k-clique to a random tree on the remaining
// n-k vertices via a single edge: arboricity max(ceil(k/2), 1)+1 bound. It
// stresses the case of a dense core inside a sparse graph.
func CliquePlusForest(n, k int, seed int64) *Graph {
	if k > n {
		panic("graph: clique larger than graph")
	}
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
		}
	}
	for i := k; i < n; i++ {
		if i == k {
			b.AddEdge(0, i)
			continue
		}
		b.AddEdge(i, k+rng.Intn(i-k))
	}
	g := b.Build()
	g.Name = fmt.Sprintf("clique+forest(%d,k=%d)", n, k)
	g.ArborBound = (k+1)/2 + 1
	return g
}

// Hypercube returns the d-dimensional hypercube (n = 2^d), arboricity <= d.
func Hypercube(d int) *Graph {
	n := 1 << d
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for bit := 0; bit < d; bit++ {
			v := u ^ (1 << bit)
			if u < v {
				b.AddEdge(u, v)
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("hypercube(%d)", d)
	g.ArborBound = (d + 1)
	return g
}

// Caterpillar returns a path of length n/2 with a leaf hanging off each
// spine vertex, arboricity 1.
func Caterpillar(n int) *Graph {
	b := NewBuilder(n)
	spine := (n + 1) / 2
	for i := 0; i+1 < spine; i++ {
		b.AddEdge(i, i+1)
	}
	for i := spine; i < n; i++ {
		b.AddEdge(i, i-spine)
	}
	g := b.Build()
	g.Name = fmt.Sprintf("caterpillar(%d)", n)
	g.ArborBound = 1
	return g
}

// RandomRegularish returns a random graph where every vertex has degree
// close to d (via d/2 random perfect-matching-style rounds). Arboricity is
// certified by degeneracy.
func RandomRegularish(n, d int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	perm := make([]int, n)
	for r := 0; r < (d+1)/2; r++ {
		for i := range perm {
			perm[i] = i
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for i := 0; i+1 < n; i += 2 {
			if perm[i] != perm[i+1] {
				b.AddEdge(perm[i], perm[i+1])
			}
		}
		// Also link shifted pairs so degrees approach d rather than d/2.
		for i := 0; i < n; i++ {
			j := (i + 1) % n
			if perm[i] != perm[j] && i%2 == 1 {
				b.AddEdge(perm[i], perm[j])
			}
		}
	}
	g := b.Build()
	g.Name = fmt.Sprintf("regularish(%d,d=%d)", n, d)
	g.ArborBound = Degeneracy(g)
	return g
}

// KaryTree returns the complete k-ary tree on n vertices (heap-indexed),
// arboricity 1. For k > ceil((2+eps)*1), Procedure Partition peels it one
// level per round — leaves first, then their parents, and so on — so its
// worst case is Theta(log_k n) while the geometric level sizes keep the
// vertex-averaged complexity O(1): the cleanest witness of Theorem 6.3's
// gap on a known-arboricity family.
func KaryTree(n, k int) *Graph {
	if k < 2 {
		panic("graph: k-ary tree needs k >= 2")
	}
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, (i-1)/k)
	}
	g := b.Build()
	g.Name = fmt.Sprintf("karytree(%d,k=%d)", n, k)
	g.ArborBound = 1
	return g
}
