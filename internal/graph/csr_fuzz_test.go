package graph

import (
	"bytes"
	"testing"
)

// FuzzCSRDecode throws arbitrary bytes at the CSR decoder. The contract
// under fuzz: decodeCSR never panics and never over-reads (the race/asan
// harness would catch it), and anything it accepts re-validates as a
// structurally sound graph — corrupt files must fail at load, not later
// inside a lock-free engine round.
func FuzzCSRDecode(f *testing.F) {
	seed := func(g *Graph, compress bool) {
		var buf bytes.Buffer
		if err := WriteCSR(&buf, g, compress); err != nil {
			f.Fatal(err)
		}
		data := buf.Bytes()
		f.Add(data)
		// Truncations and single-byte mutations of valid images steer the
		// fuzzer toward the interesting parse paths much faster than raw
		// random bytes.
		f.Add(data[:len(data)/2])
		f.Add(data[:csrHeaderSize-1])
		for _, i := range []int{0, 9, 13, 17, 25, 41, 49, csrHeaderSize + 1} {
			if i < len(data) {
				mut := bytes.Clone(data)
				mut[i] ^= 0x40
				f.Add(mut)
			}
		}
	}
	seed(Ring(12), false)
	seed(Ring(12), true)
	seed(ForestUnion(40, 2, 5), false)
	seed(ForestUnion(40, 2, 5), true)
	seed(FromEdges(1, nil), false)
	seed(Star(9), true)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, _, err := decodeCSR(data)
		if err != nil {
			return
		}
		// Accepted graphs must satisfy the full structural contract — the
		// decoder already ran validateCSRGraph, so a failure here means the
		// two disagree about what "valid" means.
		if err := validateCSRGraph(g); err != nil {
			t.Fatalf("decode accepted a graph that fails validation: %v", err)
		}
		// And they must re-encode and decode to the same arrays.
		var buf bytes.Buffer
		if err := WriteCSR(&buf, g, false); err != nil {
			t.Fatalf("re-encode of accepted graph failed: %v", err)
		}
		g2, _, err := decodeCSR(buf.Bytes())
		if err != nil {
			t.Fatalf("re-decode of accepted graph failed: %v", err)
		}
		if !int32sEqual(g.Off, g2.Off) || !int32sEqual(g.Adj, g2.Adj) || !int32sEqual(g.Rev, g2.Rev) {
			t.Fatal("accepted graph does not round-trip")
		}
	})
}
