// Package graph provides the static undirected graphs on which the
// distributed algorithms of this library run, together with generators for
// the graph families used in the paper's complexity tables and structural
// utilities (degeneracy, Nash-Williams density, components, BFS).
//
// Graphs are stored in compressed sparse row (CSR) form with precomputed
// reverse-edge indices: for the k-th neighbor v of u, Rev tells at which
// position u appears in v's adjacency list. This lets the simulation engine
// deliver messages into per-directed-edge slots without locking.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph. Vertices are 0..N-1.
type Graph struct {
	// Off has length N+1; the neighbors of u are Adj[Off[u]:Off[u+1]].
	Off []int32
	// Adj lists neighbor vertex IDs, sorted ascending within each vertex.
	Adj []int32
	// Rev maps each directed-edge position to the position of its reverse:
	// if Adj[p] = v for an edge (u,v), then Adj[Rev[p]] = u within v's range.
	Rev []int32
	// Name optionally describes the generator that produced the graph.
	Name string
	// ArborBound is a certified upper bound on the arboricity, when the
	// generator knows one, and 0 otherwise.
	ArborBound int
	// Perm is non-nil on relabeled engine views built by Relabel: it maps
	// between the view's cache-friendly vertex numbering and the original
	// IDs, which remain the observable ones. See relabel.go for the view's
	// invariants (its Adj is NOT ascending in view IDs, so such a graph
	// must never be persisted or structurally validated).
	Perm *Relabeling

	n int
	// mapped is the read-only file mapping backing Off/Adj/Rev for graphs
	// loaded zero-copy from a raw CSR store (see LoadCSR); nil for
	// heap-resident graphs. It pins the mapping for the graph's lifetime.
	mapped []byte
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// MappedBytes reports the size of the read-only file mapping backing this
// graph's CSR arrays, or 0 for a heap-resident graph. Mapped bytes are
// shared (page cache, every process mapping the same file) and
// reclaimable, unlike heap bytes.
func (g *Graph) MappedBytes() uint64 { return uint64(len(g.mapped)) }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.Adj) / 2 }

// Degree returns the degree of vertex u.
func (g *Graph) Degree(u int) int { return int(g.Off[u+1] - g.Off[u]) }

// Neighbors returns the (sorted) neighbor IDs of u. The returned slice
// aliases the graph's storage and must not be modified.
func (g *Graph) Neighbors(u int) []int32 { return g.Adj[g.Off[u]:g.Off[u+1]] }

// EdgeSlot returns the global directed-edge position of u's k-th neighbor.
func (g *Graph) EdgeSlot(u, k int) int32 { return g.Off[u] + int32(k) }

// neighborScanCutoff is the degree below which NeighborIndex scans the
// adjacency list linearly. The paper's graphs are sparse (bounded
// arboricity), so most lookups hit short lists where a branch-predictable
// scan beats sort.Search's function-pointer indirection.
const neighborScanCutoff = 16

// NeighborIndex returns the position of v within u's adjacency list, or -1
// if u and v are not adjacent. It runs in O(log deg(u)); below a small
// degree cutoff it scans linearly, exiting early on the sorted order.
func (g *Graph) NeighborIndex(u, v int) int {
	return SearchAdj(g.Neighbors(u), int32(v))
}

// SearchAdj returns the position of w within the ascending adjacency slice
// adj, or -1 if absent — NeighborIndex over any sorted ID slice. The engine
// uses it to search a relabeled view's original-ID adjacency (Relabeling.
// AdjOrig), which is ascending per vertex even though the view's Adj is not.
func SearchAdj(adj []int32, w int32) int {
	if len(adj) <= neighborScanCutoff {
		for i, x := range adj {
			if x >= w {
				if x == w {
					return i
				}
				return -1
			}
		}
		return -1
	}
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= w })
	if i < len(adj) && adj[i] == w {
		return i
	}
	return -1
}

// MaxDegree returns Delta(G).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if deg := g.Degree(u); deg > d {
			d = deg
		}
	}
	return d
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool { return g.NeighborIndex(u, v) >= 0 }

// Edge is an undirected edge; U < V always holds after normalization.
type Edge struct{ U, V int32 }

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are merged; self-loops are rejected.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n vertices.
func NewBuilder(n int) *Builder { return &Builder{n: n} }

// AddEdge records the undirected edge {u,v}. It panics on out-of-range
// vertices or self-loops, which always indicate generator bugs.
func (b *Builder) AddEdge(u, v int) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at vertex %d", u))
	}
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		panic(fmt.Sprintf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	b.edges = append(b.edges, Edge{int32(u), int32(v)})
}

// NumEdges returns the number of edges added so far (before deduplication).
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build produces the immutable CSR graph.
func (b *Builder) Build() *Graph {
	sort.Slice(b.edges, func(i, j int) bool {
		if b.edges[i].U != b.edges[j].U {
			return b.edges[i].U < b.edges[j].U
		}
		return b.edges[i].V < b.edges[j].V
	})
	// Deduplicate.
	uniq := b.edges[:0]
	for i, e := range b.edges {
		if i == 0 || e != b.edges[i-1] {
			uniq = append(uniq, e)
		}
	}
	b.edges = uniq

	g := &Graph{n: b.n}
	deg := make([]int32, b.n+1)
	for _, e := range b.edges {
		deg[e.U+1]++
		deg[e.V+1]++
	}
	g.Off = make([]int32, b.n+1)
	for i := 0; i < b.n; i++ {
		g.Off[i+1] = g.Off[i] + deg[i+1]
	}
	g.Adj = make([]int32, 2*len(b.edges))
	g.Rev = make([]int32, 2*len(b.edges))
	cursor := make([]int32, b.n)
	copy(cursor, g.Off[:b.n])
	for _, e := range b.edges {
		pu, pv := cursor[e.U], cursor[e.V]
		g.Adj[pu] = e.V
		g.Adj[pv] = e.U
		g.Rev[pu] = pv
		g.Rev[pv] = pu
		cursor[e.U]++
		cursor[e.V]++
	}
	// Edges were added in sorted order per vertex, so adjacency lists are
	// already ascending; verify in debug builds via tests.
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(int(e.U), int(e.V))
	}
	return b.Build()
}

// Edges returns all undirected edges, each once, with U < V, sorted.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.M())
	for u := 0; u < g.n; u++ {
		for _, v := range g.Neighbors(u) {
			if int32(u) < v {
				out = append(out, Edge{int32(u), v})
			}
		}
	}
	return out
}

// Subgraph returns the subgraph induced by keep (keep[v] true), along with
// the mapping orig[i] = original ID of new vertex i.
func (g *Graph) Subgraph(keep []bool) (*Graph, []int32) {
	remap := make([]int32, g.n)
	var orig []int32
	for v := 0; v < g.n; v++ {
		if keep[v] {
			remap[v] = int32(len(orig))
			orig = append(orig, int32(v))
		} else {
			remap[v] = -1
		}
	}
	b := NewBuilder(len(orig))
	for _, v := range orig {
		for _, w := range g.Neighbors(int(v)) {
			if v < w && keep[w] {
				b.AddEdge(int(remap[v]), int(remap[w]))
			}
		}
	}
	sub := b.Build()
	sub.Name = g.Name + "/induced"
	sub.ArborBound = g.ArborBound
	return sub, orig
}
