package graph

import (
	"path/filepath"
	"reflect"
	"testing"
)

// familyGraph pairs a registered family name with a modest instance,
// in registry order so the property tests iterate deterministically.
type familyGraph struct {
	fam string
	g   *Graph
}

// familyGraphs builds one modest instance of every registered family.
func familyGraphs(t *testing.T) []familyGraph {
	t.Helper()
	out := make([]familyGraph, 0, len(Families))
	for _, fam := range Families {
		g, err := MakeFamily(fam, 300, 3, 7)
		if err != nil {
			t.Fatalf("MakeFamily(%s): %v", fam, err)
		}
		out = append(out, familyGraph{fam, g})
	}
	return out
}

// TestRCMOrderPermutation checks that RCMOrder is a deterministic
// permutation for every family.
func TestRCMOrderPermutation(t *testing.T) {
	for _, fg := range familyGraphs(t) {
		fam, g := fg.fam, fg.g
		order := RCMOrder(g)
		if len(order) != g.N() {
			t.Fatalf("%s: order has %d entries, want %d", fam, len(order), g.N())
		}
		seen := make([]bool, g.N())
		for _, v := range order {
			if v < 0 || int(v) >= g.N() || seen[v] {
				t.Fatalf("%s: order is not a permutation at %d", fam, v)
			}
			seen[v] = true
		}
		if again := RCMOrder(g); !reflect.DeepEqual(order, again) {
			t.Fatalf("%s: RCMOrder is not deterministic", fam)
		}
	}
}

// TestPermuteRoundTrip checks Permute(Permute(g, order), order⁻¹) = g
// byte-for-byte: Off, Adj, and Rev all come back identical, for every
// family. This is the `Relabel(Relabel⁻¹) = id` property on the canonical
// (persistable) relabeled form.
func TestPermuteRoundTrip(t *testing.T) {
	for _, fg := range familyGraphs(t) {
		fam, g := fg.fam, fg.g
		order := RCMOrder(g)
		pg := Permute(g, order)
		if pg.N() != g.N() || pg.M() != g.M() {
			t.Fatalf("%s: Permute changed the graph: n %d->%d m %d->%d", fam, g.N(), pg.N(), g.M(), pg.M())
		}
		inv := invertOrder(g, order)
		back := Permute(pg, inv)
		if !reflect.DeepEqual(back.Off, g.Off) || !reflect.DeepEqual(back.Adj, g.Adj) || !reflect.DeepEqual(back.Rev, g.Rev) {
			t.Fatalf("%s: Permute round trip is not the identity", fam)
		}
		// The permuted graph is a canonical CSR graph in its own right.
		if err := validateCSRGraph(pg); err != nil {
			t.Fatalf("%s: permuted graph fails structural validation: %v", fam, err)
		}
	}
}

// TestPermutePreservesEdges checks that Permute is the claimed isomorphism:
// {u,v} is an edge of g iff {New[u],New[v]} is an edge of the permutation.
func TestPermutePreservesEdges(t *testing.T) {
	g, err := MakeFamily("forests", 400, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	order := RCMOrder(g)
	newID := invertOrder(g, order)
	pg := Permute(g, order)
	for _, e := range g.Edges() {
		if !pg.HasEdge(int(newID[e.U]), int(newID[e.V])) {
			t.Fatalf("edge {%d,%d} lost by Permute", e.U, e.V)
		}
	}
}

// TestPermutedFileVerifies checks the persistable half of the relabel
// pipeline: an RCM-permuted graph written as a CSR file (raw and
// compressed) passes the full structural verification with identical
// accounting, and loads back equal.
func TestPermutedFileVerifies(t *testing.T) {
	g, err := MakeFamily("forests", 500, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	pg := Permute(g, RCMOrder(g))
	dir := t.TempDir()
	for _, tc := range []struct {
		name     string
		compress bool
	}{{"raw", false}, {"compressed", true}} {
		path := filepath.Join(dir, tc.name+".csr")
		if err := WriteCSRFile(path, pg, tc.compress); err != nil {
			t.Fatalf("%s: write: %v", tc.name, err)
		}
		if err := VerifyCSRFile(path); err != nil {
			t.Fatalf("%s: relabeled file fails verify: %v", tc.name, err)
		}
		loaded, err := LoadCSR(path)
		if err != nil {
			t.Fatalf("%s: load: %v", tc.name, err)
		}
		if !reflect.DeepEqual(loaded.Off, pg.Off) || !reflect.DeepEqual(loaded.Adj, pg.Adj) {
			t.Fatalf("%s: loaded relabeled graph differs from written one", tc.name)
		}
	}
}

// TestRelabelView checks every invariant of the engine view for every
// family: mutually inverse Orig/New, degree preservation, original-order
// adjacency (AdjOrig ascending per vertex), a true Rev involution, and
// SlotOrig consistency with the original storage.
func TestRelabelView(t *testing.T) {
	for _, fg := range familyGraphs(t) {
		fam, g := fg.fam, fg.g
		rg := Relabel(g)
		pm := rg.Perm
		if pm == nil {
			t.Fatalf("%s: Relabel returned no Relabeling", fam)
		}
		if rg.N() != g.N() || rg.M() != g.M() {
			t.Fatalf("%s: view changed the graph size", fam)
		}
		if Relabel(rg) != rg {
			t.Fatalf("%s: Relabel of a view must be the identity", fam)
		}
		for v := 0; v < g.N(); v++ {
			if pm.New[pm.Orig[v]] != int32(v) || pm.Orig[pm.New[v]] != int32(v) {
				t.Fatalf("%s: Orig/New are not mutual inverses at %d", fam, v)
			}
			if rg.Degree(int(pm.New[v])) != g.Degree(v) {
				t.Fatalf("%s: degree of %d changed under relabeling", fam, v)
			}
		}
		slotSeen := make([]bool, len(g.Adj))
		for nv := 0; nv < rg.N(); nv++ {
			u := pm.Orig[nv]
			lo, hi := rg.Off[nv], rg.Off[nv+1]
			for p := lo; p < hi; p++ {
				k := p - lo
				if p > lo && pm.AdjOrig[p] <= pm.AdjOrig[p-1] {
					t.Fatalf("%s: AdjOrig not ascending within vertex %d", fam, nv)
				}
				if pm.AdjOrig[p] != pm.Orig[rg.Adj[p]] {
					t.Fatalf("%s: AdjOrig[%d] disagrees with Adj", fam, p)
				}
				// Same logical neighbor as the unrelabeled k-th neighbor.
				if want := g.Adj[g.Off[u]+k]; pm.AdjOrig[p] != want {
					t.Fatalf("%s: view neighbor %d of %d is %d, want %d", fam, k, u, pm.AdjOrig[p], want)
				}
				// SlotOrig maps to the matching original position, once.
				po := pm.SlotOrig[p]
				if po != g.Off[u]+k || slotSeen[po] {
					t.Fatalf("%s: SlotOrig[%d] = %d is wrong or duplicated", fam, p, po)
				}
				slotSeen[po] = true
				// Rev is an involution landing inside the neighbor's range.
				rp := rg.Rev[p]
				if rg.Rev[rp] != p {
					t.Fatalf("%s: Rev is not an involution at %d", fam, p)
				}
				w := rg.Adj[p]
				if rp < rg.Off[w] || rp >= rg.Off[w+1] || rg.Adj[rp] != int32(nv) {
					t.Fatalf("%s: Rev[%d] does not point back to %d", fam, p, nv)
				}
			}
		}
	}
}
