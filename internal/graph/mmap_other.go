//go:build !unix

package graph

import "os"

// mapFile reads the file into the heap on platforms without syscall.Mmap:
// the loader works everywhere, it just doesn't share pages across
// processes. The second return value is always nil (nothing to unmap).
func mapFile(path string) (data, mapped []byte, err error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return b, nil, nil
}

// unmapFile is a no-op on hosts without real mappings.
func unmapFile([]byte) {}
