package graph

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderCSRInvariants(t *testing.T) {
	g := FromEdges(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 2}})
	if g.N() != 5 || g.M() != 6 {
		t.Fatalf("N=%d M=%d", g.N(), g.M())
	}
	checkCSR(t, g)
	if g.Degree(0) != 3 || g.Degree(3) != 2 {
		t.Errorf("degrees wrong: %d %d", g.Degree(0), g.Degree(3))
	}
	if !g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Error("HasEdge wrong")
	}
}

func checkCSR(t *testing.T, g *Graph) {
	t.Helper()
	for u := 0; u < g.N(); u++ {
		adj := g.Neighbors(u)
		for k, v := range adj {
			if k > 0 && adj[k-1] >= v {
				t.Fatalf("vertex %d adjacency not strictly ascending", u)
			}
			if int(v) == u {
				t.Fatalf("self-loop at %d", u)
			}
			// Reverse index round-trips.
			p := g.Off[u] + int32(k)
			rp := g.Rev[p]
			if g.Adj[rp] != int32(u) {
				t.Fatalf("Rev broken at edge (%d,%d)", u, v)
			}
			if g.Rev[rp] != p {
				t.Fatalf("Rev not involutive at edge (%d,%d)", u, v)
			}
		}
	}
}

func TestDuplicateEdgesMerged(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	b.AddEdge(0, 1)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1", g.M())
	}
}

func TestSelfLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	NewBuilder(2).AddEdge(1, 1)
}

func TestGeneratorsBasicShape(t *testing.T) {
	cases := []struct {
		g      *Graph
		n, m   int
		maxDeg int
	}{
		{Ring(10), 10, 10, 2},
		{Path(10), 10, 9, 2},
		{Star(10), 10, 9, 9},
		{CompleteBinaryTree(15), 15, 14, 3},
		{Grid(4, 5), 20, 31, 4},
		{Clique(6), 6, 15, 5},
		{Hypercube(4), 16, 32, 4},
		{Caterpillar(10), 10, 9, 3},
	}
	for _, c := range cases {
		if c.g.N() != c.n || c.g.M() != c.m || c.g.MaxDegree() != c.maxDeg {
			t.Errorf("%s: N=%d M=%d Delta=%d, want %d %d %d",
				c.g.Name, c.g.N(), c.g.M(), c.g.MaxDegree(), c.n, c.m, c.maxDeg)
		}
		checkCSR(t, c.g)
	}
}

func TestForestUnionArboricityCertificate(t *testing.T) {
	for _, a := range []int{1, 2, 4, 8} {
		g := ForestUnion(500, a, int64(a)*17)
		checkCSR(t, g)
		d := Degeneracy(g)
		if d > 2*a-1 {
			t.Errorf("a=%d: degeneracy %d exceeds 2a-1=%d (arboricity bound violated)", a, d, 2*a-1)
		}
		if lb := NashWilliamsLowerBound(g); lb > a {
			t.Errorf("a=%d: Nash-Williams lower bound %d exceeds certified arboricity", a, lb)
		}
	}
}

func TestDegeneracyKnownValues(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int
	}{
		{Path(10), 1},
		{Ring(10), 2},
		{Star(50), 1},
		{CompleteBinaryTree(31), 1},
		{Clique(7), 6},
		{Grid(5, 5), 2},
		{TriangulatedGrid(5, 5), 3},
	}
	for _, c := range cases {
		if got := Degeneracy(c.g); got != c.want {
			t.Errorf("%s: degeneracy = %d, want %d", c.g.Name, got, c.want)
		}
	}
}

func TestDegeneracyMatchesNaive(t *testing.T) {
	// Property: bucket-queue degeneracy equals the naive peeling version.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		m := rng.Intn(3 * n)
		g := Gnm(n, m, seed)
		_, naive := DegeneracyOrder(g)
		return Degeneracy(g) == naive
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSubgraph(t *testing.T) {
	g := Clique(6)
	keep := []bool{true, false, true, true, false, true}
	sub, orig := g.Subgraph(keep)
	if sub.N() != 4 || sub.M() != 6 {
		t.Fatalf("induced K4 expected, got N=%d M=%d", sub.N(), sub.M())
	}
	want := []int32{0, 2, 3, 5}
	for i, v := range orig {
		if v != want[i] {
			t.Fatalf("orig = %v", orig)
		}
	}
	checkCSR(t, sub)
}

func TestComponentsAndBFS(t *testing.T) {
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 4)
	// 5, 6 isolated
	g := b.Build()
	comp, count := Components(g)
	if count != 4 {
		t.Fatalf("components = %d, want 4", count)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[5] == comp[6] {
		t.Errorf("component labels wrong: %v", comp)
	}
	dist := BFS(g, 0)
	if dist[2] != 2 || dist[3] != -1 {
		t.Errorf("BFS dist wrong: %v", dist)
	}
	if Eccentricity(Ring(10), 0) != 5 {
		t.Error("ring eccentricity wrong")
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := TriangulatedGrid(4, 4)
	edges := g.Edges()
	if len(edges) != g.M() {
		t.Fatalf("Edges() returned %d, want %d", len(edges), g.M())
	}
	g2 := FromEdges(g.N(), edges)
	if g2.M() != g.M() {
		t.Fatal("round-trip changed edge count")
	}
	for u := 0; u < g.N(); u++ {
		for k, v := range g.Neighbors(u) {
			if g2.Neighbors(u)[k] != v {
				t.Fatal("round-trip changed adjacency")
			}
		}
	}
}

func TestGnmAndRegularish(t *testing.T) {
	g := Gnm(100, 300, 5)
	checkCSR(t, g)
	if g.M() != 300 {
		t.Errorf("Gnm produced %d edges", g.M())
	}
	if g.ArborBound < 1 {
		t.Error("Gnm did not certify arboricity")
	}
	r := RandomRegularish(100, 6, 5)
	checkCSR(t, r)
	if r.MaxDegree() > 12 {
		t.Errorf("regularish degree too high: %d", r.MaxDegree())
	}
}

func TestStarForestShape(t *testing.T) {
	g := StarForest(100, 9)
	checkCSR(t, g)
	if d := Degeneracy(g); d > 2 {
		t.Errorf("star forest degeneracy %d", d)
	}
	if g.MaxDegree() < 9 {
		t.Errorf("star forest max degree %d too small", g.MaxDegree())
	}
	if _, count := Components(g); count != 1 {
		t.Errorf("star forest not connected: %d components", count)
	}
}

func TestRingShuffled(t *testing.T) {
	g := RingShuffled(50, 9)
	checkCSR(t, g)
	if g.M() != 50 {
		t.Fatalf("M = %d, want 50", g.M())
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("vertex %d degree %d, want 2", v, g.Degree(v))
		}
	}
	if _, count := Components(g); count != 1 {
		t.Fatal("shuffled ring not a single cycle")
	}
	// Labels should not be positionally adjacent everywhere (that would
	// mean the shuffle did nothing).
	sequential := 0
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Neighbors(v) {
			if int(w) == (v+1)%g.N() {
				sequential++
			}
		}
	}
	if sequential > g.N() {
		t.Errorf("shuffle ineffective: %d sequential adjacencies", sequential)
	}
}

func TestKaryTree(t *testing.T) {
	g := KaryTree(100, 5)
	checkCSR(t, g)
	if g.M() != 99 {
		t.Fatalf("M = %d, want 99 (tree)", g.M())
	}
	if d := Degeneracy(g); d != 1 {
		t.Fatalf("degeneracy %d, want 1", d)
	}
	if g.MaxDegree() != 6 {
		t.Errorf("max degree %d, want k+1=6", g.MaxDegree())
	}
	if _, count := Components(g); count != 1 {
		t.Error("k-ary tree not connected")
	}
}

// TestNeighborIndexScanMatchesSearch pins the linear-scan fast path to the
// binary search on both sides of the degree cutoff, including misses that
// fall before, between, and after the stored neighbors.
func TestNeighborIndexScanMatchesSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, deg := range []int{0, 1, 2, neighborScanCutoff, neighborScanCutoff + 1, 64, 300} {
		n := deg + 2
		b := NewBuilder(n)
		perm := rng.Perm(n - 1)
		for _, v := range perm[:deg] {
			b.AddEdge(0, v+1)
		}
		g := b.Build()
		adj := g.Neighbors(0)
		for v := 0; v < n; v++ {
			want := -1
			for i, x := range adj {
				if x == int32(v) {
					want = i
				}
			}
			if got := g.NeighborIndex(0, v); got != want {
				t.Fatalf("deg=%d: NeighborIndex(0,%d) = %d, want %d", deg, v, got, want)
			}
		}
	}
}

// BenchmarkNeighborIndex measures the lookup on degrees around the linear
// scan cutoff; the small-degree cases are the hot shape on the paper's
// bounded-arboricity graphs.
func BenchmarkNeighborIndex(b *testing.B) {
	for _, deg := range []int{2, 4, 8, 16, 64, 512} {
		n := deg + 1
		gb := NewBuilder(n)
		for v := 1; v <= deg; v++ {
			gb.AddEdge(0, v)
		}
		g := gb.Build()
		b.Run(fmt.Sprintf("deg=%d", deg), func(b *testing.B) {
			sink := 0
			for i := 0; i < b.N; i++ {
				// Mix of hits across the list and a guaranteed miss.
				sink += g.NeighborIndex(0, 1+i%n)
			}
			_ = sink
		})
	}
}
