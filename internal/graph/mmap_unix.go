//go:build unix

package graph

import (
	"os"
	"syscall"
)

// mapFile returns the file's contents as a read-only memory mapping on
// unix hosts. The first return value is the data to parse; the second is
// the mapping to hand to unmapFile (nil when the file is empty or was
// read into the heap). The descriptor is closed before returning — the
// mapping keeps the file alive on its own.
func mapFile(path string) (data, mapped []byte, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, nil, nil
	}
	if int64(int(size)) != size {
		return nil, nil, syscall.EFBIG
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		// Filesystems without mmap support (some fuse/network mounts) fall
		// back to a plain read; the loader then owns a heap copy instead of
		// a shared mapping.
		heap, rerr := os.ReadFile(path)
		if rerr != nil {
			return nil, nil, err
		}
		return heap, nil, nil
	}
	return b, b, nil
}

// unmapFile releases a mapping returned by mapFile. Safe on nil.
func unmapFile(mapped []byte) {
	if mapped != nil {
		_ = syscall.Munmap(mapped)
	}
}
