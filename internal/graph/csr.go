package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"unsafe"

	"vavg/internal/wire"
)

// This file defines the on-disk binary CSR format ("vavg CSR store") and
// its loader. The format exists so graphs stop being per-process heap
// allocations: a raw-layout file memory-maps read-only straight into the
// Off/Adj/Rev slices of Graph, so repeated sweeps, all algorithms, and
// parallel workers share one kernel page-cache copy at zero marginal
// memory, and graph sizes are bounded by disk instead of RAM.
//
// Layout (all fixed-width fields little-endian):
//
//	header (80 bytes):
//	  [0:8)   magic "VAVGCSR1"
//	  [8:12)  format version (uint32, currently 1)
//	  [12:16) flags (uint32; bit 0 = delta-varint-compressed sections)
//	  [16:24) n, number of vertices (uint64)
//	  [24:32) m, number of undirected edges (uint64)
//	  [32:40) certified arboricity bound (uint64, 0 = none)
//	  [40:44) name length in bytes (uint32)
//	  [44:48) reserved, must be zero
//	  [48:56) FNV-1a/64 checksum of name + section payloads, in file order
//	  [56:64) Off section payload size in bytes (uint64)
//	  [64:72) Adj section payload size in bytes (uint64)
//	  [72:80) Rev section payload size in bytes (uint64)
//	name bytes, zero-padded to the next multiple of 8
//	Off section, zero-padded to the next multiple of 8
//	Adj section, zero-padded to the next multiple of 8
//	Rev section, zero-padded to the next multiple of 8
//
// Raw layout (flags bit 0 clear): Off is n+1 int32s, Adj and Rev are 2m
// int32s each, exactly the in-memory CSR arrays. The 8-byte section
// alignment lets the loader alias the mapping as []int32 without copying.
//
// Compressed layout (flags bit 0 set): Off stores the n vertex degrees as
// uvarints, Adj stores each vertex's sorted adjacency as a
// wire.AppendDeltaInt32Run, and Rev is empty — the loader rebuilds it in
// one O(m) cursor pass. Compressed files decode into the heap (no
// zero-copy mapping) and exist for archival and transport, at roughly one
// byte per edge endpoint on the sparse families.
const (
	csrMagic      = "VAVGCSR1"
	csrVersion    = 1
	csrHeaderSize = 80
	// csrFlagCompressed marks delta-varint-compressed Off/Adj sections.
	csrFlagCompressed = 1 << 0
	// csrMaxName bounds the stored graph name; longer names indicate a
	// corrupt header long before the allocator gets hurt.
	csrMaxName = 1 << 12
)

// csrHeader is the decoded fixed-size file header.
type csrHeader struct {
	version  uint32
	flags    uint32
	n        uint64
	m        uint64
	arbor    uint64
	nameLen  uint32
	checksum uint64
	offBytes uint64
	adjBytes uint64
	revBytes uint64
}

// pad8 rounds up to the next multiple of 8.
func pad8(x uint64) uint64 { return (x + 7) &^ 7 }

// hostLittleEndian reports whether the running machine stores integers
// little-endian, in which case raw sections can be aliased in place; on
// big-endian hosts the loader falls back to an explicit byte-order
// converting copy.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// int32sFrom returns b's payload as []int32, aliasing b without a copy
// when the host is little-endian and the section is 4-byte aligned
// (mappings are page-aligned and section starts 8-aligned in the file, so
// the mmap path always aliases); otherwise it decodes a heap copy. The
// bool reports whether the result aliases b.
func int32sFrom(b []byte) ([]int32, bool) {
	if len(b) == 0 {
		return nil, true
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4), true
	}
	return decodeInt32sLE(b), false
}

// WriteCSRFile writes g to path in the binary CSR format, compressed or
// raw. Raw files memory-map at load; compressed files are the compact
// archival form.
func WriteCSRFile(path string, g *Graph, compress bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := WriteCSR(w, g, compress); err != nil {
		f.Close()
		return fmt.Errorf("graph: writing %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteCSR streams g to w in the binary CSR format. The sections are
// checksummed into the header, so the encoder makes one hashing pass over
// the payload before the write pass; both passes stream through a small
// scratch buffer rather than materializing the encoded sections (except
// under compress, where the variable-length sections must be encoded
// up front to know their header sizes).
func WriteCSR(w io.Writer, g *Graph, compress bool) error {
	n, m := g.N(), g.M()
	if len(g.Off) != n+1 || len(g.Adj) != 2*m || len(g.Rev) != 2*m {
		return fmt.Errorf("graph: inconsistent CSR arrays (n=%d m=%d |Off|=%d |Adj|=%d |Rev|=%d)",
			n, m, len(g.Off), len(g.Adj), len(g.Rev))
	}
	name := g.Name
	if len(name) > csrMaxName {
		name = name[:csrMaxName]
	}
	h := csrHeader{
		version: csrVersion,
		n:       uint64(n),
		m:       uint64(m),
		arbor:   uint64(g.ArborBound),
		nameLen: uint32(len(name)),
	}

	var offEnc, adjEnc []byte // compressed section payloads
	if compress {
		h.flags = csrFlagCompressed
		offEnc = make([]byte, 0, n+1)
		for u := 0; u < n; u++ {
			offEnc = wire.AppendUvarint(offEnc, uint64(g.Degree(u)))
		}
		adjEnc = make([]byte, 0, len(g.Adj))
		for u := 0; u < n; u++ {
			adjEnc = wire.AppendDeltaInt32Run(adjEnc, g.Neighbors(u))
		}
		h.offBytes = uint64(len(offEnc))
		h.adjBytes = uint64(len(adjEnc))
		h.revBytes = 0
	} else {
		h.offBytes = 4 * uint64(n+1)
		h.adjBytes = 4 * uint64(2*m)
		h.revBytes = 4 * uint64(2*m)
	}

	// Pass 1: checksum name + section payloads in file order.
	sum := fnv.New64a()
	sum.Write([]byte(name))
	if compress {
		sum.Write(offEnc)
		sum.Write(adjEnc)
	} else {
		writeInt32sLE(sum, g.Off)
		writeInt32sLE(sum, g.Adj)
		writeInt32sLE(sum, g.Rev)
	}
	h.checksum = sum.Sum64()

	// Pass 2: header, then the payloads with their alignment padding.
	var hdr [csrHeaderSize]byte
	copy(hdr[0:8], csrMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], h.version)
	binary.LittleEndian.PutUint32(hdr[12:16], h.flags)
	binary.LittleEndian.PutUint64(hdr[16:24], h.n)
	binary.LittleEndian.PutUint64(hdr[24:32], h.m)
	binary.LittleEndian.PutUint64(hdr[32:40], h.arbor)
	binary.LittleEndian.PutUint32(hdr[40:44], h.nameLen)
	binary.LittleEndian.PutUint64(hdr[48:56], h.checksum)
	binary.LittleEndian.PutUint64(hdr[56:64], h.offBytes)
	binary.LittleEndian.PutUint64(hdr[64:72], h.adjBytes)
	binary.LittleEndian.PutUint64(hdr[72:80], h.revBytes)
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if err := writePadded(w, []byte(name)); err != nil {
		return err
	}
	if compress {
		if err := writePadded(w, offEnc); err != nil {
			return err
		}
		return writePadded(w, adjEnc)
	}
	for _, sec := range [][]int32{g.Off, g.Adj, g.Rev} {
		if err := writeInt32sLE(w, sec); err != nil {
			return err
		}
		if err := writePad(w, 4*uint64(len(sec))); err != nil {
			return err
		}
	}
	return nil
}

var zeroPad [8]byte

// writePadded writes b followed by the zero bytes that align the next
// section to 8 bytes.
func writePadded(w io.Writer, b []byte) error {
	if _, err := w.Write(b); err != nil {
		return err
	}
	return writePad(w, uint64(len(b)))
}

func writePad(w io.Writer, written uint64) error {
	if rem := pad8(written) - written; rem > 0 {
		if _, err := w.Write(zeroPad[:rem]); err != nil {
			return err
		}
	}
	return nil
}

// writeInt32sLE streams xs as little-endian int32s through a scratch
// buffer, so multi-gigabyte sections never materialize a second copy.
func writeInt32sLE(w io.Writer, xs []int32) error {
	const chunk = 16 * 1024
	var scratch [4 * chunk]byte
	for len(xs) > 0 {
		c := len(xs)
		if c > chunk {
			c = chunk
		}
		for i, x := range xs[:c] {
			binary.LittleEndian.PutUint32(scratch[4*i:], uint32(x))
		}
		if _, err := w.Write(scratch[:4*c]); err != nil {
			return err
		}
		xs = xs[c:]
	}
	return nil
}

// parseCSRHeader decodes and bounds-checks the fixed header. It validates
// everything derivable from the header alone: magic, version, flags, the
// name bound, and that n and 2m fit the int32 CSR index space.
func parseCSRHeader(data []byte) (csrHeader, error) {
	var h csrHeader
	if len(data) < csrHeaderSize {
		return h, fmt.Errorf("graph: CSR file truncated: %d bytes, want at least the %d-byte header", len(data), csrHeaderSize)
	}
	if string(data[0:8]) != csrMagic {
		return h, fmt.Errorf("graph: not a CSR graph file (magic %q)", data[0:8])
	}
	h.version = binary.LittleEndian.Uint32(data[8:12])
	if h.version != csrVersion {
		return h, fmt.Errorf("graph: CSR format version %d not supported (want %d)", h.version, csrVersion)
	}
	h.flags = binary.LittleEndian.Uint32(data[12:16])
	if h.flags&^uint32(csrFlagCompressed) != 0 {
		return h, fmt.Errorf("graph: unknown CSR flags %#x", h.flags)
	}
	h.n = binary.LittleEndian.Uint64(data[16:24])
	h.m = binary.LittleEndian.Uint64(data[24:32])
	h.arbor = binary.LittleEndian.Uint64(data[32:40])
	h.nameLen = binary.LittleEndian.Uint32(data[40:44])
	if rsvd := binary.LittleEndian.Uint32(data[44:48]); rsvd != 0 {
		return h, fmt.Errorf("graph: reserved CSR header field is %#x, want 0", rsvd)
	}
	h.checksum = binary.LittleEndian.Uint64(data[48:56])
	h.offBytes = binary.LittleEndian.Uint64(data[56:64])
	h.adjBytes = binary.LittleEndian.Uint64(data[64:72])
	h.revBytes = binary.LittleEndian.Uint64(data[72:80])
	if h.n > math.MaxInt32-1 {
		return h, fmt.Errorf("graph: CSR file declares n=%d, beyond the int32 index space", h.n)
	}
	if h.m > (math.MaxInt32-1)/2 {
		return h, fmt.Errorf("graph: CSR file declares m=%d, beyond the int32 index space", h.m)
	}
	if h.arbor > math.MaxInt32 {
		return h, fmt.Errorf("graph: CSR file declares arboricity bound %d, beyond int32", h.arbor)
	}
	if h.nameLen > csrMaxName {
		return h, fmt.Errorf("graph: CSR name length %d exceeds the %d-byte bound", h.nameLen, csrMaxName)
	}
	return h, nil
}

// csrSections locates the name and the three section payloads inside
// data, checking every offset against the file length with overflow-safe
// arithmetic before slicing.
func csrSections(data []byte, h csrHeader) (name, off, adj, rev []byte, err error) {
	size := uint64(len(data))
	pos := uint64(csrHeaderSize)
	take := func(payload uint64, what string) ([]byte, error) {
		if payload > size || pos > size-payload {
			return nil, fmt.Errorf("graph: CSR %s section (%d bytes at offset %d) overruns the %d-byte file", what, payload, pos, size)
		}
		sec := data[pos : pos+payload]
		adv := pad8(payload)
		if adv > size-pos {
			// The final section's padding may be the end of the file; only
			// the payload itself must be present.
			adv = size - pos
		}
		pos += adv
		return sec, nil
	}
	if name, err = take(uint64(h.nameLen), "name"); err != nil {
		return nil, nil, nil, nil, err
	}
	if off, err = take(h.offBytes, "Off"); err != nil {
		return nil, nil, nil, nil, err
	}
	if adj, err = take(h.adjBytes, "Adj"); err != nil {
		return nil, nil, nil, nil, err
	}
	if rev, err = take(h.revBytes, "Rev"); err != nil {
		return nil, nil, nil, nil, err
	}
	return name, off, adj, rev, nil
}

// decodeCSR parses a CSR file image into a Graph. The returned bool
// reports whether the graph's slices alias data (raw layout on a
// little-endian host); callers that mapped data decide from it whether to
// keep the mapping alive or release it. decodeCSR validates the full
// structural contract of Graph — monotone Off, sorted loop-free in-range
// adjacency, involutive Rev — and returns errors, never panics, on
// arbitrary input.
func decodeCSR(data []byte) (*Graph, bool, error) {
	h, err := parseCSRHeader(data)
	if err != nil {
		return nil, false, err
	}
	nameSec, offSec, adjSec, revSec, err := csrSections(data, h)
	if err != nil {
		return nil, false, err
	}
	n, m := int(h.n), int(h.m)
	g := &Graph{n: n, Name: string(nameSec), ArborBound: int(h.arbor)}
	aliased := false

	if h.flags&csrFlagCompressed != 0 {
		if h.revBytes != 0 {
			return nil, false, fmt.Errorf("graph: compressed CSR file carries a %d-byte Rev section, want none", h.revBytes)
		}
		if err := decodeCompressedSections(g, offSec, adjSec, n, m); err != nil {
			return nil, false, err
		}
	} else {
		if want := 4 * uint64(n+1); h.offBytes != want {
			return nil, false, fmt.Errorf("graph: raw Off section is %d bytes, want %d for n=%d", h.offBytes, want, n)
		}
		if want := 4 * uint64(2*m); h.adjBytes != want || h.revBytes != want {
			return nil, false, fmt.Errorf("graph: raw Adj/Rev sections are %d/%d bytes, want %d for m=%d", h.adjBytes, h.revBytes, want, m)
		}
		var okOff, okAdj, okRev bool
		g.Off, okOff = int32sFrom(offSec)
		g.Adj, okAdj = int32sFrom(adjSec)
		g.Rev, okRev = int32sFrom(revSec)
		aliased = okOff && okAdj && okRev
	}
	if err := validateCSRGraph(g); err != nil {
		return nil, false, err
	}
	return g, aliased, nil
}

// decodeCompressedSections rebuilds Off from the degree uvarints, Adj
// from the per-vertex delta runs, and Rev from scratch.
func decodeCompressedSections(g *Graph, offSec, adjSec []byte, n, m int) error {
	g.Off = make([]int32, n+1)
	pos := 0
	total := int64(0)
	for u := 0; u < n; u++ {
		d, c := wire.Uvarint(offSec[pos:])
		if c <= 0 {
			return fmt.Errorf("graph: degree stream truncated at vertex %d", u)
		}
		pos += c
		total += int64(d)
		if total > int64(2*m) {
			return fmt.Errorf("graph: degree stream sums past 2m=%d at vertex %d", 2*m, u)
		}
		g.Off[u+1] = int32(total)
	}
	if pos != len(offSec) {
		return fmt.Errorf("graph: %d trailing bytes after the degree stream", len(offSec)-pos)
	}
	if total != int64(2*m) {
		return fmt.Errorf("graph: degrees sum to %d, want 2m=%d", total, 2*m)
	}
	g.Adj = make([]int32, 2*m)
	pos = 0
	for u := 0; u < n; u++ {
		run := g.Adj[g.Off[u]:g.Off[u+1]]
		c, err := wire.DecodeDeltaInt32Run(adjSec[pos:], run, int32(n))
		if err != nil {
			return fmt.Errorf("graph: adjacency of vertex %d: %w", u, err)
		}
		pos += c
	}
	if pos != len(adjSec) {
		return fmt.Errorf("graph: %d trailing bytes after the adjacency runs", len(adjSec)-pos)
	}
	// Rebuild Rev with the builder's cursor pass: scanning vertices in
	// ascending order and, within each, neighbors in ascending order visits
	// the undirected edges in exactly the (u,v)-sorted order Build fills
	// them, so the reconstructed pairing is byte-identical to a generated
	// graph's.
	g.Rev = make([]int32, 2*m)
	cursor := make([]int32, n)
	copy(cursor, g.Off[:n])
	for u := 0; u < n; u++ {
		for p := g.Off[u]; p < g.Off[u+1]; p++ {
			v := g.Adj[p]
			if v <= int32(u) {
				continue
			}
			q := cursor[v]
			if q >= g.Off[v+1] {
				// More vertices list v as a neighbor than v has adjacency
				// slots for: the file's adjacency is not symmetric.
				return fmt.Errorf("graph: asymmetric adjacency: edge {%d,%d} has no slot in vertex %d's list", u, v, v)
			}
			g.Rev[p] = q
			g.Rev[q] = p
			cursor[v]++
		}
	}
	return nil
}

func decodeInt32sLE(b []byte) []int32 {
	out := make([]int32, len(b)/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// validateCSRGraph checks the full structural contract the engine and the
// algorithms rely on: Off is a monotone prefix-degree array ending at 2m,
// adjacency lists are strictly ascending, loop-free and in range, and Rev
// is the edge-reversal involution. O(n+m); runs on every load so that a
// corrupt or adversarial file surfaces as an error at the load boundary
// instead of an index panic mid-run.
func validateCSRGraph(g *Graph) error {
	n := g.n
	twoM := int32(len(g.Adj))
	if len(g.Off) != n+1 || g.Off[0] != 0 || g.Off[n] != twoM || len(g.Rev) != int(twoM) {
		return fmt.Errorf("graph: CSR shape invalid (n=%d |Off|=%d Off[0]=%d Off[n]=%d |Adj|=%d |Rev|=%d)",
			n, len(g.Off), g.Off[0], g.Off[n], len(g.Adj), len(g.Rev))
	}
	for u := 0; u < n; u++ {
		lo, hi := g.Off[u], g.Off[u+1]
		if lo > hi {
			return fmt.Errorf("graph: Off not monotone at vertex %d (%d > %d)", u, lo, hi)
		}
		prev := int32(-1)
		for p := lo; p < hi; p++ {
			v := g.Adj[p]
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: neighbor %d of vertex %d out of range [0,%d)", v, u, n)
			}
			if v == int32(u) {
				return fmt.Errorf("graph: self-loop at vertex %d", u)
			}
			if v <= prev {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly ascending at position %d", u, p)
			}
			prev = v
			q := g.Rev[p]
			if q < 0 || q >= twoM {
				return fmt.Errorf("graph: Rev[%d] = %d out of range [0,%d)", p, q, twoM)
			}
			if q < g.Off[v] || q >= g.Off[v+1] {
				return fmt.Errorf("graph: Rev[%d] = %d outside vertex %d's adjacency range", p, q, v)
			}
			if g.Adj[q] != int32(u) || g.Rev[q] != p {
				return fmt.Errorf("graph: Rev involution broken at position %d (edge {%d,%d})", p, u, v)
			}
		}
	}
	return nil
}

// LoadCSR loads the CSR graph stored at path. Raw-layout files are
// memory-mapped read-only — the returned graph's Off/Adj/Rev alias one
// shared kernel mapping, MappedBytes reports its size, and concurrent
// runs and processes share the page cache — while compressed files decode
// into the heap. Either way the file is fully structurally validated once
// at load; nothing is parsed or allocated per round afterwards. The
// mapping lives until the process exits (loaded graphs are cached and
// shared, so there is no safe unmap point); it is read-only, so a stray
// write through the graph's slices faults instead of corrupting the file.
//
// LoadCSR does not verify the header checksum — that would force a full
// readahead of a lazily-mapped file; VerifyCSRFile performs the
// end-to-end audit.
func LoadCSR(path string) (*Graph, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, fmt.Errorf("graph: loading %s: %w", path, err)
	}
	g, aliased, err := decodeCSR(data)
	if err != nil {
		unmapFile(mapped)
		return nil, fmt.Errorf("graph: loading %s: %w", path, err)
	}
	if aliased && mapped != nil {
		g.mapped = mapped
	} else {
		// The decode copied everything to the heap (compressed layout or a
		// big-endian host); the mapping has served its purpose.
		unmapFile(mapped)
	}
	return g, nil
}

// CSRInfo summarizes a CSR file's header for inspection tooling.
type CSRInfo struct {
	Version    uint32
	Compressed bool
	N          int
	M          int
	ArborBound int
	Name       string
	OffBytes   uint64
	AdjBytes   uint64
	RevBytes   uint64
	FileBytes  int64
	Checksum   uint64
}

// ReadCSRInfo reads just the header and name of the CSR file at path.
func ReadCSRInfo(path string) (CSRInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return CSRInfo{}, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return CSRInfo{}, err
	}
	buf := make([]byte, csrHeaderSize+csrMaxName)
	k, err := io.ReadFull(f, buf)
	if err == io.ErrUnexpectedEOF || err == io.EOF {
		buf = buf[:k]
	} else if err != nil {
		return CSRInfo{}, err
	}
	h, err := parseCSRHeader(buf)
	if err != nil {
		return CSRInfo{}, err
	}
	if uint64(len(buf)) < csrHeaderSize+uint64(h.nameLen) {
		return CSRInfo{}, fmt.Errorf("graph: CSR file truncated inside the name")
	}
	return CSRInfo{
		Version:    h.version,
		Compressed: h.flags&csrFlagCompressed != 0,
		N:          int(h.n),
		M:          int(h.m),
		ArborBound: int(h.arbor),
		Name:       string(buf[csrHeaderSize : csrHeaderSize+h.nameLen]),
		OffBytes:   h.offBytes,
		AdjBytes:   h.adjBytes,
		RevBytes:   h.revBytes,
		FileBytes:  st.Size(),
		Checksum:   h.checksum,
	}, nil
}

// VerifyCSRFile audits the CSR file at path end to end: header sanity,
// the FNV-1a checksum over name and section payloads, and the full
// structural validation pass of the decoder (monotone Off, sorted
// in-range adjacency, involutive Rev). It reads the whole file.
func VerifyCSRFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h, err := parseCSRHeader(data)
	if err != nil {
		return err
	}
	name, off, adj, rev, err := csrSections(data, h)
	if err != nil {
		return err
	}
	sum := fnv.New64a()
	sum.Write(name)
	sum.Write(off)
	sum.Write(adj)
	sum.Write(rev)
	if got := sum.Sum64(); got != h.checksum {
		return fmt.Errorf("graph: checksum mismatch: file sections hash to %#x, header says %#x", got, h.checksum)
	}
	// Trailing garbage is invisible to the sections and the checksum;
	// reject it explicitly (the final section's padding may be omitted).
	expect := uint64(csrHeaderSize) + pad8(uint64(h.nameLen)) + pad8(h.offBytes) + pad8(h.adjBytes) + pad8(h.revBytes)
	lastPad := pad8(h.revBytes) - h.revBytes
	if h.revBytes == 0 {
		lastPad = pad8(h.adjBytes) - h.adjBytes
	}
	if got := uint64(len(data)); got != expect && got != expect-lastPad {
		return fmt.Errorf("graph: CSR file is %d bytes, want %d from its header", got, expect)
	}
	if _, _, err := decodeCSR(data); err != nil {
		return err
	}
	return nil
}
