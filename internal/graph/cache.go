package graph

import "sync"

// Cache is a concurrency-safe, fill-once cache of generated graphs. An
// experiment typically compares several algorithms over the same
// (family, n, generator params) grid; the cache lets those runs share one
// generated *Graph instead of regenerating it per algorithm.
//
// The key must uniquely identify the generator and every parameter that
// shapes its output (family, size, arboricity, seed, ...): two fills under
// the same key are assumed interchangeable, and only the first generator
// ever runs. Cached graphs are shared by concurrent runs and must be
// treated as strictly read-only, which Graph's API already guarantees for
// well-behaved callers; the race-mode cache tests guard the contract.
type Cache struct {
	mu     sync.Mutex
	m      map[string]*cacheEntry
	hits   int
	misses int
}

type cacheEntry struct {
	once sync.Once
	g    *Graph
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[string]*cacheEntry{}} }

// Get returns the graph cached under key, generating it with gen on the
// first request. Concurrent Gets for the same key run gen exactly once;
// the other callers block until the fill completes and then share the
// same *Graph.
func (c *Cache) Get(key string, gen func() *Graph) *Graph {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry{}
		c.m[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g = gen() })
	return e.g
}

// Len returns the number of cached keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns how many Gets were served from the cache (hits) and how
// many triggered a fill (misses).
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge drops every cached graph, releasing the memory to the collector.
// Long sweeps over many large sizes call it between families.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[string]*cacheEntry{}
}
