package graph

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
)

// CacheKey builds the canonical cache key for a generated graph: the
// family name, the vertex count, then alternating parameter name/value
// pairs for every generator input that shapes the output (arboricity,
// seed, ...). All call sites composing cache keys must go through it (or
// FileKey) so that two spellings of the same identity can never diverge
// and two different identities can never collide:
//
//	CacheKey("forests", 4096, "a", 3, "seed", 7) = "forests|n=4096|a=3|seed=7"
//
// It panics on a malformed params list — keys are built by code, not
// data, so a bad call is a programmer error.
func CacheKey(family string, n int, params ...any) string {
	if len(params)%2 != 0 {
		panic(fmt.Sprintf("graph: CacheKey(%q) params must be name/value pairs, got %d values", family, len(params)))
	}
	var b strings.Builder
	b.WriteString(family)
	fmt.Fprintf(&b, "|n=%d", n)
	for i := 0; i < len(params); i += 2 {
		name, ok := params[i].(string)
		if !ok {
			panic(fmt.Sprintf("graph: CacheKey(%q) param name %v is %T, want string", family, params[i], params[i]))
		}
		fmt.Fprintf(&b, "|%s=%v", name, params[i+1])
	}
	return b.String()
}

// FileKey builds the canonical cache key for a file-backed graph. Two
// references to the same (cleaned) path share one cache entry — and one
// mapping — and the "file:" prefix keeps file-backed keys disjoint from
// CacheKey's family|n=... namespace, so a file-backed and a generated
// graph can never collide.
func FileKey(path string) string { return "file:" + filepath.Clean(path) }

// Cache is a concurrency-safe, fill-once cache of generated graphs. An
// experiment typically compares several algorithms over the same
// (family, n, generator params) grid; the cache lets those runs share one
// generated *Graph instead of regenerating it per algorithm.
//
// The key must uniquely identify the generator and every parameter that
// shapes its output (family, size, arboricity, seed, ...): two fills under
// the same key are assumed interchangeable, and only the first generator
// ever runs. Cached graphs are shared by concurrent runs and must be
// treated as strictly read-only, which Graph's API already guarantees for
// well-behaved callers; the race-mode cache tests guard the contract.
type Cache struct {
	mu     sync.Mutex
	m      map[string]*cacheEntry
	hits   int
	misses int
}

type cacheEntry struct {
	once sync.Once
	g    *Graph
}

// NewCache returns an empty cache.
func NewCache() *Cache { return &Cache{m: map[string]*cacheEntry{}} }

// Get returns the graph cached under key, generating it with gen on the
// first request. Concurrent Gets for the same key run gen exactly once;
// the other callers block until the fill completes and then share the
// same *Graph.
func (c *Cache) Get(key string, gen func() *Graph) *Graph {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &cacheEntry{}
		c.m[key] = e
		c.misses++
	} else {
		c.hits++
	}
	c.mu.Unlock()
	e.once.Do(func() { e.g = gen() })
	return e.g
}

// Len returns the number of cached keys.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns how many Gets were served from the cache (hits) and how
// many triggered a fill (misses).
func (c *Cache) Stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Purge drops every cached graph, releasing the memory to the collector.
// Long sweeps over many large sizes call it between families.
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m = map[string]*cacheEntry{}
}
