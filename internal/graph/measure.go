package graph

// Degeneracy returns the degeneracy of g: the smallest d such that every
// subgraph has a vertex of degree <= d. It satisfies a <= d <= 2a-1 where a
// is the arboricity, so it certifies arboricity up to a factor of two.
// Runs in O(n + m) via the standard bucketed peeling.
func Degeneracy(g *Graph) int {
	n := g.N()
	if n == 0 {
		return 0
	}
	deg := make([]int32, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = int32(g.Degree(v))
		if int(deg[v]) > maxDeg {
			maxDeg = int(deg[v])
		}
	}
	// Bucket queue keyed by current degree.
	bucketHead := make([]int32, maxDeg+2)
	next := make([]int32, n)
	prev := make([]int32, n)
	for i := range bucketHead {
		bucketHead[i] = -1
	}
	for v := 0; v < n; v++ {
		d := deg[v]
		next[v] = bucketHead[d]
		prev[v] = -1
		if bucketHead[d] >= 0 {
			prev[bucketHead[d]] = int32(v)
		}
		bucketHead[d] = int32(v)
	}
	removeFromBucket := func(v int32) {
		d := deg[v]
		if prev[v] >= 0 {
			next[prev[v]] = next[v]
		} else {
			bucketHead[d] = next[v]
		}
		if next[v] >= 0 {
			prev[next[v]] = prev[v]
		}
	}
	removed := make([]bool, n)
	degeneracy := 0
	cur := 0
	for peeled := 0; peeled < n; peeled++ {
		for cur > 0 && bucketHead[cur-1] >= 0 {
			cur-- // a neighbor removal may have lowered some degree
		}
		for bucketHead[cur] < 0 {
			cur++
		}
		v := bucketHead[cur]
		removeFromBucket(v)
		removed[v] = true
		if cur > degeneracy {
			degeneracy = cur
		}
		for _, w := range g.Neighbors(int(v)) {
			if !removed[w] {
				removeFromBucket(w)
				deg[w]--
				d := deg[w]
				next[w] = bucketHead[d]
				prev[w] = -1
				if bucketHead[d] >= 0 {
					prev[bucketHead[d]] = w
				}
				bucketHead[d] = w
			}
		}
	}
	return degeneracy
}

// DegeneracyOrder returns a peeling order and the degeneracy: position[v]
// is v's index in the elimination order, and every vertex has at most
// degeneracy neighbors later in the order.
func DegeneracyOrder(g *Graph) (order []int32, degeneracy int) {
	n := g.N()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	removed := make([]bool, n)
	order = make([]int32, 0, n)
	for len(order) < n {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if bestDeg > degeneracy {
			degeneracy = bestDeg
		}
		removed[best] = true
		order = append(order, int32(best))
		for _, w := range g.Neighbors(best) {
			if !removed[w] {
				deg[w]--
			}
		}
	}
	return order, degeneracy
}

// NashWilliamsLowerBound returns a lower bound on the arboricity: the
// maximum over traversed subgraphs H of ceil(|E(H)| / (|V(H)|-1)), sampled
// on the whole graph and on cores obtained by peeling. (Exact arboricity
// needs matroid machinery; the bound pairs with Degeneracy to bracket it.)
func NashWilliamsLowerBound(g *Graph) int {
	n := g.N()
	if n < 2 {
		return 0
	}
	best := ceilDiv(g.M(), n-1)
	// Peel low-degree vertices progressively and re-evaluate the density of
	// each core.
	deg := make([]int, n)
	alive := n
	edges := g.M()
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	for alive > 2 {
		// Remove all vertices of minimum degree in one sweep.
		minDeg := n
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < minDeg {
				minDeg = deg[v]
			}
		}
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] == minDeg {
				removed[v] = true
				alive--
				for _, w := range g.Neighbors(v) {
					if !removed[w] {
						deg[w]--
						edges--
					}
				}
			}
		}
		if alive >= 2 {
			if d := ceilDiv(edges, alive-1); d > best {
				best = d
			}
		}
	}
	return best
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// Components labels connected components; comp[v] is the component index
// of v and the second result is the number of components.
func Components(g *Graph) (comp []int32, count int) {
	n := g.N()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = int32(count)
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range g.Neighbors(int(u)) {
				if comp[w] < 0 {
					comp[w] = int32(count)
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// BFS returns distances from src (-1 for unreachable vertices).
func BFS(g *Graph, src int) []int32 {
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int32{int32(src)}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, w := range g.Neighbors(int(u)) {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the largest finite BFS distance from src.
func Eccentricity(g *Graph, src int) int {
	ecc := 0
	for _, d := range BFS(g, src) {
		if int(d) > ecc {
			ecc = int(d)
		}
	}
	return ecc
}
