package graph

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

type namedGraph struct {
	name string
	g    *Graph
}

// csrTestGraphs builds one small instance of every generator family plus
// the degenerate shapes (singleton, edgeless) the loader must handle.
func csrTestGraphs(t testing.TB) []namedGraph {
	t.Helper()
	graphs := []namedGraph{
		{"singleton", FromEdges(1, nil)},
		{"edgeless", FromEdges(5, nil)},
	}
	for _, fam := range Families {
		g, err := MakeFamily(fam, 64, 3, 7)
		if err != nil {
			t.Fatalf("MakeFamily(%s): %v", fam, err)
		}
		graphs = append(graphs, namedGraph{fam, g})
	}
	return graphs
}

// TestCSRRoundTripAllFamilies is the Write(g); Load == g property: every
// family survives a raw and a compressed round trip bit-for-bit,
// including the reconstructed Rev involution, and the written file
// verifies end to end.
func TestCSRRoundTripAllFamilies(t *testing.T) {
	dir := t.TempDir()
	for _, ng := range csrTestGraphs(t) {
		name, g := ng.name, ng.g
		for _, compress := range []bool{false, true} {
			mode := "raw"
			if compress {
				mode = "compressed"
			}
			path := filepath.Join(dir, name+"-"+mode+".csr")
			if err := WriteCSRFile(path, g, compress); err != nil {
				t.Fatalf("%s/%s: write: %v", name, mode, err)
			}
			if err := VerifyCSRFile(path); err != nil {
				t.Fatalf("%s/%s: verify: %v", name, mode, err)
			}
			got, err := LoadCSR(path)
			if err != nil {
				t.Fatalf("%s/%s: load: %v", name, mode, err)
			}
			if got.N() != g.N() || got.M() != g.M() || got.Name != g.Name || got.ArborBound != g.ArborBound {
				t.Fatalf("%s/%s: header fields differ: n=%d/%d m=%d/%d name=%q/%q arbor=%d/%d",
					name, mode, got.N(), g.N(), got.M(), g.M(), got.Name, g.Name, got.ArborBound, g.ArborBound)
			}
			if !int32sEqual(got.Off, g.Off) || !int32sEqual(got.Adj, g.Adj) || !int32sEqual(got.Rev, g.Rev) {
				t.Fatalf("%s/%s: CSR arrays differ after round trip", name, mode)
			}
			if compress && got.MappedBytes() != 0 {
				t.Errorf("%s: compressed load reports %d mapped bytes, want 0 (heap decode)", name, got.MappedBytes())
			}
			info, err := ReadCSRInfo(path)
			if err != nil {
				t.Fatalf("%s/%s: info: %v", name, mode, err)
			}
			if info.N != g.N() || info.M != g.M() || info.Name != g.Name || info.Compressed != compress {
				t.Errorf("%s/%s: info = %+v, want n=%d m=%d name=%q compressed=%v",
					name, mode, info, g.N(), g.M(), g.Name, compress)
			}
		}
	}
}

func int32sEqual(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCSRMappedLoad pins the zero-copy contract on unix hosts: a raw
// file's arrays alias one read-only mapping whose size MappedBytes
// reports, and warm accessor paths allocate nothing.
func TestCSRMappedLoad(t *testing.T) {
	g := ForestUnion(500, 3, 9)
	path := filepath.Join(t.TempDir(), "g.csr")
	if err := WriteCSRFile(path, g, false); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCSR(path)
	if err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MappedBytes() != 0 && got.MappedBytes() != uint64(st.Size()) {
		t.Errorf("MappedBytes = %d, want 0 (fallback) or the file size %d", got.MappedBytes(), st.Size())
	}
	var sink int32
	allocs := testing.AllocsPerRun(100, func() {
		for u := 0; u < got.N(); u++ {
			for _, v := range got.Neighbors(u) {
				sink += v
			}
		}
	})
	if allocs != 0 {
		t.Errorf("warm neighbor scans allocate %.1f/op, want 0 (mapping happens once at load)", allocs)
	}
	_ = sink
}

// corrupt writes g to a raw in-memory CSR image and hands it to mutate
// before decoding, for negative tests against targeted corruption.
func corruptDecode(t *testing.T, g *Graph, compress bool, mutate func(data []byte)) error {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteCSR(&buf, g, compress); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	mutate(data)
	_, _, err := decodeCSR(data)
	return err
}

func TestCSRDecodeRejectsCorruption(t *testing.T) {
	g := ForestUnion(80, 2, 3)
	// The raw layout's section offsets, for targeted field corruption.
	nameLen := len(g.Name)
	offStart := csrHeaderSize + int(pad8(uint64(nameLen)))
	adjStart := offStart + int(pad8(4*uint64(g.N()+1)))

	cases := []struct {
		name     string
		compress bool
		mutate   func(data []byte)
	}{
		{"bad magic", false, func(d []byte) { d[0] = 'X' }},
		{"bad version", false, func(d []byte) { binary.LittleEndian.PutUint32(d[8:12], 99) }},
		{"bad flags", false, func(d []byte) { binary.LittleEndian.PutUint32(d[12:16], 0xff00) }},
		{"reserved set", false, func(d []byte) { d[44] = 1 }},
		{"huge n", false, func(d []byte) { binary.LittleEndian.PutUint64(d[16:24], 1<<40) }},
		{"huge m", false, func(d []byte) { binary.LittleEndian.PutUint64(d[24:32], 1<<40) }},
		{"name overrun", false, func(d []byte) { binary.LittleEndian.PutUint32(d[40:44], 1<<11) }},
		{"off overrun", false, func(d []byte) { binary.LittleEndian.PutUint64(d[56:64], 1<<50) }},
		{"non-monotone Off", false, func(d []byte) {
			binary.LittleEndian.PutUint32(d[offStart+4:], ^uint32(0)>>1) // Off[1] = MaxInt32
		}},
		{"out-of-range Adj", false, func(d []byte) {
			binary.LittleEndian.PutUint32(d[adjStart:], 1<<20)
		}},
		{"self-loop Adj", false, func(d []byte) {
			// Vertex 0's first neighbor becomes 0.
			binary.LittleEndian.PutUint32(d[adjStart:], 0)
		}},
		{"broken Rev", false, func(d []byte) {
			revStart := adjStart + int(pad8(4*uint64(2*g.M())))
			cur := binary.LittleEndian.Uint32(d[revStart:])
			binary.LittleEndian.PutUint32(d[revStart:], cur+1)
		}},
		{"compressed with Rev section", true, func(d []byte) {
			binary.LittleEndian.PutUint64(d[72:80], 8)
		}},
	}
	for _, tc := range cases {
		if err := corruptDecode(t, g, tc.compress, tc.mutate); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}

	// Every truncation of a valid image errors rather than panics or
	// over-reads (coarse stride keeps the test fast; the fuzzer sweeps the
	// rest).
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := WriteCSR(&buf, g, compress); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		for cut := 0; cut < len(data); cut += 37 {
			if _, _, err := decodeCSR(data[:cut]); err == nil {
				t.Fatalf("compress=%v: decode of %d/%d-byte prefix succeeded", compress, cut, len(data))
			}
		}
	}
}

// TestVerifyCSRFileCatchesBitrot flips one payload byte and expects the
// checksum audit (which LoadCSR deliberately skips) to catch it.
func TestVerifyCSRFileCatchesBitrot(t *testing.T) {
	g := Ring(64)
	path := filepath.Join(t.TempDir(), "ring.csr")
	if err := WriteCSRFile(path, g, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-6] ^= 1 // inside the Rev section
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyCSRFile(path); err == nil {
		t.Error("verify passed on a bit-flipped file")
	}

	// Trailing garbage is also rejected by verify.
	if err := WriteCSRFile(path, g, false); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(make([]byte, 16)); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := VerifyCSRFile(path); err == nil {
		t.Error("verify passed with trailing garbage")
	}
}

func TestCacheKeyCanonical(t *testing.T) {
	if got, want := CacheKey("forests", 4096, "a", 3, "seed", int64(7)), "forests|n=4096|a=3|seed=7"; got != want {
		t.Errorf("CacheKey = %q, want %q", got, want)
	}
	if got, want := CacheKey("ring", 100), "ring|n=100"; got != want {
		t.Errorf("CacheKey = %q, want %q", got, want)
	}
	// Same path, different spellings: one key.
	if FileKey("/tmp/a/../g.csr") != FileKey("/tmp/g.csr") {
		t.Error("FileKey does not canonicalize paths")
	}
	// File keys live outside the family namespace.
	if FileKey("ring") == CacheKey("ring", 100) {
		t.Error("file and family keys collide")
	}
	for _, tc := range []struct {
		name string
		bad  func()
	}{
		{"odd params", func() { CacheKey("x", 1, "a") }},
		{"non-string name", func() { CacheKey("x", 1, 3, 4) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: CacheKey did not panic", tc.name)
				}
			}()
			tc.bad()
		}()
	}
}

func TestMakeFamilyCoversCatalog(t *testing.T) {
	for _, fam := range Families {
		g, err := MakeFamily(fam, 50, 2, 1)
		if err != nil {
			t.Errorf("MakeFamily(%s): %v", fam, err)
			continue
		}
		if g.N() == 0 {
			t.Errorf("MakeFamily(%s): empty graph", fam)
		}
	}
	if _, err := MakeFamily("no-such-family", 10, 1, 1); err == nil {
		t.Error("unknown family accepted")
	}
}
