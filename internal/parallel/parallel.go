// Package parallel is the bounded worker pool behind the sweep
// scheduler: it fans independent, index-addressed run points out across a
// fixed number of goroutines while leaving result placement to the
// caller, so parallel and serial dispatch produce byte-identical output
// (results are collected by index, never by completion order).
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: req if positive, otherwise
// runtime.GOMAXPROCS(0), clamped to total (and to at least 1).
func Workers(req, total int) int {
	w := req
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > total {
		w = total
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach invokes f(i) exactly once for every i in [0, total),
// distributing indices across at most workers goroutines via an atomic
// cursor, and returns when every call has completed. With workers <= 1
// every call happens in index order on the calling goroutine, which is
// the serial baseline the equivalence tests compare against. f must
// confine its effects to per-index state (result slices indexed by i).
func ForEach(workers, total int, f func(int)) {
	if total <= 0 {
		return
	}
	if workers <= 1 {
		for i := 0; i < total; i++ {
			f(i)
		}
		return
	}
	if workers > total {
		workers = total
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= total {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}
