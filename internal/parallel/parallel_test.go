package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want clamp to 3", got)
	}
	if got := Workers(-2, 0); got != 1 {
		t.Errorf("Workers(-2, 0) = %d, want 1", got)
	}
	if got := Workers(5, 100); got != 5 {
		t.Errorf("Workers(5, 100) = %d, want 5", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const total = 500
		var hits [total]int32
		ForEach(workers, total, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", workers, i, h)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var got []int
	ForEach(1, 5, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("serial dispatch out of order: %v", got)
		}
	}
	ForEach(4, 0, func(int) { t.Fatal("f called for empty range") })
}
