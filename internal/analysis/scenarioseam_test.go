package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestScenarioseam(t *testing.T) {
	antest.Run(t, analysis.Scenarioseam, "testdata/scenarioseam")
}
