package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Import path of the fault layer whose seam this analyzer guards.
const scenarioPath = "vavg/internal/scenario"

// Scenarioseam enforces the two-sided independence contract between the
// fault layer and algorithm code (DESIGN.md §8). The fault layer's
// decision streams must be pure functions of (run seed, scenario seed) so
// the same spec replays byte-identically on every backend; algorithm
// behavior must be identical whether or not a scenario is attached. Two
// rules keep the sides apart:
//
//   - fault-layer code — any function with a parameter or receiver of a
//     type declared in internal/scenario — may not draw from api.Rand()
//     (the algorithm-side per-vertex PRNG) or the global math/rand
//     source; its randomness comes from the scenario PRNG streams.
//
//   - algorithm code may not import internal/scenario: a file that
//     declares vertex code (a function receiving *exec.API) must not see
//     the fault layer at all. Faults reach vertices only through the
//     compiled engine Adversary. The root vavg package is exempt — the
//     facade owns the seam and necessarily touches both sides.
var Scenarioseam = &Analyzer{
	Name: "scenarioseam",
	Doc:  "keeps fault-layer randomness on the scenario PRNG and the fault layer out of algorithm packages",
	Run:  runScenarioseam,
}

func runScenarioseam(pass *Pass) {
	for _, file := range pass.Files {
		checkScenarioImport(pass, file)
		for _, fn := range funcsIn(pass, file) {
			if !sigTouchesScenario(fn.sig) {
				continue
			}
			// Nested function literals are classified on their own
			// signatures: a vertex-code closure built inside seam code is
			// algorithm-side and exec's contracts apply to it instead.
			walkSkippingFuncLits(fn.body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if name, ok := apiMethod(pass.Info, call); ok && name == "Rand" {
					pass.Reportf(call.Pos(), "api.Rand() in fault-layer code; fault decisions must come from the scenario PRNG so they replay independently of algorithm randomness")
				}
				if path, name, ok := pkgFunc(pass.Info, call); ok && isGlobalRand(path, name) {
					pass.Reportf(call.Pos(), "global math/rand call %s.%s in fault-layer code; derive randomness from the scenario PRNG streams", path, name)
				}
				return true
			})
		}
	}
}

// checkScenarioImport flags an internal/scenario import in any file that
// also declares vertex code. The root facade package and the fault layer
// itself legitimately sit on the seam.
func checkScenarioImport(pass *Pass, file *ast.File) {
	switch pass.Pkg.Path() {
	case "vavg", scenarioPath:
		return
	}
	var imp *ast.ImportSpec
	for _, spec := range file.Imports {
		if path, err := strconv.Unquote(spec.Path.Value); err == nil && path == scenarioPath {
			imp = spec
			break
		}
	}
	if imp == nil {
		return
	}
	for _, fn := range funcsIn(pass, file) {
		if sigHasAPIParam(fn.sig) {
			pass.Reportf(imp.Pos(), "vertex code must not import %s; faults reach algorithms only through the compiled engine Adversary", scenarioPath)
			return
		}
	}
}

// sigTouchesScenario reports whether the signature carries a parameter or
// receiver of a type declared in internal/scenario — the marker of
// fault-layer code.
func sigTouchesScenario(sig *types.Signature) bool {
	if recv := sig.Recv(); recv != nil && typeFromScenario(recv.Type()) {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if typeFromScenario(params.At(i).Type()) {
			return true
		}
	}
	return false
}

func typeFromScenario(t types.Type) bool {
	if t == nil {
		return false
	}
	if s, ok := dePtr(t).(*types.Slice); ok {
		t = s.Elem()
	}
	n, ok := dePtr(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == scenarioPath
}
