package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Directives of the shard-ownership contract. //vavg:shardstate on a type
// declaration marks per-shard state whose fields are phase-owned;
// //vavg:shardmerge on a function marks a round-barrier merge routine
// that legitimately writes shards it does not own.
const (
	shardStateDirective = "//vavg:shardstate"
	shardMergeDirective = "//vavg:shardmerge"
)

// Shardseam enforces the contention-free sharding contract of the step
// backend (DESIGN.md §9): state marked //vavg:shardstate is owned by
// exactly one worker per phase, so it is written only through the owning
// shard's methods (via the receiver) or through //vavg:shardmerge
// functions running at the round barrier. Three rules keep the round hot
// path lock-free:
//
//   - a //vavg:shardstate struct may not declare sync or sync/atomic
//     fields — phase ownership, not locking, is the synchronization;
//
//   - fields of a shardstate type are written only through the method
//     receiver of one of its own methods, or inside a //vavg:shardmerge
//     function; any other write is a cross-shard (or coordinator) store
//     racing the owner;
//
//   - shardstate methods and shardmerge functions may not call into sync
//     or sync/atomic: a lock appearing inside the shard round path means
//     the phase-ownership argument no longer holds.
var Shardseam = &Analyzer{
	Name: "shardseam",
	Doc:  "confines //vavg:shardstate writes to owner methods and //vavg:shardmerge functions and keeps locks out of the shard round path",
	Run:  runShardseam,
}

func runShardseam(pass *Pass) {
	states := map[*types.TypeName]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if !hasDirective(doc, shardStateDirective) {
					continue
				}
				obj, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
				if obj == nil {
					continue
				}
				states[obj] = true
				checkShardFields(pass, ts)
			}
		}
	}
	if len(states) == 0 {
		return
	}
	for _, file := range pass.Files {
		for _, fn := range funcsIn(pass, file) {
			checkShardFunc(pass, states, fn)
		}
	}
}

// checkShardFields flags lock and atomic fields declared inside a
// shardstate struct.
func checkShardFields(pass *Pass, ts *ast.TypeSpec) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		return
	}
	for _, field := range st.Fields.List {
		t := pass.TypeOf(field.Type)
		if typeFromSyncPkg(t) {
			pass.Reportf(field.Pos(), "lock or atomic field in //vavg:shardstate struct %s; shard state is phase-owned, not locked", ts.Name.Name)
		}
	}
}

// checkShardFunc applies the write and call rules to one function.
func checkShardFunc(pass *Pass, states map[*types.TypeName]bool, fn funcInfo) {
	merge := false
	if decl, ok := fn.node.(*ast.FuncDecl); ok && hasDirective(decl.Doc, shardMergeDirective) {
		merge = true
	}
	var recv *types.Var
	if r := fn.sig.Recv(); r != nil && isShardState(states, r.Type()) {
		recv = r
	}
	inShardPath := merge || recv != nil
	walkSkippingFuncLits(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				checkShardWrite(pass, states, merge, recv, lhs)
			}
		case *ast.IncDecStmt:
			checkShardWrite(pass, states, merge, recv, n.X)
		case *ast.CallExpr:
			if !inShardPath {
				return true
			}
			if f, ok := calleeObj(pass.Info, n).(*types.Func); ok && f.Pkg() != nil {
				switch f.Pkg().Path() {
				case "sync", "sync/atomic":
					pass.Reportf(n.Pos(), "%s.%s call in the shard round path; shard state is synchronized by phase ownership, not locks", f.Pkg().Path(), f.Name())
				}
			}
		}
		return true
	})
}

// checkShardWrite flags a store whose target is a field of a shardstate
// type, unless the enclosing function is a shardmerge routine or the
// store goes through the receiver of one of the type's own methods.
func checkShardWrite(pass *Pass, states map[*types.TypeName]bool, merge bool, recv *types.Var, lhs ast.Expr) {
	sel := shardStateSel(pass, states, lhs)
	if sel == nil || merge {
		return
	}
	if recv != nil {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.Info.Uses[id] == recv {
			return
		}
	}
	owner := "its owning shard's methods"
	if recv != nil {
		owner = "the method receiver"
	}
	pass.Reportf(sel.Pos(), "write to shard state field %s outside %s; cross-shard stores go through a //vavg:shardmerge routine at the round barrier", sel.Sel.Name, owner)
}

// shardStateSel unwraps index, deref, and selector layers of a store
// target and returns the innermost selector whose base is a shardstate
// value, or nil.
func shardStateSel(pass *Pass, states map[*types.TypeName]bool, e ast.Expr) *ast.SelectorExpr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if isShardState(states, pass.TypeOf(x.X)) {
				return x
			}
			e = x.X
		default:
			return nil
		}
	}
}

// isShardState reports whether t (under one pointer) is a named type
// annotated //vavg:shardstate in this package.
func isShardState(states map[*types.TypeName]bool, t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := dePtr(t).(*types.Named)
	return ok && states[n.Obj()]
}

// typeFromSyncPkg reports whether t (under one pointer) is declared in
// sync or sync/atomic.
func typeFromSyncPkg(t types.Type) bool {
	if t == nil {
		return false
	}
	n, ok := dePtr(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	switch n.Obj().Pkg().Path() {
	case "sync", "sync/atomic":
		return true
	}
	return false
}
