// Fixture for the noglobalrand analyzer: vertex code may use only the
// per-vertex seeded PRNG, and non-test code may never draw from the
// global math/rand source.
package fixture

import (
	"math/rand"
	"time"

	"vavg/internal/engine/exec"
)

// vertexBad draws from the global source and the wall clock inside
// vertex code (the *exec.API parameter marks it).
func vertexBad(api *exec.API) any {
	if rand.Intn(2) == 0 { // want "global math/rand call"
		return time.Now() // want `time\.Now in vertex code`
	}
	return api.ID()
}

// vertexOK draws from the per-vertex PRNG.
func vertexOK(api *exec.API) any {
	return api.Rand().Int63()
}

// helperSeeded builds explicit generators — constructors never touch the
// global source and are accepted anywhere.
func helperSeeded(seed int64) int64 {
	r := rand.New(rand.NewSource(seed))
	return r.Int63()
}

// helperBad draws from the global source outside vertex code; in a
// non-test file that still breaks run-to-run reproducibility.
func helperBad() int {
	return rand.Int() // want "use a rand.New"
}

// vertexSuppressed shows the sanctioned escape hatch.
func vertexSuppressed(api *exec.API) any {
	//lint:ignore noglobalrand fixture: demonstrating an accepted suppression
	return rand.Int63()
}
