// Fixture for the stepcontract analyzer: step-form functions (those
// taking *exec.API and returning exec.Step) must never block and must
// return verdicts directly from constructor calls.
package fixture

import "vavg/internal/engine/exec"

// turnBlocks calls the goroutine-backend round APIs from a step turn.
func turnBlocks(api *exec.API, inbox []exec.Msg) exec.Step {
	api.Next()  // want `api\.Next blocks`
	api.Idle(3) // want `api\.Idle blocks`
	return exec.Done(nil)
}

// turnSpawns launches scheduling the step driver owns.
func turnSpawns(api *exec.API, inbox []exec.Msg) exec.Step {
	go spin() // want "goroutine launch in step-form code"
	return exec.Done(nil)
}

func spin() {}

// turnStored returns a stored verdict instead of a constructor call.
func turnStored(api *exec.API, inbox []exec.Msg) exec.Step {
	st := exec.Done(nil)
	return st // want "must come directly from Continue/Sleep/Done"
}

// turnOK is a well-formed turn: send, then cross rounds by verdict.
func turnOK(api *exec.API, inbox []exec.Msg) exec.Step {
	api.BroadcastInt(int64(api.ID()))
	return exec.Continue(turnOK)
}

// turnSuppressed shows the sanctioned escape hatch.
func turnSuppressed(api *exec.API, inbox []exec.Msg) exec.Step {
	//lint:ignore stepcontract fixture: demonstrating an accepted suppression
	api.Next()
	return exec.Done(nil)
}

// helperNotStepForm returns no Step, so the blocking rules do not apply.
func helperNotStepForm(api *exec.API) []exec.Msg {
	return api.Next()
}
