// Fixture for the detorder analyzer: map ranges whose iteration order
// can leak into results are flagged; order-insensitive idioms and
// deliberate suppressions are accepted.
package fixture

import "sort"

// keysUnsorted accumulates map keys and never sorts them: the slice's
// element order is Go's randomized iteration order.
func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want "appended in map-iteration order and never sorted"
	}
	return out
}

// keysSorted is the accepted collect-then-sort idiom.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// emit calls a side-effecting function per element: the call sequence is
// iteration-ordered.
func emit(m map[string]int, send func(int)) {
	for _, v := range m { // want "order-dependent effects"
		send(v)
	}
}

// emitWitness shows the sanctioned escape hatch for scans where any
// element is an equally valid result.
func emitWitness(m map[string]int, send func(int)) {
	//lint:ignore detorder fixture: any element is a valid witness, order is immaterial
	for _, v := range m {
		send(v)
	}
}

// sumAll is commutative integer aggregation — order-free.
func sumAll(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sumUntil mixes aggregation with a constant early exit: the exit point
// decides how many additions ran, so the aggregate is order-dependent.
func sumUntil(m map[string]int, total *int) bool {
	for _, v := range m {
		*total += v
		if v > 10 {
			return true // want "early exit from a map range that also mutates state"
		}
	}
	return false
}

// minValue is the accepted strict-selection idiom: the minimum is the
// same whatever order the loop visits.
func minValue(m map[string]int) int {
	best := int(^uint(0) >> 1)
	for _, v := range m {
		if v < best {
			best = v
		}
	}
	return best
}

// invert writes each entry once, keyed by the iteration variables.
func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}
