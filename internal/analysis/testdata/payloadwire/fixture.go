// Fixture for the payloadwire analyzer: concrete types entering the any
// message lane must be wire-codable — structurally, or via a registered
// internal/wire codec.
package fixture

import (
	"vavg/internal/engine/exec"
	"vavg/internal/wire"
)

// goodPayload bottoms out in integers and slices: structurally codable.
type goodPayload struct {
	Round  int32
	Labels []int32
}

// badPointer carries a pointer into the sender's address space.
type badPointer struct {
	Peer *goodPayload
}

// badMap carries a map with no canonical byte order and no codec.
type badMap struct {
	Labels map[int32]int32
}

// codecPayload carries a map too, but registers a codec below, which
// licenses it on the lane.
type codecPayload struct {
	Labels map[int32]int32
}

func init() {
	wire.Register(wire.Codec[codecPayload]{
		Name: "fixture.codecPayload",
		Encode: func(buf []byte, v codecPayload) []byte {
			return wire.AppendSortedInt32Map(buf, v.Labels)
		},
		Decode: func(buf []byte) (codecPayload, int, error) {
			m, n, err := wire.DecodeSortedInt32Map(buf, 1<<16)
			return codecPayload{Labels: m}, n, err
		},
	})
}

func sendGood(api *exec.API, p goodPayload) {
	api.Send(0, p)
}

func sendPointer(api *exec.API, p badPointer) {
	api.Send(0, p) // want `payload type .*badPointer enters the any message lane but cannot cross a wire: field Peer: pointer`
}

// viaHelper shows the closure crossing a helper: the payload enters the
// lane at the helper's parameter, and the type is still resolved here.
func viaHelper(api *exec.API, b badMap) {
	forward(api, b) // want `payload type .*badMap enters the any message lane but cannot cross a wire: field Labels: map`
}

func forward(api *exec.API, v any) {
	api.Broadcast(v)
}

func sendWithCodec(api *exec.API, p codecPayload) {
	api.Broadcast(p)
}

// program returns through the Program shape: the output lands in
// Result.Output, which is lane traffic too. A chan can never cross.
func program(ch chan int32) func(*exec.API) any {
	return func(api *exec.API) any {
		return ch // want `payload type chan int32 enters the any message lane but cannot cross a wire`
	}
}
