// Fixture for the detflow analyzer: determinism taint must not reach a
// message send, adversary hashing, or a Result — including through a
// helper call, which is what the single-function analyzers cannot see.
package fixture

import (
	"sort"
	"time"

	"vavg/internal/engine/exec"
)

// rawKeys returns map keys in iteration order: its summary records
// an order-tainted result, so every caller inherits the taint.
func rawKeys(m map[int32]int32) []int32 {
	var out []int32
	for k := range m {
		out = append(out, k)
	}
	return out
}

// sortedKeys is the sanctioned collect-then-sort helper: sorting clears
// the order taint, so its summary is clean.
func sortedKeys(m map[int32]int32) []int32 {
	var out []int32
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// broadcastKeys receives a tainted value FROM A CALLEE and sends it: the
// violation detorder misses through one level of indirection.
func broadcastKeys(api *exec.API, m map[int32]int32) {
	ks := rawKeys(m)
	api.Broadcast(ks) // want "map-iteration-order-tainted value reaches an api.Broadcast payload"
}

// broadcastSorted is the accepted cross-function idiom: the callee
// sanitizes before returning.
func broadcastSorted(api *exec.API, m map[int32]int32) {
	api.Broadcast(sortedKeys(m))
}

// sortAfterCollect sanitizes locally after an order-tainted call.
func sortAfterCollect(api *exec.API, m map[int32]int32) {
	ks := rawKeys(m)
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	api.Broadcast(ks)
}

// relay forwards its argument to a send: its summary marks the parameter
// as sink-forwarded, so tainted arguments are flagged at the call site.
func relay(api *exec.API, v any) {
	api.Broadcast(v)
}

// broadcastViaRelay passes a tainted value into a sink-forwarding helper.
func broadcastViaRelay(api *exec.API, m map[int32]int32) {
	ks := rawKeys(m)
	relay(api, ks) // want `reaches an api\.Broadcast payload \(forwarded by relay\)`
}

// clockToResult writes wall-clock data into a Result field: Results are
// the byte-compared observable, so the value must be run-independent.
func clockToResult(res *exec.Result) {
	res.TotalRounds = int(time.Now().UnixNano()) // want "non-PRNG-randomness-tainted value reaches Result.TotalRounds"
}

// hashTainted feeds a nondeterministic value to adversary hashing, which
// reshuffles which deliveries are dropped.
func hashTainted() uint64 {
	x := uint64(time.Now().UnixNano())
	return exec.Mix64(x) // want "non-PRNG-randomness-tainted value reaches adversary hashing"
}

// auditedException carries a reviewed suppression: the finding is
// recorded as suppressed and does not gate.
func auditedException(api *exec.API, m map[int32]int32) {
	ks := rawKeys(m)
	//lint:ignore detflow fixture-audited: order is re-canonicalized by the receiver before use
	api.Broadcast(ks)
}

// programOutput returns from a Program-shaped function: the value lands
// in Result.Output, so taint is flagged at the return.
func programOutput(m map[int32]int32) func(*exec.API) any {
	return func(api *exec.API) any {
		ks := rawKeys(m)
		return ks // want "map-iteration-order-tainted value reaches the Program output"
	}
}
