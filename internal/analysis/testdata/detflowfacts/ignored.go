// Package fixture pins the suppression/fact interaction: a file-wide
// ignore silences diagnostics IN this file without changing the facts its
// functions export, so callers elsewhere are still checked against what
// these functions actually do.
//
//lint:file-ignore detflow fixture: this file is exempt, but its functions must still export real facts
package fixture

import "vavg/internal/engine/exec"

// taintedKeys is order-tainted; the file-ignore must not launder its
// summary.
func taintedKeys(m map[int32]int32) []int32 {
	var out []int32
	for k := range m {
		out = append(out, k)
	}
	return out
}

// localViolation would be a finding, but the file-ignore suppresses it —
// suppression applies at the reporting site only.
func localViolation(api *exec.API, m map[int32]int32) {
	api.Broadcast(taintedKeys(m))
}
