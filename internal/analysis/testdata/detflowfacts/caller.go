package fixture

import "vavg/internal/engine/exec"

// crossFileViolation calls into the file-ignored file: the callee's
// summary still says "order-tainted result", so the send here is flagged
// even though the callee's own file is exempt.
func crossFileViolation(api *exec.API, m map[int32]int32) {
	ks := taintedKeys(m)
	api.Broadcast(ks) // want "map-iteration-order-tainted value reaches an api.Broadcast payload"
}
