// Fixture for the hotpath analyzer: functions carrying the
// //vavg:hotpath directive must stay allocation-free.
package fixture

import "fmt"

func sink(v any) {}

// hotAllocs commits every flagged construct at once.
//
//vavg:hotpath
func hotAllocs(xs []int) []int {
	seen := map[int]bool{} // want "map literal allocates"
	fmt.Println(len(seen)) // want "fmt call allocates"
	var out []int
	for _, x := range xs {
		out = append(out, x) // want "no reserved capacity"
	}
	return out
}

// hotBoxes passes a concrete value to an interface parameter — the
// implicit conversion allocates.
//
//vavg:hotpath
func hotBoxes(x int) {
	sink(x) // want "boxes int into interface parameter"
}

// hotCapped appends into a parameter and a preallocated slice — both
// trusted by the engine's reuse discipline.
//
//vavg:hotpath
func hotCapped(xs []int, out []int) []int {
	tmp := make([]int, 0, len(xs))
	for _, x := range xs {
		tmp = append(tmp, x)
	}
	for _, x := range tmp {
		out = append(out, x)
	}
	return out
}

// hotGuard formats rich context on a panic path: error guards ending in
// panic are cold by construction and exempt.
//
//vavg:hotpath
func hotGuard(k, n int) {
	if k < 0 || k >= n {
		panic(fmt.Sprintf("index %d out of range [0,%d)", k, n))
	}
}

// hotSuppressed shows the sanctioned escape hatch.
//
//vavg:hotpath
func hotSuppressed() map[int]bool {
	//lint:ignore hotpath fixture: setup path, runs once per run
	return map[int]bool{}
}

// coldUnannotated is outside the contract: no directive, no checks.
func coldUnannotated() map[int]bool {
	fmt.Println("cold")
	return map[int]bool{}
}
