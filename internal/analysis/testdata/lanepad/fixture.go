// Package fixture exercises the lanepad analyzer: //vavg:lane staging
// headers must be exact cache-line multiples, carry no sync or atomic
// fields, and export nothing. Field pads assume a 64-bit gc target
// (24-byte slice headers), the only layout this repository builds for.
package fixture

import (
	"sync"
	"sync/atomic"
)

// good is a correctly padded lane: one unexported cursor plus explicit
// padding to the 64-byte line.
//
//vavg:lane
type good struct {
	buf []int32
	_   [40]byte
}

// short lost its padding — 24 bytes, so adjacent headers share a line.
//
//vavg:lane
type short struct { // want "not a multiple of the 64-byte cache line"
	buf []int32
}

// locked pads correctly but smuggles synchronization into the header.
//
//vavg:lane
type locked struct {
	mu  sync.Mutex   // want "lock or atomic field in //vavg:lane struct locked"
	n   atomic.Int64 // want "lock or atomic field in //vavg:lane struct locked"
	buf []int32
	_   [24]byte
}

// leaky exports its cursor, inviting writers outside the owning package.
//
//vavg:lane
type leaky struct {
	Buf []int32 // want "exported field Buf in //vavg:lane struct leaky"
	_   [40]byte
}

// alias misuses the directive on a non-struct type.
//
//vavg:lane
type alias int32 // want "//vavg:lane on non-struct type alias"

// legacy is tolerated by an audited suppression: it is only ever
// allocated alone, never as an element of a lane array, so false
// sharing between instances cannot arise.
//
//vavg:lane
//lint:ignore lanepad fixture: demonstrating an accepted suppression
type legacy struct {
	buf []int32
	n   int
}

// plain is a padded struct without the directive; no contract, no finding.
type plain struct {
	Mu sync.Mutex
}
