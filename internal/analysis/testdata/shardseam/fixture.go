// Package fixture exercises the shardseam analyzer: phase-owned shard
// state must be written only through its own methods' receiver or a
// //vavg:shardmerge routine, must not carry locks, and its round path
// must not call into sync or sync/atomic.
package fixture

import "sync"

// shard is the per-shard state of a staged-lane round engine.
//
//vavg:shardstate
type shard struct {
	lo      int32
	pending []int32
	mu      sync.Mutex // want "lock or atomic field in //vavg:shardstate struct shard"
}

// plain carries a mutex but is not shard state; no finding.
type plain struct {
	mu sync.Mutex
}

// note writes through the receiver: the owner path, allowed.
func (s *shard) note(v int32) {
	s.pending = append(s.pending, v)
}

// steal writes a foreign shard from inside an owner method: a cross-shard
// store racing that shard's owner.
func (s *shard) steal(other *shard) {
	other.pending = append(other.pending, s.lo) // want "write to shard state field pending outside the method receiver"
}

// lock drags a lock into the shard round path.
func (s *shard) lock() {
	s.mu.Lock()         // want "sync.Lock call in the shard round path"
	defer s.mu.Unlock() // want "sync.Unlock call in the shard round path"
	s.lo++
}

// drain is coordinator code writing shard fields directly instead of
// going through the shard's methods or a merge routine.
func drain(s *shard) {
	s.pending = s.pending[:0] // want "write to shard state field pending outside its owning shard's methods"
}

// merge is the sanctioned cross-shard path: it runs at the round barrier
// while no owner is active.
//
//vavg:shardmerge
func merge(dst *shard, src []int32) {
	dst.pending = append(dst.pending, src...)
}

// reset is tolerated by an audited suppression: the caller guarantees the
// engine is quiescent.
func reset(s *shard) {
	//lint:ignore shardseam fixture: demonstrating an accepted suppression
	s.lo = 0
}

// outside touches only non-shard state; sync use is fine here.
func outside(p *plain) {
	p.mu.Lock()
	defer p.mu.Unlock()
}
