// Fixture for the wiretag analyzer: fast-lane payloads must tag through
// wire.Pack with constants declared in the wire package.
package fixture

import (
	"vavg/internal/engine/exec"
	"vavg/internal/wire"
)

// localTag is exactly the kind of hand-rolled tag that collides with
// present or future message families.
const localTag = 9

// sendAdHocTag packs with a constant the wire package never issued.
func sendAdHocTag(api *exec.API, c int64) {
	api.SendInt(0, wire.Pack(localTag, c)) // want `wire\.Pack tag must be a wire\.Tag\* constant`
}

// sendTagBits sets the tag byte without going through wire.Pack.
func sendTagBits(api *exec.API) {
	api.BroadcastInt(1 << 60) // want "tag bits set"
}

// sendShifted hand-packs a variable into the tag byte.
func sendShifted(api *exec.API, x int64) {
	api.SendIDInt(3, x<<56|5) // want "hand-packs the tag byte"
}

// sendOK tags through the wire constants; raw payloads below the tag
// byte are legal by design.
func sendOK(api *exec.API, c int64) {
	api.SendInt(0, wire.Pack(wire.TagColor, c))
	api.BroadcastInt(12345)
}

// sendSuppressed shows the sanctioned escape hatch for deliberate raw
// lane traffic.
func sendSuppressed(api *exec.API) {
	//lint:ignore wiretag fixture: raw negative payload exercising the full lane width
	api.SendInt(0, -1)
}
