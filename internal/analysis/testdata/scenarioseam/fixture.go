// Fixture for the scenarioseam analyzer: fault-layer code draws
// randomness only from the scenario PRNG, and files holding vertex code
// never import the fault layer.
package fixture

import (
	"math/rand"

	"vavg/internal/engine/exec"
	"vavg/internal/scenario" // want "vertex code must not import vavg/internal/scenario"
)

// sampleBad decides a fault inside fault-layer code (the *scenario.Spec
// parameter marks it) from the algorithm-side per-vertex PRNG: the fault
// pattern would change with the algorithm's own draws.
func sampleBad(s *scenario.Spec, api *exec.API) bool {
	return api.Rand().Float64() < s.Drop // want `api\.Rand\(\) in fault-layer code`
}

// sampleWorse reaches for the global source instead; the replay would
// depend on whatever else the process drew first.
func sampleWorse(s *scenario.Spec) bool {
	return rand.Float64() < s.Drop // want "global math/rand call math/rand.Float64 in fault-layer code"
}

// sampleOK derives the decision from the scenario PRNG stream.
func sampleOK(s *scenario.Spec, p *scenario.PRNG) bool {
	return p.Float64() < s.Drop
}

// crashCount shows the sanctioned escape hatch for seam code with a
// reviewed reason.
func crashCount(crashes []scenario.Crash) int {
	//lint:ignore scenarioseam fixture: demonstrating an accepted suppression
	return rand.Intn(len(crashes) + 1)
}

// vertexCode is why the import above is flagged: this file declares
// algorithm-side code, so the fault layer must stay invisible to it.
func vertexCode(api *exec.API) any {
	return api.ID()
}

// frozenWrapper is seam plumbing: a vertex-code closure built inside a
// fault-layer function. The closure is algorithm-side, so its api.Rand()
// use is legal here (exec's own contracts govern it).
func frozenWrapper(s *scenario.Spec) func(api *exec.API) any {
	return func(api *exec.API) any {
		return api.Rand().Int63()
	}
}
