package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestDetflow(t *testing.T) {
	antest.Run(t, analysis.Detflow, "testdata/detflow")
}

// TestDetflowFileIgnoreExportsFacts pins the suppression/fact contract:
// //lint:file-ignore silences findings in its own file but the file's
// functions still export real summaries, so cross-file callers are
// flagged (the want expectation lives in the caller's file).
func TestDetflowFileIgnoreExportsFacts(t *testing.T) {
	antest.Run(t, analysis.Detflow, "testdata/detflowfacts")
}
