package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Stepcontract enforces the step backend's execution model on step-form
// code: any function that takes the *exec.API handle and produces an
// exec.Step verdict (StepFns themselves and the Start* sub-machine
// helpers). The step driver invokes these on a shard worker with no
// per-vertex goroutine, so a turn must run to completion without ever
// blocking, and it must cross rounds only by returning a verdict:
//
//   - api.Next and api.Idle are forbidden — they park a goroutine the
//     step backend does not have; the step forms are Continue and Sleep;
//   - goroutine launches, channel operations, select, time.Sleep, and
//     sync.WaitGroup.Wait are forbidden for the same reason;
//   - every return must produce its verdict directly from a call —
//     Continue(...), Sleep(...), Done(...), or a sub-machine helper —
//     never from a stored Step value, which hides which constructor ran
//     and defeats the nil-StepFn panics guarding Continue and Sleep.
var Stepcontract = &Analyzer{
	Name:     "stepcontract",
	Doc:      "step-form programs must not block and must return verdicts from Continue/Sleep/Done",
	Run:      runStepcontract,
	SkipPkgs: []string{execPath, "vavg/internal/engine"},
}

func runStepcontract(pass *Pass) {
	for _, file := range pass.Files {
		for _, fn := range funcsIn(pass, file) {
			if !sigIsStepForm(fn.sig) {
				continue
			}
			checkNoBlocking(pass, fn)
			checkVerdictReturns(pass, fn)
		}
	}
}

// checkNoBlocking flags blocking constructs in the turn body. Nested
// function literals that are themselves step-form are skipped — they are
// separate turns, visited on their own — but plain closures stay in
// scope: they run inside this turn.
func checkNoBlocking(pass *Pass, fn funcInfo) {
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if sig, ok := pass.TypeOf(n).(*types.Signature); ok && sigIsStepForm(sig) && n != fn.node {
				return false
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in step-form code; the step driver owns all scheduling")
		case *ast.SelectStmt:
			pass.Reportf(n.Pos(), "select in step-form code blocks the shard driver")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send in step-form code can block the shard driver")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pass.Reportf(n.Pos(), "channel receive in step-form code can block the shard driver")
			}
		case *ast.CallExpr:
			if name, ok := apiMethod(pass.Info, n); ok && (name == "Next" || name == "Idle") {
				verb := "Continue(next)"
				if name == "Idle" {
					verb = "Sleep(k, next)"
				}
				pass.Reportf(n.Pos(), "api.%s blocks and only the goroutine backends support it; a step turn crosses rounds by returning %s", name, verb)
				return true
			}
			if path, name, ok := pkgFunc(pass.Info, n); ok && path == "time" && name == "Sleep" {
				pass.Reportf(n.Pos(), "time.Sleep in step-form code stalls the whole shard; return Sleep(k, next) to wait counted rounds")
				return true
			}
			if fnObj, ok := calleeObj(pass.Info, n).(*types.Func); ok && fnObj.Pkg() != nil &&
				fnObj.Pkg().Path() == "sync" && fnObj.Name() == "Wait" {
				pass.Reportf(n.Pos(), "sync wait in step-form code blocks the shard driver")
			}
		}
		return true
	})
}

// checkVerdictReturns inspects the return statements that belong to fn
// itself (not to nested literals) and requires each returned Step to be
// produced by a call.
func checkVerdictReturns(pass *Pass, fn funcInfo) {
	walkSkippingFuncLits(fn.body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if !isNamed(pass.TypeOf(res), execPath, "Step") {
				continue
			}
			if _, isCall := ast.Unparen(res).(*ast.CallExpr); !isCall {
				pass.Reportf(res.Pos(), "step verdict must come directly from Continue/Sleep/Done (or a helper call), not from a stored %s value", exprString(pass.Fset, res))
			}
		}
		return true
	})
}
