package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestDetorder(t *testing.T) {
	antest.Run(t, analysis.Detorder, "testdata/detorder")
}
