// Package analysis is vavglint's static-analysis core: a small, offline
// re-implementation of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus the package loader and the directive
// conventions the suite understands. The module has no third-party
// dependencies, so the framework is built on go/ast, go/types, and the
// export data the go command already produces (see load.go).
//
// The suite exists because every result in this reproduction rests on
// invariants the compiler cannot see: equal seeds must produce
// byte-identical Results across the goroutines, pool, and step backends,
// which requires that no algorithm's behavior depends on map-iteration
// order, global PRNG state, or wall-clock time, that step-form programs
// never block, and that the message hot path stays allocation-free. The
// analyzers move those contracts from the dynamic equivalence suite to
// compile time.
//
// Two comment directives are recognized:
//
//   - //lint:ignore <analyzer> <reason> — placed on the flagged line or on
//     the line directly above it, suppresses that analyzer's diagnostics
//     for the statement. //lint:file-ignore <analyzer> <reason> at the top
//     of a file suppresses the analyzer for the whole file. A reason is
//     mandatory; bare suppressions are reported as findings themselves.
//
//   - //vavg:hotpath in a function's doc comment opts the function into
//     the hotpath analyzer's allocation checks.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// An Analyzer describes one vavglint check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and //lint:ignore
	// directives.
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run inspects one package and reports findings through the Pass.
	Run func(*Pass)
	// SkipPkgs lists import paths the analyzer never inspects (typically
	// the package that implements the contract being enforced).
	SkipPkgs []string
	// NeedsFacts marks an interprocedural analyzer: before any unit runs,
	// RunAnalyzers computes module-wide function summaries (facts.go) over
	// every loaded unit and exposes them through Pass.Facts.
	NeedsFacts bool
}

// A Pass connects an Analyzer to one type-checked package unit.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Facts is the module-wide interprocedural fact store, non-nil only
	// when the analyzer set includes one with NeedsFacts. It is shared and
	// read-only during analyzer application.
	Facts *Facts

	suppr *suppressions
	diags *[]Diagnostic
}

// A Diagnostic is one finding, addressed by source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Suppressed marks a finding covered by a //lint:ignore or
	// //lint:file-ignore directive. Suppressed findings never gate (text
	// output, exit status, and the clean-tree tests all filter them) but
	// are retained so machine consumers (-json) can audit suppression
	// state.
	Suppressed bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding at pos; if a //lint:ignore directive for this
// analyzer covers the position the finding is recorded as suppressed.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Pos:        position,
		Analyzer:   p.Analyzer.Name,
		Message:    fmt.Sprintf(format, args...),
		Suppressed: p.suppr.covers(p.Analyzer.Name, position),
	})
}

// TypeOf is shorthand for Pass.Info.TypeOf.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// suppressions indexes //lint:ignore and //lint:file-ignore directives of
// one package unit by file and line.
type suppressions struct {
	fset *token.FileSet
	// byLine maps filename -> line -> analyzer names suppressed on that
	// line (a "*" entry suppresses every analyzer).
	byLine map[string]map[int][]string
	// byFile maps filename -> analyzer names suppressed file-wide.
	byFile map[string][]string
	// malformed holds directives missing a reason; RunAnalyzers reports
	// them as findings so suppressions stay auditable.
	malformed []Diagnostic
}

const (
	ignoreDirective     = "//lint:ignore"
	fileIgnoreDirective = "//lint:file-ignore"
)

func newSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{
		fset:   fset,
		byLine: map[string]map[int][]string{},
		byFile: map[string][]string{},
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.add(c)
			}
		}
	}
	return s
}

func (s *suppressions) add(c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	var fileWide bool
	switch {
	case strings.HasPrefix(text, fileIgnoreDirective):
		fileWide = true
		text = strings.TrimPrefix(text, fileIgnoreDirective)
	case strings.HasPrefix(text, ignoreDirective):
		text = strings.TrimPrefix(text, ignoreDirective)
	default:
		return
	}
	pos := s.fset.Position(c.Pos())
	fields := strings.Fields(text)
	if len(fields) < 2 {
		s.malformed = append(s.malformed, Diagnostic{
			Pos:      pos,
			Analyzer: "vavglint",
			Message:  "lint:ignore directive needs an analyzer name and a reason",
		})
		return
	}
	name := fields[0]
	if fileWide {
		s.byFile[pos.Filename] = append(s.byFile[pos.Filename], name)
		return
	}
	lines := s.byLine[pos.Filename]
	if lines == nil {
		lines = map[int][]string{}
		s.byLine[pos.Filename] = lines
	}
	// A directive covers its own line (trailing comment) and the line
	// below it (leading comment on the preceding line).
	lines[pos.Line] = append(lines[pos.Line], name)
	lines[pos.Line+1] = append(lines[pos.Line+1], name)
}

func (s *suppressions) covers(analyzer string, pos token.Position) bool {
	for _, name := range s.byFile[pos.Filename] {
		if name == analyzer || name == "*" {
			return true
		}
	}
	for _, name := range s.byLine[pos.Filename][pos.Line] {
		if name == analyzer || name == "*" {
			return true
		}
	}
	return false
}

// RunAnalyzers applies every analyzer to every package unit and returns
// the findings (suppressed ones included, marked) sorted by position.
// Units are analyzed concurrently on GOMAXPROCS workers; see
// RunAnalyzersN.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) []Diagnostic {
	return RunAnalyzersN(analyzers, pkgs, 0)
}

// RunAnalyzersN is RunAnalyzers on a bounded worker pool: units are
// analyzed concurrently by up to workers goroutines (0 means GOMAXPROCS),
// each into its own slot, and the merged findings are sorted into
// (file, line, column, analyzer) order — byte-identical output for every
// worker count. If any analyzer declares NeedsFacts, the module-wide fact
// store is computed first, serially, over every unit. Malformed
// suppression directives are themselves reported once per unit.
func RunAnalyzersN(analyzers []*Analyzer, pkgs []*Package, workers int) []Diagnostic {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var facts *Facts
	for _, a := range analyzers {
		if a.NeedsFacts {
			facts = ComputeFacts(pkgs)
			break
		}
	}
	perUnit := make([][]Diagnostic, len(pkgs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, pkg := range pkgs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, pkg *Package) {
			defer wg.Done()
			defer func() { <-sem }()
			var diags []Diagnostic
			suppr := newSuppressions(pkg.Fset, pkg.Syntax)
			diags = append(diags, suppr.malformed...)
			for _, a := range analyzers {
				if skipPkg(a, pkg.Types.Path()) {
					continue
				}
				pass := &Pass{
					Analyzer: a,
					Fset:     pkg.Fset,
					Files:    pkg.Syntax,
					Pkg:      pkg.Types,
					Info:     pkg.TypesInfo,
					Facts:    facts,
					suppr:    suppr,
					diags:    &diags,
				}
				a.Run(pass)
			}
			perUnit[i] = diags
		}(i, pkg)
	}
	wg.Wait()
	var diags []Diagnostic
	for _, d := range perUnit {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	// Nested constructs (a map range inside a map range) can surface the
	// same finding twice; keep one.
	deduped := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		deduped = append(deduped, d)
	}
	return deduped
}

// Active filters out suppressed findings: the gating subset of a
// RunAnalyzers result.
func Active(diags []Diagnostic) []Diagnostic {
	out := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

func skipPkg(a *Analyzer, path string) bool {
	for _, skip := range a.SkipPkgs {
		if path == skip {
			return true
		}
	}
	return false
}

// hasDirective reports whether the comment group contains the given
// //-directive (e.g. "//vavg:hotpath"), alone or followed by text.
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
