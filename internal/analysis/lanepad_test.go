package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestLanepad(t *testing.T) {
	antest.Run(t, analysis.Lanepad, "testdata/lanepad")
}
