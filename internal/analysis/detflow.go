package analysis

import (
	"fmt"
	"go/token"
	"go/types"
)

// Detflow is the interprocedural determinism analyzer. Where detorder and
// noglobalrand flag nondeterminism at its source, detflow follows the
// VALUE: map-iteration-order, non-PRNG-randomness, and address taints are
// propagated through assignments, composites, and — via the module-wide
// function summaries (facts.go) — across call boundaries. A tainted value
// is reported when it reaches a determinism sink:
//
//   - a message send (api.Send / SendID / SendInt / SendIDInt /
//     Broadcast / BroadcastInt argument — payload or target),
//   - adversary hashing (exec.Mix64 input: a tainted input reshuffles
//     which deliveries the adversary drops),
//   - a Result field write or Result literal, or a Program-shaped
//     function's return value (stored in Result.Output),
//   - exec.Done's step output,
//   - a call argument that the callee's summary says is forwarded to any
//     of the above (this is the case the single-function analyzers miss).
//
// Sorting a collected slice clears its order taint: collect-then-sort is
// the sanctioned idiom (see detorder). Test files are skipped — their
// inline programs are certified dynamically by the equivalence suites.
var Detflow = &Analyzer{
	Name:       "detflow",
	Doc:        "interprocedural taint: nondeterministic values must not reach messages, Results, or adversary hashing",
	Run:        runDetflow,
	NeedsFacts: true,
}

func runDetflow(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	for _, file := range pass.Files {
		if isTestFile(pass.Fset, file) {
			continue
		}
		for _, fn := range funcsIn(pass, file) {
			s := &taintScope{
				info:       pass.Info,
				fset:       pass.Fset,
				facts:      pass.Facts,
				sig:        fn.sig,
				progShaped: sigIsProgramShape(fn.sig),
				// Diagnostic mode: parameters start clean; cross-function
				// flows are caught at the call site via summaries.
				params: map[types.Object]int{},
				vars:   map[types.Object]taintVal{},
				report: func(pos token.Pos, sink string, tv taintVal) {
					src := ""
					if tv.src.IsValid() {
						p := pass.Fset.Position(tv.src)
						src = fmt.Sprintf(" (source at line %d)", p.Line)
					}
					pass.Reportf(pos, "%s-tainted value reaches %s%s; sort collected keys, use api.Rand(), or drop the address identity",
						taintWords(tv.kinds), sink, src)
				},
			}
			s.run(fn.body)
		}
	}
}
