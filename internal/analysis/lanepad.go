package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
)

// laneDirective marks a struct as a cache-line-padded staging-lane
// header (see the step backend's lane type).
const laneDirective = "//vavg:lane"

// laneCacheLine is the coherence-granule size the padding contract
// assumes, matching the engine's cacheLine constant.
const laneCacheLine = 64

// Lanepad enforces the false-sharing contract of //vavg:lane structs
// (DESIGN.md §11): lane headers are laid out in dense arrays indexed by
// (source shard, destination shard) and their append cursors are bumped
// concurrently by distinct workers, so
//
//   - a lane struct's size must be an exact cache-line multiple — one
//     byte short and adjacent headers share a line, turning every
//     concurrent append into coherence ping-pong (the compile-time size
//     assertion next to the type catches drift in that one package; the
//     analyzer catches every package);
//
//   - it may not declare sync or sync/atomic fields — lanes are
//     single-writer per phase by construction, and a lock or atomic in
//     the header reintroduces exactly the shared-line traffic the
//     padding removes;
//
//   - it may not export fields — an exported cursor invites writers
//     outside the owning package, which cannot see the phase-ownership
//     argument that makes unsynchronized appends sound.
//
// Sizes are computed for the gc compiler on the host architecture, the
// only toolchain this repository targets.
var Lanepad = &Analyzer{
	Name: "lanepad",
	Doc:  "keeps //vavg:lane staging-lane headers cache-line padded, lock-free, and unexported",
	Run:  runLanepad,
}

func runLanepad(pass *Pass) {
	// Pass carries no TypesSizes (the offline loader does not thread them
	// through), so size the structs the way the gc compiler will.
	sizes := types.SizesFor("gc", runtime.GOARCH)
	if sizes == nil {
		sizes = types.SizesFor("gc", "amd64")
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if !hasDirective(doc, laneDirective) {
					continue
				}
				checkLaneType(pass, sizes, ts)
			}
		}
	}
}

func checkLaneType(pass *Pass, sizes types.Sizes, ts *ast.TypeSpec) {
	st, ok := ts.Type.(*ast.StructType)
	if !ok {
		pass.Reportf(ts.Pos(), "//vavg:lane on non-struct type %s; the padding contract applies to staging-lane header structs", ts.Name.Name)
		return
	}
	for _, field := range st.Fields.List {
		if typeFromSyncPkg(pass.TypeOf(field.Type)) {
			pass.Reportf(field.Pos(), "lock or atomic field in //vavg:lane struct %s; lanes are single-writer per phase, and synchronization in the header defeats the padding", ts.Name.Name)
		}
		for _, name := range field.Names {
			if name.IsExported() {
				pass.Reportf(name.Pos(), "exported field %s in //vavg:lane struct %s; lane cursors stay package-private so no outside writer can touch a padded line", name.Name, ts.Name.Name)
			}
		}
	}
	obj, _ := pass.Info.Defs[ts.Name].(*types.TypeName)
	if obj == nil {
		return
	}
	if sz := sizes.Sizeof(obj.Type().Underlying()); sz%laneCacheLine != 0 {
		pass.Reportf(ts.Pos(), "//vavg:lane struct %s is %d bytes, not a multiple of the %d-byte cache line; adjacent lane headers will false-share", ts.Name.Name, sz, laneCacheLine)
	}
}
