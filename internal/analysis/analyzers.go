package analysis

import "fmt"

// All returns the full vavglint suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{Detorder, Noglobalrand, Stepcontract, Wiretag, Hotpath, Scenarioseam, Shardseam, Lanepad, Detflow, Payloadwire}
}

// ByName resolves a comma-separable analyzer name.
func ByName(name string) (*Analyzer, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("analysis: unknown analyzer %q (available: detorder, noglobalrand, stepcontract, wiretag, hotpath, scenarioseam, shardseam, lanepad, detflow, payloadwire)", name)
}
