package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestHotpath(t *testing.T) {
	antest.Run(t, analysis.Hotpath, "testdata/hotpath")
}
