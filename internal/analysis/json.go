package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// diagJSON is the machine-readable form of one finding: one object per
// line (JSON Lines), so CI and editors can consume findings without
// scraping text. File paths are emitted relative to baseDir (the module
// root) with forward slashes, which is both stable across checkouts and
// the format GitHub workflow annotations expect.
type diagJSON struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

// WriteJSON emits diags as JSON Lines to w. Suppressed findings are
// included (marked) so consumers can audit suppression state; gate on the
// Active subset, not on output presence.
func WriteJSON(w io.Writer, diags []Diagnostic, baseDir string) error {
	enc := json.NewEncoder(w)
	for _, d := range diags {
		file := d.Pos.Filename
		if baseDir != "" {
			if rel, err := filepath.Rel(baseDir, file); err == nil {
				file = rel
			}
		}
		j := diagJSON{
			Analyzer:   d.Analyzer,
			File:       filepath.ToSlash(file),
			Line:       d.Pos.Line,
			Col:        d.Pos.Column,
			Message:    d.Message,
			Suppressed: d.Suppressed,
		}
		if err := enc.Encode(j); err != nil {
			return err
		}
	}
	return nil
}
