package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestNoglobalrand(t *testing.T) {
	antest.Run(t, analysis.Noglobalrand, "testdata/noglobalrand")
}
