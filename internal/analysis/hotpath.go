package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Hotpath statically backs the 0-allocs/op gate (TestMessagePathAllocs
// and the steady-state integration gate): functions annotated with a
// //vavg:hotpath doc-comment directive — the message-path and step-
// scheduler inner loops — must stay free of the constructs that put
// allocations back on the per-message/per-round path:
//
//   - map literals and make(map[...]) — the per-round map staging the
//     flat outbox refactor removed;
//   - calls into fmt — formatting allocates and boxes;
//   - interface boxing: explicit conversions to interface types and
//     concrete arguments passed to interface-typed parameters;
//   - uncapped appends: appends to slices that provably lack reserved
//     capacity (declared var s []T, empty literals, or two-argument
//     make). Appends to parameters, struct fields, and three-argument
//     slab slices are trusted — the engine's reuse discipline caps those.
//
// Error guards that end in panic are cold by construction and are
// exempt, so bounds-check panics may format rich context freely.
var Hotpath = &Analyzer{
	Name: "hotpath",
	Doc:  "//vavg:hotpath functions must not allocate: no map literals, fmt, boxing, or uncapped append",
	Run:  runHotpath,
}

// hotpathDirective marks a function as part of the allocation-free path.
const hotpathDirective = "//vavg:hotpath"

func runHotpath(pass *Pass) {
	for _, file := range pass.Files {
		for _, fn := range funcsIn(pass, file) {
			if !hasDirective(fn.doc, hotpathDirective) {
				continue
			}
			uncapped := uncappedSlices(pass, fn)
			checkHotBody(pass, fn.body, uncapped)
		}
	}
}

func checkHotBody(pass *Pass, body *ast.BlockStmt, uncapped map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if endsInPanic(pass, n.Body) {
				// A guard that panics is the cold error path; its formatting
				// cost never lands on the steady state.
				return false
			}
		case *ast.CompositeLit:
			if t := pass.TypeOf(n); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.Pos(), "map literal allocates on a //vavg:hotpath function")
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, n, uncapped)
		}
		return true
	})
}

func checkHotCall(pass *Pass, call *ast.CallExpr, uncapped map[types.Object]bool) {
	if isBuiltinCall(pass.Info, call, "make") && len(call.Args) > 0 {
		if t := pass.TypeOf(call.Args[0]); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Reportf(call.Pos(), "make(map) allocates on a //vavg:hotpath function")
			}
		}
		return
	}
	if isBuiltinCall(pass.Info, call, "append") && len(call.Args) > 0 {
		if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && uncapped[pass.Info.Uses[base]] {
			pass.Reportf(call.Pos(), "append to %s, which has no reserved capacity, can allocate on a //vavg:hotpath function; preallocate with make(len, cap)", base.Name)
		}
		return
	}
	// Explicit conversion to an interface type boxes its operand.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if argT := pass.TypeOf(call.Args[0]); argT != nil && !types.IsInterface(argT) {
				pass.Reportf(call.Pos(), "conversion boxes %s into an interface on a //vavg:hotpath function", argT.String())
			}
		}
		return
	}
	if path, _, ok := pkgFunc(pass.Info, call); ok && path == "fmt" {
		pass.Reportf(call.Pos(), "fmt call allocates on a //vavg:hotpath function")
		return
	}
	checkBoxingArgs(pass, call)
}

// checkBoxingArgs flags concrete values passed to interface-typed
// parameters — the implicit conversion allocates for non-pointer values.
func checkBoxingArgs(pass *Pass, call *ast.CallExpr) {
	obj := calleeObj(pass.Info, call)
	fn, ok := obj.(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		argT := pass.TypeOf(arg)
		if argT == nil || types.IsInterface(argT) || isUntypedNil(argT) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface parameter of %s on a //vavg:hotpath function", argT.String(), fn.Name())
	}
}

func isUntypedNil(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Kind() == types.UntypedNil
}

// endsInPanic reports whether the block's final statement is a panic
// call.
func endsInPanic(pass *Pass, block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	es, ok := block.List[len(block.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	return ok && isBuiltinCall(pass.Info, call, "panic")
}

// uncappedSlices maps slice variables declared in fn without reserved
// capacity: `var s []T`, `s := []T{}`, or two-argument make. Anything
// whose capacity the analyzer cannot see (parameters, fields, slab
// slices, call results) is trusted.
func uncappedSlices(pass *Pass, fn funcInfo) map[types.Object]bool {
	uncapped := map[types.Object]bool{}
	ast.Inspect(fn.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(n.Rhs) {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil || !isSliceType(obj.Type()) {
					continue
				}
				if sliceRHSUncapped(pass, n.Rhs[i]) {
					uncapped[obj] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					obj := pass.Info.Defs[name]
					if obj == nil || !isSliceType(obj.Type()) {
						continue
					}
					if len(vs.Values) == 0 || (i < len(vs.Values) && sliceRHSUncapped(pass, vs.Values[i])) {
						uncapped[obj] = true
					}
				}
			}
		}
		return true
	})
	return uncapped
}

func isSliceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Slice)
	return ok
}

// sliceRHSUncapped reports whether the initializer provably reserves no
// spare capacity: a composite literal or a two-argument make.
func sliceRHSUncapped(pass *Pass, rhs ast.Expr) bool {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		return isBuiltinCall(pass.Info, rhs, "make") && len(rhs.Args) == 2
	}
	return false
}
