package analysis_test

import (
	"bytes"
	"flag"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from current output")

// TestWriteJSON pins the machine-readable format byte-for-byte on
// synthetic diagnostics: one object per line, fixed key order, paths
// relative to the base directory with forward slashes, suppression state
// included.
func TestWriteJSON(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "/mod/internal/a/a.go", Line: 10, Column: 3},
			Analyzer: "detflow",
			Message:  `tainted value reaches "sink"`,
		},
		{
			Pos:        token.Position{Filename: "/mod/internal/b/b.go", Line: 7, Column: 1},
			Analyzer:   "payloadwire",
			Message:    "payload cannot cross a wire",
			Suppressed: true,
		},
	}
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, diags, "/mod"); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	want := `{"analyzer":"detflow","file":"internal/a/a.go","line":10,"col":3,"message":"tainted value reaches \"sink\"","suppressed":false}
{"analyzer":"payloadwire","file":"internal/b/b.go","line":7,"col":1,"message":"payload cannot cross a wire","suppressed":true}
`
	if got := buf.String(); got != want {
		t.Errorf("WriteJSON output:\n%s\nwant:\n%s", got, want)
	}
}

// TestJSONGoldenDetflowFixture runs detflow over its fixture package and
// compares the full -json stream (active and suppressed findings alike)
// with a checked-in golden file. Regenerate with -update after deliberate
// fixture or message changes.
func TestJSONGoldenDetflowFixture(t *testing.T) {
	root, err := antest.ModuleRoot()
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	l := antest.Loader(t)
	dir := filepath.Join(root, "internal", "analysis", "testdata", "detflow")
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("fixture files: %v", err)
	}
	pkg, err := l.CheckFiles("vavg/internal/analysis/testdata/detflow", files)
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := analysis.RunAnalyzers([]*analysis.Analyzer{analysis.Detflow}, []*analysis.Package{pkg})
	var buf bytes.Buffer
	if err := analysis.WriteJSON(&buf, diags, root); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	golden := filepath.Join(dir, "golden.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("-json output differs from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
