package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestWiretag(t *testing.T) {
	antest.Run(t, analysis.Wiretag, "testdata/wiretag")
}
