package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestStepcontract(t *testing.T) {
	antest.Run(t, analysis.Stepcontract, "testdata/stepcontract")
}
