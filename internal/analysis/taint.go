package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// This file is the intraprocedural half of the interprocedural layer
// (facts.go): a conservative taint dataflow over one function body,
// shared by summary computation (which parameters/results carry taint,
// which parameters reach a sink) and by the detflow analyzer's
// diagnostic pass.

// Taint kinds. Each names a way a value can differ between two runs (or
// two cluster replicas) started from equal seeds.
const (
	taintOrder uint8 = 1 << iota // derived from Go's randomized map-iteration order
	taintRand                    // non-PRNG randomness: global math/rand, clock, environment, machine
	taintAddr                    // address-dependent: uintptr conversions, %p, reflect pointers
)

func taintWords(kinds uint8) string {
	var parts []string
	if kinds&taintOrder != 0 {
		parts = append(parts, "map-iteration-order")
	}
	if kinds&taintRand != 0 {
		parts = append(parts, "non-PRNG-randomness")
	}
	if kinds&taintAddr != 0 {
		parts = append(parts, "address-dependence")
	}
	if len(parts) == 0 {
		return "determinism"
	}
	return strings.Join(parts, "+")
}

// taintVal is the dataflow's abstract value: the taint kinds the value
// may carry, the enclosing function's parameters that may flow into it
// (meaningful in summary mode, where parameters start with marker bits),
// and the position of the first source, for diagnostics.
type taintVal struct {
	kinds  uint8
	params uint64
	src    token.Pos
}

func (t taintVal) union(o taintVal) taintVal {
	if !t.src.IsValid() {
		t.src = o.src
	}
	t.kinds |= o.kinds
	t.params |= o.params
	return t
}

func (t taintVal) tainted() bool { return t.kinds != 0 || t.params != 0 }

// sendSinkMethods are the *exec.API methods whose arguments become
// messages: a tainted argument makes message bytes (or delivery targets)
// run-dependent, which breaks cross-run and cluster equivalence.
var sendSinkMethods = map[string]string{
	"Send":         "an api.Send payload",
	"SendID":       "an api.SendID payload",
	"SendInt":      "an api.SendInt fast-lane payload",
	"SendIDInt":    "an api.SendIDInt fast-lane payload",
	"Broadcast":    "an api.Broadcast payload",
	"BroadcastInt": "an api.BroadcastInt fast-lane payload",
}

// machineDependent extends noglobalrand's vertex-code tables with calls
// whose result identifies the process or host rather than the run.
var machineDependent = map[string]map[string]bool{
	"os": {"Getpid": true, "Hostname": true, "Getwd": true},
}

// taintScope runs the dataflow over one function body. Two modes share
// the walker:
//
//   - summary mode (summary != nil): parameters start with per-parameter
//     marker bits; return statements and sink hits fold into the
//     FuncSummary under construction.
//   - diagnostic mode (report != nil): parameters start clean; a
//     source-tainted value reaching a sink is reported at the sink
//     argument.
//
// The body is walked twice — a quiet pass to reach the loop-carried
// fixed point, then a reporting pass — so diagnostics fire exactly once.
type taintScope struct {
	info  *types.Info
	fset  *token.FileSet
	facts *Facts

	sig        *types.Signature
	progShaped bool // returns are Program outputs (Result.Output sinks)
	// params maps parameter objects (receiver first) to their index;
	// populated only in summary mode.
	params map[types.Object]int
	vars   map[types.Object]taintVal

	inMapRange int
	quiet      bool

	summary *FuncSummary
	report  func(pos token.Pos, sink string, tv taintVal)
}

func (s *taintScope) run(body *ast.BlockStmt) {
	s.quiet = true
	s.stmts(body.List)
	s.quiet = false
	s.stmts(body.List)
}

// sink folds a value arriving at a determinism sink into the current
// mode: summary mode records which parameters forward to the sink,
// diagnostic mode reports source-tainted arrivals.
func (s *taintScope) sink(pos token.Pos, desc string, tv taintVal) {
	if s.summary != nil {
		for i := 0; i < s.summary.params; i++ {
			if tv.params&(1<<uint(i)) != 0 && s.summary.sinkParams[i] == "" {
				s.summary.sinkParams[i] = desc
			}
		}
	}
	if s.report != nil && !s.quiet && tv.kinds != 0 {
		s.report(pos, desc, tv)
	}
}

func (s *taintScope) setVar(obj types.Object, tv taintVal) {
	if old, ok := s.vars[obj]; ok {
		tv = old.union(tv)
	}
	s.vars[obj] = tv
}

func (s *taintScope) stmts(list []ast.Stmt) {
	for _, st := range list {
		s.stmt(st)
	}
}

func (s *taintScope) stmt(st ast.Stmt) {
	switch st := st.(type) {
	case *ast.AssignStmt:
		s.assign(st)
	case *ast.ExprStmt:
		s.exprTaint(st.X)
		s.sanitizeCall(st.X)
	case *ast.ReturnStmt:
		s.ret(st)
	case *ast.IfStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		s.exprTaint(st.Cond)
		s.stmts(st.Body.List)
		if st.Else != nil {
			s.stmt(st.Else)
		}
	case *ast.BlockStmt:
		s.stmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Cond != nil {
			s.exprTaint(st.Cond)
		}
		s.stmts(st.Body.List)
		if st.Post != nil {
			s.stmt(st.Post)
		}
	case *ast.RangeStmt:
		s.rangeStmt(st)
	case *ast.SwitchStmt:
		if st.Init != nil {
			s.stmt(st.Init)
		}
		if st.Tag != nil {
			s.exprTaint(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, v := range cc.List {
				s.exprTaint(v)
			}
			s.stmts(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		s.typeSwitch(st)
	case *ast.DeclStmt:
		s.declStmt(st)
	case *ast.DeferStmt:
		s.exprTaint(st.Call)
	case *ast.GoStmt:
		s.exprTaint(st.Call)
	case *ast.LabeledStmt:
		s.stmt(st.Stmt)
	case *ast.SendStmt:
		s.exprTaint(st.Chan)
		s.exprTaint(st.Value)
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			cc := c.(*ast.CommClause)
			if cc.Comm != nil {
				s.stmt(cc.Comm)
			}
			s.stmts(cc.Body)
		}
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// no dataflow
	}
}

func (s *taintScope) rangeStmt(rs *ast.RangeStmt) {
	base := s.exprTaint(rs.X)
	_, overMap := typeUnder(s.info.TypeOf(rs.X)).(*types.Map)
	// Iteration variables inherit the ranged value's taint. Map-iteration
	// ORDER is tracked at the aggregation points (appends inside the
	// body), not on single elements: one element's value is order-free,
	// and per-element effects are detorder's jurisdiction.
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := s.info.Defs[id]; obj != nil {
				s.setVar(obj, base)
			}
		}
	}
	if overMap {
		s.inMapRange++
	}
	s.stmts(rs.Body.List)
	if overMap {
		s.inMapRange--
	}
}

func (s *taintScope) typeSwitch(st *ast.TypeSwitchStmt) {
	if st.Init != nil {
		s.stmt(st.Init)
	}
	var base taintVal
	switch a := st.Assign.(type) {
	case *ast.AssignStmt:
		base = s.exprTaint(a.Rhs[0])
	case *ast.ExprStmt:
		base = s.exprTaint(a.X)
	}
	for _, c := range st.Body.List {
		cc := c.(*ast.CaseClause)
		if obj := s.info.Implicits[cc]; obj != nil {
			s.setVar(obj, base)
		}
		s.stmts(cc.Body)
	}
}

func (s *taintScope) declStmt(st *ast.DeclStmt) {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i >= len(vs.Values) {
				break
			}
			tv := s.exprTaint(vs.Values[i])
			if obj := s.info.Defs[name]; obj != nil {
				s.vars[obj] = tv
			}
		}
	}
}

func (s *taintScope) assign(st *ast.AssignStmt) {
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		// Tuple assignment: coarse — every destination carries the union
		// of the call's per-result taints.
		tv := s.exprTaint(st.Rhs[0])
		for _, lhs := range st.Lhs {
			s.store(lhs, tv, st.Tok)
		}
		return
	}
	for i, lhs := range st.Lhs {
		s.store(lhs, s.exprTaint(st.Rhs[i]), st.Tok)
	}
}

func (s *taintScope) store(lhs ast.Expr, tv taintVal, tok token.Token) {
	lhs = ast.Unparen(lhs)
	// Writing into a Result is a determinism sink: the Result is the
	// observable the equivalence contract compares byte-for-byte.
	if sel, ok := lhs.(*ast.SelectorExpr); ok {
		if isNamed(s.info.TypeOf(sel.X), execPath, "Result") {
			s.sink(lhs.Pos(), "Result."+sel.Sel.Name, tv)
		}
	}
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		obj := s.info.Defs[id]
		if obj == nil {
			obj = s.info.Uses[id]
		}
		if obj == nil {
			return
		}
		if tok == token.ASSIGN || tok == token.DEFINE {
			s.vars[obj] = tv // strong update: a clean overwrite clears taint
		} else {
			s.setVar(obj, tv) // compound assignment accumulates
		}
		return
	}
	// Index / field / deref store: taint the root object, coarsely.
	if root := rootObj(s.info, lhs); root != nil {
		s.setVar(root, tv)
	}
}

func (s *taintScope) ret(st *ast.ReturnStmt) {
	if len(st.Results) == 0 {
		// Naked return: named results carry their current taints.
		if s.sig == nil {
			return
		}
		for j := 0; j < s.sig.Results().Len(); j++ {
			s.foldReturn(j, s.vars[s.sig.Results().At(j)], st.Pos())
		}
		return
	}
	if s.sig != nil && len(st.Results) == 1 && s.sig.Results().Len() > 1 {
		tv := s.exprTaint(st.Results[0]) // tuple forward
		for j := 0; j < s.sig.Results().Len(); j++ {
			s.foldReturn(j, tv, st.Results[0].Pos())
		}
		return
	}
	for j, e := range st.Results {
		s.foldReturn(j, s.exprTaint(e), e.Pos())
	}
}

func (s *taintScope) foldReturn(j int, tv taintVal, pos token.Pos) {
	if s.summary != nil && j < len(s.summary.results) {
		s.summary.results[j].kinds |= tv.kinds
		s.summary.results[j].fromParams |= tv.params
	}
	if s.progShaped {
		s.sink(pos, "the Program output (broadcast as Final, stored in Result.Output)", tv)
	}
}

// sanitizeCall clears map-iteration-order taint from the arguments of a
// statement-level sorting call: sort.Slice(ks, ...), slices.Sort(ks), a
// local sortInt32(ks) — establishing a canonical order is exactly the
// accepted collect-then-sort idiom.
func (s *taintScope) sanitizeCall(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if !strings.Contains(strings.ToLower(exprString(s.fset, call.Fun)), "sort") {
		return
	}
	for _, a := range call.Args {
		if root := rootObj(s.info, a); root != nil {
			if tv, ok := s.vars[root]; ok {
				tv.kinds &^= taintOrder
				s.vars[root] = tv
			}
		}
	}
}

func (s *taintScope) exprTaint(e ast.Expr) taintVal {
	if e == nil {
		return taintVal{}
	}
	switch e := e.(type) {
	case *ast.Ident:
		if obj := s.info.Uses[e]; obj != nil {
			if tv, ok := s.vars[obj]; ok {
				return tv
			}
			if i, ok := s.params[obj]; ok {
				return taintVal{params: 1 << uint(i), src: e.Pos()}
			}
		}
		return taintVal{}
	case *ast.ParenExpr:
		return s.exprTaint(e.X)
	case *ast.SelectorExpr:
		if _, ok := s.info.Selections[e]; ok {
			// Field read or method value: carries the base's taint.
			return s.exprTaint(e.X)
		}
		// Qualified identifier (pkg.Name).
		if obj := s.info.Uses[e.Sel]; obj != nil {
			if tv, ok := s.vars[obj]; ok {
				return tv
			}
		}
		return taintVal{}
	case *ast.CallExpr:
		return s.call(e)
	case *ast.BinaryExpr:
		return s.exprTaint(e.X).union(s.exprTaint(e.Y))
	case *ast.UnaryExpr:
		return s.exprTaint(e.X)
	case *ast.StarExpr:
		return s.exprTaint(e.X)
	case *ast.IndexExpr:
		return s.exprTaint(e.X).union(s.exprTaint(e.Index))
	case *ast.IndexListExpr:
		return s.exprTaint(e.X)
	case *ast.SliceExpr:
		return s.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return s.exprTaint(e.X)
	case *ast.CompositeLit:
		var tv taintVal
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				tv = tv.union(s.exprTaint(kv.Value))
			} else {
				tv = tv.union(s.exprTaint(elt))
			}
		}
		// Building a Result from tainted parts is a sink even without a
		// later field write.
		if isNamed(s.info.TypeOf(e), execPath, "Result") && tv.tainted() {
			s.sink(e.Pos(), "a Result literal", tv)
		}
		return tv
	case *ast.KeyValueExpr:
		return s.exprTaint(e.Value)
	}
	// FuncLit (analyzed as its own function), literals, type expressions.
	return taintVal{}
}

// call handles sources (randomness, clock, addresses, map iterators),
// sinks (API sends, Done, Mix64, summary-recorded forwarding), sanitizers
// (sort-shaped callees), and summary-based propagation, in that order.
func (s *taintScope) call(call *ast.CallExpr) taintVal {
	info := s.info
	// Conversion?
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return taintVal{}
		}
		out := s.exprTaint(call.Args[0])
		if b, ok := typeUnder(tv.Type).(*types.Basic); ok && b.Kind() == types.Uintptr {
			if ab, ok := typeUnder(info.TypeOf(call.Args[0])).(*types.Basic); ok && ab.Kind() == types.UnsafePointer {
				out = out.union(taintVal{kinds: taintAddr, src: call.Pos()})
			}
		}
		return out
	}
	// Builtin?
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "len", "cap":
				// Cardinality is iteration-order-free.
				out := s.exprTaint(call.Args[0])
				out.kinds &^= taintOrder
				return out
			case "append":
				var out taintVal
				for _, a := range call.Args {
					out = out.union(s.exprTaint(a))
				}
				if s.inMapRange > 0 {
					// Appending inside a range-over-map makes the element
					// ORDER iteration-dependent, whatever the elements are.
					out = out.union(taintVal{kinds: taintOrder, src: call.Pos()})
				}
				return out
			default:
				var out taintVal
				for _, a := range call.Args {
					if atv, ok := info.Types[a]; ok && atv.IsType() {
						continue
					}
					out = out.union(s.exprTaint(a))
				}
				return out
			}
		}
	}

	// API send methods: every argument is a sink (payloads become message
	// bytes; neighbor indices become delivery targets).
	if mname, ok := apiMethod(info, call); ok {
		if desc, isSink := sendSinkMethods[mname]; isSink {
			for _, a := range call.Args {
				s.sink(a.Pos(), desc, s.exprTaint(a))
			}
			return taintVal{}
		}
	}

	fn, _ := calleeObj(info, call).(*types.Func)
	path, name := "", ""
	pkgLevel := false
	if fn != nil && fn.Pkg() != nil {
		path, name = fn.Pkg().Path(), fn.Name()
		if sig, ok := fn.Type().(*types.Signature); ok {
			// Methods keep path = defining package; the randomness tables
			// only name package-level functions (rng.Intn on a seeded
			// *rand.Rand is deterministic, math/rand.Intn is not).
			pkgLevel = sig.Recv() == nil
		}
	}

	// Engine-level sinks.
	if path == execPath && name == "Done" && len(call.Args) == 1 {
		s.sink(call.Args[0].Pos(), "the step output (Result.Output via Done)", s.exprTaint(call.Args[0]))
		return taintVal{}
	}
	if path == execPath && name == "Mix64" && len(call.Args) == 1 {
		atv := s.exprTaint(call.Args[0])
		s.sink(call.Args[0].Pos(), "adversary hashing (Mix64)", atv)
		return atv // a hash of a deterministic input is deterministic
	}

	// Sources.
	var srcKinds uint8
	switch {
	case pkgLevel && (isGlobalRand(path, name) || forbiddenInVertexCode[path][name] || machineDependent[path][name]):
		srcKinds = taintRand
	case pkgLevel && path == "maps" && (name == "Keys" || name == "Values"):
		srcKinds = taintOrder // an explicitly iteration-ordered sequence
	case path == "fmt" && (strings.HasPrefix(name, "Sprint") || strings.HasPrefix(name, "Append") || name == "Errorf"):
		if len(call.Args) > 0 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && strings.Contains(lit.Value, "%p") {
				srcKinds = taintAddr
			}
		}
	case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "reflect" &&
		(name == "Pointer" || name == "UnsafeAddr" || name == "UnsafePointer"):
		srcKinds = taintAddr
	}

	sanitizes := strings.Contains(strings.ToLower(exprString(s.fset, call.Fun)), "sort")

	// Summary-based propagation for module functions; conservative
	// input-union for everything else.
	var out taintVal
	if srcKinds != 0 {
		out = taintVal{kinds: srcKinds, src: call.Pos()}
	}
	var sum *FuncSummary
	if fn != nil && s.facts != nil {
		sum = s.facts.summaryOf(fn)
	}
	tvs, poss := s.callInputs(call, fn)
	if sum != nil {
		for idx := 0; idx < len(tvs) && idx < len(sum.sinkParams); idx++ {
			if sum.sinkParams[idx] != "" && tvs[idx].tainted() {
				s.sink(poss[idx], fmt.Sprintf("%s (forwarded by %s)", sum.sinkParams[idx], name), tvs[idx])
			}
		}
		for _, r := range sum.results {
			if r.kinds != 0 {
				out = out.union(taintVal{kinds: r.kinds, src: call.Pos()})
			}
			for idx := 0; idx < len(tvs); idx++ {
				if r.fromParams&(1<<uint(idx)) != 0 {
					out = out.union(tvs[idx])
				}
			}
		}
	} else {
		// Unknown callee: results conservatively carry the inputs' taint.
		for _, tv := range tvs {
			out = out.union(tv)
		}
	}
	if sanitizes {
		out.kinds &^= taintOrder
	}
	return out
}

// callInputs evaluates the call's receiver and arguments, returning their
// taints indexed by callee parameter position (receiver = 0 for methods,
// variadic tail folded onto the last parameter) plus per-index argument
// positions for reporting.
func (s *taintScope) callInputs(call *ast.CallExpr, fn *types.Func) ([]taintVal, []token.Pos) {
	var sig *types.Signature
	if fn != nil {
		sig, _ = fn.Type().(*types.Signature)
	}
	base := 0
	var tvs []taintVal
	var poss []token.Pos
	if sig != nil && sig.Recv() != nil {
		base = 1
		tvs = append(tvs, taintVal{})
		poss = append(poss, call.Pos())
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isSel := s.info.Selections[sel]; isSel {
				tvs[0] = s.exprTaint(sel.X)
				poss[0] = sel.X.Pos()
			}
		}
	}
	nparams := 0
	if sig != nil {
		nparams = sig.Params().Len()
	}
	for i, a := range call.Args {
		idx := base + i
		if nparams > 0 && i >= nparams {
			idx = base + nparams - 1
		}
		atv := s.exprTaint(a)
		for len(tvs) <= idx {
			tvs = append(tvs, taintVal{})
			poss = append(poss, a.Pos())
		}
		tvs[idx] = tvs[idx].union(atv)
	}
	return tvs, poss
}

// rootObj resolves the base object of an lvalue or argument expression:
// x, x.F, x[i], *x, x[i:j] all root at x.
func rootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return obj
			}
			return info.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

// sigIsProgramShape reports whether sig is the engine Program shape —
// func(*exec.API) any — whose return value is broadcast as Final and
// stored in Result.Output.
func sigIsProgramShape(sig *types.Signature) bool {
	if sig == nil || sig.Params().Len() != 1 || !isAPIPtr(sig.Params().At(0).Type()) {
		return false
	}
	if sig.Results().Len() != 1 {
		return false
	}
	it, ok := typeUnder(sig.Results().At(0).Type()).(*types.Interface)
	return ok && it.Empty()
}

// isTestFile reports whether the file is a _test.go file. The
// interprocedural analyzers skip test files: test-local programs are
// certified dynamically by the equivalence suites, and test scaffolding
// never ships across the cluster seam.
func isTestFile(fset *token.FileSet, file *ast.File) bool {
	return strings.HasSuffix(fset.Position(file.Pos()).Filename, "_test.go")
}
