package analysis_test

import (
	"reflect"
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

// TestDiagnosticsWorkerInvariant pins the parallel-analysis contract:
// the diagnostic stream — content AND order — is identical for every
// worker count, on the loader side (dependency-wave type-checking) and
// the analysis side (per-unit fan-out with a sorted merge).
func TestDiagnosticsWorkerInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("module-wide load in -short mode")
	}
	root, err := antest.ModuleRoot()
	if err != nil {
		t.Fatalf("module root: %v", err)
	}
	run := func(workers int) []analysis.Diagnostic {
		l, err := analysis.NewLoader(root)
		if err != nil {
			t.Fatalf("loader: %v", err)
		}
		l.Workers = workers
		pkgs, err := l.LoadPackages("./...")
		if err != nil {
			t.Fatalf("loading (workers=%d): %v", workers, err)
		}
		return analysis.RunAnalyzersN(analysis.All(), pkgs, workers)
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("diagnostics differ between 1 and 8 workers:\nserial:   %v\nparallel: %v", serial, parallel)
	}
}
