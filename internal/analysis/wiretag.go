package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// Wiretag enforces the fast-lane encoding discipline of internal/wire:
// the top byte of an int64 fast-lane payload is the message-family tag,
// and tags must be globally unique so any receiver (most prominently the
// hpartition Tracker, the universal stray-message sink) can classify a
// message. Hand-rolled tags defeat that uniqueness, so:
//
//   - every wire.Pack call must name its tag through a constant declared
//     in the wire package (wire.TagJoin, wire.TagColor, ...) — a literal
//     or locally-declared tag silently collides with present or future
//     families;
//   - arguments to SendInt/SendIDInt/BroadcastInt must not hand-pack tag
//     bits: constants with the top byte set (>= 1<<56 or negative) and
//     shift expressions moving bits into the tag byte (<< 48 or more)
//     are flagged. Raw untagged payloads below 2^56 stay legal — Luby
//     priorities use the full lane width by design.
//
// Lane mixing on one edge (Send and SendInt interleaved to a receiver
// that only drains one lane) is a dynamic property the cross-backend
// equivalence suite covers; this analyzer checks the encoding statically.
var Wiretag = &Analyzer{
	Name:     "wiretag",
	Doc:      "fast-lane sends must tag through wire.Pack with wire.Tag* constants",
	Run:      runWiretag,
	SkipPkgs: []string{wirePath},
}

// tagBitsFloor is the smallest value whose encoding touches the tag byte.
const tagBitsFloor = int64(1) << 56

// fastLaneValueArg maps the *exec.API fast-lane senders to the index of
// their payload argument.
var fastLaneValueArg = map[string]int{
	"SendInt":      1,
	"SendIDInt":    1,
	"BroadcastInt": 0,
}

func runWiretag(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if path, name, ok := pkgFunc(pass.Info, call); ok && path == wirePath && name == "Pack" {
				checkPackTag(pass, call)
				return true
			}
			name, ok := apiMethod(pass.Info, call)
			if !ok {
				return true
			}
			argIdx, isFastLane := fastLaneValueArg[name]
			if !isFastLane || len(call.Args) <= argIdx {
				return true
			}
			checkFastLaneValue(pass, name, call.Args[argIdx])
			return true
		})
	}
}

// checkPackTag requires wire.Pack's tag operand to be a constant declared
// in the wire package.
func checkPackTag(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 1 {
		return
	}
	tag := ast.Unparen(call.Args[0])
	var id *ast.Ident
	switch t := tag.(type) {
	case *ast.Ident:
		id = t
	case *ast.SelectorExpr:
		id = t.Sel
	}
	if id != nil {
		if obj, ok := pass.Info.Uses[id].(*types.Const); ok && obj.Pkg() != nil && obj.Pkg().Path() == wirePath {
			return
		}
	}
	pass.Reportf(tag.Pos(), "wire.Pack tag must be a wire.Tag* constant, not %s; ad-hoc tags collide with other message families", exprString(pass.Fset, tag))
}

// checkFastLaneValue flags hand-packed tag bits in a fast-lane payload.
func checkFastLaneValue(pass *Pass, method string, arg ast.Expr) {
	arg = ast.Unparen(arg)
	// A wire.Pack (or any other call) result is trusted; Pack validates.
	if _, isCall := arg.(*ast.CallExpr); isCall {
		return
	}
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, exact := constant.Int64Val(tv.Value); exact && (v < 0 || v >= tagBitsFloor) {
			pass.Reportf(arg.Pos(), "%s payload %s has tag bits set; use wire.Pack with a wire.Tag* constant", method, exprString(pass.Fset, arg))
			return
		}
	}
	if shift := tagShift(pass, arg); shift != nil {
		pass.Reportf(shift.Pos(), "%s payload hand-packs the tag byte (shift into bits >= 48); use wire.Pack with a wire.Tag* constant", method)
	}
}

// tagShift finds a subexpression shifting bits into the tag byte.
func tagShift(pass *Pass, e ast.Expr) ast.Expr {
	var found ast.Expr
	ast.Inspect(e, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != token.SHL || found != nil {
			return found == nil
		}
		if tv, ok := pass.Info.Types[be.Y]; ok && tv.Value != nil {
			if v, exact := constant.Int64Val(constant.ToInt(tv.Value)); exact && v >= 48 {
				found = be
			}
		}
		return found == nil
	})
	return found
}
