package analysis

import (
	"go/ast"
	"go/types"
)

// Import paths of the packages whose contracts the analyzers enforce.
const (
	execPath = "vavg/internal/engine/exec"
	wirePath = "vavg/internal/wire"
)

// funcInfo is one function with a body: a declaration or a literal.
type funcInfo struct {
	node ast.Node // *ast.FuncDecl or *ast.FuncLit
	body *ast.BlockStmt
	sig  *types.Signature
	doc  *ast.CommentGroup // non-nil only for documented declarations
}

// funcsIn collects every function declaration and literal in the file,
// with resolved signatures.
func funcsIn(pass *Pass, file *ast.File) []funcInfo {
	var funcs []funcInfo
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil {
				return true
			}
			obj, _ := pass.Info.Defs[n.Name].(*types.Func)
			if obj == nil {
				return true
			}
			funcs = append(funcs, funcInfo{node: n, body: n.Body, sig: obj.Type().(*types.Signature), doc: n.Doc})
		case *ast.FuncLit:
			sig, _ := pass.TypeOf(n).(*types.Signature)
			if sig == nil {
				return true
			}
			funcs = append(funcs, funcInfo{node: n, body: n.Body, sig: sig})
		}
		return true
	})
	return funcs
}

// dePtr unwraps one level of pointer.
func dePtr(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// isNamed reports whether t (after unwrapping one pointer) is the named
// type path.name. Type aliases (engine.API = exec.API) resolve to the
// same named type, so algorithm code matching is path-stable.
func isNamed(t types.Type, path, name string) bool {
	if t == nil {
		return false
	}
	n, ok := dePtr(t).(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == path && n.Obj().Name() == name
}

// isAPIPtr reports whether t is *exec.API (under any alias).
func isAPIPtr(t types.Type) bool {
	p, ok := t.(*types.Pointer)
	return ok && isNamed(p.Elem(), execPath, "API")
}

// sigHasAPIParam reports whether any parameter of sig is *exec.API —
// the marker of vertex code: Programs, StepPrograms, StepFns, and the
// helpers they call all receive the API handle.
func sigHasAPIParam(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isAPIPtr(params.At(i).Type()) {
			return true
		}
	}
	return false
}

// sigIsStepForm reports whether sig is step-turn code: it receives the
// vertex API and produces an exec.Step verdict. This matches StepFn
// itself and the Start* sub-machine helpers that return a turn verdict.
func sigIsStepForm(sig *types.Signature) bool {
	if !sigHasAPIParam(sig) {
		return false
	}
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if isNamed(results.At(i).Type(), execPath, "Step") {
			return true
		}
	}
	return false
}

// calleeObj resolves the object a call expression invokes: a function,
// method, builtin, or conversion target. Returns nil when unresolvable.
func calleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		return info.Uses[fun.Sel] // package-qualified call
	}
	return nil
}

// pkgFunc reports the defining package path and name of a call to a
// package-level function (not a method), or ok=false.
func pkgFunc(info *types.Info, call *ast.CallExpr) (path, name string, ok bool) {
	fn, isFn := calleeObj(info, call).(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	if sig, isSig := fn.Type().(*types.Signature); isSig && sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}

// apiMethod reports the method name when call invokes a method whose
// receiver is *exec.API, or ok=false.
func apiMethod(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	fn, isFn := calleeObj(info, call).(*types.Func)
	if !isFn {
		return "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() == nil || !isAPIPtr(sig.Recv().Type()) {
		return "", false
	}
	return fn.Name(), true
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == name
}

// walkSkippingFuncLits visits the subtree of each statement, not
// descending into function literals (which are analyzed as functions of
// their own).
func walkSkippingFuncLits(n ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		return visit(n)
	})
}
