package analysis

import (
	"go/ast"
	"go/token"
)

// Noglobalrand enforces the engine's seeding contract: equal seeds must
// produce byte-identical Results, so vertex code — any function that
// receives the *exec.API handle, which is how Programs, StepPrograms,
// StepFns, and their helpers are all written — may draw randomness only
// from api.Rand(), the per-(run seed, vertex ID) PRNG, and may not branch
// on wall-clock time or process environment. Two rule sets apply:
//
//   - inside vertex code (including test files, whose inline Programs
//     feed the equivalence suites): calls to the global math/rand
//     top-level functions, time.Now/Since/Until, os.Getenv/LookupEnv/
//     Environ, and runtime.GOMAXPROCS/NumCPU/NumGoroutine are flagged;
//
//   - everywhere else in non-test files: the global math/rand functions
//     are still flagged, because any unseeded draw (graph generation,
//     experiment setup) breaks run-to-run reproducibility. Constructing
//     seeded generators (rand.New, rand.NewSource) is always fine.
var Noglobalrand = &Analyzer{
	Name: "noglobalrand",
	Doc:  "forbids global math/rand, wall-clock, and environment dependence in vertex code",
	Run:  runNoglobalrand,
}

// randConstructors are the math/rand package-level functions that build
// explicitly-seeded state rather than touching the global source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// forbiddenInVertexCode maps package path -> function names whose results
// depend on the machine or the moment rather than on (seed, vertex).
var forbiddenInVertexCode = map[string]map[string]bool{
	"time":    {"Now": true, "Since": true, "Until": true},
	"os":      {"Getenv": true, "LookupEnv": true, "Environ": true},
	"runtime": {"GOMAXPROCS": true, "NumCPU": true, "NumGoroutine": true},
}

func runNoglobalrand(pass *Pass) {
	for _, file := range pass.Files {
		fname := pass.Fset.Position(file.Pos()).Filename
		isTest := hasSuffix(fname, "_test.go")
		vertexRegions := vertexCodeRegions(pass, file)
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			path, name, ok := pkgFunc(pass.Info, call)
			if !ok {
				return true
			}
			inVertex := inRegions(vertexRegions, call.Pos())
			if isGlobalRand(path, name) && (inVertex || !isTest) {
				if inVertex {
					pass.Reportf(call.Pos(), "global math/rand call %s.%s in vertex code; use api.Rand(), the per-vertex seeded PRNG", path, name)
				} else {
					pass.Reportf(call.Pos(), "global math/rand call %s.%s; use a rand.New(rand.NewSource(seed)) generator so runs are reproducible", path, name)
				}
				return true
			}
			if inVertex && forbiddenInVertexCode[path][name] {
				pass.Reportf(call.Pos(), "%s.%s in vertex code; vertex behavior must depend only on (seed, vertex, round), not the clock, environment, or machine", path, name)
			}
			return true
		})
	}
}

func isGlobalRand(path, name string) bool {
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	return !randConstructors[name]
}

// region is a half-open source interval covering one function body.
type region struct{ lo, hi token.Pos }

// vertexCodeRegions returns the body extents of every function whose
// signature carries a *exec.API parameter. Nested closures inside those
// bodies execute on the vertex path too, so containment is positional.
func vertexCodeRegions(pass *Pass, file *ast.File) []region {
	var regions []region
	for _, fn := range funcsIn(pass, file) {
		if sigHasAPIParam(fn.sig) {
			regions = append(regions, region{lo: fn.body.Pos(), hi: fn.body.End()})
		}
	}
	return regions
}

func inRegions(regions []region, pos token.Pos) bool {
	for _, r := range regions {
		if r.lo <= pos && pos < r.hi {
			return true
		}
	}
	return false
}

func hasSuffix(s, suffix string) bool {
	return len(s) >= len(suffix) && s[len(s)-len(suffix):] == suffix
}
