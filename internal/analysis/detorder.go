package analysis

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// Detorder enforces the suite's deepest determinism invariant: nothing a
// run produces may depend on Go's randomized map-iteration order. A
// `range` over a map is accepted only when its body is provably
// order-insensitive:
//
//   - writes keyed by the iteration variables (m2[k] = v, delete(m, k)),
//     which touch each key once regardless of order;
//   - commutative integer aggregation (+=, -=, *=, |=, &=, ^=, ++, --);
//   - re-assignment of values that do not depend on the iteration
//     variables (found = true);
//   - strict min/max selection (if v < best { best = v });
//   - appends into a slice that is sorted after the loop completes
//     (collect-then-sort, the idiom exec.Names uses).
//
// Anything else — sends, t.Run, early return/break, float or string
// accumulation, appends that never meet a sort — is flagged. Deliberate
// exceptions take a //lint:ignore detorder <reason> suppression.
var Detorder = &Analyzer{
	Name: "detorder",
	Doc:  "flags range-over-map whose iteration order can reach messages, outputs, or Results",
	Run:  runDetorder,
}

func runDetorder(pass *Pass) {
	for _, file := range pass.Files {
		for _, fn := range funcsIn(pass, file) {
			checkMapRanges(pass, fn)
		}
	}
}

// checkMapRanges inspects the map ranges that belong directly to fn
// (nested function literals are separate funcInfo entries).
func checkMapRanges(pass *Pass, fn funcInfo) {
	walkSkippingFuncLits(fn.body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.TypeOf(rs.X).Underlying().(*types.Map); !isMap {
			return true
		}
		s := &orderSafety{pass: pass, iterVars: map[types.Object]bool{}}
		s.addIterVars(rs)
		if !s.stmts(rs.Body.List) {
			pass.Reportf(rs.Pos(), "range over map %s has order-dependent effects%s; iterate sorted keys, or suppress with //lint:ignore detorder <reason>",
				exprString(pass.Fset, rs.X), s.reason)
			return true
		}
		if s.earlyExit.IsValid() && (s.mutates || len(s.appended) > 0) {
			pass.Reportf(s.earlyExit, "early exit from a map range that also mutates state: the exit point decides how many mutations ran; iterate sorted keys, or suppress with //lint:ignore detorder <reason>")
			return true
		}
		for _, ap := range s.appended {
			if !sortedAfter(pass, fn.body, rs, ap.expr) {
				pass.Reportf(ap.pos, "slice %s is appended in map-iteration order and never sorted afterwards; sort it before use, or suppress with //lint:ignore detorder <reason>", ap.expr)
			}
		}
		return true
	})
}

// orderSafety walks a map-range body deciding whether its effects are
// independent of iteration order. iterVars holds the loop variables plus
// any iteration-local variables declared inside the body; appended maps
// accumulator slices to the position of their first append.
type orderSafety struct {
	pass     *Pass
	iterVars map[types.Object]bool
	appended []appendSite
	reason   string
	// mutates records that the body updates state outside the iteration
	// (counters, map entries, accumulators); earlyExit records a
	// constant-return scan. Each is safe alone, but together the exit
	// point decides how many mutations ran — order-dependent again.
	mutates   bool
	earlyExit token.Pos
}

// appendSite is one accumulator slice appended to inside the loop — an
// identifier or field selector, tracked by its printed form so
// `rep.Unmatched` matches across the append and the later sort — with
// the position of its first append (kept in source order so diagnostics
// are deterministic without sorting map keys — the analyzer practices
// what it preaches).
type appendSite struct {
	expr string
	pos  token.Pos
}

func (s *orderSafety) addIterVars(rs *ast.RangeStmt) {
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := s.pass.Info.Defs[id]; obj != nil {
				s.iterVars[obj] = true
			}
		}
	}
}

func (s *orderSafety) fail(pos token.Pos, why string) bool {
	if s.reason == "" {
		s.reason = " (" + why + " at line " + itoa(s.pass.Fset.Position(pos).Line) + ")"
	}
	return false
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func (s *orderSafety) stmts(list []ast.Stmt) bool {
	for _, st := range list {
		if !s.stmt(st) {
			return false
		}
	}
	return true
}

func (s *orderSafety) stmt(st ast.Stmt) bool {
	switch st := st.(type) {
	case *ast.AssignStmt:
		return s.assign(st)
	case *ast.IncDecStmt:
		s.mutates = true
		return true // x++ / x-- is commutative counting
	case *ast.ExprStmt:
		call, ok := st.X.(*ast.CallExpr)
		if ok && isBuiltinCall(s.pass.Info, call, "delete") && len(call.Args) == 2 && s.refsIterVar(call.Args[1]) {
			s.mutates = true
			return true // delete keyed by the iteration variable
		}
		return s.fail(st.Pos(), "call with side effects")
	case *ast.IfStmt:
		return s.ifStmt(st)
	case *ast.BlockStmt:
		return s.stmts(st.List)
	case *ast.DeclStmt:
		return true // iteration-local declaration
	case *ast.BranchStmt:
		if st.Tok == token.CONTINUE {
			return true
		}
		return s.fail(st.Pos(), "loop exit selects an arbitrary element")
	case *ast.RangeStmt:
		s.addIterVars(st)
		return s.stmts(st.Body.List)
	case *ast.ForStmt:
		return s.stmts(st.Body.List)
	default:
		return s.fail(st.Pos(), "order-sensitive statement")
	}
}

// commutativeOps are the compound assignments that commute on integers.
var commutativeOps = map[token.Token]bool{
	token.ADD_ASSIGN: true,
	token.SUB_ASSIGN: true,
	token.MUL_ASSIGN: true,
	token.AND_ASSIGN: true,
	token.OR_ASSIGN:  true,
	token.XOR_ASSIGN: true,
}

func (s *orderSafety) assign(st *ast.AssignStmt) bool {
	if st.Tok == token.DEFINE {
		// Iteration-local definition: the variables live one iteration, so
		// record them as iteration-derived; the values may not come from
		// side-effecting calls.
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := s.pass.Info.Defs[id]; obj != nil {
					s.iterVars[obj] = true
				}
			}
		}
		for _, rhs := range st.Rhs {
			if s.hasCall(rhs) {
				return s.fail(st.Pos(), "call with unknown effects")
			}
		}
		return true
	}
	if commutativeOps[st.Tok] {
		lhsType := s.pass.TypeOf(st.Lhs[0])
		if b, ok := lhsType.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			s.mutates = true
			return true
		}
		return s.fail(st.Pos(), "non-integer accumulation is order-dependent")
	}
	if st.Tok != token.ASSIGN {
		return s.fail(st.Pos(), "order-sensitive assignment")
	}
	if len(st.Lhs) == 1 && len(st.Rhs) == 1 {
		if ap, isAppend := s.selfAppend(st.Lhs[0], st.Rhs[0]); isAppend {
			seen := false
			for _, prev := range s.appended {
				if prev.expr == ap {
					seen = true
					break
				}
			}
			if !seen {
				s.appended = append(s.appended, appendSite{expr: ap, pos: st.Pos()})
			}
			return true
		}
	}
	for _, lhs := range st.Lhs {
		if !s.safeStore(lhs) {
			return s.fail(st.Pos(), "write whose final value depends on iteration order")
		}
		s.mutates = true
	}
	for _, rhs := range st.Rhs {
		if s.hasCall(rhs) {
			return s.fail(st.Pos(), "call with unknown effects")
		}
	}
	return true
}

// safeStore reports whether writing lhs once per iteration is
// order-independent: an element keyed by the iteration variables (each
// key visited once), or a variable assigned a value that does not depend
// on the iteration variables (every iteration stores the same thing).
func (s *orderSafety) safeStore(lhs ast.Expr) bool {
	if ix, ok := lhs.(*ast.IndexExpr); ok {
		return s.refsIterVar(ix.Index)
	}
	return false
}

// selfAppend matches lhs = append(lhs, ...) — lhs an identifier or field
// selector — and returns the accumulator's printed form.
func (s *orderSafety) selfAppend(lhs, rhs ast.Expr) (string, bool) {
	switch lhs.(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return "", false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok || !isBuiltinCall(s.pass.Info, call, "append") || len(call.Args) == 0 {
		return "", false
	}
	target := exprString(s.pass.Fset, lhs)
	if exprString(s.pass.Fset, ast.Unparen(call.Args[0])) != target {
		return "", false
	}
	return target, true
}

func (s *orderSafety) ifStmt(st *ast.IfStmt) bool {
	if st.Init != nil {
		if as, ok := st.Init.(*ast.AssignStmt); !ok || !s.assign(as) {
			return false
		}
	}
	if s.minMaxSelection(st) {
		return true
	}
	if s.hasCall(st.Cond) {
		return s.fail(st.Cond.Pos(), "call with unknown effects in condition")
	}
	if s.constantEarlyExit(st) {
		return true
	}
	if !s.stmts(st.Body.List) {
		return false
	}
	if st.Else != nil {
		return s.stmt(st.Else)
	}
	return true
}

// minMaxSelection accepts the strict selection idiom
//
//	if v < best { best = v }   (or >, with the operands either way round)
//
// whose result — the extreme value — is the same in every iteration
// order. Non-strict comparisons and bodies that update companion
// variables are rejected: ties would then resolve by visit order.
func (s *orderSafety) minMaxSelection(st *ast.IfStmt) bool {
	cond, ok := ast.Unparen(st.Cond).(*ast.BinaryExpr)
	if !ok || (cond.Op != token.LSS && cond.Op != token.GTR) || st.Else != nil {
		return false
	}
	if len(st.Body.List) != 1 {
		return false
	}
	as, ok := st.Body.List[0].(*ast.AssignStmt)
	if !ok || as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	tgt := exprString(s.pass.Fset, as.Lhs[0])
	src := exprString(s.pass.Fset, as.Rhs[0])
	x := exprString(s.pass.Fset, cond.X)
	y := exprString(s.pass.Fset, cond.Y)
	return (x == src && y == tgt) || (x == tgt && y == src)
}

// constantEarlyExit accepts the any-of / all-of scan idiom
//
//	if <pure cond> { return true }
//
// where every returned value is a constant: whichever iteration triggers
// the return, the caller observes the same values, so the scan's result
// is order-free. (The condition was already checked for calls.)
func (s *orderSafety) constantEarlyExit(st *ast.IfStmt) bool {
	if st.Else != nil || len(st.Body.List) != 1 {
		return false
	}
	ret, ok := st.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	for _, res := range ret.Results {
		tv, found := s.pass.Info.Types[res]
		if !found || tv.Value == nil {
			// Not a compile-time constant; nil and zero literals of
			// reference types have no constant.Value, so allow bare nil.
			if id, isIdent := ast.Unparen(res).(*ast.Ident); isIdent && id.Name == "nil" {
				continue
			}
			return false
		}
	}
	if !s.earlyExit.IsValid() {
		s.earlyExit = ret.Pos()
	}
	return true
}

func (s *orderSafety) refsIterVar(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && s.iterVars[s.pass.Info.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}

func (s *orderSafety) hasCall(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch obj := calleeObj(s.pass.Info, call).(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "len", "cap", "min", "max":
				return true // pure
			}
			found = true
		case *types.TypeName:
			return true // conversion
		default:
			if tv, isConv := s.pass.Info.Types[call.Fun]; isConv && tv.IsType() {
				return true
			}
			found = true
		}
		return !found
	})
	return found
}

// sortedAfter reports whether, somewhere after the loop in the enclosing
// function, the accumulator is passed to a sorting call — any callee
// whose printed form mentions "sort" (sort.Strings, sort.Slice,
// slices.Sort, a local sortInt32, ...).
func sortedAfter(pass *Pass, body *ast.BlockStmt, rs *ast.RangeStmt, accum string) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || sorted {
			return !sorted
		}
		if !strings.Contains(strings.ToLower(exprString(pass.Fset, call.Fun)), "sort") {
			return true
		}
		for _, arg := range call.Args {
			if exprString(pass.Fset, ast.Unparen(arg)) == accum {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var sb strings.Builder
	if err := printer.Fprint(&sb, fset, e); err != nil {
		return "<expr>"
	}
	return sb.String()
}
