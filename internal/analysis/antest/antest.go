// Package antest is vavglint's fixture harness, the offline counterpart
// of golang.org/x/tools/go/analysis/analysistest: it type-checks a
// testdata fixture package against the module's export data, runs one
// analyzer over it, and compares the diagnostics with the fixture's
// expectations.
//
// Expectations are `// want "regexp"` comments: a diagnostic is expected
// on that source line with a message matching each quoted pattern.
// Every expectation must be met and every diagnostic must be expected —
// fixture lines carrying a //lint:ignore suppression therefore double as
// tests that the suppression machinery works (a leaking diagnostic is an
// unexpected finding).
package antest

import (
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"vavg/internal/analysis"
)

var (
	loaderOnce sync.Once
	loader     *analysis.Loader
	loaderErr  error
)

// ModuleRoot locates the enclosing module's directory from the current
// working directory (each test runs in its package directory).
func ModuleRoot() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", err
	}
	return filepath.Dir(strings.TrimSpace(string(out))), nil
}

// Loader returns the process-wide fixture loader. The export pass behind
// it shells out to the go command once; every analyzer test shares the
// result.
func Loader(t *testing.T) *analysis.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := ModuleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loader, loaderErr = analysis.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatalf("antest: building loader: %v", loaderErr)
	}
	return loader
}

// expectation is one `// want` pattern, keyed by file and line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	met     bool
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)$`)
var patternRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"` + "|`([^`]*)`")

// parseWants extracts the expectations of one fixture file.
func parseWants(t *testing.T, filename string) []*expectation {
	t.Helper()
	data, err := os.ReadFile(filename)
	if err != nil {
		t.Fatalf("antest: %v", err)
	}
	var wants []*expectation
	for i, line := range strings.Split(string(data), "\n") {
		m := wantRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		pats := patternRE.FindAllStringSubmatch(m[1], -1)
		if len(pats) == 0 {
			t.Fatalf("antest: %s:%d: want comment carries no quoted pattern", filename, i+1)
		}
		for _, p := range pats {
			text := p[1]
			if p[2] != "" {
				text = p[2]
			} else {
				text = strings.ReplaceAll(text, `\"`, `"`)
			}
			re, err := regexp.Compile(text)
			if err != nil {
				t.Fatalf("antest: %s:%d: bad want pattern %q: %v", filename, i+1, text, err)
			}
			wants = append(wants, &expectation{file: filename, line: i + 1, pattern: re})
		}
	}
	return wants
}

// Run loads the fixture package in dir (relative to the test's working
// directory), applies the analyzer, and reports any mismatch between
// diagnostics and `// want` expectations.
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("antest: %v", err)
	}
	matches, err := filepath.Glob(filepath.Join(abs, "*.go"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("antest: no fixture files in %s (%v)", abs, err)
	}
	sort.Strings(matches)
	var wants []*expectation
	for _, f := range matches {
		wants = append(wants, parseWants(t, f)...)
	}
	l := Loader(t)
	pkg, err := l.CheckFiles("vavg/internal/analysis/testdata/"+filepath.Base(abs), matches)
	if err != nil {
		t.Fatalf("antest: loading fixture %s: %v", abs, err)
	}
	diags := analysis.Active(analysis.RunAnalyzers([]*analysis.Analyzer{a}, []*analysis.Package{pkg}))

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.met || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.pattern)
		}
	}
}
