package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestShardseam(t *testing.T) {
	antest.Run(t, analysis.Shardseam, "testdata/shardseam")
}
