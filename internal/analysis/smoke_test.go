package analysis_test

import (
	"os/exec"
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

// TestSuiteCleanOnModule is the in-process gate: the full analyzer suite
// must report zero findings on the module itself. Any true positive gets
// fixed; any deliberate exception carries a //lint:ignore with a reason.
func TestSuiteCleanOnModule(t *testing.T) {
	l := antest.Loader(t)
	pkgs, err := l.LoadPackages("./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	diags := analysis.Active(analysis.RunAnalyzers(analysis.All(), pkgs))
	for _, d := range diags {
		t.Errorf("finding on clean tree: %s", d)
	}
}

// TestVavglintCommand runs the installed entry point the way CI does and
// requires a zero exit.
func TestVavglintCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping go run in -short mode")
	}
	root, err := antest.ModuleRoot()
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	cmd := exec.Command("go", "run", "./cmd/vavglint", "./...")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("vavglint exited nonzero: %v\n%s", err, out)
	}
}
