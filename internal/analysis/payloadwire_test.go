package analysis_test

import (
	"testing"

	"vavg/internal/analysis"
	"vavg/internal/analysis/antest"
)

func TestPayloadwire(t *testing.T) {
	antest.Run(t, analysis.Payloadwire, "testdata/payloadwire")
}
