package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// The loader type-checks module packages without golang.org/x/tools and
// without the network: `go list -export` makes the go command compile
// export data for every dependency (standard library included) into the
// build cache, and go/importer's gc importer reads those files back
// through a lookup function. Target packages themselves are parsed from
// source so analyzers get full syntax trees with comments.

// A Package is one type-checked unit: a package's compiled files plus its
// in-package test files, or the external (_test-suffixed) test package.
type Package struct {
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory.
	Dir string
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath    string
	Name          string
	Dir           string
	Export        string
	Standard      bool
	ForTest       string
	GoFiles       []string
	TestGoFiles   []string
	XTestGoFiles  []string
	Error         *listErr
	DepsErrors    []*listErr
	InvalidGoFile string
}

type listErr struct {
	Err string
}

// A Loader resolves import paths to export data and type-checks source
// files against it. Create one with NewLoader, then call LoadPackages for
// module packages or CheckFiles for loose files (fixtures).
type Loader struct {
	// Dir is the module directory go commands run in.
	Dir  string
	Fset *token.FileSet

	exports map[string]string
	imp     types.Importer
}

// NewLoader builds a loader for the module rooted at dir, with export
// data covering the given package patterns, their dependencies, and their
// test dependencies. Patterns default to ./... .
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	out, err := runGo(dir, args)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Dir:     dir,
		Fset:    token.NewFileSet(),
		exports: map[string]string{},
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		// Test-augmented variants ("pkg [pkg.test]") carry export data for
		// the test build; the plain compilation is the one imports resolve
		// to, so prefer it and never overwrite.
		if p.Export == "" || p.ForTest != "" || strings.Contains(p.ImportPath, " [") {
			continue
		}
		if _, ok := l.exports[p.ImportPath]; !ok {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
	return l, nil
}

// LoadPackages parses and type-checks the module packages matching the
// patterns (default ./...). Each package yields up to two units: its
// compiled plus in-package test files, and its external test package. The
// tree must compile; any parse, list, or type error fails the load.
func (l *Loader) LoadPackages(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json"}, patterns...)
	out, err := runGo(l.Dir, args)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		units := []struct {
			path  string
			files []string
		}{
			{p.ImportPath, append(append([]string{}, p.GoFiles...), p.TestGoFiles...)},
			{p.ImportPath + "_test", p.XTestGoFiles},
		}
		for _, u := range units {
			if len(u.files) == 0 {
				continue
			}
			full := make([]string, len(u.files))
			for i, f := range u.files {
				full[i] = filepath.Join(p.Dir, f)
			}
			pkg, err := l.CheckFiles(u.path, full)
			if err != nil {
				return nil, err
			}
			pkg.Dir = p.Dir
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// CheckFiles parses and type-checks the given source files as one package
// with the given import path, resolving imports through the loader's
// export data. Fixture packages under testdata load through here.
func (l *Loader) CheckFiles(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l.imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{Fset: l.Fset, Syntax: files, Types: tpkg, TypesInfo: info}, nil
}

func runGo(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.Bytes(), nil
}
