package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// The loader type-checks module packages without golang.org/x/tools and
// without the network: `go list -export` makes the go command compile
// export data for every dependency (standard library included) into the
// build cache, and go/importer's gc importer reads those files back
// through a lookup function. Target packages themselves are parsed from
// source so analyzers get full syntax trees with comments.
//
// Units are independent — imports always resolve through export data,
// never through another unit's in-memory result — so LoadPackages checks
// them on a bounded worker pool, scheduled in dependency waves (a package
// is checked only after every module package it imports) to keep the
// shared importer's cache warm bottom-up. The result slice order is the
// go list output order regardless of worker count.

// A Package is one type-checked unit: a package's compiled files plus its
// in-package test files, or the external (_test-suffixed) test package.
type Package struct {
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// Dir is the package's source directory.
	Dir string
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath    string
	Name          string
	Dir           string
	Export        string
	Standard      bool
	ForTest       string
	GoFiles       []string
	TestGoFiles   []string
	XTestGoFiles  []string
	Imports       []string
	TestImports   []string
	XTestImports  []string
	Error         *listErr
	DepsErrors    []*listErr
	InvalidGoFile string
}

type listErr struct {
	Err string
}

// A Loader resolves import paths to export data and type-checks source
// files against it. Create one with NewLoader, then call LoadPackages for
// module packages or CheckFiles for loose files (fixtures).
type Loader struct {
	// Dir is the module directory go commands run in.
	Dir  string
	Fset *token.FileSet
	// Workers bounds the concurrent type-checking workers LoadPackages
	// uses; 0 means GOMAXPROCS. The returned package order and contents
	// are identical for every worker count.
	Workers int

	exports map[string]string
	imp     types.Importer
	impMu   sync.Mutex // the gc importer's cache is not safe for concurrent Import calls
}

// NewLoader builds a loader for the module rooted at dir, with export
// data covering the given package patterns, their dependencies, and their
// test dependencies. Patterns default to ./... .
func NewLoader(dir string, patterns ...string) (*Loader, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-test", "-json"}, patterns...)
	out, err := runGo(dir, args)
	if err != nil {
		return nil, err
	}
	l := &Loader{
		Dir:     dir,
		Fset:    token.NewFileSet(),
		exports: map[string]string{},
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		// Test-augmented variants ("pkg [pkg.test]") carry export data for
		// the test build; the plain compilation is the one imports resolve
		// to, so prefer it and never overwrite.
		if p.Export == "" || p.ForTest != "" || strings.Contains(p.ImportPath, " [") {
			continue
		}
		if _, ok := l.exports[p.ImportPath]; !ok {
			l.exports[p.ImportPath] = p.Export
		}
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	})
	return l, nil
}

// Import serializes access to the underlying gc importer, whose package
// cache is not safe for concurrent use. Loader itself is the
// types.Importer handed to every concurrent type-check.
func (l *Loader) Import(path string) (*types.Package, error) {
	l.impMu.Lock()
	defer l.impMu.Unlock()
	return l.imp.Import(path)
}

// unit is one pending type-check: a prospective Package plus the module
// packages it imports (its scheduling dependencies).
type unit struct {
	path    string
	dir     string
	files   []string
	imports []string
}

// LoadPackages parses and type-checks the module packages matching the
// patterns (default ./...). Each package yields up to two units: its
// compiled plus in-package test files, and its external test package.
// Units are checked concurrently on Workers goroutines in dependency
// waves; results keep go list order. The tree must compile; any parse,
// list, or type error fails the load.
func (l *Loader) LoadPackages(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-json"}, patterns...)
	out, err := runGo(l.Dir, args)
	if err != nil {
		return nil, err
	}
	var units []unit
	targets := map[string]bool{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		targets[p.ImportPath] = true
		compiled := unit{
			path:    p.ImportPath,
			dir:     p.Dir,
			files:   append(append([]string{}, p.GoFiles...), p.TestGoFiles...),
			imports: append(append([]string{}, p.Imports...), p.TestImports...),
		}
		xtest := unit{
			path:    p.ImportPath + "_test",
			dir:     p.Dir,
			files:   p.XTestGoFiles,
			imports: p.XTestImports, // includes p.ImportPath itself
		}
		for _, u := range []unit{compiled, xtest} {
			if len(u.files) == 0 {
				continue
			}
			for i, f := range u.files {
				u.files[i] = filepath.Join(p.Dir, f)
			}
			units = append(units, u)
		}
	}
	return l.checkUnits(units, targets)
}

// checkUnits type-checks every unit on a bounded worker pool, in waves of
// the module-local import DAG: wave k holds the units all of whose
// module-package imports were checked in earlier waves. The importer is
// shared (and serialized), so bottom-up scheduling means each dependency's
// export data is parsed once, early, instead of racing first-use.
func (l *Loader) checkUnits(units []unit, targets map[string]bool) ([]*Package, error) {
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Dependency level of each unit: 1 + max level over module imports.
	// The compiled unit of package p "is" p for scheduling; xtest units
	// import their own package, landing a wave later automatically.
	level := map[string]int{}
	var unitLevel func(path string, seen map[string]bool) int
	byPath := map[string]*unit{}
	for i := range units {
		byPath[units[i].path] = &units[i]
	}
	unitLevel = func(path string, seen map[string]bool) int {
		if lv, ok := level[path]; ok {
			return lv
		}
		u, ok := byPath[path]
		if !ok || seen[path] {
			return 0 // non-target import, or a cycle go list would have rejected
		}
		seen[path] = true
		lv := 0
		for _, imp := range u.imports {
			if targets[imp] && imp != path {
				if d := unitLevel(imp, seen) + 1; d > lv {
					lv = d
				}
			}
		}
		delete(seen, path)
		level[path] = lv
		return lv
	}
	maxLevel := 0
	for i := range units {
		if lv := unitLevel(units[i].path, map[string]bool{}); lv > maxLevel {
			maxLevel = lv
		}
	}

	pkgs := make([]*Package, len(units))
	errs := make([]error, len(units))
	for lv := 0; lv <= maxLevel; lv++ {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := range units {
			if level[units[i].path] != lv {
				continue
			}
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				pkg, err := l.CheckFiles(units[i].path, units[i].files)
				if err != nil {
					errs[i] = err
					return
				}
				pkg.Dir = units[i].dir
				pkgs[i] = pkg
			}(i)
		}
		wg.Wait()
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]*Package, 0, len(pkgs))
	for _, pkg := range pkgs {
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// CheckFiles parses and type-checks the given source files as one package
// with the given import path, resolving imports through the loader's
// export data. Fixture packages under testdata load through here. Safe
// for concurrent use: the FileSet is internally synchronized and the
// importer access is serialized.
func (l *Loader) CheckFiles(path string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		sort.Strings(typeErrs)
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", path, strings.Join(typeErrs, "\n\t"))
	}
	return &Package{Fset: l.Fset, Syntax: files, Types: tpkg, TypesInfo: info}, nil
}

func runGo(dir string, args []string) ([]byte, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return stdout.Bytes(), nil
}
