package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The fact layer is vavglint's interprocedural half, analogous to
// go/analysis facts but computed eagerly over every loaded unit before
// analyzers run. Two fact families are built:
//
//   - determinism summaries (FuncSummary): for every declared module
//     function, which results carry taint of their own, which parameters
//     flow into which results, and which parameters are forwarded to a
//     determinism sink (a message send, adversary hashing, a Result
//     field). detflow consults these at call sites.
//
//   - the any-lane payload closure: the set of concrete types that can
//     flow into the engine's `any` message lane anywhere in the module
//     (api.Send/SendID/Broadcast payloads, exec.Done outputs, Program
//     return values), found by propagating "lane-ness" backwards through
//     helper parameters and results to a fixed point. payloadwire checks
//     every type in the closure for wire-codability.
//
// Facts are computed from source alone, ignoring //lint: suppressions: a
// file-ignored function still contributes its real summary, so callers in
// other files are checked against what the function actually does, and
// suppression stays a per-diagnostic decision at the reporting site.

// A FuncSummary is the determinism fact for one declared function.
// Parameter indices count the receiver as 0 when present; at most 64
// parameters are tracked.
type FuncSummary struct {
	params     int
	results    []resultSummary
	sinkParams []string // "" = not forwarded to a sink; else sink description
}

type resultSummary struct {
	kinds      uint8  // taint the result carries regardless of arguments
	fromParams uint64 // parameter bits that flow into this result
}

func summaryEqual(a, b *FuncSummary) bool {
	if a.params != b.params || len(a.results) != len(b.results) {
		return false
	}
	for i := range a.results {
		if a.results[i] != b.results[i] {
			return false
		}
	}
	for i := range a.sinkParams {
		if a.sinkParams[i] != b.sinkParams[i] {
			return false
		}
	}
	return true
}

// laneEntry is one concrete type observed entering the any lane, with the
// earliest entry site (for reporting) and the helper chain is irrelevant —
// the type either crosses a wire or it does not.
type laneEntry struct {
	key      string // types.TypeString, the closure's identity
	typ      types.Type
	pos      token.Pos
	position token.Position
}

// ifaceMethod names one interface method whose results enter the lane
// (e.g. extend.Problem.Solve): lane-ness distributes to every module
// method that implements it.
type ifaceMethod struct {
	key   string // funcKey of the interface method, for dedup
	iface *types.Interface
	name  string
}

// laneOpaque is a lane entry whose concrete type could not be resolved
// statically (an interface-typed value from outside the recognized
// relay/helper shapes). payloadwire reports these as findings: an opaque
// payload is exactly what the cluster seam cannot serialize.
type laneOpaque struct {
	pos      token.Pos
	position token.Position
	desc     string
}

// Facts is the module-wide interprocedural fact store handed to
// NeedsFacts analyzers through Pass.Facts. Read-only once computed.
type Facts struct {
	// summaries maps funcKey -> determinism summary for every declared
	// module function with a body (non-test files).
	summaries map[string]*FuncSummary
	// laneParams maps funcKey -> parameter indices whose arguments enter
	// the any lane (seeded with the engine's entry points).
	laneParams map[string]map[int]bool
	// laneResults marks module helpers whose return value is passed to the
	// lane somewhere; their return sites become entry sites.
	laneResults map[string]bool
	// laneIfaces lists interface methods whose call results enter the
	// lane; every module method implementing one is lane-returning.
	laneIfaces []ifaceMethod
	// laneEntries is the resolved closure: one entry per concrete type, at
	// its earliest entry position, sorted by position.
	laneEntries []laneEntry
	// laneOpaque lists unresolvable interface-typed entries, sorted.
	laneOpaque []laneOpaque
	// codecs maps type keys to the position of their wire.Register call.
	codecs map[string]token.Position
}

// funcKey names a function module-wide: pkgpath.Name for package-level
// functions, pkgpath.Recv.Name for methods (pointer receivers unwrapped).
// String keys survive the source-checked/export-data object split: the
// same function has distinct types.Func objects in different units, but
// one key.
func funcKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	key := fn.Pkg().Path() + "."
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := dePtr(sig.Recv().Type()).(*types.Named); ok {
			key += named.Obj().Name() + "."
		}
	}
	return key + fn.Name()
}

func (f *Facts) summaryOf(fn *types.Func) *FuncSummary {
	if f == nil {
		return nil
	}
	return f.summaries[funcKey(fn)]
}

// funcNode is one function body scheduled for fact extraction.
type funcNode struct {
	pkg *Package
	fn  funcInfo
	key string // "" for function literals
}

// ComputeFacts builds the module-wide fact store over every unit: taint
// summaries for declared functions (to a fixed point over the call
// graph), the any-lane payload closure, and the registered-codec index.
// Test files contribute nothing: test-local programs are certified
// dynamically by the equivalence suites.
func ComputeFacts(pkgs []*Package) *Facts {
	f := &Facts{
		summaries:   map[string]*FuncSummary{},
		laneParams:  map[string]map[int]bool{},
		laneResults: map[string]bool{},
		codecs:      map[string]token.Position{},
	}
	var decls []funcNode // declared functions: summary subjects
	var nodes []funcNode // all functions incl. literals: lane-scan subjects
	for _, pkg := range pkgs {
		shim := &Pass{Fset: pkg.Fset, Info: pkg.TypesInfo}
		for _, file := range pkg.Syntax {
			if isTestFile(pkg.Fset, file) {
				continue
			}
			f.scanCodecs(pkg, file)
			for _, fn := range funcsIn(shim, file) {
				node := funcNode{pkg: pkg, fn: fn}
				if decl, ok := fn.node.(*ast.FuncDecl); ok {
					if obj, ok := pkg.TypesInfo.Defs[decl.Name].(*types.Func); ok {
						node.key = funcKey(obj)
					}
				}
				nodes = append(nodes, node)
				if node.key != "" {
					decls = append(decls, node)
				}
			}
		}
	}
	f.computeSummaries(decls)
	f.computeLaneClosure(nodes)
	return f
}

// computeSummaries iterates taint summarization over the call graph until
// no summary changes. Summaries only grow (taint bits and sink marks are
// monotone), so the iteration terminates; the bound is a safety net.
func (f *Facts) computeSummaries(decls []funcNode) {
	for _, n := range decls {
		f.summaries[n.key] = newSummary(n.fn.sig)
	}
	for iter := 0; iter < 20; iter++ {
		changed := false
		for _, n := range decls {
			sum := newSummary(n.fn.sig)
			s := &taintScope{
				info:       n.pkg.TypesInfo,
				fset:       n.pkg.Fset,
				facts:      f,
				sig:        n.fn.sig,
				progShaped: sigIsProgramShape(n.fn.sig),
				params:     paramObjs(n.fn.sig),
				vars:       map[types.Object]taintVal{},
				summary:    sum,
			}
			s.run(n.fn.body)
			if !summaryEqual(f.summaries[n.key], sum) {
				f.summaries[n.key] = sum
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

func newSummary(sig *types.Signature) *FuncSummary {
	params := sig.Params().Len()
	if sig.Recv() != nil {
		params++
	}
	if params > 64 {
		params = 64
	}
	return &FuncSummary{
		params:     params,
		results:    make([]resultSummary, sig.Results().Len()),
		sinkParams: make([]string, params),
	}
}

// paramObjs maps parameter objects (receiver first) to summary indices.
func paramObjs(sig *types.Signature) map[types.Object]int {
	m := map[types.Object]int{}
	i := 0
	if r := sig.Recv(); r != nil {
		m[r] = 0
		i = 1
	}
	for j := 0; j < sig.Params().Len(); j++ {
		if i+j < 64 {
			m[sig.Params().At(j)] = i + j
		}
	}
	return m
}

// paramIndexOf returns the summary index of obj among sig's parameters
// (receiver = 0), or ok=false.
func paramIndexOf(sig *types.Signature, obj types.Object) (int, bool) {
	i := 0
	if r := sig.Recv(); r != nil {
		if obj == r {
			return 0, true
		}
		i = 1
	}
	for j := 0; j < sig.Params().Len(); j++ {
		if sig.Params().At(j) == obj {
			return i + j, true
		}
	}
	return 0, false
}

// scanCodecs indexes wire.Register[T] instantiations: the presence of a
// registered codec is what licenses an otherwise non-codable type (a map
// field, say) to cross the wire.
func (f *Facts) scanCodecs(pkg *Package, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		var id *ast.Ident
		fun := ast.Unparen(call.Fun)
		if ix, ok := fun.(*ast.IndexExpr); ok {
			fun = ast.Unparen(ix.X)
		}
		switch fun := fun.(type) {
		case *ast.Ident:
			id = fun
		case *ast.SelectorExpr:
			id = fun.Sel
		default:
			return true
		}
		fn, ok := pkg.TypesInfo.Uses[id].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != wirePath || fn.Name() != "Register" {
			return true
		}
		inst, ok := pkg.TypesInfo.Instances[id]
		if !ok || inst.TypeArgs.Len() != 1 {
			return true
		}
		key := types.TypeString(inst.TypeArgs.At(0), nil)
		if _, dup := f.codecs[key]; !dup {
			f.codecs[key] = pkg.Fset.Position(call.Pos())
		}
		return true
	})
}

// computeLaneClosure propagates "this value enters the any lane"
// backwards from the engine's entry points through helper parameters and
// results until no new lane parameter or lane-returning helper appears,
// then records the concrete types observed at the entry sites.
func (f *Facts) computeLaneClosure(nodes []funcNode) {
	// Roots: the engine's any-lane entry points. Parameter indices count
	// the receiver, so API.Send(to, v) puts v at index 2.
	f.laneParams[execPath+".API.Send"] = map[int]bool{2: true}
	f.laneParams[execPath+".API.SendID"] = map[int]bool{2: true}
	f.laneParams[execPath+".API.Broadcast"] = map[int]bool{1: true}
	f.laneParams[execPath+".Done"] = map[int]bool{0: true}

	entries := map[string]laneEntry{}
	opaque := map[token.Position]laneOpaque{}
	for iter := 0; iter < 20; iter++ {
		changed := false
		for _, n := range nodes {
			// The engine implements the lane; its internals relay cells
			// and Finals, not new payload types.
			if n.pkg.Types.Path() == execPath {
				continue
			}
			if f.laneScan(n, entries, opaque) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	f.laneEntries = f.laneEntries[:0]
	for _, e := range entries {
		f.laneEntries = append(f.laneEntries, e)
	}
	sort.Slice(f.laneEntries, func(i, j int) bool {
		return posLess(f.laneEntries[i].position, f.laneEntries[j].position)
	})
	f.laneOpaque = f.laneOpaque[:0]
	for _, o := range opaque {
		f.laneOpaque = append(f.laneOpaque, o)
	}
	sort.Slice(f.laneOpaque, func(i, j int) bool {
		return posLess(f.laneOpaque[i].position, f.laneOpaque[j].position)
	})
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// laneScan walks one function body looking for values handed to the lane:
// arguments at known lane parameters, and return statements of
// Program-shaped functions or helpers already marked lane-returning.
// Reports whether the closure grew.
func (f *Facts) laneScan(n funcNode, entries map[string]laneEntry, opaque map[token.Position]laneOpaque) bool {
	info := n.pkg.TypesInfo
	changed := false
	laneReturns := sigIsProgramShape(n.fn.sig) || (n.key != "" && f.laneResults[n.key]) || f.implementsLaneIface(n.fn.sig)
	walkSkippingFuncLits(n.fn.body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.CallExpr:
			fn, _ := calleeObj(info, node).(*types.Func)
			if fn == nil {
				return true
			}
			laneIdxs := f.laneParams[funcKey(fn)]
			if len(laneIdxs) == 0 {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			base := 0
			if sig != nil && sig.Recv() != nil {
				base = 1
			}
			for i, a := range node.Args {
				if laneIdxs[base+i] {
					if f.resolveLanePayload(n, a, entries, opaque) {
						changed = true
					}
				}
			}
		case *ast.ReturnStmt:
			if laneReturns {
				for _, e := range node.Results {
					if f.resolveLanePayload(n, e, entries, opaque) {
						changed = true
					}
				}
			}
		}
		return true
	})
	return changed
}

// resolveLanePayload records what expression e contributes to the lane:
// a concrete type (an entry), a parameter of the enclosing function (the
// parameter becomes a lane parameter), a call to a module helper (the
// helper becomes lane-returning), a recognized relay (skipped), or an
// opaque interface value (a finding).
func (f *Facts) resolveLanePayload(n funcNode, e ast.Expr, entries map[string]laneEntry, opaque map[token.Position]laneOpaque) bool {
	info := n.pkg.TypesInfo
	e = ast.Unparen(e)
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && (b.Kind() == types.UntypedNil || b.Kind() == types.Invalid) {
		return false // a nil payload carries no type across the wire
	}
	if !types.IsInterface(t) {
		key := types.TypeString(t, nil)
		pos := n.pkg.Fset.Position(e.Pos())
		if old, ok := entries[key]; !ok || posLess(pos, old.position) {
			entries[key] = laneEntry{key: key, typ: t, pos: e.Pos(), position: pos}
			return !ok
		}
		return false
	}

	// Interface-typed: push lane-ness backwards.
	switch x := e.(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil && n.key != "" {
			if idx, ok := paramIndexOf(n.fn.sig, obj); ok {
				m := f.laneParams[n.key]
				if m == nil {
					m = map[int]bool{}
					f.laneParams[n.key] = m
				}
				if !m[idx] {
					m[idx] = true
					return true
				}
				return false
			}
		}
	case *ast.CallExpr:
		// A call to a Program (or Program-shaped helper): its own return
		// sites are entry sites, covered where it is declared.
		if sig, ok := typeUnder(info.TypeOf(x.Fun)).(*types.Signature); ok && sigIsProgramShape(sig) {
			return false
		}
		if fn, ok := calleeObj(info, x).(*types.Func); ok {
			if key := funcKey(fn); key != "" {
				if _, inModule := f.summaries[key]; inModule {
					if !f.laneResults[key] {
						f.laneResults[key] = true
						return true
					}
					return false
				}
				// An interface method: every module method implementing
				// the interface is lane-returning.
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					if it, ok := typeUnder(sig.Recv().Type()).(*types.Interface); ok {
						for _, im := range f.laneIfaces {
							if im.key == key {
								return false
							}
						}
						f.laneIfaces = append(f.laneIfaces, ifaceMethod{key: key, iface: it, name: fn.Name()})
						return true
					}
				}
			}
		}
	case *ast.SelectorExpr:
		// Relaying a received payload (msg.Data) or a settled output
		// (final.Output) introduces no new type: the sender's entry site
		// already contributed it.
		if isNamed(info.TypeOf(x.X), execPath, "Msg") && x.Sel.Name == "Data" {
			return false
		}
		if isNamed(info.TypeOf(x.X), execPath, "Final") && x.Sel.Name == "Output" {
			return false
		}
	case *ast.TypeAssertExpr:
		// v.(T): the asserted type is the payload.
		if x.Type != nil {
			return f.resolveLanePayload(n, x.Type, entries, opaque)
		}
	}

	pos := n.pkg.Fset.Position(e.Pos())
	if _, ok := opaque[pos]; !ok {
		opaque[pos] = laneOpaque{
			pos:      e.Pos(),
			position: pos,
			desc:     fmt.Sprintf("value of interface type %s", types.TypeString(t, nil)),
		}
		return true
	}
	return false
}

// implementsLaneIface reports whether sig is a method implementing a
// lane-returning interface method: same name, receiver (or its pointer)
// satisfying the interface.
func (f *Facts) implementsLaneIface(sig *types.Signature) bool {
	if sig == nil || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	for _, im := range f.laneIfaces {
		if im.name == "" {
			continue
		}
		// Method name must match; Implements settles the rest.
		found := false
		for i := 0; i < im.iface.NumMethods(); i++ {
			if im.iface.Method(i).Name() == im.name {
				found = true
				break
			}
		}
		if !found {
			continue
		}
		if types.Implements(recv, im.iface) || types.Implements(types.NewPointer(recv), im.iface) {
			// Only the matching method is lane-returning.
			if named, ok := dePtr(recv).(*types.Named); ok {
				for i := 0; i < named.NumMethods(); i++ {
					m := named.Method(i)
					if m.Name() == im.name && m.Type() == sig {
						return true
					}
				}
			}
		}
	}
	return false
}

// wireBad reports why type t cannot cross a process boundary, or "" if it
// can. A registered internal/wire codec licenses any named type; without
// one the structure must bottom out in booleans, numbers, and strings.
func (f *Facts) wireBad(t types.Type, seen map[types.Type]bool) string {
	if t == nil {
		return ""
	}
	if named, ok := t.(*types.Named); ok {
		if _, ok := f.codecs[types.TypeString(named, nil)]; ok {
			return ""
		}
	}
	if seen[t] {
		return ""
	}
	seen[t] = true
	name := func() string { return types.TypeString(t, nil) }
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Uintptr, types.UnsafePointer:
			return name() + " is an address-width value with no cross-process meaning"
		}
		if u.Info()&(types.IsBoolean|types.IsNumeric|types.IsString) != 0 {
			return ""
		}
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			fd := u.Field(i)
			if bad := f.wireBad(fd.Type(), seen); bad != "" {
				return fmt.Sprintf("field %s: %s", fd.Name(), bad)
			}
		}
		return ""
	case *types.Slice:
		if bad := f.wireBad(u.Elem(), seen); bad != "" {
			return "element: " + bad
		}
		return ""
	case *types.Array:
		if bad := f.wireBad(u.Elem(), seen); bad != "" {
			return "element: " + bad
		}
		return ""
	case *types.Pointer:
		return "pointer " + name() + " refers into the sender's address space"
	case *types.Map:
		return "map " + name() + " has no canonical wire order without a registered codec"
	case *types.Chan:
		return "channel " + name() + " cannot cross a process boundary"
	case *types.Signature:
		return "func value " + name() + " cannot cross a process boundary"
	case *types.Interface:
		return "interface " + name() + " carries an open-ended dynamic payload"
	}
	return name() + " is not wire-codable"
}

// LaneClosure renders the computed any-lane payload closure, one line per
// concrete type in entry-position order: the type, its wire status
// (codec / ok / rejected reason), and the earliest entry site. vavglint
// -closure prints this so DESIGN.md's payload table can be audited
// against the analysis rather than by hand.
func (f *Facts) LaneClosure() []string {
	var out []string
	for _, e := range f.laneEntries {
		status := "ok (structurally wire-codable)"
		if pos, ok := f.codecs[e.key]; ok {
			status = fmt.Sprintf("codec registered at %s:%d", pos.Filename, pos.Line)
		} else if bad := f.wireBad(e.typ, map[types.Type]bool{}); bad != "" {
			status = "REJECTED: " + bad
		}
		out = append(out, fmt.Sprintf("%s\n\t%s\n\tfirst entry: %s:%d:%d",
			e.key, status, e.position.Filename, e.position.Line, e.position.Column))
	}
	for _, o := range f.laneOpaque {
		out = append(out, fmt.Sprintf("(opaque) %s\n\tREJECTED: concrete type unknown\n\tentry: %s:%d:%d",
			o.desc, o.position.Filename, o.position.Line, o.position.Column))
	}
	if len(out) == 0 {
		out = append(out, "(empty closure: no any-lane payloads outside the engine)")
	}
	return out
}
