package analysis

import "go/types"

// Payloadwire enforces the wire-serializability contract that cluster
// mode (ROADMAP: TCP deployment seam over the step backend's shards)
// depends on: every concrete type that can enter the engine's `any`
// message lane — api.Send/SendID/Broadcast payloads, exec.Done outputs,
// and Program return values — must be able to cross a process boundary.
//
// The lane closure is computed module-wide by the fact layer (facts.go):
// lane-ness propagates backwards through helper parameters and results,
// so a payload built three calls away from the Send is still found. Each
// concrete type in the closure must either be structurally wire-codable
// (bottoming out in booleans, numbers, strings, and slices/arrays/structs
// of the same) or have a codec registered with wire.Register[T]. Types
// containing pointers, maps, channels, funcs, or nested interfaces are
// rejected; so are lane entries whose concrete type cannot be resolved
// statically (an opaque payload is exactly what the deployment seam
// cannot serialize). Findings are reported at the earliest entry site of
// the offending type, in the unit that owns that file.
var Payloadwire = &Analyzer{
	Name:       "payloadwire",
	Doc:        "every concrete type entering the any message lane must be wire-codable (cluster-mode precondition)",
	Run:        runPayloadwire,
	NeedsFacts: true,
	SkipPkgs:   []string{execPath},
}

func runPayloadwire(pass *Pass) {
	if pass.Facts == nil {
		return
	}
	// The closure is global; report each finding in the unit that owns the
	// entry site so suppressions and per-unit parallelism behave normally.
	// (Compiled and xtest units never share non-test files, so exactly one
	// unit reports each site; the merge layer dedups regardless.)
	own := map[string]bool{}
	for _, f := range pass.Files {
		own[pass.Fset.Position(f.Pos()).Filename] = true
	}
	for _, e := range pass.Facts.laneEntries {
		if !own[e.position.Filename] {
			continue
		}
		if bad := pass.Facts.wireBad(e.typ, map[types.Type]bool{}); bad != "" {
			pass.Reportf(e.pos, "payload type %s enters the any message lane but cannot cross a wire: %s; register an internal/wire codec or use a wire-codable representation",
				e.key, bad)
		}
	}
	for _, o := range pass.Facts.laneOpaque {
		if !own[o.position.Filename] {
			continue
		}
		pass.Reportf(o.pos, "%s enters the any message lane; its concrete payload type cannot be determined statically, so it cannot be certified wire-codable — pass the concrete value or route through a declared helper",
			o.desc)
	}
}
