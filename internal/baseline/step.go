package baseline

import (
	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/forest"
	"vavg/internal/hpartition"
)

// Step (state-machine) forms of the worst-case baselines. Each turn
// reproduces one round of the blocking form, so the two forms are
// byte-identical on every backend.

// startWCDecomp is the step form of wcDecomp; done runs in the settle
// turn, mirroring wcDecomp's return.
func startWCDecomp(api *engine.API, a int, eps float64,
	done func(d *forest.Decomp) engine.Step) engine.Step {
	d := forest.NewDecomp(api, a, eps)
	return d.StartWC(api, hpartition.EllBound(api.N(), eps), func() engine.Step {
		return done(d)
	})
}

// ForestDecompositionWCStep is the step form of ForestDecompositionWC.
func ForestDecompositionWCStep(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return startWCDecomp(api, a, eps, func(d *forest.Decomp) engine.Step {
				return engine.Done(d.Output(api))
			})
		}
	}
}

// ArbLinialWCStep is the step form of ArbLinialWC.
func ArbLinialWCStep(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return startWCDecomp(api, a, eps, func(d *forest.Decomp) engine.Step {
				ids := api.NeighborIDs()
				parents := make([]int, len(d.OutIdx))
				for j, k := range d.OutIdx {
					parents[j] = int(ids[k])
				}
				return engine.Done(coloring.LinialStep(api.N(), d.Tr.A, api.ID(), parents))
			})
		}
	}
}

// IteratedArbLinialWCStep is the step form of IteratedArbLinialWC.
func IteratedArbLinialWCStep(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return startWCDecomp(api, a, eps, func(d *forest.Decomp) engine.Step {
				var members, parents []int
				for k := 0; k < api.Degree(); k++ {
					members = append(members, k)
				}
				parents = append(parents, d.OutIdx...)
				return coloring.StartIteratedLinial(api, members, parents, d.Tr.A,
					func(ms []engine.Msg) { d.Tr.Absorb(api, ms) },
					func(c int) engine.Step { return engine.Done(c) })
			})
		}
	}
}

// ArbColorWCStep is the step form of ArbColorWC.
func ArbColorWCStep(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return startWCDecomp(api, a, eps, func(d *forest.Decomp) engine.Step {
				parentFinal := map[int]int{}
				var wait engine.StepFn
				var check func(api *engine.API) engine.Step
				check = func(api *engine.API) engine.Step {
					ready := true
					for _, k := range d.OutIdx {
						if _, ok := parentFinal[k]; !ok {
							ready = false
							break
						}
					}
					if ready {
						used := map[int]bool{}
						for _, k := range d.OutIdx {
							used[parentFinal[k]] = true
						}
						for c := 0; ; c++ {
							if !used[c] {
								return engine.Done(c)
							}
						}
					}
					return engine.Continue(wait)
				}
				wait = func(api *engine.API, inbox []engine.Msg) engine.Step {
					for _, m := range inbox {
						if f, ok := m.Data.(engine.Final); ok {
							if c, ok := f.Output.(int); ok {
								parentFinal[api.NeighborIndex(m.From)] = c
							}
						}
					}
					return check(api)
				}
				return check(api)
			})
		}
	}
}

// MISByColoringWCStep is the step form of MISByColoringWC.
func MISByColoringWCStep(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return startWCDecomp(api, a, eps, func(d *forest.Decomp) engine.Step {
				var members, parents []int
				for k := 0; k < api.Degree(); k++ {
					members = append(members, k)
				}
				parents = append(parents, d.OutIdx...)
				sink := func(ms []engine.Msg) { d.Tr.Absorb(api, ms) }
				return coloring.StartIteratedLinial(api, members, parents, d.Tr.A, sink,
					func(c int) engine.Step {
						palette := coloring.LinialFinalPalette(api.N(), d.Tr.A)
						inMIS, dominated := false, false
						cls := 0
						var recv engine.StepFn
						send := func(api *engine.API) engine.Step {
							if cls == c && !dominated {
								inMIS = true
								coloring.BroadcastChosen(api, wcMISKind, 1)
							}
							return engine.Continue(recv)
						}
						recv = func(api *engine.API, inbox []engine.Msg) engine.Step {
							for _, m := range inbox {
								if _, ok := coloring.AsChosen(m, wcMISKind); ok {
									dominated = true
								}
							}
							cls++
							if cls == palette {
								return engine.Done(inMIS)
							}
							return send(api)
						}
						return send(api)
					})
			})
		}
	}
}

// LubyMISStep is the step form of LubyMIS.
func LubyMISStep() engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		var p int64
		var bestTurn, finalTurn engine.StepFn
		draw := func(api *engine.API) engine.Step {
			p = api.Rand().Int63()
			api.BroadcastInt(p)
			return engine.Continue(bestTurn)
		}
		bestTurn = func(api *engine.API, inbox []engine.Msg) engine.Step {
			best := true
			for _, m := range inbox {
				if q, ok := m.AsInt(); ok {
					if q > p || (q == p && int(m.From) > api.ID()) {
						best = false
					}
				}
			}
			if best {
				return engine.Done(true)
			}
			return engine.Continue(finalTurn)
		}
		finalTurn = func(api *engine.API, inbox []engine.Msg) engine.Step {
			// Learn which neighbors joined this phase.
			for _, m := range inbox {
				if f, ok := m.Data.(engine.Final); ok {
					if in, ok := f.Output.(bool); ok && in {
						return engine.Done(false)
					}
				}
			}
			return draw(api)
		}
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return draw(api)
		}
	}
}

// Ring3ColoringStep is the step form of Ring3Coloring.
func Ring3ColoringStep() engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			n := api.N()
			succ := (api.ID() + 1) % n
			k := api.NeighborIndex(int32(succ))
			parentIdx := []int{-1, k}
			return coloring.StartCVForests(api, 1, parentIdx, coloring.NopSink,
				func(cv []int32) engine.Step { return engine.Done(int(cv[1])) })
		}
	}
}

// LeaderElectionRingStep is the step form of LeaderElectionRing.
func LeaderElectionRingStep() engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		if api.Degree() != 2 {
			panic("baseline: leader election requires a cycle")
		}
		left, right := 0, 1
		my := int32(api.ID())

		candidate := true
		phase := int32(0)
		replies := 0
		leader := false
		var outLeft, outRight []hsMsg

		launch := func() {
			hops := int32(1) << phase
			outLeft = append(outLeft, hsMsg{Kind: 0, ID: my, Hops: hops, Phase: phase})
			outRight = append(outRight, hsMsg{Kind: 0, ID: my, Hops: hops, Phase: phase})
			replies = 0
		}
		send := func(api *engine.API) {
			if len(outLeft) > 0 {
				api.Send(left, hsBatch{Msgs: outLeft})
			}
			if len(outRight) > 0 {
				api.Send(right, hsBatch{Msgs: outRight})
			}
			outLeft, outRight = nil, nil
		}
		end := func(api *engine.API, _ []engine.Msg) engine.Step {
			return engine.Done(LeaderOutput{Leader: leader})
		}
		var loop engine.StepFn
		loop = func(api *engine.API, inbox []engine.Msg) engine.Step {
			done := false
			for _, m := range inbox {
				fromLeft := api.NeighborIndex(m.From) == left
				batch, ok := m.Data.(hsBatch)
				if !ok {
					continue
				}
				fwd := &outRight // continue travel away from arrival side
				back := &outLeft
				if !fromLeft {
					fwd, back = &outLeft, &outRight
				}
				for _, h := range batch.Msgs {
					switch h.Kind {
					case 0: // probe
						switch {
						case h.ID == my:
							// Our own probe circumnavigated: we are leader.
							leader, candidate = true, true
							api.Commit()
							*fwd = append(*fwd, hsMsg{Kind: 2, ID: my})
							done = true
						case h.ID > my:
							if candidate {
								candidate = false
								api.Commit()
							}
							if h.Hops > 1 {
								*fwd = append(*fwd, hsMsg{Kind: 0, ID: h.ID, Hops: h.Hops - 1, Phase: h.Phase})
							} else {
								*back = append(*back, hsMsg{Kind: 1, ID: h.ID, Phase: h.Phase})
							}
						default:
							// Smaller candidate: swallow the probe.
						}
					case 1: // reply
						if h.ID == my {
							if candidate && h.Phase == phase {
								replies++
							}
						} else {
							*fwd = append(*fwd, h)
						}
					case 2: // completion wave
						if h.ID != my {
							*fwd = append(*fwd, h)
							api.Commit()
							done = true
						}
					}
				}
			}
			if done {
				// Flush any last relayed messages (the completion wave) in
				// one final round before terminating.
				send(api)
				return engine.Continue(end)
			}
			if candidate && !leader && replies == 2 {
				phase++
				launch()
			}
			send(api)
			return engine.Continue(loop)
		}
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			launch()
			send(api)
			return engine.Continue(loop)
		}
	}
}
