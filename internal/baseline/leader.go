package baseline

import "vavg/internal/engine"

// hsMsg is a Hirschberg-Sinclair message; batches of them travel each
// direction every round.
type hsMsg struct {
	Kind  int8 // 0 probe, 1 reply, 2 done
	ID    int32
	Hops  int32
	Phase int32
}

// hsBatch is the per-round payload per direction.
type hsBatch struct {
	Msgs []hsMsg
}

// LeaderElectionRing elects the maximum-ID vertex of a cycle using
// doubling-radius probes (Hirschberg-Sinclair). Per Feuilloley's first
// definition, a vertex commits its output the moment it learns it cannot
// be the leader — on average after O(log n) rounds over worst-case ID
// assignments — but keeps relaying until the leader's completion wave
// arrives, which takes Theta(n) rounds. The engine's round counts
// therefore reflect the worst case, while the reported CommitRound values
// realize the exponential average/worst-case gap of [12]. The program is
// port-based: it works on any 2-regular connected graph regardless of
// labeling (use graph.RingShuffled for a ring whose labels carry no
// positional information).
func LeaderElectionRing() engine.Program {
	return func(api *engine.API) any {
		if api.Degree() != 2 {
			panic("baseline: leader election requires a cycle")
		}
		left, right := 0, 1
		my := int32(api.ID())

		candidate := true
		phase := int32(0)
		replies := 0
		done := false
		leader := false
		var outLeft, outRight []hsMsg

		launch := func() {
			hops := int32(1) << phase
			outLeft = append(outLeft, hsMsg{Kind: 0, ID: my, Hops: hops, Phase: phase})
			outRight = append(outRight, hsMsg{Kind: 0, ID: my, Hops: hops, Phase: phase})
			replies = 0
		}
		launch()

		for !done {
			if len(outLeft) > 0 {
				api.Send(left, hsBatch{Msgs: outLeft})
			}
			if len(outRight) > 0 {
				api.Send(right, hsBatch{Msgs: outRight})
			}
			outLeft, outRight = nil, nil
			for _, m := range api.Next() {
				fromLeft := api.NeighborIndex(m.From) == left
				batch, ok := m.Data.(hsBatch)
				if !ok {
					continue
				}
				fwd := &outRight // continue travel away from arrival side
				back := &outLeft
				if !fromLeft {
					fwd, back = &outLeft, &outRight
				}
				for _, h := range batch.Msgs {
					switch h.Kind {
					case 0: // probe
						switch {
						case h.ID == my:
							// Our own probe circumnavigated: we are leader.
							leader, candidate = true, true
							api.Commit()
							*fwd = append(*fwd, hsMsg{Kind: 2, ID: my})
							done = true
						case h.ID > my:
							if candidate {
								candidate = false
								api.Commit()
							}
							if h.Hops > 1 {
								*fwd = append(*fwd, hsMsg{Kind: 0, ID: h.ID, Hops: h.Hops - 1, Phase: h.Phase})
							} else {
								*back = append(*back, hsMsg{Kind: 1, ID: h.ID, Phase: h.Phase})
							}
						default:
							// Smaller candidate: swallow the probe.
						}
					case 1: // reply
						if h.ID == my {
							if candidate && h.Phase == phase {
								replies++
							}
						} else {
							*fwd = append(*fwd, h)
						}
					case 2: // completion wave
						if h.ID != my {
							*fwd = append(*fwd, h)
							api.Commit()
							done = true
						}
					}
				}
			}
			if candidate && !leader && replies == 2 {
				phase++
				launch()
			}
		}
		// Flush any last relayed messages (the completion wave) in one
		// final round before terminating.
		if len(outLeft) > 0 {
			api.Send(left, hsBatch{Msgs: outLeft})
		}
		if len(outRight) > 0 {
			api.Send(right, hsBatch{Msgs: outRight})
		}
		api.Next()
		return LeaderOutput{Leader: leader}
	}
}
