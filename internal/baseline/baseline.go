// Package baseline implements the classical worst-case algorithms the
// paper's tables compare against. Their vertex-averaged complexity equals
// (up to constants) their worst-case complexity, because every vertex
// stays active until a global round bound elapses — which is exactly the
// contrast the paper draws with its exponentially-decaying executions.
//
//   - ForestDecompositionWC: Procedure Forest-Decomposition of
//     Barenboim-Elkin (2008): all ell = O(log n) partition rounds first,
//     then orientation and labeling. Theta(log n) for every vertex.
//   - ArbLinialWC: the O(a^2 log^2 n)-coloring obtained from one Linial
//     step after the full decomposition (the worst-case counterpart of
//     Section 7.2), and IteratedArbLinialWC, its O(a^2) fixed-point
//     version (worst-case counterpart of Sections 7.3/7.6).
//   - ArbColorWC: the O(a)-coloring of [8] via a full bottom-up recoloring
//     wave, Theta(a log n) rounds (worst-case counterpart of 7.4/7.7).
//   - MISByColoringWC: deterministic MIS via the worst-case coloring plus
//     a color-class sweep (worst-case counterpart of Corollary 8.4).
//   - LubyMIS: Luby's randomized MIS, the classical O(log n) w.h.p.
//     reference.
//   - Ring3Coloring: Cole-Vishkin 3-coloring of a ring, Theta(log* n) in
//     both measures (Feuilloley's negative example).
//   - LeaderElectionRing: Hirschberg-Sinclair-style leader election whose
//     output-commitment rounds average O(log n) against a Theta(n) worst
//     case (Feuilloley's positive example; commitment is reported in the
//     output because losers keep relaying, per Feuilloley's first
//     definition).
package baseline

import (
	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/forest"
	"vavg/internal/hpartition"
)

// wcDecomp runs the worst-case forest decomposition inside a vertex
// program: the full ell partition rounds (staying active throughout), one
// settle round, then local orientation and labeling.
func wcDecomp(api *engine.API, a int, eps float64) *forest.Decomp {
	d := forest.NewDecomp(api, a, eps)
	ell := hpartition.EllBound(api.N(), eps)
	for d.Tr.HIndex == 0 {
		d.StepJoin(api)
	}
	for api.Round() < ell {
		d.Tr.Absorb(api, api.Next())
	}
	d.Settle(api)
	return d
}

// ForestDecompositionWC is the classical Procedure Forest-Decomposition:
// the same output as forest.Program, but every vertex runs Theta(log n)
// rounds.
func ForestDecompositionWC(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		d := wcDecomp(api, a, eps)
		return d.Output(api)
	}
}

// ArbLinialWC colors with one Linial step after the full worst-case
// decomposition: an O(a^2 log^2 n)-coloring in Theta(log n) rounds for
// every vertex.
func ArbLinialWC(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		d := wcDecomp(api, a, eps)
		ids := api.NeighborIDs()
		parents := make([]int, len(d.OutIdx))
		for j, k := range d.OutIdx {
			parents[j] = int(ids[k])
		}
		return coloring.LinialStep(api.N(), d.Tr.A, api.ID(), parents)
	}
}

// IteratedArbLinialWC colors with the full iterated Arb-Linial-Coloring
// after the worst-case decomposition: an O(a^2)-coloring in
// Theta(log n + log* n) rounds for every vertex.
func IteratedArbLinialWC(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		d := wcDecomp(api, a, eps)
		var members, parents []int
		for k := 0; k < api.Degree(); k++ {
			members = append(members, k)
		}
		for _, k := range d.OutIdx {
			parents = append(parents, k)
		}
		return coloring.IteratedLinial(api, members, parents, d.Tr.A,
			func(ms []engine.Msg) { d.Tr.Absorb(api, ms) })
	}
}

// ArbColorWC is Procedure Arb-Color of [8]: worst-case decomposition, then
// a bottom-up recoloring wave over the whole graph with the palette
// {0..A}: an O(a)-coloring in Theta(a log n) rounds for every vertex.
func ArbColorWC(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		d := wcDecomp(api, a, eps)
		parentFinal := map[int]int{}
		for {
			ready := true
			for _, k := range d.OutIdx {
				if _, ok := parentFinal[k]; !ok {
					ready = false
					break
				}
			}
			if ready {
				used := map[int]bool{}
				for _, k := range d.OutIdx {
					used[parentFinal[k]] = true
				}
				for c := 0; ; c++ {
					if !used[c] {
						return c
					}
				}
			}
			for _, m := range api.Next() {
				if f, ok := m.Data.(engine.Final); ok {
					if c, ok := f.Output.(int); ok {
						parentFinal[api.NeighborIndex(m.From)] = c
					}
				}
			}
		}
	}
}

// MISByColoringWC computes an MIS deterministically via the worst-case
// O(a^2)-coloring followed by a full color-class sweep: Theta(log n + a^2)
// rounds for every vertex.
func MISByColoringWC(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		d := wcDecomp(api, a, eps)
		var members, parents []int
		for k := 0; k < api.Degree(); k++ {
			members = append(members, k)
		}
		for _, k := range d.OutIdx {
			parents = append(parents, k)
		}
		sink := func(ms []engine.Msg) { d.Tr.Absorb(api, ms) }
		c := coloring.IteratedLinial(api, members, parents, d.Tr.A, sink)
		palette := coloring.LinialFinalPalette(api.N(), d.Tr.A)
		inMIS, dominated := false, false
		for cls := 0; cls < palette; cls++ {
			if cls == c && !dominated {
				inMIS = true
				coloring.BroadcastChosen(api, wcMISKind, 1)
			}
			for _, m := range api.Next() {
				if _, ok := coloring.AsChosen(m, wcMISKind); ok {
					dominated = true
				}
			}
		}
		return inMIS
	}
}

const wcMISKind = 6

// LubyMIS is Luby's randomized maximal independent set: O(log n) rounds
// w.h.p. Phases take two lockstep rounds: priorities are exchanged, local
// maxima join the MIS and terminate (their Final announces it), and
// dominated vertices terminate in the following round. Priorities are the
// only fast-lane traffic of the program, so they travel untagged with the
// full 63 random bits.
func LubyMIS() engine.Program {
	return func(api *engine.API) any {
		for {
			p := api.Rand().Int63()
			api.BroadcastInt(p)
			best := true
			for _, m := range api.Next() {
				if q, ok := m.AsInt(); ok {
					if q > p || (q == p && int(m.From) > api.ID()) {
						best = false
					}
				}
			}
			if best {
				return true
			}
			// Learn which neighbors joined this phase.
			for _, m := range api.Next() {
				if f, ok := m.Data.(engine.Final); ok {
					if in, ok := f.Output.(bool); ok && in {
						return false
					}
				}
			}
		}
	}
}

// Ring3Coloring 3-colors a cycle generated by graph.Ring via Cole-Vishkin
// with the successor orientation: Theta(log* n) rounds for every vertex,
// matching Feuilloley's result that the vertex-averaged complexity of
// ring coloring cannot beat the worst case.
func Ring3Coloring() engine.Program {
	return func(api *engine.API) any {
		n := api.N()
		succ := (api.ID() + 1) % n
		k := api.NeighborIndex(int32(succ))
		parentIdx := []int{-1, k}
		cv := coloring.CVForests(api, 1, parentIdx, coloring.NopSink)
		return int(cv[1])
	}
}

// LeaderOutput is the per-vertex result of LeaderElectionRing. The
// output-commitment rounds (Feuilloley's measure — losers keep relaying
// after committing, so termination rounds reflect the Theta(n) worst
// case) are reported through the engine's Result.CommitRounds.
type LeaderOutput struct {
	// Leader reports whether this vertex won.
	Leader bool
}
