package baseline

import (
	"testing"

	"vavg/internal/check"
	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/forest"
	"vavg/internal/graph"
	"vavg/internal/hpartition"
)

func TestForestDecompositionWC(t *testing.T) {
	g := graph.ForestUnion(500, 3, 5)
	res, err := engine.Run(g, ForestDecompositionWC(3, 2), engine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	orient, labels, err := forest.Collect(g, res.Output)
	if err != nil {
		t.Fatal(err)
	}
	A := hpartition.ParamA(3, 2)
	if err := check.ForestDecomposition(g, orient, labels, A); err != nil {
		t.Error(err)
	}
	// Worst-case behavior: every vertex pays the full ell rounds.
	ell := hpartition.EllBound(g.N(), 2)
	for v := 0; v < g.N(); v++ {
		if int(res.Rounds[v]) < ell {
			t.Fatalf("vertex %d terminated after %d rounds, want >= ell=%d", v, res.Rounds[v], ell)
		}
	}
	// Contrast with the paper's O(1) vertex-averaged version.
	fast, err := engine.Run(g, forest.Program(3, 2), engine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fast.VertexAverage()*2 > res.VertexAverage() {
		t.Errorf("expected a clear gap: fast %.2f vs WC %.2f", fast.VertexAverage(), res.VertexAverage())
	}
}

func TestWCColoringsProper(t *testing.T) {
	g := graph.ForestUnion(300, 2, 9)
	A := hpartition.ParamA(2, 2)
	cases := []struct {
		name string
		prog engine.Program
		max  int
	}{
		{"arblinial", ArbLinialWC(2, 2), coloring.LinialPaletteAfter(g.N(), A)},
		{"iterated", IteratedArbLinialWC(2, 2), coloring.LinialFinalPalette(g.N(), A)},
		{"arbcolor", ArbColorWC(2, 2), A + 1},
	}
	for _, c := range cases {
		res, err := engine.Run(g, c.prog, engine.Options{Seed: 1, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		cols := make([]int, g.N())
		for v, o := range res.Output {
			cols[v] = o.(int)
		}
		if err := check.VertexColoring(g, cols, c.max); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestMISBaselines(t *testing.T) {
	g := graph.ForestUnion(300, 3, 11)
	res, err := engine.Run(g, MISByColoringWC(3, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	in := make([]bool, g.N())
	for v, o := range res.Output {
		in[v] = o.(bool)
	}
	if err := check.MIS(g, in); err != nil {
		t.Errorf("deterministic WC MIS: %v", err)
	}

	for seed := int64(1); seed <= 3; seed++ {
		res, err := engine.Run(g, LubyMIS(), engine.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for v, o := range res.Output {
			in[v] = o.(bool)
		}
		if err := check.MIS(g, in); err != nil {
			t.Errorf("Luby seed=%d: %v", seed, err)
		}
	}
}

func TestRing3Coloring(t *testing.T) {
	for _, n := range []int{16, 128, 1024} {
		g := graph.Ring(n)
		res, err := engine.Run(g, Ring3Coloring(), engine.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		cols := make([]int, g.N())
		for v, o := range res.Output {
			cols[v] = o.(int)
		}
		if err := check.VertexColoring(g, cols, 3); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		// All vertices terminate together: vertex-averaged == worst case,
		// Feuilloley's negative example.
		if res.VertexAverage() != float64(res.TotalRounds) {
			t.Errorf("n=%d: avg %.2f != worst %d", n, res.VertexAverage(), res.TotalRounds)
		}
	}
}

func TestLeaderElectionRing(t *testing.T) {
	for _, n := range []int{8, 64, 256} {
		g := graph.Ring(n)
		res, err := engine.Run(g, LeaderElectionRing(), engine.Options{Seed: 1, MaxRounds: 64 * n})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		leaders := 0
		for _, o := range res.Output {
			if o.(LeaderOutput).Leader {
				leaders++
			}
		}
		if leaders != 1 {
			t.Fatalf("n=%d: %d leaders", n, leaders)
		}
		avgCommit := res.CommitAverage()
		maxCommit := res.MaxCommit()
		// Exponential gap: average commitment is O(log n), the last
		// commitment (the leader's) is Theta(n)-ish.
		if n >= 64 && avgCommit*4 > float64(maxCommit) {
			t.Errorf("n=%d: avg commit %.1f vs max %d — expected a clear gap", n, avgCommit, maxCommit)
		}
	}
}
