// Package randcolor implements the randomized algorithms of Section 9:
// Procedure Rand-Delta-Plus1 (Section 9.2), a Luby-style (Delta+1)-vertex-
// coloring whose vertex-averaged complexity is O(1) with high probability,
// and the two-phase O(a loglog n)-coloring of Section 9.3, also with O(1)
// vertex-averaged complexity w.h.p.
//
// In every round of the basic protocol each active vertex flips a fair
// bit; on success it draws a uniform color from its remaining palette and
// keeps it if no rival announced the same color in the same round and no
// terminated rival owns it. A vertex therefore terminates with probability
// at least 1/4 per round, giving the exponential decay in active vertices
// that drives the O(1) vertex-averaged bound (Theorem 9.1).
package randcolor

import (
	"math"

	"vavg/internal/engine"
	"vavg/internal/hpartition"
	"vavg/internal/wire"
)

// Tentative candidate colors (randomly drawn palette offsets) travel on
// the fast lane as wire.TagTent; ALogLog interleaves them with partition
// joins on the same edges, which the tag keeps apart.

// randColorLoop runs the Luby-style protocol over palette offsets
// [0, size). forbidden holds offsets owned by finished rivals; extra is
// invoked with every round's messages and must keep forbidden up to date
// (including rival Final announcements). rival says whether tentatives
// from the given neighbor index compete on this palette. The returned
// offset is proper against all rivals.
func randColorLoop(api *engine.API, size int, forbidden map[int32]bool,
	rival func(nbrIdx int) bool, extra func([]engine.Msg)) int32 {
	for {
		var cand int32 = -1
		if api.Rand().Intn(2) == 1 {
			free := make([]int32, 0, size)
			for c := int32(0); c < int32(size); c++ {
				if !forbidden[c] {
					free = append(free, c)
				}
			}
			if len(free) == 0 {
				panic("randcolor: palette exhausted (invariant violated)")
			}
			cand = free[api.Rand().Intn(len(free))]
			api.BroadcastInt(wire.Pack(wire.TagTent, int64(cand)))
		}
		msgs := api.Next()
		extra(msgs)
		conflict := false
		for _, m := range msgs {
			if x, ok := m.AsInt(); ok && wire.Tag(x) == wire.TagTent &&
				int32(wire.Payload(x)) == cand && rival(api.NeighborIndex(m.From)) {
				conflict = true
			}
		}
		if cand >= 0 && !conflict && !forbidden[cand] {
			return cand
		}
	}
}

// finalColor extracts a flat color from a Final payload.
func finalColor(out any) (int32, bool) {
	if c, ok := out.(int); ok {
		return int32(c), true
	}
	return 0, false
}

// DeltaPlus1 is Procedure Rand-Delta-Plus1 (Section 9.2): each vertex
// colors itself from {0, ..., deg(v)}, yielding a (Delta+1)-coloring of
// the input graph with O(1) vertex-averaged complexity w.h.p. The
// per-vertex output is its color (int).
func DeltaPlus1() engine.Program {
	return func(api *engine.API) any {
		forbidden := map[int32]bool{}
		extra := func(msgs []engine.Msg) {
			for _, m := range msgs {
				if f, ok := m.Data.(engine.Final); ok {
					if c, ok := finalColor(f.Output); ok {
						forbidden[c] = true
					}
				}
			}
		}
		c := randColorLoop(api, api.Degree()+1, forbidden,
			func(int) bool { return true }, extra)
		return int(c)
	}
}

// phase1T returns t = floor(2 loglog n), clamped to [1, ell].
func phase1T(n, ell int) int {
	t := int(math.Floor(2 * math.Log2(math.Max(2, math.Log2(float64(max(n, 4)))))))
	if t < 1 {
		t = 1
	}
	if t > ell {
		t = ell
	}
	return t
}

// ALogLog is the two-phase randomized O(a loglog n)-coloring of Section
// 9.3, with O(1) vertex-averaged complexity w.h.p. Phase 1 runs
// t = floor(2 loglog n) partition rounds; each H-set colors itself with
// the randomized protocol on its private (A+1)-color block as soon as it
// forms. Phase-2 vertices (only O(n / log^2 n) of them) finish the
// partition and color themselves from one shared block, each first
// waiting for its still-active and later-set neighbors to finalize, which
// resolves the sets in descending order exactly as in the paper. The flat
// output color is block*(A+1)+offset, at most (t+1)(A+1) = O(a loglog n)
// colors overall.
func ALogLog(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		n := api.N()
		A := hpartition.ParamA(a, eps)
		ell := hpartition.EllBound(n, eps)
		t := phase1T(n, ell)
		tr := hpartition.NewTracker(api, a, eps)

		for int32(api.Round()) < int32(t) && tr.HIndex == 0 {
			tr.Step(api)
		}
		finals := map[int]int32{} // neighbor index -> flat final color
		absorb := func(msgs []engine.Msg) {
			tr.Absorb(api, msgs)
			for _, m := range msgs {
				if f, ok := m.Data.(engine.Final); ok {
					if c, ok := finalColor(f.Output); ok {
						finals[api.NeighborIndex(m.From)] = c
					}
				}
			}
		}

		if tr.HIndex != 0 {
			// Phase 1: settle, then color within the set on block HIndex-1.
			absorb(api.Next())
			i := tr.HIndex
			base := int32(i-1) * int32(A+1)
			forbidden := map[int32]bool{}
			extra := func(msgs []engine.Msg) {
				absorb(msgs)
				for k, f := range finals {
					if tr.NbrH[k] == i && f >= base && f < base+int32(A+1) {
						forbidden[f-base] = true
					}
				}
			}
			c := randColorLoop(api, A+1, forbidden,
				func(k int) bool { return tr.NbrH[k] == i }, extra)
			return int(base + c)
		}

		// Phase 2: finish the partition, then wait for every still-active
		// or later-set neighbor to finalize before coloring on the shared
		// phase-2 block.
		for tr.HIndex == 0 {
			tr.Step(api)
		}
		j := tr.HIndex
		base := int32(t) * int32(A+1)
		for {
			ready := true
			for k, h := range tr.NbrH {
				if h != 0 && h <= j {
					continue
				}
				if _, done := finals[k]; !done {
					ready = false
					break
				}
			}
			if ready {
				break
			}
			absorb(api.Next())
		}
		forbidden := map[int32]bool{}
		extra := func(msgs []engine.Msg) {
			absorb(msgs)
			for k, f := range finals {
				if tr.NbrH[k] > int32(t) && f >= base {
					forbidden[f-base] = true
				}
			}
		}
		extra(nil)
		c := randColorLoop(api, A+1, forbidden,
			func(k int) bool { return tr.NbrH[k] > int32(t) }, extra)
		return int(base + c)
	}
}

// ALogLogPalette returns the color budget of ALogLog: (t+1)(A+1).
func ALogLogPalette(n, a int, eps float64) int {
	A := hpartition.ParamA(a, eps)
	ell := hpartition.EllBound(n, eps)
	return (phase1T(n, ell) + 1) * (A + 1)
}
