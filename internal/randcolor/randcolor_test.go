package randcolor

import (
	"testing"
	"testing/quick"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
)

func colorsOf(t *testing.T, res *engine.Result) []int {
	t.Helper()
	cs := make([]int, len(res.Output))
	for v, o := range res.Output {
		cs[v] = o.(int)
	}
	return cs
}

func TestRandDeltaPlus1Proper(t *testing.T) {
	cases := []*graph.Graph{
		graph.Ring(64),
		graph.Star(80),
		graph.ForestUnion(400, 3, 5),
		graph.Clique(15),
		graph.Gnm(300, 1200, 7),
	}
	for _, g := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			res, err := engine.Run(g, DeltaPlus1(), engine.Options{Seed: seed})
			if err != nil {
				t.Fatalf("%s: %v", g.Name, err)
			}
			cols := colorsOf(t, res)
			if err := check.VertexColoring(g, cols, g.MaxDegree()+1); err != nil {
				t.Errorf("%s seed=%d: %v", g.Name, seed, err)
			}
			for v := 0; v < g.N(); v++ {
				if cols[v] > g.Degree(v) {
					t.Errorf("%s: vertex %d color %d exceeds degree", g.Name, v, cols[v])
				}
			}
		}
	}
}

func TestRandDeltaPlus1VertexAveragedConstant(t *testing.T) {
	// Theorem 9.1: O(1) vertex-averaged complexity w.h.p. The expected
	// per-vertex round count is at most ~4+1; allow slack.
	for _, n := range []int{1000, 8000} {
		g := graph.Gnm(n, 4*n, int64(n))
		res, err := engine.Run(g, DeltaPlus1(), engine.Options{Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		if avg := res.VertexAverage(); avg > 8 {
			t.Errorf("n=%d: vertex-averaged %.2f, want O(1)", n, avg)
		}
	}
}

func TestALogLogProper(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		a int
	}{
		{graph.Ring(64), 2},
		{graph.Star(80), 1},
		{graph.ForestUnion(400, 3, 5), 3},
		{graph.TriangulatedGrid(10, 10), 3},
		{graph.Clique(12), 6},
	}
	for _, c := range cases {
		for seed := int64(1); seed <= 3; seed++ {
			res, err := engine.Run(c.g, ALogLog(c.a, 2), engine.Options{Seed: seed, MaxRounds: 1 << 20})
			if err != nil {
				t.Fatalf("%s: %v", c.g.Name, err)
			}
			cols := colorsOf(t, res)
			if err := check.VertexColoring(c.g, cols, ALogLogPalette(c.g.N(), c.a, 2)); err != nil {
				t.Errorf("%s seed=%d: %v", c.g.Name, seed, err)
			}
		}
	}
}

func TestALogLogVertexAveragedConstant(t *testing.T) {
	for _, n := range []int{2000, 16000} {
		g := graph.ForestUnion(n, 2, 21)
		res, err := engine.Run(g, ALogLog(2, 2), engine.Options{Seed: 9, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		if avg := res.VertexAverage(); avg > 12 {
			t.Errorf("n=%d: vertex-averaged %.2f, want O(1)", n, avg)
		}
	}
}

func TestALogLogPaletteShape(t *testing.T) {
	// O(a loglog n): doubling n many times should grow the palette only via
	// the loglog factor.
	p1 := ALogLogPalette(1<<10, 3, 2)
	p2 := ALogLogPalette(1<<20, 3, 2)
	if p2 > 2*p1 {
		t.Errorf("palette grew too fast: %d -> %d", p1, p2)
	}
}

func TestRandProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := graph.ForestUnion(120, 2, seed)
		res, err := engine.Run(g, ALogLog(2, 1), engine.Options{Seed: seed, MaxRounds: 1 << 20})
		if err != nil {
			return false
		}
		cs := make([]int, g.N())
		for v, o := range res.Output {
			cs[v] = o.(int)
		}
		return check.VertexColoring(g, cs, 0) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestALogLogPhase2Exercised forces vertices into the second phase: on a
// deep 4-ary tree with eps=0.25 the partition peels one level per round,
// outlasting the t = 2 loglog n phase-1 budget, so the inner levels must
// color through the phase-2 wait-for-later-sets path.
func TestALogLogPhase2Exercised(t *testing.T) {
	g := graph.KaryTree(100000, 4)
	res, err := engine.Run(g, ALogLog(1, 0.25), engine.Options{Seed: 3, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cols := colorsOf(t, res)
	if err := check.VertexColoring(g, cols, ALogLogPalette(g.N(), 1, 0.25)); err != nil {
		t.Fatal(err)
	}
	// Verify the run actually reached phase 2: some vertex must carry a
	// color from the shared phase-2 block.
	A := 3 // ParamA(1, 0.25)
	ell := 40
	_ = ell
	tBudget := 8 // 2*loglog(1e5) floored
	base := tBudget * (A + 1)
	reached := 0
	for _, c := range cols {
		if c >= base {
			reached++
		}
	}
	if reached == 0 {
		t.Fatal("no vertex used the phase-2 palette block; phase 2 untested")
	}
	t.Logf("phase-2 vertices: %d of %d", reached, g.N())
}
