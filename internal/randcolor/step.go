package randcolor

import (
	"vavg/internal/engine"
	"vavg/internal/hpartition"
	"vavg/internal/wire"
)

// Step (state-machine) forms of the randomized colorings. Every turn
// reproduces one round of the blocking form — same PRNG draw order, same
// broadcasts, same termination round — so the two forms are
// byte-identical on every backend.

// startRandColor begins the Luby-style protocol of randColorLoop as a
// step sub-machine: it performs the first round's coin flip and tentative
// broadcast immediately (within the caller's current turn, exactly where
// the blocking loop's first iteration runs) and returns the Step that
// continues the protocol. done is invoked — in the turn the color is
// secured — to produce the caller's continuation.
func startRandColor(api *engine.API, size int, forbidden map[int32]bool,
	rival func(nbrIdx int) bool, extra func([]engine.Msg),
	done func(int32) engine.Step) engine.Step {
	var cand int32
	draw := func(api *engine.API) {
		cand = -1
		if api.Rand().Intn(2) == 1 {
			free := make([]int32, 0, size)
			for c := int32(0); c < int32(size); c++ {
				if !forbidden[c] {
					free = append(free, c)
				}
			}
			if len(free) == 0 {
				panic("randcolor: palette exhausted (invariant violated)")
			}
			cand = free[api.Rand().Intn(len(free))]
			api.BroadcastInt(wire.Pack(wire.TagTent, int64(cand)))
		}
	}
	var loop engine.StepFn
	loop = func(api *engine.API, inbox []engine.Msg) engine.Step {
		extra(inbox)
		conflict := false
		for _, m := range inbox {
			if x, ok := m.AsInt(); ok && wire.Tag(x) == wire.TagTent &&
				int32(wire.Payload(x)) == cand && rival(api.NeighborIndex(m.From)) {
				conflict = true
			}
		}
		if cand >= 0 && !conflict && !forbidden[cand] {
			return done(cand)
		}
		draw(api)
		return engine.Continue(loop)
	}
	draw(api)
	return engine.Continue(loop)
}

// DeltaPlus1Step is the step form of DeltaPlus1.
func DeltaPlus1Step() engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			forbidden := map[int32]bool{}
			extra := func(msgs []engine.Msg) {
				for _, m := range msgs {
					if f, ok := m.Data.(engine.Final); ok {
						if c, ok := finalColor(f.Output); ok {
							forbidden[c] = true
						}
					}
				}
			}
			return startRandColor(api, api.Degree()+1, forbidden,
				func(int) bool { return true }, extra,
				func(c int32) engine.Step { return engine.Done(int(c)) })
		}
	}
}

// ALogLogStep is the step form of ALogLog: the same two phases, with each
// blocking wait loop unrolled into one turn per round.
func ALogLogStep(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		n := api.N()
		A := hpartition.ParamA(a, eps)
		ell := hpartition.EllBound(n, eps)
		t := phase1T(n, ell)
		tr := hpartition.NewTracker(api, a, eps)

		finals := map[int]int32{} // neighbor index -> flat final color
		absorb := func(msgs []engine.Msg) {
			tr.Absorb(api, msgs)
			for _, m := range msgs {
				if f, ok := m.Data.(engine.Final); ok {
					if c, ok := finalColor(f.Output); ok {
						finals[api.NeighborIndex(m.From)] = c
					}
				}
			}
		}

		// Phase 1 sets color on their private block as soon as they settle.
		settle1 := func(api *engine.API, inbox []engine.Msg) engine.Step {
			absorb(inbox)
			i := tr.HIndex
			base := int32(i-1) * int32(A+1)
			forbidden := map[int32]bool{}
			extra := func(msgs []engine.Msg) {
				absorb(msgs)
				for k, f := range finals {
					if tr.NbrH[k] == i && f >= base && f < base+int32(A+1) {
						forbidden[f-base] = true
					}
				}
			}
			return startRandColor(api, A+1, forbidden,
				func(k int) bool { return tr.NbrH[k] == i }, extra,
				func(c int32) engine.Step { return engine.Done(int(base + c)) })
		}

		// Phase 2: once joined, wait for every still-active or later-set
		// neighbor to finalize, then color on the shared block.
		base2 := int32(t) * int32(A+1)
		var waitReady engine.StepFn
		tryReady := func(api *engine.API) engine.Step {
			j := tr.HIndex
			ready := true
			for k, h := range tr.NbrH {
				if h != 0 && h <= j {
					continue
				}
				if _, done := finals[k]; !done {
					ready = false
					break
				}
			}
			if !ready {
				return engine.Continue(waitReady)
			}
			forbidden := map[int32]bool{}
			extra := func(msgs []engine.Msg) {
				absorb(msgs)
				for k, f := range finals {
					if tr.NbrH[k] > int32(t) && f >= base2 {
						forbidden[f-base2] = true
					}
				}
			}
			extra(nil)
			return startRandColor(api, A+1, forbidden,
				func(k int) bool { return tr.NbrH[k] > int32(t) }, extra,
				func(c int32) engine.Step { return engine.Done(int(base2 + c)) })
		}
		waitReady = func(api *engine.API, inbox []engine.Msg) engine.Step {
			absorb(inbox)
			return tryReady(api)
		}
		var phase2 engine.StepFn
		phase2 = func(api *engine.API, inbox []engine.Msg) engine.Step {
			absorb(inbox)
			if tr.HIndex == 0 {
				tr.Advance(api)
				return engine.Continue(phase2)
			}
			return tryReady(api)
		}

		// Phase 1: t partition rounds; joiners settle one round, then color.
		var phase1 engine.StepFn
		phase1 = func(api *engine.API, inbox []engine.Msg) engine.Step {
			absorb(inbox)
			if tr.HIndex != 0 {
				return engine.Continue(settle1)
			}
			if int32(api.Round()) < int32(t) {
				tr.Advance(api)
				return engine.Continue(phase1)
			}
			tr.Advance(api)
			return engine.Continue(phase2)
		}
		return phase1
	}
}
