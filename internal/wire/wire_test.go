package wire

import "testing"

func TestPackRoundTrip(t *testing.T) {
	cases := []struct {
		tag     uint8
		payload int64
	}{
		{TagJoin, 0},
		{TagJoin, 12345},
		{TagChosen, Pair(6, 1<<31-1)},
		{TagTent, PayloadMax},
		{TagAssign, 3},
	}
	for _, c := range cases {
		x := Pack(c.tag, c.payload)
		if x < 0 {
			t.Errorf("Pack(%d,%d) = %d: negative packed value", c.tag, c.payload, x)
		}
		if Tag(x) != c.tag || Payload(x) != c.payload {
			t.Errorf("Pack(%d,%d) round-trips to (%d,%d)", c.tag, c.payload, Tag(x), Payload(x))
		}
	}
	// Raw (untagged) small values must not collide with any tag.
	if Tag(1<<56-1) != 0 {
		t.Error("raw 56-bit value reports a nonzero tag")
	}
}

func TestPairRoundTrip(t *testing.T) {
	for _, c := range [][2]int32{{0, 0}, {1, 2}, {6, 1<<31 - 1}, {1<<24 - 1, 0}} {
		p := Pair(c[0], c[1])
		if PairHi(p) != c[0] || PairLo(p) != c[1] {
			t.Errorf("Pair(%d,%d) round-trips to (%d,%d)", c[0], c[1], PairHi(p), PairLo(p))
		}
	}
}

func TestPackPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("negative payload", func() { Pack(TagJoin, -1) })
	mustPanic("oversized payload", func() { Pack(TagJoin, PayloadMax+1) })
	mustPanic("negative pair lo", func() { Pair(0, -1) })
	mustPanic("oversized pair hi", func() { Pair(1<<24, 0) })
}
