package wire_test

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"vavg/internal/wire"
)

type testPayload struct {
	Kind int32
	M    map[int32]int32
}

func init() {
	wire.Register(wire.Codec[testPayload]{
		Name: "wire_test.testPayload",
		Encode: func(buf []byte, v testPayload) []byte {
			buf = wire.AppendUvarint(buf, uint64(uint32(v.Kind)))
			return wire.AppendSortedInt32Map(buf, v.M)
		},
		Decode: func(buf []byte) (testPayload, int, error) {
			k, n := wire.Uvarint(buf)
			if n <= 0 {
				return testPayload{}, 0, fmt.Errorf("kind truncated")
			}
			m, mn, err := wire.DecodeSortedInt32Map(buf[n:], 1<<16)
			if err != nil {
				return testPayload{}, 0, err
			}
			return testPayload{Kind: int32(k), M: m}, n + mn, nil
		},
	})
}

func TestCodecRoundTrip(t *testing.T) {
	v := testPayload{Kind: 7, M: map[int32]int32{3: -1, 1: 42, 900: 0}}
	buf := wire.Encode(nil, v)
	got, n, err := wire.Decode("wire_test.testPayload", buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip: got %+v want %+v", got, v)
	}
	if name, ok := wire.CodecName(v); !ok || name != "wire_test.testPayload" {
		t.Fatalf("CodecName = %q, %v", name, ok)
	}
}

// TestCodecDeterministicBytes is the cluster-mode property: equal values
// must encode identically regardless of map build order or process.
func TestCodecDeterministicBytes(t *testing.T) {
	a := map[int32]int32{}
	b := map[int32]int32{}
	for i := int32(0); i < 100; i++ {
		a[i*3] = i - 50
	}
	for i := int32(99); i >= 0; i-- {
		b[i*3] = i - 50
	}
	ba := wire.AppendSortedInt32Map(nil, a)
	bb := wire.AppendSortedInt32Map(nil, b)
	if !bytes.Equal(ba, bb) {
		t.Fatal("equal maps encoded to different bytes")
	}
	got, n, err := wire.DecodeSortedInt32Map(ba, 1<<16)
	if err != nil || n != len(ba) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if !reflect.DeepEqual(got, a) {
		t.Fatal("map round trip mismatch")
	}
}

func TestDecodeSortedInt32MapRejectsCorrupt(t *testing.T) {
	good := wire.AppendSortedInt32Map(nil, map[int32]int32{1: 2, 3: 4})
	cases := []struct {
		name string
		buf  []byte
	}{
		{"truncated", good[:len(good)-1]},
		{"count bomb", wire.AppendUvarint(nil, 1<<40)},
		{"empty input", nil},
	}
	for _, tc := range cases {
		if _, _, err := wire.DecodeSortedInt32Map(tc.buf, 1<<16); err == nil {
			t.Errorf("%s: decode accepted corrupt input", tc.name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	wire.Register(wire.Codec[testPayload]{
		Name:   "wire_test.testPayload.dup",
		Encode: func(buf []byte, v testPayload) []byte { return buf },
		Decode: func(buf []byte) (testPayload, int, error) { return testPayload{}, 0, nil },
	})
}
