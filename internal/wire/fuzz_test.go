package wire

import "testing"

// FuzzRoundTrip fuzzes the tagged fast-lane codec: any in-range
// (tag, payload) pair must survive Pack/Tag/Payload unchanged, stay
// non-negative (the fast lane reserves negative space for raw values),
// and — when the payload itself is a Pair — split back into the same
// halves. The seed corpus mirrors the table-test cases.
func FuzzRoundTrip(f *testing.F) {
	f.Add(TagJoin, int64(0))
	f.Add(TagJoin, int64(12345))
	f.Add(TagChosen, Pair(6, 1<<31-1))
	f.Add(TagTent, PayloadMax)
	f.Add(TagAssign, int64(3))
	f.Add(uint8(0), int64(1)<<56-1)
	f.Fuzz(func(t *testing.T, tag uint8, payload int64) {
		// Fold arbitrary fuzz inputs into the codec's documented domain:
		// tags stay below 0x80 so packed values stay non-negative, payloads
		// fit 56 bits.
		tag &= 0x7f
		if payload < 0 {
			payload = -(payload + 1)
		}
		payload &= PayloadMax

		x := Pack(tag, payload)
		if x < 0 {
			t.Fatalf("Pack(%d,%d) = %d: negative packed value", tag, payload, x)
		}
		if Tag(x) != tag || Payload(x) != payload {
			t.Fatalf("Pack(%d,%d) round-trips to (%d,%d)", tag, payload, Tag(x), Payload(x))
		}

		// Reinterpret the payload as a Pair: any 56-bit value whose halves
		// are in range must round-trip through Pair as well.
		hi, lo := PairHi(payload), PairLo(payload)
		if hi >= 0 && lo >= 0 {
			if p := Pair(hi, lo); p != payload || PairHi(p) != hi || PairLo(p) != lo {
				t.Fatalf("Pair(%d,%d) = %d, want %d", hi, lo, p, payload)
			}
		}
	})
}
