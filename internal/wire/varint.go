package wire

import (
	"encoding/binary"
	"fmt"
)

// This file holds the variable-length integer codec shared by the on-disk
// graph store (internal/graph's CSR format) and any future wire framing.
// The encoding is standard LEB128 (encoding/binary's uvarint), plus a
// delta codec for the strictly-ascending int32 runs that dominate graph
// files: a sorted adjacency list encodes as its first value followed by
// successive gaps, all uvarints, which compresses low-degree CSR
// adjacency to roughly one byte per edge endpoint.

// AppendUvarint appends x to buf as a LEB128 uvarint and returns the
// extended slice.
func AppendUvarint(buf []byte, x uint64) []byte {
	return binary.AppendUvarint(buf, x)
}

// Uvarint decodes a LEB128 uvarint from the front of buf. It returns the
// value and the number of bytes consumed; n == 0 means buf was truncated
// mid-value and n < 0 means the value overflowed 64 bits (stdlib
// semantics). Decoders must treat n <= 0 as a format error, never as a
// zero value.
func Uvarint(buf []byte) (uint64, int) {
	return binary.Uvarint(buf)
}

// AppendDeltaInt32Run appends a strictly-ascending run of non-negative
// int32s as first-value + successive-delta uvarints. It panics on a
// negative, descending, or duplicate value: encoder inputs come from
// already-sorted CSR adjacency, so a bad run is a builder bug, not a data
// error.
func AppendDeltaInt32Run(buf []byte, xs []int32) []byte {
	prev := int64(-1)
	for _, x := range xs {
		if int64(x) <= prev {
			panic(fmt.Sprintf("wire: delta run not strictly ascending: %d after %d", x, prev))
		}
		if x < 0 {
			panic(fmt.Sprintf("wire: negative value %d in delta run", x))
		}
		if prev < 0 {
			buf = AppendUvarint(buf, uint64(x))
		} else {
			buf = AppendUvarint(buf, uint64(int64(x)-prev))
		}
		prev = int64(x)
	}
	return buf
}

// DecodeDeltaInt32Run decodes len(out) values of a delta run from the
// front of buf into out, enforcing that the decoded values are strictly
// ascending and lie in [0, limit). It returns the number of bytes
// consumed. Unlike the encoder it never panics: truncated, overflowing,
// descending, or out-of-range input returns an error, because decoder
// input is untrusted file data.
func DecodeDeltaInt32Run(buf []byte, out []int32, limit int32) (int, error) {
	if limit <= 0 && len(out) > 0 {
		return 0, fmt.Errorf("wire: delta run of %d values under non-positive limit %d", len(out), limit)
	}
	pos := 0
	prev := int64(-1)
	for i := range out {
		v, n := Uvarint(buf[pos:])
		if n <= 0 {
			return 0, fmt.Errorf("wire: delta run truncated at value %d/%d", i, len(out))
		}
		pos += n
		if v > uint64(limit) {
			// Neither an absolute first value nor a gap can exceed the value
			// bound; rejecting here also keeps the int64 sum below from
			// overflowing.
			return 0, fmt.Errorf("wire: delta run step %d out of range [0,%d)", v, limit)
		}
		x := prev + int64(v)
		if prev < 0 {
			// First value is absolute, not a gap.
			x = int64(v)
		} else if v == 0 {
			return 0, fmt.Errorf("wire: zero gap at value %d breaks strict ascent", i)
		}
		if x >= int64(limit) {
			return 0, fmt.Errorf("wire: delta run value %d out of range [0,%d)", x, limit)
		}
		out[i] = int32(x)
		prev = x
	}
	return pos, nil
}
