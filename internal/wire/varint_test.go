package wire

import (
	"bytes"
	"testing"
)

func TestUvarintRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 127, 128, 300, 1 << 20, 1<<56 - 1, 1<<63 - 1, ^uint64(0)}
	for _, v := range vals {
		buf := AppendUvarint(nil, v)
		got, n := Uvarint(buf)
		if n != len(buf) || got != v {
			t.Errorf("Uvarint(Append(%d)) = %d (n=%d, len=%d)", v, got, n, len(buf))
		}
	}
	// Truncated and empty input report n <= 0, never a value.
	if _, n := Uvarint(nil); n > 0 {
		t.Errorf("Uvarint(nil) n = %d, want <= 0", n)
	}
	long := AppendUvarint(nil, ^uint64(0))
	if _, n := Uvarint(long[:len(long)-1]); n > 0 {
		t.Errorf("truncated uvarint n = %d, want <= 0", n)
	}
}

func TestDeltaInt32RunRoundTrip(t *testing.T) {
	runs := [][]int32{
		nil,
		{0},
		{5},
		{0, 1, 2, 3},
		{3, 100, 101, 1 << 30},
		{2147483646},
	}
	for _, run := range runs {
		buf := AppendDeltaInt32Run(nil, run)
		out := make([]int32, len(run))
		n, err := DecodeDeltaInt32Run(buf, out, 1<<31-1)
		if err != nil {
			t.Fatalf("decode(%v): %v", run, err)
		}
		if n != len(buf) {
			t.Errorf("decode(%v) consumed %d of %d bytes", run, n, len(buf))
		}
		if len(run) > 0 && !bytes.Equal(int32bytes(run), int32bytes(out)) {
			t.Errorf("round trip %v -> %v", run, out)
		}
	}
}

func int32bytes(xs []int32) []byte {
	out := make([]byte, 0, 4*len(xs))
	for _, x := range xs {
		out = append(out, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return out
}

func TestDeltaInt32RunDecodeErrors(t *testing.T) {
	good := AppendDeltaInt32Run(nil, []int32{1, 5, 9})
	out := make([]int32, 3)

	// Truncation mid-run.
	if _, err := DecodeDeltaInt32Run(good[:1], out, 100); err == nil {
		t.Error("truncated run decoded without error")
	}
	// Out-of-range value.
	if _, err := DecodeDeltaInt32Run(good, out, 9); err == nil {
		t.Error("out-of-range value decoded without error")
	}
	// Zero gap (duplicate) breaks strict ascent.
	dup := AppendUvarint(AppendUvarint(nil, 4), 0)
	if _, err := DecodeDeltaInt32Run(dup, make([]int32, 2), 100); err == nil {
		t.Error("zero gap decoded without error")
	}
	// Overflowing accumulated value is out of range, not a wrapped int32.
	big := AppendUvarint(AppendUvarint(nil, 1<<31-1), 1<<31)
	if _, err := DecodeDeltaInt32Run(big, make([]int32, 2), 1<<31-1); err == nil {
		t.Error("overflowing run decoded without error")
	}
}

func TestDeltaInt32RunEncodePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  []int32
	}{
		{"descending", []int32{5, 3}},
		{"duplicate", []int32{5, 5}},
		{"negative", []int32{-1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s run did not panic", tc.name)
				}
			}()
			AppendDeltaInt32Run(nil, tc.run)
		}()
	}
}
