package wire

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
)

// This file is the slow-lane counterpart of the tagged-int64 fast lane: a
// registry of byte codecs for the structured payloads that travel the
// engine's `any` message lane. In-process backends never serialize — the
// registry exists so that every lane payload type HAS a deterministic
// byte form before cluster mode turns the step backend's shard seam into
// a TCP seam (see ROADMAP). The payloadwire analyzer enforces the
// contract statically: a lane type that is not structurally wire-codable
// (it contains a map, a pointer, an interface, ...) must register a codec
// here, and the registration site is what the analyzer looks for.
//
// Codecs must be deterministic: equal values must encode to identical
// bytes on every process (maps iterated in sorted key order, no
// addresses, no timestamps). That is what makes cross-replica Results
// byte-comparable.

// A Codec serializes one concrete payload type T.
type Codec[T any] struct {
	// Name is the stable wire identifier of the type (conventionally
	// "pkg.Type"); it never changes once a wire format ships.
	Name string
	// Encode appends v's byte form to buf and returns the extended slice.
	Encode func(buf []byte, v T) []byte
	// Decode parses a value from the front of buf, returning it and the
	// number of bytes consumed. Input is untrusted: return an error, never
	// panic.
	Decode func(buf []byte) (T, int, error)
}

// entry is one registered codec with its reflected type and erased
// encode/decode, so the registry can serve lookups by dynamic type.
type entry struct {
	name   string
	typ    reflect.Type
	encode func(buf []byte, v any) []byte
	decode func(buf []byte) (any, int, error)
}

var registry = struct {
	sync.Mutex
	byType map[reflect.Type]*entry
	byName map[string]*entry
}{
	byType: map[reflect.Type]*entry{},
	byName: map[string]*entry{},
}

// Register installs the codec for T. Registration happens in package
// init functions, exactly once per type and per name; a duplicate is a
// wiring bug and panics.
func Register[T any](c Codec[T]) {
	typ := reflect.TypeFor[T]()
	if c.Name == "" || c.Encode == nil || c.Decode == nil {
		panic(fmt.Sprintf("wire: incomplete codec for %v", typ))
	}
	e := &entry{
		name: c.Name,
		typ:  typ,
		encode: func(buf []byte, v any) []byte {
			return c.Encode(buf, v.(T))
		},
		decode: func(buf []byte) (any, int, error) {
			v, n, err := c.Decode(buf)
			return v, n, err
		},
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byType[typ]; dup {
		panic(fmt.Sprintf("wire: codec for %v registered twice", typ))
	}
	if _, dup := registry.byName[c.Name]; dup {
		panic(fmt.Sprintf("wire: codec name %q registered twice", c.Name))
	}
	registry.byType[typ] = e
	registry.byName[c.Name] = e
}

// Encode appends v's registered byte form to buf. It panics when v's
// dynamic type has no codec: by the payloadwire contract every lane type
// is registered, so a miss is a build bug, not a runtime condition.
func Encode(buf []byte, v any) []byte {
	registry.Lock()
	e := registry.byType[reflect.TypeOf(v)]
	registry.Unlock()
	if e == nil {
		panic(fmt.Sprintf("wire: no codec registered for %T", v))
	}
	return e.encode(buf, v)
}

// Decode parses a value of the named type from the front of buf.
func Decode(name string, buf []byte) (any, int, error) {
	registry.Lock()
	e := registry.byName[name]
	registry.Unlock()
	if e == nil {
		return nil, 0, fmt.Errorf("wire: no codec registered for %q", name)
	}
	return e.decode(buf)
}

// CodecName returns the registered wire name of v's dynamic type, or
// ok=false.
func CodecName(v any) (string, bool) {
	registry.Lock()
	e := registry.byType[reflect.TypeOf(v)]
	registry.Unlock()
	if e == nil {
		return "", false
	}
	return e.name, true
}

// RegisteredNames lists every codec name, sorted — for diagnostics and
// the codec round-trip tests.
func RegisteredNames() []string {
	registry.Lock()
	defer registry.Unlock()
	names := make([]string, 0, len(registry.byName))
	for name := range registry.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// AppendSortedInt32Map appends m as a deterministic byte form: the entry
// count, then (key, value) pairs in ascending key order, keys
// delta-coded, values zig-zagged. The shared helper keeps every
// map-carrying codec canonical by construction.
func AppendSortedInt32Map(buf []byte, m map[int32]int32) []byte {
	keys := make([]int32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	buf = AppendUvarint(buf, uint64(len(keys)))
	prev := int64(0)
	for _, k := range keys {
		buf = AppendUvarint(buf, uint64(int64(k)-prev)) // keys ascend; first delta is absolute
		prev = int64(k)
		v := m[k]
		buf = AppendUvarint(buf, uint64(uint32((v<<1)^(v>>31)))) // zigzag32
	}
	return buf
}

// DecodeSortedInt32Map decodes AppendSortedInt32Map's form. maxEntries
// bounds allocation against corrupt counts.
func DecodeSortedInt32Map(buf []byte, maxEntries int) (map[int32]int32, int, error) {
	count, n := Uvarint(buf)
	if n <= 0 {
		return nil, 0, fmt.Errorf("wire: map count truncated")
	}
	if count > uint64(maxEntries) {
		return nil, 0, fmt.Errorf("wire: map count %d exceeds limit %d", count, maxEntries)
	}
	pos := n
	m := make(map[int32]int32, count)
	prev := int64(0)
	for i := uint64(0); i < count; i++ {
		dk, n := Uvarint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("wire: map key truncated at entry %d", i)
		}
		pos += n
		key := prev + int64(dk)
		if i > 0 && dk == 0 {
			return nil, 0, fmt.Errorf("wire: duplicate map key at entry %d", i)
		}
		if key != int64(int32(key)) {
			return nil, 0, fmt.Errorf("wire: map key %d overflows int32", key)
		}
		prev = key
		zv, n := Uvarint(buf[pos:])
		if n <= 0 {
			return nil, 0, fmt.Errorf("wire: map value truncated at entry %d", i)
		}
		pos += n
		if zv>>32 != 0 {
			return nil, 0, fmt.Errorf("wire: map value %d overflows int32", zv)
		}
		m[int32(key)] = int32(uint32(zv)>>1) ^ -int32(zv&1)
	}
	return m, pos, nil
}
