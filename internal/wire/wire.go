// Package wire defines the compact integer encodings the algorithm
// packages use on the engine's fast message lane (SendInt/BroadcastInt/
// Msg.AsInt). The dominant payloads of the paper's algorithms — colors,
// levels, phase indices — are small non-negative integers; packing them
// into a tagged int64 keeps the steady-state message path free of
// interface boxing.
//
// Layout: the top byte carries a tag identifying the message family, the
// low 56 bits carry the payload. Tags are small (≤ 0x7f), so every packed
// value is a non-negative int64. Messages whose meaning is unambiguous
// within their program (e.g. Luby priorities, the only fast-lane traffic
// of that algorithm) may skip tagging and use the full 63 bits raw; tags
// exist for the algorithms that interleave several message families on one
// edge — most prominently anything absorbed by hpartition.Tracker, which
// is the universal stray-message sink.
package wire

import "fmt"

// Message family tags. Globally unique so any receiver — in particular
// the hpartition Tracker, which absorbs strays from every composed
// algorithm — can classify a fast-lane message unambiguously.
const (
	TagJoin    = uint8(iota + 1) // hpartition H-set join; payload = iteration index
	TagColor                     // coloring round exchange; payload = Pair(step, color)
	TagChosen                    // committed color announcement; payload = Pair(kind, color)
	TagTent                      // randcolor tentative color; payload = candidate color
	TagPropose                   // extend/matching proposal; no payload
	TagAccept                    // extend/matching acceptance; no payload
	TagAssign                    // extend/edgecolor assignment; payload = color
)

const (
	payloadBits = 56
	// PayloadMax is the largest payload Pack accepts.
	PayloadMax = int64(1)<<payloadBits - 1
	// pairHiMax bounds Pair's high half: it shares the payload's top bits.
	pairHiMax = int32(1)<<(payloadBits-32) - 1
)

// Pack combines a tag and a payload into a fast-lane value.
func Pack(tag uint8, payload int64) int64 {
	if payload < 0 || payload > PayloadMax {
		panic(fmt.Sprintf("wire: payload %d out of range [0,%d]", payload, PayloadMax))
	}
	return int64(tag)<<payloadBits | payload
}

// Tag extracts the message-family tag of a packed value. Raw (untagged)
// fast-lane values below 2^56 report tag 0.
func Tag(x int64) uint8 { return uint8(uint64(x) >> payloadBits) }

// Payload extracts the 56-bit payload of a packed value.
func Payload(x int64) int64 { return x & PayloadMax }

// Pair packs two small non-negative halves — typically a sub-kind or step
// in hi and a color in lo — into one payload.
func Pair(hi, lo int32) int64 {
	if hi < 0 || hi > pairHiMax {
		panic(fmt.Sprintf("wire: pair hi %d out of range [0,%d]", hi, pairHiMax))
	}
	if lo < 0 {
		panic(fmt.Sprintf("wire: pair lo %d negative", lo))
	}
	return int64(hi)<<32 | int64(uint32(lo))
}

// PairHi extracts the high half of a Pair payload.
func PairHi(payload int64) int32 { return int32(payload >> 32) }

// PairLo extracts the low half of a Pair payload.
func PairLo(payload int64) int32 { return int32(uint32(payload)) }
