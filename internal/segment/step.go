package segment

import (
	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/hpartition"
)

// Step (state-machine) forms of the segmentation algorithms. Each turn
// reproduces one round of the blocking form; the idle stretches of the
// window geometry (window remainders, foreign C-blocks, waits for the own
// segment's C-block) become merged sleeps whose wake turn absorbs exactly
// the messages the blocking form absorbs round by round, so the two forms
// are byte-identical on every backend.

// startWindows is the step form of runPartitionWindows (perWindow nil):
// one partition advance in the first round of each window, sleeping
// through window remainders and foreign C-blocks. done runs in the turn
// after the join round's tail absorb — the turn the blocking form returns
// in.
func (p *Plan) startWindows(api *engine.API, tr *hpartition.Tracker,
	done func(api *engine.API) engine.Step) engine.Step {
	s, m := 0, 0
	joinTail := func(api *engine.API, inbox []engine.Msg) engine.Step {
		tr.Absorb(api, inbox)
		return done(api)
	}
	var window, tail engine.StepFn
	window = func(api *engine.API, inbox []engine.Msg) engine.Step {
		tr.Absorb(api, inbox)
		if s >= len(p.SegLen) {
			panic("segment: vertex failed to join within the planned partition rounds")
		}
		if tr.Advance(api) {
			return engine.Continue(joinTail)
		}
		return engine.Continue(tail)
	}
	tail = func(api *engine.API, inbox []engine.Msg) engine.Step {
		tr.Absorb(api, inbox)
		sleep := p.W - 1
		m++
		if m == p.SegLen[s] {
			// C-block of segment s: this vertex is still active, so it
			// sleeps through it along with the window remainder.
			sleep += p.CWidth[s]
			s++
			m = 0
		}
		return engine.Sleep(sleep, window)
	}
	if tr.Advance(api) {
		return engine.Continue(joinTail)
	}
	return engine.Continue(tail)
}

// KA2Step is the step form of KA2Coloring.
func KA2Step(a, k int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		n := api.N()
		plan := NewPlan(n, a, k, eps, 2, func(int) int {
			return coloring.IteratedLinialRounds(n, hpartition.ParamA(a, eps))
		})
		tr := hpartition.NewTracker(api, a, eps)
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }
		P := coloring.LinialFinalPalette(n, plan.A)

		var seg int
		var lo, hi int32

		color := func(api *engine.API) engine.Step {
			members, parents := coloring.SegmentParents(api, tr, lo, hi)
			return coloring.StartIteratedLinial(api, members, parents, plan.A, sink,
				func(c int) engine.Step { return engine.Done(c + seg*P) })
		}
		wake := func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			return color(api)
		}
		settle := func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			seg, lo, hi = plan.SegmentOf(int(tr.HIndex))
			// Wait for the segment's C-block.
			if api.Round() < plan.cStart[seg] {
				return engine.Sleep(plan.cStart[seg]-api.Round(), wake)
			}
			return color(api)
		}
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return plan.startWindows(api, tr, func(api *engine.API) engine.Step {
				return engine.Continue(settle)
			})
		}
	}
}

// KAStep is the step form of KAColoring.
func KAStep(a, k int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		n := api.N()
		A := hpartition.ParamA(a, eps)
		windowW := 3 + coloring.DeltaPlus1Rounds(n, A)
		plan := NewPlan(n, a, k, eps, windowW, func(segLen int) int {
			return (A+1)*segLen + 2
		})
		tr := hpartition.NewTracker(api, a, eps)
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }

		var i int32
		var seg int
		var lo, hi int32
		var members []int
		var c int
		setColor := map[int]int{}

		greedy := func(api *engine.API) engine.Step {
			// Parents within the segment: later H-set, or same set with a
			// higher Delta+1 color.
			var parents []int
			for kk, h := range tr.NbrH {
				if h <= lo || h > hi {
					continue
				}
				if h > i || (h == i && setColor[kk] > c) {
					parents = append(parents, kk)
				}
			}
			base := seg * (A + 1)
			parentFinal := map[int]int{}
			var wait engine.StepFn
			var check func(api *engine.API) engine.Step
			check = func(api *engine.API) engine.Step {
				ready := true
				for _, kk := range parents {
					if _, ok := parentFinal[kk]; !ok {
						ready = false
						break
					}
				}
				if ready {
					used := map[int]bool{}
					for _, kk := range parents {
						used[parentFinal[kk]] = true
					}
					for cand := base; ; cand++ {
						if !used[cand] {
							return engine.Done(cand)
						}
					}
				}
				return engine.Continue(wait)
			}
			wait = func(api *engine.API, inbox []engine.Msg) engine.Step {
				for _, m := range inbox {
					if f, ok := m.Data.(engine.Final); ok {
						if col, ok := f.Output.(int); ok {
							parentFinal[api.NeighborIndex(m.From)] = col
						}
					}
				}
				return check(api)
			}
			return check(api)
		}
		wake := func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			return greedy(api)
		}
		exch := func(api *engine.API, inbox []engine.Msg) engine.Step {
			for _, m := range inbox {
				if mc, ok := coloring.AsChosen(m, segKind); ok {
					if kk := api.NeighborIndex(m.From); tr.NbrH[kk] == i {
						setColor[kk] = int(mc)
						continue
					}
				}
				tr.Absorb(api, []engine.Msg{m})
			}
			if api.Round() < plan.cStart[seg] {
				return engine.Sleep(plan.cStart[seg]-api.Round(), wake)
			}
			return greedy(api)
		}
		settle := func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			i = tr.HIndex
			seg, lo, hi = plan.SegmentOf(int(i))
			for kk, h := range tr.NbrH {
				if h == i {
					members = append(members, kk)
				}
			}
			return coloring.StartDeltaPlus1OnSet(api, members, A, sink,
				func(col int) engine.Step {
					c = col
					coloring.BroadcastChosen(api, segKind, int32(c))
					return engine.Continue(exch)
				})
		}
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return plan.startWindows(api, tr, func(api *engine.API) engine.Step {
				return engine.Continue(settle)
			})
		}
	}
}
