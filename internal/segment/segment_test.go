package segment

import (
	"testing"
	"testing/quick"

	"vavg/internal/check"
	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/graph"
)

var families = []struct {
	g *graph.Graph
	a int
}{
	{graph.Ring(48), 2},
	{graph.Star(64), 1},
	{graph.ForestUnion(250, 3, 5), 3},
	{graph.TriangulatedGrid(9, 9), 3},
	{graph.Clique(10), 5},
}

func colorsOf(t *testing.T, res *engine.Result) []int {
	t.Helper()
	cs := make([]int, len(res.Output))
	for v, o := range res.Output {
		cs[v] = o.(int)
	}
	return cs
}

func TestPlanGeometry(t *testing.T) {
	n := 1 << 16
	plan := NewPlan(n, 3, 3, 2, 2, func(int) int { return 5 })
	if len(plan.SegLen) != 3 {
		t.Fatalf("segments = %d", len(plan.SegLen))
	}
	// Segment lengths grow from log^(k) n toward log n (processed order).
	for s := 1; s < len(plan.SegLen); s++ {
		if plan.SegLen[s] < plan.SegLen[s-1] {
			t.Errorf("segment lengths not nondecreasing: %v", plan.SegLen)
		}
	}
	// The plan covers the partition completion bound.
	if plan.TotalHSets() < 16 {
		t.Errorf("plan covers only %d H-sets", plan.TotalHSets())
	}
	// Round geometry is consistent.
	round := 0
	for s := range plan.SegLen {
		if plan.segStart[s] != round {
			t.Errorf("segment %d starts at %d, want %d", s, plan.segStart[s], round)
		}
		round += plan.SegLen[s]*plan.W + plan.CWidth[s]
	}
	// SegmentOf is the inverse of the length prefix sums.
	acc := 0
	for s, l := range plan.SegLen {
		for h := acc + 1; h <= acc+l; h++ {
			gs, lo, hi := plan.SegmentOf(h)
			if gs != s || int(lo) != acc || int(hi) != acc+l {
				t.Fatalf("SegmentOf(%d) = (%d,%d,%d), want (%d,%d,%d)", h, gs, lo, hi, s, acc, acc+l)
			}
		}
		acc += l
	}
}

func TestKA2ColoringProper(t *testing.T) {
	for _, c := range families {
		for _, k := range []int{2, 3} {
			res, err := engine.Run(c.g, KA2Coloring(c.a, k, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
			if err != nil {
				t.Fatalf("%s k=%d: %v", c.g.Name, k, err)
			}
			cols := colorsOf(t, res)
			if err := check.VertexColoring(c.g, cols, KA2Palette(c.g.N(), c.a, k, 2)); err != nil {
				t.Errorf("%s k=%d: %v", c.g.Name, k, err)
			}
		}
	}
}

func TestKAColoringProper(t *testing.T) {
	for _, c := range families {
		for _, k := range []int{2, 3} {
			res, err := engine.Run(c.g, KAColoring(c.a, k, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
			if err != nil {
				t.Fatalf("%s k=%d: %v", c.g.Name, k, err)
			}
			cols := colorsOf(t, res)
			if err := check.VertexColoring(c.g, cols, KAPalette(c.g.N(), c.a, k, 2)); err != nil {
				t.Errorf("%s k=%d: %v", c.g.Name, k, err)
			}
		}
	}
}

func TestKARhoInstances(t *testing.T) {
	// k = Rho(n): the Corollary 7.14 / 7.17 instances.
	g := graph.ForestUnion(400, 2, 7)
	k := coloring.Rho(g.N())
	res, err := engine.Run(g, KA2Coloring(2, k, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.VertexColoring(g, colorsOf(t, res), KA2Palette(g.N(), 2, k, 2)); err != nil {
		t.Error(err)
	}
	res2, err := engine.Run(g, KAColoring(2, k, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.VertexColoring(g, colorsOf(t, res2), KAPalette(g.N(), 2, k, 2)); err != nil {
		t.Error(err)
	}
}

func TestKA2VertexAverageShrinksWithK(t *testing.T) {
	// Larger k means a shorter first segment, hence smaller vertex-averaged
	// complexity (at the price of more colors).
	g := graph.ForestUnion(4000, 2, 11)
	var prev float64
	for i, k := range []int{2, coloring.Rho(g.N())} {
		res, err := engine.Run(g, KA2Coloring(2, k, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		avg := res.VertexAverage()
		if i > 0 && avg > prev+1 {
			t.Errorf("vertex average grew with k: k=2 gave %.2f, k=rho gave %.2f", prev, avg)
		}
		prev = avg
	}
}

func TestSegmentPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64, aRaw, kRaw uint8) bool {
		a := 1 + int(aRaw%3)
		k := 2 + int(kRaw%2)
		g := graph.ForestUnion(120, a, seed)
		for _, mk := range []func() engine.Program{
			func() engine.Program { return KA2Coloring(a, k, 2) },
			func() engine.Program { return KAColoring(a, k, 2) },
		} {
			res, err := engine.Run(g, mk(), engine.Options{Seed: seed, MaxRounds: 1 << 20})
			if err != nil {
				return false
			}
			cols := make([]int, g.N())
			for v, o := range res.Output {
				cols[v] = o.(int)
			}
			if check.VertexColoring(g, cols, 0) != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSegmentDeterminism(t *testing.T) {
	g := graph.ForestUnion(200, 2, 4)
	r1, err := engine.Run(g, KAColoring(2, 3, 2), engine.Options{Seed: 5, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := engine.Run(g, KAColoring(2, 3, 2), engine.Options{Seed: 99, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// The algorithm is deterministic: the seed must not matter.
	for v := range r1.Output {
		if r1.Output[v] != r2.Output[v] {
			t.Fatalf("deterministic algorithm diverged at vertex %d", v)
		}
	}
}
