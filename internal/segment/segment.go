// Package segment implements the segmentation scheme of Section 7.5 and
// its two instantiations: the O(k*a^2)-coloring with O(log^(k) n)
// vertex-averaged complexity of Section 7.6 and the O(k*a)-coloring with
// O(a log^(k) n) vertex-averaged complexity of Section 7.7 (Figure 1).
//
// The scheme divides the H-sets produced by Procedure Partition into k
// segments processed from segment k down to segment 1: segment i consists
// of roughly (2/eps)*log^(i) n H-sets. Upon the formation of each H-set,
// algorithms A and B run on it and boundary edges are oriented; once a
// segment's sets have all formed, algorithm C colors the whole segment
// subgraph with a palette block unique to the segment. Because the number
// of active vertices decays exponentially while segment lengths grow as
// iterated logarithms, the vertex-averaged complexity is dominated by the
// first (shortest) segment.
package segment

import (
	"math"

	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/hpartition"
)

// Plan is the global round schedule of a segmentation run; all vertices
// compute the identical Plan from (n, a, eps, k), which are global
// knowledge.
type Plan struct {
	// K is the number of segments, in [2, Rho(n)].
	K int
	// A is the partition threshold (2+eps)a.
	A int
	// SegLen[s] is the number of H-sets in the s-th processed segment
	// (s = 0 is segment number K, s = K-1 is segment number 1).
	SegLen []int
	// W is the width in rounds of one H-set iteration window.
	W int
	// CWidth[s] is the width in rounds of the s-th segment's C-block.
	CWidth []int
	// segStart[s] is the first round of segment s; cStart[s] the first
	// round of its C-block.
	segStart, cStart []int
}

// NewPlan builds the schedule. windowW is the per-H-set window width and
// cWidth gives the C-block width of a segment from its length.
func NewPlan(n, a, k int, eps float64, windowW int, cWidth func(segLen int) int) *Plan {
	if k < 2 {
		panic("segment: k must be at least 2")
	}
	if r := coloring.Rho(n); k > r {
		k = r
	}
	p := &Plan{K: k, A: hpartition.ParamA(a, eps), W: windowW}
	c := 2 / eps
	total := 0
	for i := k; i >= 1; i-- {
		l := int(math.Ceil(c * float64(coloring.IterLog(n, i))))
		if l < 1 {
			l = 1
		}
		if i == 1 {
			// The last segment must absorb every remaining vertex.
			if rest := hpartition.EllBound(n, eps) - total; l < rest {
				l = rest
			}
		}
		p.SegLen = append(p.SegLen, l)
		total += l
	}
	round := 0
	for s := range p.SegLen {
		p.segStart = append(p.segStart, round)
		round += p.SegLen[s] * p.W
		p.cStart = append(p.cStart, round)
		cw := cWidth(p.SegLen[s])
		p.CWidth = append(p.CWidth, cw)
		round += cw
	}
	return p
}

// SegmentOf returns the processed-segment index s containing H-set h
// (1-based), along with the segment's H-index range (lo, hi].
func (p *Plan) SegmentOf(h int) (s int, lo, hi int32) {
	acc := 0
	for s = 0; s < len(p.SegLen); s++ {
		if h <= acc+p.SegLen[s] {
			return s, int32(acc), int32(acc + p.SegLen[s])
		}
		acc += p.SegLen[s]
	}
	// Should be unreachable: the final segment absorbs everyone.
	last := len(p.SegLen) - 1
	return last, int32(acc - p.SegLen[last]), int32(acc)
}

// TotalHSets returns the number of partition rounds the plan schedules.
func (p *Plan) TotalHSets() int {
	t := 0
	for _, l := range p.SegLen {
		t += l
	}
	return t
}

// runPartitionWindows drives the vertex through iteration windows until it
// joins an H-set, honoring the plan's window geometry: one partition step
// in the first round of each window, idling (and absorbing) otherwise,
// including through C-blocks of segments it does not belong to. It
// returns after the join round; perWindow, if non-nil, runs during the
// windows of other vertices' H-sets and must consume exactly W-1 rounds
// (the default idles).
func (p *Plan) runPartitionWindows(api *engine.API, tr *hpartition.Tracker, perWindow func()) {
	for s := range p.SegLen {
		for m := 0; m < p.SegLen[s]; m++ {
			joined, _ := tr.Step(api)
			if joined {
				return
			}
			if perWindow != nil {
				perWindow()
			} else {
				tr.Absorb(api, api.Idle(p.W-1))
			}
		}
		// C-block of segment s: this vertex is still active, so it idles.
		tr.Absorb(api, api.Idle(p.CWidth[s]))
	}
	panic("segment: vertex failed to join within the planned partition rounds")
}

// idleUntil absorbs rounds until the vertex has completed `round` rounds.
func idleUntil(api *engine.API, tr *hpartition.Tracker, round int) {
	for api.Round() < round {
		tr.Absorb(api, api.Next())
	}
}

// KA2Coloring is the algorithm of Section 7.6: an O(k*a^2)-vertex-coloring
// with O(log^(k) n) vertex-averaged complexity, for 2 <= k <= Rho(n).
// Algorithm A is null, algorithm B is the forest-decomposition orientation
// (local at settle time), and algorithm C is Procedure Arb-Linial-Coloring
// run on each completed segment. With k = Rho(n) this yields the
// O(a^2 log* n)-coloring in O(log* n) vertex-averaged rounds of Corollary
// 7.14.
func KA2Coloring(a, k int, eps float64) engine.Program {
	return func(api *engine.API) any {
		n := api.N()
		plan := NewPlan(n, a, k, eps, 2, func(int) int {
			return coloring.IteratedLinialRounds(n, hpartition.ParamA(a, eps))
		})
		tr := hpartition.NewTracker(api, a, eps)
		plan.runPartitionWindows(api, tr, nil)
		s, lo, hi := plan.SegmentOf(int(tr.HIndex))
		// Settle round (second round of this vertex's window).
		tr.Absorb(api, api.Next())
		// Wait for the segment's C-block.
		idleUntil(api, tr, plan.cStart[s])
		members, parents := coloring.SegmentParents(api, tr, lo, hi)
		c := coloring.IteratedLinial(api, members, parents, plan.A,
			func(ms []engine.Msg) { tr.Absorb(api, ms) })
		P := coloring.LinialFinalPalette(n, plan.A)
		return c + s*P
	}
}

// KA2Palette returns the total color budget of KA2Coloring: k segments
// times the O(a^2) Arb-Linial fixed-point palette.
func KA2Palette(n, a, k int, eps float64) int {
	if r := coloring.Rho(n); k > r {
		k = r
	}
	return k * coloring.LinialFinalPalette(n, hpartition.ParamA(a, eps))
}

// KAColoring is the algorithm of Section 7.7: an O(k*a)-vertex-coloring
// with O(a log^(k) n) vertex-averaged complexity, for 2 <= k <= Rho(n).
// Algorithm A is the (Delta+1)-coloring of each H-set, algorithm B orients
// the set's edges by descending color (an acyclic orientation of length
// O(a)), and algorithm C recolors each completed segment along the
// orientation from a segment-specific (A+1)-color palette block. With
// k = Rho(n) this yields the O(a log* n)-coloring in O(a log* n)
// vertex-averaged rounds of Corollary 7.17.
func KAColoring(a, k int, eps float64) engine.Program {
	return func(api *engine.API) any {
		n := api.N()
		A := hpartition.ParamA(a, eps)
		windowW := 3 + coloring.DeltaPlus1Rounds(n, A)
		plan := NewPlan(n, a, k, eps, windowW, func(segLen int) int {
			return (A+1)*segLen + 2
		})
		tr := hpartition.NewTracker(api, a, eps)
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }
		plan.runPartitionWindows(api, tr, nil)
		i := tr.HIndex
		s, lo, hi := plan.SegmentOf(int(i))
		// Settle, then Delta+1-color the H-set and exchange set colors.
		tr.Absorb(api, api.Next())
		var members []int
		for kk, h := range tr.NbrH {
			if h == i {
				members = append(members, kk)
			}
		}
		c := coloring.DeltaPlus1OnSet(api, members, A, sink)
		setColor := map[int]int{}
		coloring.BroadcastChosen(api, segKind, int32(c))
		for _, m := range api.Next() {
			if mc, ok := coloring.AsChosen(m, segKind); ok {
				if kk := api.NeighborIndex(m.From); tr.NbrH[kk] == i {
					setColor[kk] = int(mc)
					continue
				}
			}
			tr.Absorb(api, []engine.Msg{m})
		}

		idleUntil(api, tr, plan.cStart[s])
		// Parents within the segment: later H-set, or same set with a
		// higher Delta+1 color.
		var parents []int
		for kk, h := range tr.NbrH {
			if h <= lo || h > hi {
				continue
			}
			if h > i || (h == i && setColor[kk] > c) {
				parents = append(parents, kk)
			}
		}
		base := s * (A + 1)
		parentFinal := map[int]int{}
		for {
			ready := true
			for _, kk := range parents {
				if _, ok := parentFinal[kk]; !ok {
					ready = false
					break
				}
			}
			if ready {
				used := map[int]bool{}
				for _, kk := range parents {
					used[parentFinal[kk]] = true
				}
				for cand := base; ; cand++ {
					if !used[cand] {
						return cand
					}
				}
			}
			for _, m := range api.Next() {
				if f, ok := m.Data.(engine.Final); ok {
					if col, ok := f.Output.(int); ok {
						parentFinal[api.NeighborIndex(m.From)] = col
					}
				}
			}
		}
	}
}

const segKind = 4

// KAPalette returns the total color budget of KAColoring: k*(A+1).
func KAPalette(n, a, k int, eps float64) int {
	if r := coloring.Rho(n); k > r {
		k = r
	}
	return k * (hpartition.ParamA(a, eps) + 1)
}
