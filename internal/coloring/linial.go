// Package coloring implements the vertex-coloring machinery of the paper:
// the Linial-style color reduction on forest decompositions (Procedure
// Arb-Linial-Coloring, used by Sections 7.2, 7.3, 7.6), Kuhn-Wattenhofer
// palette-halving reduction and greedy class-iteration reduction (used as
// the (Delta+1)- and (deg+1)-list-coloring subroutines on H-sets),
// Cole-Vishkin 3-coloring of rooted forests, and the complete coloring
// algorithms of Sections 7.2, 7.3 and 7.4.
package coloring

import "math"

// LogStar returns log* n with base-2 logarithms: the number of times log2
// must be applied to n before the value drops to at most 1.
func LogStar(n int) int {
	s := 0
	x := float64(n)
	for x > 1 {
		x = math.Log2(x)
		s++
	}
	return s
}

// IterLog returns log^(k) n (k-fold iterated base-2 logarithm), floored at
// 1: log^(0) n = n.
func IterLog(n, k int) int {
	x := float64(n)
	for i := 0; i < k; i++ {
		if x <= 1 {
			return 1
		}
		x = math.Log2(x)
	}
	if x < 1 {
		return 1
	}
	return int(math.Ceil(x))
}

// Rho returns rho(n), the largest k such that log^(k-1) n >= log* n
// (Section 7.5). The segmentation scheme accepts 2 <= k <= rho(n).
// For tiny n (log* n <= 1, where every iterated logarithm is already at
// its floor) rho degenerates to the minimum legal value 2.
func Rho(n int) int {
	ls := LogStar(n)
	if ls <= 1 {
		return 2
	}
	k := 1
	for IterLog(n, k) >= ls {
		k++
	}
	if k < 2 {
		return 2
	}
	return k
}

// isPrime reports primality by trial division; palettes keep q small
// (O(A log n)), so this is never a bottleneck.
func isPrime(q int) bool {
	if q < 2 {
		return false
	}
	for d := 2; d*d <= q; d++ {
		if q%d == 0 {
			return false
		}
	}
	return true
}

// polyDegree returns the smallest d >= 1 with q^d >= p.
func polyDegree(p, q int) int {
	d, pow := 1, q
	for pow < p {
		pow *= q
		d++
	}
	return d
}

// LinialParams returns the prime field size q and polynomial degree d used
// to reduce a proper p-coloring to a q^2-coloring on an orientation with
// out-degree at most A: the smallest prime q with q^d >= p and q > A*d.
// Distinct colors map to distinct degree-<d polynomials over F_q; a
// polynomial pair agrees on at most d-1... at most d points, so the A
// parents of a vertex rule out at most A*d < q evaluation points, leaving
// a free point (x, f(x)) that becomes the new color x*q + f(x).
func LinialParams(p, A int) (q, d int) {
	if p < 2 {
		return 2, 1
	}
	for q = 2; ; q++ {
		if !isPrime(q) {
			continue
		}
		d = polyDegree(p, q)
		if q > A*d {
			return q, d
		}
	}
}

// LinialPaletteAfter returns the palette size after one reduction step
// from a p-coloring with out-degree bound A: q^2.
func LinialPaletteAfter(p, A int) int {
	q, _ := LinialParams(p, A)
	return q * q
}

// LinialSchedule returns the sequence of palette sizes visited when
// iterating the reduction from an initial proper p0-coloring until the
// palette reaches a fixed point: schedule[0] = p0, each subsequent entry
// the next palette. The map p -> q(p)^2 is monotone and its fixed points
// are squares of primes exceeding 2A, so the iteration converges to an
// O(A^2) palette in O(log* p0) steps (it may grow once from a small p0
// before stabilizing).
func LinialSchedule(p0, A int) []int {
	sched := []int{p0}
	p := p0
	for iter := 0; ; iter++ {
		if iter > 64 {
			panic("coloring: Linial schedule failed to converge")
		}
		next := LinialPaletteAfter(p, A)
		if next == p {
			return sched
		}
		sched = append(sched, next)
		p = next
	}
}

// LinialFinalPalette returns the fixed-point palette size of the iterated
// reduction starting from p0 (the number of colors Procedure
// Arb-Linial-Coloring uses after all its O(log* n) steps): O(A^2).
func LinialFinalPalette(p0, A int) int {
	s := LinialSchedule(p0, A)
	return s[len(s)-1]
}

// evalPoly evaluates the polynomial whose coefficients are the base-q
// digits of c (degree < d) at point x over F_q.
func evalPoly(c, q, d, x int) int {
	// Horner on digits most-significant first.
	digits := make([]int, d)
	for i := 0; i < d; i++ {
		digits[i] = c % q
		c /= q
	}
	y := 0
	for i := d - 1; i >= 0; i-- {
		y = (y*x + digits[i]) % q
	}
	return y
}

// LinialStep computes the new color of a vertex with current color c from
// a proper p-coloring, given the current colors of its at most A parents.
// The result lies in [0, q^2) and differs from every parent's LinialStep
// result as well as from the parents' current colors' set points, so
// applying LinialStep simultaneously everywhere preserves properness along
// oriented edges. It panics if no free point exists, which would indicate
// a violated precondition (c == parent color, or more than A parents).
func LinialStep(p, A, c int, parents []int) int {
	q, d := LinialParams(p, A)
	for x := 0; x < q; x++ {
		y := evalPoly(c, q, d, x)
		free := true
		for _, pc := range parents {
			if evalPoly(pc, q, d, x) == y {
				free = false
				break
			}
		}
		if free {
			return x*q + y
		}
	}
	panic("coloring: no free evaluation point (precondition violated)")
}
