package coloring

import (
	"vavg/internal/engine"
	"vavg/internal/forest"
	"vavg/internal/hpartition"
)

// Step (state-machine) forms of the coloring subroutines and algorithms.
// Each Start* constructor begins a sub-machine inside the caller's current
// turn — performing exactly the local work and sends the blocking form
// performs before its first receive — and returns the Step that continues
// it. done is invoked in the turn the subroutine's blocking form returns
// in, so compositions keep the same round structure and the two forms are
// byte-identical on every backend.

// StartIteratedLinial is the step form of IteratedLinial. members is
// accepted for signature parity with the blocking form (it is implied by
// parentIdx there too).
func StartIteratedLinial(api *engine.API, members, parentIdx []int, A int,
	sink Sink, done func(int) engine.Step) engine.Step {
	_ = members
	sched := LinialSchedule(api.N(), A)
	ids := api.NeighborIDs()
	parentColors := make([]int, len(parentIdx))
	for j, k := range parentIdx {
		parentColors[j] = int(ids[k])
	}
	parentOf := make(map[int32]int, len(parentIdx)) // vertex ID -> slot
	for j, k := range parentIdx {
		parentOf[ids[k]] = j
	}
	c := api.ID()
	if len(sched) < 2 {
		return done(c)
	}
	step := 0
	var loop engine.StepFn
	var advance func(api *engine.API) engine.Step
	advance = func(api *engine.API) engine.Step {
		step++
		c = LinialStep(sched[step-1], A, c, parentColors)
		if step == len(sched)-1 {
			return done(c) // no one needs my color for a further step
		}
		broadcastColor(api, step, c)
		return engine.Continue(loop)
	}
	loop = func(api *engine.API, inbox []engine.Msg) engine.Step {
		var stray []engine.Msg
		for _, m := range inbox {
			mstep, mc, ok := asColor(m)
			if !ok {
				stray = append(stray, m)
				continue
			}
			if j, isParent := parentOf[m.From]; isParent && mstep == step {
				parentColors[j] = mc
			}
		}
		if len(stray) > 0 {
			sink(stray)
		}
		return advance(api)
	}
	return advance(api)
}

// StartKWReduce is the step form of KWReduce.
func StartKWReduce(api *engine.API, members []int, myColor, m, A int,
	sink Sink, done func(int) engine.Step) engine.Step {
	phases := kwPhases(m, A)
	if len(phases) == 0 {
		return done(myColor)
	}
	ms := newMemberSet(api, members)
	c := myColor
	groupSize := 2 * (A + 1)
	pi, r := 0, 0
	var class, base, chosen int
	var taken map[int]bool
	var loop engine.StepFn
	send := func(api *engine.API) engine.Step {
		if r == class {
			for cand := base; ; cand++ {
				if !taken[cand] {
					chosen = cand
					break
				}
			}
			BroadcastChosen(api, kwKind, int32(chosen))
		}
		return engine.Continue(loop)
	}
	startPhase := func(api *engine.API) engine.Step {
		class = c % groupSize
		base = (c / groupSize) * (A + 1)
		taken = make(map[int]bool)
		chosen = -1
		r = 0
		return send(api)
	}
	loop = func(api *engine.API, inbox []engine.Msg) engine.Step {
		var stray []engine.Msg
		for _, msg := range inbox {
			mc, ok := AsChosen(msg, kwKind)
			if !ok || !ms.idx[msg.From] {
				stray = append(stray, msg)
				continue
			}
			taken[int(mc)] = true
		}
		if len(stray) > 0 {
			sink(stray)
		}
		r++
		if r < groupSize {
			return send(api)
		}
		if chosen < 0 {
			panic("coloring: KW vertex never scheduled (improper input coloring?)")
		}
		c = chosen
		pi++
		if pi == len(phases) {
			return done(c)
		}
		return startPhase(api)
	}
	return startPhase(api)
}

// StartDeltaPlus1OnSet is the step form of DeltaPlus1OnSet.
func StartDeltaPlus1OnSet(api *engine.API, members []int, A int,
	sink Sink, done func(int) engine.Step) engine.Step {
	ids := api.NeighborIDs()
	var parents []int
	for _, k := range members {
		if int(ids[k]) > api.ID() {
			parents = append(parents, k)
		}
	}
	return StartIteratedLinial(api, members, parents, A, sink, func(c int) engine.Step {
		return StartKWReduce(api, members, c, LinialFinalPalette(api.N(), A), A, sink, done)
	})
}

// StartCVForests is the step form of CVForests.
func StartCVForests(api *engine.API, numLabels int, parentIdx []int,
	sink Sink, done func([]int32) engine.Step) engine.Step {
	n := api.N()
	colors := make([]int32, numLabels+1) // 1-based labels
	for j := range colors {
		colors[j] = int32(api.ID())
	}
	parentColors := make([]int32, numLabels+1)
	send := func(api *engine.API) {
		api.Broadcast(cvForestMsg{Colors: append([]int32(nil), colors...)})
	}
	process := func(api *engine.API, inbox []engine.Msg) {
		var stray []engine.Msg
		for _, m := range inbox {
			cm, ok := m.Data.(cvForestMsg)
			if !ok {
				stray = append(stray, m)
				continue
			}
			k := api.NeighborIndex(m.From)
			for j := 1; j <= numLabels; j++ {
				if parentIdx[j] == k && j < len(cm.Colors) {
					parentColors[j] = cm.Colors[j]
				}
			}
		}
		if len(stray) > 0 {
			sink(stray)
		}
	}
	steps := CVSteps(n)
	s := 0
	removed := []int32{5, 4, 3}
	ri := 0
	preShift := make([]int32, numLabels+1)
	var reduce, shiftA, shiftB engine.StepFn
	reduce = func(api *engine.API, inbox []engine.Msg) engine.Step {
		process(api, inbox)
		for j := 1; j <= numLabels; j++ {
			cp := parentColors[j]
			if parentIdx[j] < 0 {
				cp = colors[j] ^ 1
			}
			colors[j] = cvStep(colors[j], cp)
		}
		s++
		send(api)
		if s < steps {
			return engine.Continue(reduce)
		}
		return engine.Continue(shiftA)
	}
	shiftA = func(api *engine.API, inbox []engine.Msg) engine.Step {
		process(api, inbox)
		for j := 1; j <= numLabels; j++ {
			preShift[j] = colors[j]
			if parentIdx[j] < 0 {
				// Root: pick a color in {0,1,2} different from its own.
				colors[j] = (colors[j] + 1) % 3
			} else {
				colors[j] = parentColors[j]
			}
		}
		send(api)
		return engine.Continue(shiftB)
	}
	shiftB = func(api *engine.API, inbox []engine.Msg) engine.Step {
		process(api, inbox)
		for j := 1; j <= numLabels; j++ {
			if colors[j] != removed[ri] {
				continue
			}
			forbidden := [2]int32{preShift[j], -1}
			if parentIdx[j] >= 0 {
				forbidden[1] = parentColors[j]
			}
			for c := int32(0); c < 3; c++ {
				if c != forbidden[0] && c != forbidden[1] {
					colors[j] = c
					break
				}
			}
		}
		ri++
		if ri == len(removed) {
			return done(colors[:numLabels+1])
		}
		send(api)
		return engine.Continue(shiftA)
	}
	send(api)
	if steps > 0 {
		return engine.Continue(reduce)
	}
	return engine.Continue(shiftA)
}

// ArbLinialO1Step is the step form of ArbLinialO1.
func ArbLinialO1Step(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			d := forest.NewDecomp(api, a, eps)
			return d.Start(api, func() engine.Step {
				ids := api.NeighborIDs()
				parents := make([]int, len(d.OutIdx))
				for j, k := range d.OutIdx {
					parents[j] = int(ids[k])
				}
				return engine.Done(LinialStep(api.N(), d.Tr.A, api.ID(), parents))
			})
		}
	}
}

// TwoPhaseA2Step is the step form of TwoPhaseA2.
func TwoPhaseA2Step(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		n := api.N()
		tr := hpartition.NewTracker(api, a, eps)
		A := tr.A
		t, ell := phaseSplit(n, eps)
		P := LinialFinalPalette(n, A)
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }

		phase := 1
		segLo, segHi := int32(0), int32(t)
		waitEnd := t

		settle := func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			members, parents := SegmentParents(api, tr, segLo, segHi)
			return StartIteratedLinial(api, members, parents, A, sink, func(c int) engine.Step {
				return engine.Done(c + (phase-1)*P)
			})
		}
		// The blocking form idles to the segment boundary and settles one
		// round later; a single sleep accumulates the same absorbs.
		joined := func(api *engine.API) engine.Step {
			k := waitEnd + 1 - api.Round()
			if k < 1 {
				k = 1
			}
			return engine.Sleep(k, settle)
		}
		var phase2 engine.StepFn
		phase2 = func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			if tr.HIndex != 0 {
				return joined(api)
			}
			tr.Advance(api)
			return engine.Continue(phase2)
		}
		var phase1 engine.StepFn
		phase1 = func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			if tr.HIndex != 0 {
				return joined(api)
			}
			if int32(api.Round()) < int32(t) {
				tr.Advance(api)
				return engine.Continue(phase1)
			}
			phase = 2
			segLo, segHi = int32(t), int32(ell)
			waitEnd = ell
			tr.Advance(api)
			return engine.Continue(phase2)
		}
		return phase1
	}
}

// AColorLogLogStep is the step form of AColorLogLog.
func AColorLogLogStep(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		n := api.N()
		sch := NewAColorSchedule(n, a, eps)
		tr := hpartition.NewTracker(api, a, eps)
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }

		var i int32
		var c int
		var members []int
		setColor := map[int]int{} // neighbor index -> its set color

		greedy := func(api *engine.API) engine.Step {
			segLo, segHi, base := int32(0), int32(sch.T), 0
			if int(i) > sch.T {
				segLo, segHi, base = int32(sch.T), int32(sch.Ell), sch.A+1
			}
			parentFinal := map[int]int{} // neighbor index -> final color
			var parents []int
			for k, h := range tr.NbrH {
				if h <= segLo || h > segHi {
					continue
				}
				if h > i || (h == i && setColor[k] > c) {
					parents = append(parents, k)
				}
			}
			var wait engine.StepFn
			var check func(api *engine.API) engine.Step
			check = func(api *engine.API) engine.Step {
				ready := true
				for _, k := range parents {
					if _, ok := parentFinal[k]; !ok {
						ready = false
						break
					}
				}
				if ready {
					used := map[int]bool{}
					for _, k := range parents {
						used[parentFinal[k]] = true
					}
					for cand := base; ; cand++ {
						if !used[cand] {
							return engine.Done(cand)
						}
					}
				}
				return engine.Continue(wait)
			}
			wait = func(api *engine.API, inbox []engine.Msg) engine.Step {
				for _, m := range inbox {
					f, ok := m.Data.(engine.Final)
					if !ok {
						continue
					}
					if col, ok := f.Output.(int); ok {
						parentFinal[api.NeighborIndex(m.From)] = col
					}
				}
				return check(api)
			}
			return check(api)
		}
		wake := func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			return greedy(api)
		}
		exch := func(api *engine.API, inbox []engine.Msg) engine.Step {
			ms := newMemberSet(api, members)
			var stray []engine.Msg
			for _, m := range inbox {
				if mc, ok := AsChosen(m, dp1Kind); ok && ms.idx[m.From] {
					setColor[api.NeighborIndex(m.From)] = int(mc)
					continue
				}
				stray = append(stray, m)
			}
			sink(stray)
			start := sch.S1
			if int(i) > sch.T {
				start = sch.S2
			}
			if api.Round() < start {
				return engine.Sleep(start-api.Round(), wake)
			}
			return greedy(api)
		}
		settle := func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			i = tr.HIndex
			for k, h := range tr.NbrH {
				if h == i {
					members = append(members, k)
				}
			}
			return StartDeltaPlus1OnSet(api, members, sch.A, sink, func(col int) engine.Step {
				c = col
				// Exchange the Delta+1 colors within the set to orient by color.
				BroadcastChosen(api, dp1Kind, int32(c))
				return engine.Continue(exch)
			})
		}
		js1 := func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			return engine.Continue(settle)
		}
		var window, tail engine.StepFn
		window = func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			if tr.Advance(api) {
				return engine.Continue(js1)
			}
			return engine.Continue(tail)
		}
		tail = func(api *engine.API, inbox []engine.Msg) engine.Step {
			tr.Absorb(api, inbox)
			return engine.Sleep(sch.W-1, window)
		}
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			if tr.Advance(api) {
				return engine.Continue(js1)
			}
			return engine.Continue(tail)
		}
	}
}
