package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogStar(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 0}, {2, 1}, {4, 2}, {16, 3}, {65536, 4}, {1 << 20, 5},
	}
	for _, c := range cases {
		if got := LogStar(c.n); got != c.want {
			t.Errorf("LogStar(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestIterLog(t *testing.T) {
	if IterLog(1<<16, 1) != 16 {
		t.Errorf("IterLog(2^16,1) = %d", IterLog(1<<16, 1))
	}
	if IterLog(1<<16, 2) != 4 {
		t.Errorf("IterLog(2^16,2) = %d", IterLog(1<<16, 2))
	}
	if IterLog(1<<16, 10) != 1 {
		t.Errorf("IterLog(2^16,10) = %d", IterLog(1<<16, 10))
	}
	if IterLog(100, 0) != 100 {
		t.Errorf("IterLog(100,0) = %d", IterLog(100, 0))
	}
}

func TestRhoTinyN(t *testing.T) {
	// Regression: Rho(1) used to loop forever (IterLog floors at 1).
	for _, n := range []int{1, 2, 3, 4} {
		if r := Rho(n); r != 2 {
			t.Errorf("Rho(%d) = %d, want 2", n, r)
		}
	}
}

func TestRhoMonotoneAndBounded(t *testing.T) {
	for _, n := range []int{16, 256, 65536, 1 << 20} {
		r := Rho(n)
		if r < 2 {
			t.Errorf("Rho(%d) = %d < 2", n, r)
		}
		if IterLog(n, r-1) < LogStar(n) {
			t.Errorf("Rho(%d) = %d violates defining property", n, r)
		}
	}
}

func TestLinialParamsGuarantee(t *testing.T) {
	for _, p := range []int{10, 1000, 1 << 20} {
		for _, A := range []int{1, 3, 8, 20} {
			q, d := LinialParams(p, A)
			if !isPrime(q) {
				t.Errorf("q=%d not prime", q)
			}
			if q <= A*d {
				t.Errorf("p=%d A=%d: q=%d <= A*d=%d", p, A, q, A*d)
			}
			if polyDegree(p, q) != d {
				t.Errorf("p=%d A=%d: degree mismatch", p, A)
			}
		}
	}
}

func TestLinialScheduleConverges(t *testing.T) {
	for _, A := range []int{2, 4, 12} {
		sched := LinialSchedule(1<<20, A)
		if len(sched) > 8 {
			t.Errorf("A=%d: schedule too long (%d steps), want O(log* n)", A, len(sched))
		}
		final := sched[len(sched)-1]
		if LinialPaletteAfter(final, A) != final {
			t.Errorf("A=%d: schedule does not end at a fixed point: %v", A, sched)
		}
		// Fixed point is O(A^2): generous constant for the polynomial family.
		if final > 64*(A+1)*(A+1) {
			t.Errorf("A=%d: final palette %d not O(A^2)", A, final)
		}
	}
}

// TestLinialStepProperness simulates the reduction on random DAG colorings:
// orient a random graph by ID, give every vertex a distinct color, apply
// LinialStep simultaneously, and confirm properness is preserved along all
// edges at each step of the schedule.
func TestLinialStepProperness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(40)
		A := 2 + rng.Intn(4)
		// Random orientation with out-degree <= A: each vertex picks up to A
		// parents among higher IDs.
		parents := make([][]int, n)
		for v := 0; v < n; v++ {
			for j := 0; j < A && v+1 < n; j++ {
				p := v + 1 + rng.Intn(n-v-1)
				parents[v] = append(parents[v], p)
			}
		}
		colors := make([]int, n)
		for v := range colors {
			colors[v] = v
		}
		sched := LinialSchedule(n, A)
		for step := 1; step < len(sched); step++ {
			p := sched[step-1]
			next := make([]int, n)
			for v := 0; v < n; v++ {
				pc := make([]int, len(parents[v]))
				for j, u := range parents[v] {
					pc[j] = colors[u]
				}
				next[v] = LinialStep(p, A, colors[v], pc)
			}
			for v := 0; v < n; v++ {
				if next[v] >= sched[step] {
					return false
				}
				for _, u := range parents[v] {
					if next[v] == next[u] {
						return false
					}
				}
			}
			colors = next
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEvalPolyDistinctness(t *testing.T) {
	// Distinct colors yield polynomials agreeing on < d points... verify the
	// counting bound used by LinialStep on a concrete field.
	q, d := 7, 3
	for c1 := 0; c1 < 40; c1++ {
		for c2 := c1 + 1; c2 < 40; c2++ {
			agree := 0
			for x := 0; x < q; x++ {
				if evalPoly(c1, q, d, x) == evalPoly(c2, q, d, x) {
					agree++
				}
			}
			if agree >= d {
				t.Fatalf("colors %d,%d agree on %d >= d=%d points", c1, c2, agree, d)
			}
		}
	}
}

func TestKWPhaseSchedule(t *testing.T) {
	for _, A := range []int{1, 4, 9} {
		m := 30 * (A + 1)
		phases := kwPhases(m, A)
		if len(phases) == 0 {
			t.Fatalf("A=%d: no phases for m=%d", A, m)
		}
		// Each phase at least halves (up to rounding) until <= A+1.
		cur := m
		for _, pm := range phases {
			if pm != cur {
				t.Fatalf("A=%d: phase palette %d, want %d", A, pm, cur)
			}
			groups := (cur + 2*(A+1) - 1) / (2 * (A + 1))
			cur = groups * (A + 1)
		}
		if cur > A+1 {
			t.Errorf("A=%d: schedule ends at %d > A+1", A, cur)
		}
		if KWRounds(m, A) != len(phases)*2*(A+1) {
			t.Errorf("KWRounds inconsistent")
		}
	}
}
