package coloring

import (
	"vavg/internal/engine"
	"vavg/internal/hpartition"
)

// AColorSchedule collects the round schedule shared by every vertex of the
// Section 7.4 algorithm (and reused by the segmentation scheme of Section
// 7.7). All quantities derive from (n, a, eps), which are global
// knowledge, so each vertex computes the same schedule locally.
type AColorSchedule struct {
	A    int // partition threshold (2+eps)a
	T    int // phase-1 iterations: floor(c' loglog n)
	Ell  int // partition completion bound
	W    int // width of one iteration window
	S1   int // round at which the phase-1 recolor wave starts
	Wrc1 int // width of the phase-1 recolor window
	S2   int // round at which the phase-2 recolor wave starts
	Wrc2 int // width of the phase-2 recolor window
}

// NewAColorSchedule computes the schedule for an n-vertex graph.
func NewAColorSchedule(n, a int, eps float64) AColorSchedule {
	A := hpartition.ParamA(a, eps)
	t, ell := phaseSplit(n, eps)
	// Window: partition round + settle + Delta+1 coloring + color exchange.
	w := 3 + DeltaPlus1Rounds(n, A)
	s1 := t * w
	wrc1 := (A+1)*t + 2
	s2 := s1 + wrc1 + (ell-t)*w
	wrc2 := (A+1)*(ell-t) + 2
	return AColorSchedule{A: A, T: t, Ell: ell, W: w, S1: s1, Wrc1: wrc1, S2: s2, Wrc2: wrc2}
}

// AColorLogLog is the algorithm of Section 7.4: an O(a)-coloring with
// O((a log a + log* n) * log log n) vertex-averaged complexity (the paper
// states O(a log log n); the log a and log* n factors come from our
// (Delta+1)-on-H-set substitute, see DESIGN.md). The algorithm proceeds in
// iterations; in iteration i, the H-set H_i forms, is colored with A+1
// colors, and orients its edges by color (within the set) and toward later
// sets. After the t = O(log log n) phase-1 iterations, the phase-1 segment
// recolors along the acyclic orientation from the palette {0..A}, each
// vertex waiting for its parents; phase 2 does the same for the remaining
// sets with a disjoint palette. Final flat color = c + (phase-1)*(A+1),
// so at most 2(A+1) = O(a) colors are used.
func AColorLogLog(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		n := api.N()
		sch := NewAColorSchedule(n, a, eps)
		tr := hpartition.NewTracker(api, a, eps)
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }

		// Iteration windows: one partition step, then either run the
		// window as a new H-set member or idle through it.
		for tr.HIndex == 0 {
			joined, _ := tr.Step(api)
			if !joined {
				tr.Absorb(api, api.Idle(sch.W-1))
			}
		}
		i := tr.HIndex
		// Settle round: same-iteration joins arrive.
		tr.Absorb(api, api.Next())
		var members []int
		for k, h := range tr.NbrH {
			if h == i {
				members = append(members, k)
			}
		}
		c := DeltaPlus1OnSet(api, members, sch.A, sink)
		// Exchange the Delta+1 colors within the set to orient by color.
		setColor := map[int]int{} // neighbor index -> its set color
		BroadcastChosen(api, dp1Kind, int32(c))
		ms := newMemberSet(api, members)
		var stray []engine.Msg
		for _, m := range api.Next() {
			if mc, ok := AsChosen(m, dp1Kind); ok && ms.idx[m.From] {
				setColor[api.NeighborIndex(m.From)] = int(mc)
				continue
			}
			stray = append(stray, m)
		}
		sink(stray)

		// Wait for this vertex's segment recolor window.
		segLo, segHi, start, base := int32(0), int32(sch.T), sch.S1, 0
		if int(i) > sch.T {
			segLo, segHi, start, base = int32(sch.T), int32(sch.Ell), sch.S2, sch.A+1
		}
		for api.Round() < start {
			tr.Absorb(api, api.Next())
		}
		// Parents within the segment: later H-set, or same set with higher
		// Delta+1 color.
		parentFinal := map[int]int{} // neighbor index -> final color
		var parents []int
		for k, h := range tr.NbrH {
			if h <= segLo || h > segHi {
				continue
			}
			if h > i || (h == i && setColor[k] > c) {
				parents = append(parents, k)
			}
		}
		for {
			ready := true
			for _, k := range parents {
				if _, ok := parentFinal[k]; !ok {
					ready = false
					break
				}
			}
			if ready {
				used := map[int]bool{}
				for _, k := range parents {
					used[parentFinal[k]] = true
				}
				for cand := base; ; cand++ {
					if !used[cand] {
						return cand
					}
				}
			}
			for _, m := range api.Next() {
				f, ok := m.Data.(engine.Final)
				if !ok {
					continue
				}
				if col, ok := f.Output.(int); ok {
					parentFinal[api.NeighborIndex(m.From)] = col
				}
			}
		}
	}
}

const dp1Kind = 2

// AColorPalette returns the color budget of AColorLogLog: 2(A+1).
func AColorPalette(a int, eps float64) int {
	return 2 * (hpartition.ParamA(a, eps) + 1)
}
