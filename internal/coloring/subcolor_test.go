package coloring

import (
	"testing"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
)

// TestKWReduceStandalone feeds KWReduce a proper m-coloring (vertex IDs on
// a graph with max degree <= A) and checks the reduction to A+1 colors.
func TestKWReduceStandalone(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Ring(30), graph.Grid(5, 6), graph.Clique(7)} {
		A := g.MaxDegree()
		m := g.N()
		prog := func(api *engine.API) any {
			members := make([]int, api.Degree())
			for k := range members {
				members[k] = k
			}
			return KWReduce(api, members, api.ID(), m, A, NopSink)
		}
		res, err := engine.Run(g, prog, engine.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		cols := make([]int, g.N())
		for v, o := range res.Output {
			cols[v] = o.(int)
		}
		if err := check.VertexColoring(g, cols, A+1); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		for _, c := range cols {
			if c >= A+1 {
				t.Fatalf("%s: color %d outside [0,%d)", g.Name, c, A+1)
			}
		}
		// Exactly KWRounds exchanges plus the final round, for everyone.
		if want := KWRounds(m, A) + 1; res.TotalRounds != want {
			t.Errorf("%s: rounds %d, want %d", g.Name, res.TotalRounds, want)
		}
	}
}

// TestCVForestsStandalone 3-colors the label forests of a real forest
// decomposition and verifies per-forest properness.
func TestCVForestsStandalone(t *testing.T) {
	g := graph.ForestUnion(300, 3, 21)
	numLabels := 12
	type out struct {
		colors  []int32
		parents []int // per label: parent vertex ID or -1
	}
	prog := func(api *engine.API) any {
		// Deterministic forest structure: out-edges to higher IDs, label =
		// rank among them (capped at numLabels).
		parentIdx := make([]int, numLabels+1)
		parentID := make([]int, numLabels+1)
		for j := range parentIdx {
			parentIdx[j] = -1
			parentID[j] = -1
		}
		label := 0
		for k, id := range api.NeighborIDs() {
			if int(id) > api.ID() && label < numLabels {
				label++
				parentIdx[label] = k
				parentID[label] = int(id)
			}
		}
		cv := CVForests(api, numLabels, parentIdx, NopSink)
		return out{colors: cv, parents: parentID}
	}
	res, err := engine.Run(g, prog, engine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		o := res.Output[v].(out)
		for j := 1; j <= numLabels; j++ {
			c := o.colors[j]
			if c < 0 || c > 2 {
				t.Fatalf("vertex %d forest %d color %d outside {0,1,2}", v, j, c)
			}
			if p := o.parents[j]; p >= 0 {
				pc := res.Output[p].(out).colors[j]
				if pc == c {
					t.Fatalf("forest %d edge {%d,%d} monochromatic (%d)", j, v, p, c)
				}
			}
		}
	}
	if want := CVForestRounds(g.N()) + 1; res.TotalRounds != want {
		t.Errorf("rounds %d, want %d", res.TotalRounds, want)
	}
}
