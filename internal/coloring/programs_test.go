package coloring

import (
	"testing"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
	"vavg/internal/hpartition"
)

func colorsOf(t *testing.T, res *engine.Result) []int {
	t.Helper()
	cs := make([]int, len(res.Output))
	for v, o := range res.Output {
		c, ok := o.(int)
		if !ok {
			t.Fatalf("vertex %d output %T, want int", v, o)
		}
		cs[v] = c
	}
	return cs
}

var colorFamilies = []struct {
	g *graph.Graph
	a int
}{
	{graph.Ring(60), 2},
	{graph.Star(60), 1},
	{graph.ForestUnion(300, 3, 5), 3},
	{graph.TriangulatedGrid(10, 10), 3},
	{graph.CompleteBinaryTree(127), 1},
	{graph.Clique(12), 6},
}

func TestArbLinialO1Proper(t *testing.T) {
	for _, c := range colorFamilies {
		res, err := engine.Run(c.g, ArbLinialO1(c.a, 2), engine.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		cols := colorsOf(t, res)
		if err := check.VertexColoring(c.g, cols, ArbLinialO1Palette(c.g.N(), c.a, 2)); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
	}
}

func TestArbLinialO1VertexAveragedConstant(t *testing.T) {
	for _, n := range []int{500, 2000, 8000} {
		g := graph.ForestUnion(n, 2, 9)
		res, err := engine.Run(g, ArbLinialO1(2, 2), engine.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if avg := res.VertexAverage(); avg > 4.5 {
			t.Errorf("n=%d: vertex-averaged %.2f, want O(1)", n, avg)
		}
	}
}

func TestTwoPhaseA2Proper(t *testing.T) {
	for _, c := range colorFamilies {
		res, err := engine.Run(c.g, TwoPhaseA2(c.a, 2), engine.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		cols := colorsOf(t, res)
		if err := check.VertexColoring(c.g, cols, 2*TwoPhaseA2PhasePalette(c.g.N(), c.a, 2)); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
	}
}

func TestTwoPhaseA2PaletteOrderASquared(t *testing.T) {
	// O(a^2) colors: the per-phase palette must stay bounded in n.
	for _, a := range []int{1, 3, 8} {
		A := hpartition.ParamA(a, 2)
		for _, n := range []int{1000, 100000, 1 << 22} {
			p := TwoPhaseA2PhasePalette(n, a, 2)
			if p > 64*(A+1)*(A+1) {
				t.Errorf("a=%d n=%d: phase palette %d not O(a^2)", a, n, p)
			}
		}
	}
}

func TestAColorLogLogProper(t *testing.T) {
	for _, c := range colorFamilies {
		res, err := engine.Run(c.g, AColorLogLog(c.a, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		cols := colorsOf(t, res)
		if err := check.VertexColoring(c.g, cols, AColorPalette(c.a, 2)); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
	}
}

func TestAColorPaletteLinearInA(t *testing.T) {
	for _, a := range []int{1, 2, 4, 8} {
		if got, want := AColorPalette(a, 2), 2*(hpartition.ParamA(a, 2)+1); got != want {
			t.Errorf("AColorPalette(%d) = %d, want %d", a, got, want)
		}
	}
}

func TestDeltaPlus1OnSetStandalone(t *testing.T) {
	// Run DeltaPlus1OnSet on whole small graphs (members = all neighbors):
	// result must be a proper coloring with at most Delta+1 colors.
	for _, g := range []*graph.Graph{graph.Ring(40), graph.Clique(9), graph.TriangulatedGrid(6, 6)} {
		A := g.MaxDegree()
		prog := func(api *engine.API) any {
			members := make([]int, api.Degree())
			for k := range members {
				members[k] = k
			}
			return DeltaPlus1OnSet(api, members, A, NopSink)
		}
		res, err := engine.Run(g, prog, engine.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		cols := colorsOf(t, res)
		if err := check.VertexColoring(g, cols, A+1); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
		// All vertices finish in the same round (lockstep subroutine).
		for v := 1; v < g.N(); v++ {
			if res.Rounds[v] != res.Rounds[0] {
				t.Fatalf("%s: lockstep violated: rounds %v", g.Name, res.Rounds[:8])
			}
		}
		if want := DeltaPlus1Rounds(g.N(), A) + 1; res.TotalRounds != want {
			t.Errorf("%s: rounds = %d, want %d", g.Name, res.TotalRounds, want)
		}
	}
}

func TestIteratedLinialStandalone(t *testing.T) {
	g := graph.ForestUnion(200, 2, 3)
	A := g.MaxDegree() // orientation by ID has out-degree <= Delta here
	prog := func(api *engine.API) any {
		members := make([]int, api.Degree())
		var parents []int
		for k := range members {
			members[k] = k
			if int(api.NeighborIDs()[k]) > api.ID() {
				parents = append(parents, k)
			}
		}
		return IteratedLinial(api, members, parents, A, NopSink)
	}
	res, err := engine.Run(g, prog, engine.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cols := colorsOf(t, res)
	if err := check.VertexColoring(g, cols, LinialFinalPalette(g.N(), A)); err != nil {
		t.Error(err)
	}
}

// TestTwoPhaseA2Phase2Exercised forces vertices into phase 2: a 5-ary
// tree with a=1 (threshold A=4 < internal degree 6) peels one level per
// partition round, outlasting the t = loglog n phase-1 budget, so inner
// levels must color through the phase-2 path (palette block 2).
func TestTwoPhaseA2Phase2Exercised(t *testing.T) {
	g := graph.KaryTree(100000, 5)
	res, err := engine.Run(g, TwoPhaseA2(1, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cols := colorsOf(t, res)
	P := TwoPhaseA2PhasePalette(g.N(), 1, 2)
	if err := check.VertexColoring(g, cols, 2*P); err != nil {
		t.Fatal(err)
	}
	phase2 := 0
	for _, c := range cols {
		if c >= P {
			phase2++
		}
	}
	if phase2 == 0 {
		t.Fatal("no vertex colored in phase 2; the deep-tree forcing failed")
	}
	t.Logf("phase-2 vertices: %d of %d", phase2, g.N())
}

// TestAColorLogLogPhase2Exercised does the same for the Section 7.4
// algorithm: inner tree levels must recolor from the phase-2 block.
func TestAColorLogLogPhase2Exercised(t *testing.T) {
	g := graph.KaryTree(50000, 5)
	res, err := engine.Run(g, AColorLogLog(1, 2), engine.Options{Seed: 1, MaxRounds: 1 << 21})
	if err != nil {
		t.Fatal(err)
	}
	cols := colorsOf(t, res)
	if err := check.VertexColoring(g, cols, AColorPalette(1, 2)); err != nil {
		t.Fatal(err)
	}
	base := 4 + 1 // A+1 with A = ParamA(1,2) = 4
	phase2 := 0
	for _, c := range cols {
		if c >= base {
			phase2++
		}
	}
	if phase2 == 0 {
		t.Fatal("no vertex used the phase-2 palette block")
	}
	t.Logf("phase-2 vertices: %d of %d", phase2, g.N())
}
