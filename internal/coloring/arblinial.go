package coloring

import (
	"math"

	"vavg/internal/engine"
	"vavg/internal/forest"
	"vavg/internal/hpartition"
)

// ArbLinialO1 is the algorithm of Section 7.2: an O(a^2 log n)-coloring
// with O(1) vertex-averaged complexity. It runs Procedure
// Parallelized-Forest-Decomposition and, immediately upon the formation of
// each H-set, colors its vertices with a single step of Procedure
// Arb-Linial-Coloring — which is purely local, because the parents'
// current colors are their IDs, already known at settle time. A vertex
// joining in partition round i therefore terminates in round i+2.
//
// (Our constructive Linial step uses the polynomial set system, giving a
// palette of O(a^2 log^2 n / log^2(a log n)) rather than the
// non-constructive 5*ceil(A^2 log n); see DESIGN.md.)
func ArbLinialO1(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		d := forest.NewDecomp(api, a, eps)
		d.JoinAndSettle(api)
		parents := make([]int, len(d.OutIdx))
		ids := api.NeighborIDs()
		for j, k := range d.OutIdx {
			parents[j] = int(ids[k])
		}
		return LinialStep(api.N(), d.Tr.A, api.ID(), parents)
	}
}

// ArbLinialO1Palette returns the palette bound of ArbLinialO1.
func ArbLinialO1Palette(n, a int, eps float64) int {
	return LinialPaletteAfter(n, hpartition.ParamA(a, eps))
}

// phaseSplit returns t = floor(c' * loglog n) clamped to [1, EllBound],
// with c' = log_{(2+eps)/2} 2, the phase-1 length of the two-phase
// algorithms (Sections 7.3, 7.4, 9.3).
func phaseSplit(n int, eps float64) (t, ell int) {
	ell = hpartition.EllBound(n, eps)
	if n < 4 {
		return 1, ell
	}
	cPrime := math.Ln2 / math.Log((2+eps)/2)
	t = int(math.Floor(cPrime * math.Log2(math.Log2(float64(n)))))
	if t < 1 {
		t = 1
	}
	if t > ell {
		t = ell
	}
	return t, ell
}

// SegmentParents returns the neighbor indices that are this vertex's
// parents within the H-set segment (lo, hi]: neighbors in a later H-set of
// the segment, or in the same set with a higher ID.
func SegmentParents(api *engine.API, tr *hpartition.Tracker, lo, hi int32) (members, parents []int) {
	ids := api.NeighborIDs()
	my := tr.HIndex
	for k, h := range tr.NbrH {
		if h <= lo || h > hi {
			continue
		}
		members = append(members, k)
		if h > my || (h == my && int(ids[k]) > api.ID()) {
			parents = append(parents, k)
		}
	}
	return members, parents
}

// TwoPhaseA2 is the algorithm of Section 7.3: an O(a^2)-coloring with
// O(log log n) vertex-averaged complexity. Phase 1 runs t = O(log log n)
// partition rounds and colors the segment H_1..H_t with the full iterated
// Arb-Linial-Coloring (O(log* n) rounds); phase 2 finishes the partition
// (by round EllBound, leaving only O(n / log n) vertices) and colors the
// remaining segment the same way with a disjoint palette. The flattened
// output color is c + (phase-1)*P with P = TwoPhaseA2PhasePalette.
func TwoPhaseA2(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		n := api.N()
		tr := hpartition.NewTracker(api, a, eps)
		A := tr.A
		t, ell := phaseSplit(n, eps)
		P := LinialFinalPalette(n, A)

		for int32(api.Round()) < int32(t) && tr.HIndex == 0 {
			tr.Step(api)
		}
		phase := 1
		segLo, segHi := int32(0), int32(t)
		if tr.HIndex == 0 {
			// Phase 2: keep partitioning until joined, then wait out the
			// global partition bound.
			phase = 2
			segLo, segHi = int32(t), int32(ell)
			for tr.HIndex == 0 {
				tr.Step(api)
			}
			for api.Round() < ell {
				tr.Absorb(api, api.Next())
			}
		} else {
			// Phase 1: wait for the rest of the segment to form.
			for api.Round() < t {
				tr.Absorb(api, api.Next())
			}
		}
		// Settle round: the segment's last joins announce themselves.
		tr.Absorb(api, api.Next())
		members, parents := SegmentParents(api, tr, segLo, segHi)
		c := IteratedLinial(api, members, parents, A, func(ms []engine.Msg) { tr.Absorb(api, ms) })
		return c + (phase-1)*P
	}
}

// TwoPhaseA2PhasePalette returns the per-phase palette bound P of
// TwoPhaseA2; the algorithm uses at most 2P = O(a^2) colors.
func TwoPhaseA2PhasePalette(n, a int, eps float64) int {
	return LinialFinalPalette(n, hpartition.ParamA(a, eps))
}
