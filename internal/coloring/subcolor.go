package coloring

import (
	"vavg/internal/engine"
	"vavg/internal/wire"
)

// Sink consumes messages that a coloring subroutine receives but does not
// itself understand (Join announcements, terminations, foreign traffic).
// Composed algorithms pass their partition tracker's Absorb here so that
// active-degree accounting stays correct while a subroutine runs.
type Sink func(msgs []engine.Msg)

// NopSink ignores stray messages.
func NopSink([]engine.Msg) {}

// Color messages travel on the engine's integer fast lane. A "color"
// message (wire.TagColor) announces the sender's current color within a
// coloring subroutine instance, with the step number disambiguating
// pipelined instances; a "chosen" message (wire.TagChosen) announces a
// final (or phase-final) color choice under an algorithm-specific kind
// namespace.

// BroadcastChosen announces a final (or phase-final) color choice to all
// neighbors on the fast lane. Kind is the caller's namespace, keeping
// concurrent subroutines of composed algorithms apart.
func BroadcastChosen(api *engine.API, kind, c int32) {
	api.BroadcastInt(wire.Pack(wire.TagChosen, wire.Pair(kind, c)))
}

// AsChosen decodes a chosen-color announcement in the given kind
// namespace; ok is false for any other message.
func AsChosen(m engine.Msg, kind int32) (c int32, ok bool) {
	x, isInt := m.AsInt()
	if !isInt || wire.Tag(x) != wire.TagChosen || wire.PairHi(wire.Payload(x)) != kind {
		return 0, false
	}
	return wire.PairLo(wire.Payload(x)), true
}

func broadcastColor(api *engine.API, step int, c int) {
	api.BroadcastInt(wire.Pack(wire.TagColor, wire.Pair(int32(step), int32(c))))
}

func asColor(m engine.Msg) (step int, c int, ok bool) {
	x, isInt := m.AsInt()
	if !isInt || wire.Tag(x) != wire.TagColor {
		return 0, 0, false
	}
	p := wire.Payload(x)
	return int(wire.PairHi(p)), int(wire.PairLo(p)), true
}

// memberSet answers "is this sender part of my subroutine instance".
type memberSet struct {
	idx map[int32]bool // neighbor IDs
}

func newMemberSet(api *engine.API, members []int) memberSet {
	ids := api.NeighborIDs()
	m := memberSet{idx: make(map[int32]bool, len(members))}
	for _, k := range members {
		m.idx[ids[k]] = true
	}
	return m
}

// IteratedLinial runs Procedure Arb-Linial-Coloring on a synchronized set
// of vertices: the caller's instance consists of the neighbor indices in
// members (its neighbors participating in the instance), of which
// parentIdx are its parents under an acyclic orientation with out-degree
// at most A. Initial colors are vertex IDs (a proper n-coloring). All
// instance vertices must start in the same round and run in lockstep. The
// routine performs IteratedLinialRounds(n, A) exchanges and returns the
// final color, in [0, LinialFinalPalette(n, A)).
func IteratedLinial(api *engine.API, members, parentIdx []int, A int, sink Sink) int {
	sched := LinialSchedule(api.N(), A)
	ids := api.NeighborIDs()
	parentColors := make([]int, len(parentIdx))
	for j, k := range parentIdx {
		parentColors[j] = int(ids[k])
	}
	parentOf := make(map[int32]int, len(parentIdx)) // vertex ID -> slot
	for j, k := range parentIdx {
		parentOf[ids[k]] = j
	}
	c := api.ID()
	for step := 1; step < len(sched); step++ {
		c = LinialStep(sched[step-1], A, c, parentColors)
		if step == len(sched)-1 {
			break // no one needs my color for a further step
		}
		broadcastColor(api, step, c)
		msgs := api.Next()
		var stray []engine.Msg
		for _, m := range msgs {
			mstep, mc, ok := asColor(m)
			if !ok {
				stray = append(stray, m)
				continue
			}
			if j, isParent := parentOf[m.From]; isParent && mstep == step {
				parentColors[j] = mc
			}
		}
		if len(stray) > 0 {
			sink(stray)
		}
	}
	return c
}

// IteratedLinialRounds returns the number of exchanges IteratedLinial
// performs for an n-vertex graph and out-degree bound A: one per reduction
// step except the last. This is O(log* n).
func IteratedLinialRounds(n, A int) int {
	steps := len(LinialSchedule(n, A)) - 1
	if steps <= 0 {
		return 0
	}
	return steps - 1
}

// kwPhases returns the palette sizes at the start of each KW halving
// phase, beginning at m and ending when the palette is at most A+1.
func kwPhases(m, A int) []int {
	var phases []int
	for m > A+1 {
		phases = append(phases, m)
		groups := (m + 2*(A+1) - 1) / (2 * (A + 1))
		m = groups * (A + 1)
	}
	return phases
}

// KWRounds returns the number of exchanges KWReduce performs when
// reducing a proper m-coloring to A+1 colors: O(A log(m/A)) — with
// m = O(A^2), O(A log A).
func KWRounds(m, A int) int {
	total := 0
	for range kwPhases(m, A) {
		total += 2 * (A + 1)
	}
	return total
}

// KWReduce applies Kuhn-Wattenhofer palette halving to reduce a proper
// m-coloring of the member set (within which this vertex has at most A
// neighbors) to a proper coloring with palette [0, A+1). All instance
// vertices start in the same round with consistent (m, A). In each phase
// the current classes are split into groups of 2(A+1); the classes of a
// group take turns (one round each) choosing a free color from the
// group's fresh (A+1)-color target palette, so each phase halves the
// palette at a cost of 2(A+1) rounds.
func KWReduce(api *engine.API, members []int, myColor, m, A int, sink Sink) int {
	ms := newMemberSet(api, members)
	c := myColor
	for range kwPhases(m, A) {
		groupSize := 2 * (A + 1)
		group := c / groupSize
		class := c % groupSize
		base := group * (A + 1)
		taken := make(map[int]bool) // colors announced this phase
		chosen := -1
		for r := 0; r < groupSize; r++ {
			if r == class {
				for cand := base; ; cand++ {
					if !taken[cand] {
						chosen = cand
						break
					}
				}
				BroadcastChosen(api, kwKind, int32(chosen))
			}
			msgs := api.Next()
			var stray []engine.Msg
			for _, msg := range msgs {
				mc, ok := AsChosen(msg, kwKind)
				if !ok || !ms.idx[msg.From] {
					stray = append(stray, msg)
					continue
				}
				taken[int(mc)] = true
			}
			if len(stray) > 0 {
				sink(stray)
			}
		}
		if chosen < 0 {
			panic("coloring: KW vertex never scheduled (improper input coloring?)")
		}
		c = chosen
	}
	return c
}

const kwKind = 1

// DeltaPlus1Rounds returns the exchange count of DeltaPlus1OnSet for an
// n-vertex graph with within-set degree bound A: iterated Linial plus KW.
func DeltaPlus1Rounds(n, A int) int {
	return IteratedLinialRounds(n, A) + KWRounds(LinialFinalPalette(n, A), A)
}

// DeltaPlus1OnSet colors the member set with at most A+1 colors, where A
// bounds this vertex's degree within the set, in DeltaPlus1Rounds(n, A)
// exchanges: iterated Linial from IDs oriented by descending ID, then KW
// reduction. This is the library's stand-in for the Barenboim-Elkin
// linear-in-Delta (Delta+1)-coloring invoked by the paper on H-sets; its
// O(A log A + log* n) running time preserves the paper's O(a ...) shape
// (see DESIGN.md, substitution 1).
func DeltaPlus1OnSet(api *engine.API, members []int, A int, sink Sink) int {
	ids := api.NeighborIDs()
	var parents []int
	for _, k := range members {
		if int(ids[k]) > api.ID() {
			parents = append(parents, k)
		}
	}
	c := IteratedLinial(api, members, parents, A, sink)
	return KWReduce(api, members, c, LinialFinalPalette(api.N(), A), A, sink)
}
