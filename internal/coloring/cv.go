package coloring

import (
	"math/bits"

	"vavg/internal/engine"
)

// cvPaletteAfter returns the palette after one Cole-Vishkin bit-reduction
// step applied to a proper coloring with palette P: new colors have the
// form 2*i + b with i an index of a bit position of P-1.
func cvPaletteAfter(p int) int {
	if p <= 2 {
		return p
	}
	return 2 * bits.Len(uint(p-1))
}

// CVSteps returns the number of bit-reduction steps Cole-Vishkin performs
// from an initial palette of n (vertex IDs) down to the 6-color fixed
// point: O(log* n).
func CVSteps(n int) int {
	steps := 0
	for p := n; p > 6; p = cvPaletteAfter(p) {
		steps++
	}
	return steps
}

// CVForestRounds returns the total exchanges of CVForests: the
// bit-reduction steps plus six rounds of shift-down/class-removal that
// bring the palette from 6 to 3.
func CVForestRounds(n int) int { return CVSteps(n) + 6 }

// cvForestMsg carries a vertex's current color in every forest it knows
// about, indexed by forest label.
type cvForestMsg struct {
	Colors []int32
}

// cvStep performs one bit-reduction: the new color is 2*i + b where i is
// the lowest bit position at which c and the parent color cp differ and b
// is that bit of c. Roots use cp = c ^ 1.
func cvStep(c, cp int32) int32 {
	d := c ^ cp
	i := int32(bits.TrailingZeros32(uint32(d)))
	return 2*i + ((c >> i) & 1)
}

// CVForests 3-colors the vertices of up to numLabels rooted forests in
// parallel, in CVForestRounds(n) exchanges. parentIdx[j] is the neighbor
// index of this vertex's parent in forest j (1-based label), or -1 if the
// vertex is a root of forest j (most vertices are roots of most forests).
// All participating vertices must run in lockstep from the same round.
// The result maps each label to a color in {0,1,2}; adjacent vertices of
// the same forest always receive distinct colors.
//
// This is the classical Cole-Vishkin procedure on rooted trees, used here
// to sequence the per-forest protocols of the Section 8 edge-coloring and
// matching algorithms (Corollaries 8.6, 8.8).
func CVForests(api *engine.API, numLabels int, parentIdx []int, sink Sink) []int32 {
	n := api.N()
	colors := make([]int32, numLabels+1) // 1-based labels
	for j := range colors {
		colors[j] = int32(api.ID())
	}
	parentColors := make([]int32, numLabels+1)

	exchange := func() {
		api.Broadcast(cvForestMsg{Colors: append([]int32(nil), colors...)})
		var stray []engine.Msg
		for _, m := range api.Next() {
			cm, ok := m.Data.(cvForestMsg)
			if !ok {
				stray = append(stray, m)
				continue
			}
			k := api.NeighborIndex(m.From)
			for j := 1; j <= numLabels; j++ {
				if parentIdx[j] == k && j < len(cm.Colors) {
					parentColors[j] = cm.Colors[j]
				}
			}
		}
		if len(stray) > 0 {
			sink(stray)
		}
	}

	steps := CVSteps(n)
	for s := 0; s < steps; s++ {
		exchange()
		for j := 1; j <= numLabels; j++ {
			cp := parentColors[j]
			if parentIdx[j] < 0 {
				cp = colors[j] ^ 1
			}
			colors[j] = cvStep(colors[j], cp)
		}
	}
	// Shift-down + remove classes 5, 4, 3. After shift-down all children of
	// a vertex share its pre-shift color, so a recoloring vertex only needs
	// to avoid its new (parent-derived) color's neighbor set: the parent's
	// new color and its own pre-shift color.
	for _, removed := range []int32{5, 4, 3} {
		exchange() // learn parents' colors for the shift
		preShift := make([]int32, numLabels+1)
		for j := 1; j <= numLabels; j++ {
			preShift[j] = colors[j]
			if parentIdx[j] < 0 {
				// Root: pick a color in {0,1,2} different from its own.
				colors[j] = (colors[j] + 1) % 3
			} else {
				colors[j] = parentColors[j]
			}
		}
		exchange() // learn parents' post-shift colors for the removal
		for j := 1; j <= numLabels; j++ {
			if colors[j] != removed {
				continue
			}
			forbidden := [2]int32{preShift[j], -1}
			if parentIdx[j] >= 0 {
				forbidden[1] = parentColors[j]
			}
			for c := int32(0); c < 3; c++ {
				if c != forbidden[0] && c != forbidden[1] {
					colors[j] = c
					break
				}
			}
		}
	}
	return colors[:numLabels+1]
}
