package extend

import (
	"vavg/internal/wire"
)

// maxWireAssigned bounds decoded assignment counts against corrupt input;
// a head assigns at most one color per incident edge.
const maxWireAssigned = 1 << 24

// EdgeOutput carries a map, so cluster mode needs an explicit codec (see
// forest.Output): sorted-key delta coding gives equal values identical
// bytes on every replica, and the registration licenses EdgeOutput on the
// any message lane under the payloadwire analyzer.
func init() {
	wire.Register(wire.Codec[EdgeOutput]{
		Name: "extend.EdgeOutput",
		Encode: func(buf []byte, o EdgeOutput) []byte {
			return wire.AppendSortedInt32Map(buf, o.Assigned)
		},
		Decode: func(buf []byte) (EdgeOutput, int, error) {
			m, n, err := wire.DecodeSortedInt32Map(buf, maxWireAssigned)
			if err != nil {
				return EdgeOutput{}, 0, err
			}
			return EdgeOutput{Assigned: m}, n, nil
		},
	})
}
