package extend

import (
	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/hpartition"
)

// Problem is an extension-from-partial-solution problem with per-vertex
// outputs (Definition 8.1): any partial solution on a subgraph can be
// extended to the whole graph without changing it. Framework (Theorem 8.2)
// converts a worst-case algorithm for such a problem — supplied as Solve,
// running on one H-set against the frozen partial solution of the earlier
// sets — into an algorithm whose vertex-averaged complexity is the H-set
// cost with Delta replaced by O(a).
type Problem interface {
	// WorkRounds returns the exact number of rounds Solve consumes on an
	// H-set of an n-vertex graph with within-set degree bound A. It must
	// be a pure function of (n, A) so that every vertex derives the same
	// window schedule.
	WorkRounds(n, A int) int
	// Solve computes this vertex's output. It runs immediately after the
	// H-set's (A+1)-coloring and must consume exactly WorkRounds rounds.
	Solve(api *engine.API, ctx *HSetContext) any
}

// HSetContext is the per-vertex view Solve receives.
type HSetContext struct {
	// A is the partition threshold (within-set degrees are at most A).
	A int
	// Tracker is the partition state; Tracker.NbrH classifies neighbors.
	Tracker *hpartition.Tracker
	// Members lists same-set neighbor indices.
	Members []int
	// SetColor is this vertex's color in a proper (A+1)-coloring of the
	// H-set, for sequencing within the set.
	SetColor int
	// Finals maps neighbor indices to the final outputs of neighbors that
	// terminated in earlier windows.
	Finals map[int]any
	// Sink forwards stray messages to the partition bookkeeping; receive
	// loops inside Solve must pass unrecognized messages here.
	Sink coloring.Sink
}

// FrameworkWindow returns the iteration window width for a problem.
func FrameworkWindow(n, a int, eps float64, p Problem) int {
	A := hpartition.ParamA(a, eps)
	return 2 + coloring.DeltaPlus1Rounds(n, A) + p.WorkRounds(n, A)
}

// Framework is the general method of Theorem 8.2 for vertex-output
// problems: one partition step per window; the newly formed H-set is
// settled, (A+1)-colored, then solved by p.Solve while every other active
// vertex idles through the window. The per-vertex output is Solve's
// return value.
func Framework(a int, eps float64, p Problem) engine.Program {
	return func(api *engine.API) any {
		A := hpartition.ParamA(a, eps)
		W := FrameworkWindow(api.N(), a, eps, p)
		tr := hpartition.NewTracker(api, a, eps)
		fin := newFinals()
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms); fin.absorb(api, ms) }

		for {
			joined, msgs := tr.Step(api)
			fin.absorb(api, msgs)
			if joined {
				break
			}
			sink(api.Idle(W - 1))
		}
		sink(api.Next()) // settle
		ctx := &HSetContext{
			A:       A,
			Tracker: tr,
			Members: sameSetMembers(tr),
			Finals:  fin.byIdx,
			Sink:    sink,
		}
		ctx.SetColor = coloring.DeltaPlus1OnSet(api, ctx.Members, A, sink)
		return p.Solve(api, ctx)
	}
}

// misProblem solves MIS on an H-set: color classes take turns joining
// unless dominated (the reduction of Section 3.2 of [4] the paper invokes
// in Corollary 8.4).
type misProblem struct{}

func (misProblem) WorkRounds(n, A int) int { return A + 1 }

func (misProblem) Solve(api *engine.API, ctx *HSetContext) any {
	dominated := func() bool {
		for _, out := range ctx.Finals {
			if in, ok := out.(bool); ok && in {
				return true
			}
		}
		return false
	}
	inMIS := false
	domBySameSet := false
	classSweep(api, ctx.A+1, ctx.SetColor, func() {
		if !dominated() && !domBySameSet {
			inMIS = true
			coloring.BroadcastChosen(api, sweepKind, 1)
		}
	}, func(msgs []engine.Msg) {
		for _, m := range msgs {
			if c, ok := coloring.AsChosen(m, sweepKind); ok && c == 1 {
				domBySameSet = true
			}
		}
		ctx.Sink(msgs)
	})
	return inMIS
}

// listColorProblem solves (deg+1)-list-coloring on an H-set: classes of
// the set coloring take turns picking the first list color not yet used
// by a neighbor.
type listColorProblem struct {
	list func(v int) []int
}

func (listColorProblem) WorkRounds(n, A int) int { return A + 1 }

func (p listColorProblem) Solve(api *engine.API, ctx *HSetContext) any {
	list := p.list
	if list == nil {
		// Default lists {0..deg(v)}: the (Delta+1)-coloring instance.
		list = func(v int) []int {
			out := make([]int, api.Degree()+1)
			for i := range out {
				out[i] = i
			}
			return out
		}
	}
	taken := map[int]bool{}
	for _, out := range ctx.Finals {
		if c, ok := out.(int); ok {
			taken[c] = true
		}
	}
	myColor := -1
	classSweep(api, ctx.A+1, ctx.SetColor, func() {
		for _, c := range list(api.ID()) {
			if !taken[c] {
				myColor = c
				break
			}
		}
		if myColor < 0 {
			panic("extend: list exhausted (|L(v)| >= deg(v)+1 violated)")
		}
		coloring.BroadcastChosen(api, sweepKind, int32(myColor))
	}, func(msgs []engine.Msg) {
		for _, m := range msgs {
			if c, ok := coloring.AsChosen(m, sweepKind); ok {
				taken[int(c)] = true
			}
		}
		ctx.Sink(msgs)
	})
	return myColor
}

// ListColoring is the (deg+1)-list-coloring problem of Section 8.2 run
// through the general framework: every vertex v receives a color from
// list(v), which must contain at least deg(v)+1 colors, and adjacent
// vertices receive different colors. Corollary 8.3's (Delta+1)-coloring is
// the instance list(v) = {0..deg(v)}.
func ListColoring(a int, eps float64, list func(v int) []int) engine.Program {
	return Framework(a, eps, listColorProblem{list: list})
}

// MISFramework is an alias of MIS kept for symmetry with the framework
// tests; both are the misProblem instance of Framework.
func MISFramework(a int, eps float64) engine.Program {
	return MIS(a, eps)
}
