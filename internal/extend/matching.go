package extend

import (
	"fmt"

	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/hpartition"
	"vavg/internal/wire"
)

// Proposals (wire.TagPropose: "match with me") and acceptances
// (wire.TagAccept: "match confirmed") are payload-free fast-lane messages.
var (
	proposeMsg = wire.Pack(wire.TagPropose, 0)
	acceptMsg  = wire.Pack(wire.TagAccept, 0)
)

func hasTag(m engine.Msg, tag uint8) bool {
	x, ok := m.AsInt()
	return ok && wire.Tag(x) == tag
}

// MaximalMatchingWindow returns the iteration window width of the
// matching program (same phase structure as edge coloring).
func MaximalMatchingWindow(n, a int, eps float64) int {
	return EdgeColoringWindow(n, a, eps)
}

// matchState tracks whether this vertex is matched and to whom.
type matchState struct {
	partner int32 // -1 while unmatched
}

// serveProposals accepts at most one proposal from msgs if this vertex is
// still unmatched, preferring the lowest proposer ID.
func (st *matchState) serveProposals(api *engine.API, msgs []engine.Msg) {
	if st.partner >= 0 {
		return
	}
	best := int32(-1)
	for _, m := range msgs {
		if hasTag(m, wire.TagPropose) {
			if best < 0 || m.From < best {
				best = m.From
			}
		}
	}
	if best >= 0 {
		st.partner = best
		api.SendIDInt(int(best), acceptMsg)
	}
}

// recordAccept marks this vertex matched if head accepted its proposal.
func (st *matchState) recordAccept(msgs []engine.Msg, head int32) {
	for _, m := range msgs {
		if hasTag(m, wire.TagAccept) && m.From == head {
			st.partner = head
		}
	}
}

// MaximalMatching is the algorithm of Corollary 8.8: a maximal matching
// with vertex-averaged complexity O(a + log* n). Every edge is resolved
// during the window of its tail: an unmatched tail proposes along its
// single label-j edge of the current subphase; an unmatched head accepts
// exactly one proposal. Cole-Vishkin forest colorings keep a vertex from
// proposing and accepting in the same subphase, so no vertex is ever
// matched twice. The per-vertex output is the partner's ID (int32), or -1.
func MaximalMatching(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		A := hpartition.ParamA(a, eps)
		cvr := coloring.CVForestRounds(api.N())
		tr := hpartition.NewTracker(api, a, eps)
		st := &matchState{partner: -1}
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }

		for {
			joined, _ := tr.Step(api)
			if joined {
				break
			}
			sink(api.Idle(1 + cvr + 6*A))
			for j := 1; j <= A; j++ {
				reqs := api.Next()
				sink(reqs)
				st.serveProposals(api, reqs)
				sink(api.Next())
			}
		}

		sink(api.Next()) // settle
		ids := api.NeighborIDs()
		my := tr.HIndex
		intraParent := make([]int, A+1)
		interOut := make([]int, A+1)
		for j := range intraParent {
			intraParent[j] = -1
			interOut[j] = -1
		}
		label := 0
		for k, h := range tr.NbrH {
			switch {
			case h == 0:
				label++
				interOut[label] = k
			case h == my && int(ids[k]) > api.ID():
				label++
				intraParent[label] = k
			}
		}
		if label > A {
			panic(fmt.Sprintf("extend: vertex %d out-degree %d exceeds A=%d", api.ID(), label, A))
		}
		cv := coloring.CVForests(api, A, intraParent, sink)

		for j := 1; j <= A; j++ {
			for c := int32(0); c < 3; c++ {
				mine := intraParent[j] >= 0 && cv[j] == c && st.partner < 0
				head := int32(-1)
				if mine {
					head = ids[intraParent[j]]
					api.SendIDInt(int(head), proposeMsg)
				}
				reqs := api.Next()
				sink(reqs)
				st.serveProposals(api, reqs)
				msgs := api.Next()
				sink(msgs)
				if mine {
					st.recordAccept(msgs, head)
				}
			}
		}
		for j := 1; j <= A; j++ {
			mine := interOut[j] >= 0 && st.partner < 0
			head := int32(-1)
			if mine {
				head = ids[interOut[j]]
				api.SendIDInt(int(head), proposeMsg)
			}
			sink(api.Next())
			msgs := api.Next()
			sink(msgs)
			if mine {
				st.recordAccept(msgs, head)
			}
		}
		return st.partner
	}
}

// Matching converts the outputs of a MaximalMatching run to a partner
// slice suitable for check.MaximalMatching.
func Matching(outputs []any) []int32 {
	m := make([]int32, len(outputs))
	for v, o := range outputs {
		m[v] = o.(int32)
	}
	return m
}
