package extend

import (
	"fmt"

	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/graph"
	"vavg/internal/hpartition"
	"vavg/internal/wire"
)

// edgeRequest asks the receiving endpoint (the head) to color the edge
// connecting sender and receiver; Used lists the colors already present on
// edges at the sender. The slice payload keeps it on the general lane; the
// head's reply — a bare color — travels back fast-lane as wire.TagAssign.
type edgeRequest struct {
	Used []int32
}

// EdgeOutput is the per-vertex output of EdgeColoring: the colors this
// vertex assigned, as head, to edges keyed by the tail's vertex ID.
type EdgeOutput struct {
	Assigned map[int32]int32
}

// EdgeColoringWindow returns the iteration window width of the
// edge-coloring and matching programs: settle + Cole-Vishkin forest
// 3-coloring + 3A two-round intra-set subphases + A two-round inter-set
// subphases.
func EdgeColoringWindow(n, a int, eps float64) int {
	A := hpartition.ParamA(a, eps)
	return 2 + coloring.CVForestRounds(n) + 6*A + 2*A
}

// edgeState is the per-vertex bookkeeping shared by the member and active
// roles of the edge-coloring program.
type edgeState struct {
	used     map[int32]bool  // colors on edges incident to this vertex
	assigned map[int32]int32 // tail ID -> color, for edges this vertex assigned
}

func (st *edgeState) usedList() []int32 {
	// Sorted: the list travels inside edgeRequest messages, and message
	// bytes must not depend on map-iteration order.
	return sortedKeys(st.used)
}

// serveRequests assigns a color to every edgeRequest in msgs, in tail-ID
// order, choosing the smallest color free at both endpoints, and replies
// with edgeAssign.
func (st *edgeState) serveRequests(api *engine.API, msgs []engine.Msg) {
	reqs := map[int32]edgeRequest{}
	for _, m := range msgs {
		if r, ok := m.Data.(edgeRequest); ok {
			reqs[m.From] = r
		}
	}
	for _, tail := range sortedKeys(reqs) {
		tailUsed := map[int32]bool{}
		for _, c := range reqs[tail].Used {
			tailUsed[c] = true
		}
		var color int32
		for color = 0; st.used[color] || tailUsed[color]; color++ {
		}
		st.used[color] = true
		st.assigned[tail] = color
		api.SendIDInt(int(tail), wire.Pack(wire.TagAssign, int64(color)))
	}
}

// recordAssign stores the color the head picked for this vertex's pending
// request, if present in msgs.
func (st *edgeState) recordAssign(msgs []engine.Msg, head int32) {
	for _, m := range msgs {
		if x, ok := m.AsInt(); ok && wire.Tag(x) == wire.TagAssign && m.From == head {
			st.used[int32(wire.Payload(x))] = true
		}
	}
}

// EdgeColoring is the (2*Delta-1)-edge-coloring algorithm of Corollary
// 8.6, with vertex-averaged complexity O(a + log* n). Every edge is
// colored during the window of its tail (the endpoint joining an H-set
// first): the tail requests a color from the head — alive by construction
// — which assigns the smallest color free at both endpoints, so every
// color is at most deg(u)+deg(v)-2 <= 2*Delta-2. Forest labels give each
// tail one request per subphase and Cole-Vishkin forest colorings prevent
// a vertex from requesting and assigning within the same subphase.
func EdgeColoring(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		A := hpartition.ParamA(a, eps)
		cvr := coloring.CVForestRounds(api.N())
		tr := hpartition.NewTracker(api, a, eps)
		st := &edgeState{used: map[int32]bool{}, assigned: map[int32]int32{}}
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }

		for {
			joined, _ := tr.Step(api)
			if joined {
				break
			}
			// Active window body: idle through settle+CV+intra, then serve
			// the A inter-set subphases as head.
			sink(api.Idle(1 + cvr + 6*A))
			for j := 1; j <= A; j++ {
				reqs := api.Next()
				sink(reqs)
				st.serveRequests(api, reqs)
				sink(api.Next())
			}
		}

		// Member window body.
		sink(api.Next()) // settle
		ids := api.NeighborIDs()
		my := tr.HIndex
		intraParent := make([]int, A+1) // label -> neighbor index (intra)
		interOut := make([]int, A+1)    // label -> neighbor index (inter)
		for j := range intraParent {
			intraParent[j] = -1
			interOut[j] = -1
		}
		label := 0
		for k, h := range tr.NbrH {
			switch {
			case h == 0:
				label++
				interOut[label] = k
			case h == my && int(ids[k]) > api.ID():
				label++
				intraParent[label] = k
			}
		}
		if label > A {
			panic(fmt.Sprintf("extend: vertex %d out-degree %d exceeds A=%d", api.ID(), label, A))
		}
		cv := coloring.CVForests(api, A, intraParent, sink)

		// Intra-set subphases: (label j, CV color c).
		for j := 1; j <= A; j++ {
			for c := int32(0); c < 3; c++ {
				mine := intraParent[j] >= 0 && cv[j] == c
				if mine {
					api.SendID(int(ids[intraParent[j]]), edgeRequest{Used: st.usedList()})
				}
				reqs := api.Next()
				sink(reqs)
				st.serveRequests(api, reqs)
				msgs := api.Next()
				sink(msgs)
				if mine {
					st.recordAssign(msgs, ids[intraParent[j]])
				}
			}
		}
		// Inter-set subphases: request from the still-active head.
		for j := 1; j <= A; j++ {
			mine := interOut[j] >= 0
			if mine {
				api.SendID(int(ids[interOut[j]]), edgeRequest{Used: st.usedList()})
			}
			sink(api.Next())
			msgs := api.Next()
			sink(msgs)
			if mine {
				st.recordAssign(msgs, ids[interOut[j]])
			}
		}
		return EdgeOutput{Assigned: st.assigned}
	}
}

// CollectEdgeColors reassembles the global edge coloring from per-vertex
// EdgeOutput values: each edge appears exactly once, keyed by its head.
func CollectEdgeColors(g *graph.Graph, outputs []any) (map[graph.Edge]int, error) {
	colors := make(map[graph.Edge]int, g.M())
	for v := 0; v < g.N(); v++ {
		out, ok := outputs[v].(EdgeOutput)
		if !ok {
			return nil, fmt.Errorf("extend: vertex %d output %T, want EdgeOutput", v, outputs[v])
		}
		//lint:ignore detorder any violating edge is a valid error witness; the success path writes one map entry per edge
		for tail, c := range out.Assigned {
			if !g.HasEdge(v, int(tail)) {
				return nil, fmt.Errorf("extend: vertex %d assigned color to non-edge {%d,%d}", v, v, tail)
			}
			e := graph.Edge{U: int32(v), V: tail}
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			if _, dup := colors[e]; dup {
				return nil, fmt.Errorf("extend: edge {%d,%d} colored twice", e.U, e.V)
			}
			colors[e] = int(c)
		}
	}
	return colors, nil
}
