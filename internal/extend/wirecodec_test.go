package extend

import (
	"reflect"
	"testing"

	"vavg/internal/wire"
)

func TestEdgeOutputWireRoundTrip(t *testing.T) {
	v := EdgeOutput{Assigned: map[int32]int32{7: 0, 1: 3, 4: -2}}
	buf := wire.Encode(nil, v)
	got, n, err := wire.Decode("extend.EdgeOutput", buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("decode consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, v) {
		t.Fatalf("round trip: got %+v want %+v", got, v)
	}
}

func TestEdgeOutputWireRejectsCorrupt(t *testing.T) {
	buf := wire.Encode(nil, EdgeOutput{Assigned: map[int32]int32{1: 2, 3: 4}})
	if _, _, err := wire.Decode("extend.EdgeOutput", buf[:len(buf)-1]); err == nil {
		t.Fatal("truncated EdgeOutput decoded without error")
	}
}
