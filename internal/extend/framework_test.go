package extend

import (
	"reflect"
	"testing"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
)

func TestMISFrameworkMatchesDirectImplementation(t *testing.T) {
	g := graph.ForestUnion(300, 3, 5)
	direct, err := engine.Run(g, MIS(3, 2), engine.Options{Seed: 4, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	generic, err := engine.Run(g, MISFramework(3, 2), engine.Options{Seed: 4, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.MIS(g, MISSet(generic.Output)); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct.Output, generic.Output) {
		t.Error("framework MIS differs from the direct implementation")
	}
	if !reflect.DeepEqual(direct.Rounds, generic.Rounds) {
		t.Error("framework MIS round accounting differs from the direct implementation")
	}
}

func TestListColoringArbitraryLists(t *testing.T) {
	g := graph.ForestUnion(250, 2, 9)
	// Shifted lists: vertex v may only use colors {v%5*10, ..., v%5*10+deg}.
	list := func(v int) []int {
		base := (v % 5) * 1000
		out := make([]int, g.Degree(v)+1)
		for i := range out {
			out[i] = base + i
		}
		return out
	}
	res, err := engine.Run(g, ListColoring(2, 2, list), engine.Options{Seed: 1, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	cols := Colors(res.Output)
	if err := check.VertexColoring(g, cols, 0); err != nil {
		t.Fatal(err)
	}
	// Every vertex used a color from its own list.
	for v, c := range cols {
		found := false
		for _, lc := range list(v) {
			if lc == c {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("vertex %d color %d not in its list", v, c)
		}
	}
}

func TestListColoringDegPlusOneIsDeltaPlus1(t *testing.T) {
	g := graph.StarForest(200, 10)
	list := func(v int) []int {
		out := make([]int, g.Degree(v)+1)
		for i := range out {
			out[i] = i
		}
		return out
	}
	res, err := engine.Run(g, ListColoring(2, 2, list), engine.Options{Seed: 2, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := check.VertexColoring(g, Colors(res.Output), g.MaxDegree()+1); err != nil {
		t.Fatal(err)
	}
}
