package extend

import (
	"fmt"

	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/hpartition"
)

// Step (state-machine) forms of the extension-framework programs. Each
// mirrors its blocking counterpart round for round — the cross-backend
// equivalence suite pins the two forms byte-identical — so the whole
// Section 8 family runs goroutine-free on the step backend.

// StepProblem is a Problem whose Solve also has a step form.
type StepProblem interface {
	Problem
	// StartSolve begins the step form of Solve inside the caller's current
	// turn — the turn the H-set's (A+1)-coloring finished in — and must
	// terminate with engine.Done carrying Solve's output, in the turn the
	// blocking Solve returns in.
	StartSolve(api *engine.API, ctx *HSetContext) engine.Step
}

// startClassSweep is the step form of classSweep: act runs inside the
// vertex's own class turn, every round's inbox reaches observe, and done
// fires in the turn the blocking sweep returns in.
func startClassSweep(api *engine.API, numClasses, myClass int, act func(),
	observe func([]engine.Msg), done func() engine.Step) engine.Step {
	cls := 0
	var loop engine.StepFn
	loop = func(api *engine.API, inbox []engine.Msg) engine.Step {
		observe(inbox)
		cls++
		if cls == numClasses {
			return done()
		}
		if cls == myClass {
			act()
		}
		return engine.Continue(loop)
	}
	if cls == myClass {
		act()
	}
	return engine.Continue(loop)
}

// StartSolve is the step form of misProblem.Solve.
func (misProblem) StartSolve(api *engine.API, ctx *HSetContext) engine.Step {
	dominated := func() bool {
		for _, out := range ctx.Finals {
			if in, ok := out.(bool); ok && in {
				return true
			}
		}
		return false
	}
	inMIS := false
	domBySameSet := false
	return startClassSweep(api, ctx.A+1, ctx.SetColor, func() {
		if !dominated() && !domBySameSet {
			inMIS = true
			coloring.BroadcastChosen(api, sweepKind, 1)
		}
	}, func(msgs []engine.Msg) {
		for _, m := range msgs {
			if c, ok := coloring.AsChosen(m, sweepKind); ok && c == 1 {
				domBySameSet = true
			}
		}
		ctx.Sink(msgs)
	}, func() engine.Step {
		return engine.Done(inMIS)
	})
}

// StartSolve is the step form of listColorProblem.Solve.
func (p listColorProblem) StartSolve(api *engine.API, ctx *HSetContext) engine.Step {
	list := p.list
	if list == nil {
		list = func(v int) []int {
			out := make([]int, api.Degree()+1)
			for i := range out {
				out[i] = i
			}
			return out
		}
	}
	taken := map[int]bool{}
	for _, out := range ctx.Finals {
		if c, ok := out.(int); ok {
			taken[c] = true
		}
	}
	myColor := -1
	return startClassSweep(api, ctx.A+1, ctx.SetColor, func() {
		for _, c := range list(api.ID()) {
			if !taken[c] {
				myColor = c
				break
			}
		}
		if myColor < 0 {
			panic("extend: list exhausted (|L(v)| >= deg(v)+1 violated)")
		}
		coloring.BroadcastChosen(api, sweepKind, int32(myColor))
	}, func(msgs []engine.Msg) {
		for _, m := range msgs {
			if c, ok := coloring.AsChosen(m, sweepKind); ok {
				taken[int(c)] = true
			}
		}
		ctx.Sink(msgs)
	}, func() engine.Step {
		return engine.Done(myColor)
	})
}

// FrameworkStep is the step form of Framework.
func FrameworkStep(a int, eps float64, p StepProblem) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		A := hpartition.ParamA(a, eps)
		W := FrameworkWindow(api.N(), a, eps, p)
		tr := hpartition.NewTracker(api, a, eps)
		fin := newFinals()
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms); fin.absorb(api, ms) }

		settle := func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			ctx := &HSetContext{
				A:       A,
				Tracker: tr,
				Members: sameSetMembers(tr),
				Finals:  fin.byIdx,
				Sink:    sink,
			}
			return coloring.StartDeltaPlus1OnSet(api, ctx.Members, A, sink, func(c int) engine.Step {
				ctx.SetColor = c
				return p.StartSolve(api, ctx)
			})
		}
		js1 := func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			return engine.Continue(settle)
		}
		var window, tail engine.StepFn
		window = func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			if tr.Advance(api) {
				return engine.Continue(js1)
			}
			return engine.Continue(tail)
		}
		tail = func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			return engine.Sleep(W-1, window)
		}
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			if tr.Advance(api) {
				return engine.Continue(js1)
			}
			return engine.Continue(tail)
		}
	}
}

// DeltaPlus1Step is the step form of DeltaPlus1.
func DeltaPlus1Step(a int, eps float64) engine.StepProgram {
	return FrameworkStep(a, eps, listColorProblem{})
}

// MISStep is the step form of MIS.
func MISStep(a int, eps float64) engine.StepProgram {
	return FrameworkStep(a, eps, misProblem{})
}

// ListColoringStep is the step form of ListColoring.
func ListColoringStep(a int, eps float64, list func(v int) []int) engine.StepProgram {
	return FrameworkStep(a, eps, listColorProblem{list: list})
}

// edgeRole parameterizes the shared state machine of the two edge
// programs (edge coloring and maximal matching): both run the identical
// window and subphase schedule and differ only in what travels on an
// edge's request/assign exchange.
type edgeRole struct {
	// serve handles the requests in one round's inbox as the assigner.
	serve func(api *engine.API, msgs []engine.Msg)
	// wants reports whether this vertex still requests on its own edges
	// (matching stops proposing once matched; coloring always wants).
	wants func() bool
	// send issues this vertex's request to the edge's head.
	send func(api *engine.API, head int32)
	// record processes the head's reply to this vertex's request.
	record func(msgs []engine.Msg, head int32)
	// output is the vertex's final output.
	output func() any
}

// edgeProgramStep is the step form of the shared skeleton of EdgeColoring
// and MaximalMatching (see the blocking forms for the round schedule).
func edgeProgramStep(a int, eps float64, mk func(api *engine.API) edgeRole) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		A := hpartition.ParamA(a, eps)
		cvr := coloring.CVForestRounds(api.N())
		W := EdgeColoringWindow(api.N(), a, eps)
		tr := hpartition.NewTracker(api, a, eps)
		role := mk(api)
		sink := func(ms []engine.Msg) { tr.Absorb(api, ms) }

		// Member-window state, filled in the settle turn.
		var ids []int32
		var cv []int32
		var intraParent, interOut []int
		var j int
		var c int32
		var mine bool
		var head int32

		var intraRecv1, intraRecv2, interRecv1, interRecv2 engine.StepFn
		var startIntra, startInter func(api *engine.API) engine.Step
		startIntra = func(api *engine.API) engine.Step {
			if j > A {
				j = 1
				return startInter(api)
			}
			mine = intraParent[j] >= 0 && cv[j] == c && role.wants()
			if mine {
				head = ids[intraParent[j]]
				role.send(api, head)
			}
			return engine.Continue(intraRecv1)
		}
		intraRecv1 = func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			role.serve(api, inbox)
			return engine.Continue(intraRecv2)
		}
		intraRecv2 = func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			if mine {
				role.record(inbox, head)
			}
			c++
			if c == 3 {
				c = 0
				j++
			}
			return startIntra(api)
		}
		startInter = func(api *engine.API) engine.Step {
			if j > A {
				//lint:ignore payloadwire role.output relays the same EdgeOutput / partner-ID values the blocking programs return at their own (certified) entry sites; a func-valued field is beyond static resolution
				return engine.Done(role.output())
			}
			mine = interOut[j] >= 0 && role.wants()
			if mine {
				head = ids[interOut[j]]
				role.send(api, head)
			}
			return engine.Continue(interRecv1)
		}
		interRecv1 = func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			return engine.Continue(interRecv2)
		}
		interRecv2 = func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			if mine {
				role.record(inbox, head)
			}
			j++
			return startInter(api)
		}
		settle := func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			ids = api.NeighborIDs()
			my := tr.HIndex
			intraParent = make([]int, A+1)
			interOut = make([]int, A+1)
			for l := range intraParent {
				intraParent[l] = -1
				interOut[l] = -1
			}
			label := 0
			for k, h := range tr.NbrH {
				switch {
				case h == 0:
					label++
					interOut[label] = k
				case h == my && int(ids[k]) > api.ID():
					label++
					intraParent[label] = k
				}
			}
			if label > A {
				panic(fmt.Sprintf("extend: vertex %d out-degree %d exceeds A=%d", api.ID(), label, A))
			}
			return coloring.StartCVForests(api, A, intraParent, sink, func(colors []int32) engine.Step {
				cv = colors
				j, c = 1, 0
				return startIntra(api)
			})
		}
		js1 := func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			return engine.Continue(settle)
		}

		// Active-window body: idle through settle+CV+intra, then serve the
		// A inter-set subphases as head.
		var jj int
		var windowTop func(api *engine.API) engine.Step
		var tailA, serveFn, afterFn engine.StepFn
		tailA = func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			if A == 0 {
				return engine.Sleep(W-1, func(api *engine.API, inbox []engine.Msg) engine.Step {
					sink(inbox)
					return windowTop(api)
				})
			}
			jj = 1
			// Blocking form: Idle(1+cvr+6A) then the first serve Next.
			return engine.Sleep(2+cvr+6*A, serveFn)
		}
		serveFn = func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			role.serve(api, inbox)
			return engine.Continue(afterFn)
		}
		afterFn = func(api *engine.API, inbox []engine.Msg) engine.Step {
			sink(inbox)
			jj++
			if jj <= A {
				return engine.Continue(serveFn)
			}
			return windowTop(api)
		}
		windowTop = func(api *engine.API) engine.Step {
			if tr.Advance(api) {
				return engine.Continue(js1)
			}
			return engine.Continue(tailA)
		}
		return func(api *engine.API, _ []engine.Msg) engine.Step {
			return windowTop(api)
		}
	}
}

// EdgeColoringStep is the step form of EdgeColoring.
func EdgeColoringStep(a int, eps float64) engine.StepProgram {
	return edgeProgramStep(a, eps, func(api *engine.API) edgeRole {
		st := &edgeState{used: map[int32]bool{}, assigned: map[int32]int32{}}
		return edgeRole{
			serve: st.serveRequests,
			wants: func() bool { return true },
			send: func(api *engine.API, head int32) {
				api.SendID(int(head), edgeRequest{Used: st.usedList()})
			},
			record: st.recordAssign,
			output: func() any { return EdgeOutput{Assigned: st.assigned} },
		}
	})
}

// MaximalMatchingStep is the step form of MaximalMatching.
func MaximalMatchingStep(a int, eps float64) engine.StepProgram {
	return edgeProgramStep(a, eps, func(api *engine.API) edgeRole {
		st := &matchState{partner: -1}
		return edgeRole{
			serve: st.serveProposals,
			wants: func() bool { return st.partner < 0 },
			send: func(api *engine.API, head int32) {
				api.SendIDInt(int(head), proposeMsg)
			},
			record: st.recordAccept,
			output: func() any { return st.partner },
		}
	})
}
