package extend

import (
	"sort"
	"testing"
	"testing/quick"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
)

var families = []struct {
	g *graph.Graph
	a int
}{
	{graph.Ring(48), 2},
	{graph.Star(50), 1},
	{graph.StarForest(60, 7), 2},
	{graph.ForestUnion(200, 3, 5), 3},
	{graph.TriangulatedGrid(8, 8), 3},
	{graph.CompleteBinaryTree(63), 1},
	{graph.Clique(10), 5},
}

func TestDeltaPlus1Proper(t *testing.T) {
	for _, c := range families {
		res, err := engine.Run(c.g, DeltaPlus1(c.a, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		cols := Colors(res.Output)
		if err := check.VertexColoring(c.g, cols, c.g.MaxDegree()+1); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
		// Stronger per-vertex guarantee: color <= deg(v).
		for v := 0; v < c.g.N(); v++ {
			if cols[v] > c.g.Degree(v) {
				t.Errorf("%s: vertex %d color %d exceeds its degree %d", c.g.Name, v, cols[v], c.g.Degree(v))
			}
		}
	}
}

func TestMISValid(t *testing.T) {
	for _, c := range families {
		res, err := engine.Run(c.g, MIS(c.a, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		if err := check.MIS(c.g, MISSet(res.Output)); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
	}
}

func TestEdgeColoringValid(t *testing.T) {
	for _, c := range families {
		res, err := engine.Run(c.g, EdgeColoring(c.a, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		colors, err := CollectEdgeColors(c.g, res.Output)
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		if err := check.EdgeColoring(c.g, colors, 2*c.g.MaxDegree()-1); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
		// Per-edge guarantee: color <= deg(u)+deg(v)-2.
		//lint:ignore detorder any violating edge is a valid error witness; the scan only reads
		for e, col := range colors {
			if col > c.g.Degree(int(e.U))+c.g.Degree(int(e.V))-2 {
				t.Errorf("%s: edge {%d,%d} color %d too large", c.g.Name, e.U, e.V, col)
			}
		}
	}
}

func TestMaximalMatchingValid(t *testing.T) {
	for _, c := range families {
		res, err := engine.Run(c.g, MaximalMatching(c.a, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		if err := check.MaximalMatching(c.g, Matching(res.Output)); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
	}
}

// TestVertexAveragedIndependentOfDelta exercises the headline of Section 8:
// on star forests (constant arboricity, growing Delta), the vertex-averaged
// complexity of all four algorithms must not grow with Delta.
func TestVertexAveragedIndependentOfDelta(t *testing.T) {
	progs := map[string]func(int, float64) engine.Program{
		"deltaplus1": DeltaPlus1,
		"mis":        MIS,
		"edge":       EdgeColoring,
		"matching":   MaximalMatching,
	}
	names := make([]string, 0, len(progs))
	for n := range progs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		mk := progs[name]
		var avgs []float64
		for _, k := range []int{4, 16, 64} {
			g := graph.StarForest(1024, k)
			res, err := engine.Run(g, mk(2, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
			if err != nil {
				t.Fatalf("%s k=%d: %v", name, k, err)
			}
			avgs = append(avgs, res.VertexAverage())
		}
		if avgs[2] > 1.5*avgs[0]+2 {
			t.Errorf("%s: vertex-averaged complexity grows with Delta: %v", name, avgs)
		}
	}
}

func TestExtendPropertyRandom(t *testing.T) {
	f := func(seed int64, aRaw uint8) bool {
		a := 1 + int(aRaw%3)
		g := graph.ForestUnion(90, a, seed)
		res, err := engine.Run(g, MIS(a, 1), engine.Options{Seed: seed, MaxRounds: 1 << 20})
		if err != nil {
			return false
		}
		if check.MIS(g, MISSet(res.Output)) != nil {
			return false
		}
		res2, err := engine.Run(g, MaximalMatching(a, 1), engine.Options{Seed: seed, MaxRounds: 1 << 20})
		if err != nil {
			return false
		}
		return check.MaximalMatching(g, Matching(res2.Output)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestEdgeColoringProperty(t *testing.T) {
	f := func(seed int64, aRaw uint8) bool {
		a := 1 + int(aRaw%3)
		g := graph.ForestUnion(80, a, seed)
		res, err := engine.Run(g, EdgeColoring(a, 1), engine.Options{Seed: seed, MaxRounds: 1 << 20})
		if err != nil {
			return false
		}
		colors, err := CollectEdgeColors(g, res.Output)
		if err != nil {
			return false
		}
		return check.EdgeColoring(g, colors, 2*g.MaxDegree()-1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestExtendDeterministicAcrossSeeds(t *testing.T) {
	// All Section 8 algorithms are deterministic: outputs must be
	// independent of the engine seed.
	g := graph.ForestUnion(150, 2, 8)
	for _, c := range []struct {
		name string
		mk   engine.Program
	}{
		{"mis", MIS(2, 2)},
		{"dp1", DeltaPlus1(2, 2)},
		{"edge", EdgeColoring(2, 2)},
		{"matching", MaximalMatching(2, 2)},
	} {
		name, mk := c.name, c.mk
		r1, err := engine.Run(g, mk, engine.Options{Seed: 1, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		r2, err := engine.Run(g, mk, engine.Options{Seed: 7, MaxRounds: 1 << 20})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := range r1.Output {
			if !outputsEqual(r1.Output[v], r2.Output[v]) {
				t.Fatalf("%s: output diverged across seeds at vertex %d", name, v)
			}
		}
	}
}

func outputsEqual(a, b any) bool {
	if ea, ok := a.(EdgeOutput); ok {
		eb, ok := b.(EdgeOutput)
		if !ok || len(ea.Assigned) != len(eb.Assigned) {
			return false
		}
		for k, v := range ea.Assigned {
			if eb.Assigned[k] != v {
				return false
			}
		}
		return true
	}
	return a == b
}

func TestEdgeColoringOnHypercube(t *testing.T) {
	g := graph.Hypercube(5)
	res, err := engine.Run(g, EdgeColoring(6, 2), engine.Options{Seed: 1, MaxRounds: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	colors, err := CollectEdgeColors(g, res.Output)
	if err != nil {
		t.Fatal(err)
	}
	if err := check.EdgeColoring(g, colors, 2*g.MaxDegree()-1); err != nil {
		t.Error(err)
	}
}
