// Package extend implements Section 8 of the paper: the general method for
// solving "problems of extension from any partial solution" with
// vertex-averaged complexity O(f(a,n)) given a worst-case f(Delta,n)
// algorithm (Theorem 8.2), and its four instantiations: (Delta+1)-vertex-
// coloring (Corollary 8.3), maximal independent set (Corollary 8.4),
// (2*Delta-1)-edge-coloring (Corollary 8.6) and maximal matching
// (Corollary 8.8).
//
// All four programs share the same skeleton: Procedure Partition runs one
// step per iteration window; the H-set formed in iteration i solves the
// problem on G(H_i) — extended against the already-final partial solution
// of H_1..H_{i-1} — inside the rest of the window, and terminates. Window
// widths are fixed functions of (n, a, eps), so every vertex computes the
// same global schedule locally. Active vertices pay the window rounds
// while waiting (exactly the RoundSum accounting of Corollary 6.4), which
// is what makes the vertex-averaged complexity O(window) = O(f(a, n)).
//
// For the two edge problems the per-window work must touch edges whose
// other endpoint terminated long ago; we therefore process every edge
// during the window of its *tail* (the earlier endpoint), with the head —
// same H-set or still active, hence alive — acting as the assigner. The
// forest labels make each tail request at most one edge per subphase and
// Cole-Vishkin forest 3-colorings sequence same-set requests, which is the
// Panconesi-Rizzi-style mechanism the paper invokes (see DESIGN.md).
package extend

import (
	"sort"

	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/hpartition"
)

// finals records the terminal outputs announced by neighbors.
type finals struct {
	byIdx map[int]any
}

func newFinals() *finals { return &finals{byIdx: map[int]any{}} }

func (f *finals) absorb(api *engine.API, msgs []engine.Msg) {
	for _, m := range msgs {
		if fin, ok := m.Data.(engine.Final); ok {
			f.byIdx[api.NeighborIndex(m.From)] = fin.Output
		}
	}
}

// sameSetMembers returns the neighbor indices in this vertex's own H-set.
func sameSetMembers(tr *hpartition.Tracker) []int {
	var members []int
	for k, h := range tr.NbrH {
		if h == tr.HIndex {
			members = append(members, k)
		}
	}
	return members
}

// classSweep runs numClasses one-round turns over the proper set-coloring
// myClass of the member set. In its own turn the vertex calls act, which
// may broadcast; every round's messages are passed to observe.
func classSweep(api *engine.API, numClasses, myClass int, act func(), observe func([]engine.Msg)) {
	for cls := 0; cls < numClasses; cls++ {
		if cls == myClass {
			act()
		}
		observe(api.Next())
	}
}

// DeltaPlus1Window returns the iteration window width of the MIS and
// (Delta+1)-coloring programs.
func DeltaPlus1Window(n, a int, eps float64) int {
	A := hpartition.ParamA(a, eps)
	return 2 + coloring.DeltaPlus1Rounds(n, A) + A + 1
}

// DeltaPlus1 is the (Delta+1)-vertex-coloring of Corollary 8.3: each
// vertex ends with a color in {0, ..., deg(v)}, so at most Delta+1 colors
// are used, with vertex-averaged complexity O(a log a + log* n) — a
// function of the arboricity, not of Delta (we substitute Linial+KW plus a
// greedy class sweep for the Fraigniaud et al. list-coloring the paper
// cites; see DESIGN.md). It is the list-coloring instance of the general
// framework with the default lists {0..deg(v)}. The per-vertex output is
// the final color (int).
func DeltaPlus1(a int, eps float64) engine.Program {
	return Framework(a, eps, listColorProblem{})
}

// MIS is the maximal-independent-set algorithm of Corollary 8.4: the
// vertex-averaged complexity is O(a log a + log* n) and the per-vertex
// output reports membership (bool). Each H-set is (A+1)-colored and its
// color classes take turns joining the MIS unless dominated by an earlier
// decision. It is the misProblem instance of the general framework.
func MIS(a int, eps float64) engine.Program {
	return Framework(a, eps, misProblem{})
}

const sweepKind = 3

// MISSet converts the outputs of an MIS run to a membership slice.
func MISSet(outputs []any) []bool {
	in := make([]bool, len(outputs))
	for v, o := range outputs {
		in[v] = o.(bool)
	}
	return in
}

// Colors converts the outputs of a coloring run to a color slice.
func Colors(outputs []any) []int {
	cs := make([]int, len(outputs))
	for v, o := range outputs {
		cs[v] = o.(int)
	}
	return cs
}

// sortedKeys returns map keys in ascending order for deterministic
// iteration.
func sortedKeys[V any](m map[int32]V) []int32 {
	ks := make([]int32, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}
