// Package metrics turns engine results into the measurements the paper's
// tables report — vertex-averaged complexity, worst-case complexity,
// palette sizes, active-vertex decay — and renders sweep tables.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"

	"vavg/internal/engine"
)

// Run is the record of one algorithm execution.
type Run struct {
	Algorithm string
	Graph     string
	N, M      int
	Arbor     int
	Seed      int64
	VertexAvg float64
	WorstCase int
	RoundSum  int64
	Messages  int64
	// Colors is the number of distinct colors in the output (vertex or
	// edge coloring), or -1 when not applicable.
	Colors int
	// Size is problem-specific output volume (MIS size, matching size), or
	// -1 when not applicable.
	Size int
	// ActivePerRound records the decay of active vertices.
	ActivePerRound []int
	// StepShards is the shard count the step backend ran with (autotuned
	// when Params.StepShards was 0); 0 for the other backends. Results are
	// invariant in it — this is layout provenance, not a measure.
	StepShards int

	// The remaining fields are degradation accounting for adversarial
	// (scenario) runs; fault-free runs report Converged true and zeros.

	// Converged reports whether every surviving vertex terminated within
	// the round budget; false marks a DNF data point.
	Converged bool
	// Dropped counts deliveries removed by the random-loss process.
	Dropped int64
	// LostToCrash counts deliveries killed by a crashed endpoint.
	LostToCrash int64
	// CrashedForever and Restarts count vertices that died for good and
	// vertices that rebooted.
	CrashedForever int
	Restarts       int
	// ResidualConflicts counts the output constraints still violated after
	// a degraded run (monochromatic edges, uncovered vertices, ...), or -1
	// when not measured for the algorithm's output kind.
	ResidualConflicts int
}

// FromResult seeds a Run from an engine result; callers fill in the
// problem-specific fields.
func FromResult(alg, g string, n, m, arbor int, seed int64, res *engine.Result) Run {
	return Run{
		Algorithm:      alg,
		Graph:          g,
		N:              n,
		M:              m,
		Arbor:          arbor,
		Seed:           seed,
		VertexAvg:      res.VertexAverage(),
		WorstCase:      res.TotalRounds,
		RoundSum:       res.RoundSum,
		Messages:       res.Messages,
		Colors:         -1,
		Size:           -1,
		ActivePerRound: res.ActivePerRound,
		StepShards:     res.Shards,

		Converged:         true,
		Dropped:           res.Dropped,
		LostToCrash:       res.LostToCrash,
		CrashedForever:    res.CrashedForever,
		Restarts:          res.Restarts,
		ResidualConflicts: -1,
	}
}

// Median aggregates the vertex-averaged and worst-case measures of runs
// that differ only by seed.
func Median(runs []Run) Run {
	if len(runs) == 0 {
		return Run{}
	}
	out := runs[0]
	out.VertexAvg = medianF(collect(runs, func(r Run) float64 { return r.VertexAvg }))
	out.WorstCase = int(medianF(collect(runs, func(r Run) float64 { return float64(r.WorstCase) })))
	out.Colors = int(medianF(collect(runs, func(r Run) float64 { return float64(r.Colors) })))
	out.Size = int(medianF(collect(runs, func(r Run) float64 { return float64(r.Size) })))
	out.RoundSum = int64(medianF(collect(runs, func(r Run) float64 { return float64(r.RoundSum) })))
	out.Messages = int64(medianF(collect(runs, func(r Run) float64 { return float64(r.Messages) })))
	out.Seed = -1
	return out
}

func collect(runs []Run, f func(Run) float64) []float64 {
	xs := make([]float64, len(runs))
	for i, r := range runs {
		xs[i] = f(r)
	}
	return xs
}

func medianF(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// GrowthExponent fits y ~ c * x^e over a sweep and returns e; a sweep of
// vertex-averaged complexity against n that is O(1) fits e ~ 0 while a
// Theta(log n) baseline fits a clearly positive e on log-transformed
// columns. Callers typically pass x = log n.
func GrowthExponent(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	n := float64(len(xs))
	for i := range xs {
		lx, ly := math.Log(xs[i]), math.Log(math.Max(ys[i], 1e-9))
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}

// Table renders rows with aligned columns.
func Table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
}

// DecayTable formats the active-vertex counts together with the geometric
// bound of Lemma 6.1 for the given eps.
func DecayTable(w io.Writer, active []int, n int, eps float64) {
	rows := make([][]string, 0, len(active))
	for i, a := range active {
		bound := float64(n) * math.Pow(2/(2+eps), float64(i))
		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%d", a),
			fmt.Sprintf("%.1f", bound),
		})
	}
	Table(w, []string{"round", "active", "Lemma 6.1 bound"}, rows)
}

// F formats a float compactly for table cells.
func F(x float64) string { return fmt.Sprintf("%.2f", x) }

// I formats an int for table cells.
func I(x int) string { return fmt.Sprintf("%d", x) }
