package metrics

import (
	"math"
	"strings"
	"testing"

	"vavg/internal/engine"
)

func TestFromResultAndMedian(t *testing.T) {
	res := &engine.Result{
		Rounds:         []int32{1, 2, 3, 4},
		RoundSum:       10,
		TotalRounds:    4,
		Messages:       7,
		ActivePerRound: []int{4, 3, 2, 1},
	}
	r := FromResult("alg", "g", 4, 6, 2, 9, res)
	if r.VertexAvg != 2.5 || r.WorstCase != 4 || r.Colors != -1 {
		t.Errorf("FromResult wrong: %+v", r)
	}

	runs := []Run{
		{VertexAvg: 1, WorstCase: 10, Colors: 5, RoundSum: 100, Messages: 40},
		{VertexAvg: 3, WorstCase: 30, Colors: 7, RoundSum: 300, Messages: 90},
		{VertexAvg: 2, WorstCase: 20, Colors: 6, RoundSum: 200, Messages: 50},
	}
	m := Median(runs)
	if m.VertexAvg != 2 || m.WorstCase != 20 || m.Colors != 6 {
		t.Errorf("Median wrong: %+v", m)
	}
	// Every aggregated field is the per-seed median, not the first seed's
	// value — Messages used to leak runs[0].
	if m.Messages != 50 || m.RoundSum != 200 {
		t.Errorf("Median Messages/RoundSum = %d/%d, want 50/200", m.Messages, m.RoundSum)
	}
	if Median(nil).VertexAvg != 0 {
		t.Error("Median of empty should be zero value")
	}
	even := Median(runs[:2])
	if even.VertexAvg != 2 {
		t.Errorf("even median = %v, want mean of middle pair", even.VertexAvg)
	}
}

func TestGrowthExponent(t *testing.T) {
	// y = x^2 fits exponent 2.
	xs := []float64{2, 4, 8, 16}
	ys := []float64{4, 16, 64, 256}
	if e := GrowthExponent(xs, ys); math.Abs(e-2) > 1e-9 {
		t.Errorf("exponent = %v, want 2", e)
	}
	// Constant series fits ~0.
	if e := GrowthExponent(xs, []float64{5, 5, 5, 5}); math.Abs(e) > 1e-9 {
		t.Errorf("constant exponent = %v, want 0", e)
	}
	if !math.IsNaN(GrowthExponent(xs, ys[:2])) {
		t.Error("mismatched lengths should give NaN")
	}
}

func TestTableRendering(t *testing.T) {
	var sb strings.Builder
	Table(&sb, []string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22"},
	})
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Errorf("header wrong: %q", lines[0])
	}
	// Columns aligned: "value" column starts at the same offset in rows.
	idx := strings.Index(lines[0], "value")
	if lines[2][idx:idx+1] != "1" && lines[3][idx:idx+1] != "1" {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestDecayTable(t *testing.T) {
	var sb strings.Builder
	DecayTable(&sb, []int{100, 50, 25}, 100, 2)
	out := sb.String()
	if !strings.Contains(out, "Lemma 6.1") || !strings.Contains(out, "25") {
		t.Errorf("decay table missing content:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(1.234) != "1.23" || I(7) != "7" {
		t.Error("formatters wrong")
	}
}
