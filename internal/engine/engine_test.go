package engine

import (
	"errors"
	"reflect"
	"testing"

	"vavg/internal/graph"
)

// flood: every vertex learns the max ID within distance k in k+1 rounds.
func floodMax(k int) Program {
	return func(api *API) any {
		best := api.ID()
		for i := 0; i < k; i++ {
			api.Broadcast(best)
			for _, m := range api.Next() {
				if v, ok := m.Data.(int); ok && v > best {
					best = v
				}
			}
		}
		return best
	}
}

func TestFloodMaxOnRing(t *testing.T) {
	g := graph.Ring(8)
	res, err := Run(g, floodMax(4), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		want := 7
		if v == 2 { // distance from 2 to 7 is 3 <= 4: reachable
			want = 7
		}
		if res.Output[v] != want {
			t.Errorf("vertex %d output %v, want %d", v, res.Output[v], want)
		}
		if res.Rounds[v] != 5 { // 4 exchanges + 1 final round
			t.Errorf("vertex %d rounds %d, want 5", v, res.Rounds[v])
		}
	}
	if res.TotalRounds != 5 {
		t.Errorf("TotalRounds = %d, want 5", res.TotalRounds)
	}
	if got := res.VertexAverage(); got != 5 {
		t.Errorf("VertexAverage = %v, want 5", got)
	}
}

func TestRoundSumMatchesActivePerRound(t *testing.T) {
	g := graph.ForestUnion(200, 2, 7)
	// Vertices idle for a number of rounds proportional to their ID mod 17.
	prog := func(api *API) any {
		api.Idle(api.ID() % 17)
		return api.ID()
	}
	res, err := Run(g, prog, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, a := range res.ActivePerRound {
		sum += int64(a)
	}
	if sum != res.RoundSum {
		t.Errorf("sum of ActivePerRound = %d, RoundSum = %d", sum, res.RoundSum)
	}
	for v := 0; v < g.N(); v++ {
		if int(res.Rounds[v]) != v%17+1 {
			t.Errorf("vertex %d rounds = %d, want %d", v, res.Rounds[v], v%17+1)
		}
	}
}

func TestFinalBroadcastVisibleToNeighbors(t *testing.T) {
	g := graph.Path(3)
	// Vertex 0 terminates immediately with output "done"; vertex 1 waits
	// for the Final message; vertex 2 waits for vertex 1's relay.
	prog := func(api *API) any {
		switch api.ID() {
		case 0:
			return "done"
		case 1:
			for {
				for _, m := range api.Next() {
					if f, ok := m.Data.(Final); ok && m.From == 0 {
						return "saw:" + f.Output.(string)
					}
				}
			}
		default:
			for {
				for _, m := range api.Next() {
					if f, ok := m.Data.(Final); ok && m.From == 1 {
						return f.Output
					}
				}
			}
		}
	}
	res, err := Run(g, prog, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[1] != "saw:done" {
		t.Errorf("vertex 1 output %v", res.Output[1])
	}
	if res.Output[2] != "saw:done" {
		t.Errorf("vertex 2 output %v", res.Output[2])
	}
	// Vertex 0 terminates in round 1; vertex 1's first Next returns round-1
	// traffic, so it terminates in round 2; vertex 2 in round 3.
	if res.Rounds[0] != 1 || res.Rounds[1] != 2 || res.Rounds[2] != 3 {
		t.Errorf("rounds = %v, want [1 2 3]", res.Rounds)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := graph.ForestUnion(120, 3, 11)
	prog := func(api *API) any {
		// Randomized program: random idle then output a random value.
		api.Idle(api.Rand().Intn(5))
		return api.Rand().Int63()
	}
	r1, err := Run(g, prog, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(g, prog, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Output, r2.Output) {
		t.Error("outputs differ across identically-seeded runs")
	}
	if !reflect.DeepEqual(r1.Rounds, r2.Rounds) {
		t.Error("round counts differ across identically-seeded runs")
	}
	r3, err := Run(g, prog, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Output, r3.Output) {
		t.Error("different seeds produced identical outputs (suspicious)")
	}
}

func TestSendIDAndPointToPoint(t *testing.T) {
	g := graph.Star(5)
	prog := func(api *API) any {
		if api.ID() == 0 {
			for k, nbr := range api.NeighborIDs() {
				api.Send(k, int(nbr)*10)
			}
			api.Next()
			return nil
		}
		msgs := api.Next()
		if len(msgs) != 1 {
			return -1
		}
		return msgs[0].Data
	}
	res, err := Run(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v := 1; v < 5; v++ {
		if res.Output[v] != v*10 {
			t.Errorf("vertex %d got %v, want %d", v, res.Output[v], v*10)
		}
	}
}

func TestMaxRoundsAborts(t *testing.T) {
	g := graph.Ring(4)
	prog := func(api *API) any {
		for {
			api.Next()
		}
	}
	_, err := Run(g, prog, Options{MaxRounds: 50})
	if !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("err = %v, want ErrMaxRounds", err)
	}
}

func TestVertexPanicPropagates(t *testing.T) {
	g := graph.Ring(4)
	prog := func(api *API) any {
		if api.ID() == 2 {
			panic("boom")
		}
		api.Idle(3)
		return nil
	}
	_, err := Run(g, prog, Options{})
	if err == nil {
		t.Fatal("expected error from panicking vertex")
	}
}

func TestMessageOverwriteWithinRound(t *testing.T) {
	g := graph.Path(2)
	prog := func(api *API) any {
		if api.ID() == 0 {
			api.Send(0, "first")
			api.Send(0, "second")
			api.Next()
			return nil
		}
		msgs := api.Next()
		return msgs[0].Data
	}
	res, err := Run(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[1] != "second" {
		t.Errorf("got %v, want overwrite semantics", res.Output[1])
	}
}

func TestCommitRounds(t *testing.T) {
	g := graph.Path(3)
	prog := func(api *API) any {
		if api.ID() == 0 {
			api.Commit() // commits in round 1
			api.Commit() // second call must not move it
			api.Idle(4)  // keeps relaying
			return "zero"
		}
		api.Idle(2)
		return api.ID()
	}
	res, err := Run(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.CommitRounds[0] != 1 {
		t.Errorf("vertex 0 commit round = %d, want 1", res.CommitRounds[0])
	}
	if res.Rounds[0] != 5 {
		t.Errorf("vertex 0 terminated at %d, want 5", res.Rounds[0])
	}
	// Vertices without Commit default to their termination round.
	for v := 1; v < 3; v++ {
		if res.CommitRounds[v] != res.Rounds[v] {
			t.Errorf("vertex %d commit %d != rounds %d", v, res.CommitRounds[v], res.Rounds[v])
		}
	}
	wantAvg := float64(1+3+3) / 3
	if res.CommitAverage() != wantAvg {
		t.Errorf("CommitAverage = %v, want %v", res.CommitAverage(), wantAvg)
	}
	if res.MaxCommit() != 3 {
		t.Errorf("MaxCommit = %d, want 3", res.MaxCommit())
	}
}

func TestAPIAccessors(t *testing.T) {
	g := graph.Ring(5)
	prog := func(api *API) any {
		if api.N() != 5 || api.Degree() != 2 {
			t.Errorf("N/Degree wrong")
		}
		nbrs := api.NeighborIDs()
		if api.NeighborIndex(nbrs[1]) != 1 || api.NeighborIndex(int32(api.ID())) != -1 {
			t.Errorf("NeighborIndex wrong")
		}
		if api.Round() != 0 {
			t.Errorf("Round before any Next should be 0")
		}
		api.SendID(int(nbrs[0]), "hi")
		got := api.Next()
		if api.Round() != 1 {
			t.Errorf("Round after Next should be 1")
		}
		return len(got)
	}
	res, err := Run(g, prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every vertex sent exactly one point-to-point message (to its lowest
	// neighbor), so five messages arrived in total.
	total := 0
	for _, o := range res.Output {
		total += o.(int)
	}
	if total != g.N() {
		t.Errorf("received %d messages in total, want %d", total, g.N())
	}
	if res.Messages != int64(g.N())+int64(2*g.M()) { // sends + final broadcasts
		t.Errorf("Messages = %d, want %d", res.Messages, g.N()+2*g.M())
	}
}
