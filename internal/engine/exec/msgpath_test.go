package exec

import (
	"fmt"
	gort "runtime"
	"runtime/debug"
	"strings"
	"sync"
	"testing"

	"vavg/internal/graph"
)

// nopRuntime drives APIs by hand: tests and benchmarks below cross round
// barriers themselves (flush / core.swap / collect), isolating the message
// path from the schedulers.
type nopRuntime struct{}

func (nopRuntime) next(a *API, buf []Msg) []Msg        { panic("nopRuntime.next") }
func (nopRuntime) idle(a *API, k int, buf []Msg) []Msg { panic("nopRuntime.idle") }
func (nopRuntime) deliver(a *API, p int32, c cell)     { a.core.sendBuf[a.core.g.Rev[p]] = c }

// stubAPI builds an API wired exactly as runVertex does, without spawning
// a goroutine.
func stubAPI(c *core, rt runtime, v int32) *API {
	lo, hi := c.g.Off[v], c.g.Off[v+1]
	return &API{
		core:  c,
		rt:    rt,
		v:     v,
		out:   c.scratch.outbox[lo:hi:hi],
		dirty: c.scratch.dirty[lo:lo:hi],
	}
}

// TestSendBoundsCheck pins the fail-fast contract: an out-of-range
// neighbor index must panic at the Send call with a clear message, not
// later inside flush with an opaque slab index.
func TestSendBoundsCheck(t *testing.T) {
	g := graph.Path(3) // vertex 0 has degree 1
	gb, _ := Lookup("goroutines")
	for _, k := range []int{5, -1} {
		prog := func(api *API) any {
			if api.ID() == 0 {
				api.Send(k, "x")
			}
			api.Next()
			return nil
		}
		_, err := gb.Run(g, prog, Config{Seed: 1})
		if err == nil {
			t.Fatalf("Send(%d) on degree-1 vertex: expected error", k)
		}
		want := fmt.Sprintf("neighbor index %d out of range [0,1)", k)
		if !strings.Contains(err.Error(), want) {
			t.Errorf("Send(%d) error = %q, want it to contain %q", k, err, want)
		}
	}
	// SendInt shares the bounds check.
	prog := func(api *API) any {
		if api.ID() == 0 {
			api.SendInt(2, 7)
		}
		api.Next()
		return nil
	}
	if _, err := gb.Run(g, prog, Config{Seed: 1}); err == nil ||
		!strings.Contains(err.Error(), "neighbor index 2 out of range [0,1)") {
		t.Errorf("SendInt out of range error = %v", err)
	}
}

// TestMessageLanes checks lane selection end to end: fast-lane values
// round-trip through AsInt, general-lane values through Data, and a Final
// never reports as an integer.
func TestMessageLanes(t *testing.T) {
	g := graph.Path(2)
	prog := func(api *API) any {
		if api.ID() == 0 {
			//lint:ignore wiretag any int64 is legal on the raw lane; this exercises a negative non-Pack word
			api.SendInt(0, -42)
			api.Next()
			api.Send(0, "boxed")
			api.Next()
			return nil
		}
		var log []string
		for len(log) < 2 {
			for _, m := range api.Next() {
				if x, ok := m.AsInt(); ok {
					log = append(log, fmt.Sprintf("int:%d", x))
				} else if s, ok := m.Data.(string); ok {
					log = append(log, "any:"+s)
				}
			}
		}
		return strings.Join(log, ",")
	}
	gb, _ := Lookup("goroutines")
	res, err := gb.Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[1] != "int:-42,any:boxed" {
		t.Errorf("lane log = %q, want %q", res.Output[1], "int:-42,any:boxed")
	}
	if _, ok := (Msg{Data: Final{Output: 3}}).AsInt(); ok {
		t.Error("Final reported as fast-lane")
	}
}

// TestMessagePathAllocs pins the steady-state message path to zero
// allocations: staging, flushing, broadcasting, collecting, and decoding
// fast-lane messages on a warm engine must not touch the heap. Guards
// against reintroducing interface boxing or per-round buffers.
func TestMessagePathAllocs(t *testing.T) {
	g := graph.Ring(4)
	c := newCore(g, Config{})
	defer c.release()
	apis := make([]*API, g.N())
	for v := range apis {
		apis[v] = stubAPI(c, nopRuntime{}, int32(v))
	}
	round := func() {
		for _, a := range apis {
			a.flush()
		}
		c.swap()
		for _, a := range apis {
			a.inbox = a.collect(a.inbox[:0])
		}
	}
	// Warm the inbox buffers so the measured rounds run at capacity.
	for _, a := range apis {
		a.BroadcastInt(0)
	}
	round()

	var bad int64
	cases := []struct {
		name string
		body func()
	}{
		{"SendInt", func() {
			for _, a := range apis {
				a.SendInt(0, 7)
				a.SendInt(1, 9)
			}
			round()
			for _, a := range apis {
				for _, m := range a.inbox {
					if x, ok := m.AsInt(); !ok || x != 7 && x != 9 {
						bad++
					}
				}
			}
		}},
		{"BroadcastInt", func() {
			for _, a := range apis {
				a.BroadcastInt(int64(a.v))
			}
			round()
		}},
		{"SendPreboxed", func() {
			// The general lane itself is allocation-free once the payload
			// exists; only boxing a fresh value costs.
			for _, a := range apis {
				a.Send(0, apis[0]) // any pre-existing pointer payload
			}
			round()
		}},
		{"SendThenBroadcastInt", func() {
			for _, a := range apis {
				a.SendInt(0, 1)
				a.BroadcastInt(2) // write-through cancels the staged send
			}
			round()
		}},
		{"QuietRound", func() { round() }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(50, tc.body); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
	if bad != 0 {
		t.Errorf("%d fast-lane messages decoded wrong", bad)
	}
}

// TestSteadyStateAllocsIntegrated measures the whole engine, schedulers
// included: growing a run by 1000 extra broadcast rounds must add at most
// a fixed number of allocations (ActivePerRound growth and GC noise), i.e.
// the per-round message path allocates nothing on either backend.
func TestSteadyStateAllocsIntegrated(t *testing.T) {
	withShards(t, 2)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	g := graph.Ring(8)
	prog := func(rounds int) Program {
		return func(api *API) any {
			var sum int64
			for i := 0; i < rounds; i++ {
				api.BroadcastInt(int64(i))
				for _, m := range api.Next() {
					x, _ := m.AsInt()
					sum += x
				}
			}
			return sum
		}
	}
	mallocs := func() uint64 {
		var ms gort.MemStats
		gort.ReadMemStats(&ms)
		return ms.Mallocs
	}
	// stepProg is the state-machine twin of prog: one broadcast per turn,
	// summing the previous turn's inbox. Running it directly on the step
	// backend gates the step scheduler's own round loop, which the blocking
	// program above only reaches through the fallback path.
	stepProg := func(rounds int) StepProgram {
		return func(api *API) StepFn {
			var sum int64
			i := 0
			var fn StepFn
			fn = func(api *API, inbox []Msg) Step {
				for _, m := range inbox {
					x, _ := m.AsInt()
					sum += x
				}
				if i == rounds {
					return Done(sum)
				}
				api.BroadcastInt(int64(i))
				i++
				return Continue(fn)
			}
			return fn
		}
	}
	check := func(name string, run func(rounds int) uint64) {
		run(1100) // warm the scratch pool at full size
		long := run(1100)
		short := run(100)
		var extra int64
		if long > short {
			extra = int64(long - short)
		}
		// 1000 extra rounds x 8 vertices = 8000 round-vertex steps; the
		// budget admits only slice-growth amortization, not per-step work.
		if extra > 128 {
			t.Errorf("%s: 1000 extra rounds cost %d allocs (long=%d short=%d), want <= 128",
				name, extra, long, short)
		}
	}
	// A crash-free drop adversary must not disturb the steady state
	// either: drop decisions are pure hashes and loss accounting is plain
	// counters, so the adversary-attached rounds run allocation-free too.
	// The nil-adversary runs below remain the gate for the fault-free hot
	// path the scenario layer promises not to touch.
	dropAdv := &Adversary{Seed: 7, DropBar: ^uint64(0) / 2}
	if err := dropAdv.Normalize(g.N()); err != nil {
		t.Fatal(err)
	}
	for _, name := range Names() {
		b, _ := Lookup(name)
		check(name, func(rounds int) uint64 {
			before := mallocs()
			if _, err := b.Run(g, prog(rounds), Config{Seed: 1, MaxRounds: 1 << 20}); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			return mallocs() - before
		})
		check(name+"(drop adversary)", func(rounds int) uint64 {
			before := mallocs()
			if _, err := b.Run(g, prog(rounds), Config{Seed: 1, MaxRounds: 1 << 20, Adv: dropAdv}); err != nil {
				t.Fatalf("%s with adversary: %v", name, err)
			}
			return mallocs() - before
		})
		if sr, ok := b.(StepRunner); ok {
			check(name+"(step form)", func(rounds int) uint64 {
				before := mallocs()
				if _, err := sr.RunStep(g, stepProg(rounds), Config{Seed: 1, MaxRounds: 1 << 20}); err != nil {
					t.Fatalf("%s step form: %v", name, err)
				}
				return mallocs() - before
			})
		}
	}
}

// benchLane benchmarks one send primitive at a given degree: the center of
// a star stages/broadcasts to deg neighbors, the barrier is crossed by
// hand, and every leaf drains its single-slot inbox.
func benchLane(b *testing.B, deg int, send func(a *API, i int)) {
	g := graph.Star(deg + 1)
	c := newCore(g, Config{})
	defer c.release()
	center := stubAPI(c, nopRuntime{}, 0)
	leaves := make([]*API, deg)
	for i := range leaves {
		leaves[i] = stubAPI(c, nopRuntime{}, int32(i+1))
	}
	var sink int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		send(center, i)
		center.flush()
		c.swap()
		for _, l := range leaves {
			l.inbox = l.collect(l.inbox[:0])
			for _, m := range l.inbox {
				if x, ok := m.AsInt(); ok {
					sink += x
				} else if v, ok := m.Data.(int); ok {
					sink += int64(v)
				}
			}
		}
	}
	_ = sink
}

// BenchmarkLaneMerge measures the staged cross-shard path end to end: a
// ring's vertices broadcast through stepRuntime.deliver (same-shard
// writes go direct, shard-boundary ones into the lanes) and every shard
// runs its batched applyLanes merge. The warm path must be allocation-
// free — lane buffers, pending lists, and inboxes reach capacity during
// the first iterations and are reused thereafter.
func BenchmarkLaneMerge(b *testing.B) {
	for _, nshards := range []int{2, 8, 64} {
		b.Run(fmt.Sprintf("shards=%d", nshards), func(b *testing.B) {
			g := graph.Ring(4096)
			c := newCore(g, Config{})
			defer c.release()
			n := int32(g.N())
			shardSize := (n + int32(nshards) - 1) / int32(nshards)
			rt := &stepRuntime{c: c, shardSize: shardSize, round: 1}
			for lo := int32(0); lo < n; lo += shardSize {
				hi := lo + shardSize
				if hi > n {
					hi = n
				}
				rt.shards = append(rt.shards, &stepShard{
					idx: int32(len(rt.shards)), lo: lo, hi: hi,
					msgRound: make([]int32, hi-lo),
				})
			}
			rt.lanes = make([]lane, nshards*nshards)
			apis := make([]*API, n)
			for v := range apis {
				apis[v] = stubAPI(c, rt, int32(v))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, a := range apis {
					a.BroadcastInt(int64(i))
					a.flush()
				}
				for _, s := range rt.shards {
					s.applyLanes(rt)
				}
				// Reset the wake bookkeeping runRound would have drained; the
				// slab double-buffer swap stands in for the round barrier.
				for _, s := range rt.shards {
					//lint:ignore shardseam benchmark harness drain at the simulated round barrier; no worker is running
					s.pending = s.pending[:0]
					clear(s.msgRound)
				}
				c.swap()
			}
		})
	}
}

// BenchmarkLaneFalseSharing measures what the lane header padding buys:
// two goroutines bump append cursors that either sit on separate cache
// lines (padded: the real lane layout) or share one (packed: two bare
// 24-byte slice headers side by side). On a multicore host the packed
// variant pays coherence ping-pong on the shared line every append; with
// GOMAXPROCS=1 the goroutines serialize and the two variants coincide —
// the honest reading on a single-CPU container.
func BenchmarkLaneFalseSharing(b *testing.B) {
	const appendsPerOp = 1 << 12
	bench := func(b *testing.B, cursors [2]*[]laneEntry) {
		for _, cur := range cursors {
			*cur = make([]laneEntry, 0, appendsPerOp)
		}
		var wg sync.WaitGroup
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			wg.Add(2)
			for w := 0; w < 2; w++ {
				go func(cur *[]laneEntry) {
					defer wg.Done()
					*cur = (*cur)[:0]
					for k := int32(0); k < appendsPerOp; k++ {
						*cur = append(*cur, laneEntry{slot: k})
					}
				}(cursors[w])
			}
			wg.Wait()
		}
	}
	b.Run("padded", func(b *testing.B) {
		lanes := make([]lane, 2)
		bench(b, [2]*[]laneEntry{&lanes[0].buf, &lanes[1].buf})
	})
	b.Run("packed", func(b *testing.B) {
		var hdrs struct{ a, b []laneEntry }
		bench(b, [2]*[]laneEntry{&hdrs.a, &hdrs.b})
	})
}

func BenchmarkMsgPath(b *testing.B) {
	for _, deg := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("Send/deg=%d", deg), func(b *testing.B) {
			benchLane(b, deg, func(a *API, i int) {
				for k := 0; k < deg; k++ {
					a.Send(k, i) // boxes the int: the cost the fast lane removes
				}
			})
		})
		b.Run(fmt.Sprintf("SendInt/deg=%d", deg), func(b *testing.B) {
			benchLane(b, deg, func(a *API, i int) {
				for k := 0; k < deg; k++ {
					a.SendInt(k, int64(i))
				}
			})
		})
		b.Run(fmt.Sprintf("Broadcast/deg=%d", deg), func(b *testing.B) {
			benchLane(b, deg, func(a *API, i int) { a.Broadcast(i) })
		})
		b.Run(fmt.Sprintf("BroadcastInt/deg=%d", deg), func(b *testing.B) {
			benchLane(b, deg, func(a *API, i int) { a.BroadcastInt(int64(i)) })
		})
	}
}
