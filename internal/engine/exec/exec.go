// Package exec is the execution core of the LOCAL-model simulator: it
// separates the model's semantics — synchronous rounds, per-directed-edge
// message slots, per-vertex termination accounting — from the mechanics of
// how vertex turns are scheduled, which live behind the Backend interface.
//
// Two backends are provided:
//
//   - "goroutines": one goroutine per vertex driven by a single
//     coordinator, the original engine. Simple, lowest constant overhead
//     per active vertex, but every live vertex costs one wake and one
//     barrier crossing per round even while it merely waits.
//
//   - "pool": vertices are partitioned into contiguous shards (one worker
//     per GOMAXPROCS core) and scheduled by an explicit active-set
//     scheduler. Vertices parked in Idle windows cost zero scheduler work
//     until a message arrives for them or their window expires, rounds in
//     which every live vertex is parked are fast-forwarded in O(1), and
//     each round needs one synchronization per shard rather than per
//     vertex. This is the backend that exploits the paper's Lemma 6.1:
//     per-round cost tracks the number of *runnable* vertices, which
//     decays exponentially, not n.
//
// Both backends execute byte-identical runs for equal seeds: all mutable
// run state (PRNG streams, inbox order, round counters, message counts) is
// per-vertex-indexed and independent of scheduling, which the
// cross-backend equivalence tests enforce for every registered algorithm.
package exec

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"

	"vavg/internal/graph"
)

// Msg is a message received from a neighbor. A message travels on one of
// two lanes: the integer fast lane (sent via SendInt/BroadcastInt, read
// via AsInt) carries a bare int64 with no heap traffic, while the general
// lane (Send/Broadcast) carries an arbitrary boxed payload in Data.
type Msg struct {
	// From is the sender's vertex ID.
	From int32
	// isInt marks a fast-lane message; Int is then the payload and Data
	// is nil.
	isInt bool
	// Int is the fast-lane payload; meaningful only when AsInt reports ok.
	Int int64
	// Data is the general-lane payload. A payload of type Final is the
	// sender's termination announcement.
	Data any
}

// AsInt returns the fast-lane payload and whether this message used the
// fast lane. General-lane messages (including Final) report ok=false.
func (m Msg) AsInt() (int64, bool) { return m.Int, m.isInt }

// Final is the payload automatically broadcast by a vertex in its last
// round; Output is the value the vertex's Program returned.
type Final struct {
	Output any
}

// Program is the per-vertex code. It runs concurrently with all other
// vertices' Programs and may only interact with them through the API; the
// value it returns is the vertex's output, broadcast to its neighbors in
// one final counted round.
type Program func(api *API) any

// Config configures one run on a backend.
type Config struct {
	// Seed seeds the per-vertex deterministic PRNGs. Two runs with equal
	// seeds produce identical executions regardless of scheduling and of
	// the backend used.
	Seed int64
	// MaxRounds aborts the run if the global round count exceeds it,
	// guarding against livelocked programs. 0 means 4*(n + 64*log2(n) + 64).
	MaxRounds int
	// Adv is the compiled fault schedule, or nil for the fault-free run.
	// A nil adversary compiles to the existing zero-allocation hot path
	// (a single pointer test per flush); a non-nil one must have been
	// normalized for the run's graph (see Adversary.Normalize).
	Adv *Adversary
	// StepShards fixes the step backend's shard count: vertex state is
	// split into this many contiguous ranges regardless of how many worker
	// cores drive them (workers are capped at min(GOMAXPROCS, shards)).
	// 0 means GOMAXPROCS at run start. Results are invariant in both the
	// shard and the worker count — the knob only trades scheduling
	// granularity against per-shard overhead — but a fixed value makes the
	// shard layout reproducible across machines. Other backends ignore it.
	StepShards int
}

func (c Config) maxRounds(n int) int {
	if c.MaxRounds != 0 {
		return c.MaxRounds
	}
	lg := 1
	for 1<<lg < n+2 {
		lg++
	}
	return 4*n + 256*lg + 256
}

// Result reports the outcome and cost accounting of a run.
type Result struct {
	// Rounds[v] is the number of rounds vertex v participated in before
	// terminating (including its final-output round).
	Rounds []int32
	// CommitRounds[v] is the round in which v committed its output via
	// API.Commit — Feuilloley's first definition, under which a vertex may
	// keep computing and relaying after fixing its output. For vertices
	// that never called Commit it equals Rounds[v].
	CommitRounds []int32
	// Output[v] is the value v's Program returned.
	Output []any
	// TotalRounds is the worst-case complexity of the run: max_v Rounds[v].
	TotalRounds int
	// RoundSum is sum_v Rounds[v].
	RoundSum int64
	// ActivePerRound[i] is the number of vertices active in round i+1.
	ActivePerRound []int
	// Messages is the total number of point-to-point messages delivered.
	Messages int64

	// The remaining fields are degradation accounting, filled only when
	// the run carried an Adversary (all zero / nil otherwise).

	// Dropped counts deliveries removed by the adversary's random-loss
	// process; Messages counts only deliveries that arrived.
	Dropped int64
	// LostToCrash counts deliveries killed because an endpoint was
	// inside its crash outage.
	LostToCrash int64
	// Crashed[v] reports that v was crashed and never restarted: its
	// Output is nil and Rounds[v] is its crash round. Nil without an
	// adversary.
	Crashed []bool
	// CrashedForever and Restarts count the vertices that died for good
	// and the ones that rebooted.
	CrashedForever int
	// Restarts is the number of vertices that crashed and were rebooted
	// from a fresh init.
	Restarts int

	// Shards is the shard count the step backend ran with (the autotuned
	// value when Config.StepShards was 0); 0 for the other backends.
	// Purely informational: Results are invariant in the shard count.
	Shards int
}

// VertexAverage returns RoundSum / n, the paper's vertex-averaged
// complexity of the execution.
func (r *Result) VertexAverage() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	return float64(r.RoundSum) / float64(len(r.Rounds))
}

// CommitAverage returns the node-averaged complexity under Feuilloley's
// first definition: the mean of the per-vertex output-commitment rounds.
func (r *Result) CommitAverage() float64 {
	if len(r.CommitRounds) == 0 {
		return 0
	}
	var sum int64
	for _, c := range r.CommitRounds {
		sum += int64(c)
	}
	return float64(sum) / float64(len(r.CommitRounds))
}

// MaxCommit returns the largest per-vertex commitment round.
func (r *Result) MaxCommit() int {
	m := 0
	for _, c := range r.CommitRounds {
		if int(c) > m {
			m = int(c)
		}
	}
	return m
}

// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
var ErrMaxRounds = errors.New("engine: exceeded maximum round count")

// Backend executes vertex Programs under the LOCAL-model round discipline.
// Implementations must preserve the model semantics exactly: synchronous
// rounds, inbox ordering by neighbor index, per-vertex PRNG streams, and
// the termination accounting of Result — equal seeds must yield identical
// Results on every backend.
type Backend interface {
	// Name is the registry key of the backend.
	Name() string
	// Run executes prog on every vertex of g until all vertices terminate.
	Run(g *graph.Graph, prog Program, cfg Config) (*Result, error)
}

// PoolThreshold is the vertex count at or above which automatic backend
// selection prefers "pool": below it the goroutine coordinator's lower
// constant overhead wins, above it the active-set scheduler's
// O(runnable)-per-round cost does.
const PoolThreshold = 1 << 14

var backends = map[string]Backend{}

// Register adds a backend to the registry; it panics on duplicate names.
func Register(b Backend) {
	if _, dup := backends[b.Name()]; dup {
		panic("exec: duplicate backend " + b.Name())
	}
	backends[b.Name()] = b
}

func init() {
	Register(goroutinesBackend{})
	Register(poolBackend{})
	Register(stepBackend{})
}

// Names lists the registered backends in sorted order.
func Names() []string {
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the backend registered under name. The error for an
// unknown name lists every registered backend (plus the "auto" pseudo
// name) so callers passing user input get the valid choices back.
func Lookup(name string) (Backend, error) {
	if b, ok := backends[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("engine: unknown backend %q (registered backends: %s, or \"auto\")",
		name, strings.Join(Names(), ", "))
}

// Select resolves a backend choice for an n-vertex run. The empty string
// and "auto" select "goroutines" below PoolThreshold vertices and "pool"
// at or above it; any other name selects that backend explicitly.
func Select(name string, n int) (Backend, error) {
	if name == "" || name == "auto" {
		if n >= PoolThreshold {
			return backends["pool"], nil
		}
		return backends["goroutines"], nil
	}
	return Lookup(name)
}

// Spec describes an algorithm to a backend: the blocking goroutine form
// and, when the algorithm has been migrated, the equivalent step
// (state-machine) form. The two forms express the same executions; which
// one runs is an execution-strategy choice that never changes the Result.
type Spec struct {
	// Program is the blocking per-vertex form; required.
	Program Program
	// Step is the per-round state-machine form, or nil if the algorithm
	// has not been migrated.
	Step StepProgram
}

// RunSpec resolves name like Select and executes spec on the chosen
// backend, preferring the step form wherever it can run: ""/"auto" with a
// step form selects "step" outright (the step driver beats both blocking
// backends at every size), and any explicitly chosen backend that
// implements StepRunner uses the step form. Selecting "step" for an
// algorithm without a step form falls back to the automatic
// goroutines/pool choice.
func RunSpec(g *graph.Graph, spec Spec, name string, cfg Config) (*Result, error) {
	if spec.Program == nil && spec.Step == nil {
		return nil, errors.New("engine: empty Spec: no Program and no StepProgram")
	}
	if (name == "" || name == "auto") && spec.Step != nil {
		name = "step"
	}
	b, err := Select(name, g.N())
	if err != nil {
		return nil, err
	}
	if sr, ok := b.(StepRunner); ok && spec.Step != nil {
		return sr.RunStep(g, spec.Step, cfg)
	}
	if spec.Program == nil {
		return nil, fmt.Errorf("engine: backend %q needs the blocking form, but the Spec has only a step form", b.Name())
	}
	return b.Run(g, spec.Program, cfg)
}

// cell is one directed-edge message slot, written only by the edge's tail
// and read only by its head. kind selects the payload lane; a cellEmpty
// kind marks the slot vacant.
type cell struct {
	data any
	ival int64
	kind uint8
}

// cell kinds. Stale cells addressed to already-terminated receivers keep a
// non-empty kind in the double buffers for the rest of the run (nothing
// drains them), which is harmless but means kind can never double as
// per-round bookkeeping.
const (
	cellEmpty = uint8(iota)
	cellAny   // data holds a boxed payload
	cellInt   // ival holds a fast-lane integer
)

// runScratch holds the per-run engine allocations that never escape into
// the Result: the two directed-edge slot slabs (the largest allocation of
// a run, 2*len(Adj) cells), the flat outbox slabs sliced per vertex by
// degree, and the per-vertex bookkeeping the backends read at barriers.
// Recycling them through scratchPool keeps concurrent sweep points from
// multiplying steady-state allocations by the worker count. Rounds,
// commitments, and outputs are excluded: Result aliases those arrays, so
// they must stay owned by the caller.
type runScratch struct {
	bufA     []cell
	bufB     []cell
	outbox   []cell  // flat per-vertex outboxes: vertex v owns [Off[v], Off[v+1])
	dirty    []int32 // flat backing for the per-vertex dirty-index lists
	done     []bool
	msgCount []int64
	panics   []any
	// apis and stepFns back the step backend's flat per-vertex machine
	// state (API handles and pending turns); the other backends leave them
	// untouched.
	apis    []API
	stepFns []StepFn
}

var scratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// reslice returns s resized to n elements and zeroed, reusing its backing
// array when the capacity allows.
func reslice[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	s = s[:n]
	clear(s)
	return s
}

// core is the run state shared by every backend: the double-buffered
// directed-edge slots plus the per-vertex accounting arrays. All arrays
// are indexed by vertex (or directed-edge position), so no two vertices
// ever write the same element and results are scheduling-independent.
type core struct {
	g        *graph.Graph
	scratch  *runScratch
	sendBuf  []cell // written during the current round
	recvBuf  []cell // holds the previous round's messages
	done     []bool // set by a vertex when it terminates (read at barriers)
	rounds   []int32
	commits  []int32
	output   []any
	msgCount []int64
	panics   []any
	aborted  bool
	seed     int64

	// Relabel translation (graph.Relabel views, DESIGN.md §11). The engine
	// runs in the view's cache-friendly vertex space, but every observable
	// stays in original-ID space: orig maps engine vertex → original ID
	// (nil when unrelabeled), from[p] is the sender ID collect reports for
	// slot p (the view's AdjOrig, or g.Adj unrelabeled — branch-free on the
	// hot path), and slotOrig maps view slots to original directed-edge
	// positions so the adversary's drop hash sees original slots (nil when
	// unrelabeled).
	orig     []int32
	from     []int32
	slotOrig []int32

	// Adversary state, nil on fault-free runs: the schedule itself plus
	// the per-vertex degradation counters. crashed is caller-owned (the
	// Result aliases it); the counters are summed into the Result at
	// finish. These allocate only when an adversary is present, keeping
	// the nil-scenario path on the recycled-scratch fast path.
	adv       *Adversary
	crashed   []bool
	gens      []int32
	dropCount []int64
	lostCount []int64
}

func newCore(g *graph.Graph, cfg Config) *core {
	n := g.N()
	s := scratchPool.Get().(*runScratch)
	s.bufA = reslice(s.bufA, len(g.Adj))
	s.bufB = reslice(s.bufB, len(g.Adj))
	s.outbox = reslice(s.outbox, len(g.Adj))
	s.dirty = reslice(s.dirty, len(g.Adj))
	s.done = reslice(s.done, n)
	s.msgCount = reslice(s.msgCount, n)
	s.panics = reslice(s.panics, n)
	c := &core{
		g:        g,
		scratch:  s,
		done:     s.done,
		rounds:   make([]int32, n),
		commits:  make([]int32, n),
		output:   make([]any, n),
		msgCount: s.msgCount,
		panics:   s.panics,
		seed:     cfg.Seed,
	}
	c.sendBuf, c.recvBuf = s.bufA, s.bufB
	c.from = g.Adj
	if pm := g.Perm; pm != nil {
		c.orig = pm.Orig
		c.from = pm.AdjOrig
		c.slotOrig = pm.SlotOrig
	}
	if cfg.Adv != nil {
		c.adv = cfg.Adv
		if g.Perm != nil {
			// Vertex-keyed fault decisions (crash windows, restarts) must
			// follow their vertices into the view's ID space; the original
			// Adversary is shared across a sweep and stays untouched.
			c.adv = cfg.Adv.permuted(g.Perm.New)
		}
		c.crashed = make([]bool, n)
		c.gens = make([]int32, n)
		c.dropCount = make([]int64, n)
		c.lostCount = make([]int64, n)
	}
	return c
}

// release returns the run scratch to the pool. Safe only once every
// vertex goroutine has terminated (finish's callers guarantee that).
func (c *core) release() {
	if c.scratch == nil {
		return
	}
	scratchPool.Put(c.scratch)
	c.scratch = nil
	c.sendBuf, c.recvBuf, c.done, c.msgCount, c.panics = nil, nil, nil, nil, nil
}

// swap exchanges the double buffers at a round barrier: what was sent this
// round becomes receivable.
func (c *core) swap() {
	c.sendBuf, c.recvBuf = c.recvBuf, c.sendBuf
}

// finish audits panics and assembles the Result once every vertex is
// done, then recycles the run scratch.
func (c *core) finish(activePerRound []int, maxRounds int) (*Result, error) {
	defer c.release()
	n := c.g.N()
	for v := 0; v < n; v++ {
		if p := c.panics[v]; p != nil {
			if c.aborted {
				if _, ok := p.(abortSentinel); ok {
					continue
				}
			}
			id := v
			if c.orig != nil {
				id = int(c.orig[v])
			}
			return nil, fmt.Errorf("engine: vertex %d panicked: %v", id, p)
		}
	}
	if c.aborted && c.adv == nil {
		return nil, fmt.Errorf("%w (%d rounds)", ErrMaxRounds, maxRounds)
	}
	if c.orig != nil {
		c.unmap()
	}
	res := &Result{
		Rounds:         c.rounds,
		CommitRounds:   c.commits,
		Output:         c.output,
		ActivePerRound: activePerRound,
	}
	for v := 0; v < n; v++ {
		if res.CommitRounds[v] == 0 {
			res.CommitRounds[v] = res.Rounds[v]
		}
	}
	for v := 0; v < n; v++ {
		if int(c.rounds[v]) > res.TotalRounds {
			res.TotalRounds = int(c.rounds[v])
		}
		res.RoundSum += int64(c.rounds[v])
		res.Messages += c.msgCount[v]
	}
	if c.adv != nil {
		res.Crashed = c.crashed
		for v := 0; v < n; v++ {
			res.Dropped += c.dropCount[v]
			res.LostToCrash += c.lostCount[v]
			if c.crashed[v] {
				res.CrashedForever++
			}
			if c.gens[v] > 0 {
				res.Restarts++
			}
		}
	}
	if c.aborted {
		// Under an adversary a livelocked run is a data point, not a
		// failure: return the partial accounting alongside the error so
		// degradation experiments can report DNF rows.
		return res, fmt.Errorf("%w (%d rounds)", ErrMaxRounds, maxRounds)
	}
	return res, nil
}

// unmap permutes the per-vertex Result arrays of a relabeled run back to
// original vertex indexing. The engine executed in the view's ID space,
// but Results are part of the observable contract: after this pass they
// are byte-identical to an unrelabeled run's. Fresh arrays are built once
// per run (the originals are caller-owned via the Result alias rule).
func (c *core) unmap() {
	n := len(c.rounds)
	rounds := make([]int32, n)
	commits := make([]int32, n)
	output := make([]any, n)
	for v := 0; v < n; v++ {
		o := c.orig[v]
		rounds[o] = c.rounds[v]
		commits[o] = c.commits[v]
		output[o] = c.output[v]
	}
	c.rounds, c.commits, c.output = rounds, commits, output
	if c.crashed != nil {
		crashed := make([]bool, n)
		for v := 0; v < n; v++ {
			crashed[c.orig[v]] = c.crashed[v]
		}
		c.crashed = crashed
	}
}

type abortSentinel struct{}

// runtime is the backend-side contract of the API: how a vertex crosses a
// round barrier and how it waits out an idle window. deliver owns the
// delivery-slab write for adjacency position p of the sending vertex
// (slot g.Rev[p], receiver g.Adj[p]): backends either write the slab
// directly (each slot has a single writer, so no locks are needed) or
// stage the write for a deterministic merge at the round barrier, and may
// additionally observe the delivery to wake a parked receiver. deliver is
// called for every slot write of a round, including overwrites of a slot
// the same sender already wrote (last write wins); wake notifications are
// deduplicated per (receiver, round) by the backends that need them, so
// repeated calls are idempotent. Message counting stays with the caller.
type runtime interface {
	next(a *API, buf []Msg) []Msg
	idle(a *API, k int, buf []Msg) []Msg
	deliver(a *API, p int32, c cell)
}

// API is the interface a Program uses to act as its vertex. All methods
// must be called only from the Program's own goroutine.
type API struct {
	core  *core
	rt    runtime
	v     int32
	rng   *rand.Rand
	out   []cell  // pending sends indexed by neighbor index (slab-backed)
	dirty []int32 // touched out indices in send order (slab-backed)
	bcast bool    // a write-through broadcast was already counted this round
	inbox []Msg   // receive buffer reused across Next/Idle calls
	round int32
	gen   int32 // PRNG incarnation: 0 normally, >0 after adversary restarts
}

// runVertex executes prog on vertex v, then performs the final counted
// round: broadcast the output once and terminate completely. done signals
// the backend's barrier for this vertex.
func runVertex(rt runtime, c *core, v int32, prog Program, done func()) {
	runVertexFrom(rt, c, v, prog, done, 0, 0)
}

// runVertexFrom is runVertex with an explicit starting point: startRound
// completed rounds already on the clock and PRNG incarnation gen. The
// (0, 0) case is the normal spawn; adversary restarts reboot a crashed
// vertex with startRound = the round before its restart round, so its
// fresh incarnation executes its first round exactly at RestartAt.
func runVertexFrom(rt runtime, c *core, v int32, prog Program, done func(), startRound, gen int32) {
	lo, hi := c.g.Off[v], c.g.Off[v+1]
	api := &API{
		core:  c,
		rt:    rt,
		v:     v,
		out:   c.scratch.outbox[lo:hi:hi],
		dirty: c.scratch.dirty[lo:lo:hi],
		round: startRound,
		gen:   gen,
	}
	defer func() {
		if p := recover(); p != nil {
			api.releaseOutbox()
			if _, crash := p.(crashSentinel); !crash {
				c.panics[v] = p
			}
			c.done[v] = true
			done()
		}
	}()
	out := prog(api)
	api.Broadcast(Final{Output: out})
	api.flush()
	api.releaseOutbox()
	api.round++
	c.rounds[v] = api.round
	c.output[v] = out
	c.done[v] = true
	done()
}

// ID returns this vertex's ID (also its identifier in the ID assignment).
// On a relabeled view this is the original ID — the relabeling is a
// storage-layout choice, never observable to the algorithm.
func (a *API) ID() int {
	if a.core.orig != nil {
		return int(a.core.orig[a.v])
	}
	return int(a.v)
}

// N returns the number of vertices in the graph; per the model, n is
// global knowledge.
func (a *API) N() int { return a.core.g.N() }

// Degree returns this vertex's degree in the input graph.
func (a *API) Degree() int { return a.core.g.Degree(int(a.v)) }

// NeighborIDs returns this vertex's neighbor IDs in ascending order. The
// slice aliases shared storage and must not be modified. On a relabeled
// view the slice is the original-ID adjacency (Relabeling.AdjOrig), which
// keeps the original ascending order.
func (a *API) NeighborIDs() []int32 {
	g := a.core.g
	return a.core.from[g.Off[a.v]:g.Off[a.v+1]]
}

// Round returns the number of rounds this vertex has completed.
func (a *API) Round() int { return int(a.round) }

// NeighborIndex returns the position of vertex id within NeighborIDs, or
// -1 if id is not a neighbor. The search always runs over original-ID
// adjacency (NeighborIDs' backing slice), which is ascending on relabeled
// views too.
func (a *API) NeighborIndex(id int32) int {
	return graph.SearchAdj(a.NeighborIDs(), id)
}

// Rand returns this vertex's deterministic PRNG. The generator is seeded
// by (run seed, vertex ID) on first use: seeding costs a 607-word state
// initialization, so deterministic programs that never draw randomness pay
// nothing for it — at large n the eager version dominated both run time
// and peak memory.
func (a *API) Rand() *rand.Rand {
	if a.rng == nil {
		id := int64(a.v)
		if a.core.orig != nil {
			// The stream is keyed by the ORIGINAL ID: relabeled runs must
			// draw byte-identical randomness.
			id = int64(a.core.orig[a.v])
		}
		s := a.core.seed ^ (id+1)*0x9e3779b97f4a7c
		if a.gen > 0 {
			// A restarted incarnation draws a fresh stream — reusing the
			// pre-crash stream would correlate the reboot with its own past.
			// Generation 0 leaves the seed untouched so fault-free runs are
			// byte-identical to runs built before restarts existed.
			s ^= (int64(a.gen) + 1) * 0x632be59bd9b4e019
		}
		a.rng = rand.New(rand.NewSource(s))
	}
	return a.rng
}

// Commit records that this vertex has irrevocably chosen its output in
// the current round, per Feuilloley's first definition: the vertex may
// keep computing and relaying afterwards, but its commitment round — not
// its termination round — is what CommitRounds reports. Only the first
// call takes effect.
func (a *API) Commit() {
	if a.core.commits[a.v] == 0 {
		a.core.commits[a.v] = a.round + 1
	}
}

// queue stages c for the k-th neighbor in the vertex's flat outbox slot,
// recording the slot in the dirty list on first touch. Re-sending to the
// same neighbor in the same round overwrites in place.
//
//vavg:hotpath
func (a *API) queue(k int, c cell) {
	if k < 0 || k >= len(a.out) {
		panic(fmt.Sprintf("engine: vertex %d: neighbor index %d out of range [0,%d)", a.ID(), k, len(a.out)))
	}
	if a.out[k].kind == cellEmpty {
		a.dirty = append(a.dirty, int32(k))
	}
	a.out[k] = c
}

// Send queues data for the k-th neighbor (index into NeighborIDs); it is
// delivered when the current round completes at the next Next call.
// Sending again to the same neighbor in the same round overwrites. It
// panics if k is not a valid neighbor index.
func (a *API) Send(k int, data any) {
	a.queue(k, cell{data: data, kind: cellAny})
}

// SendInt queues the fast-lane integer x for the k-th neighbor. It has
// Send's delivery semantics (the two lanes share the one per-neighbor
// slot) but never boxes the payload, so the steady-state message path
// performs zero allocations.
func (a *API) SendInt(k int, x int64) {
	a.queue(k, cell{ival: x, kind: cellInt})
}

// releaseOutbox vacates any staged sends once the vertex can no longer
// send (termination or panic), returning the slab slots clean for the
// next run.
func (a *API) releaseOutbox() {
	for _, k := range a.dirty {
		a.out[k] = cell{}
	}
	a.dirty = a.dirty[:0]
	a.bcast = false
}

// SendID queues data for the neighbor with vertex ID nbr; it panics if nbr
// is not a neighbor.
func (a *API) SendID(nbr int, data any) {
	a.Send(a.mustNeighborIndex(nbr), data)
}

// SendIDInt queues the fast-lane integer x for the neighbor with vertex ID
// nbr; it panics if nbr is not a neighbor.
func (a *API) SendIDInt(nbr int, x int64) {
	a.SendInt(a.mustNeighborIndex(nbr), x)
}

func (a *API) mustNeighborIndex(nbr int) int {
	k := a.NeighborIndex(int32(nbr))
	if k < 0 {
		panic(fmt.Sprintf("engine: vertex %d sending to non-neighbor %d", a.ID(), nbr))
	}
	return k
}

// Broadcast queues data for every neighbor. A broadcast supersedes any
// per-neighbor sends staged earlier in the round (last write wins on every
// slot), and is written through to the send buffer directly: the outbox
// stage exists to let later sends overwrite earlier ones, which a
// broadcast — covering every slot at once — does not need.
func (a *API) Broadcast(data any) {
	a.writeThrough(cell{data: data, kind: cellAny})
}

// BroadcastInt queues the fast-lane integer x for every neighbor, with
// Broadcast's write-through semantics and zero allocations.
func (a *API) BroadcastInt(x int64) {
	a.writeThrough(cell{ival: x, kind: cellInt})
}

// writeThrough implements broadcast: cancel staged per-neighbor sends
// (the broadcast overwrites every slot they could land in) and write c
// straight into the send buffer. Mid-round writes are safe — each slot has
// a single writer (this vertex) and is read only after the round barrier
// swaps the buffers. Message accounting stays per-receiver-per-round: only
// the first broadcast of a round counts and notifies; overwrites by later
// broadcasts or re-staged sends are the same message, already counted.
//
//vavg:hotpath
func (a *API) writeThrough(c cell) {
	if a.core.adv != nil {
		a.writeThroughAdv(c)
		return
	}
	for _, k := range a.dirty {
		a.out[k] = cell{}
	}
	a.dirty = a.dirty[:0]
	g := a.core.g
	lo, hi := g.Off[a.v], g.Off[a.v+1]
	if a.bcast {
		for p := lo; p < hi; p++ {
			a.rt.deliver(a, p, c)
		}
		return
	}
	a.bcast = true
	for p := lo; p < hi; p++ {
		a.rt.deliver(a, p, c)
	}
	a.core.msgCount[a.v] += int64(hi - lo)
}

// flush moves staged sends into the send buffer in ascending neighbor
// order (the dirty list is sorted so accounting callbacks fire in the
// same deterministic order on every backend) and closes out the round's
// broadcast bookkeeping. Each cell is written only by this vertex (the
// slot is receiver-side position Rev[p] of the directed edge), so delivery
// needs no locks.
//
//vavg:hotpath
func (a *API) flush() {
	if a.core.adv != nil {
		a.flushAdv()
		return
	}
	bcast := a.bcast
	a.bcast = false
	if len(a.dirty) == 0 {
		return
	}
	sortInt32(a.dirty)
	g := a.core.g
	base := g.Off[a.v]
	for _, k := range a.dirty {
		p := base + k
		a.rt.deliver(a, p, a.out[k])
		a.out[k] = cell{}
	}
	if !bcast {
		a.core.msgCount[a.v] += int64(len(a.dirty))
	}
	a.dirty = a.dirty[:0]
}

// writeThroughAdv is writeThrough under an adversary: every slot write is
// filtered by the crash windows and the drop hash. A send staged while
// executing round w (a.round == w-1) is delivered in round w+1, so the
// delivery round is a.round+2. Degradation counters follow the Messages
// rule — only the first broadcast of a round counts; later overwrites of
// the same slots are the same (already-decided, already-counted) message.
func (a *API) writeThroughAdv(c cell) {
	for _, k := range a.dirty {
		a.out[k] = cell{}
	}
	a.dirty = a.dirty[:0]
	adv := a.core.adv
	g := a.core.g
	lo, hi := g.Off[a.v], g.Off[a.v+1]
	dr := a.round + 2
	count := !a.bcast
	a.bcast = true
	senderDown := adv.inWindow(a.v, dr)
	delivered := int64(0)
	for p := lo; p < hi; p++ {
		switch {
		case senderDown || adv.inWindow(g.Adj[p], dr):
			if count {
				a.core.lostCount[a.v]++
			}
		case adv.dropped(a.core.dropSlot(g.Rev[p]), dr):
			if count {
				a.core.dropCount[a.v]++
			}
		default:
			a.rt.deliver(a, p, c)
			if count {
				delivered++
			}
		}
	}
	if count {
		a.core.msgCount[a.v] += delivered
	}
}

// flushAdv is flush under an adversary, with writeThroughAdv's filtering
// and accounting rules. The drop verdict is a pure hash of (slot,
// delivery round), so a staged send overwriting an earlier broadcast's
// slot reaches the same decision the broadcast did — the slab never holds
// a delivery the adversary removed.
func (a *API) flushAdv() {
	bcast := a.bcast
	a.bcast = false
	if len(a.dirty) == 0 {
		return
	}
	sortInt32(a.dirty)
	adv := a.core.adv
	g := a.core.g
	base := g.Off[a.v]
	dr := a.round + 2
	senderDown := adv.inWindow(a.v, dr)
	delivered := int64(0)
	for _, k := range a.dirty {
		p := base + k
		switch {
		case senderDown || adv.inWindow(g.Adj[p], dr):
			if !bcast {
				a.core.lostCount[a.v]++
			}
		case adv.dropped(a.core.dropSlot(g.Rev[p]), dr):
			if !bcast {
				a.core.dropCount[a.v]++
			}
		default:
			a.rt.deliver(a, p, a.out[k])
			if !bcast {
				delivered++
			}
		}
		a.out[k] = cell{}
	}
	if !bcast {
		a.core.msgCount[a.v] += delivered
	}
	a.dirty = a.dirty[:0]
}

// dropSlot translates a delivery slot for the adversary's drop hash: on a
// relabeled view the hash must see the ORIGINAL directed-edge position, so
// faulty relabeled runs drop exactly the deliveries unrelabeled runs do.
func (c *core) dropSlot(slot int32) int32 {
	if c.slotOrig != nil {
		return c.slotOrig[slot]
	}
	return slot
}

// sortInt32 insertion-sorts s in place; dirty lists are degree-bounded and
// usually already ascending, where insertion sort is branch-cheap.
//
//vavg:hotpath
func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// collect appends this round's inbox (ordered by neighbor index) to buf,
// clearing the slots it drains.
//
//vavg:hotpath
func (a *API) collect(buf []Msg) []Msg {
	g := a.core.g
	from := a.core.from
	lo, hi := g.Off[a.v], g.Off[a.v+1]
	for p := lo; p < hi; p++ {
		c := &a.core.recvBuf[p]
		if c.kind == cellEmpty {
			continue
		}
		m := Msg{From: from[p]}
		if c.kind == cellInt {
			m.Int, m.isInt = c.ival, true
		} else {
			m.Data = c.data
		}
		buf = append(buf, m)
		*c = cell{}
	}
	return buf
}

// Next completes the current round (delivering queued sends) and blocks
// until the next synchronous round begins, returning the messages this
// vertex received, ordered by neighbor index.
//
// The returned slice is a per-vertex buffer reused by the next Next or
// Idle call; programs that retain messages across rounds must copy them.
func (a *API) Next() []Msg {
	a.inbox = a.rt.next(a, a.inbox[:0])
	return a.inbox
}

// Idle spends k counted rounds sending nothing and returns every message
// received during them (in arrival order). Algorithms use it to wait out a
// scheduled window while remaining active, exactly as waiting vertices do
// in the paper's RoundSum accounting.
//
// Messages accumulate into the vertex's reused receive buffer (see Next),
// so a long quiet window allocates nothing per round; on the pool backend
// the vertex is additionally parked for the whole window and costs no
// scheduler work until a message arrives or the window expires.
func (a *API) Idle(k int) []Msg {
	a.inbox = a.rt.idle(a, k, a.inbox[:0])
	return a.inbox
}
