package exec

import (
	"sync"

	"vavg/internal/graph"
)

// goroutinesBackend is the original engine: one goroutine per vertex, a
// single coordinator goroutine driving global rounds. Every live vertex is
// woken through its own channel and crosses one WaitGroup barrier per
// round, whether it has work or is merely waiting out a window.
type goroutinesBackend struct{}

func (goroutinesBackend) Name() string { return "goroutines" }

type goRuntime struct {
	c    *core
	wg   sync.WaitGroup
	wake []chan struct{}
}

// deliver writes the slab slot directly: every vertex has its own
// goroutine and is woken every round regardless, so no wake bookkeeping
// is needed.
//
//vavg:hotpath
func (rt *goRuntime) deliver(a *API, p int32, c cell) {
	a.core.sendBuf[a.core.g.Rev[p]] = c
}

func (rt *goRuntime) next(a *API, buf []Msg) []Msg {
	a.flush()
	a.round++
	rt.c.rounds[a.v] = a.round
	rt.wg.Done()
	<-rt.wake[a.v]
	if rt.c.aborted {
		panic(abortSentinel{})
	}
	if adv := rt.c.adv; adv != nil && adv.crashNow(a.v, a.round+1) {
		// The vertex was woken for its crash round: it counts as active in
		// it (matching ActivePerRound, which already includes this wake) but
		// executes nothing. The sentinel unwinds to runVertexFrom's recover.
		rt.c.rounds[a.v] = a.round + 1
		rt.c.crashed[a.v] = true
		panic(crashSentinel{})
	}
	return a.collect(buf)
}

func (rt *goRuntime) idle(a *API, k int, buf []Msg) []Msg {
	for i := 0; i < k; i++ {
		buf = rt.next(a, buf)
	}
	return buf
}

func (goroutinesBackend) Run(g *graph.Graph, prog Program, cfg Config) (*Result, error) {
	n := g.N()
	maxRounds := cfg.maxRounds(n)
	c := newCore(g, cfg)
	rt := &goRuntime{c: c, wake: make([]chan struct{}, n)}
	for v := 0; v < n; v++ {
		rt.wake[v] = make(chan struct{}, 1)
	}

	rt.wg.Add(n)
	for v := 0; v < n; v++ {
		go runVertex(rt, c, int32(v), prog, rt.wg.Done)
	}

	active := make([]int32, n)
	for v := range active {
		active[v] = int32(v)
	}
	var restarts eventCursor
	if c.adv != nil {
		restarts = eventCursor{events: c.adv.restarts}
	}
	var activePerRound []int
	round := 0
	for {
		round++
		activePerRound = append(activePerRound, len(active))
		rt.wg.Wait() // all active vertices finished this round

		// Drop vertices that terminated this round.
		live := active[:0]
		for _, v := range active {
			if !c.done[v] {
				live = append(live, v)
			}
		}
		active = live
		if len(active) == 0 && (c.aborted || !restarts.pending()) {
			break
		}
		if round >= maxRounds && !c.aborted {
			c.aborted = true
		}
		c.swap()
		rt.wg.Add(len(active))
		for _, v := range active {
			rt.wake[v] <- struct{}{}
		}
		// Reboot vertices whose restart round is the one just woken: the
		// fresh incarnation is spawned after the buffer swap so its first
		// flush writes the live send buffer, and it joins the active list so
		// the next ActivePerRound entry counts it. An aborted run reboots
		// nobody (matching the other backends' degradation accounting).
		if c.aborted {
			continue
		}
		for _, e := range restarts.take(int32(round + 1)) {
			v := e.v
			if !c.crashed[v] {
				// The vertex terminated before its scheduled crash round, so
				// the crash never happened and there is nothing to reboot.
				continue
			}
			c.done[v] = false
			c.crashed[v] = false
			c.gens[v]++
			rt.wg.Add(1)
			active = append(active, v)
			go runVertexFrom(rt, c, v, prog, rt.wg.Done, int32(round), c.gens[v])
		}
	}
	return c.finish(activePerRound, maxRounds)
}
