package exec

import (
	"errors"
	"fmt"
	gort "runtime"
	"strings"
	"testing"

	"vavg/internal/graph"
)

// stepTestPrograms returns the step-form twin of every blocking program
// in testPrograms: turn-by-turn translations that must reproduce the
// blocking executions byte for byte (same PRNG draw order, same sends in
// the same rounds, same termination rounds).
func stepTestPrograms() map[string]StepProgram {
	return map[string]StepProgram{
		"flood": func(api *API) StepFn {
			best := api.ID()
			i := 0
			var fn StepFn
			fn = func(api *API, inbox []Msg) Step {
				for _, m := range inbox {
					if v, ok := m.Data.(int); ok && v > best {
						best = v
					}
				}
				if i == 4 {
					return Done(best)
				}
				api.Broadcast(best)
				i++
				return Continue(fn)
			}
			return fn
		},
		"idle-mod": func(api *API) StepFn {
			return func(api *API, _ []Msg) Step {
				if k := api.ID() % 17; k > 0 {
					return Sleep(k, func(api *API, _ []Msg) Step {
						return Done(api.ID())
					})
				}
				return Done(api.ID())
			}
		},
		"idle-rand": func(api *API) StepFn {
			return func(api *API, _ []Msg) Step {
				if k := api.Rand().Intn(9); k > 0 {
					return Sleep(k, func(api *API, _ []Msg) Step {
						return Done(api.Rand().Int63())
					})
				}
				return Done(api.Rand().Int63())
			}
		},
		"send-then-idle": func(api *API) StepFn {
			count := func(api *API, inbox []Msg) Step {
				got := 0
				for _, m := range inbox {
					if _, ok := m.Data.(int); ok {
						got++
					}
				}
				return Done(got)
			}
			broadcastThenWait := func(api *API, _ []Msg) Step {
				api.Broadcast(api.ID())
				return Sleep(12, count)
			}
			return func(api *API, _ []Msg) Step {
				if api.ID()%3 == 0 {
					if k := api.ID() % 5; k > 0 {
						return Sleep(k, broadcastThenWait)
					}
					api.Broadcast(api.ID())
				}
				return Sleep(12, count)
			}
		},
		"mixed-lanes": func(api *API) StepFn {
			deg := api.Degree()
			var sum int64
			after := func(api *API, inbox []Msg) Step {
				for _, m := range inbox {
					if x, ok := m.AsInt(); ok {
						sum += x
					}
				}
				return Done(sum)
			}
			t4 := func(api *API, inbox []Msg) Step {
				for _, m := range inbox {
					if x, ok := m.AsInt(); ok {
						sum += x
					}
					if s, ok := m.Data.(string); ok && s == "override" {
						sum += 5000
					}
				}
				if api.ID()%4 == 0 {
					api.BroadcastInt(int64(api.ID() + 1))
				}
				return Sleep(2+api.ID()%3, after)
			}
			t3 := func(api *API, inbox []Msg) Step {
				for _, m := range inbox {
					if x, ok := m.AsInt(); ok {
						sum += x
					} else if v, ok := m.Data.(int); ok {
						sum += int64(v)
					}
				}
				//lint:ignore wiretag deliberate raw negative payload exercising lane equivalence, not a wire.Pack word
				api.BroadcastInt(-7)
				api.BroadcastInt(int64(api.ID()))
				if deg > 0 {
					api.Send(0, "override")
				}
				return Continue(t4)
			}
			t2 := func(api *API, inbox []Msg) Step {
				for _, m := range inbox {
					if s, ok := m.Data.(string); ok && s == "bc" {
						sum++
					}
					if _, ok := m.AsInt(); ok {
						sum += 1 << 20
					}
				}
				for k := 0; k < deg; k++ {
					if k%2 == 0 {
						api.SendInt(k, int64(k+1))
					} else {
						api.Send(k, k+1)
					}
				}
				return Continue(t3)
			}
			return func(api *API, _ []Msg) Step {
				for k := 0; k < deg; k++ {
					api.SendInt(k, int64(1000+k))
				}
				api.Broadcast("bc")
				return Continue(t2)
			}
		},
		"commit-relay": func(api *API) StepFn {
			return func(api *API, _ []Msg) Step {
				if api.ID()%2 == 0 {
					api.Commit()
				}
				return Sleep(3+api.ID()%4, func(api *API, _ []Msg) Step {
					return Done(api.Round())
				})
			}
		},
		"termination-wave": func(api *API) StepFn {
			var fn StepFn
			fn = func(api *API, inbox []Msg) Step {
				for _, m := range inbox {
					if f, ok := m.Data.(Final); ok {
						return Done(f.Output.(int) + 1)
					}
				}
				return Continue(fn)
			}
			return func(api *API, _ []Msg) Step {
				if api.ID() == 0 {
					return Done(0)
				}
				return Continue(fn)
			}
		},
	}
}

func runStep(t *testing.T, g *graph.Graph, prog StepProgram, cfg Config) *Result {
	t.Helper()
	res, err := stepBackend{}.RunStep(g, prog, cfg)
	if err != nil {
		t.Fatalf("step: %v", err)
	}
	return res
}

// TestStepBackendEquivalence is the tentpole gate: the step twin of every
// synthetic program must reproduce the goroutine backend's Result byte
// for byte on every test graph.
func TestStepBackendEquivalence(t *testing.T) {
	for _, shards := range []int{1, 4} {
		withShards(t, shards)
		sprogs := stepTestPrograms()
		graphs, progs := testGraphs(), testPrograms()
		for _, gname := range sortedNames(graphs) {
			for _, pname := range sortedNames(progs) {
				for _, seed := range []int64{1, 42} {
					label := fmt.Sprintf("%dshards/%s/%s/seed%d", shards, gname, pname, seed)
					gb, _ := Lookup("goroutines")
					rg, err := gb.Run(graphs[gname], progs[pname], Config{Seed: seed})
					if err != nil {
						t.Fatalf("%s: goroutines: %v", label, err)
					}
					rs := runStep(t, graphs[gname], sprogs[pname], Config{Seed: seed})
					requireEqualResults(t, label, rg, rs)
				}
			}
		}
	}
}

// TestStepWorkerInvariance is the multicore determinism gate of the
// staged-lane step backend: a Result is a pure function of (graph,
// program, seed, adversary) — shard count and worker count are execution
// layout, not semantics. Every P ∈ {1, 2, 4, 8}, applied as both
// GOMAXPROCS (worker parallelism) and StepShards (lane layout), must
// reproduce the single-shard single-worker run byte for byte, faultless
// and under a drop+crash+restart schedule; a skewed layout (more shards
// than workers) additionally exercises the LPT rebalancer. CI runs this
// under -race, so a racing cross-shard store is an error, not a flake.
func TestStepWorkerInvariance(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"forest": graph.ForestUnion(260, 3, 7),
		"gnm":    graph.Gnm(90, 260, 5),
	}
	progNames := []string{"flood", "send-then-idle", "mixed-lanes", "termination-wave"}
	advFor := func(t *testing.T, n int) *Adversary {
		t.Helper()
		adv := &Adversary{Seed: 0x5eed, DropBar: ^uint64(0) / 8}
		adv.CrashAt = make([]int32, n)
		adv.RestartAt = make([]int32, n)
		for v := 0; v < n; v += 29 {
			adv.CrashAt[v] = int32(2 + v%5)
			if v%58 == 0 {
				adv.RestartAt[v] = adv.CrashAt[v] + 4
			}
		}
		if err := adv.Normalize(n); err != nil {
			t.Fatal(err)
		}
		return adv
	}
	// Faulty runs can strand a termination wave behind a crashed-forever
	// vertex; the budget turns that into a deterministic DNF outcome that
	// must itself be invariant across layouts.
	run := func(t *testing.T, g *graph.Graph, prog StepProgram, adv *Adversary, shards, workers int) (*Result, bool) {
		t.Helper()
		old := gort.GOMAXPROCS(workers)
		defer gort.GOMAXPROCS(old)
		res, err := stepBackend{}.RunStep(g, prog, Config{Seed: 33, MaxRounds: 2048, Adv: adv, StepShards: shards})
		if res == nil {
			t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
		}
		return res, err != nil
	}
	for _, gname := range sortedNames(graphs) {
		g := graphs[gname]
		for _, fault := range []string{"faultless", "dropcrash"} {
			var adv *Adversary
			if fault == "dropcrash" {
				adv = advFor(t, g.N())
			}
			for _, pname := range progNames {
				sprogs := stepTestPrograms()
				base, baseDNF := run(t, g, sprogs[pname], adv, 1, 1)
				check := func(shards, workers int) {
					res, dnf := run(t, g, stepTestPrograms()[pname], adv, shards, workers)
					label := fmt.Sprintf("%s/%s/%s/shards%d.workers%d", gname, fault, pname, shards, workers)
					if dnf != baseDNF {
						t.Errorf("%s: DNF %v, baseline %v", label, dnf, baseDNF)
					}
					requireEqualResults(t, label, base, res)
				}
				for _, p := range []int{2, 4, 8} {
					check(p, p)
				}
				check(8, 3) // skewed: rebalance epochs re-bin shards mid-run
			}
		}
	}
}

// TestStepIdleMessageWake pins the double-buffer hazard for sleeping
// machines: messages flushed into the middle of a long sleep must be
// drained in their delivery round (or a later send would overwrite the
// slot) and arrive in delivery order at the wake turn.
func TestStepIdleMessageWake(t *testing.T) {
	withShards(t, 3)
	g := graph.Path(2)
	prog := func(api *API) StepFn {
		if api.ID() == 0 {
			return func(api *API, _ []Msg) Step {
				return Sleep(3, func(api *API, _ []Msg) Step {
					api.Send(0, "early")
					return Sleep(4, func(api *API, _ []Msg) Step {
						api.Send(0, "late")
						return Sleep(3, func(api *API, _ []Msg) Step {
							return Done(nil)
						})
					})
				})
			}
		}
		return func(api *API, _ []Msg) Step {
			return Sleep(14, func(api *API, inbox []Msg) Step {
				var got []string
				for _, m := range inbox {
					if s, ok := m.Data.(string); ok {
						got = append(got, s)
					}
				}
				return Done(fmt.Sprint(got))
			})
		}
	}
	res := runStep(t, g, prog, Config{Seed: 1})
	if res.Output[1] != "[early late]" {
		t.Errorf("sleep window collected %v, want [early late]", res.Output[1])
	}
}

func TestStepMaxRoundsAborts(t *testing.T) {
	withShards(t, 2)
	g := graph.Ring(8)
	spin := func(api *API) StepFn {
		var fn StepFn
		fn = func(api *API, _ []Msg) Step { return Continue(fn) }
		return fn
	}
	if _, err := (stepBackend{}).RunStep(g, spin, Config{MaxRounds: 40}); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("spin err = %v, want ErrMaxRounds", err)
	}
	// Machines parked in an over-long sleep must be reachable by the abort
	// too (the fast-forward path must stop at MaxRounds).
	park := func(api *API) StepFn {
		return func(api *API, _ []Msg) Step {
			return Sleep(1<<20, func(api *API, _ []Msg) Step { return Done(nil) })
		}
	}
	if _, err := (stepBackend{}).RunStep(g, park, Config{MaxRounds: 40}); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("park err = %v, want ErrMaxRounds", err)
	}
}

func TestStepVertexPanicPropagates(t *testing.T) {
	withShards(t, 2)
	g := graph.Ring(6)
	// A panic during a turn.
	turnPanic := func(api *API) StepFn {
		return func(api *API, _ []Msg) Step {
			if api.ID() == 3 {
				panic("boom")
			}
			return Sleep(2, func(api *API, _ []Msg) Step { return Done(nil) })
		}
	}
	if _, err := (stepBackend{}).RunStep(g, turnPanic, Config{Seed: 1}); err == nil || !strings.Contains(err.Error(), "vertex 3") {
		t.Fatalf("turn panic err = %v, want vertex 3 failure", err)
	}
	// A panic while building the machine.
	bootPanic := func(api *API) StepFn {
		if api.ID() == 2 {
			panic("boot boom")
		}
		return func(api *API, _ []Msg) Step { return Done(nil) }
	}
	if _, err := (stepBackend{}).RunStep(g, bootPanic, Config{Seed: 1}); err == nil || !strings.Contains(err.Error(), "vertex 2") {
		t.Fatalf("boot panic err = %v, want vertex 2 failure", err)
	}
	// Blocking round-crossing calls are a step-program bug, reported as a
	// vertex failure rather than a deadlock.
	callsNext := func(api *API) StepFn {
		return func(api *API, _ []Msg) Step {
			api.Next()
			return Done(nil)
		}
	}
	if _, err := (stepBackend{}).RunStep(g, callsNext, Config{Seed: 1}); err == nil || !strings.Contains(err.Error(), "API.Next") {
		t.Fatalf("Next-in-step err = %v, want API.Next guidance", err)
	}
}

func TestStepDeterminismAcrossRuns(t *testing.T) {
	withShards(t, 4)
	g := graph.ForestUnion(180, 3, 17)
	prog := func(api *API) StepFn {
		relay := func(api *API, _ []Msg) Step {
			api.Broadcast(api.Rand().Int())
			return Continue(func(api *API, _ []Msg) Step {
				return Done(api.Rand().Int63())
			})
		}
		return func(api *API, _ []Msg) Step {
			if k := api.Rand().Intn(6); k > 0 {
				return Sleep(k, relay)
			}
			return relay(api, nil)
		}
	}
	r1 := runStep(t, g, prog, Config{Seed: 42})
	r2 := runStep(t, g, prog, Config{Seed: 42})
	requireEqualResults(t, "step-determinism", r1, r2)
}

// TestStepScratchReuseIsClean interleaves step runs of different sizes so
// recycled API and StepFn slabs from a larger run are reused by a smaller
// one; results must match fresh first runs exactly.
func TestStepScratchReuseIsClean(t *testing.T) {
	withShards(t, 4)
	sprogs := stepTestPrograms()
	names := []string{"flood", "send-then-idle", "mixed-lanes", "termination-wave"}
	graphs := []*graph.Graph{graph.ForestUnion(300, 3, 7), graph.Ring(16), graph.Gnm(90, 260, 5)}
	cfg := Config{Seed: 13}
	base := map[string]*Result{}
	for _, g := range graphs {
		for _, pn := range names {
			base[g.Name+"/"+pn] = runStep(t, g, sprogs[pn], cfg)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for i := len(graphs) - 1; i >= 0; i-- {
			g := graphs[i]
			for _, pn := range names {
				r := runStep(t, g, sprogs[pn], cfg)
				requireEqualResults(t, fmt.Sprintf("reuse%d/%s/%s", pass, g.Name, pn), base[g.Name+"/"+pn], r)
			}
		}
	}
}

// TestStepFallback covers the blocking-form paths of the step backend:
// Backend.Run on a goroutine Program delegates to the automatic choice,
// and RunSpec falls back when the Spec has no step form.
func TestStepFallback(t *testing.T) {
	withShards(t, 2)
	g := graph.Ring(32)
	prog := testPrograms()["flood"]
	gb, _ := Lookup("goroutines")
	want, err := gb.Run(g, prog, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := Lookup("step")
	got, err := sb.Run(g, prog, Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "step-fallback", want, got)

	viaSpec, err := RunSpec(g, Spec{Program: prog}, "step", Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "runspec-fallback", want, viaSpec)
}

// TestRunSpec covers form selection: auto prefers the step form, explicit
// blocking backends use the blocking form, and malformed Specs error.
func TestRunSpec(t *testing.T) {
	withShards(t, 2)
	g := graph.Ring(48)
	spec := Spec{Program: testPrograms()["flood"], Step: stepTestPrograms()["flood"]}
	want, err := RunSpec(g, spec, "goroutines", Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", "auto", "step", "pool"} {
		got, err := RunSpec(g, spec, name, Config{Seed: 3})
		if err != nil {
			t.Fatalf("RunSpec(%q): %v", name, err)
		}
		requireEqualResults(t, "runspec/"+name, want, got)
	}
	if _, err := RunSpec(g, Spec{}, "", Config{}); err == nil {
		t.Error("empty Spec should fail")
	}
	if _, err := RunSpec(g, Spec{Step: spec.Step}, "goroutines", Config{}); err == nil {
		t.Error("step-only Spec on a blocking backend should fail")
	}
	if _, err := RunSpec(g, spec, "nope", Config{}); err == nil || !strings.Contains(err.Error(), "step") {
		t.Errorf("unknown backend error should list registered names, got %v", err)
	}
}

// TestSelectUnknownListsBackends pins the satellite fix: the error for an
// unknown backend name must name every registered backend.
func TestSelectUnknownListsBackends(t *testing.T) {
	_, err := Select("warp", 4)
	if err == nil {
		t.Fatal("Select(warp) should fail")
	}
	for _, want := range []string{"goroutines", "pool", "step", "auto"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}
