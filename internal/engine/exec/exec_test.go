package exec

import (
	"errors"
	"fmt"
	"reflect"
	gort "runtime"
	"sort"
	"testing"

	"vavg/internal/graph"
)

// withShards forces the pool backend to use at least n shards so the
// cross-shard paths (message wakes, pending drains) are exercised even on
// single-core test machines.
func withShards(t *testing.T, n int) {
	t.Helper()
	old := gort.GOMAXPROCS(n)
	t.Cleanup(func() { gort.GOMAXPROCS(old) })
}

// The synthetic programs cover the scheduling-relevant behaviors: dense
// flooding, long idle windows, mid-window message arrival, termination
// waves, randomized idling, and commitment.
func testPrograms() map[string]Program {
	return map[string]Program{
		"flood": func(api *API) any {
			best := api.ID()
			for i := 0; i < 4; i++ {
				api.Broadcast(best)
				for _, m := range api.Next() {
					if v, ok := m.Data.(int); ok && v > best {
						best = v
					}
				}
			}
			return best
		},
		"idle-mod": func(api *API) any {
			api.Idle(api.ID() % 17)
			return api.ID()
		},
		"idle-rand": func(api *API) any {
			api.Idle(api.Rand().Intn(9))
			return api.Rand().Int63()
		},
		"send-then-idle": func(api *API) any {
			// Low-ID vertices broadcast into their neighbors' idle windows
			// at staggered rounds; everyone idles for a long window and
			// must collect exactly the mid-window traffic.
			if api.ID()%3 == 0 {
				api.Idle(api.ID() % 5)
				api.Broadcast(api.ID())
			}
			got := 0
			for _, m := range api.Idle(12) {
				if _, ok := m.Data.(int); ok {
					got++
				}
			}
			return got
		},
		"mixed-lanes": func(api *API) any {
			// Exercises both payload lanes and the broadcast write-through
			// against the flat outbox: staged sends cancelled by a broadcast,
			// a broadcast partially overridden by a later send, double
			// broadcasts, alternating lanes across neighbors, and lane
			// traffic into idle windows. Message counts must stay identical
			// across backends through all of it.
			deg := api.Degree()
			var sum int64
			// Staged fast-lane sends superseded by a general-lane broadcast.
			for k := 0; k < deg; k++ {
				api.SendInt(k, int64(1000+k))
			}
			api.Broadcast("bc")
			for _, m := range api.Next() {
				if s, ok := m.Data.(string); ok && s == "bc" {
					sum++
				}
				if _, ok := m.AsInt(); ok {
					sum += 1 << 20 // cancelled sends must never arrive
				}
			}
			// Alternating lanes across neighbors in one round.
			for k := 0; k < deg; k++ {
				if k%2 == 0 {
					api.SendInt(k, int64(k+1))
				} else {
					api.Send(k, k+1)
				}
			}
			for _, m := range api.Next() {
				if x, ok := m.AsInt(); ok {
					sum += x
				} else if v, ok := m.Data.(int); ok {
					sum += int64(v)
				}
			}
			// Double broadcast (second write-through overwrites the first),
			// then a single staged send overriding one slot of it.
			//lint:ignore wiretag deliberate raw negative payload exercising lane equivalence, not a wire.Pack word
			api.BroadcastInt(-7)
			api.BroadcastInt(int64(api.ID()))
			if deg > 0 {
				api.Send(0, "override")
			}
			for _, m := range api.Next() {
				if x, ok := m.AsInt(); ok {
					sum += x
				}
				if s, ok := m.Data.(string); ok && s == "override" {
					sum += 5000
				}
			}
			// Lane traffic into staggered idle windows.
			if api.ID()%4 == 0 {
				api.BroadcastInt(int64(api.ID() + 1))
			}
			for _, m := range api.Idle(2 + api.ID()%3) {
				if x, ok := m.AsInt(); ok {
					sum += x
				}
			}
			return sum
		},
		"commit-relay": func(api *API) any {
			if api.ID()%2 == 0 {
				api.Commit()
			}
			api.Idle(3 + api.ID()%4)
			return api.Round()
		},
		"termination-wave": func(api *API) any {
			// Vertex 0 terminates immediately; everyone else terminates one
			// round after first hearing a Final, propagating a wave.
			if api.ID() == 0 {
				return 0
			}
			for {
				for _, m := range api.Next() {
					if f, ok := m.Data.(Final); ok {
						return f.Output.(int) + 1
					}
				}
			}
		},
	}
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"ring":    graph.Ring(64),
		"path":    graph.Path(33),
		"star":    graph.Star(40),
		"forests": graph.ForestUnion(150, 3, 7),
		"gnm":     graph.Gnm(90, 260, 5),
		"tree":    graph.RandomTree(77, 3),
	}
}

// sortedNames returns m's keys in ascending order, so test subcases run in
// a deterministic sequence regardless of map-iteration order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func runBoth(t *testing.T, g *graph.Graph, prog Program, cfg Config) (*Result, *Result) {
	t.Helper()
	gb, _ := Lookup("goroutines")
	pb, _ := Lookup("pool")
	rg, err := gb.Run(g, prog, cfg)
	if err != nil {
		t.Fatalf("goroutines: %v", err)
	}
	rp, err := pb.Run(g, prog, cfg)
	if err != nil {
		t.Fatalf("pool: %v", err)
	}
	return rg, rp
}

func requireEqualResults(t *testing.T, label string, rg, rp *Result) {
	t.Helper()
	if !reflect.DeepEqual(rg.Rounds, rp.Rounds) {
		t.Errorf("%s: Rounds differ:\n goroutines %v\n pool %v", label, rg.Rounds, rp.Rounds)
	}
	if !reflect.DeepEqual(rg.CommitRounds, rp.CommitRounds) {
		t.Errorf("%s: CommitRounds differ", label)
	}
	if !reflect.DeepEqual(rg.Output, rp.Output) {
		t.Errorf("%s: Outputs differ", label)
	}
	if !reflect.DeepEqual(rg.ActivePerRound, rp.ActivePerRound) {
		t.Errorf("%s: ActivePerRound differ:\n goroutines %v\n pool %v", label, rg.ActivePerRound, rp.ActivePerRound)
	}
	if rg.TotalRounds != rp.TotalRounds || rg.RoundSum != rp.RoundSum || rg.Messages != rp.Messages {
		t.Errorf("%s: totals differ: goroutines (%d,%d,%d) pool (%d,%d,%d)", label,
			rg.TotalRounds, rg.RoundSum, rg.Messages, rp.TotalRounds, rp.RoundSum, rp.Messages)
	}
}

func TestCrossBackendEquivalence(t *testing.T) {
	withShards(t, 4)
	graphs, progs := testGraphs(), testPrograms()
	for _, gname := range sortedNames(graphs) {
		for _, pname := range sortedNames(progs) {
			for _, seed := range []int64{1, 42} {
				label := fmt.Sprintf("%s/%s/seed%d", gname, pname, seed)
				rg, rp := runBoth(t, graphs[gname], progs[pname], Config{Seed: seed})
				requireEqualResults(t, label, rg, rp)
			}
		}
	}
}

func TestPoolSingleShardEquivalence(t *testing.T) {
	withShards(t, 1)
	g := graph.ForestUnion(120, 3, 11)
	progs := testPrograms()
	for _, pname := range sortedNames(progs) {
		rg, rp := runBoth(t, g, progs[pname], Config{Seed: 5})
		requireEqualResults(t, "1shard/"+pname, rg, rp)
	}
}

// TestPoolIdleMessageWake pins the subtle case the active-set scheduler
// must get right: a message flushed into the middle of a long idle window
// must wake the parked receiver for exactly that round (or the buffered
// slot would be overwritten by a later send) and be returned in arrival
// order.
func TestPoolIdleMessageWake(t *testing.T) {
	withShards(t, 3)
	g := graph.Path(2)
	prog := func(api *API) any {
		if api.ID() == 0 {
			// Two sends to the same neighbor in distinct rounds; without a
			// mid-window wake the second would overwrite the first.
			api.Idle(3)
			api.Send(0, "early")
			api.Idle(4)
			api.Send(0, "late")
			api.Idle(3)
			return nil
		}
		var got []string
		for _, m := range api.Idle(14) {
			if s, ok := m.Data.(string); ok {
				got = append(got, s)
			}
		}
		return fmt.Sprint(got)
	}
	pb, _ := Lookup("pool")
	res, err := pb.Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[1] != "[early late]" {
		t.Errorf("idle window collected %v, want [early late]", res.Output[1])
	}
	gb, _ := Lookup("goroutines")
	rg, err := gb.Run(g, prog, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "idle-wake", rg, res)
}

// TestPoolFastForward checks that an all-idle stretch is skipped without
// distorting the accounting: ActivePerRound still pays every round.
func TestPoolFastForward(t *testing.T) {
	withShards(t, 2)
	g := graph.Ring(16)
	prog := func(api *API) any {
		api.Idle(500)
		return api.Round()
	}
	rg, rp := runBoth(t, g, prog, Config{Seed: 9})
	requireEqualResults(t, "fast-forward", rg, rp)
	if len(rp.ActivePerRound) != 501 {
		t.Errorf("ActivePerRound has %d entries, want 501", len(rp.ActivePerRound))
	}
}

func TestPoolAccountingIdentities(t *testing.T) {
	withShards(t, 4)
	g := graph.ForestUnion(300, 2, 13)
	prog := func(api *API) any {
		api.Idle(api.ID() % 23)
		return api.ID()
	}
	pb, _ := Lookup("pool")
	res, err := pb.Run(g, prog, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, a := range res.ActivePerRound {
		sum += int64(a)
	}
	if sum != res.RoundSum {
		t.Errorf("sum of ActivePerRound = %d, RoundSum = %d", sum, res.RoundSum)
	}
	if res.VertexAverage() > float64(res.TotalRounds) {
		t.Errorf("VertexAverage %.2f exceeds TotalRounds %d", res.VertexAverage(), res.TotalRounds)
	}
}

func TestPoolMaxRoundsAborts(t *testing.T) {
	withShards(t, 2)
	g := graph.Ring(8)
	spin := func(api *API) any {
		for {
			api.Next()
		}
	}
	pb, _ := Lookup("pool")
	if _, err := pb.Run(g, spin, Config{MaxRounds: 40}); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("spin err = %v, want ErrMaxRounds", err)
	}
	// Vertices parked in an over-long idle window must be reachable by the
	// abort too (the fast-forward path must stop at MaxRounds).
	park := func(api *API) any {
		api.Idle(1 << 20)
		return nil
	}
	if _, err := pb.Run(g, park, Config{MaxRounds: 40}); !errors.Is(err, ErrMaxRounds) {
		t.Fatalf("park err = %v, want ErrMaxRounds", err)
	}
}

func TestPoolVertexPanicPropagates(t *testing.T) {
	withShards(t, 2)
	g := graph.Ring(6)
	prog := func(api *API) any {
		if api.ID() == 3 {
			panic("boom")
		}
		api.Idle(2)
		return nil
	}
	pb, _ := Lookup("pool")
	if _, err := pb.Run(g, prog, Config{Seed: 1}); err == nil {
		t.Fatal("expected error from panicking vertex")
	}
}

func TestPoolDeterminismAcrossRuns(t *testing.T) {
	withShards(t, 4)
	g := graph.ForestUnion(180, 3, 17)
	prog := func(api *API) any {
		api.Idle(api.Rand().Intn(6))
		api.Broadcast(api.Rand().Int())
		api.Next()
		return api.Rand().Int63()
	}
	pb, _ := Lookup("pool")
	r1, err := pb.Run(g, prog, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := pb.Run(g, prog, Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	requireEqualResults(t, "determinism", r1, r2)
}

func TestSelect(t *testing.T) {
	b, err := Select("", PoolThreshold-1)
	if err != nil || b.Name() != "goroutines" {
		t.Errorf("Select small = %v, %v", b, err)
	}
	b, err = Select("auto", PoolThreshold)
	if err != nil || b.Name() != "pool" {
		t.Errorf("Select large = %v, %v", b, err)
	}
	b, err = Select("pool", 4)
	if err != nil || b.Name() != "pool" {
		t.Errorf("Select explicit = %v, %v", b, err)
	}
	if _, err = Select("nope", 4); err == nil {
		t.Error("Select unknown backend should fail")
	}
	want := []string{"goroutines", "pool", "step"}
	if !reflect.DeepEqual(Names(), want) {
		t.Errorf("Names() = %v, want %v", Names(), want)
	}
}

// TestScratchReuseIsClean exercises the sync.Pool run-scratch recycling:
// interleaved runs of different sizes and programs on both backends must
// reproduce the results of fresh first runs exactly, proving recycled
// cell slabs, done flags, and message counters carry no state between
// runs (shrinking reslices must zero the reused prefix).
func TestScratchReuseIsClean(t *testing.T) {
	withShards(t, 4)
	progs := testPrograms()
	graphs := testGraphs()
	// Fresh baselines, one per (graph, program).
	type cellKey struct{ g, p string }
	base := map[cellKey]*Result{}
	order := []cellKey{}
	for gname := range graphs {
		for pname := range progs {
			order = append(order, cellKey{gname, pname})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].g != order[j].g {
			return order[i].g < order[j].g
		}
		return order[i].p < order[j].p
	})
	cfg := Config{Seed: 13, MaxRounds: 1 << 20}
	for _, k := range order {
		rg, rp := runBoth(t, graphs[k.g], progs[k.p], cfg)
		requireEqualResults(t, "baseline/"+k.g+"/"+k.p, rg, rp)
		base[k] = rg
	}
	// Re-run the whole matrix twice more: every run now draws recycled
	// scratch whose previous occupant had a different size or program.
	for pass := 0; pass < 2; pass++ {
		for i := len(order) - 1; i >= 0; i-- {
			k := order[i]
			rg, rp := runBoth(t, graphs[k.g], progs[k.p], cfg)
			requireEqualResults(t, fmt.Sprintf("reuse%d/%s/%s vs pool", pass, k.g, k.p), rg, rp)
			requireEqualResults(t, fmt.Sprintf("reuse%d/%s/%s vs fresh", pass, k.g, k.p), base[k], rg)
		}
	}
}
