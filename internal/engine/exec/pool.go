package exec

import (
	"math"
	gort "runtime"
	"sync"
	"sync/atomic"

	"vavg/internal/graph"
)

// poolBackend schedules vertices with an explicit active-set scheduler on
// top of contiguous vertex shards, one worker per GOMAXPROCS core.
//
// Scheduling states of a live vertex:
//
//   - runnable: parked in Next; it must be woken every round (Next returns
//     once per round by contract). Kept in the shard's runnable list.
//   - idle-parked: parked inside Idle(k). It costs zero scheduler work per
//     round: its window expiry sits in the shard's timer heap, and it is
//     woken early only when a message is actually flushed to it (senders
//     mark the receiving round in a per-vertex atomic and enqueue a single
//     wake per receiver per round). On an early wake it drains its inbox
//     and parks again until the window expires.
//
// The round protocol needs one synchronization per shard, not per vertex:
// the coordinator swaps the global double buffer, then releases every
// shard worker; each worker wakes its shard's wake-set, waits on the
// shard-local WaitGroup, and reports back. When no vertex in the system is
// runnable — every live vertex is idle-parked with no pending message —
// the coordinator fast-forwards the global round counter to the earliest
// timer in O(shards) instead of grinding through empty rounds.
//
// Determinism: every observable effect (inbox order, PRNG streams, round
// counters, message counts) is a pure function of the vertex and the
// round, so the Result is byte-identical to the goroutines backend's.
type poolBackend struct{}

func (poolBackend) Name() string { return "pool" }

// idleEntry is a (round, vertex) event: a timer expiry or a message wake.
type idleEntry struct {
	round int32
	v     int32
}

type shard struct {
	rt *poolRuntime
	lo int32
	hi int32
	// first marks the spawn round: vertices start executing round 1 the
	// moment they are spawned (already counted in wg), so the first
	// runRound only waits for the barrier instead of waking anyone. This
	// lets short-lived vertex goroutines die during the spawn loop and
	// recycle their stacks, instead of forcing n parked goroutines (and n
	// live stacks) to coexist before round 1.
	first bool
	// wg is the shard-local round barrier: one Add per woken vertex, one
	// Done per vertex park (or termination).
	wg   sync.WaitGroup
	wake []chan struct{} // indexed by v-lo, capacity 1
	// start releases the worker for one round; closed to stop it.
	start chan struct{}
	// runnable holds the live vertices that must run every round. Owned by
	// the worker (and by parked-vertex writes ordered through wg).
	runnable []int32
	wakeBuf  []int32
	// idleExp[v-lo] is the round in which v's Idle window expires, or 0 if
	// v is not idle-parked. Written by v before parking, read and cleared
	// by the worker between barriers.
	idleExp []int32
	// timers is a min-heap of idle-window expiries. Pushed by vertices
	// entering Idle (under timerMu, concurrent within a shard), popped by
	// the worker between barriers.
	timerMu sync.Mutex
	timers  []idleEntry
	// pending holds message wakes: entry (T, v) means a message addressed
	// to v was flushed for delivery in round T. Senders from any shard
	// append under pendMu, at most once per (v, T) thanks to msgRound.
	pendMu  sync.Mutex
	pending []idleEntry
	// msgRound[v-lo] is the latest delivery round already enqueued in
	// pending for v; accessed atomically by senders.
	msgRound []int32
	// live counts non-terminated vertices in the shard.
	live int
	// crashes walks this shard's slice of the adversary's crash schedule
	// (empty on fault-free runs). Runnable victims self-crash at their
	// normal wake; the cursor exists to force-wake idle-parked victims,
	// which would otherwise sleep through their crash round.
	crashes eventCursor
	// spawned holds vertices rebooted by the coordinator this round; the
	// worker folds them into the runnable set after the barrier, exactly
	// like the spawn round's implicit wake-set.
	spawned []int32
}

type poolRuntime struct {
	c         *core
	shards    []*shard
	shardSize int32
	// restarts walks the adversary's restart schedule (empty on fault-free
	// runs); the coordinator consumes it, so reboots land in the same
	// round on every backend regardless of sharding.
	restarts eventCursor
	// round is the current global round. Written by the coordinator while
	// every vertex is parked, read by vertices during their turns (the
	// wake channels order the accesses).
	round int32
}

func (rt *poolRuntime) shardOf(v int32) *shard { return rt.shards[v/rt.shardSize] }

// deliver writes the slab slot directly (single writer per slot) and
// notifies the receiver's shard so an idle-parked receiver is woken.
//
//vavg:hotpath
func (rt *poolRuntime) deliver(a *API, p int32, c cell) {
	g := a.core.g
	a.core.sendBuf[g.Rev[p]] = c
	rt.notifySend(g.Adj[p])
}

// notifySend marks receiver recv as having a message deliverable next
// round, waking it if it is idle-parked. The msgRound CAS deduplicates to
// one pending entry per receiver per round; entries for receivers that
// turn out to be runnable (or terminated) are dropped at drain time.
//
//vavg:hotpath
func (rt *poolRuntime) notifySend(recv int32) {
	s := rt.shardOf(recv)
	i := recv - s.lo
	t := rt.round + 1
	for {
		old := atomic.LoadInt32(&s.msgRound[i])
		if old >= t {
			return
		}
		if atomic.CompareAndSwapInt32(&s.msgRound[i], old, t) {
			s.pendMu.Lock()
			s.pending = append(s.pending, idleEntry{t, recv})
			s.pendMu.Unlock()
			return
		}
	}
}

// next crosses the round barrier for an active vertex.
//
//vavg:hotpath
func (rt *poolRuntime) next(a *API, buf []Msg) []Msg {
	a.flush()
	a.round++
	rt.c.rounds[a.v] = a.round
	s := rt.shardOf(a.v)
	s.wg.Done()
	<-s.wake[a.v-s.lo]
	if rt.c.aborted {
		panic(abortSentinel{})
	}
	if adv := rt.c.adv; adv != nil && adv.crashNow(a.v, rt.round) {
		rt.c.rounds[a.v] = rt.round
		rt.c.crashed[a.v] = true
		panic(crashSentinel{})
	}
	return a.collect(buf)
}

// idle parks the vertex for k rounds. The window spans global rounds
// W..W+k-1 where W is the round the vertex is currently executing; wakes
// happen in rounds W+1..W+k (early on message arrival, finally at expiry
// E = W+k), each collecting the previous round's deliveries — exactly the
// rounds and inbox contents a loop of k Next calls would observe.
//
//vavg:hotpath
func (rt *poolRuntime) idle(a *API, k int, buf []Msg) []Msg {
	if k <= 0 {
		return buf
	}
	if k == 1 {
		return rt.next(a, buf)
	}
	a.flush()
	s := rt.shardOf(a.v)
	li := a.v - s.lo
	e := a.round + 1 + int32(k) // expiry round: final wake and collect
	s.idleExp[li] = e
	s.timerMu.Lock()
	heapPush(&s.timers, idleEntry{e, a.v})
	s.timerMu.Unlock()
	all := buf
	for {
		s.wg.Done()
		<-s.wake[li]
		if rt.c.aborted {
			panic(abortSentinel{})
		}
		w := rt.round
		if adv := rt.c.adv; adv != nil && adv.crashNow(a.v, w) {
			// Force-woken by the shard's crash cursor (or woken anyway) in
			// the crash round: the window ends here, mid-flight.
			rt.c.rounds[a.v] = w
			rt.c.crashed[a.v] = true
			panic(crashSentinel{})
		}
		a.round = w - 1
		rt.c.rounds[a.v] = a.round
		all = a.collect(all)
		if w == e {
			// The worker cleared idleExp and moved the vertex back to the
			// runnable list before this wake.
			return all
		}
	}
}

// runRound wakes this shard's wake-set for the current global round and
// waits for every woken vertex to park again. In the spawn round the
// vertices are already running (and already counted in wg), so only the
// barrier wait and the retirement pass happen.
func (s *shard) runRound() {
	rt := s.rt
	if s.first {
		s.first = false
	} else {
		w := rt.round
		ws := append(s.wakeBuf[:0], s.runnable...)
		if rt.c.aborted {
			// Abort: wake everything, including idle-parked vertices, so
			// every Program unwinds via the abort sentinel.
			for v := s.lo; v < s.hi; v++ {
				if s.idleExp[v-s.lo] != 0 && !rt.c.done[v] {
					s.idleExp[v-s.lo] = 0
					s.runnable = append(s.runnable, v)
					ws = append(ws, v)
				}
			}
			s.timers = s.timers[:0]
		} else {
			// Crash events first: an idle-parked victim must be force-woken
			// so it unwinds in exactly its crash round (runnable victims are
			// woken below anyway and self-crash at the wake-site check).
			// Clearing idleExp here keeps the stale timer entry and any
			// pending message wake from waking the vertex a second time.
			if rt.c.adv != nil {
				for _, e := range s.crashes.take(w) {
					li := e.v - s.lo
					if rt.c.done[e.v] || s.idleExp[li] == 0 {
						continue
					}
					s.idleExp[li] = 0
					s.runnable = append(s.runnable, e.v)
					ws = append(ws, e.v)
				}
			}
			// Expired idle windows rejoin the runnable set for their final
			// collect.
			for len(s.timers) > 0 && s.timers[0].round <= w {
				e := heapPop(&s.timers)
				li := e.v - s.lo
				if s.idleExp[li] == e.round {
					s.idleExp[li] = 0
					s.runnable = append(s.runnable, e.v)
					ws = append(ws, e.v)
				}
			}
			// Message wakes for this round: wake idle-parked receivers
			// early; drop entries for runnable or terminated receivers
			// (they collect themselves or never will). Entries stamped for
			// a later round (pushed concurrently by shards already
			// executing this round) stay queued.
			s.pendMu.Lock()
			keep := s.pending[:0]
			for _, e := range s.pending {
				if e.round > w {
					keep = append(keep, e)
					continue
				}
				if s.idleExp[e.v-s.lo] > w {
					ws = append(ws, e.v)
				}
			}
			s.pending = keep
			s.pendMu.Unlock()
		}
		s.wg.Add(len(ws))
		for _, v := range ws {
			s.wake[v-s.lo] <- struct{}{}
		}
		s.wakeBuf = ws[:0]
	}
	s.wg.Wait()
	// Retire terminated vertices and newly idle-parked ones from the
	// runnable list.
	nr := s.runnable[:0]
	for _, v := range s.runnable {
		if rt.c.done[v] {
			s.live--
			continue
		}
		if s.idleExp[v-s.lo] != 0 {
			continue
		}
		nr = append(nr, v)
	}
	s.runnable = nr
	// Fold in vertices the coordinator rebooted this round: they ran their
	// first round unscheduled (pre-counted in wg, like the spawn round) and
	// join the runnable set only now, so they are never woken while already
	// running.
	if len(s.spawned) > 0 {
		for _, v := range s.spawned {
			if rt.c.done[v] {
				s.live--
				continue
			}
			if s.idleExp[v-s.lo] != 0 {
				continue
			}
			s.runnable = append(s.runnable, v)
		}
		s.spawned = s.spawned[:0]
	}
}

// nextEventRound returns the earliest upcoming round in which any vertex
// is runnable: cur+1 if some shard has runnable vertices or pending
// message wakes, otherwise the earliest idle-window expiry.
func (rt *poolRuntime) nextEventRound(cur int) int {
	next := math.MaxInt
	for _, s := range rt.shards {
		if len(s.runnable) > 0 {
			return cur + 1
		}
		s.pendMu.Lock()
		np := len(s.pending)
		s.pendMu.Unlock()
		if np > 0 {
			return cur + 1
		}
		if len(s.timers) > 0 && int(s.timers[0].round) < next {
			next = int(s.timers[0].round)
		}
		if r := s.crashes.nextRound(); r < next {
			next = r
		}
	}
	if r := rt.restarts.nextRound(); r < next {
		next = r
	}
	if next == math.MaxInt {
		// Live vertices but no scheduled event: livelock; advance round by
		// round until MaxRounds aborts the run.
		return cur + 1
	}
	return next
}

func (poolBackend) Run(g *graph.Graph, prog Program, cfg Config) (*Result, error) {
	n := g.N()
	maxRounds := cfg.maxRounds(n)
	c := newCore(g, cfg)

	nshards := gort.GOMAXPROCS(0)
	if nshards > n {
		nshards = n
	}
	if nshards < 1 {
		nshards = 1
	}
	shardSize := (n + nshards - 1) / nshards
	rt := &poolRuntime{c: c, shardSize: int32(shardSize)}
	for lo := 0; lo < n; lo += shardSize {
		hi := lo + shardSize
		if hi > n {
			hi = n
		}
		s := &shard{
			rt:       rt,
			lo:       int32(lo),
			hi:       int32(hi),
			first:    true,
			wake:     make([]chan struct{}, hi-lo),
			start:    make(chan struct{}),
			runnable: make([]int32, 0, hi-lo),
			idleExp:  make([]int32, hi-lo),
			msgRound: make([]int32, hi-lo),
			live:     hi - lo,
		}
		for i := range s.wake {
			s.wake[i] = make(chan struct{}, 1)
			s.runnable = append(s.runnable, int32(lo+i))
		}
		rt.shards = append(rt.shards, s)
	}
	if c.adv != nil {
		rt.restarts = eventCursor{events: c.adv.restarts}
		for _, s := range rt.shards {
			s.crashes = eventCursor{events: shardEvents(c.adv.crashes, s.lo, s.hi)}
		}
	}

	// Round 1 is the spawn round: every vertex goroutine starts executing
	// immediately, pre-counted in its shard's barrier. Vertices that finish
	// within the round die during the spawn loop and their stacks are
	// recycled for the next spawn.
	rt.round = 1
	for _, s := range rt.shards {
		s.wg.Add(int(s.hi - s.lo))
	}
	for v := 0; v < n; v++ {
		s := rt.shardOf(int32(v))
		go runVertex(rt, c, int32(v), prog, s.wg.Done)
	}

	var roundWG sync.WaitGroup
	for _, s := range rt.shards {
		go func(s *shard) {
			for range s.start {
				s.runRound()
				roundWG.Done()
			}
		}(s)
	}

	activePerRound := []int{n}
	round := 1
	for {
		// Complete the current round across all shards.
		roundWG.Add(len(rt.shards))
		for _, s := range rt.shards {
			s.start <- struct{}{}
		}
		roundWG.Wait()
		if round >= maxRounds && !c.aborted {
			c.aborted = true
		}
		live := 0
		for _, s := range rt.shards {
			live += s.live
		}
		if live == 0 && (c.aborted || !rt.restarts.pending()) {
			break
		}
		// Fast-forward rounds in which every live vertex is idle-parked
		// with no deliverable message: they all pay the rounds (the
		// paper's waiting-is-active accounting) but cost O(shards) here.
		// nextEventRound includes the adversary's schedule, so no crash or
		// restart round is ever skipped.
		if !c.aborted {
			next := rt.nextEventRound(round)
			for round+1 < next && !c.aborted {
				round++
				activePerRound = append(activePerRound, live)
				if round >= maxRounds {
					c.aborted = true
				}
			}
		}
		round++
		rt.round = int32(round)
		c.swap()
		// Reboot vertices whose restart round is the new round: the fresh
		// incarnation starts immediately (pre-counted in its shard's
		// barrier, like the spawn round) strictly after the buffer swap, so
		// its first flush writes the live send buffer. It counts in this
		// round's ActivePerRound entry, matching the goroutines backend.
		spawned := 0
		if c.adv != nil && !c.aborted {
			for _, e := range rt.restarts.take(int32(round)) {
				v := e.v
				if !c.crashed[v] {
					// Terminated before its scheduled crash: nothing to reboot.
					continue
				}
				s := rt.shardOf(v)
				c.done[v] = false
				c.crashed[v] = false
				c.gens[v]++
				s.live++
				s.wg.Add(1)
				s.spawned = append(s.spawned, v)
				spawned++
				go runVertexFrom(rt, c, v, prog, s.wg.Done, int32(round-1), c.gens[v])
			}
		}
		activePerRound = append(activePerRound, live+spawned)
	}
	for _, s := range rt.shards {
		close(s.start)
	}
	return c.finish(activePerRound, maxRounds)
}

// heapPush / heapPop maintain a binary min-heap of idleEntry by round.
func heapPush(h *[]idleEntry, e idleEntry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].round <= s[i].round {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func heapPop(h *[]idleEntry) idleEntry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].round < s[min].round {
			min = l
		}
		if r < len(s) && s[r].round < s[min].round {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}
