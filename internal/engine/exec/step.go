package exec

import (
	"math"
	gort "runtime"
	"slices"
	"sort"
	"sync"
	"unsafe"

	"vavg/internal/graph"
)

// The step backend runs vertices as explicit per-round state machines
// instead of blocking goroutine Programs: no per-vertex goroutine, no
// stack, no park/wake synchronization. A vertex is a StepFn — one turn of
// work — stored in a flat per-shard array and invoked in ascending vertex
// order by the shard's driver every round the vertex is due. Terminated
// vertices are compacted out of the shard's active list, and sleeping
// vertices (the step form of API.Idle) sit in a timer heap, so per-round
// cost is O(active vertices + delivered messages), not O(n).
//
// The step form expresses the same executions as the blocking form, turn
// by turn: a blocking Program is a sequence of code blocks separated by
// Next/Idle calls, and its step translation returns each block as one
// StepFn whose Step verdict (Continue / Sleep / Done) stands in for the
// blocking call that ended the block. Because all observable run state
// (PRNG streams, inbox order, round and message accounting) is keyed by
// (vertex, round) exactly as in the other backends, a faithful
// translation produces byte-identical Results — the cross-backend
// equivalence suite enforces this for every dual-registered algorithm.
//
// Multicore execution splits each round into two barrier-separated
// phases, both free of locks and atomics:
//
//	exec:  each worker runs its owned shards' due turns. Same-shard
//	       deliveries write the slab and wake bookkeeping directly (the
//	       worker owns that state); cross-shard deliveries are appended to
//	       the (source shard, destination shard) staging lane — a flat
//	       append-only buffer only this worker writes this phase.
//	merge: each worker drains the lanes addressed to its owned shards,
//	       applying slab writes and wake entries single-threaded per
//	       destination shard, iterating source shards in ascending order.
//
// Lane entries are appended in ascending sender order (turns run in
// vertex order) with program-order slot writes per sender, so the merge
// applies cross-shard deliveries in (source shard, sender vertex, slot)
// order and last-write-wins slot semantics are preserved exactly.
// Results are therefore byte-identical at any worker count — and at any
// shard count, since every observable is keyed by (vertex, round), never
// by shard layout.

// StepFn is one turn of a step-form vertex program: it receives the
// messages delivered since its last turn (ordered by neighbor index;
// accumulated across the whole window after a Sleep) and returns a Step
// verdict saying how the vertex proceeds. The inbox slice is a per-vertex
// buffer reused between turns — retaining messages requires copying, as
// with API.Next. A StepFn must not call API.Next or API.Idle; rounds are
// crossed by returning.
type StepFn func(api *API, inbox []Msg) Step

// StepProgram builds a vertex's state machine: it is called once per
// vertex before round 1 and returns the StepFn for the vertex's first
// turn (invoked in round 1 with an empty inbox). Per-vertex state lives in
// the closure; the API handle stays valid for the whole run.
type StepProgram func(api *API) StepFn

// Step is the verdict a StepFn returns for one turn.
type Step struct {
	next  StepFn
	out   any
	sleep int32
	done  bool
}

// Continue ends the turn; next runs in the following round with the
// messages delivered this round. It is the step form of API.Next.
func Continue(next StepFn) Step {
	if next == nil {
		panic("engine: Continue with nil StepFn")
	}
	return Step{next: next, sleep: 1}
}

// Sleep ends the turn and parks the vertex for k counted rounds: next
// runs k rounds later with every message delivered in between (in arrival
// order). It is the step form of API.Idle(k): the vertex stays live and
// pays the rounds, but costs no scheduler work while parked. k must be at
// least 1; Sleep(1, next) is Continue(next). Callers translating an
// Idle(k) with k possibly 0 must branch: a zero-round idle does not end
// the turn.
func Sleep(k int, next StepFn) Step {
	if k < 1 {
		panic("engine: Sleep window must be >= 1 rounds")
	}
	if next == nil {
		panic("engine: Sleep with nil StepFn")
	}
	return Step{next: next, sleep: int32(k)}
}

// Done ends the turn and terminates the vertex with the given output,
// which is broadcast to its neighbors as the Final payload of this same
// round — exactly the accounting of a blocking Program returning.
func Done(output any) Step {
	return Step{done: true, out: output}
}

// StepRunner is implemented by backends that execute step-form programs
// natively.
type StepRunner interface {
	RunStep(g *graph.Graph, prog StepProgram, cfg Config) (*Result, error)
}

// stepBackend drives step-form programs with shard workers over flat
// state arrays. For blocking Programs (algorithms without a step form) it
// falls back to the automatic goroutines/pool choice, so selecting
// "step" is always safe.
type stepBackend struct{}

func (stepBackend) Name() string { return "step" }

// Run executes a blocking Program by delegating to the automatic
// goroutines/pool selection: the step driver itself only runs StepForms,
// and an explicit Backend="step" must still work for every algorithm.
func (stepBackend) Run(g *graph.Graph, prog Program, cfg Config) (*Result, error) {
	b, err := Select("auto", g.N())
	if err != nil {
		return nil, err
	}
	return b.Run(g, prog, cfg)
}

// laneEntry is one staged cross-shard delivery: slot is the receiver-side
// slab index (g.Rev of the directed edge), recv the receiving vertex, c
// the payload. Entries are zeroed after the merge applies them so pooled
// payloads are not retained.
type laneEntry struct {
	slot, recv int32
	c          cell
}

// cacheLine is the assumed coherence-granule size. 64 bytes covers every
// target this repo runs on (x86-64, arm64 with 64-byte lines; 128-byte-
// line arm64 parts simply get two-line padding granularity).
const cacheLine = 64

// laneHeaderPad rounds the lane header (one slice: 3 pointer-sized words)
// up to the next cache-line boundary.
const laneHeaderPad = cacheLine - (3*unsafe.Sizeof(uintptr(0)))%cacheLine

// lane is one (source shard, destination shard) staging buffer, padded so
// no two lane headers share a cache line. The header's len field is an
// append cursor bumped on every cross-shard delivery of the exec phase;
// lanes[src*nshards+dst] lays a worker's row of cursors contiguously, so
// without padding worker A appending to its lane would false-share the
// line with worker B reading or appending to an adjacent one — measured
// by BenchmarkLaneFalseSharing. The lanepad analyzer enforces the
// contract: no sync/atomic fields, no exported cursor fields, size an
// exact cache-line multiple.
//
//vavg:lane
type lane struct {
	buf []laneEntry
	_   [laneHeaderPad]byte
}

// Compile-time assertion that lane is an exact cache-line multiple: the
// constant goes negative — a compile error for uintptr — if padding ever
// drifts (e.g. a field is added without re-padding).
const _ uintptr = -(unsafe.Sizeof(lane{}) % cacheLine)

// stepShard owns a contiguous vertex range [lo, hi). The seam contract
// (enforced by the shardseam analyzer): fields are written only by the
// shard's own methods — the exec phase runs them from the worker owning
// the shard, the merge phase from the worker merging it, and the
// coordinator between rounds — never concurrently, so the shard needs no
// mutex and no atomics anywhere.
//
//vavg:shardstate
type stepShard struct {
	idx    int32
	lo, hi int32
	// fns[v-lo] is v's next turn.
	fns []StepFn
	// active lists, in ascending order, the live vertices that take a turn
	// every round. Terminated and sleeping vertices are compacted out.
	active []int32
	// woken and runBuf are per-round scratch: expired sleepers and the
	// merged turn order.
	woken  []int32
	runBuf []int32
	// wakeAt[v-lo] is the round of v's next scheduled turn while sleeping,
	// or 0 if v is active (or done).
	wakeAt []int32
	// timers is a min-heap of (wake round, vertex) sleep expiries.
	timers []idleEntry
	// pending holds message wakes: entry (T, v) means a message addressed
	// to v was delivered for round T, at most once per (v, T) thanks to
	// msgRound. Same-shard deliveries append during the exec phase,
	// cross-shard ones during the merge phase.
	pending []idleEntry
	// msgRound[v-lo] is the latest delivery round already enqueued in
	// pending for v.
	msgRound []int32
	// live counts non-terminated vertices in the shard.
	live int
	// bootProg builds each vertex's machine during the round-1 pass.
	bootProg StepProgram
	// crashes walks this shard's slice of the adversary's crash schedule
	// (empty on fault-free runs); victims are retired at the top of their
	// crash round, before any turn is taken.
	crashes eventCursor
}

type stepRuntime struct {
	c         *core
	shards    []*stepShard
	shardSize int32
	// lanes[src*len(shards)+dst] stages the cross-shard deliveries sent
	// from shard src to shard dst this round. During the exec phase lane
	// (src, *) is written only by the worker running shard src; during the
	// merge phase lane (*, dst) is read and truncated only by the worker
	// merging shard dst. Headers are cache-line padded (see lane). Nil on
	// single-shard runs.
	lanes []lane
	// round is the current global round, written by the coordinator at the
	// barrier and read by workers during the phases.
	round int32
	// restarts walks the adversary's restart schedule (empty on fault-free
	// runs); the coordinator consumes it between rounds.
	restarts eventCursor
}

func (rt *stepRuntime) shardOf(v int32) *stepShard { return rt.shards[v/rt.shardSize] }

// deliver routes one slot write: same-shard deliveries go straight to the
// slab and the shard's wake bookkeeping (the calling worker owns both),
// cross-shard ones are staged in the source→destination lane for the
// round-barrier merge. No locks, no atomics, on either path.
//
//vavg:hotpath
func (rt *stepRuntime) deliver(a *API, p int32, c cell) {
	g := a.core.g
	recv := g.Adj[p]
	d := recv / rt.shardSize
	src := a.v / rt.shardSize
	if src != d {
		l := &rt.lanes[src*int32(len(rt.shards))+d]
		l.buf = append(l.buf, laneEntry{slot: g.Rev[p], recv: recv, c: c})
		return
	}
	rt.c.sendBuf[g.Rev[p]] = c
	rt.shards[d].noteDelivery(recv, rt.round+1)
}

// noteDelivery marks receiver recv as having a message deliverable in
// round t so a sleeping receiver's slots are drained in time (the double
// buffers recycle a slot after two rounds, so an undrained delivery would
// be lost or misread). Deduplicated to one pending entry per (recv, t);
// entries for receivers that turn out to be active or terminated are
// dropped at drain time, as in the pool backend. Callers must own the
// shard for the current phase.
//
//vavg:hotpath
func (s *stepShard) noteDelivery(recv, t int32) {
	i := recv - s.lo
	if s.msgRound[i] >= t {
		return
	}
	s.msgRound[i] = t
	s.pending = append(s.pending, idleEntry{t, recv})
}

// applyLanes is the merge phase for this destination shard: a k-way
// ordered merge over the lane blocks addressed to it. Iterating source
// shards ascending IS that merge — entries within a lane are already in
// (sender, slot) append order, and a slot can appear in only one lane per
// round (its sender fixes the source shard), so cross-lane interleaving
// cannot affect slab contents — giving the deterministic (source shard,
// sender, slot) order at block-copy cost. Each lane is applied as three
// batched passes instead of interleaved per-entry work: a slab-write
// sweep, a wake-bookkeeping sweep in the same entry order (preserving the
// pending list's arrival order exactly), and one clear() to batch-zero
// the drained entries (payload cells may hold pointers).
//
//vavg:shardmerge
func (s *stepShard) applyLanes(rt *stepRuntime) {
	t := rt.round + 1
	nsh := int32(len(rt.shards))
	sendBuf := rt.c.sendBuf
	for src := int32(0); src < nsh; src++ {
		l := &rt.lanes[src*nsh+s.idx]
		buf := l.buf
		if len(buf) == 0 {
			continue
		}
		for i := range buf {
			sendBuf[buf[i].slot] = buf[i].c
		}
		for i := range buf {
			s.noteDelivery(buf[i].recv, t)
		}
		clear(buf)
		l.buf = buf[:0]
	}
}

// next and idle are the blocking round-crossing calls; step programs
// cross rounds by returning a Step verdict instead.
func (rt *stepRuntime) next(*API, []Msg) []Msg {
	panic("engine: step program called API.Next; return Continue instead")
}

func (rt *stepRuntime) idle(*API, int, []Msg) []Msg {
	panic("engine: step program called API.Idle; return Sleep instead")
}

// boot builds v's state machine and runs its first turn (round 1, empty
// inbox), converting a panic into the vertex's recorded failure.
func (rt *stepRuntime) boot(a *API, prog StepProgram) (st Step, ok bool) {
	defer rt.trap(a, &ok)
	fn := prog(a)
	if fn == nil {
		panic("engine: step program returned nil StepFn")
	}
	return fn(a, nil), true
}

// turn runs one scheduled turn of v's machine.
func (rt *stepRuntime) turn(a *API, fn StepFn) (st Step, ok bool) {
	defer rt.trap(a, &ok)
	return fn(a, a.inbox), true
}

func (rt *stepRuntime) trap(a *API, ok *bool) {
	if p := recover(); p != nil {
		a.releaseOutbox()
		rt.c.panics[a.v] = p
		rt.c.done[a.v] = true
		*ok = false
	}
}

// runRound takes every due turn in the shard for global round w: expired
// sleepers rejoin, sleeping receivers of this round's deliveries drain
// their slots, and the due vertices run in ascending order. Vertices are
// stepped with api.round = w-1, matching where a blocking Program stands
// while executing round w.
func (s *stepShard) runRound(rt *stepRuntime, apis []API, w int32) {
	c := rt.c
	// Crash events first: a victim is retired at the top of its crash
	// round, before any turn is taken — it counts as live in this round
	// (ActivePerRound already includes it) but executes nothing, exactly
	// like the blocking backends' wake-site unwinding. Clearing wakeAt
	// invalidates its stale timer entry and makes the pending drain below
	// skip it; clearing fns marks the slot for a fresh boot on restart.
	if c.adv != nil {
		for _, e := range s.crashes.take(w) {
			v := e.v
			li := v - s.lo
			if c.done[v] {
				continue
			}
			c.done[v] = true
			c.crashed[v] = true
			c.rounds[v] = w
			s.wakeAt[li] = 0
			s.fns[li] = nil
			apis[v].inbox = apis[v].inbox[:0]
			s.live--
		}
	}
	// Wake sleepers whose window ends this round; their turn collects the
	// final round of the window below.
	s.woken = s.woken[:0]
	for len(s.timers) > 0 && s.timers[0].round <= w {
		e := heapPop(&s.timers)
		li := e.v - s.lo
		if s.wakeAt[li] == e.round {
			s.wakeAt[li] = 0
			s.woken = append(s.woken, e.v)
		}
	}
	// Mass wakes are normal (a whole segment's window expiring at once
	// wakes O(n) sleepers in one round), so this must be a real sort —
	// the insertion sort used for degree-bounded dirty lists would be
	// quadratic here.
	slices.Sort(s.woken)
	// Drain this round's deliveries into still-sleeping receivers' inboxes
	// (in delivery-round order, so a later wake sees the same accumulated
	// sequence a blocking Idle builds). Entries for active, waking, or
	// terminated receivers are dropped: those vertices collect for
	// themselves, or never will. No lock: pending is written only by this
	// shard's owner during the exec phase and its merger during the merge
	// phase, and this drain is the exec phase's first touch.
	keep := s.pending[:0]
	for _, e := range s.pending {
		if e.round > w {
			keep = append(keep, e)
			continue
		}
		if s.wakeAt[e.v-s.lo] > w {
			a := &apis[e.v]
			a.inbox = a.collect(a.inbox)
		}
	}
	s.pending = keep
	// Merge the compacted active list with this round's woken sleepers,
	// collecting each vertex's inbox: active vertices start a fresh inbox,
	// woken ones append the window's final round to what the drains above
	// accumulated. Round 1 has no deliveries and no machines yet — every
	// vertex boots instead.
	s.runBuf = s.runBuf[:0]
	if w == 1 {
		for v := s.lo; v < s.hi; v++ {
			s.runBuf = append(s.runBuf, v)
		}
	} else {
		ai, wi := 0, 0
		for ai < len(s.active) || wi < len(s.woken) {
			var v int32
			if wi >= len(s.woken) || (ai < len(s.active) && s.active[ai] < s.woken[wi]) {
				v = s.active[ai]
				ai++
				a := &apis[v]
				a.inbox = a.collect(a.inbox[:0])
			} else {
				v = s.woken[wi]
				wi++
				a := &apis[v]
				a.inbox = a.collect(a.inbox)
			}
			s.runBuf = append(s.runBuf, v)
		}
	}
	// Take the turns in ascending vertex order, rebuilding the active list
	// with the survivors.
	s.active = s.active[:0]
	for _, v := range s.runBuf {
		if c.done[v] {
			// Crashed at the top of this round after making it into the
			// run order; its turn is forfeit.
			continue
		}
		li := v - s.lo
		a := &apis[v]
		var st Step
		var ok bool
		if s.fns[li] == nil {
			// No machine yet: the round-1 boot, or an adversary restart's
			// fresh incarnation (which must re-seed its PRNG stream, hence
			// the generation stamp after the reset).
			g := c.g
			plo, phi := g.Off[v], g.Off[v+1]
			*a = API{
				core:  c,
				rt:    rt,
				v:     v,
				out:   c.scratch.outbox[plo:phi:phi],
				dirty: c.scratch.dirty[plo:plo:phi],
				round: w - 1,
			}
			if c.gens != nil {
				a.gen = c.gens[v]
			}
			st, ok = rt.boot(a, s.bootProg)
		} else {
			a.round = w - 1
			st, ok = rt.turn(a, s.fns[li])
		}
		if !ok {
			s.live--
			continue
		}
		switch {
		case st.done:
			// The exact final-round sequence of runVertex: broadcast the
			// output, deliver, terminate.
			a.Broadcast(Final{Output: st.out})
			a.flush()
			a.releaseOutbox()
			a.round++
			c.rounds[v] = a.round
			c.output[v] = st.out
			c.done[v] = true
			s.live--
		case st.sleep > 1:
			a.flush()
			a.round++
			c.rounds[v] = a.round
			// The window's messages accumulate into a fresh inbox (the turn
			// just consumed the old contents).
			a.inbox = a.inbox[:0]
			s.fns[li] = st.next
			e := w + st.sleep
			s.wakeAt[li] = e
			heapPush(&s.timers, idleEntry{e, v})
		default:
			a.flush()
			a.round++
			c.rounds[v] = a.round
			s.fns[li] = st.next
			s.active = append(s.active, v)
		}
	}
}

// reboot re-arms a crashed vertex for a restart in the coming round: its
// machine slot was cleared at crash time, so its next turn boots a fresh
// incarnation with a new PRNG generation. Called by the coordinator
// between rounds.
func (s *stepShard) reboot(c *core, v int32) {
	c.done[v] = false
	c.crashed[v] = false
	c.gens[v]++
	s.wakeAt[v-s.lo] = 0
	s.live++
	s.active = append(s.active, v)
}

// sortActive restores the ascending order the turn merge requires after
// out-of-order reboots were appended.
func (s *stepShard) sortActive() {
	if !slices.IsSorted(s.active) {
		slices.Sort(s.active)
	}
}

// weight estimates the shard's upcoming per-round cost for rebalancing:
// runnable vertices plus parked sleepers that will wake later.
func (s *stepShard) weight() int {
	return len(s.active) + len(s.timers)
}

// nextEventRound returns the earliest upcoming round in which any vertex
// takes a turn: cur+1 if some shard has active vertices or pending
// message wakes, otherwise the earliest sleep expiry. Rounds in between
// are fast-forwarded by the coordinator.
func (rt *stepRuntime) nextEventRound(cur int) int {
	next := math.MaxInt
	for _, s := range rt.shards {
		if len(s.active) > 0 || len(s.pending) > 0 {
			return cur + 1
		}
		if len(s.timers) > 0 && int(s.timers[0].round) < next {
			next = int(s.timers[0].round)
		}
		if r := s.crashes.nextRound(); r < next {
			next = r
		}
	}
	if r := rt.restarts.nextRound(); r < next {
		next = r
	}
	if next == math.MaxInt {
		// Live vertices but no scheduled turn: cannot happen for
		// well-formed machines (every live vertex is active or sleeping),
		// but advance round by round until MaxRounds aborts, as the other
		// backends do under livelock.
		return cur + 1
	}
	return next
}

// stepRebalanceEpoch is the coordinator's rebalancing cadence: every this
// many rounds the shard→worker assignment is recomputed from the shards'
// active-set weights. Rebalancing is pure scheduling — Results never
// depend on which worker runs a shard.
const stepRebalanceEpoch = 32

// rebalanceShards reassigns shards to workers by greedy
// longest-processing-time bin packing on the shards' current weights:
// shards are placed heaviest-first onto the least-loaded worker, with
// deterministic tie-breaks (shard index, then worker index). Only useful
// when there are more shards than workers — with skewed active sets a
// fixed block assignment can leave most workers idle behind one hot
// shard.
func rebalanceShards(owned [][]*stepShard, shards []*stepShard) {
	order := make([]int32, len(shards))
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		return shards[order[i]].weight() > shards[order[j]].weight()
	})
	loads := make([]int, len(owned))
	for w := range owned {
		owned[w] = owned[w][:0]
	}
	for _, si := range order {
		best := 0
		for w := 1; w < len(loads); w++ {
			if loads[w] < loads[best] {
				best = w
			}
		}
		owned[best] = append(owned[best], shards[si])
		loads[best] += shards[si].weight() + 1
	}
}

// Worker phase tokens: one full round is exec (turns) then merge (lane
// application), each ending in a barrier.
const (
	phaseExec uint8 = iota
	phaseMerge
)

// RunStep executes a step-form program: per-round cost is proportional to
// the vertices due a turn plus the messages delivered, with zero
// goroutines beyond one persistent worker per core (and none at all with
// a single worker). cfg.StepShards fixes the shard layout independently
// of the worker count; see the package comment above for the two-phase
// round structure that keeps multicore Results byte-identical.
func (stepBackend) RunStep(g *graph.Graph, prog StepProgram, cfg Config) (*Result, error) {
	n := g.N()
	maxRounds := cfg.maxRounds(n)
	c := newCore(g, cfg)
	c.scratch.apis = reslice(c.scratch.apis, n)
	c.scratch.stepFns = reslice(c.scratch.stepFns, n)
	apis := c.scratch.apis

	nshards := cfg.StepShards
	if nshards <= 0 {
		nshards = autotuneShards(g)
	}
	if nshards > n {
		nshards = n
	}
	if nshards < 1 {
		nshards = 1
	}
	shardSize := (n + nshards - 1) / nshards
	rt := &stepRuntime{c: c, shardSize: int32(shardSize)}
	for lo := 0; lo < n; lo += shardSize {
		hi := lo + shardSize
		if hi > n {
			hi = n
		}
		var crashes eventCursor
		if c.adv != nil {
			crashes = eventCursor{events: shardEvents(c.adv.crashes, int32(lo), int32(hi))}
		}
		rt.shards = append(rt.shards, &stepShard{
			idx:      int32(len(rt.shards)),
			lo:       int32(lo),
			hi:       int32(hi),
			fns:      c.scratch.stepFns[lo:hi:hi],
			active:   make([]int32, 0, hi-lo),
			wakeAt:   make([]int32, hi-lo),
			msgRound: make([]int32, hi-lo),
			live:     hi - lo,
			bootProg: prog,
			crashes:  crashes,
		})
	}
	nshards = len(rt.shards)
	if nshards > 1 {
		rt.lanes = make([]lane, nshards*nshards)
	}
	if c.adv != nil {
		rt.restarts = eventCursor{events: c.adv.restarts}
	}

	// Workers are capped by the shard count: the shard layout (and hence
	// every Result) is fixed by cfg.StepShards, while the worker count
	// adapts to the machine. Multi-worker runs use persistent workers
	// released twice per round (exec, then merge); a single worker runs
	// both phases inline with no goroutines at all.
	workers := gort.GOMAXPROCS(0)
	if workers > nshards {
		workers = nshards
	}
	if workers < 1 {
		workers = 1
	}
	owned := make([][]*stepShard, workers)
	for i, s := range rt.shards {
		owned[i%workers] = append(owned[i%workers], s)
	}
	var phaseWG sync.WaitGroup
	var starts []chan uint8
	if workers > 1 {
		for w := 0; w < workers; w++ {
			start := make(chan uint8)
			starts = append(starts, start)
			go func(w int, start chan uint8) {
				for ph := range start {
					if ph == phaseExec {
						for _, s := range owned[w] {
							s.runRound(rt, apis, rt.round)
						}
					} else {
						for _, s := range owned[w] {
							s.applyLanes(rt)
						}
					}
					phaseWG.Done()
				}
			}(w, start)
		}
		defer func() {
			for _, start := range starts {
				close(start)
			}
		}()
	}
	runPhase := func(ph uint8) {
		if workers == 1 {
			for _, s := range rt.shards {
				if ph == phaseExec {
					s.runRound(rt, apis, rt.round)
				} else {
					s.applyLanes(rt)
				}
			}
			return
		}
		phaseWG.Add(workers)
		for _, start := range starts {
			start <- ph
		}
		phaseWG.Wait()
	}

	activePerRound := []int{n}
	round := 1
	rt.round = 1
	for {
		runPhase(phaseExec)
		if nshards > 1 {
			// Single-shard runs have no cross-shard lanes: every delivery
			// took the direct path, and the merge phase is skipped whole.
			runPhase(phaseMerge)
		}
		live := 0
		for _, s := range rt.shards {
			live += s.live
		}
		if live == 0 && !rt.restarts.pending() {
			break
		}
		if round >= maxRounds {
			c.aborted = true
			break
		}
		// Fast-forward rounds in which every live vertex sleeps with no
		// deliverable message: they all pay the rounds (the paper's
		// waiting-is-active accounting) at O(shards) cost here.
		// nextEventRound includes the adversary's schedule, so no crash or
		// restart round is ever skipped.
		next := rt.nextEventRound(round)
		for round+1 < next && !c.aborted {
			round++
			activePerRound = append(activePerRound, live)
			if round >= maxRounds {
				c.aborted = true
			}
		}
		if c.aborted {
			break
		}
		round++
		rt.round = int32(round)
		c.swap()
		// Reboot vertices whose restart round is the new round: fns was
		// cleared at crash time, so their next turn boots a fresh
		// incarnation. They join the active order for this round and count
		// in its ActivePerRound entry, matching the other backends.
		spawned := 0
		if c.adv != nil {
			for _, e := range rt.restarts.take(int32(round)) {
				v := e.v
				if !c.crashed[v] {
					// Terminated before its scheduled crash: nothing to reboot.
					continue
				}
				rt.shardOf(v).reboot(c, v)
				spawned++
			}
			if spawned > 0 {
				// The merge pass needs ascending active lists; reboots were
				// appended out of order.
				for _, s := range rt.shards {
					s.sortActive()
				}
			}
		}
		activePerRound = append(activePerRound, live+spawned)
		if workers > 1 && nshards > workers && round%stepRebalanceEpoch == 0 {
			rebalanceShards(owned, rt.shards)
		}
	}
	res, err := c.finish(activePerRound, maxRounds)
	if res != nil {
		res.Shards = nshards
	}
	return res, err
}
