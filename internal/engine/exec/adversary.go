package exec

import (
	"fmt"
	"math"
)

// Adversary is the compiled, immutable fault schedule of one run: i.i.d.
// per-delivery message drops plus per-vertex crash (and optional restart)
// rounds. It is built by internal/scenario from a (run seed, scenario
// seed) pair and shared read-only by every run of a sweep; all mutable
// cursor state lives in the backends.
//
// Determinism: every adversary decision is a pure function of immutable
// inputs — a drop is a hash of (directed-edge slot, delivery round), a
// crash window is a per-vertex pair of rounds — so the faulty execution
// is byte-identical on every backend at any worker count, exactly like a
// fault-free run.
type Adversary struct {
	// Seed drives the drop hash. It is derived from (run seed, scenario
	// seed) by the scenario compiler, never from api.Rand(): algorithm
	// randomness and fault randomness are separate streams (the
	// scenarioseam analyzer polices the split).
	Seed uint64
	// DropBar is the drop threshold: a delivery is dropped iff
	// Mix64(Seed, slot, round) < DropBar. 0 never drops; ^uint64(0)
	// drops everything.
	DropBar uint64
	// CrashAt[v] is the first round vertex v is crashed in, or 0 for
	// never. Crashed vertices neither execute nor deliver nor receive.
	// Rounds below 2 are clamped to 2 by Normalize: round 1 is the spawn
	// round and always executes on every backend.
	CrashAt []int32
	// RestartAt[v] is the round in which v reboots from a fresh init
	// (empty inbox, new PRNG incarnation), or 0 for crashed-forever.
	// Meaningful only where CrashAt[v] != 0; Normalize forces it past
	// the crash round.
	RestartAt []int32

	// crashes and restarts are the schedule as sorted (round, vertex)
	// event lists, built by Normalize; backends partition them by shard
	// and walk them with private cursors.
	crashes  []advEvent
	restarts []advEvent
}

// advEvent is one scheduled fault, ordered by (round, vertex).
type advEvent struct {
	round int32
	v     int32
}

// Mix64 is the splitmix64 finalizer: a bijective avalanche mix used as
// the adversary's counter-based PRNG core. It is exported so
// internal/scenario can derive its decision streams from the same
// primitive without a second implementation.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Normalize validates and canonicalizes the schedule for an n-vertex
// graph and builds the event lists. It must be called once before the
// adversary is passed to a backend; Config rejects unnormalized
// adversaries.
func (adv *Adversary) Normalize(n int) error {
	if adv.CrashAt != nil && len(adv.CrashAt) != n {
		return fmt.Errorf("engine: adversary CrashAt has length %d, want %d", len(adv.CrashAt), n)
	}
	if adv.RestartAt != nil && len(adv.RestartAt) != n {
		return fmt.Errorf("engine: adversary RestartAt has length %d, want %d", len(adv.RestartAt), n)
	}
	adv.crashes = adv.crashes[:0]
	adv.restarts = adv.restarts[:0]
	for v := range adv.CrashAt {
		r := adv.CrashAt[v]
		if r == 0 {
			if adv.RestartAt != nil && adv.RestartAt[v] != 0 {
				return fmt.Errorf("engine: adversary restarts vertex %d that never crashes", v)
			}
			continue
		}
		if r < 2 {
			// Round 1 is the spawn round: every backend starts every
			// vertex executing it before any scheduling decision, so the
			// earliest interceptable crash is round 2.
			r = 2
			adv.CrashAt[v] = r
		}
		adv.crashes = append(adv.crashes, advEvent{round: r, v: int32(v)})
		if adv.RestartAt == nil || adv.RestartAt[v] == 0 {
			continue
		}
		if adv.RestartAt[v] <= r {
			adv.RestartAt[v] = r + 1
		}
		adv.restarts = append(adv.restarts, advEvent{round: adv.RestartAt[v], v: int32(v)})
	}
	sortEvents(adv.crashes)
	sortEvents(adv.restarts)
	return nil
}

// permuted returns a copy of adv with its vertex-keyed schedule remapped
// into a relabeled view's ID space (newID[old] = new): crash and restart
// rounds move with their vertices and the event lists are rebuilt in
// new-ID order. Seed and DropBar are copied unchanged — the drop hash
// stays keyed by ORIGINAL slot indices, which the message path feeds it
// via core.dropSlot. The receiver, shared read-only across a sweep, is
// never mutated.
func (adv *Adversary) permuted(newID []int32) *Adversary {
	p := &Adversary{Seed: adv.Seed, DropBar: adv.DropBar}
	if adv.CrashAt != nil {
		p.CrashAt = make([]int32, len(adv.CrashAt))
		for old, r := range adv.CrashAt {
			p.CrashAt[newID[old]] = r
		}
	}
	if adv.RestartAt != nil {
		p.RestartAt = make([]int32, len(adv.RestartAt))
		for old, r := range adv.RestartAt {
			p.RestartAt[newID[old]] = r
		}
	}
	if err := p.Normalize(len(newID)); err != nil {
		// The source schedule was normalized for this same n; a pure
		// remap cannot introduce a validation failure.
		panic(err)
	}
	return p
}

// sortEvents orders events by (round, vertex); schedules are small, and
// insertion sort keeps the dependency surface flat.
func sortEvents(s []advEvent) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && less(s[j], s[j-1]); j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func less(a, b advEvent) bool {
	if a.round != b.round {
		return a.round < b.round
	}
	return a.v < b.v
}

// dropped reports whether the delivery into directed-edge slot in round
// dr is removed by the random-loss process. The decision is a pure hash
// of (seed, slot, round): re-sends to the same slot in the same round
// (broadcast overwrites) see the same verdict, and no backend state is
// involved.
func (adv *Adversary) dropped(slot int32, dr int32) bool {
	if adv.DropBar == 0 {
		return false
	}
	return Mix64(adv.Seed^(uint64(uint32(slot))|uint64(uint32(dr))<<32)) < adv.DropBar
}

// inWindow reports whether vertex v is inside its crash outage for
// delivery round dr: deliveries to or from v are killed from the crash
// round through the restart round inclusive (a restarted vertex boots
// with an empty inbox, like round 1).
func (adv *Adversary) inWindow(v int32, dr int32) bool {
	if adv.CrashAt == nil {
		return false
	}
	c := adv.CrashAt[v]
	if c == 0 || dr < c {
		return false
	}
	if adv.RestartAt == nil || adv.RestartAt[v] == 0 {
		return true
	}
	return dr <= adv.RestartAt[v]
}

// crashNow reports whether vertex v must not execute round w: it has
// crashed at or before w and not yet restarted. Backends consult it at
// every wake site, so a crashed vertex's goroutine unwinds (or its state
// machine is retired) in exactly round CrashAt[v] on every backend.
func (adv *Adversary) crashNow(v int32, w int32) bool {
	if adv.CrashAt == nil {
		return false
	}
	c := adv.CrashAt[v]
	if c == 0 || w < c {
		return false
	}
	if adv.RestartAt == nil || adv.RestartAt[v] == 0 {
		return true
	}
	return w < adv.RestartAt[v]
}

// eventCursor walks one shard's slice of a sorted event list.
type eventCursor struct {
	events []advEvent
	i      int
}

// take returns the events scheduled for round w, advancing the cursor.
func (c *eventCursor) take(w int32) []advEvent {
	lo := c.i
	for c.i < len(c.events) && c.events[c.i].round <= w {
		c.i++
	}
	return c.events[lo:c.i]
}

// nextRound returns the round of the next unconsumed event, or MaxInt.
func (c *eventCursor) nextRound() int {
	if c.i >= len(c.events) {
		return math.MaxInt
	}
	return int(c.events[c.i].round)
}

// pending reports whether unconsumed events remain.
func (c *eventCursor) pending() bool { return c.i < len(c.events) }

// shardEvents returns the sub-slice of events whose vertices fall in
// [lo, hi); events are sorted by round first, so the per-shard slices
// are rebuilt by filtering (schedules are small and this runs once per
// run, only when an adversary is present).
func shardEvents(events []advEvent, lo, hi int32) []advEvent {
	var out []advEvent
	for _, e := range events {
		if e.v >= lo && e.v < hi {
			out = append(out, e)
		}
	}
	return out
}

// crashSentinel is the panic payload a vertex goroutine uses to unwind
// when its crash round arrives; runVertex's recover recognizes it and
// retires the vertex without recording a failure.
type crashSentinel struct{}
