package exec

import (
	gort "runtime"
	"sync"
	"time"

	"vavg/internal/graph"
)

// Shard-count autotuning (DESIGN.md §11). When Config.StepShards is 0 the
// step backend used to default to GOMAXPROCS; autotuneShards instead picks
// a count from the machine, the graph shape, and a measured staging cost:
//
//   - One worker never crosses shards, so a single shard skips lane
//     staging and the whole merge phase — strictly less work per round.
//   - With multiple workers the base candidate is one shard per worker
//     (a work-conserving layout with zero granularity loss). Finer
//     sharding ({2,4,8}× the worker count) improves the LPT rebalancer's
//     granularity under skewed active sets, but every extra shard
//     boundary converts direct slab deliveries into staged lane entries;
//     a multiple is accepted only while the expected extra merge work per
//     vertex-turn — cross-shard edge fraction × average degree ×
//     staged-vs-direct cost ratio — stays under stepSkewHeadroom turns.
//
// The choice is pure scheduling: Results are invariant in the shard count
// (the worker-invariance suites gate this), so neither the sampled edge
// fraction nor the timed cost ratio can affect any observable. The chosen
// count is recorded in Result.Shards.
const (
	// minShardVerts is the smallest shard worth its fixed per-round cost
	// (timer heap, pending list, active-list bookkeeping).
	minShardVerts = 4096
	// maxStepShards caps the shards² lane matrix the merge phase scans.
	maxStepShards = 256
	// stepSkewHeadroom is how many turns' worth of extra merge work per
	// vertex a finer layout may cost before granularity stops paying.
	stepSkewHeadroom = 4.0
)

func autotuneShards(g *graph.Graph) int {
	n := g.N()
	w := gort.GOMAXPROCS(0)
	if w > n {
		w = n
	}
	if w <= 1 {
		return 1
	}
	avgDeg := 0.0
	if n > 0 {
		avgDeg = float64(len(g.Adj)) / float64(n)
	}
	best := w
	for _, mult := range []int{2, 4, 8} {
		s := w * mult
		if s > maxStepShards || s > n || (n+s-1)/s < minShardVerts {
			break
		}
		if crossFrac(g, s)*avgDeg*mergeCostRatio() > stepSkewHeadroom {
			break
		}
		best = s
	}
	return best
}

// crossFrac estimates the fraction of directed edges that cross a shard
// boundary under s contiguous equal shards, by a deterministic stride
// sample of at most ~4096 adjacency positions.
func crossFrac(g *graph.Graph, s int) float64 {
	m2 := len(g.Adj)
	if m2 == 0 {
		return 0
	}
	n := g.N()
	shardSize := int32((n + s - 1) / s)
	stride := m2/4096 + 1
	cross, total := 0, 0
	u := 0
	for p := 0; p < m2; p += stride {
		for int32(p) >= g.Off[u+1] {
			u++
		}
		total++
		if int32(u)/shardSize != g.Adj[p]/shardSize {
			cross++
		}
	}
	return float64(cross) / float64(total)
}

var (
	mergeRatioOnce sync.Once
	mergeRatioVal  float64
)

// mergeCostRatio measures, once per process, how much more a staged
// cross-shard delivery costs than a direct slab write: lane append plus
// merge-phase apply versus a plain cell store. The ratio (clamped to
// [1, 16]) feeds the autotune cost model only — it can influence wall
// clock, never Results.
func mergeCostRatio() float64 {
	mergeRatioOnce.Do(func() {
		const k = 1 << 12
		slab := make([]cell, k)
		staging := make([]laneEntry, 0, k)
		direct := benchPass(func() {
			for i := 0; i < k; i++ {
				slab[i] = cell{ival: int64(i), kind: cellInt}
			}
		})
		staged := benchPass(func() {
			staging = staging[:0]
			for i := 0; i < k; i++ {
				staging = append(staging, laneEntry{slot: int32(i), recv: int32(i), c: cell{ival: int64(i), kind: cellInt}})
			}
			for i := range staging {
				slab[staging[i].slot] = staging[i].c
			}
		})
		r := 4.0 // conservative default if the clock is too coarse
		if direct > 0 && staged > 0 {
			r = float64(staged) / float64(direct)
		}
		if r < 1 {
			r = 1
		}
		if r > 16 {
			r = 16
		}
		mergeRatioVal = r
	})
	return mergeRatioVal
}

// benchPass times fn's best of five runs (one warm-up), in nanoseconds.
func benchPass(fn func()) int64 {
	fn()
	best := int64(0)
	for i := 0; i < 5; i++ {
		t0 := time.Now()
		fn()
		if d := time.Since(t0).Nanoseconds(); best == 0 || d < best {
			best = d
		}
	}
	return best
}
