// Package engine simulates the static synchronous message-passing (LOCAL)
// model of distributed computation used by the paper: an n-vertex graph
// whose vertices are processors, unbounded-size messages to neighbors each
// round, all vertices starting simultaneously in round 0.
//
// The model semantics — rounds, per-directed-edge message slots,
// termination accounting — live in the execution core under
// internal/engine/exec, behind a Backend interface with two
// implementations: "goroutines" (one goroutine per vertex driven by a
// single coordinator) and "pool" (sharded workers with an active-set
// scheduler that parks idle vertices for free and fast-forwards all-idle
// rounds). Options.Backend selects one; by default runs below
// exec.PoolThreshold vertices use "goroutines" and larger runs use
// "pool". Backends are execution strategies only: equal seeds produce
// byte-identical Results on every backend.
//
// Termination follows the paper's refinement of Feuilloley's definition:
// when a Program returns its output, the engine broadcasts that final
// output to the vertex's neighbors in one last counted round, and the
// vertex then performs no further computation or communication. The
// per-vertex round count r(v) is the number of rounds the vertex
// participated in, including that final round; the vertex-averaged
// complexity of a run is (1/n) * sum_v r(v).
package engine

import (
	"vavg/internal/engine/exec"
	"vavg/internal/graph"
)

// The vertex-side model types are defined by the execution core; the
// aliases keep algorithm packages independent of the backend split.
type (
	// Msg is a message received from a neighbor. Integer payloads travel
	// on an allocation-free fast lane (API.SendInt / API.BroadcastInt,
	// read with Msg.AsInt); arbitrary payloads use API.Send / API.Broadcast
	// and arrive in Msg.Data.
	Msg = exec.Msg
	// Final is the payload automatically broadcast by a vertex in its
	// last round; Output is the value the vertex's Program returned.
	Final = exec.Final
	// Program is the per-vertex code; the value it returns is the vertex
	// output, broadcast to neighbors in one final counted round.
	Program = exec.Program
	// API is the interface a Program uses to act as its vertex.
	API = exec.API
	// Result reports the outcome and cost accounting of a run.
	Result = exec.Result
	// StepProgram is the state-machine form of a Program: called once per
	// vertex, it returns the StepFn for the vertex's first turn. The step
	// backend runs these with no per-vertex goroutine.
	StepProgram = exec.StepProgram
	// StepFn is one turn of a step-form program: it receives the messages
	// delivered since the last turn and returns a Step verdict.
	StepFn = exec.StepFn
	// Step is a turn verdict: Continue, Sleep, or Done.
	Step = exec.Step
	// Spec bundles an algorithm's blocking form with its optional step
	// form for RunSpec.
	Spec = exec.Spec
	// Adversary is a compiled, immutable fault schedule: per-delivery
	// message drops plus per-vertex crash/restart windows, all pure
	// functions of immutable inputs so faulty runs stay byte-reproducible
	// on every backend. Build one with internal/scenario and normalize it
	// for the run's graph before use.
	Adversary = exec.Adversary
)

// Mix64 is the splitmix64 finalizer the adversary layer uses as its
// counter-based PRNG core, re-exported for the scenario compiler.
func Mix64(x uint64) uint64 { return exec.Mix64(x) }

// Continue ends a step turn; next runs in the following round with the
// messages delivered this round (the step form of API.Next).
func Continue(next StepFn) Step { return exec.Continue(next) }

// Sleep ends a step turn and parks the vertex for k >= 1 counted rounds
// (the step form of API.Idle).
func Sleep(k int, next StepFn) Step { return exec.Sleep(k, next) }

// Done ends a step turn and terminates the vertex with output (the step
// form of returning from a Program).
func Done(output any) Step { return exec.Done(output) }

// ErrMaxRounds is returned when a run exceeds Options.MaxRounds.
var ErrMaxRounds = exec.ErrMaxRounds

// Options configure a run.
type Options struct {
	// Seed seeds the per-vertex deterministic PRNGs. Two runs with equal
	// seeds produce identical executions regardless of scheduling and of
	// the chosen backend.
	Seed int64
	// MaxRounds aborts the run if the global round count exceeds it,
	// guarding against livelocked programs. 0 means 4*(n + 64*log2(n) + 64).
	MaxRounds int
	// Backend selects the execution backend: "goroutines", "pool",
	// "step", or ""/"auto" to pick automatically — the step backend
	// whenever the algorithm has a step form, otherwise by graph size
	// (pool at or above exec.PoolThreshold vertices). Selecting "step"
	// for an algorithm without a step form falls back to the automatic
	// goroutines/pool choice.
	Backend string
	// Adv is the compiled fault schedule, or nil for the fault-free run.
	// A nil adversary costs the hot path one pointer test per flush and
	// zero allocations; a non-nil one must already be normalized for g.
	Adv *Adversary
	// StepShards fixes the step backend's shard count independently of
	// the worker cores driving it (0 means GOMAXPROCS at run start).
	// Results are invariant in both knobs; a fixed value reproduces the
	// same shard layout on any machine. Other backends ignore it.
	StepShards int
}

// Run executes prog on every vertex of g until all vertices terminate,
// on the backend selected by opts.Backend.
func Run(g *graph.Graph, prog Program, opts Options) (*Result, error) {
	b, err := exec.Select(opts.Backend, g.N())
	if err != nil {
		return nil, err
	}
	return b.Run(g, prog, exec.Config{Seed: opts.Seed, MaxRounds: opts.MaxRounds, Adv: opts.Adv, StepShards: opts.StepShards})
}

// RunSpec executes spec on the backend selected by opts.Backend,
// preferring the step form wherever the chosen backend can run it; see
// Options.Backend for the selection rules. Which form runs is an
// execution-strategy choice only: equal seeds produce byte-identical
// Results for both forms on every backend.
func RunSpec(g *graph.Graph, spec Spec, opts Options) (*Result, error) {
	return exec.RunSpec(g, spec, opts.Backend, exec.Config{Seed: opts.Seed, MaxRounds: opts.MaxRounds, Adv: opts.Adv, StepShards: opts.StepShards})
}

// Backends lists the registered execution backends.
func Backends() []string { return exec.Names() }
