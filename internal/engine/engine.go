// Package engine simulates the static synchronous message-passing (LOCAL)
// model of distributed computation used by the paper: an n-vertex graph
// whose vertices are processors, unbounded-size messages to neighbors each
// round, all vertices starting simultaneously in round 0.
//
// Each vertex runs as its own goroutine executing a Program; a coordinator
// drives global synchronous rounds. Message delivery is lock-free: every
// directed edge (u,v) has a dedicated slot written only by u and read only
// by v, double-buffered across rounds.
//
// Termination follows the paper's refinement of Feuilloley's definition:
// when a Program returns its output, the engine broadcasts that final
// output to the vertex's neighbors in one last counted round, and the
// vertex then performs no further computation or communication. The
// per-vertex round count r(v) is the number of rounds the vertex
// participated in, including that final round; the vertex-averaged
// complexity of a run is (1/n) * sum_v r(v).
package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"vavg/internal/graph"
)

// Msg is a message received from a neighbor.
type Msg struct {
	// From is the sender's vertex ID.
	From int32
	// Data is the payload. A payload of type Final is the sender's
	// termination announcement.
	Data any
}

// Final is the payload automatically broadcast by a vertex in its last
// round; Output is the value the vertex's Program returned.
type Final struct {
	Output any
}

// Program is the per-vertex code. It runs concurrently with all other
// vertices' Programs and may only interact with them through the API; the
// value it returns is the vertex's output, broadcast to its neighbors in
// one final counted round.
type Program func(api *API) any

// Options configure a run.
type Options struct {
	// Seed seeds the per-vertex deterministic PRNGs. Two runs with equal
	// seeds produce identical executions regardless of scheduling.
	Seed int64
	// MaxRounds aborts the run if the global round count exceeds it,
	// guarding against livelocked programs. 0 means 4*(n + 64*log2(n) + 64).
	MaxRounds int
}

// Result reports the outcome and cost accounting of a run.
type Result struct {
	// Rounds[v] is the number of rounds vertex v participated in before
	// terminating (including its final-output round).
	Rounds []int32
	// CommitRounds[v] is the round in which v committed its output via
	// API.Commit — Feuilloley's first definition, under which a vertex may
	// keep computing and relaying after fixing its output. For vertices
	// that never called Commit it equals Rounds[v].
	CommitRounds []int32
	// Output[v] is the value v's Program returned.
	Output []any
	// TotalRounds is the worst-case complexity of the run: max_v Rounds[v].
	TotalRounds int
	// RoundSum is sum_v Rounds[v].
	RoundSum int64
	// ActivePerRound[i] is the number of vertices active in round i+1.
	ActivePerRound []int
	// Messages is the total number of point-to-point messages delivered.
	Messages int64
}

// VertexAverage returns RoundSum / n, the paper's vertex-averaged
// complexity of the execution.
func (r *Result) VertexAverage() float64 {
	if len(r.Rounds) == 0 {
		return 0
	}
	return float64(r.RoundSum) / float64(len(r.Rounds))
}

// CommitAverage returns the node-averaged complexity under Feuilloley's
// first definition: the mean of the per-vertex output-commitment rounds.
func (r *Result) CommitAverage() float64 {
	if len(r.CommitRounds) == 0 {
		return 0
	}
	var sum int64
	for _, c := range r.CommitRounds {
		sum += int64(c)
	}
	return float64(sum) / float64(len(r.CommitRounds))
}

// MaxCommit returns the largest per-vertex commitment round.
func (r *Result) MaxCommit() int {
	m := 0
	for _, c := range r.CommitRounds {
		if int(c) > m {
			m = int(c)
		}
	}
	return m
}

// ErrMaxRounds is returned when a run exceeds Options.MaxRounds.
var ErrMaxRounds = errors.New("engine: exceeded maximum round count")

type cell struct {
	data any
	has  bool
}

type engineState struct {
	g        *graph.Graph
	bufA     []cell // double-buffered directed-edge slots
	bufB     []cell
	sendBuf  []cell // written during the current round
	recvBuf  []cell // holds the previous round's messages
	wg       sync.WaitGroup
	wake     []chan struct{}
	done     []bool // set by a vertex when it terminates (read after wg.Wait)
	rounds   []int32
	commits  []int32
	output   []any
	msgCount []int64
	panics   []any
	aborted  bool
	seed     int64
}

// API is the interface a Program uses to act as its vertex. All methods
// must be called only from the Program's own goroutine.
type API struct {
	eng    *engineState
	v      int32
	rng    *rand.Rand
	outbox map[int32]any // pending sends keyed by directed-edge slot
	round  int32
}

// Run executes prog on every vertex of g until all vertices terminate.
func Run(g *graph.Graph, prog Program, opts Options) (*Result, error) {
	n := g.N()
	maxRounds := opts.MaxRounds
	if maxRounds == 0 {
		lg := 1
		for 1<<lg < n+2 {
			lg++
		}
		maxRounds = 4*n + 256*lg + 256
	}
	eng := &engineState{
		g:        g,
		bufA:     make([]cell, len(g.Adj)),
		bufB:     make([]cell, len(g.Adj)),
		wake:     make([]chan struct{}, n),
		done:     make([]bool, n),
		rounds:   make([]int32, n),
		commits:  make([]int32, n),
		output:   make([]any, n),
		msgCount: make([]int64, n),
		panics:   make([]any, n),
		seed:     opts.Seed,
	}
	eng.sendBuf, eng.recvBuf = eng.bufA, eng.bufB
	for v := 0; v < n; v++ {
		eng.wake[v] = make(chan struct{}, 1)
	}

	eng.wg.Add(n)
	for v := 0; v < n; v++ {
		go runVertex(eng, int32(v), prog)
	}

	active := make([]int32, n)
	for v := range active {
		active[v] = int32(v)
	}
	var activePerRound []int
	round := 0
	for {
		round++
		activePerRound = append(activePerRound, len(active))
		eng.wg.Wait() // all active vertices finished this round

		// Drop vertices that terminated this round.
		live := active[:0]
		for _, v := range active {
			if !eng.done[v] {
				live = append(live, v)
			}
		}
		active = live
		if len(active) == 0 {
			break
		}
		if round >= maxRounds && !eng.aborted {
			eng.aborted = true
		}
		// Swap buffers: what was sent this round becomes receivable.
		eng.sendBuf, eng.recvBuf = eng.recvBuf, eng.sendBuf
		eng.wg.Add(len(active))
		for _, v := range active {
			eng.wake[v] <- struct{}{}
		}
	}

	for v := 0; v < n; v++ {
		if p := eng.panics[v]; p != nil {
			if eng.aborted {
				if _, ok := p.(abortSentinel); ok {
					continue
				}
			}
			return nil, fmt.Errorf("engine: vertex %d panicked: %v", v, p)
		}
	}
	if eng.aborted {
		return nil, fmt.Errorf("%w (%d rounds)", ErrMaxRounds, maxRounds)
	}

	res := &Result{
		Rounds:         eng.rounds,
		CommitRounds:   eng.commits,
		Output:         eng.output,
		ActivePerRound: activePerRound,
	}
	for v := 0; v < n; v++ {
		if res.CommitRounds[v] == 0 {
			res.CommitRounds[v] = res.Rounds[v]
		}
	}
	for v := 0; v < n; v++ {
		if int(eng.rounds[v]) > res.TotalRounds {
			res.TotalRounds = int(eng.rounds[v])
		}
		res.RoundSum += int64(eng.rounds[v])
		res.Messages += eng.msgCount[v]
	}
	return res, nil
}

type abortSentinel struct{}

func runVertex(eng *engineState, v int32, prog Program) {
	api := &API{
		eng: eng,
		v:   v,
		rng: rand.New(rand.NewSource(eng.seed ^ (int64(v)+1)*0x9e3779b97f4a7c)),
	}
	defer func() {
		if p := recover(); p != nil {
			eng.panics[v] = p
			eng.done[v] = true
			eng.wg.Done()
		}
	}()
	out := prog(api)
	// Final round: broadcast the output once, then terminate completely.
	api.Broadcast(Final{Output: out})
	api.flush()
	api.round++
	eng.rounds[v] = api.round
	eng.output[v] = out
	eng.done[v] = true
	eng.wg.Done()
}

// ID returns this vertex's ID (also its identifier in the ID assignment).
func (a *API) ID() int { return int(a.v) }

// N returns the number of vertices in the graph; per the model, n is
// global knowledge.
func (a *API) N() int { return a.eng.g.N() }

// Degree returns this vertex's degree in the input graph.
func (a *API) Degree() int { return a.eng.g.Degree(int(a.v)) }

// NeighborIDs returns this vertex's neighbor IDs in ascending order. The
// slice aliases shared storage and must not be modified.
func (a *API) NeighborIDs() []int32 { return a.eng.g.Neighbors(int(a.v)) }

// Round returns the number of rounds this vertex has completed.
func (a *API) Round() int { return int(a.round) }

// NeighborIndex returns the position of vertex id within NeighborIDs, or
// -1 if id is not a neighbor.
func (a *API) NeighborIndex(id int32) int {
	return a.eng.g.NeighborIndex(int(a.v), int(id))
}

// Rand returns this vertex's deterministic PRNG.
func (a *API) Rand() *rand.Rand { return a.rng }

// Commit records that this vertex has irrevocably chosen its output in
// the current round, per Feuilloley's first definition: the vertex may
// keep computing and relaying afterwards, but its commitment round — not
// its termination round — is what CommitRounds reports. Only the first
// call takes effect.
func (a *API) Commit() {
	if a.eng.commits[a.v] == 0 {
		a.eng.commits[a.v] = a.round + 1
	}
}

// Send queues data for the k-th neighbor (index into NeighborIDs); it is
// delivered when the current round completes at the next Next call.
// Sending again to the same neighbor in the same round overwrites.
func (a *API) Send(k int, data any) {
	if a.outbox == nil {
		a.outbox = make(map[int32]any, a.Degree())
	}
	slot := a.eng.g.Rev[a.eng.g.Off[a.v]+int32(k)]
	a.outbox[slot] = data
}

// SendID queues data for the neighbor with vertex ID nbr; it panics if nbr
// is not a neighbor.
func (a *API) SendID(nbr int, data any) {
	k := a.eng.g.NeighborIndex(int(a.v), nbr)
	if k < 0 {
		panic(fmt.Sprintf("engine: vertex %d sending to non-neighbor %d", a.v, nbr))
	}
	a.Send(k, data)
}

// Broadcast queues data for every neighbor.
func (a *API) Broadcast(data any) {
	for k := 0; k < a.Degree(); k++ {
		a.Send(k, data)
	}
}

func (a *API) flush() {
	for slot, data := range a.outbox {
		a.eng.sendBuf[slot] = cell{data: data, has: true}
		a.eng.msgCount[a.v]++
	}
	clear(a.outbox)
}

// Next completes the current round (delivering queued sends) and blocks
// until the next synchronous round begins, returning the messages this
// vertex received, ordered by neighbor index.
func (a *API) Next() []Msg {
	a.flush()
	a.round++
	a.eng.rounds[a.v] = a.round
	a.eng.wg.Done()
	<-a.eng.wake[a.v]
	if a.eng.aborted {
		panic(abortSentinel{})
	}
	g := a.eng.g
	lo, hi := g.Off[a.v], g.Off[a.v+1]
	var msgs []Msg
	for p := lo; p < hi; p++ {
		if a.eng.recvBuf[p].has {
			msgs = append(msgs, Msg{From: g.Adj[p], Data: a.eng.recvBuf[p].data})
			a.eng.recvBuf[p] = cell{}
		}
	}
	return msgs
}

// Idle spends k counted rounds sending nothing and returns every message
// received during them (in arrival order). Algorithms use it to wait out a
// scheduled window while remaining active, exactly as waiting vertices do
// in the paper's RoundSum accounting.
func (a *API) Idle(k int) []Msg {
	var all []Msg
	for i := 0; i < k; i++ {
		all = append(all, a.Next()...)
	}
	return all
}
