package scenario

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzScenarioSpec fuzzes the scenario config parser, mirroring the wire
// codec's FuzzRoundTrip: any input string either fails Parse cleanly or
// yields a validated Spec whose canonical String form round-trips to an
// identical Spec. The seed corpus covers the compact grammar, the JSON
// form, and known-tricky canonicalization cases (crash-round clamps,
// unordered endpoints).
func FuzzScenarioSpec(f *testing.F) {
	f.Add("")
	f.Add("drop=0.25")
	f.Add("drop=0.25,crashfrac=0.1,crashround=5,restart=10,seed=7")
	f.Add("crash=12@5,crash=40@5+10")
	f.Add("edge=+3-7@4,edge=-7-3@9")
	f.Add("crash=3@0+1")
	f.Add("crash=0@1+0")
	f.Add(`{"drop": 0.5, "crashes": [{"v": 3, "round": 4, "restart": 9}]}`)
	f.Add(`{"edges": [{"round": 2, "u": 9, "v": 1, "insert": true}]}`)
	f.Add("drop=1e309")
	f.Add("seed=18446744073709551615")
	f.Add(" drop=0.1 , , crashfrac=0.2 ")
	f.Fuzz(func(t *testing.T, in string) {
		s, err := Parse(in)
		if err != nil {
			return
		}
		// A parsed spec is validated: re-validating is a no-op.
		before := s.Clone()
		if err := s.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned a spec failing Validate: %v", in, err)
		}
		if !reflect.DeepEqual(before, s) {
			t.Fatalf("Parse(%q) returned a non-canonical spec: %+v re-validates to %+v", in, before, s)
		}
		// The canonical string form round-trips to the same spec.
		out := s.String()
		back, err := Parse(out)
		if err != nil {
			t.Fatalf("Parse(%q).String() = %q does not re-parse: %v", in, out, err)
		}
		if !reflect.DeepEqual(s, back) {
			t.Fatalf("round trip of %q via %q: %+v != %+v", in, out, s, back)
		}
		// The compact form never emits JSON syntax.
		if strings.HasPrefix(out, "{") {
			t.Fatalf("String() emitted JSON form %q", out)
		}
		// IsZero agrees with the empty rendering only for truly fault-free
		// specs (modifier-only specs render their modifiers but schedule
		// nothing).
		if out == "" && !s.IsZero() {
			t.Fatalf("non-zero spec %+v rendered empty", s)
		}
	})
}
