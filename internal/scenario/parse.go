package scenario

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the compact CLI form of a Spec: comma-separated key=value
// pairs, e.g.
//
//	drop=0.25,crashfrac=0.1,crashround=5,restart=10,seed=7
//	crash=12@5,crash=40@5+10,edge=+3-7@4,edge=-3-7@9
//
// Keys: drop (probability), crashfrac (probability), crashround (round),
// restart (delay in rounds), seed (uint64), crash=V@R[+K] (explicit crash
// of vertex V at round R, restarting K rounds later if +K is present),
// edge=+U-V@R / edge=-U-V@R (insert/delete edge {U,V} at round R). A
// string starting with '{' is parsed as the JSON form instead. The empty
// string is the zero (fault-free) spec.
func Parse(in string) (*Spec, error) {
	s := &Spec{}
	in = strings.TrimSpace(in)
	if in == "" {
		return s, nil
	}
	if strings.HasPrefix(in, "{") {
		return ParseJSON([]byte(in))
	}
	for _, kv := range strings.Split(in, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("scenario: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "drop":
			s.Drop, err = strconv.ParseFloat(val, 64)
		case "crashfrac":
			s.CrashFrac, err = strconv.ParseFloat(val, 64)
		case "crashround":
			s.CrashRound, err = strconv.Atoi(val)
		case "restart":
			s.RestartAfter, err = strconv.Atoi(val)
		case "seed":
			s.Seed, err = strconv.ParseUint(val, 10, 64)
		case "crash":
			var c Crash
			if c, err = parseCrash(val); err == nil {
				s.Crashes = append(s.Crashes, c)
			}
		case "edge":
			var e EdgeEvent
			if e, err = parseEdge(val); err == nil {
				s.Edges = append(s.Edges, e)
			}
		default:
			return nil, fmt.Errorf("scenario: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: bad %s value %q: %w", key, val, err)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseCrash reads V@R or V@R+K.
func parseCrash(val string) (Crash, error) {
	vs, rest, ok := strings.Cut(val, "@")
	if !ok {
		return Crash{}, fmt.Errorf("want V@R or V@R+K")
	}
	rs, ks, restart := strings.Cut(rest, "+")
	v, err := strconv.Atoi(vs)
	if err != nil {
		return Crash{}, err
	}
	r, err := strconv.Atoi(rs)
	if err != nil {
		return Crash{}, err
	}
	c := Crash{V: v, Round: r}
	if restart {
		k, err := strconv.Atoi(ks)
		if err != nil {
			return Crash{}, err
		}
		if k < 1 {
			return Crash{}, fmt.Errorf("restart delay %d below 1", k)
		}
		c.Restart = r + k
	}
	return c, nil
}

// parseEdge reads +U-V@R (insert) or -U-V@R (delete).
func parseEdge(val string) (EdgeEvent, error) {
	if val == "" || (val[0] != '+' && val[0] != '-') {
		return EdgeEvent{}, fmt.Errorf("want +U-V@R or -U-V@R")
	}
	e := EdgeEvent{Insert: val[0] == '+'}
	pair, rs, ok := strings.Cut(val[1:], "@")
	if !ok {
		return EdgeEvent{}, fmt.Errorf("want +U-V@R or -U-V@R")
	}
	us, vs, ok := strings.Cut(pair, "-")
	if !ok {
		return EdgeEvent{}, fmt.Errorf("want U-V endpoints")
	}
	var err error
	if e.U, err = strconv.Atoi(us); err != nil {
		return EdgeEvent{}, err
	}
	if e.V, err = strconv.Atoi(vs); err != nil {
		return EdgeEvent{}, err
	}
	if e.Round, err = strconv.Atoi(rs); err != nil {
		return EdgeEvent{}, err
	}
	return e, nil
}

// ParseJSON reads the JSON form of a Spec (the same schema the fields'
// json tags define). Unknown fields are rejected — a typoed fault key
// silently parsing as fault-free would invalidate an experiment.
func ParseJSON(in []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(in)))
	dec.DisallowUnknownFields()
	s := &Spec{}
	if err := dec.Decode(s); err != nil {
		return nil, fmt.Errorf("scenario: bad JSON spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// String renders the spec in the canonical compact form: Parse(s.String())
// reproduces s (after validation's endpoint normalization). The zero spec
// renders as the empty string.
func (s *Spec) String() string {
	var parts []string
	if s.Drop != 0 {
		parts = append(parts, "drop="+strconv.FormatFloat(s.Drop, 'g', -1, 64))
	}
	if s.CrashFrac != 0 {
		parts = append(parts, "crashfrac="+strconv.FormatFloat(s.CrashFrac, 'g', -1, 64))
	}
	if s.CrashRound != 0 {
		parts = append(parts, "crashround="+strconv.Itoa(s.CrashRound))
	}
	if s.RestartAfter != 0 {
		parts = append(parts, "restart="+strconv.Itoa(s.RestartAfter))
	}
	if s.Seed != 0 {
		parts = append(parts, "seed="+strconv.FormatUint(s.Seed, 10))
	}
	for _, c := range s.Crashes {
		p := fmt.Sprintf("crash=%d@%d", c.V, c.Round)
		if c.Restart != 0 {
			p = fmt.Sprintf("crash=%d@%d+%d", c.V, c.Round, c.Restart-c.Round)
		}
		parts = append(parts, p)
	}
	for _, e := range s.Edges {
		sign := "-"
		if e.Insert {
			sign = "+"
		}
		parts = append(parts, fmt.Sprintf("edge=%s%d-%d@%d", sign, e.U, e.V, e.Round))
	}
	return strings.Join(parts, ",")
}
