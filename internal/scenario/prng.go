package scenario

import "vavg/internal/engine"

// PRNG is the scenario layer's deterministic decision stream: a
// counter-based generator over the engine's splitmix64 finalizer. Unlike
// the per-vertex math/rand streams algorithm code draws from api.Rand(),
// a PRNG's output is a pure function of (seed, draw index) with no hidden
// state size, so scenario compilation can interleave or replay draws
// freely without perturbing the algorithm streams — the split-seed seam
// the scenarioseam analyzer enforces.
type PRNG struct {
	seed uint64
	ctr  uint64
}

// NewPRNG derives a decision stream from the (run seed, scenario seed)
// pair, the same derivation Compile uses for its internal streams.
func NewPRNG(runSeed int64, scenarioSeed uint64) *PRNG {
	return &PRNG{seed: deriveSeed(runSeed, scenarioSeed, streamEpoch)}
}

// Uint64 returns the next 64-bit draw.
func (p *PRNG) Uint64() uint64 {
	p.ctr++
	return engine.Mix64(p.seed + p.ctr*0x9e3779b97f4a7c15)
}

// Float64 returns the next draw in [0, 1).
func (p *PRNG) Float64() float64 {
	return float64(p.Uint64()>>11) / float64(1<<53)
}

// Intn returns the next draw in [0, n); it panics if n is not positive.
func (p *PRNG) Intn(n int) int {
	if n <= 0 {
		panic("scenario: Intn with non-positive bound")
	}
	return int(p.Uint64() % uint64(n))
}
