// Package scenario is the deterministic adversarial layer of the
// simulator: it turns a declarative fault specification — i.i.d. message
// drops, vertex crashes with optional restarts, dynamic edge schedules —
// into the engine's compiled Adversary plus the epoch structure a dynamic
// run needs. Every decision the layer makes (which deliveries drop, which
// vertices crash) is a pure function of (run seed, scenario seed, spec),
// so a faulty run is byte-reproducible on every backend at any worker
// count, exactly like a fault-free one.
//
// Randomness discipline: scenario code draws only from the package's own
// counter-based PRNG, never from api.Rand() — algorithm randomness and
// fault randomness are separate streams, split from separate seeds. The
// scenarioseam analyzer enforces both directions of that seam (and that
// algorithm packages never import this one).
package scenario

import (
	"fmt"
	"sort"

	"vavg/internal/engine"
	"vavg/internal/graph"
)

// Crash schedules one explicit vertex crash, in addition to (and taking
// precedence over) the random CrashFrac sample.
type Crash struct {
	// V is the vertex to crash.
	V int `json:"v"`
	// Round is the first round the vertex is crashed in (rounds below 2
	// clamp to 2: round 1 is the spawn round and always executes).
	Round int `json:"round"`
	// Restart is the absolute round the vertex reboots from a fresh init,
	// or 0 for crashed-forever.
	Restart int `json:"restart,omitempty"`
}

// EdgeEvent inserts or deletes one undirected edge at the start of a
// round, partitioning the run into epochs (see Epochs).
type EdgeEvent struct {
	// Round is the round the topology change takes effect.
	Round int `json:"round"`
	// U and V are the edge's endpoints (normalized to U < V by Parse and
	// Validate).
	U int `json:"u"`
	V int `json:"v"`
	// Insert distinguishes insertion from deletion.
	Insert bool `json:"insert"`
}

// Spec is the declarative form of an adversarial scenario. The zero value
// is the fault-free scenario: compiling it yields a nil Adversary, so a
// zero-spec run is byte-identical to a scenario-free run by construction.
type Spec struct {
	// Drop is the per-delivery i.i.d. message-drop probability in [0, 1].
	// Each (directed edge, round) delivery is dropped independently; the
	// decision is a pure hash, so re-sends to the same slot in the same
	// round share one verdict.
	Drop float64 `json:"drop,omitempty"`
	// CrashFrac crashes each vertex independently with this probability
	// (an i.i.d. sample, so the realized fraction is binomial around it).
	CrashFrac float64 `json:"crashFrac,omitempty"`
	// CrashRound is the round sampled vertices crash in; 0 means 2, the
	// earliest interceptable round.
	CrashRound int `json:"crashRound,omitempty"`
	// RestartAfter reboots sampled vertices this many rounds after their
	// crash; 0 means crashed-forever.
	RestartAfter int `json:"restartAfter,omitempty"`
	// Seed is the scenario seed, mixed with the run seed to derive every
	// decision stream; 0 means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Crashes lists explicit per-vertex crash events.
	Crashes []Crash `json:"crashes,omitempty"`
	// Edges lists dynamic-topology events.
	Edges []EdgeEvent `json:"edges,omitempty"`
}

// IsZero reports whether the spec schedules no faults at all. Seed,
// CrashRound, and RestartAfter are modifiers, not faults: they are
// ignored when there is nothing for them to modify.
func (s *Spec) IsZero() bool {
	return s.Drop == 0 && s.CrashFrac == 0 && len(s.Crashes) == 0 && len(s.Edges) == 0
}

// Clone returns a deep copy of the spec. Run paths clone before
// validating: Validate canonicalizes in place, and a Spec shared across
// sweep workers must stay untouched.
func (s *Spec) Clone() *Spec {
	c := *s
	c.Crashes = append([]Crash(nil), s.Crashes...)
	c.Edges = append([]EdgeEvent(nil), s.Edges...)
	return &c
}

// Validate checks ranges and normalizes edge endpoints to U < V.
func (s *Spec) Validate() error {
	if s.Drop < 0 || s.Drop > 1 {
		return fmt.Errorf("scenario: drop probability %v outside [0, 1]", s.Drop)
	}
	if s.CrashFrac < 0 || s.CrashFrac > 1 {
		return fmt.Errorf("scenario: crash fraction %v outside [0, 1]", s.CrashFrac)
	}
	if s.CrashRound < 0 {
		return fmt.Errorf("scenario: negative crash round %d", s.CrashRound)
	}
	if s.RestartAfter < 0 {
		return fmt.Errorf("scenario: negative restart delay %d", s.RestartAfter)
	}
	for i := range s.Crashes {
		c := &s.Crashes[i]
		if c.V < 0 {
			return fmt.Errorf("scenario: crash %d: negative vertex %d", i, c.V)
		}
		if c.Round < 0 {
			return fmt.Errorf("scenario: crash %d: negative round %d", i, c.Round)
		}
		if c.Restart < 0 {
			return fmt.Errorf("scenario: crash %d: negative restart round %d", i, c.Restart)
		}
		// Canonicalize to the engine's clamps now, so the compact String
		// form round-trips through Parse unchanged.
		if c.Round < 2 {
			c.Round = 2
		}
		if c.Restart != 0 && c.Restart <= c.Round {
			c.Restart = c.Round + 1
		}
	}
	// Canonicalize empty schedules to nil (the JSON form can decode "[]"
	// into an empty non-nil slice) so validated specs compare and clone
	// consistently.
	if len(s.Crashes) == 0 {
		s.Crashes = nil
	}
	if len(s.Edges) == 0 {
		s.Edges = nil
	}
	for i := range s.Edges {
		e := &s.Edges[i]
		if e.U < 0 || e.V < 0 {
			return fmt.Errorf("scenario: edge event %d: negative endpoint", i)
		}
		if e.U == e.V {
			return fmt.Errorf("scenario: edge event %d: self-loop at %d", i, e.U)
		}
		if e.Round < 1 {
			return fmt.Errorf("scenario: edge event %d: round %d below 1", i, e.Round)
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
	}
	return nil
}

// Scenario PRNG stream tags: each derived decision stream mixes a
// distinct tag so drop verdicts, crash sampling, and epoch reseeding
// never correlate.
const (
	streamDrop  = 0x0d
	streamCrash = 0xc0
	streamEpoch = 0xe0
)

// deriveSeed folds (run seed, scenario seed, stream tag) into one 64-bit
// stream seed through the engine's splitmix64 finalizer.
func deriveSeed(runSeed int64, scenarioSeed uint64, stream uint64) uint64 {
	if scenarioSeed == 0 {
		scenarioSeed = 1
	}
	return engine.Mix64(engine.Mix64(uint64(runSeed)^scenarioSeed) + stream)
}

// probBar converts a probability to the 64-bit threshold form the engine
// compares hashes against: a decision fires iff hash < bar.
func probBar(p float64) uint64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return ^uint64(0)
	}
	return uint64(p * float64(1<<32) * float64(1<<32))
}

// Compile builds the engine Adversary for an n-vertex run: the drop
// threshold, the sampled-plus-explicit crash schedule, both normalized
// and ready for any backend. A spec with no drop and no crashes compiles
// to nil — the literal fault-free hot path — even when it carries edge
// events (those are epoch structure, not engine state; see Epochs).
func (s *Spec) Compile(n int, runSeed int64) (*engine.Adversary, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if s.Drop == 0 && s.CrashFrac == 0 && len(s.Crashes) == 0 {
		return nil, nil
	}
	adv := &engine.Adversary{
		Seed:    deriveSeed(runSeed, s.Seed, streamDrop),
		DropBar: probBar(s.Drop),
	}
	if s.CrashFrac > 0 || len(s.Crashes) > 0 {
		adv.CrashAt = make([]int32, n)
		restarts := false
		if s.CrashFrac > 0 {
			crashRound := s.CrashRound
			if crashRound == 0 {
				crashRound = 2
			}
			sel := deriveSeed(runSeed, s.Seed, streamCrash)
			bar := probBar(s.CrashFrac)
			for v := 0; v < n; v++ {
				if engine.Mix64(sel^uint64(v)) < bar {
					adv.CrashAt[v] = int32(crashRound)
				}
			}
			if s.RestartAfter > 0 {
				restarts = true
			}
		}
		for _, c := range s.Crashes {
			if c.V >= n {
				return nil, fmt.Errorf("scenario: crash vertex %d outside graph of %d vertices", c.V, n)
			}
			if c.Restart != 0 {
				restarts = true
			}
		}
		if restarts {
			adv.RestartAt = make([]int32, n)
			if s.CrashFrac > 0 && s.RestartAfter > 0 {
				for v := 0; v < n; v++ {
					if adv.CrashAt[v] != 0 {
						adv.RestartAt[v] = adv.CrashAt[v] + int32(s.RestartAfter)
					}
				}
			}
		}
		// Explicit events override the sample.
		for _, c := range s.Crashes {
			adv.CrashAt[c.V] = int32(c.Round)
			if adv.RestartAt != nil {
				adv.RestartAt[c.V] = int32(c.Restart)
			}
		}
	}
	if err := adv.Normalize(n); err != nil {
		return nil, err
	}
	return adv, nil
}

// EpochSeed derives the drop-stream reseed for repair epoch i, so each
// epoch's loss pattern is fresh but still a pure function of the seeds.
func (s *Spec) EpochSeed(runSeed int64, epoch int) int64 {
	return int64(deriveSeed(runSeed, s.Seed, streamEpoch+uint64(epoch)))
}

// Epoch is one topology era of a dynamic run: the edge events taking
// effect at its start, with Affected listing every endpoint they touch.
type Epoch struct {
	// Round is the scheduled round of this epoch's events (informational:
	// repair runs re-execute affected vertices after the base run).
	Round int
	// Events are this epoch's insertions and deletions.
	Events []EdgeEvent
	// Affected lists the distinct endpoints of Events, ascending.
	Affected []int
}

// Epochs groups the spec's edge events by round, ascending — the repair
// schedule of a dynamic run. Events whose endpoints fall outside the
// n-vertex graph are rejected.
func (s *Spec) Epochs(n int) ([]Epoch, error) {
	if len(s.Edges) == 0 {
		return nil, nil
	}
	events := make([]EdgeEvent, len(s.Edges))
	copy(events, s.Edges)
	sort.SliceStable(events, func(i, j int) bool { return events[i].Round < events[j].Round })
	var out []Epoch
	for _, e := range events {
		if e.U >= n || e.V >= n {
			return nil, fmt.Errorf("scenario: edge event {%d,%d} outside graph of %d vertices", e.U, e.V, n)
		}
		if len(out) == 0 || out[len(out)-1].Round != e.Round {
			out = append(out, Epoch{Round: e.Round})
		}
		ep := &out[len(out)-1]
		ep.Events = append(ep.Events, e)
	}
	for i := range out {
		seen := map[int]bool{}
		for _, e := range out[i].Events {
			seen[e.U] = true
			seen[e.V] = true
		}
		for v := range seen {
			out[i].Affected = append(out[i].Affected, v)
		}
		sort.Ints(out[i].Affected)
	}
	return out, nil
}

// Apply produces the graph after an epoch's events: deletions remove the
// named edges (missing edges are ignored), insertions add them (existing
// edges are kept once). The rebuilt graph keeps the input's name and
// certified arboricity bound — the bound may no longer be tight after
// churn, which is part of what degradation runs measure.
func Apply(g *graph.Graph, events []EdgeEvent) *graph.Graph {
	drop := map[graph.Edge]bool{}
	add := map[graph.Edge]bool{}
	for _, e := range events {
		ge := graph.Edge{U: int32(e.U), V: int32(e.V)}
		if e.Insert {
			add[ge] = true
			delete(drop, ge)
		} else {
			drop[ge] = true
			delete(add, ge)
		}
	}
	var edges []graph.Edge
	for _, e := range g.Edges() {
		if drop[e] || add[e] {
			continue
		}
		edges = append(edges, e)
	}
	for e := range add {
		edges = append(edges, e)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	ng := graph.FromEdges(g.N(), edges)
	ng.Name = g.Name
	ng.ArborBound = g.ArborBound
	return ng
}
