package scenario

import (
	"reflect"
	"testing"

	"vavg/internal/graph"
)

func TestParseCompact(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
	}{
		{"", Spec{}},
		{"drop=0.25", Spec{Drop: 0.25}},
		{"drop=0.25,crashfrac=0.1,crashround=5,restart=10,seed=7",
			Spec{Drop: 0.25, CrashFrac: 0.1, CrashRound: 5, RestartAfter: 10, Seed: 7}},
		{"crash=12@5,crash=40@5+10",
			Spec{Crashes: []Crash{{V: 12, Round: 5}, {V: 40, Round: 5, Restart: 15}}}},
		{"edge=+3-7@4,edge=-7-3@9",
			Spec{Edges: []EdgeEvent{
				{Round: 4, U: 3, V: 7, Insert: true},
				{Round: 9, U: 3, V: 7, Insert: false}, // endpoints normalized U < V
			}}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if !reflect.DeepEqual(*got, c.want) {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, *got, c.want)
		}
	}
}

func TestParseJSONForm(t *testing.T) {
	got, err := Parse(`{"drop": 0.5, "crashes": [{"v": 3, "round": 4, "restart": 9}]}`)
	if err != nil {
		t.Fatal(err)
	}
	want := Spec{Drop: 0.5, Crashes: []Crash{{V: 3, Round: 4, Restart: 9}}}
	if !reflect.DeepEqual(*got, want) {
		t.Errorf("got %+v, want %+v", *got, want)
	}
	if _, err := Parse(`{"dorp": 0.5}`); err == nil {
		t.Error("unknown JSON field should be rejected")
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"drop=2",            // probability out of range
		"crashfrac=-0.1",    // negative probability
		"bogus=1",           // unknown key
		"drop",              // not key=value
		"crash=5",           // missing @round
		"crash=5@3+0",       // restart delay below 1
		"edge=3-7@4",        // missing +/- sign
		"edge=+3-3@4",       // self-loop
		"edge=+3-7@0",       // round below 1
		`{"drop": "x"}`,     // JSON type mismatch
		"crashround=-1",     // negative round
		"restart=-2",        // negative delay
		"crash=-1@5",        // negative vertex
		"edge=+3-7@-1",      // negative round
		"drop=0.1,drop=zzz", // unparsable float
	} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) should fail", in)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	specs := []*Spec{
		{},
		{Drop: 0.25, Seed: 9},
		{CrashFrac: 0.05, CrashRound: 3, RestartAfter: 6},
		{Drop: 0.1, Crashes: []Crash{{V: 2, Round: 4}, {V: 9, Round: 4, Restart: 12}},
			Edges: []EdgeEvent{{Round: 3, U: 1, V: 5, Insert: true}}},
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
		got, err := Parse(s.String())
		if err != nil {
			t.Errorf("Parse(%q): %v", s.String(), err)
			continue
		}
		if !reflect.DeepEqual(got, s) {
			t.Errorf("round trip of %q: got %+v, want %+v", s.String(), got, s)
		}
	}
}

func TestCompile(t *testing.T) {
	// Faultless specs — including edge-only ones — compile to nil: the
	// engine keeps its literal fault-free hot path.
	for _, s := range []*Spec{
		{},
		{Seed: 9, CrashRound: 4, RestartAfter: 2},
		{Edges: []EdgeEvent{{Round: 2, U: 0, V: 1}}},
	} {
		adv, err := s.Compile(100, 1)
		if err != nil {
			t.Fatal(err)
		}
		if adv != nil {
			t.Errorf("%+v compiled to a non-nil adversary", s)
		}
	}

	// An explicit crash schedule lands on the named vertices with the
	// engine's clamps applied.
	s := &Spec{Crashes: []Crash{{V: 3, Round: 0}, {V: 7, Round: 6, Restart: 2}}}
	adv, err := s.Compile(10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if adv.CrashAt[3] != 2 {
		t.Errorf("crash round 0 should clamp to 2, got %d", adv.CrashAt[3])
	}
	if adv.CrashAt[7] != 6 || adv.RestartAt[7] != 7 {
		t.Errorf("restart at/below crash should clamp to crash+1, got crash %d restart %d",
			adv.CrashAt[7], adv.RestartAt[7])
	}
	if _, err := (&Spec{Crashes: []Crash{{V: 12, Round: 3}}}).Compile(10, 1); err == nil {
		t.Error("crash vertex outside the graph should be rejected")
	}

	// The CrashFrac sample is deterministic in (run seed, scenario seed)
	// and changes with both.
	frac := &Spec{CrashFrac: 0.2, Seed: 5}
	a1, err := frac.Compile(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := frac.Compile(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1.CrashAt, a2.CrashAt) {
		t.Error("same seeds must sample the same crash set")
	}
	a3, err := frac.Compile(500, 4)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a1.CrashAt, a3.CrashAt) {
		t.Error("different run seeds should sample different crash sets")
	}
	crashed := 0
	for _, r := range a1.CrashAt {
		if r != 0 {
			crashed++
		}
	}
	if crashed < 50 || crashed > 150 {
		t.Errorf("CrashFrac 0.2 over 500 vertices sampled %d crashes", crashed)
	}
}

func TestPRNGDeterminism(t *testing.T) {
	p1 := NewPRNG(7, 3)
	p2 := NewPRNG(7, 3)
	for i := 0; i < 100; i++ {
		if p1.Uint64() != p2.Uint64() {
			t.Fatal("same seeds must generate the same stream")
		}
	}
	p3 := NewPRNG(7, 4)
	same := true
	p1 = NewPRNG(7, 3)
	for i := 0; i < 100; i++ {
		if p1.Uint64() != p3.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different scenario seeds should generate different streams")
	}
	f := NewPRNG(1, 1)
	for i := 0; i < 1000; i++ {
		if x := f.Float64(); x < 0 || x >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", x)
		}
	}
}

func TestEpochsAndApply(t *testing.T) {
	s := &Spec{Edges: []EdgeEvent{
		{Round: 5, U: 2, V: 3, Insert: true},
		{Round: 2, U: 0, V: 1, Insert: false},
		{Round: 5, U: 3, V: 4, Insert: false},
	}}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	eps, err := s.Epochs(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 2 || eps[0].Round != 2 || eps[1].Round != 5 {
		t.Fatalf("epochs = %+v, want rounds [2 5]", eps)
	}
	if !reflect.DeepEqual(eps[0].Affected, []int{0, 1}) ||
		!reflect.DeepEqual(eps[1].Affected, []int{2, 3, 4}) {
		t.Errorf("affected sets = %v / %v", eps[0].Affected, eps[1].Affected)
	}
	if _, err := (&Spec{Edges: []EdgeEvent{{Round: 2, U: 0, V: 99}}}).Epochs(10); err == nil {
		t.Error("edge endpoint outside the graph should be rejected")
	}

	g := graph.Ring(6) // edges {0,1} {1,2} ... {5,0}
	ng := Apply(g, []EdgeEvent{
		{U: 0, V: 1, Insert: false},
		{U: 2, V: 4, Insert: true},
		{U: 1, V: 2, Insert: true},  // already present: kept once
		{U: 3, V: 5, Insert: false}, // absent: ignored
	})
	if ng.N() != 6 || ng.M() != g.M() {
		t.Errorf("applied graph has n=%d m=%d, want n=6 m=%d", ng.N(), ng.M(), g.M())
	}
	if ng.HasEdge(0, 1) {
		t.Error("deleted edge {0,1} survived")
	}
	if !ng.HasEdge(2, 4) {
		t.Error("inserted edge {2,4} missing")
	}
	if !ng.HasEdge(1, 2) {
		t.Error("re-inserted existing edge {1,2} lost")
	}
	if ng.Name != g.Name || ng.ArborBound != g.ArborBound {
		t.Error("Apply must keep the graph's name and arboricity bound")
	}
}

func TestCloneIsolation(t *testing.T) {
	s := &Spec{Crashes: []Crash{{V: 1, Round: 0}}, Edges: []EdgeEvent{{Round: 2, U: 5, V: 3}}}
	c := s.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Validate canonicalized the clone (crash round clamp, endpoint swap);
	// the original must be untouched.
	if s.Crashes[0].Round != 0 || s.Edges[0].U != 5 {
		t.Error("Clone did not isolate the original spec from canonicalization")
	}
	if c.Crashes[0].Round != 2 || c.Edges[0].U != 3 {
		t.Error("Validate did not canonicalize the clone")
	}
}
