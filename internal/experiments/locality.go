package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"vavg"
	"vavg/internal/metrics"
)

// LocalityPoint is one cell of the cache-layout matrix: the same
// (algorithm, family, n, seed) run on the step backend over an mmap'd CSR
// file, measured under every combination of the vertex-relabeling pass
// (Relabel "off" or "rcm") and the shard-count policy (ShardMode "auto"
// lets the backend pick, "fixed" pins localityFixedShards). Both knobs
// are pure layout: the LOCAL-model accounting is enforced identical
// across all four cells, so the wall-clock and allocation columns isolate
// what the memory layout costs or buys.
type LocalityPoint struct {
	Relabel   string `json:"relabel"`
	ShardMode string `json:"shardMode"`
	// Shards is the shard count the run actually used (the backend's
	// choice on auto rows, localityFixedShards on fixed rows).
	Shards      int     `json:"shards"`
	Algorithm   string  `json:"algorithm"`
	Family      string  `json:"family"`
	N           int     `json:"n"`
	M           int     `json:"m"`
	TotalRounds int     `json:"totalRounds"`
	RoundSum    int64   `json:"roundSum"`
	WallMs      float64 `json:"wallMs"`
	Allocs      uint64  `json:"allocs"`
	// Speedup is the relabel-off wall time of the same (algorithm, family,
	// shard mode) cell divided by this cell's — >1 means the RCM layout is
	// faster, 1.0 on the off rows by construction. An honest single-digit
	// figure on a 1-CPU container is expected: the layout pass mostly pays
	// off where cross-shard merge traffic and cache pressure exist at all.
	Speedup float64 `json:"speedup"`
}

// localityFixedShards is the pinned shard count of the "fixed" rows: the
// same constant on every host (unlike the auto rows, which track the
// machine), so committed baselines stay comparable across machines.
const localityFixedShards = 8

// localityAlgs are the measured algorithms: partition is the one-shot
// cheap-state workhorse, arblinial-o1 layers the §7 Idle-window schedule
// on top — a genuinely multi-round workload where the per-round sweeps
// dominate and the layout has rounds to pay off over.
var localityAlgs = []string{"partition", "arblinial-o1"}

// RunLocalityBench measures the locality matrix at the largest configured
// size: for each family the graph is generated once, written as a raw CSR
// file, released, and loaded back as a shared read-only mapping — the
// out-of-core configuration the relabeling pass targets — then every
// (algorithm, relabel, shard mode) cell runs on the step backend from
// that one mapping. It fails loudly if any cell's accounting differs:
// relabeling and shard policy must never change a Result.
func RunLocalityBench(cfg Config) ([]LocalityPoint, error) {
	cfg = cfg.withDefaults()
	seed := cfg.Seeds[0]
	n := cfg.Sizes[len(cfg.Sizes)-1]
	dir, err := os.MkdirTemp("", "vavg-locality-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	// The relabeled views are memoized per loaded graph; drop them with
	// the temp files rather than holding O(n+m) arrays past the bench.
	defer vavg.GraphCachePurge()

	var out []LocalityPoint
	for _, fam := range backendFamilies {
		famN := n
		if fam.Name == "forests" && famN > outOfCoreForestCap {
			famN = outOfCoreForestCap
		}
		g := fam.Gen(famN)
		path := filepath.Join(dir, fmt.Sprintf("%s-%d.csr", fam.Name, famN))
		if err := vavg.WriteGraphFile(path, g, false); err != nil {
			return nil, fmt.Errorf("locality: %s n=%d write: %w", fam.Name, famN, err)
		}
		g = nil
		runtime.GC()
		loaded, err := vavg.LoadGraph(path)
		if err != nil {
			return nil, fmt.Errorf("locality: %s n=%d load: %w", fam.Name, famN, err)
		}
		for _, name := range localityAlgs {
			alg, err := vavg.ByName(name)
			if err != nil {
				return nil, err
			}
			var cells []LocalityPoint
			for _, relabel := range []string{"off", "rcm"} {
				for _, mode := range []struct {
					name   string
					shards int
				}{{"auto", 0}, {"fixed", localityFixedShards}} {
					pt, rep, err := measureParams(alg, loaded, fam.Name, vavg.Params{
						Arboricity: fam.A, Seed: seed, Backend: "step",
						StepShards: mode.shards, Relabel: relabel,
					})
					if err != nil {
						return nil, fmt.Errorf("locality: %s/%s relabel=%s shards=%s: %w",
							name, fam.Name, relabel, mode.name, err)
					}
					cells = append(cells, LocalityPoint{
						Relabel: relabel, ShardMode: mode.name, Shards: rep.StepShards,
						Algorithm: name, Family: fam.Name, N: pt.N, M: pt.M,
						TotalRounds: pt.TotalRounds, RoundSum: pt.RoundSum,
						WallMs: pt.WallMs, Allocs: pt.Allocs,
					})
				}
			}
			base := cells[0]
			for i := range cells {
				c := &cells[i]
				if c.TotalRounds != base.TotalRounds || c.RoundSum != base.RoundSum {
					return nil, fmt.Errorf("locality: %s/%s relabel=%s shards=%s accounting (%d rounds, %d roundSum) differs from off/auto (%d, %d); a layout knob changed a Result",
						name, fam.Name, c.Relabel, c.ShardMode,
						c.TotalRounds, c.RoundSum, base.TotalRounds, base.RoundSum)
				}
				c.Speedup = 1
				for _, off := range cells {
					if off.Relabel == "off" && off.ShardMode == c.ShardMode && c.WallMs > 0 {
						c.Speedup = off.WallMs / c.WallMs
					}
				}
			}
			out = append(out, cells...)
		}
	}
	return out, nil
}

// runLocality renders the locality matrix (or raw JSON points under
// cfg.JSON).
func runLocality(cfg Config) error {
	cfg = cfg.withDefaults()
	points, err := RunLocalityBench(cfg)
	if err != nil {
		return err
	}
	if cfg.JSON {
		bench := &BackendBench{GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU: runtime.NumCPU(), Locality: points}
		return bench.WriteJSON(cfg.W)
	}
	fmt.Fprintln(cfg.W, "cache-layout matrix (step backend over an mmap'd CSR file; speedup = off / this, same shard mode):")
	var rows [][]string
	for _, pt := range points {
		rows = append(rows, []string{
			pt.Relabel, pt.ShardMode, metrics.I(pt.Shards),
			pt.Algorithm, pt.Family, metrics.I(pt.N),
			metrics.I(pt.TotalRounds), fmt.Sprintf("%.1f", pt.WallMs),
			metrics.I(int(pt.Allocs)), fmt.Sprintf("%.2fx", pt.Speedup),
		})
	}
	metrics.Table(cfg.W, []string{"relabel", "shard mode", "shards", "algorithm", "family",
		"n", "rounds", "wall ms", "allocs", "speedup"}, rows)
	return nil
}
