package experiments

import (
	"strings"
	"testing"
)

// TestMulticoreBench runs the worker-scaling matrix at quick sizes and
// checks its structural contract: one point per (algorithm, procs) cell,
// byte-identical LOCAL accounting down the procs axis, a unit-speedup
// serial baseline, and positive wall/speedup columns everywhere.
func TestMulticoreBench(t *testing.T) {
	points, err := RunMulticoreBench(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(backendAlgs) * len(multicoreProcs); len(points) != want {
		t.Fatalf("got %d points, want %d", len(points), want)
	}
	byAlg := map[string][]MulticorePoint{}
	for _, pt := range points {
		if pt.WallMs <= 0 || pt.Speedup <= 0 {
			t.Errorf("%s procs=%d: non-positive wall %v / speedup %v", pt.Algorithm, pt.Procs, pt.WallMs, pt.Speedup)
		}
		if pt.Shards != points[0].Shards {
			t.Errorf("%s procs=%d: shards %d, want the fixed layout %d", pt.Algorithm, pt.Procs, pt.Shards, points[0].Shards)
		}
		byAlg[pt.Algorithm] = append(byAlg[pt.Algorithm], pt)
	}
	for _, alg := range backendAlgs {
		pts := byAlg[alg]
		base := pts[0]
		if base.Procs != 1 || base.Speedup != 1 {
			t.Errorf("%s: first row = procs %d speedup %v, want the serial baseline", alg, base.Procs, base.Speedup)
		}
		for _, pt := range pts[1:] {
			if pt.TotalRounds != base.TotalRounds || pt.RoundSum != base.RoundSum {
				t.Errorf("%s procs=%d: accounting (%d, %d) differs from serial (%d, %d)",
					alg, pt.Procs, pt.TotalRounds, pt.RoundSum, base.TotalRounds, base.RoundSum)
			}
		}
	}
}

// TestCompareBenchesMulticore pins the gate's handling of the scaling
// rows: matched multicore cells diff like backend points (wall growth
// past the threshold regresses), and a baseline that predates the
// multicore matrix reports the new rows as unmatched without failing.
func TestCompareBenchesMulticore(t *testing.T) {
	mp := func(procs int, wall float64) MulticorePoint {
		return MulticorePoint{Procs: procs, Shards: 8, Algorithm: "ka2", Family: "forests",
			N: 1024, WallMs: wall, Allocs: 1000}
	}
	bp := BackendPoint{Backend: "step", Algorithm: "ka2", Family: "forests", N: 1024, WallMs: 10, Allocs: 1000}
	old := &BackendBench{Points: []BackendPoint{bp}, Multicore: []MulticorePoint{mp(1, 10), mp(4, 5)}}
	fresh := &BackendBench{Points: []BackendPoint{bp}, Multicore: []MulticorePoint{mp(1, 10), mp(4, 9)}}
	rep := CompareBenches(old, fresh, 25)
	if rep.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1 (procs=4 wall +80%%)", rep.Regressions)
	}
	for _, d := range rep.Deltas {
		if wantReg := d.Backend == "step@4procs"; d.Regressed != wantReg {
			t.Errorf("%s: Regressed = %v, want %v", d.Backend, d.Regressed, wantReg)
		}
	}

	// Pre-multicore baseline: the new rows must be reported, not gated.
	pre := &BackendBench{Points: []BackendPoint{bp}}
	rep = CompareBenches(pre, fresh, 25)
	if rep.Regressions != 0 {
		t.Fatalf("pre-multicore baseline regressed: %+v", rep.Deltas)
	}
	if len(rep.Unmatched) != 2 {
		t.Fatalf("Unmatched = %v, want the two multicore rows", rep.Unmatched)
	}
	for _, u := range rep.Unmatched {
		if !strings.Contains(u, "procs") || !strings.Contains(u, "only in new run") {
			t.Errorf("unexpected unmatched entry %q", u)
		}
	}
}
