package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"vavg/internal/engine"
)

// TestBackendBenchJSON checks the BENCH_engine.json artifact shape: the
// JSON mode must emit a parseable BackendBench covering every (family,
// algorithm, backend) cell with sane measurements, and the built-in
// agreement check must have passed.
func TestBackendBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("backend bench is not short")
	}
	var sb strings.Builder
	cfg := Config{JSON: true, W: &sb, Sizes: []int{192}, Seeds: []int64{3}}
	if err := runBackends(cfg); err != nil {
		t.Fatal(err)
	}
	var bench BackendBench
	if err := json.Unmarshal([]byte(sb.String()), &bench); err != nil {
		t.Fatalf("backends JSON does not parse: %v", err)
	}
	want := len(backendFamilies) * len(backendAlgs) * len(engine.Backends())
	if len(bench.Points) != want {
		t.Fatalf("got %d points, want %d", len(bench.Points), want)
	}
	for _, pt := range bench.Points {
		if pt.RoundSum <= 0 || pt.TotalRounds <= 0 || pt.WallMs <= 0 || pt.PeakBytes == 0 {
			t.Errorf("degenerate point %+v", pt)
		}
	}
	if bench.GoMaxProcs <= 0 || bench.GoVersion == "" {
		t.Errorf("missing environment metadata: %+v", bench)
	}
}

// TestBackendBenchSweepTimings checks the serial-vs-parallel artifact
// rows: a multi-worker run must record a serial (workers=1) baseline plus
// one parallel entry at the configured count, with speedup relative to
// the baseline; a one-worker run must omit the section entirely.
func TestBackendBenchSweepTimings(t *testing.T) {
	if testing.Short() {
		t.Skip("backend bench is not short")
	}
	cfg := Config{Sizes: []int{160}, Seeds: []int64{3}, Workers: 4}.withDefaults()
	bench, err := RunBackendBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bench.NumCPU <= 0 {
		t.Errorf("NumCPU = %d, want > 0", bench.NumCPU)
	}
	if len(bench.SweepTimings) != 2 {
		t.Fatalf("got %d sweep timings, want 2: %+v", len(bench.SweepTimings), bench.SweepTimings)
	}
	serial, par := bench.SweepTimings[0], bench.SweepTimings[1]
	if serial.Workers != 1 || serial.Speedup != 1 {
		t.Errorf("serial baseline = %+v, want workers=1 speedup=1", serial)
	}
	if par.Workers != 4 || par.WallMs <= 0 || par.Speedup <= 0 {
		t.Errorf("parallel entry = %+v, want workers=4 with positive wall and speedup", par)
	}

	cfg.Workers = 1
	bench, err = RunBackendBench(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(bench.SweepTimings) != 1 || bench.SweepTimings[0].Workers != 1 {
		t.Errorf("one-worker run recorded %+v, want just the serial entry", bench.SweepTimings)
	}
}

// TestExperimentsParallelMatchesSerial renders every experiment with the
// scheduler serial and with eight workers; the outputs must be
// byte-identical. This is the experiments-level half of the determinism
// contract (vavg.Sweep has the registry-level half).
func TestExperimentsParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment equivalence run is not short")
	}
	for _, e := range All() {
		if e.ID == "backends" || e.ID == "multicore" || e.ID == "outofcore" || e.ID == "locality" {
			continue // wall-clock measurements are never byte-stable
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var outs [2]string
			for i, workers := range []int{1, 8} {
				var sb strings.Builder
				if err := e.Run(Config{Quick: true, W: &sb, Workers: workers}); err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				outs[i] = sb.String()
			}
			if outs[0] != outs[1] {
				t.Errorf("parallel output differs from serial:\nserial:\n%s\nparallel:\n%s", outs[0], outs[1])
			}
		})
	}
}
