package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"vavg/internal/engine"
)

// TestBackendBenchJSON checks the BENCH_engine.json artifact shape: the
// JSON mode must emit a parseable BackendBench covering every (family,
// algorithm, backend) cell with sane measurements, and the built-in
// agreement check must have passed.
func TestBackendBenchJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("backend bench is not short")
	}
	var sb strings.Builder
	cfg := Config{JSON: true, W: &sb, Sizes: []int{192}, Seeds: []int64{3}}
	if err := runBackends(cfg); err != nil {
		t.Fatal(err)
	}
	var bench BackendBench
	if err := json.Unmarshal([]byte(sb.String()), &bench); err != nil {
		t.Fatalf("backends JSON does not parse: %v", err)
	}
	want := len(backendFamilies) * len(backendAlgs) * len(engine.Backends())
	if len(bench.Points) != want {
		t.Fatalf("got %d points, want %d", len(bench.Points), want)
	}
	for _, pt := range bench.Points {
		if pt.RoundSum <= 0 || pt.TotalRounds <= 0 || pt.WallMs <= 0 || pt.PeakBytes == 0 {
			t.Errorf("degenerate point %+v", pt)
		}
	}
	if bench.GoMaxProcs <= 0 || bench.GoVersion == "" {
		t.Errorf("missing environment metadata: %+v", bench)
	}
}
