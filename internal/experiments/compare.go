package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"vavg/internal/metrics"
)

// LoadBench reads a committed benchmark baseline (the BENCH_engine.json
// format). The decode is deliberately tolerant of schema drift in both
// directions: columns the baseline predates (the faults matrix, new point
// metrics) default to their zero values, and columns a newer writer added
// are ignored — so the regression gate keeps working across baselines
// generated before a metric existed. A file with no benchmark points at
// all is rejected: it is an empty or foreign JSON document, and diffing
// against it would silently pass every gate.
func LoadBench(path string) (*BackendBench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bench BackendBench
	if err := json.Unmarshal(data, &bench); err != nil {
		return nil, fmt.Errorf("baseline %s does not parse: %w", path, err)
	}
	if len(bench.Points) == 0 {
		return nil, fmt.Errorf("baseline %s holds no benchmark points", path)
	}
	return &bench, nil
}

// BenchDelta compares one (backend, algorithm, family, n) point of a fresh
// backend benchmark against the same point of a committed baseline.
// Percentages are relative growth: +10 means the new run is 10% slower
// (or allocates 10% more) than the baseline.
type BenchDelta struct {
	Backend   string
	Algorithm string
	Family    string
	N         int

	OldWallMs, NewWallMs float64
	WallPct              float64
	OldAllocs, NewAllocs uint64
	AllocPct             float64
	// Regressed marks points whose wall time or allocation count grew past
	// the comparison threshold.
	Regressed bool
}

// CompareReport is the outcome of checking a fresh BackendBench against a
// committed baseline (typically BENCH_engine.json).
type CompareReport struct {
	ThresholdPct float64
	Deltas       []BenchDelta
	// Unmatched lists points present in only one of the two benchmarks
	// (new backends, removed sizes); they are reported but never fail the
	// gate, so the matrix can grow without invalidating old baselines.
	Unmatched []string
	// Regressions counts the deltas with Regressed set.
	Regressions int
}

func benchKey(pt BackendPoint) string {
	return fmt.Sprintf("%s/%s/%s/n=%d", pt.Backend, pt.Algorithm, pt.Family, pt.N)
}

// comparePoints folds a benchmark's multicore rows into its backend
// points so the regression gate diffs both through one keyed pass. The
// synthesized backend name carries the procs axis; baselines that
// predate the multicore matrix simply contribute no such keys, which the
// gate reports as unmatched rather than failing.
func comparePoints(b *BackendBench) []BackendPoint {
	points := append([]BackendPoint(nil), b.Points...)
	for _, mp := range b.Multicore {
		points = append(points, BackendPoint{
			Backend:   fmt.Sprintf("step@%dprocs", mp.Procs),
			Algorithm: mp.Algorithm, Family: mp.Family, N: mp.N,
			WallMs: mp.WallMs, Allocs: mp.Allocs,
		})
	}
	for _, op := range b.OutOfCore {
		points = append(points, BackendPoint{
			Backend:   "outofcore-" + op.Source,
			Algorithm: op.Algorithm, Family: op.Family, N: op.N,
			WallMs: op.WallMs, Allocs: op.Allocs,
		})
	}
	for _, lp := range b.Locality {
		points = append(points, BackendPoint{
			Backend:   fmt.Sprintf("locality-%s@%s", lp.Relabel, lp.ShardMode),
			Algorithm: lp.Algorithm, Family: lp.Family, N: lp.N,
			WallMs: lp.WallMs, Allocs: lp.Allocs,
		})
	}
	return points
}

func pctGrowth(old, new float64) float64 {
	if old <= 0 {
		return 0
	}
	return (new/old - 1) * 100
}

// CompareBenches diffs a fresh benchmark against a baseline, point by
// point. A point regresses when its wall time or total allocation count
// grows by more than thresholdPct percent. Allocation counts are nearly
// deterministic, so they catch real regressions at tight thresholds; wall
// time is noisy and is what the threshold headroom is for.
func CompareBenches(old, fresh *BackendBench, thresholdPct float64) *CompareReport {
	rep := &CompareReport{ThresholdPct: thresholdPct}
	oldPoints, freshPoints := comparePoints(old), comparePoints(fresh)
	oldByKey := make(map[string]BackendPoint, len(oldPoints))
	for _, pt := range oldPoints {
		oldByKey[benchKey(pt)] = pt
	}
	matched := make(map[string]bool, len(freshPoints))
	for _, pt := range freshPoints {
		key := benchKey(pt)
		base, ok := oldByKey[key]
		if !ok {
			rep.Unmatched = append(rep.Unmatched, key+" (only in new run)")
			continue
		}
		matched[key] = true
		d := BenchDelta{
			Backend: pt.Backend, Algorithm: pt.Algorithm, Family: pt.Family, N: pt.N,
			OldWallMs: base.WallMs, NewWallMs: pt.WallMs,
			WallPct:   pctGrowth(base.WallMs, pt.WallMs),
			OldAllocs: base.Allocs, NewAllocs: pt.Allocs,
			AllocPct: pctGrowth(float64(base.Allocs), float64(pt.Allocs)),
		}
		if d.WallPct > thresholdPct || d.AllocPct > thresholdPct {
			d.Regressed = true
			rep.Regressions++
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for key := range oldByKey {
		if !matched[key] {
			rep.Unmatched = append(rep.Unmatched, key+" (only in baseline)")
		}
	}
	sort.Strings(rep.Unmatched)
	return rep
}

// Write renders the comparison as a table, worst wall-time growth first.
func (r *CompareReport) Write(w io.Writer) {
	deltas := append([]BenchDelta(nil), r.Deltas...)
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].WallPct > deltas[j].WallPct })
	var rows [][]string
	for _, d := range deltas {
		flag := ""
		if d.Regressed {
			flag = "REGRESSED"
		}
		rows = append(rows, []string{
			d.Backend, d.Algorithm, d.Family, metrics.I(d.N),
			fmt.Sprintf("%.1f", d.OldWallMs), fmt.Sprintf("%.1f", d.NewWallMs),
			fmt.Sprintf("%+.1f%%", d.WallPct),
			metrics.I(int(d.OldAllocs)), metrics.I(int(d.NewAllocs)),
			fmt.Sprintf("%+.1f%%", d.AllocPct), flag,
		})
	}
	metrics.Table(w, []string{"backend", "algorithm", "family", "n",
		"wall ms (old)", "wall ms (new)", "wall Δ", "allocs (old)", "allocs (new)", "allocs Δ", ""}, rows)
	for _, u := range r.Unmatched {
		fmt.Fprintf(w, "unmatched: %s\n", u)
	}
	fmt.Fprintf(w, "%d/%d points regressed (threshold %+.0f%%)\n",
		r.Regressions, len(r.Deltas), r.ThresholdPct)
}
