// Package experiments regenerates every evaluation artifact of the paper:
// each row of Table 1 (vertex coloring) and Table 2 (MIS, edge coloring,
// maximal matching), Figure 1 (the segmentation plan), the Lemma 6.1
// active-vertex decay, and the Feuilloley ring reference points the paper
// builds on. Each experiment sweeps graph sizes (and arboricity where the
// bound depends on it), measures the vertex-averaged and worst-case round
// complexity plus palette sizes, and prints the series next to the
// theoretical bounds so the claimed shapes can be checked directly.
//
// The experiment IDs match the per-experiment index in DESIGN.md; the
// cmd/vavgbench tool and the root benchmarks both drive this package.
package experiments

import (
	"fmt"
	"io"
	"math"

	"vavg"
	"vavg/internal/baseline"
	"vavg/internal/coloring"
	"vavg/internal/engine"
	"vavg/internal/graph"
	"vavg/internal/metrics"
	"vavg/internal/parallel"
	"vavg/internal/segment"
)

// Config controls an experiment run.
type Config struct {
	// Sizes are the graph sizes swept; nil selects defaults (reduced under
	// Quick).
	Sizes []int
	// Seeds are the run seeds; the tables report medians across them.
	Seeds []int64
	// Quick shrinks the sweep for smoke runs and unit tests.
	Quick bool
	// JSON switches experiments that support it (currently "backends") to
	// machine-readable output instead of rendered tables.
	JSON bool
	// StepShards fixes the step backend's shard count for every run point
	// (0 means GOMAXPROCS). Like Workers it never changes rendered output —
	// shard layout is an execution knob, not a semantic one.
	StepShards int
	// Workers bounds the sweep scheduler's concurrency: every experiment
	// fans its independent (algorithm, graph, seed) run points across this
	// many goroutines. 0 means runtime.GOMAXPROCS. Worker count never
	// changes rendered output — results are collected by point index, and
	// each point derives its PRNG streams from its own seed.
	Workers int
	// W receives the rendered tables.
	W io.Writer
}

func (c Config) withDefaults() Config {
	if c.W == nil {
		c.W = io.Discard
	}
	if len(c.Sizes) == 0 {
		if c.Quick {
			c.Sizes = []int{256, 1024}
		} else {
			c.Sizes = []int{1024, 4096, 16384}
		}
	}
	if len(c.Seeds) == 0 {
		if c.Quick {
			c.Seeds = []int64{1}
		} else {
			c.Seeds = []int64{1, 2, 3}
		}
	}
	return c
}

// Experiment is one reproducible evaluation artifact.
type Experiment struct {
	// ID is the experiment key (DESIGN.md per-experiment index).
	ID string
	// Artifact names the paper artifact reproduced.
	Artifact string
	// Claim summarizes what shape the run should exhibit.
	Claim string
	// Run executes the experiment and renders its table.
	Run func(cfg Config) error
}

// All returns the experiment catalog in presentation order.
func All() []Experiment {
	return []Experiment{
		{"partition-decay", "Lemma 6.1 / Thm 6.3", "active set halves per round; vertex-avg O(1) vs worst-case Θ(log n)", runPartitionDecay},
		{"forest-decomp", "§7.1 Thm 7.1", "O(a)-forest decomposition at O(1) vertex-avg vs Θ(log n) baseline", runForestDecomp},
		{"t1-a2logn", "Table 1 row O(a²logn)/O(1)", "flat vertex-avg; baseline grows with log n", runA2LogN},
		{"t1-ka2", "Table 1 row O(ka²)/O(log^(k)n)", "loglog-shaped vertex-avg (k=2), shrinking with k", runKA2},
		{"t1-a2logstar", "Table 1 row O(a²log*n)/O(log*n)", "log*-shaped vertex-avg at k=ρ(n)", runA2LogStar},
		{"t1-ka", "Table 1 row O(ka)/O(a·log^(k)n)", "O(a) colors; a-dependent loglog vertex-avg", runKA},
		{"t1-alogstar", "Table 1 row O(alog*n)/O(alog*n)", "O(a log* n) colors and vertex-avg at k=ρ(n)", runALogStar},
		{"t1-onepluseta", "Table 1 row O(a^{1+η})/O(log a loglog n)", "n-independent palette; loglog-in-n vertex-avg", runOnePlusEta},
		{"t1-dp1-det", "Table 1 row Δ+1 (Det.)", "vertex-avg depends on a, not Δ", runDP1Det},
		{"t1-dp1-rand", "Table 1 row Δ+1 (Rand.) O(1)", "constant vertex-avg w.h.p.", runDP1Rand},
		{"t1-aloglog-rand", "Table 1 row O(aloglogn) (Rand.) O(1)", "constant vertex-avg w.h.p.", runALogLogRand},
		{"t2-mis", "Table 2 MIS", "O(a+log*n)-shaped vertex-avg vs Θ(log n)-shaped baselines", runMIS},
		{"t2-edge", "Table 2 (2Δ-1)-edge-coloring", "O(a+log*n)-shaped vertex-avg, ≤2Δ-1 colors", runEdge},
		{"t2-mm", "Table 2 maximal matching", "O(a+log*n)-shaped vertex-avg", runMM},
		{"fig1", "Figure 1", "segment lengths log^(i) n and per-segment schedule", runFig1},
		{"ring-reference", "§2 context [12]", "leader election: O(log n) avg commitment vs Θ(n) worst; ring 3-coloring: log* both", runRingReference},
		{"backends", "engine core (DESIGN.md §1)", "all backends agree on every measure; pool and step cut per-round cost", runBackends},
		{"multicore", "staged lanes (DESIGN.md §9)", "step backend scales with workers; Results byte-identical at every GOMAXPROCS", runMulticore},
		{"faults", "fault model (DESIGN.md §8)", "degradation is graceful and deterministic: losses and crashes raise rounds and conflicts smoothly", runFaults},
		{"outofcore", "out-of-core store (DESIGN.md §10)", "mmap'd CSR files run byte-identical to generated graphs; memory-budget columns show what the mapping buys", runOutOfCore},
		{"locality", "cache layout (DESIGN.md §11)", "RCM relabeling and shard autotuning never change a Result; wall-clock columns isolate what the layout buys", runLocality},
		{"ablation-eps", "design choice (§6.1)", "eps trades the palette factor A=(2+eps)a against decay speed", runAblationEps},
		{"ablation-k", "design choice (§7.5)", "k trades colors against vertex-averaged rounds", runAblationK},
		{"table1", "Table 1 (summary)", "all vertex-coloring rows at one size", runTable1},
		{"table2", "Table 2 (summary)", "all symmetry-breaking rows at one size", runTable2},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q", id)
}

// graphCache shares generated graphs across the algorithms and
// experiments that sweep the same (family, n, params) grid; see
// cachedGraph for the keying convention.
var graphCache = graph.NewCache()

// cachedGraph returns the graph cached under key, generating it on first
// use. The key must encode the family and every generator parameter
// (size, arboricity, seed); cached graphs are shared by concurrent runs
// and are strictly read-only.
func cachedGraph(key string, gen func() *vavg.Graph) *vavg.Graph {
	return graphCache.Get(key, gen)
}

// forestCached is the cache entry point for the workhorse family.
func forestCached(n, a int, seed int64) *vavg.Graph {
	return cachedGraph(graph.CacheKey("forests", n, "a", a, "seed", seed),
		func() *vavg.Graph { return vavg.ForestUnion(n, a, seed) })
}

// runPoint is one (algorithm, graph, params) cell of an experiment table.
type runPoint struct {
	alg vavg.Algorithm
	g   *vavg.Graph
	p   vavg.Params
}

// medianRuns is the sweep scheduler: it executes every point across every
// seed on a bounded worker pool (cfg.Workers) and returns each point's
// seed-median, in point order. Dispatch is by (point, seed) index, so the
// rendered tables are byte-identical at any worker count; on error the
// lowest-indexed failure wins, also deterministically.
func (cfg Config) medianRuns(points []runPoint) ([]metrics.Run, error) {
	seeds := cfg.Seeds
	total := len(points) * len(seeds)
	runs := make([]metrics.Run, total)
	errs := make([]error, total)
	parallel.ForEach(parallel.Workers(cfg.Workers, total), total, func(i int) {
		pt := points[i/len(seeds)]
		p := pt.p
		p.Seed = seeds[i%len(seeds)]
		rep, err := pt.alg.Run(pt.g, p)
		if err != nil {
			errs[i] = err
			return
		}
		runs[i] = rep
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make([]metrics.Run, len(points))
	for i := range points {
		out[i] = metrics.Median(runs[i*len(seeds) : (i+1)*len(seeds)])
	}
	return out, nil
}

// medianRun executes one algorithm across cfg.Seeds (in parallel) and
// reports the median.
func (cfg Config) medianRun(alg vavg.Algorithm, g *vavg.Graph, p vavg.Params) (metrics.Run, error) {
	meds, err := cfg.medianRuns([]runPoint{{alg, g, p}})
	if err != nil {
		return metrics.Run{}, err
	}
	return meds[0], nil
}

// sweepRow formats one (algorithm, graph) measurement.
func sweepRow(name string, n int, r metrics.Run) []string {
	colors := "-"
	if r.Colors >= 0 {
		colors = metrics.I(r.Colors)
	}
	return []string{name, metrics.I(n), metrics.F(r.VertexAvg), metrics.I(r.WorstCase), colors}
}

var sweepHeader = []string{"algorithm", "n", "vertex-avg", "worst-case", "colors"}

// sweep runs each named algorithm over the size sweep on forest-union
// graphs of the given arboricity and renders the combined table. The
// algorithms share one cached graph per size, and all (algorithm, size,
// seed) points go through the parallel scheduler.
func sweep(cfg Config, names []string, a int, p vavg.Params) error {
	cfg = cfg.withDefaults()
	var points []runPoint
	var labels []string
	for _, name := range names {
		alg, err := vavg.ByName(name)
		if err != nil {
			return err
		}
		for _, n := range cfg.Sizes {
			g := forestCached(n, a, int64(n)*31+int64(a))
			pp := p
			pp.Arboricity = a
			points = append(points, runPoint{alg, g, pp})
			labels = append(labels, name)
		}
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, r := range meds {
		rows = append(rows, sweepRow(labels[i], points[i].g.N(), r))
	}
	metrics.Table(cfg.W, sweepHeader, rows)
	return nil
}

func runPartitionDecay(cfg Config) error {
	cfg = cfg.withDefaults()
	n := cfg.Sizes[len(cfg.Sizes)-1]
	g := vavg.ForestUnion(n, 4, 123)
	alg, _ := vavg.ByName("partition")
	// A small eps makes the threshold A tight, so the decay spreads over
	// many rounds and the geometric envelope of Lemma 6.1 is visible.
	const eps = 0.25
	rep, err := alg.Run(g, vavg.Params{Arboricity: 4, Eps: eps})
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.W, "Procedure Partition on %s, eps=%.2f (vertex-avg %.2f, worst %d):\n",
		g.Name, eps, rep.VertexAvg, rep.WorstCase)
	metrics.DecayTable(cfg.W, rep.ActivePerRound, g.N(), eps)
	fmt.Fprintln(cfg.W)
	if err := sweep(cfg, []string{"partition"}, 4, vavg.Params{Eps: eps}); err != nil {
		return err
	}

	// The k-ary tree exhibit: arboricity 1, but partition must peel one
	// tree level per round, so the worst case is Theta(log_k n) while the
	// geometric level sizes keep the average O(1) — Theorem 6.3's gap on a
	// single run.
	fmt.Fprintln(cfg.W, "\nk-ary tree exhibit (a=1, eps=1, k=6 > A):")
	var points []runPoint
	for _, n := range cfg.Sizes {
		kg := cachedGraph(graph.CacheKey("karytree", n, "k", 6),
			func() *vavg.Graph { return vavg.KaryTree(n, 6) })
		points = append(points, runPoint{alg, kg, vavg.Params{Arboricity: 1, Eps: 1}})
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, r := range meds {
		rows = append(rows, sweepRow("partition[6-ary tree]", cfg.Sizes[i], r))
	}
	metrics.Table(cfg.W, sweepHeader, rows)
	return nil
}

func runForestDecomp(cfg Config) error {
	return sweep(cfg, []string{"forest-decomp", "forest-decomp-wc"}, 3, vavg.Params{})
}

func runA2LogN(cfg Config) error {
	return sweep(cfg, []string{"arblinial-o1", "arblinial-wc"}, 3, vavg.Params{})
}

func runKA2(cfg Config) error {
	cfg = cfg.withDefaults()
	if err := sweep(cfg, []string{"a2-loglog", "iterated-arblinial-wc"}, 3, vavg.Params{}); err != nil {
		return err
	}
	fmt.Fprintln(cfg.W)
	for _, k := range []int{2, 3} {
		fmt.Fprintf(cfg.W, "ka2 with k=%d:\n", k)
		if err := sweep(cfg, []string{"ka2"}, 3, vavg.Params{K: k}); err != nil {
			return err
		}
	}
	return nil
}

func runA2LogStar(cfg Config) error {
	cfg = cfg.withDefaults()
	alg, _ := vavg.ByName("ka2")
	var points []runPoint
	for _, n := range cfg.Sizes {
		points = append(points, runPoint{alg, forestCached(n, 2, int64(n)),
			vavg.Params{Arboricity: 2, K: coloring.Rho(n)}})
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, r := range meds {
		n := cfg.Sizes[i]
		rows = append(rows, sweepRow(fmt.Sprintf("ka2[k=ρ=%d]", coloring.Rho(n)), n, r))
	}
	metrics.Table(cfg.W, sweepHeader, rows)
	return nil
}

func runKA(cfg Config) error {
	cfg = cfg.withDefaults()
	if err := sweep(cfg, []string{"a-loglog", "ka", "arbcolor-wc"}, 2, vavg.Params{}); err != nil {
		return err
	}
	// Arboricity sweep at fixed n: the vertex average should scale with a.
	fmt.Fprintln(cfg.W, "\narboricity sweep (fixed n):")
	n := cfg.Sizes[len(cfg.Sizes)/2]
	alg, _ := vavg.ByName("ka")
	var points []runPoint
	for _, a := range arbs(cfg) {
		points = append(points, runPoint{alg, forestCached(n, a, int64(a)*7),
			vavg.Params{Arboricity: a}})
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, r := range meds {
		rows = append(rows, []string{fmt.Sprintf("ka[a=%d]", arbs(cfg)[i]), metrics.I(n),
			metrics.F(r.VertexAvg), metrics.I(r.WorstCase), metrics.I(r.Colors)})
	}
	metrics.Table(cfg.W, sweepHeader, rows)
	return nil
}

func arbs(cfg Config) []int {
	if cfg.Quick {
		return []int{1, 2}
	}
	return []int{1, 2, 4, 8}
}

func runALogStar(cfg Config) error {
	cfg = cfg.withDefaults()
	alg, _ := vavg.ByName("ka")
	var points []runPoint
	for _, n := range cfg.Sizes {
		points = append(points, runPoint{alg, forestCached(n, 2, int64(n)),
			vavg.Params{Arboricity: 2, K: coloring.Rho(n)}})
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, r := range meds {
		n := cfg.Sizes[i]
		rows = append(rows, sweepRow(fmt.Sprintf("ka[k=ρ=%d]", coloring.Rho(n)), n, r))
	}
	metrics.Table(cfg.W, sweepHeader, rows)
	return nil
}

func runOnePlusEta(cfg Config) error {
	cfg = cfg.withDefaults()
	if err := sweep(cfg, []string{"one-plus-eta", "legal-coloring-wc"}, 2, vavg.Params{}); err != nil {
		return err
	}
	fmt.Fprintln(cfg.W, "\narboricity sweep (fixed n):")
	n := cfg.Sizes[len(cfg.Sizes)/2]
	alg, _ := vavg.ByName("one-plus-eta")
	var points []runPoint
	for _, a := range arbs(cfg) {
		points = append(points, runPoint{alg, forestCached(n, a, int64(a)*13),
			vavg.Params{Arboricity: a}})
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, r := range meds {
		rows = append(rows, []string{fmt.Sprintf("one-plus-eta[a=%d]", arbs(cfg)[i]), metrics.I(n),
			metrics.F(r.VertexAvg), metrics.I(r.WorstCase), metrics.I(r.Colors)})
	}
	metrics.Table(cfg.W, sweepHeader, rows)
	return nil
}

// runDP1Det shows that the deterministic Δ+1 algorithm's vertex-averaged
// complexity tracks the arboricity, not the maximum degree: star forests
// of growing star size keep a=2 while Δ grows.
func runDP1Det(cfg Config) error {
	cfg = cfg.withDefaults()
	if err := sweep(cfg, []string{"deltaplus1-det"}, 2, vavg.Params{}); err != nil {
		return err
	}
	fmt.Fprintln(cfg.W, "\nΔ sweep at constant arboricity (star forests):")
	alg, _ := vavg.ByName("deltaplus1-det")
	n := cfg.Sizes[len(cfg.Sizes)/2]
	deltas := []int{4, 16, 64, 256}
	if cfg.Quick {
		deltas = []int{4, 16}
	}
	var points []runPoint
	for _, k := range deltas {
		g := cachedGraph(graph.CacheKey("starforest", n, "k", k),
			func() *vavg.Graph { return vavg.StarForest(n, k) })
		points = append(points, runPoint{alg, g, vavg.Params{Arboricity: 2}})
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, r := range meds {
		rows = append(rows, []string{fmt.Sprintf("deltaplus1-det[Δ≈%d]", deltas[i]), metrics.I(n),
			metrics.F(r.VertexAvg), metrics.I(r.WorstCase), metrics.I(r.Colors)})
	}
	metrics.Table(cfg.W, sweepHeader, rows)
	return nil
}

func runDP1Rand(cfg Config) error {
	return sweep(cfg, []string{"deltaplus1-rand"}, 3, vavg.Params{})
}

func runALogLogRand(cfg Config) error {
	return sweep(cfg, []string{"aloglog-rand"}, 3, vavg.Params{})
}

func runMIS(cfg Config) error {
	return sweep(cfg, []string{"mis", "mis-wc", "mis-luby"}, 3, vavg.Params{})
}

func runEdge(cfg Config) error {
	return sweep(cfg, []string{"edgecolor"}, 3, vavg.Params{})
}

func runMM(cfg Config) error {
	return sweep(cfg, []string{"matching"}, 3, vavg.Params{})
}

// runFig1 renders the segmentation plan of Section 7.5 (Figure 1): the
// per-segment H-set counts and round windows for k = ρ(n).
func runFig1(cfg Config) error {
	cfg = cfg.withDefaults()
	n := cfg.Sizes[len(cfg.Sizes)-1]
	k := coloring.Rho(n)
	plan := segment.NewPlan(n, 2, k, 2, 2, func(int) int {
		return coloring.IteratedLinialRounds(n, 8)
	})
	fmt.Fprintf(cfg.W, "Segmentation plan for n=%d, a=2, k=ρ(n)=%d (processed k..1):\n", n, k)
	var rows [][]string
	acc := 0
	for s, l := range plan.SegLen {
		rows = append(rows, []string{
			fmt.Sprintf("segment %d", plan.K-s),
			fmt.Sprintf("H_%d..H_%d", acc+1, acc+l),
			metrics.I(l),
			fmt.Sprintf("≈log^(%d) n = %d", plan.K-s, coloring.IterLog(n, plan.K-s)),
			metrics.I(plan.CWidth[s]),
		}) // windows then C-block
		acc += l
	}
	metrics.Table(cfg.W, []string{"segment", "H-sets", "len", "paper length", "C-block rounds"}, rows)
	return nil
}

func runRingReference(cfg Config) error {
	cfg = cfg.withDefaults()
	var rows [][]string
	for _, n := range cfg.Sizes {
		// Leader election costs Theta(n^2) vertex-rounds (losers relay
		// until the completion wave returns); cap the simulated ring.
		ln := n
		if ln > 2048 {
			ln = 2048
		}
		g := vavg.RingShuffled(ln, int64(ln))
		res, err := engine.Run(g, baseline.LeaderElectionRing(),
			engine.Options{Seed: 1, MaxRounds: 64 * ln})
		if err != nil {
			return err
		}
		rows = append(rows, []string{"leader-ring", metrics.I(ln),
			metrics.F(res.CommitAverage()), metrics.I(res.MaxCommit()),
			fmt.Sprintf("log2 n = %.1f", math.Log2(float64(ln)))})

		alg, _ := vavg.ByName("ring-3color")
		ring := cachedGraph(graph.CacheKey("ring", n), func() *vavg.Graph { return vavg.Ring(n) })
		r, err := cfg.medianRun(alg, ring, vavg.Params{Arboricity: 2})
		if err != nil {
			return err
		}
		rows = append(rows, []string{"ring-3color", metrics.I(n),
			metrics.F(r.VertexAvg), metrics.I(r.WorstCase),
			fmt.Sprintf("log* n = %d", coloring.LogStar(n))})
	}
	metrics.Table(cfg.W, []string{"algorithm", "n", "avg (commit)", "worst (commit)", "reference"}, rows)
	return nil
}

// runTable1 renders the paper's Table 1 with measured columns.
func runTable1(cfg Config) error {
	cfg = cfg.withDefaults()
	n := cfg.Sizes[len(cfg.Sizes)-1]
	a := 3
	g := forestCached(n, a, 99)
	entries := []struct {
		name string
		p    vavg.Params
	}{
		{"ka", vavg.Params{K: 2}},
		{"ka", vavg.Params{K: coloring.Rho(n)}},
		{"one-plus-eta", vavg.Params{}},
		{"arblinial-o1", vavg.Params{}},
		{"ka2", vavg.Params{K: 2}},
		{"ka2", vavg.Params{K: coloring.Rho(n)}},
		{"a2-loglog", vavg.Params{}},
		{"a-loglog", vavg.Params{}},
		{"deltaplus1-det", vavg.Params{}},
		{"deltaplus1-rand", vavg.Params{}},
		{"aloglog-rand", vavg.Params{}},
		{"legal-coloring-wc", vavg.Params{}},
		{"arblinial-wc", vavg.Params{}},
		{"iterated-arblinial-wc", vavg.Params{}},
		{"arbcolor-wc", vavg.Params{}},
	}
	var points []runPoint
	for _, e := range entries {
		alg, err := vavg.ByName(e.name)
		if err != nil {
			return err
		}
		p := e.p
		p.Arboricity = a
		points = append(points, runPoint{alg, g, p})
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for i, r := range meds {
		e, alg := entries[i], points[i].alg
		label := e.name
		if e.p.K > 2 {
			label = fmt.Sprintf("%s[k=%d]", e.name, e.p.K)
		}
		rows = append(rows, []string{label, alg.Paper, alg.ColorBound, alg.VertexAvgBound,
			metrics.F(r.VertexAvg), metrics.I(r.WorstCase), metrics.I(r.Colors)})
	}
	fmt.Fprintf(cfg.W, "Table 1 (vertex coloring) measured at n=%d, a=%d:\n", n, a)
	metrics.Table(cfg.W, []string{"algorithm", "paper", "colors bound", "vertex-avg bound",
		"measured avg", "measured worst", "measured colors"}, rows)
	return nil
}

// runTable2 renders the paper's Table 2 with measured columns.
func runTable2(cfg Config) error {
	cfg = cfg.withDefaults()
	n := cfg.Sizes[len(cfg.Sizes)-1]
	a := 3
	g := forestCached(n, a, 99)
	var points []runPoint
	for _, name := range []string{"mis", "edgecolor", "matching", "mis-wc", "mis-luby"} {
		alg, err := vavg.ByName(name)
		if err != nil {
			return err
		}
		points = append(points, runPoint{alg, g, vavg.Params{Arboricity: a}})
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	rows := [][]string{}
	for i, r := range meds {
		alg := points[i].alg
		size := "-"
		if r.Size >= 0 {
			size = metrics.I(r.Size)
		}
		rows = append(rows, []string{alg.Name, alg.Paper, alg.VertexAvgBound,
			metrics.F(r.VertexAvg), metrics.I(r.WorstCase), size})
	}
	fmt.Fprintf(cfg.W, "Table 2 (MIS / edge coloring / matching) measured at n=%d, a=%d:\n", n, a)
	metrics.Table(cfg.W, []string{"algorithm", "paper", "vertex-avg bound",
		"measured avg", "measured worst", "solution size"}, rows)
	return nil
}

// runAblationEps sweeps the Procedure Partition slack eps: a smaller eps
// shrinks the threshold A = (2+eps)a (hence palettes and out-degrees) but
// slows the active-set decay, raising both complexity measures.
func runAblationEps(cfg Config) error {
	cfg = cfg.withDefaults()
	n := cfg.Sizes[len(cfg.Sizes)/2]
	g := forestCached(n, 3, 41)
	var points []runPoint
	var labels []string
	for _, name := range []string{"partition", "arblinial-o1"} {
		alg, err := vavg.ByName(name)
		if err != nil {
			return err
		}
		for _, eps := range []float64{0.25, 0.5, 1, 2} {
			points = append(points, runPoint{alg, g, vavg.Params{Arboricity: 3, Eps: eps}})
			labels = append(labels, fmt.Sprintf("%s[eps=%.2f]", name, eps))
		}
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, r := range meds {
		rows = append(rows, []string{labels[i], metrics.I(n),
			metrics.F(r.VertexAvg), metrics.I(r.WorstCase), colorsCell(r)})
	}
	metrics.Table(cfg.W, sweepHeader, rows)
	return nil
}

func colorsCell(r metrics.Run) string {
	if r.Colors >= 0 {
		return metrics.I(r.Colors)
	}
	return "-"
}

// runAblationK sweeps the segment count k of the Section 7.5 scheme on
// both instantiations: more segments mean more palette blocks but a
// shorter first segment, hence a smaller vertex-averaged complexity.
func runAblationK(cfg Config) error {
	cfg = cfg.withDefaults()
	n := cfg.Sizes[len(cfg.Sizes)/2]
	g := forestCached(n, 3, 43)
	rho := coloring.Rho(n)
	var points []runPoint
	var labels []string
	for _, name := range []string{"ka2", "ka"} {
		alg, err := vavg.ByName(name)
		if err != nil {
			return err
		}
		for k := 2; k <= rho; k++ {
			points = append(points, runPoint{alg, g, vavg.Params{Arboricity: 3, K: k}})
			labels = append(labels, fmt.Sprintf("%s[k=%d]", name, k))
		}
	}
	meds, err := cfg.medianRuns(points)
	if err != nil {
		return err
	}
	var rows [][]string
	for i, r := range meds {
		rows = append(rows, []string{labels[i], metrics.I(n),
			metrics.F(r.VertexAvg), metrics.I(r.WorstCase), metrics.I(r.Colors)})
	}
	metrics.Table(cfg.W, sweepHeader, rows)
	return nil
}
