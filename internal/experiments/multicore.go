package experiments

import (
	"fmt"
	"runtime"

	"vavg"
	"vavg/internal/graph"
	"vavg/internal/metrics"
)

// MulticorePoint is one (GOMAXPROCS, algorithm) measurement of the
// staged-lane step backend's worker scaling: the same shard layout run
// at different worker counts. The LOCAL-model accounting (rounds, round
// sum) must be byte-identical across the procs axis — worker count is
// execution layout, not semantics — so only the wall-clock columns may
// differ between rows of one cell.
type MulticorePoint struct {
	// Procs is the GOMAXPROCS the run executed under; Shards is the fixed
	// StepShards lane layout shared by every row of the cell, so the procs
	// axis varies worker parallelism and nothing else.
	Procs            int     `json:"procs"`
	Shards           int     `json:"shards"`
	Algorithm        string  `json:"algorithm"`
	Family           string  `json:"family"`
	N                int     `json:"n"`
	TotalRounds      int     `json:"totalRounds"`
	RoundSum         int64   `json:"roundSum"`
	WallMs           float64 `json:"wallMs"`
	NsPerVertexRound float64 `json:"nsPerVertexRound"`
	Allocs           uint64  `json:"allocs"`
	// Speedup is the procs=1 wall time of the same (algorithm, family, n)
	// cell divided by this row's wall time: >1 means the staged lanes
	// turned extra cores into throughput, ≈1 is expected on single-core
	// hosts (the rows are still worth committing there — they pin the
	// oversubscription overhead near zero).
	Speedup float64 `json:"speedup"`
}

// multicoreProcs is the GOMAXPROCS axis of the scaling benchmark.
var multicoreProcs = []int{1, 4, 8}

// RunMulticoreBench measures the step backend's worker scaling on the
// forest-union workhorse at the largest configured size (the roadmap's
// million-vertex point in a full regeneration). Every row of a cell uses
// the same shard count — cfg.StepShards, or the widest procs point when
// unset — so the procs axis varies only how many workers drive the
// lanes; rounds and round sums must agree across the axis and the run
// fails loudly if they do not.
func RunMulticoreBench(cfg Config) ([]MulticorePoint, error) {
	cfg = cfg.withDefaults()
	seed := cfg.Seeds[0]
	n := cfg.Sizes[len(cfg.Sizes)-1]
	shards := cfg.StepShards
	if shards == 0 {
		shards = multicoreProcs[len(multicoreProcs)-1]
	}
	fam := backendFamilies[1] // forests: the million-vertex workhorse
	g := cachedGraph(graph.CacheKey(fam.Name, n), func() *vavg.Graph { return fam.Gen(n) })
	var out []MulticorePoint
	for _, name := range backendAlgs {
		alg, err := vavg.ByName(name)
		if err != nil {
			return nil, err
		}
		var base MulticorePoint
		for _, procs := range multicoreProcs {
			old := runtime.GOMAXPROCS(procs)
			pt, err := measureBackend(alg, g, fam.Name, fam.A, "step", seed, shards)
			runtime.GOMAXPROCS(old)
			if err != nil {
				return nil, fmt.Errorf("multicore: %s procs=%d: %w", name, procs, err)
			}
			mp := MulticorePoint{
				Procs: procs, Shards: shards, Algorithm: name, Family: fam.Name,
				N: pt.N, TotalRounds: pt.TotalRounds, RoundSum: pt.RoundSum,
				WallMs: pt.WallMs, NsPerVertexRound: pt.NsPerVertexRound,
				Allocs: pt.Allocs, Speedup: 1,
			}
			if procs == multicoreProcs[0] {
				base = mp
			} else {
				if mp.TotalRounds != base.TotalRounds || mp.RoundSum != base.RoundSum {
					return nil, fmt.Errorf("multicore: %s procs=%d accounting (%d rounds, %d roundSum) differs from procs=%d (%d, %d); worker count changed a Result",
						name, procs, mp.TotalRounds, mp.RoundSum, base.Procs, base.TotalRounds, base.RoundSum)
				}
				if mp.WallMs > 0 {
					mp.Speedup = base.WallMs / mp.WallMs
				}
			}
			out = append(out, mp)
		}
	}
	return out, nil
}

// runMulticore renders the worker-scaling table (or raw JSON points
// under cfg.JSON).
func runMulticore(cfg Config) error {
	cfg = cfg.withDefaults()
	points, err := RunMulticoreBench(cfg)
	if err != nil {
		return err
	}
	if cfg.JSON {
		bench := &BackendBench{GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU: runtime.NumCPU(), Multicore: points}
		return bench.WriteJSON(cfg.W)
	}
	fmt.Fprintf(cfg.W, "step backend worker scaling (%d CPUs, %d shards):\n", runtime.NumCPU(), points[0].Shards)
	var rows [][]string
	for _, pt := range points {
		rows = append(rows, []string{
			metrics.I(pt.Procs), pt.Algorithm, pt.Family, metrics.I(pt.N),
			metrics.I(pt.TotalRounds), fmt.Sprintf("%.1f", pt.WallMs),
			fmt.Sprintf("%.0f", pt.NsPerVertexRound), fmt.Sprintf("%.2fx", pt.Speedup),
		})
	}
	metrics.Table(cfg.W, []string{"procs", "algorithm", "family", "n",
		"rounds", "wall ms", "ns/vertex-round", "speedup"}, rows)
	return nil
}
