package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"vavg"
	"vavg/internal/metrics"
)

// OutOfCorePoint is one measurement of the out-of-core matrix: the same
// (algorithm, family, n, seed) run executed once from a generated
// heap-resident graph (Source "ram") and once from an mmap'd binary CSR
// file (Source "file"). The LOCAL-model accounting must be identical —
// the store is a transport — so the pair isolates exactly what the file
// path costs (LoadMs, the residual wall-clock delta) and what it buys
// (MappedBytes shifted out of the private heap into shared, reclaimable
// pages).
type OutOfCorePoint struct {
	Source      string  `json:"source"`
	Backend     string  `json:"backend"`
	Algorithm   string  `json:"algorithm"`
	Family      string  `json:"family"`
	N           int     `json:"n"`
	M           int     `json:"m"`
	TotalRounds int     `json:"totalRounds"`
	RoundSum    int64   `json:"roundSum"`
	WallMs      float64 `json:"wallMs"`
	// LoadMs is the time from opening the CSR file to a validated,
	// mapped *Graph (file rows only). Raw-layout loads are dominated by
	// the O(n+m) structural validation pass, not I/O: the mapping itself
	// is lazy.
	LoadMs float64 `json:"loadMs,omitempty"`
	// FileBytes is the on-disk size of the CSR file (file rows only).
	FileBytes    int64  `json:"fileBytes,omitempty"`
	PeakBytes    uint64 `json:"peakBytes"`
	PeakRSSBytes uint64 `json:"peakRSSBytes,omitempty"`
	MappedBytes  uint64 `json:"mappedBytes,omitempty"`
	Allocs       uint64 `json:"allocs"`
}

// outOfCoreForestCap bounds the forest family in the out-of-core matrix.
// Forest algorithms carry ~3 KB of engine state per vertex, so the
// family's ceiling is engine memory, not graph storage; past the cap only
// the lean ring family continues toward the 10^8 push.
const outOfCoreForestCap = 20_000_000

// outOfCoreAlg is the measured algorithm: partition is the paper's O(1)
// vertex-averaged workhorse and the cheapest step-form state, which is
// what makes the very largest sizes reachable at all.
const outOfCoreAlg = "partition"

// RunOutOfCoreBench measures the out-of-core matrix at the largest
// configured size on the step backend: for ring and forest-union, one
// run from the generated graph, then — with the generated copy released
// — one run from a freshly written raw CSR file loaded as a shared
// read-only mapping. It fails loudly if the two runs disagree on any
// LOCAL-model measure.
func RunOutOfCoreBench(cfg Config) ([]OutOfCorePoint, error) {
	cfg = cfg.withDefaults()
	seed := cfg.Seeds[0]
	n := cfg.Sizes[len(cfg.Sizes)-1]
	alg, err := vavg.ByName(outOfCoreAlg)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "vavg-outofcore-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	var out []OutOfCorePoint
	for _, fam := range backendFamilies {
		famN := n
		if fam.Name == "forests" && famN > outOfCoreForestCap {
			famN = outOfCoreForestCap
		}
		g := fam.Gen(famN)

		ramPt, err := measureBackend(alg, g, fam.Name, fam.A, "step", seed, cfg.StepShards)
		if err != nil {
			return nil, fmt.Errorf("outofcore: %s n=%d ram: %w", fam.Name, famN, err)
		}
		out = append(out, outOfCorePoint("ram", ramPt))

		path := filepath.Join(dir, fmt.Sprintf("%s-%d.csr", fam.Name, famN))
		if err := vavg.WriteGraphFile(path, g, false); err != nil {
			return nil, fmt.Errorf("outofcore: %s n=%d write: %w", fam.Name, famN, err)
		}
		st, err := os.Stat(path)
		if err != nil {
			return nil, err
		}
		// Release the generated copy before loading, so the file row's
		// memory columns measure the out-of-core configuration and not the
		// generator's leftovers.
		g = nil
		runtime.GC()
		loadStart := time.Now()
		loaded, err := vavg.LoadGraph(path)
		loadMs := float64(time.Since(loadStart).Nanoseconds()) / 1e6
		if err != nil {
			return nil, fmt.Errorf("outofcore: %s n=%d load: %w", fam.Name, famN, err)
		}
		filePt, err := measureBackend(alg, loaded, fam.Name, fam.A, "step", seed, cfg.StepShards)
		if err != nil {
			return nil, fmt.Errorf("outofcore: %s n=%d file: %w", fam.Name, famN, err)
		}
		if filePt.TotalRounds != ramPt.TotalRounds || filePt.RoundSum != ramPt.RoundSum ||
			filePt.VertexAvg != ramPt.VertexAvg {
			return nil, fmt.Errorf("outofcore: %s n=%d: file-backed accounting (%d rounds, %d roundSum) differs from generated (%d, %d); the store changed a Result",
				fam.Name, famN, filePt.TotalRounds, filePt.RoundSum, ramPt.TotalRounds, ramPt.RoundSum)
		}
		fp := outOfCorePoint("file", filePt)
		fp.LoadMs = loadMs
		fp.FileBytes = st.Size()
		out = append(out, fp)
	}
	return out, nil
}

func outOfCorePoint(source string, pt BackendPoint) OutOfCorePoint {
	return OutOfCorePoint{
		Source: source, Backend: pt.Backend, Algorithm: pt.Algorithm,
		Family: pt.Family, N: pt.N, M: pt.M,
		TotalRounds: pt.TotalRounds, RoundSum: pt.RoundSum,
		WallMs: pt.WallMs, PeakBytes: pt.PeakBytes,
		PeakRSSBytes: pt.PeakRSSBytes, MappedBytes: pt.MappedBytes,
		Allocs: pt.Allocs,
	}
}

// runOutOfCore renders the out-of-core matrix (or raw JSON points under
// cfg.JSON).
func runOutOfCore(cfg Config) error {
	cfg = cfg.withDefaults()
	points, err := RunOutOfCoreBench(cfg)
	if err != nil {
		return err
	}
	if cfg.JSON {
		bench := &BackendBench{GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU: runtime.NumCPU(), OutOfCore: points}
		return bench.WriteJSON(cfg.W)
	}
	fmt.Fprintln(cfg.W, "out-of-core store (step backend; ram = generated graph, file = mmap'd CSR):")
	var rows [][]string
	for _, pt := range points {
		rows = append(rows, []string{
			pt.Source, pt.Algorithm, pt.Family, metrics.I(pt.N),
			metrics.I(pt.TotalRounds), fmt.Sprintf("%.1f", pt.WallMs),
			fmt.Sprintf("%.1f", pt.LoadMs),
			fmt.Sprintf("%.1f", float64(pt.FileBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(pt.PeakBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(pt.PeakRSSBytes)/(1<<20)),
			fmt.Sprintf("%.1f", float64(pt.MappedBytes)/(1<<20)),
		})
	}
	metrics.Table(cfg.W, []string{"source", "algorithm", "family", "n", "rounds",
		"wall ms", "load ms", "file MiB", "peak MiB", "peak RSS MiB", "mapped MiB"}, rows)
	return nil
}
