package experiments

import (
	"encoding/json"
	"fmt"

	"vavg"
	"vavg/internal/metrics"
	"vavg/internal/parallel"
)

// FaultPoint is one (algorithm, drop rate, crash fraction) cell of the
// degradation benchmark: the paper's measures plus the adversarial
// accounting. A non-converged cell (Converged false) is a DNF data point
// — the algorithm exhausted its round budget under that fault load — not
// a failure.
type FaultPoint struct {
	Algorithm         string  `json:"algorithm"`
	N                 int     `json:"n"`
	Drop              float64 `json:"drop"`
	CrashFrac         float64 `json:"crashFrac"`
	VertexAvg         float64 `json:"vertexAvg"`
	WorstCase         int     `json:"worstCase"`
	Converged         bool    `json:"converged"`
	Messages          int64   `json:"messages"`
	Dropped           int64   `json:"dropped"`
	LostToCrash       int64   `json:"lostToCrash"`
	CrashedForever    int     `json:"crashedForever"`
	Restarts          int     `json:"restarts,omitempty"`
	ResidualConflicts int     `json:"residualConflicts"`
	// Failed marks cells whose run aborted outright — an algorithm whose
	// internal schedule wedges under the fault load (e.g. a pipelined
	// partition assertion that joins land on time) rather than running out
	// its round budget. Whether a cell fails is deterministic in the
	// seeds; the boolean (not the error text, which names an arbitrary
	// first victim) keeps the matrix byte-reproducible.
	Failed bool `json:"failed,omitempty"`
}

// faultAlgs is the degradation matrix's algorithm pool: the §6 partition
// core, both decomposition-based coloring routes, and the Table 2
// symmetry-breaking problems.
var faultAlgs = []string{"partition", "forest-decomp", "arblinial-o1", "ka2", "mis", "matching"}

// faultDrops and faultCrashFracs span the degradation matrix.
var (
	faultDrops      = []float64{0, 0.25, 0.5, 0.75}
	faultCrashFracs = []float64{0, 0.02}
)

// faultBudget bounds a degraded run's rounds relative to the fault-free
// worst case: generous enough that graceful degradation shows as rising
// round counts rather than instant DNF, finite enough that a wedged run
// is a data point instead of a hang.
func faultBudget(faultFreeWorst int) int {
	b := 8 * faultFreeWorst
	if b < 256 {
		b = 256
	}
	return b
}

// faultsSize picks the degradation benchmark's graph size: the matrix
// runs at a single size (degradation is measured against fault load, not
// n), capped so the committed artifact stays regenerable alongside the
// million-vertex backend sweep.
func faultsSize(cfg Config) int {
	n := cfg.Sizes[len(cfg.Sizes)-1]
	if n > 100000 {
		n = 100000
	}
	return n
}

// RunFaultsBench measures the degradation matrix: every fault algorithm
// under every (drop rate, crash fraction) combination on one forest-union
// graph. The fault-free cell of each algorithm runs first and fixes the
// faulty cells' round budget; all faulty cells then dispatch through the
// bounded worker pool. Every cell is a pure function of (run seed,
// scenario seed), so the matrix is byte-reproducible at any worker count.
func RunFaultsBench(cfg Config) ([]FaultPoint, error) {
	cfg = cfg.withDefaults()
	n := faultsSize(cfg)
	seed := cfg.Seeds[0]
	const a = 3
	g := forestCached(n, a, int64(n)*31+int64(a))

	type cell struct {
		alg             vavg.Algorithm
		drop, crashFrac float64
		budget          int
	}
	var cells []cell
	baselines := make(map[string]FaultPoint, len(faultAlgs))
	for _, name := range faultAlgs {
		alg, err := vavg.ByName(name)
		if err != nil {
			return nil, err
		}
		// The fault-free baseline runs serially: it is one cell of the
		// matrix and fixes the round budget of the algorithm's faulty cells.
		base, err := alg.Run(g, vavg.Params{Arboricity: a, Seed: seed})
		if err != nil {
			return nil, fmt.Errorf("faults: fault-free %s: %w", name, err)
		}
		baselines[name] = FaultPoint{
			Algorithm: name, N: n,
			VertexAvg: base.VertexAvg, WorstCase: base.WorstCase,
			Converged: true, Messages: base.Messages, ResidualConflicts: -1,
		}
		budget := faultBudget(base.WorstCase)
		for _, drop := range faultDrops {
			for _, cf := range faultCrashFracs {
				if drop == 0 && cf == 0 {
					continue
				}
				cells = append(cells, cell{alg, drop, cf, budget})
			}
		}
	}

	faulty := make([]FaultPoint, len(cells))
	parallel.ForEach(parallel.Workers(cfg.Workers, len(cells)), len(cells), func(i int) {
		c := cells[i]
		p := vavg.Params{
			Arboricity: a, Seed: seed, MaxRounds: c.budget,
			Scenario: &vavg.Scenario{Drop: c.drop, CrashFrac: c.crashFrac, CrashRound: 3, Seed: 1},
		}
		rep, err := c.alg.Run(g, p)
		if err != nil {
			// The run aborted outright: an internal schedule assertion the
			// fault load broke. Deterministic, so a legal matrix cell.
			faulty[i] = FaultPoint{
				Algorithm: c.alg.Name, N: n, Drop: c.drop, CrashFrac: c.crashFrac,
				Failed: true, ResidualConflicts: -1,
			}
			return
		}
		faulty[i] = FaultPoint{
			Algorithm:         c.alg.Name,
			N:                 n,
			Drop:              c.drop,
			CrashFrac:         c.crashFrac,
			VertexAvg:         rep.VertexAvg,
			WorstCase:         rep.WorstCase,
			Converged:         rep.Converged,
			Messages:          rep.Messages,
			Dropped:           rep.Dropped,
			LostToCrash:       rep.LostToCrash,
			CrashedForever:    rep.CrashedForever,
			Restarts:          rep.Restarts,
			ResidualConflicts: rep.ResidualConflicts,
		}
	})

	// Assemble in deterministic matrix order: each algorithm's fault-free
	// baseline followed by its faulty cells.
	perAlg := len(faultDrops)*len(faultCrashFracs) - 1
	var points []FaultPoint
	for i, name := range faultAlgs {
		points = append(points, baselines[name])
		points = append(points, faulty[i*perAlg:(i+1)*perAlg]...)
	}
	return points, nil
}

// FaultsBench is the standalone machine-readable form of the degradation
// matrix (`vavgbench -exp faults -json`); the same points are embedded in
// BENCH_engine.json under "faults".
type FaultsBench struct {
	Faults []FaultPoint `json:"faults"`
}

// runFaults renders the degradation matrix: vertex-averaged and
// worst-case complexity, loss accounting, and residual conflicts as the
// fault load grows.
func runFaults(cfg Config) error {
	cfg = cfg.withDefaults()
	points, err := RunFaultsBench(cfg)
	if err != nil {
		return err
	}
	if cfg.JSON {
		enc := json.NewEncoder(cfg.W)
		enc.SetIndent("", "  ")
		return enc.Encode(&FaultsBench{Faults: points})
	}
	var rows [][]string
	for _, pt := range points {
		conv := "yes"
		switch {
		case pt.Failed:
			conv = "failed"
		case !pt.Converged:
			conv = "DNF"
		}
		conflicts := "-"
		if pt.ResidualConflicts >= 0 {
			conflicts = metrics.I(pt.ResidualConflicts)
		}
		rows = append(rows, []string{
			pt.Algorithm, metrics.I(pt.N),
			fmt.Sprintf("%.2f", pt.Drop), fmt.Sprintf("%.2f", pt.CrashFrac),
			metrics.F(pt.VertexAvg), metrics.I(pt.WorstCase), conv,
			metrics.I(int(pt.Dropped)), metrics.I(int(pt.LostToCrash)),
			metrics.I(pt.CrashedForever), conflicts,
		})
	}
	metrics.Table(cfg.W, []string{"algorithm", "n", "drop", "crashfrac",
		"vertex-avg", "worst", "converged", "dropped", "lost-to-crash", "crashed", "conflicts"}, rows)
	return nil
}
