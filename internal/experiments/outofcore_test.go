package experiments

import "testing"

// TestRunOutOfCoreBench runs the quick out-of-core matrix and pins the
// pairing contract: every family yields a (ram, file) pair with
// identical LOCAL-model accounting, and the file row carries the
// out-of-core columns (file size, load time, and — where the host
// supports mmap — a nonzero shared mapping).
func TestRunOutOfCoreBench(t *testing.T) {
	points, err := RunOutOfCoreBench(Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(backendFamilies) {
		t.Fatalf("got %d points, want a (ram, file) pair per family (%d)", len(points), 2*len(backendFamilies))
	}
	for i := 0; i < len(points); i += 2 {
		ram, file := points[i], points[i+1]
		if ram.Source != "ram" || file.Source != "file" {
			t.Fatalf("pair %d sources = (%s, %s), want (ram, file)", i/2, ram.Source, file.Source)
		}
		if ram.Family != file.Family || ram.N != file.N {
			t.Errorf("pair %d mismatched: %s/%d vs %s/%d", i/2, ram.Family, ram.N, file.Family, file.N)
		}
		if ram.TotalRounds != file.TotalRounds || ram.RoundSum != file.RoundSum {
			t.Errorf("%s: file accounting (%d, %d) differs from ram (%d, %d)",
				file.Family, file.TotalRounds, file.RoundSum, ram.TotalRounds, ram.RoundSum)
		}
		if file.FileBytes <= 0 {
			t.Errorf("%s: file row has FileBytes=%d, want >0", file.Family, file.FileBytes)
		}
		if file.LoadMs < 0 {
			t.Errorf("%s: negative LoadMs %f", file.Family, file.LoadMs)
		}
		if ram.MappedBytes != 0 {
			t.Errorf("%s: ram row reports %d mapped bytes", ram.Family, ram.MappedBytes)
		}
		// The raw layout mmaps zero-copy on unix hosts; elsewhere the
		// loader falls back to a heap copy and the column is legitimately 0.
		if file.MappedBytes != 0 && int64(file.MappedBytes) != file.FileBytes {
			t.Errorf("%s: MappedBytes=%d does not match the %d-byte file", file.Family, file.MappedBytes, file.FileBytes)
		}
	}
}
