package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCompareBenches checks the regression gate's arithmetic: matched
// points diff wall and allocs against the threshold, unmatched points are
// reported but never counted as regressions.
func TestCompareBenches(t *testing.T) {
	pt := func(backend string, n int, wall float64, allocs uint64) BackendPoint {
		return BackendPoint{
			Backend: backend, Algorithm: "partition", Family: "ring", N: n,
			WallMs: wall, Allocs: allocs,
		}
	}
	old := &BackendBench{Points: []BackendPoint{
		pt("pool", 1024, 10, 1000),
		pt("step", 1024, 10, 1000),
		pt("goroutines", 1024, 10, 1000),
	}}
	fresh := &BackendBench{Points: []BackendPoint{
		pt("pool", 1024, 11, 1000),   // +10% wall: within threshold
		pt("step", 1024, 16, 1000),   // +60% wall: regression
		pt("step", 4096, 100, 99999), // unmatched size
	}}
	rep := CompareBenches(old, fresh, 25)
	if rep.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1", rep.Regressions)
	}
	if len(rep.Deltas) != 2 {
		t.Fatalf("len(Deltas) = %d, want 2", len(rep.Deltas))
	}
	for _, d := range rep.Deltas {
		if wantReg := d.Backend == "step"; d.Regressed != wantReg {
			t.Errorf("%s: Regressed = %v, want %v", d.Backend, d.Regressed, wantReg)
		}
	}
	// One point only in the new run, one only in the baseline.
	if len(rep.Unmatched) != 2 {
		t.Fatalf("Unmatched = %v, want 2 entries", rep.Unmatched)
	}

	// Allocation growth alone must trip the gate too.
	fresh2 := &BackendBench{Points: []BackendPoint{pt("pool", 1024, 10, 2000)}}
	if rep := CompareBenches(old, fresh2, 25); rep.Regressions != 1 {
		t.Errorf("alloc regression not detected: %d", rep.Regressions)
	}

	var sb strings.Builder
	rep.Write(&sb)
	out := sb.String()
	for _, want := range []string{"REGRESSED", "only in baseline", "only in new run", "1/2 points regressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestLoadBenchColumnTolerance pins the baseline loader's schema-drift
// contract: a committed baseline generated before a metric column existed
// (here: no faults matrix, points without the allocation columns) must
// still load and diff cleanly against a fresh bench that has them, with
// the absent columns defaulting to zero rather than failing the gate.
func TestLoadBenchColumnTolerance(t *testing.T) {
	dir := t.TempDir()
	old := filepath.Join(dir, "old.json")
	// An old-format artifact: pre-faults, pre-alloc-columns, plus a field
	// this reader has never heard of.
	if err := os.WriteFile(old, []byte(`{
		"goVersion": "go1.21.0",
		"gomaxprocs": 1,
		"numCPU": 1,
		"retiredField": {"ignored": true},
		"points": [
			{"backend": "pool", "algorithm": "partition", "family": "ring", "n": 1024, "wallMs": 10},
			{"backend": "step", "algorithm": "partition", "family": "ring", "n": 1024, "wallMs": 10}
		]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	base, err := LoadBench(old)
	if err != nil {
		t.Fatalf("old-format baseline failed to load: %v", err)
	}
	if len(base.Points) != 2 || base.Faults != nil {
		t.Fatalf("loaded baseline = %+v, want 2 points and no faults matrix", base)
	}
	if base.Points[0].Allocs != 0 {
		t.Errorf("missing alloc column should default to zero, got %d", base.Points[0].Allocs)
	}

	// The column-added fresh bench diffs against it without regressions:
	// zero-valued baseline columns are growth-from-nothing and never gate
	// (pctGrowth treats a zero old value as no growth), and the faults
	// matrix is not part of the point-matching at all.
	fresh := &BackendBench{
		Points: []BackendPoint{
			{Backend: "pool", Algorithm: "partition", Family: "ring", N: 1024, WallMs: 10, Allocs: 4096, PeakBytes: 1 << 20},
			{Backend: "step", Algorithm: "partition", Family: "ring", N: 1024, WallMs: 11, Allocs: 4096, PeakBytes: 1 << 20},
		},
		Faults: []FaultPoint{{Algorithm: "partition", N: 1024, Drop: 0.25, Converged: true}},
		// New matrices and memory columns the baseline predates: folded
		// into the keyed diff as unmatched, never as failures.
		OutOfCore: []OutOfCorePoint{
			{Source: "ram", Backend: "step", Algorithm: "partition", Family: "ring", N: 1024, WallMs: 9},
			{Source: "file", Backend: "step", Algorithm: "partition", Family: "ring", N: 1024, WallMs: 9, MappedBytes: 1 << 20, PeakRSSBytes: 1 << 21},
		},
	}
	fresh.Points[0].PeakRSSBytes = 1 << 21
	rep := CompareBenches(base, fresh, 25)
	if rep.Regressions != 0 {
		t.Errorf("column-added bench regressed against old baseline: %+v", rep.Deltas)
	}
	if len(rep.Deltas) != 2 || len(rep.Unmatched) != 2 {
		t.Errorf("got %d deltas / %d unmatched, want 2 / 2", len(rep.Deltas), len(rep.Unmatched))
	}
	for _, u := range rep.Unmatched {
		if !strings.Contains(u, "outofcore-") || !strings.Contains(u, "only in new run") {
			t.Errorf("unexpected unmatched entry %q", u)
		}
	}

	// Degenerate baselines are rejected, not silently diffed against.
	empty := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(empty, []byte(`{"goVersion": "go1.21.0"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBench(empty); err == nil {
		t.Error("baseline without points should be rejected")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBench(bad); err == nil {
		t.Error("unparseable baseline should be rejected")
	}
	if _, err := LoadBench(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline file should be rejected")
	}
}
