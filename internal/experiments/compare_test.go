package experiments

import (
	"strings"
	"testing"
)

// TestCompareBenches checks the regression gate's arithmetic: matched
// points diff wall and allocs against the threshold, unmatched points are
// reported but never counted as regressions.
func TestCompareBenches(t *testing.T) {
	pt := func(backend string, n int, wall float64, allocs uint64) BackendPoint {
		return BackendPoint{
			Backend: backend, Algorithm: "partition", Family: "ring", N: n,
			WallMs: wall, Allocs: allocs,
		}
	}
	old := &BackendBench{Points: []BackendPoint{
		pt("pool", 1024, 10, 1000),
		pt("step", 1024, 10, 1000),
		pt("goroutines", 1024, 10, 1000),
	}}
	fresh := &BackendBench{Points: []BackendPoint{
		pt("pool", 1024, 11, 1000),   // +10% wall: within threshold
		pt("step", 1024, 16, 1000),   // +60% wall: regression
		pt("step", 4096, 100, 99999), // unmatched size
	}}
	rep := CompareBenches(old, fresh, 25)
	if rep.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1", rep.Regressions)
	}
	if len(rep.Deltas) != 2 {
		t.Fatalf("len(Deltas) = %d, want 2", len(rep.Deltas))
	}
	for _, d := range rep.Deltas {
		if wantReg := d.Backend == "step"; d.Regressed != wantReg {
			t.Errorf("%s: Regressed = %v, want %v", d.Backend, d.Regressed, wantReg)
		}
	}
	// One point only in the new run, one only in the baseline.
	if len(rep.Unmatched) != 2 {
		t.Fatalf("Unmatched = %v, want 2 entries", rep.Unmatched)
	}

	// Allocation growth alone must trip the gate too.
	fresh2 := &BackendBench{Points: []BackendPoint{pt("pool", 1024, 10, 2000)}}
	if rep := CompareBenches(old, fresh2, 25); rep.Regressions != 1 {
		t.Errorf("alloc regression not detected: %d", rep.Regressions)
	}

	var sb strings.Builder
	rep.Write(&sb)
	out := sb.String()
	for _, want := range []string{"REGRESSED", "only in baseline", "only in new run", "1/2 points regressed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}
