package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"vavg"
	"vavg/internal/engine"
	"vavg/internal/graph"
	"vavg/internal/metrics"
	"vavg/internal/parallel"
)

// BackendPoint is one (backend, algorithm, family, n) measurement of the
// engine-core benchmark: the LOCAL-model accounting (which must be
// identical across backends) plus the wall-clock and memory cost of the
// execution strategy (which is what differs).
type BackendPoint struct {
	Backend          string  `json:"backend"`
	Algorithm        string  `json:"algorithm"`
	Family           string  `json:"family"`
	N                int     `json:"n"`
	M                int     `json:"m"`
	TotalRounds      int     `json:"totalRounds"`
	RoundSum         int64   `json:"roundSum"`
	VertexAvg        float64 `json:"vertexAvg"`
	WallMs           float64 `json:"wallMs"`
	NsPerRound       float64 `json:"nsPerRound"`
	NsPerVertexRound float64 `json:"nsPerVertexRound"`
	PeakBytes        uint64  `json:"peakBytes"`
	// PeakRSSBytes is the kernel's peak-resident watermark across the run
	// (VmHWM, reset per measurement where the host allows), the
	// memory-budget column of the out-of-core push: unlike PeakBytes it
	// includes pages faulted in through file mappings. 0 on hosts without
	// procfs and in baselines that predate the column.
	PeakRSSBytes uint64 `json:"peakRSSBytes,omitempty"`
	// MappedBytes is the size of the read-only file mapping backing the
	// run's graph, 0 for heap-resident graphs. Mapped pages are shared and
	// reclaimable; heap pages are neither, which is why the two are
	// reported separately.
	MappedBytes uint64 `json:"mappedBytes,omitempty"`
	// Allocs is the total heap allocation count of the run (Mallocs
	// delta); AllocsPerVertexRound divides it by RoundSum. A near-zero
	// per-vertex-round figure is the zero-allocation message path working:
	// what remains is per-run setup (graph-independent slabs are recycled)
	// plus per-vertex termination (one Final per vertex).
	Allocs               uint64  `json:"allocs"`
	AllocsPerVertexRound float64 `json:"allocsPerVertexRound"`
}

// BackendBench is the machine-readable artifact committed as
// BENCH_engine.json: the execution environment plus all points.
type BackendBench struct {
	GoVersion  string         `json:"goVersion"`
	GoMaxProcs int            `json:"gomaxprocs"`
	NumCPU     int            `json:"numCPU"`
	Points     []BackendPoint `json:"points"`
	// Faults is the degradation matrix (see faults.go): every fault
	// algorithm under every (drop rate, crash fraction) combination.
	// Absent in baselines generated before the adversarial layer existed;
	// the compare gate treats the missing column as zero points.
	Faults []FaultPoint `json:"faults,omitempty"`
	// SweepTimings compares dispatching the full benchmark matrix through
	// the sweep scheduler serially (workers=1) and in parallel
	// (cfg.Workers); the parallel entry's Speedup is serial wall time over
	// its own. Absent when the run was configured with one worker.
	SweepTimings []SweepTiming `json:"sweepTimings,omitempty"`
	// Multicore is the step backend's worker-scaling matrix (see
	// multicore.go): the same shard layout driven by GOMAXPROCS ∈ {1,4,8}
	// workers. Absent in baselines generated before the staged-lane
	// backend; the compare gate treats the missing column as zero points.
	Multicore []MulticorePoint `json:"multicore,omitempty"`
	// OutOfCore is the file-backed graph matrix (see outofcore.go): the
	// same run measured from a generated graph and from an mmap'd CSR
	// file, with the memory-budget columns populated. Absent in baselines
	// generated before the out-of-core store existed; the compare gate
	// treats the missing column as zero points.
	OutOfCore []OutOfCorePoint `json:"outOfCore,omitempty"`
	// Locality is the cache-layout matrix (see locality.go): relabel
	// {off, rcm} × shards {auto, fixed} on the step backend over an mmap'd
	// CSR file, with identical accounting enforced across all four cells.
	// Absent in baselines generated before the locality pass existed; the
	// compare gate treats the missing column as zero points.
	Locality []LocalityPoint `json:"locality,omitempty"`
}

// SweepTiming is one wall-clock measurement of the whole benchmark matrix
// dispatched through the sweep scheduler at a fixed worker count.
type SweepTiming struct {
	Workers int     `json:"workers"`
	WallMs  float64 `json:"wallMs"`
	Speedup float64 `json:"speedup"`
}

// backendFamilies are the graph families the backend benchmark sweeps;
// ring (a=2) and forest-union (a=3) are the million-vertex families named
// by the engine roadmap.
var backendFamilies = []struct {
	Name string
	A    int
	Gen  func(n int) *vavg.Graph
}{
	{"ring", 2, func(n int) *vavg.Graph { return vavg.Ring(n) }},
	{"forests", 3, func(n int) *vavg.Graph { return vavg.ForestUnion(n, 3, 7) }},
}

// backendAlgs are the default benchmarked algorithms: "partition" is the
// early-termination workload (every backend shrinks its live set), while
// "arblinial-o1" and "ka2" layer the §7 Idle-window schedules on top,
// which is where the active-set schedulers pay off: goroutines wakes
// every live vertex every round of a window, the pool parks them until a
// message arrives or the window expires, and the step backend runs the
// same parked schedule without any goroutine machinery at all.
var backendAlgs = []string{"partition", "arblinial-o1", "ka2"}

// RunBackendBench measures every registered engine backend on the default
// algorithm/family matrix across cfg.Sizes. The per-point wall and memory
// measurements run strictly serially — concurrent runs would contend for
// cores and corrupt them; the sweep-scheduler throughput comparison is
// measured separately by measureSweepTimings.
func RunBackendBench(cfg Config) (*BackendBench, error) {
	cfg = cfg.withDefaults()
	seed := cfg.Seeds[0]
	bench := &BackendBench{GoVersion: runtime.Version(), GoMaxProcs: runtime.GOMAXPROCS(0), NumCPU: runtime.NumCPU()}
	for _, fam := range backendFamilies {
		for _, n := range cfg.Sizes {
			g := cachedGraph(graph.CacheKey(fam.Name, n), func() *vavg.Graph { return fam.Gen(n) })
			for _, name := range backendAlgs {
				alg, err := vavg.ByName(name)
				if err != nil {
					return nil, err
				}
				for _, backend := range engine.Backends() {
					pt, err := measureBackend(alg, g, fam.Name, fam.A, backend, seed, cfg.StepShards)
					if err != nil {
						return nil, fmt.Errorf("backends: %s/%s/%s n=%d: %w", backend, name, fam.Name, n, err)
					}
					bench.Points = append(bench.Points, pt)
				}
			}
		}
	}
	var err error
	if bench.SweepTimings, err = measureSweepTimings(cfg); err != nil {
		return nil, err
	}
	if bench.Multicore, err = RunMulticoreBench(cfg); err != nil {
		return nil, err
	}
	if bench.Faults, err = RunFaultsBench(cfg); err != nil {
		return nil, err
	}
	if bench.OutOfCore, err = RunOutOfCoreBench(cfg); err != nil {
		return nil, err
	}
	if bench.Locality, err = RunLocalityBench(cfg); err != nil {
		return nil, err
	}
	return bench, nil
}

// sweepMatrix builds the benchmark matrix as schedulable run points, one
// per (family, n, algorithm, backend), sharing one cached graph per
// (family, n) and skipping validation so only the engine is on the clock.
func sweepMatrix(cfg Config) ([]runPoint, error) {
	seed := cfg.Seeds[0]
	var points []runPoint
	for _, fam := range backendFamilies {
		for _, n := range cfg.Sizes {
			g := cachedGraph(graph.CacheKey(fam.Name, n), func() *vavg.Graph { return fam.Gen(n) })
			for _, name := range backendAlgs {
				alg, err := vavg.ByName(name)
				if err != nil {
					return nil, err
				}
				for _, backend := range engine.Backends() {
					points = append(points, runPoint{alg, g, vavg.Params{
						Arboricity: fam.A, Seed: seed, Backend: backend, StepShards: cfg.StepShards, SkipValidation: true,
					}})
				}
			}
		}
	}
	return points, nil
}

// measureSweepTimings times the full benchmark matrix dispatched through
// the sweep scheduler, first serially (workers=1), then at the configured
// worker count when it differs. This is the throughput measure the
// parallel scheduler optimizes: on a W-core machine the parallel dispatch
// should approach min(W, workers)x the serial wall time, while on a
// single-core machine it stays near 1x (the matrix is CPU-bound).
func measureSweepTimings(cfg Config) ([]SweepTiming, error) {
	points, err := sweepMatrix(cfg)
	if err != nil {
		return nil, err
	}
	counts := []int{1}
	if w := parallel.Workers(cfg.Workers, len(points)); w > 1 {
		counts = append(counts, w)
	}
	var out []SweepTiming
	for _, workers := range counts {
		runtime.GC()
		errs := make([]error, len(points))
		start := time.Now()
		parallel.ForEach(workers, len(points), func(i int) {
			pt := points[i]
			_, errs[i] = pt.alg.Run(pt.g, pt.p)
		})
		wall := float64(time.Since(start).Nanoseconds()) / 1e6
		for _, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("backends: sweep timing (workers=%d): %w", workers, err)
			}
		}
		speedup := 1.0
		if len(out) > 0 && wall > 0 {
			speedup = out[0].WallMs / wall
		}
		out = append(out, SweepTiming{Workers: workers, WallMs: wall, Speedup: speedup})
	}
	return out, nil
}

// measureBackend times one run with validation disabled so only the engine
// core is on the clock, and samples HeapInuse+StackInuse concurrently to
// capture the peak footprint (goroutine stacks dominate at large n).
func measureBackend(alg vavg.Algorithm, g *vavg.Graph, family string, a int, backend string, seed int64, stepShards int) (BackendPoint, error) {
	pt, _, err := measureParams(alg, g, family, vavg.Params{
		Arboricity: a, Seed: seed, Backend: backend, StepShards: stepShards,
	})
	return pt, err
}

// measureParams is measureBackend with the full Params surface (the
// locality matrix threads Relabel and StepShards through it) and the
// measured Report returned alongside, for columns the BackendPoint does
// not carry (the autotuned shard count). SkipValidation is forced.
func measureParams(alg vavg.Algorithm, g *vavg.Graph, family string, p vavg.Params) (BackendPoint, metrics.Run, error) {
	runtime.GC()
	resetPeakRSS()
	stop := make(chan struct{})
	peakCh := make(chan uint64, 1)
	go func() {
		var ms runtime.MemStats
		var peak uint64
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if v := ms.HeapInuse + ms.StackInuse; v > peak {
				peak = v
			}
			select {
			case <-stop:
				peakCh <- peak
				return
			case <-tick.C:
			}
		}
	}()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	startMallocs := ms.Mallocs
	p.SkipValidation = true
	start := time.Now()
	rep, err := alg.Run(g, p)
	wall := time.Since(start)
	runtime.ReadMemStats(&ms)
	close(stop)
	peak := <-peakCh
	if err != nil {
		return BackendPoint{}, metrics.Run{}, err
	}
	pt := BackendPoint{
		Backend:      p.Backend,
		Algorithm:    alg.Name,
		Family:       family,
		N:            g.N(),
		M:            g.M(),
		TotalRounds:  rep.WorstCase,
		RoundSum:     rep.RoundSum,
		VertexAvg:    rep.VertexAvg,
		WallMs:       float64(wall.Nanoseconds()) / 1e6,
		PeakBytes:    peak,
		PeakRSSBytes: readPeakRSSBytes(),
		MappedBytes:  g.MappedBytes(),
		Allocs:       ms.Mallocs - startMallocs,
	}
	if rep.WorstCase > 0 {
		pt.NsPerRound = float64(wall.Nanoseconds()) / float64(rep.WorstCase)
	}
	if rep.RoundSum > 0 {
		pt.NsPerVertexRound = float64(wall.Nanoseconds()) / float64(rep.RoundSum)
		pt.AllocsPerVertexRound = float64(pt.Allocs) / float64(rep.RoundSum)
	}
	return pt, rep, nil
}

// WriteJSON emits the benchmark as indented JSON (the BENCH_engine.json
// format).
func (b *BackendBench) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// runBackends renders the backend comparison as a table (or as JSON under
// cfg.JSON) and cross-checks that the backends agreed on the accounting.
func runBackends(cfg Config) error {
	cfg = cfg.withDefaults()
	bench, err := RunBackendBench(cfg)
	if err != nil {
		return err
	}
	if err := checkBackendAgreement(bench); err != nil {
		return err
	}
	if cfg.JSON {
		return bench.WriteJSON(cfg.W)
	}
	var rows [][]string
	for _, pt := range bench.Points {
		rows = append(rows, []string{
			pt.Backend, pt.Algorithm, pt.Family, metrics.I(pt.N),
			metrics.F(pt.VertexAvg), metrics.I(pt.TotalRounds),
			fmt.Sprintf("%.1f", pt.WallMs),
			fmt.Sprintf("%.0f", pt.NsPerVertexRound),
			fmt.Sprintf("%.3f", pt.AllocsPerVertexRound),
			fmt.Sprintf("%.1f", float64(pt.PeakBytes)/(1<<20)),
		})
	}
	metrics.Table(cfg.W, []string{"backend", "algorithm", "family", "n",
		"vertex-avg", "rounds", "wall ms", "ns/vertex-round", "allocs/vr", "peak MiB"}, rows)
	if len(bench.SweepTimings) > 0 {
		fmt.Fprintf(cfg.W, "\nsweep scheduler (full matrix, %d CPUs):\n", bench.NumCPU)
		var trows [][]string
		for _, t := range bench.SweepTimings {
			trows = append(trows, []string{
				metrics.I(t.Workers), fmt.Sprintf("%.1f", t.WallMs),
				fmt.Sprintf("%.2fx", t.Speedup),
			})
		}
		metrics.Table(cfg.W, []string{"workers", "wall ms", "speedup"}, trows)
	}
	return nil
}

// checkBackendAgreement verifies the equivalence contract on the
// benchmark's own data: every backend must report identical rounds and
// round sums for the same (algorithm, family, n, seed) cell.
func checkBackendAgreement(b *BackendBench) error {
	type key struct {
		alg, fam string
		n        int
	}
	seen := map[key]BackendPoint{}
	for _, pt := range b.Points {
		k := key{pt.Algorithm, pt.Family, pt.N}
		if prev, ok := seen[k]; ok {
			if prev.TotalRounds != pt.TotalRounds || prev.RoundSum != pt.RoundSum {
				return fmt.Errorf("backends disagree on %s/%s n=%d: %s (%d,%d) vs %s (%d,%d)",
					pt.Algorithm, pt.Family, pt.N,
					prev.Backend, prev.TotalRounds, prev.RoundSum,
					pt.Backend, pt.TotalRounds, pt.RoundSum)
			}
		} else {
			seen[k] = pt
		}
	}
	return nil
}
