package experiments

import (
	"strings"
	"testing"
)

// TestRunLocalityBench runs the quick locality matrix and pins its
// contract: four cells per (family, algorithm) — relabel {off, rcm} ×
// shards {auto, fixed} — with identical LOCAL-model accounting, a
// recorded shard count on every cell, and speedup defined as the
// relabel-off wall time of the same shard mode over the cell's own.
func TestRunLocalityBench(t *testing.T) {
	points, err := RunLocalityBench(Config{Quick: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cellsPer := 4
	if want := cellsPer * len(backendFamilies) * len(localityAlgs); len(points) != want {
		t.Fatalf("got %d points, want %d (4 cells per family x algorithm)", len(points), want)
	}
	for i := 0; i < len(points); i += cellsPer {
		cells := points[i : i+cellsPer]
		base := cells[0]
		if base.Relabel != "off" || base.ShardMode != "auto" {
			t.Fatalf("cell order changed: first cell is %s/%s, want off/auto", base.Relabel, base.ShardMode)
		}
		for _, c := range cells {
			if c.Algorithm != base.Algorithm || c.Family != base.Family || c.N != base.N {
				t.Errorf("cell block mixes runs: %s/%s/%d vs %s/%s/%d",
					c.Algorithm, c.Family, c.N, base.Algorithm, base.Family, base.N)
			}
			if c.TotalRounds != base.TotalRounds || c.RoundSum != base.RoundSum {
				t.Errorf("%s/%s relabel=%s shards=%s: accounting (%d, %d) differs from off/auto (%d, %d)",
					c.Algorithm, c.Family, c.Relabel, c.ShardMode,
					c.TotalRounds, c.RoundSum, base.TotalRounds, base.RoundSum)
			}
			if c.Shards < 1 {
				t.Errorf("%s/%s relabel=%s shards=%s: recorded shard count %d, want >= 1",
					c.Algorithm, c.Family, c.Relabel, c.ShardMode, c.Shards)
			}
			if c.ShardMode == "fixed" && c.Shards != localityFixedShards {
				t.Errorf("%s/%s fixed cell recorded %d shards, want %d",
					c.Algorithm, c.Family, c.Shards, localityFixedShards)
			}
			if c.Relabel == "off" && c.Speedup != 1 {
				t.Errorf("%s/%s off/%s: speedup %f, want 1 by construction",
					c.Algorithm, c.Family, c.ShardMode, c.Speedup)
			}
			if c.Speedup <= 0 {
				t.Errorf("%s/%s %s/%s: non-positive speedup %f",
					c.Algorithm, c.Family, c.Relabel, c.ShardMode, c.Speedup)
			}
		}
	}
}

// TestCompareBenchesLocality pins the regression gate's handling of the
// locality column: rows fold into the keyed diff under synthesized
// locality-* backends, and a baseline that predates the column diffs
// cleanly — its missing rows surface as unmatched, never as failures.
func TestCompareBenchesLocality(t *testing.T) {
	lp := func(relabel, mode string, wall float64) LocalityPoint {
		return LocalityPoint{Relabel: relabel, ShardMode: mode, Shards: 2,
			Algorithm: "partition", Family: "ring", N: 1024, WallMs: wall, Allocs: 500}
	}
	core := []BackendPoint{{Backend: "step", Algorithm: "partition", Family: "ring", N: 1024, WallMs: 10, Allocs: 1000}}
	old := &BackendBench{Points: core,
		Locality: []LocalityPoint{lp("off", "auto", 10), lp("rcm", "auto", 8)}}
	fresh := &BackendBench{Points: core,
		Locality: []LocalityPoint{lp("off", "auto", 10.5), lp("rcm", "auto", 16), lp("rcm", "fixed", 9)}}
	rep := CompareBenches(old, fresh, 25)
	if rep.Regressions != 1 {
		t.Fatalf("Regressions = %d, want 1 (the rcm@auto +100%% wall)", rep.Regressions)
	}
	for _, d := range rep.Deltas {
		if wantReg := d.Backend == "locality-rcm@auto"; d.Regressed != wantReg {
			t.Errorf("%s: Regressed = %v, want %v", d.Backend, d.Regressed, wantReg)
		}
	}
	if len(rep.Unmatched) != 1 || !strings.Contains(rep.Unmatched[0], "locality-rcm@fixed") {
		t.Errorf("Unmatched = %v, want the new rcm@fixed row only", rep.Unmatched)
	}

	// A pre-locality baseline: every locality row is unmatched, none gate.
	pre := &BackendBench{Points: core}
	rep = CompareBenches(pre, fresh, 25)
	if rep.Regressions != 0 {
		t.Errorf("locality-added bench regressed against pre-locality baseline: %+v", rep.Deltas)
	}
	if len(rep.Unmatched) != 3 {
		t.Errorf("got %d unmatched, want the 3 locality rows: %v", len(rep.Unmatched), rep.Unmatched)
	}
}
