package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick smoke-runs every experiment in quick mode and
// checks that each renders a non-empty table. This is the integration test
// guaranteeing that the full `vavgbench -exp all` pipeline stays runnable.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke run is not short")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var sb strings.Builder
			cfg := Config{Quick: true, W: &sb}
			if err := e.Run(cfg); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(strings.TrimSpace(sb.String())) == 0 {
				t.Fatalf("%s rendered nothing", e.ID)
			}
		})
	}
}

func TestFind(t *testing.T) {
	if _, err := Find("t2-mis"); err != nil {
		t.Fatal(err)
	}
	if _, err := Find("bogus"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
	// IDs are unique.
	seen := map[string]bool{}
	for _, e := range All() {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Artifact == "" || e.Claim == "" {
			t.Errorf("experiment %q missing metadata", e.ID)
		}
	}
}
