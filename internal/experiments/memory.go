package experiments

import (
	"bytes"
	"os"
	"strconv"
)

// readPeakRSSBytes returns the process's peak resident set size in bytes
// (the VmHWM line of /proc/self/status), or 0 on hosts without procfs.
// Unlike the runtime's HeapInuse+StackInuse sampling, the kernel's
// watermark sees everything the process touched — including pages faulted
// in through a read-only file mapping — which is exactly the number an
// out-of-core run is trying to keep below the machine's RAM.
func readPeakRSSBytes() uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := bytes.Fields(line[len("VmHWM:"):])
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseUint(string(fields[0]), 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// resetPeakRSS resets the kernel's peak-RSS watermark (writing "5" to
// /proc/self/clear_refs) so the next readPeakRSSBytes reflects only the
// measured run, not whatever the process touched before it. Best-effort:
// on hosts without the file the watermark stays cumulative, which only
// ever over-reports.
func resetPeakRSS() {
	_ = os.WriteFile("/proc/self/clear_refs", []byte("5"), 0)
}
