package hpartition

import (
	"math"
	"testing"
	"testing/quick"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
)

func runPartition(t *testing.T, g *graph.Graph, a int, eps float64) (*engine.Result, []int) {
	t.Helper()
	res, err := engine.Run(g, Program(a, eps), engine.Options{Seed: 1})
	if err != nil {
		t.Fatalf("partition on %s: %v", g.Name, err)
	}
	return res, HIndexes(res.Output)
}

func TestPartitionInvariantOnFamilies(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		a int
	}{
		{graph.Ring(64), 2},
		{graph.Path(50), 1},
		{graph.Star(100), 1},
		{graph.ForestUnion(300, 3, 9), 3},
		{graph.TriangulatedGrid(12, 12), 3},
		{graph.Clique(20), 10},
		{graph.Hypercube(6), 7},
	}
	for _, c := range cases {
		for _, eps := range []float64{0.5, 1, 2} {
			res, h := runPartition(t, c.g, c.a, eps)
			A := ParamA(c.a, eps)
			if err := check.HPartition(c.g, h, A); err != nil {
				t.Errorf("%s eps=%v: %v", c.g.Name, eps, err)
			}
			// Vertex terminates exactly in its join round.
			for v := 0; v < c.g.N(); v++ {
				if int(res.Rounds[v]) != h[v] {
					t.Errorf("%s: vertex %d joined H_%d but ran %d rounds", c.g.Name, v, h[v], res.Rounds[v])
				}
			}
		}
	}
}

func TestPartitionExponentialDecay(t *testing.T) {
	// Lemma 6.1: n_i <= (2/(2+eps))^{i-1} * n. Verify on a large
	// bounded-arboricity graph with eps = 2 (decay factor 1/2).
	g := graph.ForestUnion(4000, 4, 123)
	res, _ := runPartition(t, g, 4, 2)
	n := float64(g.N())
	for i, active := range res.ActivePerRound {
		bound := math.Pow(0.5, float64(i)) * n
		if float64(active) > bound+1e-9 {
			t.Errorf("round %d: %d active, Lemma 6.1 bound %.1f", i+1, active, bound)
		}
	}
}

func TestPartitionVertexAveragedConstant(t *testing.T) {
	// Theorem 6.3: vertex-averaged complexity O(1); with eps=2 the geometric
	// series bounds it by 2. Worst case grows with n.
	prevWorst := 0
	for _, n := range []int{1000, 4000, 16000} {
		g := graph.ForestUnion(n, 3, 77)
		res, _ := runPartition(t, g, 3, 2)
		if avg := res.VertexAverage(); avg > 2.5 {
			t.Errorf("n=%d: vertex-averaged %.2f, want O(1) (<= 2.5)", n, avg)
		}
		if res.TotalRounds < prevWorst {
			t.Logf("n=%d: worst case %d did not grow (prev %d)", n, res.TotalRounds, prevWorst)
		}
		prevWorst = res.TotalRounds
	}
}

func TestEllAndParamA(t *testing.T) {
	if ParamA(3, 2) != 12 {
		t.Errorf("ParamA(3,2) = %d, want 12", ParamA(3, 2))
	}
	if ParamA(1, 0.5) != 3 {
		t.Errorf("ParamA(1,0.5) = %d, want 3", ParamA(1, 0.5))
	}
	if Ell(1024, 2) != 10 {
		t.Errorf("Ell(1024,2) = %d, want 10", Ell(1024, 2))
	}
	defer func() {
		if recover() == nil {
			t.Error("ParamA should panic on eps out of range")
		}
	}()
	ParamA(1, 3)
}

func TestTrackerComposedUse(t *testing.T) {
	// Drive the Tracker inside a larger program: after joining, each vertex
	// spends one settle round, then terminates with (hIndex, #sameSet)
	// where #sameSet counts neighbors known to share its H-set.
	g := graph.ForestUnion(400, 2, 5)
	type out struct {
		h       int32
		sameSet int
	}
	prog := func(api *engine.API) any {
		tr := NewTracker(api, 2, 1)
		for {
			joined, _ := tr.Step(api)
			if joined {
				break
			}
		}
		// Settle round: same-round joiners' announcements arrive now.
		tr.Absorb(api, api.Next())
		same := 0
		for _, h := range tr.NbrH {
			if h == tr.HIndex {
				same++
			}
		}
		return out{tr.HIndex, same}
	}
	res, err := engine.Run(g, prog, engine.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := make([]int, g.N())
	for v, o := range res.Output {
		h[v] = int(o.(out).h)
	}
	if err := check.HPartition(g, h, ParamA(2, 1)); err != nil {
		t.Error(err)
	}
	// sameSet symmetry: u counts v iff v counts u; check via recomputation.
	for v := 0; v < g.N(); v++ {
		want := 0
		for _, w := range g.Neighbors(v) {
			if h[w] == h[v] {
				want++
			}
		}
		if got := res.Output[v].(out).sameSet; got != want {
			t.Errorf("vertex %d sees %d same-set neighbors, want %d", v, got, want)
		}
	}
	// Composed cost: join round + settle + final = h[v] + 2.
	for v := 0; v < g.N(); v++ {
		if int(res.Rounds[v]) != h[v]+2 {
			t.Errorf("vertex %d rounds = %d, want %d", v, res.Rounds[v], h[v]+2)
		}
	}
}

func TestPartitionPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64, aRaw uint8) bool {
		a := 1 + int(aRaw%4)
		g := graph.ForestUnion(150, a, seed)
		res, err := engine.Run(g, Program(a, 1), engine.Options{Seed: seed})
		if err != nil {
			return false
		}
		return check.HPartition(g, HIndexes(res.Output), ParamA(a, 1)) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
