package hpartition

import (
	"testing"

	"vavg/internal/check"
	"vavg/internal/engine"
	"vavg/internal/graph"
)

func TestGeneralPartitionUnknownArboricity(t *testing.T) {
	cases := []struct {
		g *graph.Graph
		a int
	}{
		{graph.Ring(64), 2},
		{graph.ForestUnion(500, 3, 9), 3},
		{graph.Clique(24), 12},
		{graph.Star(100), 1},
		{graph.TriangulatedGrid(12, 12), 3},
	}
	for _, c := range cases {
		res, err := engine.Run(c.g, GeneralProgram(2), engine.Options{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", c.g.Name, err)
		}
		h, maxThr := GeneralHIndexes(res.Output, 2)
		if err := check.HPartition(c.g, h, maxThr); err != nil {
			t.Errorf("%s: %v", c.g.Name, err)
		}
		// The adaptive threshold must stay O(a): generous constant 16(2+eps).
		if maxThr > 16*4*c.a {
			t.Errorf("%s: max threshold %d not O(a=%d)", c.g.Name, maxThr, c.a)
		}
	}
}

func TestGeneralPartitionVertexAveragedIndependentOfN(t *testing.T) {
	var avgs []float64
	for _, n := range []int{1000, 8000} {
		g := graph.ForestUnion(n, 3, 77)
		res, err := engine.Run(g, GeneralProgram(2), engine.Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		avgs = append(avgs, res.VertexAverage())
	}
	if avgs[1] > avgs[0]*1.5+1 {
		t.Errorf("vertex average grew with n: %v", avgs)
	}
}

func TestGeneralThresholdDoubles(t *testing.T) {
	if GeneralThreshold(1, 2) != 8 || GeneralThreshold(3, 2) != 32 {
		t.Errorf("thresholds wrong: %d %d", GeneralThreshold(1, 2), GeneralThreshold(3, 2))
	}
}
