// Package hpartition implements Procedure Partition from Barenboim-Elkin
// (2008), the basic building block of the paper (Section 6.1): it splits
// the vertices of a graph with arboricity a into ell = O(log n) H-sets
// H_1, ..., H_ell such that every v in H_i has at most A = (2+eps)*a
// neighbors in the union of H_i, ..., H_ell.
//
// In every round, each still-active vertex with at most A active neighbors
// joins the current H-set and becomes inactive. At least an eps/(2+eps)
// fraction of active vertices joins each round (Lemma 6.1), so the number
// of active vertices decays exponentially and the vertex-averaged
// complexity is O(1) (Theorem 6.3) even though the worst case is
// Theta(log n).
//
// The package exposes the procedure in two forms: Program, the standalone
// algorithm whose per-vertex output is its H-index, and Tracker, a
// per-vertex state machine that composed algorithms (Sections 6.2-9) drive
// one partition round at a time, interleaved with their own work.
package hpartition

import (
	"math"

	"vavg/internal/engine"
	"vavg/internal/wire"
)

// ParamA returns A = ceil((2+eps)*a), the active-degree threshold of
// Procedure Partition. eps must lie in (0,2].
func ParamA(a int, eps float64) int {
	if eps <= 0 || eps > 2 {
		panic("hpartition: eps must be in (0,2]")
	}
	if a < 1 {
		a = 1
	}
	return int(math.Ceil((2 + eps) * float64(a)))
}

// Ell returns ell = floor((2/eps)*log2 n), the paper's bound on the number
// of H-sets (and partition rounds).
func Ell(n int, eps float64) int {
	if n < 2 {
		return 1
	}
	return int(math.Floor(2 / eps * math.Log2(float64(n))))
}

// EllBound returns a round count by which Procedure Partition is
// guaranteed to have assigned every vertex to an H-set: the smallest L
// with ((2+eps)/2)^L >= n, plus one round of slack (Lemma 6.1). Composed
// algorithms use it to schedule phases that must start after the
// partition completes.
func EllBound(n int, eps float64) int {
	if n < 2 {
		return 1
	}
	return int(math.Ceil(math.Log(float64(n))/math.Log((2+eps)/2))) + 1
}

// Join is the message a vertex broadcasts in the round it joins an H-set.
// Steady-state joins travel on the engine's integer fast lane as
// wire.TagJoin; the struct form only rides the terminating Final broadcast
// of standalone Program runs. It is a wire-codable payload by construction
// (payloadwire enforces this): one plain int32, nothing address-shaped.
type Join struct {
	// Index is the H-set the sender joined (1-based).
	Index int32
}

// Tracker is the per-vertex state of Procedure Partition, for use inside
// larger vertex programs. The zero value is not usable; call NewTracker.
type Tracker struct {
	// A is the active-degree threshold.
	A int
	// HIndex is the H-set this vertex joined, or 0 while still active.
	HIndex int32
	// NbrH[k] is the H-index of the k-th neighbor, or 0 while it is active.
	NbrH []int32

	activeDeg int
	round     int32
}

// NewTracker initializes partition state for the calling vertex.
func NewTracker(api *engine.API, a int, eps float64) *Tracker {
	return &Tracker{
		A:         ParamA(a, eps),
		NbrH:      make([]int32, api.Degree()),
		activeDeg: api.Degree(),
	}
}

// Absorb processes incoming messages that are relevant to the partition:
// Join announcements and Final terminations both mark the sender inactive.
// Composed algorithms must call Absorb (or Step, which calls it) on every
// batch of received messages so that active-degree counts stay correct.
func (t *Tracker) Absorb(api *engine.API, msgs []engine.Msg) {
	for _, m := range msgs {
		var idx int32
		if x, ok := m.AsInt(); ok {
			// Fast-lane traffic: only TagJoin concerns the partition; other
			// tags are a composed algorithm's own messages.
			if wire.Tag(x) != wire.TagJoin {
				continue
			}
			idx = int32(wire.Payload(x))
		} else {
			switch d := m.Data.(type) {
			case Join:
				idx = d.Index
			case engine.Final:
				if j, ok := d.Output.(Join); ok {
					idx = j.Index
				} else {
					idx = -1 // terminated without a Join (foreign algorithm)
				}
			default:
				continue
			}
		}
		k := nbrIndex(api, m.From)
		if t.NbrH[k] == 0 {
			t.NbrH[k] = idx
			t.activeDeg--
		}
	}
}

func nbrIndex(api *engine.API, from int32) int {
	ids := api.NeighborIDs()
	lo, hi := 0, len(ids)
	for lo < hi {
		mid := (lo + hi) / 2
		if ids[mid] < from {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Eligible reports whether the vertex would join the H-set in the next
// partition round (it is active and has at most A active neighbors).
func (t *Tracker) Eligible() bool {
	return t.HIndex == 0 && t.activeDeg <= t.A
}

// Advance executes the decision half of one partition round: if the
// vertex is eligible it joins H-set number (t.round+1), broadcasting the
// join on the integer fast lane, and Advance reports true. Step-form
// programs call it once per turn, after absorbing the turn's inbox;
// blocking callers use Step, which also crosses the engine round. It must
// not be called after the vertex has joined.
func (t *Tracker) Advance(api *engine.API) bool {
	if t.HIndex != 0 {
		panic("hpartition: partition round after joining")
	}
	t.round++
	if t.activeDeg <= t.A {
		t.HIndex = t.round
		api.BroadcastInt(wire.Pack(wire.TagJoin, int64(t.round)))
		return true
	}
	return false
}

// Step executes one round of Procedure Partition: if the vertex is
// eligible it joins H-set number (t.round+1), broadcasting the join. It
// then advances one engine round and absorbs the incoming messages. It
// returns whether the vertex joined in this round and the full message
// batch (already absorbed) for further processing by the caller. Step
// must not be called after the vertex has joined.
func (t *Tracker) Step(api *engine.API) (joined bool, msgs []engine.Msg) {
	joined = t.Advance(api)
	msgs = api.Next()
	t.Absorb(api, msgs)
	return joined, msgs
}

// RoundsDone returns how many partition rounds this vertex has executed.
func (t *Tracker) RoundsDone() int { return int(t.round) }

// Program is standalone Procedure Partition: each vertex runs partition
// rounds until it joins an H-set and terminates with its H-index (an int)
// as output. Its Join announcement is carried by the engine's Final
// broadcast, so a vertex that joins in round i terminates in round i,
// matching the paper's accounting exactly.
func Program(a int, eps float64) engine.Program {
	return func(api *engine.API) any {
		t := NewTracker(api, a, eps)
		for {
			t.round++
			if t.activeDeg <= t.A {
				// Terminating output doubles as the Join announcement.
				return Join{Index: t.round}
			}
			t.Absorb(api, api.Next())
		}
	}
}

// HIndexes extracts the per-vertex H-indices from a standalone Program run.
func HIndexes(output []any) []int {
	h := make([]int, len(output))
	for v, o := range output {
		h[v] = int(o.(Join).Index)
	}
	return h
}
