package hpartition

import (
	"vavg/internal/engine"
)

// Step (state-machine) forms of the partition programs. Each turn is one
// round of the blocking form: absorb the messages delivered since the
// previous turn, then take the same join decision the blocking loop body
// takes — so the step and goroutine executions are byte-identical.

// StepProgram is the step form of Program: standalone Procedure Partition
// with the Join announcement carried by the engine's Final broadcast.
func StepProgram(a int, eps float64) engine.StepProgram {
	return func(api *engine.API) engine.StepFn {
		t := NewTracker(api, a, eps)
		var fn engine.StepFn
		fn = func(api *engine.API, inbox []engine.Msg) engine.Step {
			t.Absorb(api, inbox)
			t.round++
			if t.activeDeg <= t.A {
				// Terminating output doubles as the Join announcement.
				return engine.Done(Join{Index: t.round})
			}
			return engine.Continue(fn)
		}
		return fn
	}
}

// GeneralStepProgram is the step form of GeneralProgram: the
// unknown-arboricity partition with doubling thresholds.
func GeneralStepProgram(eps float64) engine.StepProgram {
	if eps <= 0 || eps > 2 {
		panic("hpartition: eps must be in (0,2]")
	}
	return func(api *engine.API) engine.StepFn {
		activeDeg := api.Degree()
		seen := make(map[int32]bool, api.Degree())
		index := int32(0)
		phase := 1
		r := 0
		var fn engine.StepFn
		fn = func(api *engine.API, inbox []engine.Msg) engine.Step {
			for _, m := range inbox {
				if _, ok := m.Data.(engine.Final); ok && !seen[m.From] {
					seen[m.From] = true
					activeDeg--
				}
			}
			if r == generalPhaseLen(phase, eps) {
				phase++
				r = 0
			}
			r++
			index++
			if activeDeg <= GeneralThreshold(phase, eps) {
				return engine.Done(GeneralJoin{Index: index, Phase: int32(phase)})
			}
			return engine.Continue(fn)
		}
		return fn
	}
}
