package hpartition

import (
	"math"

	"vavg/internal/engine"
)

// GeneralJoin is the output of the unknown-arboricity partition: the
// H-index plus the threshold phase under which the vertex joined.
type GeneralJoin struct {
	// Index is the global H-set index (1-based, counted across phases).
	Index int32
	// Phase is the doubling phase (threshold (2+eps)*2^Phase) at join time.
	Phase int32
}

// GeneralThreshold returns the active-degree threshold of phase i of the
// unknown-arboricity partition: ceil((2+eps) * 2^i).
func GeneralThreshold(i int, eps float64) int {
	return int(math.Ceil((2 + eps) * math.Pow(2, float64(i))))
}

// generalPhaseLen returns the round budget of phase i: proportional to i,
// so the total across all O(log n) phases is O(log^2 n) in the worst case
// while a vertex of a graph with arboricity a pays only
// O(sum_{i <= log a} i) = O(log^2 a) rounds before its clearing phase.
func generalPhaseLen(i int, eps float64) int {
	return int(math.Ceil(2/eps*float64(i))) + 1
}

// GeneralProgram is a vertex-averaged variant of Procedure
// General-Partition from [8] (referenced in Section 6.1 for graphs whose
// arboricity is unknown): thresholds double across phases, so no a priori
// arboricity bound is needed. A vertex joining under the phase-i threshold
// has at most (2+eps)*2^i <= 4(2+eps)*a neighbors in later H-sets, so the
// output is an H-partition with parameter O(a), and the vertex-averaged
// complexity is O(log^2 a) — independent of n — against the classical
// Theta(log n) worst case.
func GeneralProgram(eps float64) engine.Program {
	if eps <= 0 || eps > 2 {
		panic("hpartition: eps must be in (0,2]")
	}
	return func(api *engine.API) any {
		activeDeg := api.Degree()
		seen := make(map[int32]bool, api.Degree())
		index := int32(0)
		for phase := 1; ; phase++ {
			threshold := GeneralThreshold(phase, eps)
			for r := 0; r < generalPhaseLen(phase, eps); r++ {
				index++
				if activeDeg <= threshold {
					return GeneralJoin{Index: index, Phase: int32(phase)}
				}
				for _, m := range api.Next() {
					if _, ok := m.Data.(engine.Final); ok && !seen[m.From] {
						seen[m.From] = true
						activeDeg--
					}
				}
			}
		}
	}
}

// GeneralHIndexes extracts per-vertex H-indices and the maximum join
// threshold from a GeneralProgram run.
func GeneralHIndexes(outputs []any, eps float64) (h []int, maxThreshold int) {
	h = make([]int, len(outputs))
	for v, o := range outputs {
		j := o.(GeneralJoin)
		h[v] = int(j.Index)
		if t := GeneralThreshold(int(j.Phase), eps); t > maxThreshold {
			maxThreshold = t
		}
	}
	return h, maxThreshold
}
