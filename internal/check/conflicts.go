package check

import "vavg/internal/graph"

// The conflict counters below are the degraded-run companions of the
// validators: where a validator rejects the first violated constraint, a
// counter tallies every violation and tolerates unassigned outputs
// (crashed vertices, non-converged runs). Adversarial-scenario runs
// report these tallies as data — residual conflicts are the measurement,
// not an error.

// ColoringConflicts counts the violated constraints of a partial vertex
// coloring: monochromatic edges whose endpoints are both assigned, plus
// one per unassigned vertex (color < 0).
func ColoringConflicts(g *graph.Graph, colors []int) int {
	conflicts := 0
	for u := 0; u < g.N(); u++ {
		if colors[u] < 0 {
			conflicts++
			continue
		}
		for _, v := range g.Neighbors(u) {
			if int(v) > u && colors[v] >= 0 && colors[u] == colors[v] {
				conflicts++
			}
		}
	}
	return conflicts
}

// MISConflicts counts the violated constraints of a partial independent
// set: edges with both assigned endpoints in the set (independence), plus
// assigned out-vertices with no assigned in-neighbor (maximality), plus
// one per unassigned vertex.
func MISConflicts(g *graph.Graph, in []bool, assigned []bool) int {
	conflicts := 0
	for u := 0; u < g.N(); u++ {
		if !assigned[u] {
			conflicts++
			continue
		}
		if in[u] {
			for _, v := range g.Neighbors(u) {
				if int(v) > u && assigned[v] && in[v] {
					conflicts++
				}
			}
			continue
		}
		covered := false
		for _, v := range g.Neighbors(u) {
			if assigned[v] && in[v] {
				covered = true
				break
			}
		}
		if !covered {
			conflicts++
		}
	}
	return conflicts
}

// MatchingConflicts counts the violated constraints of a partial matching
// given per-vertex partner IDs (-1 for unmatched): asymmetric or
// non-adjacent partner claims, plus unmatched pairs of assigned adjacent
// vertices (maximality), plus one per unassigned vertex.
func MatchingConflicts(g *graph.Graph, match []int32, assigned []bool) int {
	conflicts := 0
	n := g.N()
	for u := 0; u < n; u++ {
		if !assigned[u] {
			conflicts++
			continue
		}
		w := match[u]
		if w >= 0 {
			if int(w) >= n || g.NeighborIndex(u, int(w)) < 0 {
				conflicts++
			} else if assigned[w] && match[w] != int32(u) {
				conflicts++
			}
			continue
		}
		for _, v := range g.Neighbors(u) {
			if int(v) > u && assigned[v] && match[v] < 0 {
				conflicts++
			}
		}
	}
	return conflicts
}
