// Package check validates the outputs of the distributed algorithms:
// proper vertex and edge colorings, maximal independent sets, maximal
// matchings, H-partitions, forest decompositions and acyclic orientations.
// Every algorithm in the library is audited by these checkers in tests, and
// the benchmark harness can audit runs on demand.
package check

import (
	"fmt"

	"vavg/internal/graph"
)

// VertexColoring verifies that colors is a proper coloring of g using at
// most maxColors colors (maxColors <= 0 skips the palette audit). Colors
// must be non-negative.
func VertexColoring(g *graph.Graph, colors []int, maxColors int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("check: %d colors for %d vertices", len(colors), g.N())
	}
	distinct := map[int]bool{}
	for u := 0; u < g.N(); u++ {
		if colors[u] < 0 {
			return fmt.Errorf("check: vertex %d has negative color %d", u, colors[u])
		}
		distinct[colors[u]] = true
		for _, v := range g.Neighbors(u) {
			if int(v) > u && colors[u] == colors[v] {
				return fmt.Errorf("check: edge {%d,%d} monochromatic with color %d", u, v, colors[u])
			}
		}
	}
	if maxColors > 0 && len(distinct) > maxColors {
		return fmt.Errorf("check: %d distinct colors exceed budget %d", len(distinct), maxColors)
	}
	return nil
}

// CountColors returns the number of distinct values in colors.
func CountColors(colors []int) int {
	distinct := map[int]bool{}
	for _, c := range colors {
		distinct[c] = true
	}
	return len(distinct)
}

// EdgeColoring verifies a proper edge coloring: colors maps each
// undirected edge (keyed U<V) to a color, every edge is colored, and edges
// sharing an endpoint have distinct colors, with at most maxColors colors.
func EdgeColoring(g *graph.Graph, colors map[graph.Edge]int, maxColors int) error {
	if len(colors) != g.M() {
		return fmt.Errorf("check: %d colored edges, graph has %d", len(colors), g.M())
	}
	distinct := map[int]bool{}
	for u := 0; u < g.N(); u++ {
		seen := map[int]graph.Edge{}
		for _, v := range g.Neighbors(u) {
			e := normEdge(u, int(v))
			c, ok := colors[e]
			if !ok {
				return fmt.Errorf("check: edge {%d,%d} uncolored", e.U, e.V)
			}
			if c < 0 {
				return fmt.Errorf("check: edge {%d,%d} has negative color %d", e.U, e.V, c)
			}
			distinct[c] = true
			if other, dup := seen[c]; dup {
				return fmt.Errorf("check: edges {%d,%d} and {%d,%d} share endpoint %d and color %d",
					e.U, e.V, other.U, other.V, u, c)
			}
			seen[c] = e
		}
	}
	if maxColors > 0 && len(distinct) > maxColors {
		return fmt.Errorf("check: %d distinct edge colors exceed budget %d", len(distinct), maxColors)
	}
	return nil
}

func normEdge(u, v int) graph.Edge {
	if u > v {
		u, v = v, u
	}
	return graph.Edge{U: int32(u), V: int32(v)}
}

// MIS verifies that inSet is a maximal independent set of g.
func MIS(g *graph.Graph, inSet []bool) error {
	if len(inSet) != g.N() {
		return fmt.Errorf("check: MIS membership has length %d, want %d", len(inSet), g.N())
	}
	for u := 0; u < g.N(); u++ {
		coveredBy := inSet[u]
		for _, v := range g.Neighbors(u) {
			if inSet[u] && inSet[int(v)] {
				return fmt.Errorf("check: MIS not independent: edge {%d,%d}", u, v)
			}
			if inSet[int(v)] {
				coveredBy = true
			}
		}
		if !coveredBy {
			return fmt.Errorf("check: MIS not maximal: vertex %d uncovered", u)
		}
	}
	return nil
}

// MaximalMatching verifies that matched is a maximal matching: matched[v]
// is v's partner or -1, the relation is symmetric, partners are adjacent,
// and no edge has both endpoints unmatched.
func MaximalMatching(g *graph.Graph, matched []int32) error {
	if len(matched) != g.N() {
		return fmt.Errorf("check: matching has length %d, want %d", len(matched), g.N())
	}
	for u := 0; u < g.N(); u++ {
		p := matched[u]
		if p >= 0 {
			if int(matched[p]) != u {
				return fmt.Errorf("check: matching not symmetric at %d<->%d", u, p)
			}
			if !g.HasEdge(u, int(p)) {
				return fmt.Errorf("check: matched pair {%d,%d} not adjacent", u, p)
			}
		}
		for _, v := range g.Neighbors(u) {
			if matched[u] < 0 && matched[v] < 0 {
				return fmt.Errorf("check: matching not maximal: edge {%d,%d} free", u, v)
			}
		}
	}
	return nil
}

// HPartition verifies the Procedure Partition invariant: hIndex[v] in
// [1,ell] for every vertex, and every v with hIndex[v]=i has at most
// maxLater neighbors w with hIndex[w] >= i (maxLater = A = (2+eps)*a).
func HPartition(g *graph.Graph, hIndex []int, maxLater int) error {
	if len(hIndex) != g.N() {
		return fmt.Errorf("check: hIndex has length %d, want %d", len(hIndex), g.N())
	}
	for u := 0; u < g.N(); u++ {
		if hIndex[u] < 1 {
			return fmt.Errorf("check: vertex %d has H-index %d < 1", u, hIndex[u])
		}
		later := 0
		for _, v := range g.Neighbors(u) {
			if hIndex[v] >= hIndex[u] {
				later++
			}
		}
		if later > maxLater {
			return fmt.Errorf("check: vertex %d (H_%d) has %d neighbors in later H-sets, budget %d",
				u, hIndex[u], later, maxLater)
		}
	}
	return nil
}

// Orientation assigns each undirected edge a direction: toward[e] is the
// vertex the edge points to (must be e.U or e.V).
type Orientation map[graph.Edge]int32

// AcyclicOrientation verifies that every edge is oriented, directions are
// valid, the orientation has no directed cycle, out-degrees are at most
// maxOut (if > 0), and the longest directed path has length at most
// maxLen (if > 0). It returns the observed max out-degree and length.
func AcyclicOrientation(g *graph.Graph, o Orientation, maxOut, maxLen int) (outDeg, length int, err error) {
	n := g.N()
	if len(o) != g.M() {
		return 0, 0, fmt.Errorf("check: %d oriented edges, graph has %d", len(o), g.M())
	}
	outAdj := make([][]int32, n)
	outCount := make([]int, n)
	//lint:ignore detorder any violating edge is a valid error witness; the success path aggregates per-edge counts
	for e, head := range o {
		if head != e.U && head != e.V {
			return 0, 0, fmt.Errorf("check: edge {%d,%d} oriented toward non-endpoint %d", e.U, e.V, head)
		}
		tail := e.U
		if head == e.U {
			tail = e.V
		}
		outAdj[tail] = append(outAdj[tail], head)
		outCount[tail]++
	}
	for v := 0; v < n; v++ {
		if outCount[v] > outDeg {
			outDeg = outCount[v]
		}
	}
	if maxOut > 0 && outDeg > maxOut {
		return outDeg, 0, fmt.Errorf("check: orientation out-degree %d exceeds %d", outDeg, maxOut)
	}
	// Longest path via topological order; a cycle leaves vertices unordered.
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		for _, w := range outAdj[v] {
			indeg[w]++
		}
	}
	var stack []int32
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			stack = append(stack, int32(v))
		}
	}
	depth := make([]int, n)
	seen := 0
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		seen++
		for _, w := range outAdj[v] {
			if depth[v]+1 > depth[w] {
				depth[w] = depth[v] + 1
			}
			indeg[w]--
			if indeg[w] == 0 {
				stack = append(stack, w)
			}
		}
	}
	if seen != n {
		return outDeg, 0, fmt.Errorf("check: orientation contains a directed cycle")
	}
	for v := 0; v < n; v++ {
		if depth[v] > length {
			length = depth[v]
		}
	}
	if maxLen > 0 && length > maxLen {
		return outDeg, length, fmt.Errorf("check: orientation length %d exceeds %d", length, maxLen)
	}
	return outDeg, length, nil
}

// ForestDecomposition verifies an O(a)-forests-decomposition: every edge
// carries a label in [1,maxLabel], each vertex has at most one outgoing
// edge per label (so each label class is a functional forest), and the
// underlying orientation is acyclic.
func ForestDecomposition(g *graph.Graph, o Orientation, labels map[graph.Edge]int, maxLabel int) error {
	if len(labels) != g.M() {
		return fmt.Errorf("check: %d labeled edges, graph has %d", len(labels), g.M())
	}
	perLabelOut := map[[2]int32]bool{} // (tail, label)
	//lint:ignore detorder any violating edge is a valid error witness; the success path writes one set entry per edge
	for e, l := range labels {
		if l < 1 || l > maxLabel {
			return fmt.Errorf("check: edge {%d,%d} label %d outside [1,%d]", e.U, e.V, l, maxLabel)
		}
		head, ok := o[e]
		if !ok {
			return fmt.Errorf("check: labeled edge {%d,%d} not oriented", e.U, e.V)
		}
		tail := e.U
		if head == e.U {
			tail = e.V
		}
		key := [2]int32{tail, int32(l)}
		if perLabelOut[key] {
			return fmt.Errorf("check: vertex %d has two outgoing label-%d edges", tail, l)
		}
		perLabelOut[key] = true
	}
	if _, _, err := AcyclicOrientation(g, o, 0, 0); err != nil {
		return err
	}
	return nil
}
