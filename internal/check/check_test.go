package check

import (
	"strings"
	"testing"

	"vavg/internal/graph"
)

func ring4() *graph.Graph { return graph.Ring(4) }

func TestVertexColoring(t *testing.T) {
	g := ring4()
	if err := VertexColoring(g, []int{0, 1, 0, 1}, 2); err != nil {
		t.Errorf("proper 2-coloring rejected: %v", err)
	}
	if err := VertexColoring(g, []int{0, 0, 1, 1}, 2); err == nil {
		t.Error("monochromatic edge accepted")
	}
	if err := VertexColoring(g, []int{0, 1, 0, 5}, 2); err == nil {
		t.Error("palette overflow accepted")
	}
	if err := VertexColoring(g, []int{0, 1, 0, -1}, 0); err == nil {
		t.Error("negative color accepted")
	}
	if err := VertexColoring(g, []int{0, 1}, 0); err == nil {
		t.Error("wrong length accepted")
	}
	if CountColors([]int{3, 1, 3, 7}) != 3 {
		t.Error("CountColors wrong")
	}
}

func TestEdgeColoring(t *testing.T) {
	g := graph.Path(3) // edges {0,1},{1,2}
	good := map[graph.Edge]int{{U: 0, V: 1}: 0, {U: 1, V: 2}: 1}
	if err := EdgeColoring(g, good, 2); err != nil {
		t.Errorf("proper edge coloring rejected: %v", err)
	}
	bad := map[graph.Edge]int{{U: 0, V: 1}: 0, {U: 1, V: 2}: 0}
	if err := EdgeColoring(g, bad, 2); err == nil {
		t.Error("conflicting edge colors accepted")
	}
	missing := map[graph.Edge]int{{U: 0, V: 1}: 0}
	if err := EdgeColoring(g, missing, 2); err == nil {
		t.Error("missing edge accepted")
	}
}

func TestMIS(t *testing.T) {
	g := ring4()
	if err := MIS(g, []bool{true, false, true, false}); err != nil {
		t.Errorf("valid MIS rejected: %v", err)
	}
	if err := MIS(g, []bool{true, true, false, false}); err == nil {
		t.Error("non-independent set accepted")
	}
	if err := MIS(g, []bool{true, false, false, false}); err == nil {
		t.Error("non-maximal set accepted")
	}
}

func TestMaximalMatching(t *testing.T) {
	g := ring4()
	if err := MaximalMatching(g, []int32{1, 0, 3, 2}); err != nil {
		t.Errorf("perfect matching rejected: %v", err)
	}
	// On a path 0-1-2-3, matching just {1,2} is maximal.
	if err := MaximalMatching(graph.Path(4), []int32{-1, 2, 1, -1}); err != nil {
		t.Errorf("maximal path matching rejected: %v", err)
	}
	if err := MaximalMatching(g, []int32{-1, -1, -1, -1}); err == nil {
		t.Error("empty non-maximal matching accepted")
	}
	if err := MaximalMatching(g, []int32{1, 2, 1, -1}); err == nil {
		t.Error("asymmetric matching accepted")
	}
	if err := MaximalMatching(g, []int32{2, 3, 0, 1}); err == nil {
		t.Error("non-adjacent pairing accepted")
	}
}

func TestHPartition(t *testing.T) {
	g := graph.Star(5)
	// Leaves join H_1 (center is their only neighbor), center joins H_2.
	h := []int{2, 1, 1, 1, 1}
	if err := HPartition(g, h, 1); err != nil {
		t.Errorf("valid partition rejected: %v", err)
	}
	// Center in H_1 has 4 later neighbors: violates maxLater=1.
	if err := HPartition(g, []int{1, 1, 1, 1, 1}, 1); err == nil {
		t.Error("invariant violation accepted")
	}
	if err := HPartition(g, []int{0, 1, 1, 1, 1}, 4); err == nil {
		t.Error("zero H-index accepted")
	}
}

func TestAcyclicOrientation(t *testing.T) {
	g := graph.Ring(3)
	// Acyclic: 0->1, 0->2, 1->2.
	o := Orientation{{U: 0, V: 1}: 1, {U: 0, V: 2}: 2, {U: 1, V: 2}: 2}
	outDeg, length, err := AcyclicOrientation(g, o, 2, 2)
	if err != nil {
		t.Fatalf("acyclic orientation rejected: %v", err)
	}
	if outDeg != 2 || length != 2 {
		t.Errorf("outDeg=%d length=%d, want 2,2", outDeg, length)
	}
	// Directed triangle.
	cyc := Orientation{{U: 0, V: 1}: 1, {U: 1, V: 2}: 2, {U: 0, V: 2}: 0}
	if _, _, err := AcyclicOrientation(g, cyc, 0, 0); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Errorf("directed cycle accepted: %v", err)
	}
	// Out-degree budget.
	if _, _, err := AcyclicOrientation(g, o, 1, 0); err == nil {
		t.Error("out-degree overflow accepted")
	}
	// Length budget.
	if _, _, err := AcyclicOrientation(g, o, 0, 1); err == nil {
		t.Error("length overflow accepted")
	}
}

func TestForestDecomposition(t *testing.T) {
	g := graph.Ring(4)
	o := Orientation{
		{U: 0, V: 1}: 1, {U: 1, V: 2}: 2, {U: 2, V: 3}: 3, {U: 0, V: 3}: 3,
	}
	labels := map[graph.Edge]int{
		{U: 0, V: 1}: 1, {U: 1, V: 2}: 1, {U: 2, V: 3}: 1, {U: 0, V: 3}: 2,
	}
	if err := ForestDecomposition(g, o, labels, 2); err != nil {
		t.Errorf("valid decomposition rejected: %v", err)
	}
	// Two outgoing label-1 edges from vertex 0.
	badLabels := map[graph.Edge]int{
		{U: 0, V: 1}: 1, {U: 1, V: 2}: 1, {U: 2, V: 3}: 1, {U: 0, V: 3}: 1,
	}
	if err := ForestDecomposition(g, o, badLabels, 2); err == nil {
		t.Error("double label-1 out-edge accepted")
	}
	// Label out of range.
	badRange := map[graph.Edge]int{
		{U: 0, V: 1}: 1, {U: 1, V: 2}: 1, {U: 2, V: 3}: 1, {U: 0, V: 3}: 9,
	}
	if err := ForestDecomposition(g, o, badRange, 2); err == nil {
		t.Error("label out of range accepted")
	}
}
