package vavg

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
)

// TestFileGraphSweepEquivalence is the out-of-core correctness contract:
// a sweep over a file:-sourced graph — raw (mmap'd zero-copy on unix) or
// compressed — produces byte-identical results to the same generated
// graph, on every engine backend and at every sweep worker count. The
// on-disk store is a transport, never a semantic input.
func TestFileGraphSweepEquivalence(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		family   string
		n, a     int
		seed     int64
		compress bool
		alg      string
	}{
		{"forests", 600, 3, 7, false, "partition"},
		{"forests", 600, 3, 7, true, "partition"},
		{"ring", 300, 1, 1, false, "ring-3color"},
	}
	for _, tc := range cases {
		g, err := MakeFamily(tc.family, tc.n, tc.a, tc.seed)
		if err != nil {
			t.Fatal(err)
		}
		mode := "raw"
		if tc.compress {
			mode = "compressed"
		}
		path := filepath.Join(dir, tc.family+"-"+mode+".csr")
		if err := WriteGraphFile(path, g, tc.compress); err != nil {
			t.Fatal(err)
		}
		alg, err := ByName(tc.alg)
		if err != nil {
			t.Fatal(err)
		}
		fromRAM := func(n int) *Graph { return g }
		fromFile := FileGen(path)
		for _, backend := range Backends() {
			for _, workers := range []int{1, 3} {
				p := Params{Arboricity: tc.a, Backend: backend, SweepWorkers: workers}
				want, err := Sweep(alg, fromRAM, []int{g.N()}, nil, p)
				if err != nil {
					t.Fatalf("%s/%s %s workers=%d: ram sweep: %v", tc.family, mode, backend, workers, err)
				}
				got, err := Sweep(alg, fromFile, []int{g.N()}, nil, p)
				if err != nil {
					t.Fatalf("%s/%s %s workers=%d: file sweep: %v", tc.family, mode, backend, workers, err)
				}
				var wantJSON, gotJSON bytes.Buffer
				if err := want.WriteJSON(&wantJSON); err != nil {
					t.Fatal(err)
				}
				if err := got.WriteJSON(&gotJSON); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(wantJSON.Bytes(), gotJSON.Bytes()) {
					t.Errorf("%s/%s %s workers=%d: file-backed sweep diverged:\nram:  %s\nfile: %s",
						tc.family, mode, backend, workers, wantJSON.String(), gotJSON.String())
				}
			}

			// Single runs must match down to the full Report, including the
			// per-round active-vertex decay.
			loaded := fromFile(g.N())
			p := Params{Arboricity: tc.a, Backend: backend}
			wantRep, err := alg.Run(g, p)
			if err != nil {
				t.Fatal(err)
			}
			gotRep, err := alg.Run(loaded, p)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wantRep, gotRep) {
				t.Errorf("%s/%s %s: file-backed Report differs:\nram:  %+v\nfile: %+v",
					tc.family, mode, backend, wantRep, gotRep)
			}
		}
	}
	GraphCachePurge()
}

// TestFileGenContract pins FileGen's sharing and size-check behavior.
func TestFileGenContract(t *testing.T) {
	GraphCachePurge()
	g := Ring(50)
	path := filepath.Join(t.TempDir(), "ring.csr")
	if err := WriteGraphFile(path, g, false); err != nil {
		t.Fatal(err)
	}
	gen := FileGen(path)
	if gen(50) != gen(0) {
		t.Error("same path returned distinct graphs")
	}
	// A second spelling of the same path shares the entry.
	if FileGen(filepath.Join(filepath.Dir(path), ".", "ring.csr"))(50) != gen(50) {
		t.Error("equivalent path spellings did not share a cache entry")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("size mismatch did not panic")
			}
		}()
		gen(51)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("missing file did not panic")
			}
		}()
		FileGen(filepath.Join(t.TempDir(), "absent.csr"))(0)
	}()
	GraphCachePurge()
}
