module vavg

go 1.22
