package vavg

import (
	"fmt"

	"vavg/internal/graph"
)

// sharedGraphs is the process-wide generated-graph cache behind
// CachedGen. Experiments typically sweep several algorithms over the same
// (family, n, generator params) grid; the cache lets them share one
// generated Graph per grid point instead of regenerating it per
// algorithm.
var sharedGraphs = graph.NewCache()

// CachedGen wraps a size-indexed graph generator with the shared
// read-only graph cache, for use with Sweep. The key must uniquely
// identify the generator and every parameter that shapes its output
// besides n — family, arboricity, generator seed — because two generators
// wrapped with the same key share cache entries. Cached graphs are
// served to concurrent runs and must never be mutated.
//
//	gen := vavg.CachedGen("forests|a=3|seed=7", func(n int) *vavg.Graph {
//		return vavg.ForestUnion(n, 3, 7)
//	})
func CachedGen(key string, gen func(n int) *Graph) func(n int) *Graph {
	return func(n int) *Graph {
		return sharedGraphs.Get(fmt.Sprintf("%s|n=%d", key, n), func() *Graph { return gen(n) })
	}
}

// GraphCacheStats reports the shared graph cache's hit and miss counts
// (one miss per generated graph).
func GraphCacheStats() (hits, misses int) { return sharedGraphs.Stats() }

// GraphCachePurge drops every cached graph, releasing the memory to the
// collector. Long multi-family sweeps call it between families.
func GraphCachePurge() { sharedGraphs.Purge() }
