package vavg

import (
	"fmt"
	"sync"

	"vavg/internal/graph"
)

// sharedGraphs is the process-wide generated-graph cache behind
// CachedGen. Experiments typically sweep several algorithms over the same
// (family, n, generator params) grid; the cache lets them share one
// generated Graph per grid point instead of regenerating it per
// algorithm.
var sharedGraphs = graph.NewCache()

// CachedGen wraps a size-indexed graph generator with the shared
// read-only graph cache, for use with Sweep. The family name plus the
// name/value params must uniquely identify the generator and every
// parameter that shapes its output besides n — arboricity, generator
// seed — because two generators wrapped with the same identity share
// cache entries. Keys are composed by graph.CacheKey, the one canonical
// spelling, so generated and file-backed graphs (FileGen) can never
// collide. Cached graphs are served to concurrent runs and must never be
// mutated.
//
//	gen := vavg.CachedGen("forests", func(n int) *vavg.Graph {
//		return vavg.ForestUnion(n, 3, 7)
//	}, "a", 3, "seed", 7)
func CachedGen(family string, gen func(n int) *Graph, params ...any) func(n int) *Graph {
	return func(n int) *Graph {
		return sharedGraphs.Get(graph.CacheKey(family, n, params...), func() *Graph { return gen(n) })
	}
}

// FileGen returns a size-indexed graph source backed by a binary CSR
// file (see WriteGraphFile), for use with Sweep anywhere a generator is
// expected. The file is loaded once — raw-layout files as one shared
// read-only mapping — and every sweep worker, algorithm, and backend run
// shares the same *Graph. A nonzero requested n must match the file's
// vertex count; a file source has exactly one size, so Sweep over it
// uses Sizes = []int{g.N()} (or 0 to skip the check).
//
// Load failures panic: a sweep's graph source is configuration, and a
// missing or corrupt file should stop the run at the first size, not be
// silently skipped.
func FileGen(path string) func(n int) *Graph {
	return func(n int) *Graph {
		g := sharedGraphs.Get(graph.FileKey(path), func() *Graph {
			g, err := graph.LoadCSR(path)
			if err != nil {
				panic(fmt.Sprintf("vavg: graph file %s: %v", path, err))
			}
			return g
		})
		if n != 0 && g.N() != n {
			panic(fmt.Sprintf("vavg: graph file %s has n=%d, run requested n=%d", path, g.N(), n))
		}
		return g
	}
}

// relabelViews memoizes graph.Relabel views by source graph identity.
// Sweeps fan many (algorithm, size, seed) points over one shared *Graph,
// and the RCM pass plus view construction is an O(m log m) preprocessing
// step — paying it once per graph mirrors the generated-graph cache's
// sharing discipline. Views are as immutable as their sources and safe to
// share across concurrent runs.
var relabelViews = struct {
	sync.Mutex
	m map[*Graph]*Graph
}{m: map[*Graph]*Graph{}}

// relabelFor resolves Params.Relabel for one run: the graph itself for
// the off modes, the (cached) RCM view for "rcm", an error for anything
// else.
func relabelFor(g *Graph, p Params) (*Graph, error) {
	switch p.Relabel {
	case "", "off", "none":
		return g, nil
	case "rcm":
	default:
		return nil, fmt.Errorf("unknown Relabel mode %q (valid: off, rcm)", p.Relabel)
	}
	relabelViews.Lock()
	defer relabelViews.Unlock()
	v, ok := relabelViews.m[g]
	if !ok {
		v = graph.Relabel(g)
		relabelViews.m[g] = v
	}
	return v, nil
}

// GraphCacheStats reports the shared graph cache's hit and miss counts
// (one miss per generated graph).
func GraphCacheStats() (hits, misses int) { return sharedGraphs.Stats() }

// GraphCachePurge drops every cached graph, releasing the memory to the
// collector (relabeled views included). Long multi-family sweeps call it
// between families.
func GraphCachePurge() {
	sharedGraphs.Purge()
	relabelViews.Lock()
	relabelViews.m = map[*Graph]*Graph{}
	relabelViews.Unlock()
}
