package vavg_test

import (
	"fmt"
	"log"
	"sort"

	"vavg"
)

// Running a registry algorithm and reading the two complexity measures the
// paper contrasts.
func ExampleAlgorithm_Run() {
	g := vavg.TriangulatedGrid(32, 32) // planar, arboricity <= 3
	alg, err := vavg.ByName("forest-decomp")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := alg.Run(g, vavg.Params{Arboricity: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vertex-averaged %.0f rounds (bound %s), %d forests\n",
		rep.VertexAvg, alg.VertexAvgBound, rep.Colors)
	// Output:
	// vertex-averaged 3 rounds (bound O(1)), 3 forests
}

// Writing a custom vertex program against the simulator: each vertex
// counts the vertices within two hops.
func ExampleSimulate() {
	g := vavg.Ring(8)
	prog := func(api *vavg.API) any {
		known := map[int32]bool{int32(api.ID()): true}
		for r := 0; r < 2; r++ {
			ids := make([]int32, 0, len(known))
			for v := range known {
				ids = append(ids, v)
			}
			// Message bytes must be deterministic across runs, so never
			// broadcast a slice in map-iteration order.
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			api.Broadcast(ids)
			for _, m := range api.Next() {
				for _, v := range m.Data.([]int32) {
					known[v] = true
				}
			}
		}
		return len(known)
	}
	res, err := vavg.Simulate(g, prog, vavg.Params{Arboricity: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("2-hop ball size:", res.Output[0], "rounds:", res.Rounds[0])
	// Output:
	// 2-hop ball size: 5 rounds: 3
}

// Solving (deg+1)-list-coloring with custom per-vertex palettes through
// the Section 8 extension framework.
func ExampleListColoring() {
	g := vavg.Star(6) // center 0, five leaves
	lists := func(v int) []int {
		if v == 0 {
			return []int{10, 11, 12, 13, 14, 15} // deg(0)+1 = 6 colors
		}
		return []int{10, 20} // leaves: deg+1 = 2 colors
	}
	_, cols, err := vavg.ListColoring(g, vavg.Params{Arboricity: 1}, lists)
	if err != nil {
		log.Fatal(err)
	}
	// Leaves join the first H-set and color 10 first; the center follows
	// and avoids it.
	fmt.Println("center:", cols[0], "leaf 1:", cols[1])
	// Output:
	// center: 11 leaf 1: 10
}
