package vavg

import (
	"reflect"
	gort "runtime"
	"strings"
	"testing"

	"vavg/internal/engine"
)

// TestScenarioZeroFaultIdentity is the zero-overhead contract of the
// adversarial layer: a zero Scenario (all probabilities 0, no schedules)
// must produce byte-identical engine Results to a scenario-free run for
// every registry algorithm on every backend — both through the facade
// (where the zero spec short-circuits to the fault-free path) and through
// an explicitly compiled zero Adversary driven through the adversary
// branches of the hot path.
func TestScenarioZeroFaultIdentity(t *testing.T) {
	oldProcs := gort.GOMAXPROCS(4)
	defer gort.GOMAXPROCS(oldProcs)

	forests := ForestUnion(160, 3, 7)
	ring := Ring(160)
	for _, alg := range Algorithms() {
		alg := alg
		// Ring-structure and reference algorithms run on their required
		// topology, as in the cross-backend equivalence suite.
		g := forests
		arb := 3
		if strings.Contains(alg.Name, "ring") || alg.Kind == KindReference {
			g, arb = ring, 2
		}
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			p := Params{Arboricity: arb, Seed: 11}.withDefaults(g)
			spec := engine.Spec{Program: alg.program(p)}
			if alg.step != nil {
				spec.Step = alg.step(p)
			}
			// An explicitly zero adversary forces the adversary branches of
			// flush/collect while deciding nothing — it must not perturb a
			// single byte of the Result.
			zero := &engine.Adversary{}
			if err := zero.Normalize(g.N()); err != nil {
				t.Fatal(err)
			}
			for _, backend := range engine.Backends() {
				plain, err := engine.RunSpec(g, spec, engine.Options{
					Seed: p.Seed, MaxRounds: p.MaxRounds, Backend: backend,
				})
				if err != nil {
					t.Fatalf("backend %s: %v", backend, err)
				}
				adv, err := engine.RunSpec(g, spec, engine.Options{
					Seed: p.Seed, MaxRounds: p.MaxRounds, Backend: backend, Adv: zero,
				})
				if err != nil {
					t.Fatalf("backend %s with zero adversary: %v", backend, err)
				}
				// The adversary run reports its (empty) accounting arrays;
				// blank them before the byte comparison of everything else.
				if adv.Dropped != 0 || adv.LostToCrash != 0 || adv.CrashedForever != 0 || adv.Restarts != 0 {
					t.Errorf("backend %s: zero adversary recorded faults: %+v", backend, adv)
				}
				for v, c := range adv.Crashed {
					if c {
						t.Errorf("backend %s: zero adversary crashed vertex %d", backend, v)
					}
				}
				adv.Crashed = nil
				if !reflect.DeepEqual(plain, adv) {
					t.Errorf("backend %s: zero-adversary Result differs from scenario-free run", backend)
				}
			}

			// The facade identity: a zero Spec routes through the fault-free
			// path and must match a nil Scenario report exactly.
			plainRep, err := alg.Run(g, Params{Arboricity: arb, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			zeroRep, err := alg.Run(g, Params{Arboricity: arb, Seed: 11, Scenario: &Scenario{}})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plainRep, zeroRep) {
				t.Errorf("zero-Scenario Report differs from scenario-free Report")
			}
		})
	}
}

// faultScenarios are the schedules the equivalence and robustness suites
// drive: drops alone, crashes alone, crash+restart, and the full mix.
func faultScenarios() []*Scenario {
	return []*Scenario{
		{Drop: 0.25, Seed: 7},
		{CrashFrac: 0.05, CrashRound: 3, Seed: 7},
		{CrashFrac: 0.05, CrashRound: 3, RestartAfter: 6, Seed: 7},
		{Drop: 0.1, CrashFrac: 0.03, CrashRound: 4, RestartAfter: 8, Seed: 9,
			Crashes: []Crash{{V: 1, Round: 2}, {V: 5, Round: 5, Restart: 9}}},
	}
}

// TestScenarioEquivalenceAcrossBackends extends the cross-backend
// equivalence contract to faulty runs: the same (run seed, scenario seed,
// spec) must yield byte-identical engine Results on every backend,
// whether or not the run converges within its round budget.
func TestScenarioEquivalenceAcrossBackends(t *testing.T) {
	oldProcs := gort.GOMAXPROCS(4)
	defer gort.GOMAXPROCS(oldProcs)

	g := ForestUnion(160, 3, 7)
	algs := []string{"partition", "forest-decomp", "mis", "matching"}
	for _, name := range algs {
		alg, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for si, sc := range faultScenarios() {
			alg, sc, si := alg, sc, si
			t.Run(alg.Name, func(t *testing.T) {
				t.Parallel()
				p := Params{Arboricity: 3, Seed: 11, MaxRounds: 4096}.withDefaults(g)
				spec := engine.Spec{Program: alg.program(p)}
				if alg.step != nil {
					spec.Step = alg.step(p)
				}
				adv, err := sc.Clone().Compile(g.N(), p.Seed)
				if err != nil {
					t.Fatal(err)
				}
				type outcome struct {
					res  *engine.Result
					fail bool
				}
				var results []outcome
				for _, backend := range engine.Backends() {
					res, err := engine.RunSpec(g, spec, engine.Options{
						Seed: p.Seed, MaxRounds: p.MaxRounds, Backend: backend, Adv: adv,
					})
					if res == nil {
						t.Fatalf("scenario %d backend %s: %v", si, backend, err)
					}
					// Shards is layout provenance, excluded from equivalence.
					res.Shards = 0
					results = append(results, outcome{res, err != nil})
				}
				base := results[0]
				for i, o := range results[1:] {
					if o.fail != base.fail || !reflect.DeepEqual(base.res, o.res) {
						t.Errorf("scenario %d: backend %s Result differs from %s (dnf %v vs %v; messages %d vs %d, dropped %d vs %d, roundSum %d vs %d)",
							si, engine.Backends()[i+1], engine.Backends()[0],
							o.fail, base.fail,
							base.res.Messages, o.res.Messages,
							base.res.Dropped, o.res.Dropped,
							base.res.RoundSum, o.res.RoundSum)
					}
				}
				// The accounting identity under faults: crashed vertices pay
				// rounds through their crash round and appear in the decay,
				// so without restarts the fault-free identity holds exactly.
				// A restarted vertex's RoundSum contribution additionally
				// includes its outage window — wall-clock rounds to final
				// termination — which ActivePerRound does not count, so with
				// restarts the decay only bounds RoundSum from below.
				var sum int64
				for _, a := range base.res.ActivePerRound {
					sum += int64(a)
				}
				restarts := sc.RestartAfter > 0
				for _, cr := range sc.Crashes {
					restarts = restarts || cr.Restart > 0
				}
				if !restarts && sum != base.res.RoundSum {
					t.Errorf("scenario %d: sum(ActivePerRound)=%d, RoundSum=%d", si, sum, base.res.RoundSum)
				}
				if restarts && sum > base.res.RoundSum {
					t.Errorf("scenario %d: sum(ActivePerRound)=%d exceeds RoundSum=%d", si, sum, base.res.RoundSum)
				}
			})
		}
	}
}

// TestScenarioSweepWorkerInvariance pins the facade-level determinism
// claim: a faulty sweep is byte-identical at any SweepWorkers count.
func TestScenarioSweepWorkerInvariance(t *testing.T) {
	alg, err := ByName("partition")
	if err != nil {
		t.Fatal(err)
	}
	sc := &Scenario{Drop: 0.2, CrashFrac: 0.04, CrashRound: 3, RestartAfter: 5, Seed: 13}
	gen := func(n int) *Graph { return ForestUnion(n, 3, 5) }
	var base *SweepResult
	for _, workers := range []int{1, 4} {
		p := Params{Arboricity: 3, MaxRounds: 4096, Scenario: sc, SweepWorkers: workers}
		got, err := Sweep(alg, gen, []int{64, 128, 256}, []int64{1, 2}, p)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if base == nil {
			base = got
			continue
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("sweep with %d workers differs from serial sweep", workers)
		}
	}
}

// TestScenarioDegradation sanity-checks the degradation measurements on a
// lossy, crashy run: losses are recorded, crashed vertices are reported,
// and the conflict counters see the holes the crashes leave.
func TestScenarioDegradation(t *testing.T) {
	g := ForestUnion(400, 3, 3)
	alg, err := ByName("mis")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := alg.Run(g, Params{Arboricity: 3, Seed: 5, MaxRounds: 4096,
		Scenario: &Scenario{CrashFrac: 0.1, CrashRound: 3, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.CrashedForever == 0 {
		t.Error("crash scenario reported no crashed vertices")
	}
	if rep.LostToCrash == 0 {
		t.Error("crash scenario reported no deliveries lost to crashes")
	}
	if rep.ResidualConflicts < rep.CrashedForever {
		t.Errorf("ResidualConflicts %d below crashed-forever count %d (each crashed vertex is at least unassigned)",
			rep.ResidualConflicts, rep.CrashedForever)
	}

	// A restart scenario must record the reboots.
	rep2, err := alg.Run(g, Params{Arboricity: 3, Seed: 5, MaxRounds: 4096,
		Scenario: &Scenario{CrashFrac: 0.1, CrashRound: 3, RestartAfter: 4, Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Restarts == 0 {
		t.Error("restart scenario reported no restarts")
	}
	if rep2.CrashedForever != 0 {
		t.Errorf("restart scenario reported %d crashed-forever vertices", rep2.CrashedForever)
	}
}

// TestScenarioDynamicEdges exercises the epoch machinery: edge deletions
// and insertions re-execute the affected vertices against frozen
// survivors, and the final report measures conflicts on the final graph.
func TestScenarioDynamicEdges(t *testing.T) {
	g := ForestUnion(160, 3, 7)
	alg, err := ByName("arblinial-o1")
	if err != nil {
		t.Fatal(err)
	}
	// Delete a real edge, then insert a fresh one a round later — two
	// repair epochs over distinct affected regions.
	del := g.Edges()[0]
	var iu, iv int
	found := false
	for u := 0; u < g.N() && !found; u++ {
		for v := u + 1; v < g.N(); v++ {
			if g.NeighborIndex(u, v) < 0 {
				iu, iv = u, v
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("graph is complete; no edge to insert")
	}
	sc := &Scenario{Edges: []EdgeEvent{
		{Round: 2, U: int(del.U), V: int(del.V), Insert: false},
		{Round: 3, U: iu, V: iv, Insert: true},
	}}
	rep, err := alg.Run(g, Params{Arboricity: 3, Seed: 3, MaxRounds: 4096, Scenario: sc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.M != g.M() {
		// One deletion and one insertion: edge count unchanged.
		t.Errorf("final graph has %d edges, want %d", rep.M, g.M())
	}
	if rep.ResidualConflicts < 0 {
		t.Error("dynamic coloring run did not measure residual conflicts")
	}
}
