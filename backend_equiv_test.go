package vavg

import (
	"math"
	"reflect"
	gort "runtime"
	"strings"
	"testing"

	"vavg/internal/engine"
	"vavg/internal/graph"
)

// TestCrossBackendEquivalenceRegistry is the deliverable contract of the
// pluggable-backend engine: for every registered algorithm on every graph
// family, identical seeds must yield byte-identical engine Results —
// rounds, commitments, outputs, active-set decay, message counts — on the
// "goroutines", "pool", and "step" backends. Backends are execution
// strategies, not semantics. Algorithms with a step form run it on the
// step backend, so this suite also pins every step translation to its
// blocking original.
func TestCrossBackendEquivalenceRegistry(t *testing.T) {
	oldProcs := gort.GOMAXPROCS(4) // force multi-shard pool runs
	defer gort.GOMAXPROCS(oldProcs)

	families := []struct {
		name string
		gen  func() *Graph
		a    int
	}{
		{"ring", func() *Graph { return Ring(160) }, 2},
		{"forests", func() *Graph { return ForestUnion(160, 3, 7) }, 3},
		{"starforest", func() *Graph { return StarForest(160, 16) }, 2},
		{"trigrid", func() *Graph { return TriangulatedGrid(12, 12) }, 3},
		{"tree", func() *Graph { return RandomTree(160, 5) }, 1},
		{"gnm", func() *Graph { return Gnm(140, 420, 9) }, 0},
	}
	for _, alg := range Algorithms() {
		ringOnly := strings.Contains(alg.Name, "ring") || alg.Kind == KindReference
		for _, fam := range families {
			if ringOnly && fam.name != "ring" {
				continue
			}
			if testing.Short() && fam.name != "ring" && fam.name != "forests" {
				continue
			}
			alg, fam := alg, fam
			t.Run(alg.Name+"/"+fam.name, func(t *testing.T) {
				t.Parallel()
				g := fam.gen()
				p := Params{Arboricity: fam.a, Seed: 11, MaxRounds: 1 << 21}.withDefaults(g)
				spec := engine.Spec{Program: alg.program(p)}
				if alg.step != nil {
					spec.Step = alg.step(p)
				}
				var results []*engine.Result
				for _, backend := range engine.Backends() {
					res, err := engine.RunSpec(g, spec, engine.Options{
						Seed: p.Seed, MaxRounds: p.MaxRounds, Backend: backend,
					})
					if err != nil {
						t.Fatalf("backend %s: %v", backend, err)
					}
					// Shards is layout provenance (0 off the step backend),
					// not an observable; the equivalence contract covers
					// everything else.
					res.Shards = 0
					results = append(results, res)
				}
				base := results[0]
				for i, res := range results[1:] {
					if !reflect.DeepEqual(base, res) {
						t.Errorf("backend %s Result differs from %s:\n rounds eq=%v outputs eq=%v active eq=%v messages %d vs %d",
							engine.Backends()[i+1], engine.Backends()[0],
							reflect.DeepEqual(base.Rounds, res.Rounds),
							reflect.DeepEqual(base.Output, res.Output),
							reflect.DeepEqual(base.ActivePerRound, res.ActivePerRound),
							base.Messages, res.Messages)
					}
				}
			})
		}
	}
}

// TestRegistryStepForms pins the goroutine-free registry contract: every
// registered algorithm ships a step form, so backend "auto" resolves to
// the explicit-state-machine step backend for the whole registry and no
// registry run needs one goroutine per vertex.
func TestRegistryStepForms(t *testing.T) {
	for _, alg := range Algorithms() {
		if !alg.HasStep() {
			t.Errorf("algorithm %s has no step form; backend auto falls back to goroutines", alg.Name)
		}
	}
}

// TestStepWorkerInvarianceRegistry extends the worker-invariance gate
// from synthetic programs to the real registry: for every algorithm, the
// step backend must produce byte-identical Results at P ∈ {1, 2, 4, 8} —
// P applied as both StepShards (lane layout) and GOMAXPROCS (worker
// parallelism) — faultless and under a drop+crash+restart scenario. CI
// runs this under -race, where any cross-shard store outside the staged
// lanes surfaces as a race rather than a flake.
func TestStepWorkerInvarianceRegistry(t *testing.T) {
	forest := ForestUnion(160, 3, 7)
	ring := Ring(160)
	sc := &Scenario{Drop: 0.1, CrashFrac: 0.03, CrashRound: 4, RestartAfter: 8, Seed: 9,
		Crashes: []Crash{{V: 1, Round: 2}, {V: 5, Round: 5, Restart: 9}}}
	points := []int{1, 2, 4, 8}
	if testing.Short() {
		points = []int{1, 4}
	}
	for _, alg := range Algorithms() {
		g, a := forest, 3
		if strings.Contains(alg.Name, "ring") || alg.Kind == KindReference {
			g, a = ring, 2
		}
		alg, g, a := alg, g, a
		t.Run(alg.Name, func(t *testing.T) {
			// GOMAXPROCS is process-global, so the P axis runs sequentially
			// (no t.Parallel) and each point restores the previous value.
			p := Params{Arboricity: a, Seed: 11, MaxRounds: 1 << 21}.withDefaults(g)
			spec := engine.Spec{Program: alg.program(p)}
			if alg.step != nil {
				spec.Step = alg.step(p)
			}
			for _, fault := range []string{"faultless", "dropcrash"} {
				opts := engine.Options{Seed: p.Seed, MaxRounds: p.MaxRounds, Backend: "step"}
				if fault == "dropcrash" {
					adv, err := sc.Clone().Compile(g.N(), p.Seed)
					if err != nil {
						t.Fatal(err)
					}
					// A crashed-forever vertex can strand a run; the budget
					// turns that into a deterministic DNF outcome that must
					// itself be invariant across layouts.
					opts.Adv = adv
					opts.MaxRounds = 4096
				}
				type outcome struct {
					res *engine.Result
					dnf bool
				}
				var base outcome
				for _, P := range points {
					old := gort.GOMAXPROCS(P)
					opts.StepShards = P
					res, err := engine.RunSpec(g, spec, opts)
					gort.GOMAXPROCS(old)
					if res == nil {
						t.Fatalf("%s P=%d: %v", fault, P, err)
					}
					// The recorded shard count tracks P by construction;
					// everything else must be invariant in it.
					res.Shards = 0
					got := outcome{res, err != nil}
					if P == points[0] {
						base = got
						continue
					}
					if got.dnf != base.dnf || !reflect.DeepEqual(base.res, got.res) {
						t.Errorf("%s P=%d: Result differs from P=%d (dnf %v vs %v; messages %d vs %d, roundSum %d vs %d)",
							fault, P, points[0], got.dnf, base.dnf,
							got.res.Messages, base.res.Messages,
							got.res.RoundSum, base.res.RoundSum)
					}
				}
			}
		})
	}
}

// TestPoolDecayShape re-runs the Lemma 6.1 assertions against the pool
// backend: on the active-set scheduler too, Procedure Partition's active
// set must decay within the geometric envelope n*(2/(2+eps))^i, and the
// accounting identities RoundSum == sum(ActivePerRound) and
// VertexAverage <= TotalRounds must hold exactly.
func TestPoolDecayShape(t *testing.T) {
	const (
		n   = 4096
		a   = 3
		eps = 2.0
	)
	g := ForestUnion(n, a, 23)
	alg, err := ByName("partition")
	if err != nil {
		t.Fatal(err)
	}
	p := Params{Arboricity: a, Seed: 5, MaxRounds: 1 << 21, Backend: "pool"}.withDefaults(g)
	res, err := engine.Run(g, alg.program(p), engine.Options{Seed: p.Seed, MaxRounds: p.MaxRounds, Backend: "pool"})
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for i, act := range res.ActivePerRound {
		sum += int64(act)
		// One slack round: vertices pay a final output round after the
		// partition decision, shifting the measured decay by one.
		bound := float64(n) * math.Pow(2/(2+eps), math.Max(float64(i-1), 0))
		if float64(act) > bound+1 {
			t.Errorf("round %d: active %d exceeds Lemma 6.1 envelope %.1f", i+1, act, bound)
		}
	}
	if sum != res.RoundSum {
		t.Errorf("sum of ActivePerRound = %d, RoundSum = %d", sum, res.RoundSum)
	}
	if res.VertexAverage() > float64(res.TotalRounds) {
		t.Errorf("VertexAverage %.2f exceeds TotalRounds %d", res.VertexAverage(), res.TotalRounds)
	}
}

// TestParamsBackendSelection checks the façade plumbing: an explicit
// unknown backend must surface as an error, and explicit valid choices
// must run and validate.
func TestParamsBackendSelection(t *testing.T) {
	g := graph.ForestUnion(100, 2, 3)
	alg, err := ByName("partition")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := alg.Run(g, Params{Backend: "bogus"}); err == nil {
		t.Error("unknown backend should fail")
	}
	for _, backend := range engine.Backends() {
		if _, err := alg.Run(g, Params{Backend: backend}); err != nil {
			t.Errorf("backend %s: %v", backend, err)
		}
	}
}
