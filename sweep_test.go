package vavg

import (
	"bytes"
	"encoding/json"
	"slices"
	"strings"
	"testing"
)

func TestSweepShapesAndSerialization(t *testing.T) {
	gen := func(n int) *Graph { return ForestUnion(n, 2, int64(n)) }
	sizes := []int{512, 2048, 8192}

	flat, err := ByName("arblinial-o1")
	if err != nil {
		t.Fatal(err)
	}
	sf, err := Sweep(flat, gen, sizes, []int64{1}, Params{Arboricity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Points) != 3 {
		t.Fatalf("points = %d", len(sf.Points))
	}
	if e := sf.VertexAvgGrowth(); e > 0.15 {
		t.Errorf("flat algorithm fitted growth exponent %.3f, want ~0", e)
	}

	wc, err := ByName("arblinial-wc")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Sweep(wc, gen, sizes, []int64{1}, Params{Arboricity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e := sw.VertexAvgGrowth(); e < 0.5 {
		t.Errorf("log-n baseline fitted growth exponent %.3f, want near 1", e)
	}

	// CSV round-trip sanity.
	var csvBuf bytes.Buffer
	if err := sf.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "algorithm,") {
		t.Errorf("csv malformed:\n%s", csvBuf.String())
	}

	// JSON round-trip.
	var jsonBuf bytes.Buffer
	if err := sf.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != "arblinial-o1" || len(back.Points) != 3 {
		t.Errorf("json round-trip lost data: %+v", back)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	alg, _ := ByName("partition")
	gen := func(n int) *Graph { return Clique(32) }
	// Gross arboricity underestimate must surface as an error.
	if _, err := Sweep(alg, gen, []int{32}, []int64{1}, Params{Arboricity: 1, Eps: 0.5, MaxRounds: 500}); err == nil {
		t.Fatal("expected sweep error")
	}
}

// TestSweepRejectsDegenerateInputs pins the error contract: a nil
// generator or an empty size list must fail loudly instead of returning a
// degenerate empty sweep.
func TestSweepRejectsDegenerateInputs(t *testing.T) {
	alg, err := ByName("partition")
	if err != nil {
		t.Fatal(err)
	}
	gen := func(n int) *Graph { return ForestUnion(n, 2, 1) }
	if _, err := Sweep(alg, nil, []int{64}, nil, Params{}); err == nil || !strings.Contains(err.Error(), "nil graph generator") {
		t.Errorf("nil gen: err = %v, want nil-generator error", err)
	}
	if _, err := Sweep(alg, gen, nil, nil, Params{}); err == nil || !strings.Contains(err.Error(), "empty size list") {
		t.Errorf("empty sizes: err = %v, want empty-size-list error", err)
	}
	if _, err := Sweep(alg, func(n int) *Graph { return nil }, []int{64}, nil, Params{}); err == nil || !strings.Contains(err.Error(), "nil graph") {
		t.Errorf("nil graph: err = %v, want nil-graph error", err)
	}
}

// TestSweepMessagesIsMedian checks that a sweep point reports the median
// message count over its seeds, not the first seed's. mis-luby's coin
// flips make Messages differ across seeds, so the two disagree.
func TestSweepMessagesIsMedian(t *testing.T) {
	alg, err := ByName("mis-luby")
	if err != nil {
		t.Fatal(err)
	}
	g := ForestUnion(256, 3, 7)
	seeds := []int64{1, 2, 3}
	msgs := make([]int64, len(seeds))
	for i, s := range seeds {
		rep, err := alg.Run(g, Params{Arboricity: 3, Seed: s})
		if err != nil {
			t.Fatal(err)
		}
		msgs[i] = rep.Messages
	}
	sorted := append([]int64(nil), msgs...)
	slices.Sort(sorted)
	median := sorted[1]
	if median == msgs[0] {
		t.Fatalf("test needs seeds where median %d != first seed's %d", median, msgs[0])
	}
	res, err := Sweep(alg, func(int) *Graph { return g }, []int{256}, seeds, Params{Arboricity: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Points[0].Messages; got != median {
		t.Errorf("sweep Messages = %d, want median %d (per-seed: %v)", got, median, msgs)
	}
}

// TestSweepParallelMatchesSerial is the determinism contract of the
// parallel sweep scheduler: for every registered algorithm, a sweep run
// serially (SweepWorkers=1) and one fanned out over 8 workers must be
// byte-identical, because results are collected by (size, seed) index and
// every point derives its PRNG streams from its own seed.
func TestSweepParallelMatchesSerial(t *testing.T) {
	sizes := []int{64, 128}
	seeds := []int64{1, 2, 3}
	for _, alg := range Algorithms() {
		ringOnly := strings.Contains(alg.Name, "ring") || alg.Kind == KindReference
		alg := alg
		t.Run(alg.Name, func(t *testing.T) {
			t.Parallel()
			gen, a := func(n int) *Graph { return ForestUnion(n, 3, 7) }, 3
			if ringOnly {
				gen, a = func(n int) *Graph { return Ring(n) }, 2
			}
			var outs [2][]byte
			for i, workers := range []int{1, 8} {
				res, err := Sweep(alg, gen, sizes, seeds, Params{Arboricity: a, SweepWorkers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				var buf bytes.Buffer
				if err := res.WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				outs[i] = buf.Bytes()
			}
			if !bytes.Equal(outs[0], outs[1]) {
				t.Errorf("parallel sweep differs from serial:\nserial:   %s\nparallel: %s", outs[0], outs[1])
			}
		})
	}
}

// TestSweepGoldenOutput pins the exact CSV and JSON serializations of a
// fixed SweepResult, including the omitempty behavior of Colors and Size:
// both are present in CSV (as zeros) but dropped from JSON when zero.
func TestSweepGoldenOutput(t *testing.T) {
	res := &SweepResult{
		Algorithm: "demo",
		Family:    "forests",
		Points: []SweepPoint{
			{N: 64, M: 63, VertexAvg: 2.5, WorstCase: 4, Colors: 3, Size: 20, Messages: 500},
			{N: 128, M: 127, VertexAvg: 2.25, WorstCase: 5, Messages: 1100},
		},
	}
	const wantCSV = `algorithm,family,n,m,vertex_avg,worst_case,colors,size,messages
demo,forests,64,63,2.5000,4,3,20,500
demo,forests,128,127,2.2500,5,0,0,1100
`
	var csvBuf bytes.Buffer
	if err := res.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if csvBuf.String() != wantCSV {
		t.Errorf("csv golden mismatch:\ngot:\n%s\nwant:\n%s", csvBuf.String(), wantCSV)
	}
	const wantJSON = `{
  "algorithm": "demo",
  "family": "forests",
  "points": [
    {
      "n": 64,
      "m": 63,
      "vertexAvg": 2.5,
      "worstCase": 4,
      "colors": 3,
      "size": 20,
      "messages": 500
    },
    {
      "n": 128,
      "m": 127,
      "vertexAvg": 2.25,
      "worstCase": 5,
      "messages": 1100
    }
  ]
}
`
	var jsonBuf bytes.Buffer
	if err := res.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if jsonBuf.String() != wantJSON {
		t.Errorf("json golden mismatch:\ngot:\n%s\nwant:\n%s", jsonBuf.String(), wantJSON)
	}
}

// TestCachedGenSharesGraphs checks the pointer contract of CachedGen: the
// same key and size yield the same *Graph, distinct keys do not.
func TestCachedGenSharesGraphs(t *testing.T) {
	GraphCachePurge()
	calls := 0
	gen := CachedGen("test-cachedgen", func(n int) *Graph {
		calls++
		return ForestUnion(n, 2, 5)
	}, "a", 2, "seed", 5)
	g1, g2 := gen(64), gen(64)
	if g1 != g2 {
		t.Error("same key+size returned distinct graphs")
	}
	if calls != 1 {
		t.Errorf("generator called %d times, want 1", calls)
	}
	other := CachedGen("test-cachedgen", func(n int) *Graph { return ForestUnion(n, 2, 6) }, "a", 2, "seed", 6)
	if other(64) == g1 {
		t.Error("distinct keys shared a cache entry")
	}
	GraphCachePurge()
}
