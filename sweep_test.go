package vavg

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSweepShapesAndSerialization(t *testing.T) {
	gen := func(n int) *Graph { return ForestUnion(n, 2, int64(n)) }
	sizes := []int{512, 2048, 8192}

	flat, err := ByName("arblinial-o1")
	if err != nil {
		t.Fatal(err)
	}
	sf, err := Sweep(flat, gen, sizes, []int64{1}, Params{Arboricity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Points) != 3 {
		t.Fatalf("points = %d", len(sf.Points))
	}
	if e := sf.VertexAvgGrowth(); e > 0.15 {
		t.Errorf("flat algorithm fitted growth exponent %.3f, want ~0", e)
	}

	wc, err := ByName("arblinial-wc")
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Sweep(wc, gen, sizes, []int64{1}, Params{Arboricity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e := sw.VertexAvgGrowth(); e < 0.5 {
		t.Errorf("log-n baseline fitted growth exponent %.3f, want near 1", e)
	}

	// CSV round-trip sanity.
	var csvBuf bytes.Buffer
	if err := sf.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 4 || !strings.HasPrefix(lines[0], "algorithm,") {
		t.Errorf("csv malformed:\n%s", csvBuf.String())
	}

	// JSON round-trip.
	var jsonBuf bytes.Buffer
	if err := sf.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var back SweepResult
	if err := json.Unmarshal(jsonBuf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Algorithm != "arblinial-o1" || len(back.Points) != 3 {
		t.Errorf("json round-trip lost data: %+v", back)
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	alg, _ := ByName("partition")
	gen := func(n int) *Graph { return Clique(32) }
	// Gross arboricity underestimate must surface as an error.
	if _, err := Sweep(alg, gen, []int{32}, []int64{1}, Params{Arboricity: 1, Eps: 0.5, MaxRounds: 500}); err == nil {
		t.Fatal("expected sweep error")
	}
}
